// Exhaustive verifier for the transport lifecycle protocol (protocol.hpp).
//
// Two layers, both over the *same* transition tables the live code steps
// through checked advance() calls — there is no second specification to
// drift from:
//
//  1. Structural checks per table: transitions are deterministic, terminal
//     states are exactly the expected ones (and have no outgoing edges),
//     every non-terminal state can still reach a terminal one, and the
//     sender table contains no kFlush edge outside kOpen (send-after-close
//     and send-after-failure are unrepresentable).
//
//  2. Exhaustive exploration of the composed system: one egress link
//     between two partitions, modelled as the product of the upstream
//     engine machine, its sender machine, the channel occupancy (bounded),
//     the downstream receiver machine, and the downstream engine machine,
//     with the coupling guards the implementation enforces (flushes only
//     happen while the upstream engine runs; close-egress closes the
//     sender with the engine's kCloseEgress edge; EOF is observed only
//     after the sender closed and the channel drained; the downstream
//     engine finishes locally only once the receiver drained; ...). Every
//     reachable composite state must (a) satisfy the close-ordering
//     invariants, (b) have at least one enabled action unless it is fully
//     terminal (no hang), and (c) still be able to reach the fully
//     terminal state (no livelock).
//
// The model assumes num_phases >= 1. (With zero phases the receiver never
// sees a final watermark, so a clean close is indistinguishable from a
// peer abort; the degenerate case is exercised by the regular test suite.)
//
// Runs as a ctest (label "static") and in the static-analysis CI job.
// Exits non-zero with a message on the first violation.

#include <cstdio>
#include <cstdlib>
#include <deque>
#include <initializer_list>
#include <span>
#include <vector>

#include "distrib/protocol.hpp"

namespace proto = df::distrib::protocol;

namespace {

int checks_run = 0;

[[noreturn]] void fail(const std::string& message) {
  std::fprintf(stderr, "verify_protocol: FAIL: %s\n", message.c_str());
  std::exit(1);
}

void expect(bool ok, const std::string& message) {
  ++checks_run;
  if (!ok) {
    fail(message);
  }
}

// --- Layer 1: per-table structural checks -----------------------------------

template <typename S, typename E>
void check_table(const char* name, std::span<const proto::Edge<S, E>> table,
                 std::span<const S> states, std::span<const E> events,
                 std::initializer_list<S> expected_terminals) {
  const auto is_expected_terminal = [&](S s) {
    for (S t : expected_terminals) {
      if (t == s) {
        return true;
      }
    }
    return false;
  };

  // Deterministic: at most one edge per (from, event).
  for (std::size_t i = 0; i < table.size(); ++i) {
    for (std::size_t j = i + 1; j < table.size(); ++j) {
      expect(!(table[i].from == table[j].from &&
               table[i].event == table[j].event),
             std::string(name) + ": duplicate edge from " +
                 to_string(table[i].from) + " on " +
                 to_string(table[i].event));
    }
  }

  // Terminal states are exactly the expected ones; terminality is defined
  // as "no outgoing edge", so this doubles as the no-transition-out-of-
  // terminal check.
  for (S s : states) {
    expect(proto::is_terminal(table, s) == is_expected_terminal(s),
           std::string(name) + ": state " + to_string(s) +
               " has the wrong terminality");
  }

  // Every state reaches a terminal state (BFS over the table graph).
  for (S start : states) {
    std::vector<S> frontier{start};
    std::vector<S> seen{start};
    bool reached = proto::is_terminal(table, start);
    while (!frontier.empty() && !reached) {
      S cur = frontier.back();
      frontier.pop_back();
      for (E e : events) {
        const auto* edge = proto::find_edge(table, cur, e);
        if (edge == nullptr) {
          continue;
        }
        bool new_state = true;
        for (S s : seen) {
          if (s == edge->to) {
            new_state = false;
          }
        }
        if (new_state) {
          seen.push_back(edge->to);
          frontier.push_back(edge->to);
          if (proto::is_terminal(table, edge->to)) {
            reached = true;
          }
        }
      }
    }
    expect(reached, std::string(name) + ": state " + to_string(start) +
                        " cannot reach any terminal state");
  }
}

// --- Layer 2: composed exploration ------------------------------------------

using proto::EngineEvent;
using proto::EngineState;
using proto::ReceiverEvent;
using proto::ReceiverState;
using proto::SenderEvent;
using proto::SenderState;

/// Frames in flight on the one modelled channel. Two is enough to exercise
/// ordering (a frame can sit behind another); a larger bound only grows
/// the state count without adding behaviours.
constexpr int kChannelCap = 2;

struct Composite {
  EngineState up = EngineState::kCreated;
  SenderState sender = SenderState::kOpen;
  ReceiverState recv = ReceiverState::kStreaming;
  EngineState down = EngineState::kCreated;
  int chan = 0;

  bool operator==(const Composite&) const = default;
};

constexpr int kStateCount = 9 * 4 * 6 * 9 * (kChannelCap + 1);

int pack(const Composite& c) {
  return (((static_cast<int>(c.up) * 4 + static_cast<int>(c.sender)) * 6 +
           static_cast<int>(c.recv)) *
              9 +
          static_cast<int>(c.down)) *
             (kChannelCap + 1) +
         c.chan;
}

std::string describe(const Composite& c) {
  return std::string("{up=") + to_string(c.up) +
         ", sender=" + to_string(c.sender) + ", recv=" + to_string(c.recv) +
         ", down=" + to_string(c.down) + ", chan=" + std::to_string(c.chan) +
         "}";
}

bool engine_can(EngineState s, EngineEvent e) {
  return proto::find_edge(proto::kEngineTable, s, e) != nullptr;
}
EngineState engine_next(EngineState s, EngineEvent e) {
  return proto::find_edge(proto::kEngineTable, s, e)->to;
}
bool recv_can(ReceiverState s, ReceiverEvent e) {
  return proto::find_edge(proto::kReceiverTable, s, e) != nullptr;
}
ReceiverState recv_next(ReceiverState s, ReceiverEvent e) {
  return proto::find_edge(proto::kReceiverTable, s, e)->to;
}

bool recv_terminal(ReceiverState s) {
  return proto::is_terminal(proto::kReceiverTable, s);
}

bool fully_terminal(const Composite& c) {
  return proto::is_terminal(proto::kEngineTable, c.up) &&
         proto::is_terminal(proto::kEngineTable, c.down) &&
         c.sender == SenderState::kClosed && recv_terminal(c.recv) &&
         c.chan == 0;
}

/// Every composite action the implementation can take from `c`, with the
/// coupling guards engine_main/EgressHub enforce. Uses the live tables via
/// find_edge — an action is only emitted along a legal edge.
std::vector<Composite> successors(const Composite& c) {
  std::vector<Composite> next;
  const auto add = [&](Composite n) { next.push_back(n); };

  // Upstream engine: start, finish local work, fail (a module exception or
  // protocol violation can strike in any live state that has the edge).
  if (engine_can(c.up, EngineEvent::kStart)) {
    Composite n = c;
    n.up = engine_next(c.up, EngineEvent::kStart);
    add(n);
  }
  if (engine_can(c.up, EngineEvent::kLocalComplete)) {
    Composite n = c;
    n.up = engine_next(c.up, EngineEvent::kLocalComplete);
    add(n);
  }
  if (engine_can(c.up, EngineEvent::kError) &&
      engine_next(c.up, EngineEvent::kError) != c.up) {
    Composite n = c;
    n.up = engine_next(c.up, EngineEvent::kError);
    add(n);
  }

  // Close egress: the engine's kCloseEgress edge and the sender's kClose
  // fire together (EgressHub::close_all runs between the two machine
  // advances; the sender close is idempotent via the is-kClosed guard).
  if (engine_can(c.up, EngineEvent::kCloseEgress)) {
    Composite n = c;
    n.up = engine_next(c.up, EngineEvent::kCloseEgress);
    if (n.sender != SenderState::kClosed) {
      expect(proto::find_edge(proto::kSenderTable, n.sender,
                              SenderEvent::kClose) != nullptr,
             "sender cannot close from " + std::string(to_string(n.sender)));
      n.sender = SenderState::kClosed;
    }
    if (c.up != n.up || c.sender != n.sender) {
      add(n);
    }
  }

  // Upstream ingress EOF (its own upstreams are unmodelled): only the two
  // egress-closed states have the edge — teardown ordering by structure.
  if (engine_can(c.up, EngineEvent::kIngressEof)) {
    Composite n = c;
    n.up = engine_next(c.up, EngineEvent::kIngressEof);
    add(n);
  }

  // Sender flush / send failure: only while the upstream engine is live
  // (workers and the completion hook exist between kStart and close_all)
  // and there is channel room. The sender table has no kFlush edge outside
  // kOpen/kReplaying, so a closed or failed link structurally cannot send.
  const bool up_live =
      c.up == EngineState::kRunning || c.up == EngineState::kLocalDone;
  if (c.sender == SenderState::kOpen && up_live && c.chan < kChannelCap) {
    Composite flushed = c;
    flushed.chan = c.chan + 1;
    add(flushed);  // SenderEvent::kFlush self-loop
    Composite failed = c;
    failed.sender = SenderState::kFailed;
    add(failed);  // SenderEvent::kSendError
  }

  // Crash-restart of the downstream partition: the supervisor restores the
  // engine from its checkpoint (fresh machine passing kCreated -kRestore->
  // kReplaying), installs a fresh sequencer whose receiver machine starts
  // in kReplaying, and calls replay_from on the upstream hub, entering the
  // sender's kReplaying session. Frames the dead generation left in flight
  // stay in the channel — the restarted receiver consumes them as
  // duplicates or fresh frames. Only a healthy link restarts: a live
  // upstream with an open sender, and a downstream that was running.
  if (up_live && c.sender == SenderState::kOpen &&
      c.down == EngineState::kRunning &&
      (c.recv == ReceiverState::kStreaming ||
       c.recv == ReceiverState::kDrained)) {
    Composite n = c;
    n.sender = SenderState::kReplaying;  // SenderEvent::kReplayStart
    n.recv = ReceiverState::kReplaying;  // fresh sequencer, restart-initial
    n.down = engine_next(EngineState::kCreated, EngineEvent::kRestore);
    add(n);
  }

  // Replay re-sends are driven by the *downstream* supervisor thread
  // holding the link mutex, so they need channel room but not an upstream
  // engine still between kStart and close_all; kReplayDone ends the
  // session unconditionally (replay_from is synchronous).
  if (c.sender == SenderState::kReplaying) {
    if (c.chan < kChannelCap) {
      Composite flushed = c;
      flushed.chan = c.chan + 1;
      add(flushed);  // SenderEvent::kFlush (retained-frame re-send)
      Composite failed = c;
      failed.sender = SenderState::kFailed;
      add(failed);  // SenderEvent::kSendError
    }
    Composite done = c;
    done.sender = SenderState::kOpen;
    add(done);  // SenderEvent::kReplayDone
  }

  // Receiver consuming one frame. Which event a frame carries is resolved
  // nondeterministically: an in-order delivery (kFrame), a non-final or
  // final watermark, a duplicate, or a frame whose validation fails
  // (kError). Trailing frames after the receiver reached a terminal state
  // are discarded by the reader's drain-to-EOF loop without touching the
  // machine.
  if (c.chan > 0) {
    for (ReceiverEvent e :
         {ReceiverEvent::kFrame, ReceiverEvent::kWatermark,
          ReceiverEvent::kFinalWatermark, ReceiverEvent::kDuplicate,
          ReceiverEvent::kError}) {
      if (recv_can(c.recv, e)) {
        Composite n = c;
        n.recv = recv_next(c.recv, e);
        n.chan = c.chan - 1;
        add(n);
      }
    }
    if (recv_terminal(c.recv)) {
      Composite n = c;
      n.chan = c.chan - 1;
      add(n);
    }
  }

  // Receiver observing EOF: only after the sender closed and every frame
  // ahead of the close was consumed (channels deliver in order). From
  // kStreaming this is a peer abort (kPeerClosed); from kDrained a clean
  // end of stream.
  if (c.sender == SenderState::kClosed && c.chan == 0 &&
      recv_can(c.recv, ReceiverEvent::kEof)) {
    Composite n = c;
    n.recv = recv_next(c.recv, ReceiverEvent::kEof);
    add(n);
  }

  // Downstream engine. Local completion needs the ingress drained (the
  // phase loop consumed the final watermark); kIngressEof into kDone
  // additionally needs the clean EOF, while the abort drain accepts any
  // terminal receiver. Errors (module exceptions, the peer_closed_error
  // thrown on kPeerClosed, reader errors on kFailed) can strike anywhere
  // the edge exists.
  if (engine_can(c.down, EngineEvent::kStart)) {
    Composite n = c;
    n.down = engine_next(c.down, EngineEvent::kStart);
    add(n);
  }
  if (engine_can(c.down, EngineEvent::kLocalComplete) &&
      (c.recv == ReceiverState::kDrained || c.recv == ReceiverState::kEof)) {
    Composite n = c;
    n.down = engine_next(c.down, EngineEvent::kLocalComplete);
    add(n);
  }
  if (engine_can(c.down, EngineEvent::kError) &&
      engine_next(c.down, EngineEvent::kError) != c.down) {
    Composite n = c;
    n.down = engine_next(c.down, EngineEvent::kError);
    add(n);
  }
  if (engine_can(c.down, EngineEvent::kCloseEgress)) {
    Composite n = c;
    n.down = engine_next(c.down, EngineEvent::kCloseEgress);
    if (c.down != n.down) {  // its own sender is unmodelled; skip self-loops
      add(n);
    }
  }
  if (engine_can(c.down, EngineEvent::kIngressEof)) {
    const bool clean = c.down == EngineState::kEgressClosed;
    if ((clean && c.recv == ReceiverState::kEof) ||
        (!clean && recv_terminal(c.recv))) {
      Composite n = c;
      n.down = engine_next(c.down, EngineEvent::kIngressEof);
      add(n);
    }
  }

  return next;
}

void check_invariants(const Composite& c) {
  // Close ordering: the sender is closed exactly in (and after) the
  // engine's egress-closed states — never while the engine could still
  // produce egress traffic, and never still open once the engine started
  // draining ingress.
  const bool egress_closed_state = c.up == EngineState::kEgressClosed ||
                                   c.up == EngineState::kAbortingEgressClosed ||
                                   c.up == EngineState::kDone ||
                                   c.up == EngineState::kAborted;
  expect((c.sender == SenderState::kClosed) == egress_closed_state,
         "close-ordering violation in " + describe(c));

  // No send after close, composed form: a closed sender never coexists
  // with a channel the upstream engine could still be filling.
  if (c.sender == SenderState::kClosed) {
    expect(!(c.up == EngineState::kCreated || c.up == EngineState::kRunning),
           "sender closed while upstream engine live in " + describe(c));
  }

  // A drained-to-EOF receiver implies the channel really drained.
  if (c.recv == ReceiverState::kEof || c.recv == ReceiverState::kPeerClosed) {
    expect(c.sender == SenderState::kClosed,
           "receiver saw EOF before the sender closed in " + describe(c));
  }
}

void explore() {
  const Composite initial{};

  // Forward reachability from the initial state.
  std::vector<bool> reachable(kStateCount, false);
  std::vector<Composite> reachable_states;
  std::deque<Composite> frontier{initial};
  reachable[pack(initial)] = true;
  std::size_t transitions = 0;
  while (!frontier.empty()) {
    const Composite c = frontier.front();
    frontier.pop_front();
    reachable_states.push_back(c);
    check_invariants(c);
    const std::vector<Composite> next = successors(c);
    expect(!next.empty() || fully_terminal(c),
           "stuck non-terminal state (hang): " + describe(c));
    expect(next.empty() || !fully_terminal(c),
           "transition out of fully terminal state: " + describe(c));
    for (const Composite& n : next) {
      ++transitions;
      if (!reachable[pack(n)]) {
        reachable[pack(n)] = true;
        frontier.push_back(n);
      }
    }
  }

  // Backward reachability from every fully terminal state, over the whole
  // (reachable or not) state space; every reachable state must be able to
  // finish — the no-livelock half of the no-hang guarantee.
  std::vector<std::vector<int>> reverse(kStateCount);
  std::deque<int> back_frontier;
  std::vector<bool> can_finish(kStateCount, false);
  for (int up = 0; up < 9; ++up) {
    for (int s = 0; s < 4; ++s) {
      for (int r = 0; r < 6; ++r) {
        for (int down = 0; down < 9; ++down) {
          for (int chan = 0; chan <= kChannelCap; ++chan) {
            const Composite c{static_cast<EngineState>(up),
                              static_cast<SenderState>(s),
                              static_cast<ReceiverState>(r),
                              static_cast<EngineState>(down), chan};
            for (const Composite& n : successors(c)) {
              reverse[pack(n)].push_back(pack(c));
            }
            if (fully_terminal(c)) {
              can_finish[pack(c)] = true;
              back_frontier.push_back(pack(c));
            }
          }
        }
      }
    }
  }
  while (!back_frontier.empty()) {
    const int id = back_frontier.front();
    back_frontier.pop_front();
    for (int pred : reverse[id]) {
      if (!can_finish[pred]) {
        can_finish[pred] = true;
        back_frontier.push_back(pred);
      }
    }
  }
  for (const Composite& c : reachable_states) {
    expect(can_finish[pack(c)],
           "livelock: no path to full termination from " + describe(c));
  }

  std::printf(
      "verify_protocol: composed exploration OK "
      "(%zu reachable states, %zu transitions)\n",
      reachable_states.size(), transitions);
}

}  // namespace

int main() {
  check_table<SenderState, SenderEvent>(
      "sender", proto::kSenderTable, proto::kSenderStates,
      proto::kSenderEvents, {SenderState::kClosed});
  check_table<ReceiverState, ReceiverEvent>(
      "receiver", proto::kReceiverTable, proto::kReceiverStates,
      proto::kReceiverEvents,
      {ReceiverState::kEof, ReceiverState::kFailed,
       ReceiverState::kPeerClosed});
  check_table<EngineState, EngineEvent>(
      "engine", proto::kEngineTable, proto::kEngineStates,
      proto::kEngineEvents, {EngineState::kDone, EngineState::kAborted});

  // Send-after-close / send-after-failure are unrepresentable: the only
  // kFlush edges in the sender table leave kOpen and the bracketed
  // kReplaying session (entered from kOpen, left for kOpen).
  for (SenderState s : proto::kSenderStates) {
    expect((proto::find_edge(proto::kSenderTable, s, SenderEvent::kFlush) !=
            nullptr) ==
               (s == SenderState::kOpen || s == SenderState::kReplaying),
           std::string("sender: unexpected kFlush edge from ") + to_string(s));
  }

  explore();
  std::printf("verify_protocol: all checks passed (%d assertions)\n",
              checks_run);
  return 0;
}
