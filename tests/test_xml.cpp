// Unit tests for the XML-subset parser.
#include <gtest/gtest.h>

#include "spec/xml.hpp"
#include "support/check.hpp"

namespace df::spec {
namespace {

TEST(Xml, ParsesElementWithAttributes) {
  const XmlNode root = parse_xml(R"(<a x="1" y='two'/>)");
  EXPECT_EQ(root.name, "a");
  EXPECT_EQ(root.attribute("x"), "1");
  EXPECT_EQ(root.attribute("y"), "two");
  EXPECT_TRUE(root.has_attribute("x"));
  EXPECT_FALSE(root.has_attribute("z"));
  EXPECT_EQ(root.attribute_or("z", "dflt"), "dflt");
}

TEST(Xml, ParsesNestedChildren) {
  const XmlNode root = parse_xml(
      "<graph><vertex id=\"a\"/><vertex id=\"b\"/><edge from=\"a\" "
      "to=\"b\"/></graph>");
  EXPECT_EQ(root.children.size(), 3U);
  EXPECT_EQ(root.children_named("vertex").size(), 2U);
  ASSERT_NE(root.child("edge"), nullptr);
  EXPECT_EQ(root.child("edge")->attribute("from"), "a");
  EXPECT_EQ(root.child("missing"), nullptr);
}

TEST(Xml, ParsesTextContent) {
  const XmlNode root = parse_xml("<note>  hello world  </note>");
  EXPECT_EQ(root.text, "hello world");
}

TEST(Xml, SkipsCommentsAndDeclaration) {
  const XmlNode root = parse_xml(
      "<?xml version=\"1.0\"?>\n"
      "<!-- top comment -->\n"
      "<a><!-- inner --><b/><!-- tail --></a>");
  EXPECT_EQ(root.name, "a");
  EXPECT_EQ(root.children.size(), 1U);
}

TEST(Xml, DecodesEntities) {
  const XmlNode root = parse_xml(
      R"(<a msg="1 &lt; 2 &amp;&amp; 3 &gt; 2">&quot;q&quot;&apos;</a>)");
  EXPECT_EQ(root.attribute("msg"), "1 < 2 && 3 > 2");
  EXPECT_EQ(root.text, "\"q\"'");
}

TEST(Xml, MismatchedClosingTagFails) {
  EXPECT_THROW(parse_xml("<a><b></a></b>"), xml_error);
}

TEST(Xml, UnterminatedElementFails) {
  EXPECT_THROW(parse_xml("<a><b/>"), xml_error);
}

TEST(Xml, DuplicateAttributeFails) {
  EXPECT_THROW(parse_xml("<a x=\"1\" x=\"2\"/>"), xml_error);
}

TEST(Xml, UnknownEntityFails) {
  EXPECT_THROW(parse_xml("<a>&bogus;</a>"), xml_error);
}

TEST(Xml, TrailingContentFails) {
  EXPECT_THROW(parse_xml("<a/><b/>"), xml_error);
}

TEST(Xml, EmptyDocumentFails) {
  EXPECT_THROW(parse_xml("   "), xml_error);
}

TEST(Xml, ErrorsCarryPosition) {
  try {
    parse_xml("<a>\n  <b x=></b>\n</a>");
    FAIL() << "expected xml_error";
  } catch (const xml_error& e) {
    EXPECT_EQ(e.line(), 2U);
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Xml, RoundTripThroughToXml) {
  const std::string text =
      "<computation><simulation timesteps=\"10\"/><graph><vertex id=\"a\" "
      "type=\"counter\"/></graph></computation>";
  const XmlNode parsed = parse_xml(text);
  const std::string serialized = to_xml(parsed);
  const XmlNode reparsed = parse_xml(serialized);
  EXPECT_EQ(reparsed.name, parsed.name);
  ASSERT_EQ(reparsed.children.size(), parsed.children.size());
  EXPECT_EQ(reparsed.child("simulation")->attribute("timesteps"), "10");
  EXPECT_EQ(reparsed.child("graph")->children[0].attribute("type"),
            "counter");
}

TEST(Xml, EscapesOnSerialize) {
  XmlNode node;
  node.name = "n";
  node.attributes["msg"] = "a<b&c\"d";
  const XmlNode back = parse_xml(to_xml(node));
  EXPECT_EQ(back.attribute("msg"), "a<b&c\"d");
}

}  // namespace
}  // namespace df::spec
