// Unit tests for histograms and the P² streaming quantile estimator.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "support/check.hpp"
#include "support/histogram.hpp"
#include "support/quantile.hpp"
#include "support/rng.hpp"

namespace df::support {
namespace {

TEST(Histogram, BinsAndOverflow) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.99);
  h.add(-1.0);
  h.add(10.0);  // hi is exclusive -> overflow
  EXPECT_EQ(h.total(), 4U);
  EXPECT_EQ(h.bin(0), 1U);
  EXPECT_EQ(h.bin(9), 1U);
  EXPECT_EQ(h.underflow(), 1U);
  EXPECT_EQ(h.overflow(), 1U);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
}

TEST(Histogram, QuantileInterpolates) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) {
    h.add(i + 0.5);
  }
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
}

TEST(Histogram, MergeAddsCounts) {
  Histogram a(0.0, 10.0, 10);
  Histogram b(0.0, 10.0, 10);
  a.add(1.0);
  b.add(1.0);
  b.add(5.0);
  a.merge(b);
  EXPECT_EQ(a.total(), 3U);
  EXPECT_EQ(a.bin(1), 2U);
  Histogram incompatible(0.0, 5.0, 10);
  EXPECT_THROW(a.merge(incompatible), check_error);
}

TEST(Histogram, RenderMentionsCounts) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(0.6);
  const std::string text = h.render(10);
  EXPECT_NE(text.find("2"), std::string::npos);
}

TEST(CountHistogram, DirectCounts) {
  CountHistogram h(8);
  h.add(0);
  h.add(1);
  h.add(1);
  h.add(7);
  EXPECT_EQ(h.total(), 4U);
  EXPECT_EQ(h.max_seen(), 7U);
  EXPECT_NEAR(h.mean(), 2.25, 1e-9);
}

TEST(CountHistogram, QuantileOnDirectRange) {
  CountHistogram h(64);
  for (std::uint64_t v = 0; v < 10; ++v) {
    h.add(v);
  }
  EXPECT_EQ(h.quantile(0.1), 0U);
  EXPECT_EQ(h.quantile(0.5), 4U);
  EXPECT_EQ(h.quantile(1.0), 9U);
}

TEST(CountHistogram, LargeValuesGoToPow2Buckets) {
  CountHistogram h(4);
  h.add(1000);
  EXPECT_EQ(h.total(), 1U);
  EXPECT_EQ(h.max_seen(), 1000U);
  EXPECT_GE(h.quantile(1.0), 512U);  // bucket [512, 1024)
}

TEST(P2Quantile, ExactForTinyStreams) {
  P2Quantile q(0.5);
  q.add(3.0);
  EXPECT_DOUBLE_EQ(q.value(), 3.0);
  q.add(1.0);
  q.add(2.0);
  EXPECT_DOUBLE_EQ(q.value(), 2.0);  // median of {1,2,3}
}

TEST(P2Quantile, MedianOfUniformStream) {
  Rng rng(11);
  P2Quantile q(0.5);
  for (int i = 0; i < 100000; ++i) {
    q.add(rng.next_double(0.0, 1.0));
  }
  EXPECT_NEAR(q.value(), 0.5, 0.02);
}

TEST(P2Quantile, TailQuantileOfNormalStream) {
  Rng rng(13);
  P2Quantile q(0.95);
  std::vector<double> all;
  for (int i = 0; i < 50000; ++i) {
    const double x = rng.next_normal(0.0, 1.0);
    q.add(x);
    all.push_back(x);
  }
  std::sort(all.begin(), all.end());
  const double exact = all[static_cast<std::size_t>(0.95 * all.size())];
  EXPECT_NEAR(q.value(), exact, 0.06);
}

TEST(P2Quantile, RejectsDegenerateQuantiles) {
  EXPECT_THROW(P2Quantile(0.0), check_error);
  EXPECT_THROW(P2Quantile(1.0), check_error);
}

TEST(P2Quantile, ResetClearsState) {
  P2Quantile q(0.5);
  for (int i = 0; i < 100; ++i) {
    q.add(100.0);
  }
  q.reset();
  EXPECT_EQ(q.count(), 0U);
  q.add(1.0);
  EXPECT_DOUBLE_EQ(q.value(), 1.0);
}

}  // namespace
}  // namespace df::support
