// Unit tests for the sink store and the serializability comparator.
#include <gtest/gtest.h>

#include "concurrency/thread_pool.hpp"
#include "core/sink_store.hpp"
#include "trace/serializability.hpp"

namespace df::core {
namespace {

SinkRecord rec(event::PhaseId phase, graph::VertexId vertex, double value) {
  return SinkRecord{phase, vertex, 0, event::Value(value)};
}

TEST(SinkStore, CanonicalOrdersByPhaseVertexPort) {
  SinkStore store;
  store.record_batch({rec(2, 1, 21.0)});
  store.record_batch({rec(1, 2, 12.0)});
  store.record_batch({rec(1, 1, 11.0)});
  const auto sorted = store.canonical();
  ASSERT_EQ(sorted.size(), 3U);
  EXPECT_DOUBLE_EQ(sorted[0].value.as_double(), 11.0);
  EXPECT_DOUBLE_EQ(sorted[1].value.as_double(), 12.0);
  EXPECT_DOUBLE_EQ(sorted[2].value.as_double(), 21.0);
}

TEST(SinkStore, BatchEmissionOrderIsPreserved) {
  SinkStore store;
  // Two emissions on the same (phase, vertex, port) keep batch order.
  store.record_batch({rec(1, 1, 1.0), rec(1, 1, 2.0)});
  const auto sorted = store.canonical();
  ASSERT_EQ(sorted.size(), 2U);
  EXPECT_DOUBLE_EQ(sorted[0].value.as_double(), 1.0);
  EXPECT_DOUBLE_EQ(sorted[1].value.as_double(), 2.0);
}

TEST(SinkStore, ForVertexFilters) {
  SinkStore store;
  store.record_batch({rec(1, 1, 1.0), rec(1, 2, 2.0), rec(2, 1, 3.0)});
  const auto only = store.for_vertex(1);
  ASSERT_EQ(only.size(), 2U);
  EXPECT_EQ(only[0].phase, 1U);
  EXPECT_EQ(only[1].phase, 2U);
}

TEST(SinkStore, EmptyBatchIsNoOp) {
  SinkStore store;
  store.record_batch({});
  EXPECT_EQ(store.size(), 0U);
}

TEST(SinkStore, ClearResets) {
  SinkStore store;
  store.record_batch({rec(1, 1, 1.0)});
  store.clear();
  EXPECT_EQ(store.size(), 0U);
}

TEST(SinkStore, ConcurrentBatchesAllLand) {
  SinkStore store;
  conc::parallel_for_threads(8, [&](std::size_t t) {
    for (int i = 0; i < 500; ++i) {
      store.record_batch(
          {rec(static_cast<event::PhaseId>(i + 1),
               static_cast<graph::VertexId>(t), static_cast<double>(i))});
    }
  });
  EXPECT_EQ(store.size(), 4000U);
}

TEST(SinkRecordToString, MentionsFields) {
  const std::string text = to_string(rec(3, 7, 1.5));
  EXPECT_NE(text.find("phase 3"), std::string::npos);
  EXPECT_NE(text.find("vertex 7"), std::string::npos);
  EXPECT_NE(text.find("1.5"), std::string::npos);
}

TEST(CompareSinks, DetectsValueMismatch) {
  SinkStore a;
  SinkStore b;
  a.record_batch({rec(1, 1, 1.0)});
  b.record_batch({rec(1, 1, 2.0)});
  const auto report = trace::compare_sinks(a, b);
  EXPECT_FALSE(report.equivalent);
  ASSERT_FALSE(report.differences.empty());
  EXPECT_NE(report.summary().find("DIVERGENT"), std::string::npos);
}

TEST(CompareSinks, DetectsCountMismatch) {
  SinkStore a;
  SinkStore b;
  a.record_batch({rec(1, 1, 1.0), rec(2, 1, 2.0)});
  b.record_batch({rec(1, 1, 1.0)});
  const auto report = trace::compare_sinks(a, b);
  EXPECT_FALSE(report.equivalent);
  EXPECT_EQ(report.reference_records, 2U);
  EXPECT_EQ(report.candidate_records, 1U);
}

TEST(CompareSinks, EquivalentStores) {
  SinkStore a;
  SinkStore b;
  a.record_batch({rec(1, 1, 1.0)});
  b.record_batch({rec(1, 1, 1.0)});
  const auto report = trace::compare_sinks(a, b);
  EXPECT_TRUE(report.equivalent);
  EXPECT_NE(report.summary().find("EQUIVALENT"), std::string::npos);
}

TEST(CompareSinks, DifferenceListIsBounded) {
  SinkStore a;
  SinkStore b;
  for (int i = 1; i <= 50; ++i) {
    a.record_batch({rec(static_cast<event::PhaseId>(i), 1, 1.0)});
    b.record_batch({rec(static_cast<event::PhaseId>(i), 1, 2.0)});
  }
  const auto report = trace::compare_sinks(a, b, 5);
  EXPECT_FALSE(report.equivalent);
  EXPECT_LE(report.differences.size(), 5U);
}

}  // namespace
}  // namespace df::core
