// Differential and allocation tests for the flat scheduler.
//
// Layer 1 — randomized differential test: a ReferenceScheduler written
// straight from the paper's definitions with node-based containers (the
// seed implementation's std::map/std::set algorithm, kept as the executable
// spec) runs side by side with the flat core::Scheduler over random DAGs
// and random phase/execution interleavings. After *every* transition the
// two must produce identical Snapshots, and every transition must issue
// identical ready batches with identical sealed bundles.
//
// Layer 2 — zero-allocation steady state: a counting global operator
// new/delete pair measures heap traffic inside scheduler transitions.
// After warm-up (pool, ring, and scratch buffers at steady-state
// capacity), start_phase/finish_execution through the buffer-reuse API
// must not allocate at all — single-threaded deterministically, and under
// a multi-threaded engine-style lock discipline (allocations counted only
// while the global lock is held).
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <new>
#include <set>
#include <span>
#include <thread>
#include <vector>

#include "concurrency/blocking_queue.hpp"
#include "concurrency/spsc_ring.hpp"
#include "core/scheduler.hpp"
#include "core/sharded_scheduler.hpp"
#include "graph/generators.hpp"
#include "graph/numbering.hpp"
#include "graph/partition.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

// --- allocation counting hook ----------------------------------------------

namespace {
thread_local std::uint64_t g_thread_allocs = 0;
}  // namespace

void* operator new(std::size_t size) {
  ++g_thread_allocs;
  if (void* p = std::malloc(size)) {
    return p;
  }
  throw std::bad_alloc{};
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  ++g_thread_allocs;
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace df::core {
namespace {

using graph::Dag;
using graph::Numbering;

// --- the reference model ----------------------------------------------------

/// The seed implementation's scheduler, node-based containers and all: a
/// direct transcription of Listings 1-2 over std::map/std::set. Kept here
/// as the executable specification the flat scheduler is diffed against.
class ReferenceScheduler {
 public:
  using ReadyPair = Scheduler::ReadyPair;
  using Delivery = Scheduler::Delivery;
  using Snapshot = Scheduler::Snapshot;

  explicit ReferenceScheduler(std::vector<std::uint32_t> m)
      : m_(std::move(m)), n_(static_cast<std::uint32_t>(m_.size() - 1)) {
    vertices_.resize(n_ + 1);
  }

  std::vector<ReadyPair> start_phase(event::PhaseId p,
                                     std::vector<event::InputBundle> bundles) {
    DF_CHECK(p == pmax_ + 1, "phases must start in order");
    DF_CHECK(bundles.size() == m_[0], "need one bundle per source vertex");
    pmax_ = p;
    PhaseState state;
    state.id = p;
    phases_.push_back(std::move(state));
    PhaseState& ps = phases_.back();
    std::set<std::uint32_t> affected;
    for (std::uint32_t s = 1; s <= m_[0]; ++s) {
      vertices_[s].full.emplace(p, std::move(bundles[s - 1]));
      ps.pending.insert(s);
      affected.insert(s);
    }
    return collect_ready(affected);
  }

  std::vector<ReadyPair> finish_execution(std::uint32_t vertex,
                                          event::PhaseId p,
                                          std::vector<Delivery> deliveries) {
    VertexState& vs = vertices_[vertex];
    DF_CHECK(vs.in_ready && vs.ready_phase == p, "pair was not issued");
    vs.in_ready = false;
    PhaseState& ps = phase_state(p);
    std::set<std::uint32_t> affected;
    for (Delivery& d : deliveries) {
      ps.partial[d.to_index].push_back(
          event::Message{d.to_port, std::move(d.value)});
      ps.pending.insert(d.to_index);
    }
    ps.pending.erase(vertex);
    update_x_from(p);
    promote_newly_full(p, affected);
    retire_completed();
    affected.insert(vertex);
    return collect_ready(affected);
  }

  Snapshot snapshot() const {
    Snapshot snap;
    snap.pmax = pmax_;
    snap.completed_through = completed_through_;
    for (const PhaseState& ps : phases_) {
      snap.x.emplace_back(ps.id, ps.x);
      for (const auto& [vertex, bundle] : ps.partial) {
        (void)bundle;
        snap.partial.push_back(Snapshot::Pair{vertex, ps.id});
      }
    }
    for (std::uint32_t v = 1; v <= n_; ++v) {
      const VertexState& vs = vertices_[v];
      for (const auto& [phase, bundle] : vs.full) {
        (void)bundle;
        snap.full.push_back(Snapshot::Pair{v, phase});
      }
      if (vs.in_ready) {
        snap.full.push_back(Snapshot::Pair{v, vs.ready_phase});
        snap.ready.push_back(Snapshot::Pair{v, vs.ready_phase});
      }
    }
    const auto by_phase_vertex = [](const Snapshot::Pair& a,
                                    const Snapshot::Pair& b) {
      return a.phase != b.phase ? a.phase < b.phase : a.vertex < b.vertex;
    };
    std::sort(snap.partial.begin(), snap.partial.end(), by_phase_vertex);
    std::sort(snap.full.begin(), snap.full.end(), by_phase_vertex);
    std::sort(snap.ready.begin(), snap.ready.end(), by_phase_vertex);
    return snap;
  }

  bool all_started_phases_complete() const { return phases_.empty(); }
  event::PhaseId completed_through() const { return completed_through_; }

 private:
  struct PhaseState {
    event::PhaseId id = 0;
    std::uint32_t x = 0;
    std::map<std::uint32_t, event::InputBundle> partial;
    std::set<std::uint32_t> pending;
  };
  struct VertexState {
    std::map<event::PhaseId, event::InputBundle> full;
    bool in_ready = false;
    event::PhaseId ready_phase = 0;
  };

  PhaseState& phase_state(event::PhaseId p) {
    return phases_[p - phases_.front().id];
  }

  std::uint32_t x(event::PhaseId p) const {
    if (p == 0 || p <= completed_through_) {
      return n_;
    }
    if (phases_.empty() || p < phases_.front().id ||
        p >= phases_.front().id + phases_.size()) {
      return 0;
    }
    return phases_[p - phases_.front().id].x;
  }

  void update_x_from(event::PhaseId from) {
    const event::PhaseId first = phases_.front().id;
    for (std::size_t i = from - first; i < phases_.size(); ++i) {
      PhaseState& ps = phases_[i];
      std::uint32_t candidate =
          ps.pending.empty() ? n_ : *ps.pending.begin() - 1;
      const std::uint32_t previous = i == 0 ? x(ps.id - 1) : phases_[i - 1].x;
      ps.x = std::min(candidate, previous);
    }
  }

  void promote_newly_full(event::PhaseId from,
                          std::set<std::uint32_t>& affected) {
    const event::PhaseId first = phases_.front().id;
    for (std::size_t i = from >= first ? from - first : 0;
         i < phases_.size(); ++i) {
      PhaseState& ps = phases_[i];
      const std::uint32_t bound = m_[ps.x];
      while (!ps.partial.empty() && ps.partial.begin()->first <= bound) {
        auto node = ps.partial.extract(ps.partial.begin());
        vertices_[node.key()].full.emplace(ps.id, std::move(node.mapped()));
        affected.insert(node.key());
      }
    }
  }

  std::vector<ReadyPair> collect_ready(
      const std::set<std::uint32_t>& affected) {
    std::vector<ReadyPair> ready;
    for (const std::uint32_t v : affected) {
      VertexState& vs = vertices_[v];
      if (vs.in_ready || vs.full.empty()) {
        continue;
      }
      auto node = vs.full.extract(vs.full.begin());
      vs.in_ready = true;
      vs.ready_phase = node.key();
      ready.push_back(ReadyPair{v, node.key(), std::move(node.mapped())});
    }
    return ready;
  }

  void retire_completed() {
    while (!phases_.empty() && phases_.front().x == n_) {
      completed_through_ = phases_.front().id;
      phases_.pop_front();
    }
  }

  std::vector<std::uint32_t> m_;
  std::uint32_t n_;
  event::PhaseId pmax_ = 0;
  event::PhaseId completed_through_ = 0;
  std::deque<PhaseState> phases_;
  std::vector<VertexState> vertices_;
};

std::vector<std::vector<std::uint32_t>> internal_successors(
    const Dag& dag, const Numbering& numbering) {
  std::vector<std::vector<std::uint32_t>> succs(dag.vertex_count() + 1);
  for (const graph::Edge& e : dag.edges()) {
    succs[numbering.index_of[e.from]].push_back(numbering.index_of[e.to]);
  }
  return succs;
}

/// Vector-returning convenience over the flat buffer-reuse API (the
/// seed-compat wrappers no production code used are gone from Scheduler).
std::vector<Scheduler::ReadyPair> start_phase_vec(
    Scheduler& scheduler, event::PhaseId p,
    std::vector<event::InputBundle> bundles) {
  std::vector<Scheduler::ReadyPair> out;
  scheduler.start_phase(p, std::span<event::InputBundle>(bundles), out);
  return out;
}

void expect_same_ready(const std::vector<Scheduler::ReadyPair>& flat,
                       const std::vector<Scheduler::ReadyPair>& ref) {
  ASSERT_EQ(flat.size(), ref.size());
  // Both implementations issue in ascending vertex order.
  for (std::size_t i = 0; i < flat.size(); ++i) {
    EXPECT_EQ(flat[i].vertex, ref[i].vertex);
    EXPECT_EQ(flat[i].phase, ref[i].phase);
    EXPECT_EQ(flat[i].bundle, ref[i].bundle) << "bundle mismatch at vertex "
                                             << flat[i].vertex;
  }
}

// --- layer 1: randomized differential --------------------------------------

class FlatVsReference : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlatVsReference, IdenticalSnapshotsAfterEveryTransition) {
  const std::uint64_t seed = GetParam();
  support::Rng rng(seed);

  const Dag dag = graph::random_dag(
      5 + static_cast<std::uint32_t>(seed % 27), 0.3, rng);
  const Numbering numbering = graph::compute_satisfactory_numbering(dag);
  const auto succs = internal_successors(dag, numbering);

  Scheduler flat(numbering.m);
  ReferenceScheduler reference(numbering.m);

  struct Issued {
    std::uint32_t vertex;
    event::PhaseId phase;
    event::InputBundle bundle;  // carried so finish can recycle it
  };
  std::vector<Issued> issued;
  const event::PhaseId total_phases = 10;
  event::PhaseId started = 0;

  const auto absorb = [&](std::vector<Scheduler::ReadyPair> flat_ready,
                          std::vector<Scheduler::ReadyPair> ref_ready) {
    expect_same_ready(flat_ready, ref_ready);
    for (auto& pair : flat_ready) {
      issued.push_back(
          Issued{pair.vertex, pair.phase, std::move(pair.bundle)});
    }
  };

  while (started < total_phases || !issued.empty()) {
    const bool start_now = started < total_phases &&
                           (issued.empty() || rng.next_bernoulli(0.35));
    if (start_now) {
      ++started;
      // Random payload per source, identical for both schedulers.
      std::vector<event::InputBundle> bundles(numbering.m[0]);
      std::vector<event::InputBundle> bundles_copy(numbering.m[0]);
      for (std::uint32_t s = 0; s < numbering.m[0]; ++s) {
        if (rng.next_bernoulli(0.5)) {
          const double payload = rng.next_normal();
          bundles[s].push_back(event::Message{0, event::Value(payload)});
          bundles_copy[s].push_back(event::Message{0, event::Value(payload)});
        }
      }
      absorb(start_phase_vec(flat, started, std::move(bundles)),
             reference.start_phase(started, std::move(bundles_copy)));
    } else {
      const std::size_t pick =
          static_cast<std::size_t>(rng.next_below(issued.size()));
      Issued pair = std::move(issued[pick]);
      issued.erase(issued.begin() + static_cast<std::ptrdiff_t>(pick));

      std::vector<Scheduler::Delivery> deliveries;
      std::vector<Scheduler::Delivery> deliveries_copy;
      for (const std::uint32_t w : succs[pair.vertex]) {
        if (rng.next_bernoulli(0.6)) {
          const double payload = rng.next_normal();
          deliveries.push_back(
              Scheduler::Delivery{w, 0, event::Value(payload)});
          deliveries_copy.push_back(
              Scheduler::Delivery{w, 0, event::Value(payload)});
        }
      }
      // Flat side goes through the buffer-reuse API with bundle recycling;
      // reference side through the plain vector API.
      std::vector<Scheduler::ReadyPair> flat_ready;
      flat.finish_execution(pair.vertex, pair.phase,
                            std::span<Scheduler::Delivery>(deliveries),
                            std::move(pair.bundle), flat_ready);
      absorb(std::move(flat_ready),
             reference.finish_execution(pair.vertex, pair.phase,
                                        std::move(deliveries_copy)));
    }
    EXPECT_EQ(flat.snapshot(), reference.snapshot())
        << "snapshot divergence (seed " << seed << ")";
  }

  EXPECT_TRUE(flat.all_started_phases_complete());
  EXPECT_TRUE(reference.all_started_phases_complete());
  EXPECT_EQ(flat.completed_through(), total_phases);
  EXPECT_EQ(reference.completed_through(), total_phases);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlatVsReference,
                         ::testing::Range<std::uint64_t>(0, 25));

// --- layer 1b: staged-delivery differential ---------------------------------
//
// Drives the batched path the engine's delivery rings use: executed pairs
// are staged into a few simulated per-worker FIFOs and applied in random
// drain batches through finish_execution_batch, while the node-based
// reference applies the same finishes one at a time in drain order. After
// every drain the snapshots must match exactly and the issued ready sets
// (including sealed bundle contents) must be identical — the batched
// frontier may lag only *inside* the call, never across it.

class FlatVsReferenceStaged : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(FlatVsReferenceStaged, BatchedDrainsMatchPerPairReference) {
  const std::uint64_t seed = GetParam();
  support::Rng rng(seed);

  const Dag dag = graph::random_dag(
      6 + static_cast<std::uint32_t>(seed % 23), 0.3, rng);
  const Numbering numbering = graph::compute_satisfactory_numbering(dag);
  const auto succs = internal_successors(dag, numbering);

  Scheduler flat(numbering.m);
  ReferenceScheduler reference(numbering.m);

  constexpr std::size_t kRings = 3;  // simulated workers
  struct Issued {
    std::uint32_t vertex;
    event::PhaseId phase;
    event::InputBundle bundle;
  };
  std::vector<Issued> issued;
  // Per-"worker" staging FIFOs: flat-side entry plus the reference-side
  // copy of the same finish, kept in lockstep.
  std::array<std::deque<Scheduler::StagedFinish>, kRings> rings;
  std::array<std::deque<Scheduler::StagedFinish>, kRings> rings_ref;
  std::size_t staged_count = 0;
  const event::PhaseId total_phases = 12;
  event::PhaseId started = 0;

  const auto absorb = [&](std::vector<Scheduler::ReadyPair>& flat_ready,
                          std::vector<Scheduler::ReadyPair>& ref_ready) {
    expect_same_ready(flat_ready, ref_ready);
    for (auto& pair : flat_ready) {
      issued.push_back(
          Issued{pair.vertex, pair.phase, std::move(pair.bundle)});
    }
    flat_ready.clear();
    ref_ready.clear();
  };

  std::vector<Scheduler::ReadyPair> flat_ready;
  std::vector<Scheduler::ReadyPair> ref_ready;
  std::vector<Scheduler::StagedFinish> batch;

  const auto drain = [&](std::size_t limit_per_ring) {
    // Pop a prefix of every ring (respecting each worker's FIFO order,
    // like SpscRing::drain) into one batch, apply it to the flat scheduler
    // in a single call and to the reference pair-by-pair in drain order.
    batch.clear();
    for (std::size_t r = 0; r < kRings; ++r) {
      const std::size_t take = std::min(limit_per_ring, rings[r].size());
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(rings[r].front()));
        rings[r].pop_front();
      }
    }
    for (const Scheduler::StagedFinish& staged : batch) {
      // Reference applies the identical finish sequence, one at a time.
      std::size_t r = 0;
      for (; r < kRings; ++r) {
        if (!rings_ref[r].empty() &&
            rings_ref[r].front().vertex == staged.vertex &&
            rings_ref[r].front().phase == staged.phase) {
          break;
        }
      }
      ASSERT_LT(r, kRings) << "reference ring desynchronized";
      Scheduler::StagedFinish ref_staged = std::move(rings_ref[r].front());
      rings_ref[r].pop_front();
      auto ready = reference.finish_execution(
          ref_staged.vertex, ref_staged.phase,
          std::move(ref_staged.deliveries));
      for (auto& pair : ready) {
        ref_ready.push_back(std::move(pair));
      }
    }
    staged_count -= batch.size();
    flat.finish_execution_batch(std::span<Scheduler::StagedFinish>(batch),
                                flat_ready);
    // Both sides issue in ascending vertex order per collect, but the
    // reference collects once per finish; canonicalize before comparing.
    const auto by_vertex = [](const Scheduler::ReadyPair& a,
                              const Scheduler::ReadyPair& b) {
      return a.vertex != b.vertex ? a.vertex < b.vertex : a.phase < b.phase;
    };
    std::sort(flat_ready.begin(), flat_ready.end(), by_vertex);
    std::sort(ref_ready.begin(), ref_ready.end(), by_vertex);
    absorb(flat_ready, ref_ready);
    EXPECT_EQ(flat.snapshot(), reference.snapshot())
        << "snapshot divergence after drain (seed " << seed << ")";
  };

  while (started < total_phases || !issued.empty() || staged_count > 0) {
    const double roll = rng.next_double();
    if (started < total_phases &&
        (roll < 0.25 || (issued.empty() && staged_count == 0))) {
      // Start a phase (goes through the lock directly, as in the engine).
      ++started;
      std::vector<event::InputBundle> bundles(numbering.m[0]);
      std::vector<event::InputBundle> bundles_copy(numbering.m[0]);
      for (std::uint32_t s = 0; s < numbering.m[0]; ++s) {
        if (rng.next_bernoulli(0.5)) {
          const double payload = rng.next_normal();
          bundles[s].push_back(event::Message{0, event::Value(payload)});
          bundles_copy[s].push_back(event::Message{0, event::Value(payload)});
        }
      }
      auto fr = start_phase_vec(flat, started, std::move(bundles));
      auto rr = reference.start_phase(started, std::move(bundles_copy));
      absorb(fr, rr);
      EXPECT_EQ(flat.snapshot(), reference.snapshot());
    } else if (!issued.empty() && (roll < 0.75 || staged_count == 0)) {
      // "Execute" a random issued pair and stage the finish.
      const std::size_t pick =
          static_cast<std::size_t>(rng.next_below(issued.size()));
      Issued pair = std::move(issued[pick]);
      issued.erase(issued.begin() + static_cast<std::ptrdiff_t>(pick));
      Scheduler::StagedFinish staged;
      Scheduler::StagedFinish staged_ref;
      staged.vertex = staged_ref.vertex = pair.vertex;
      staged.phase = staged_ref.phase = pair.phase;
      for (const std::uint32_t w : succs[pair.vertex]) {
        if (rng.next_bernoulli(0.6)) {
          const double payload = rng.next_normal();
          staged.deliveries.push_back(
              Scheduler::Delivery{w, 0, event::Value(payload)});
          staged_ref.deliveries.push_back(
              Scheduler::Delivery{w, 0, event::Value(payload)});
        }
      }
      staged.recycled = std::move(pair.bundle);
      const std::size_t r = static_cast<std::size_t>(rng.next_below(kRings));
      rings[r].push_back(std::move(staged));
      rings_ref[r].push_back(std::move(staged_ref));
      ++staged_count;
    } else {
      // Drain: sometimes everything visible, sometimes partial prefixes.
      drain(rng.next_bernoulli(0.5)
                ? std::numeric_limits<std::size_t>::max()
                : 1 + static_cast<std::size_t>(rng.next_below(3)));
    }
  }

  EXPECT_TRUE(flat.all_started_phases_complete());
  EXPECT_TRUE(reference.all_started_phases_complete());
  EXPECT_EQ(flat.completed_through(), total_phases);
  EXPECT_EQ(reference.completed_through(), total_phases);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlatVsReferenceStaged,
                         ::testing::Range<std::uint64_t>(0, 25));

// --- layer 1c: sharded-vs-flat differential ---------------------------------
//
// The partition-aligned sharded scheduler against the flat scheduler over
// random DAGs, random shard counts (1..8) and random staged-batch drains.
// Single-threaded, apply_finish_batch + collect must be *exactly*
// equivalent to the flat finish_execution_batch: identical ready batches
// (order and sealed bundle contents included) and identical Snapshots
// after every transition — phase starts, batched drains, everything.

class ShardedVsFlat : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ShardedVsFlat, IdenticalSnapshotsAfterEveryTransition) {
  const std::uint64_t seed = GetParam();
  support::Rng rng(seed);

  const Dag dag = graph::random_dag(
      5 + static_cast<std::uint32_t>(seed % 28), 0.3, rng);
  const Numbering numbering = graph::compute_satisfactory_numbering(dag);
  const auto succs = internal_successors(dag, numbering);
  const auto n = static_cast<std::uint32_t>(dag.vertex_count());

  const std::size_t shards = 1 + static_cast<std::size_t>(rng.next_below(
                                     std::min<std::uint64_t>(8, n)));
  constexpr std::size_t kCapacity = 16;  // sharded phase-slot ring depth
  Scheduler flat(numbering.m);
  ShardedScheduler sharded(
      numbering.m,
      graph::make_shard_map(graph::partition_balanced(numbering, shards)),
      kCapacity);

  struct Issued {
    std::uint32_t vertex;
    event::PhaseId phase;
    event::InputBundle bundle;
    event::InputBundle bundle_copy;  // flat side recycles its own copy
  };
  std::vector<Issued> issued;
  std::vector<Scheduler::StagedFinish> staged;      // sharded side
  std::vector<Scheduler::StagedFinish> staged_ref;  // flat side, same order
  const event::PhaseId total_phases = 12;
  event::PhaseId started = 0;

  std::vector<Scheduler::ReadyPair> sharded_ready;
  std::vector<Scheduler::ReadyPair> flat_ready;

  const auto absorb = [&] {
    expect_same_ready(sharded_ready, flat_ready);
    for (std::size_t i = 0; i < sharded_ready.size(); ++i) {
      issued.push_back(Issued{sharded_ready[i].vertex,
                              sharded_ready[i].phase,
                              std::move(sharded_ready[i].bundle),
                              std::move(flat_ready[i].bundle)});
    }
    sharded_ready.clear();
    flat_ready.clear();
    EXPECT_EQ(sharded.snapshot(), flat.snapshot())
        << "snapshot divergence (seed " << seed << ", shards " << shards
        << ")";
  };

  const auto drain = [&] {
    if (staged.empty()) {
      return;
    }
    sharded.apply_finish_batch(
        std::span<Scheduler::StagedFinish>(staged));
    sharded.collect(sharded_ready);
    flat.finish_execution_batch(
        std::span<Scheduler::StagedFinish>(staged_ref), flat_ready);
    staged.clear();
    staged_ref.clear();
    absorb();
  };

  while (started < total_phases || !issued.empty() || !staged.empty()) {
    const double roll = rng.next_double();
    const bool can_start =
        started < total_phases &&
        flat.active_phase_count() + 1 < kCapacity;  // sharded ring bound
    if (can_start && (roll < 0.25 || (issued.empty() && staged.empty()))) {
      ++started;
      std::vector<event::InputBundle> bundles(numbering.m[0]);
      std::vector<event::InputBundle> bundles_copy(numbering.m[0]);
      for (std::uint32_t s = 0; s < numbering.m[0]; ++s) {
        if (rng.next_bernoulli(0.5)) {
          const double payload = rng.next_normal();
          bundles[s].push_back(event::Message{0, event::Value(payload)});
          bundles_copy[s].push_back(event::Message{0, event::Value(payload)});
        }
      }
      sharded.start_phase(started, std::span<event::InputBundle>(bundles),
                          sharded_ready);
      flat.start_phase(started, std::span<event::InputBundle>(bundles_copy),
                       flat_ready);
      absorb();
    } else if (!issued.empty() && (roll < 0.75 || staged.empty())) {
      // "Execute" a random issued pair and stage the identical finish on
      // both sides.
      const std::size_t pick =
          static_cast<std::size_t>(rng.next_below(issued.size()));
      Issued pair = std::move(issued[pick]);
      issued.erase(issued.begin() + static_cast<std::ptrdiff_t>(pick));
      Scheduler::StagedFinish f;
      Scheduler::StagedFinish f_ref;
      f.vertex = f_ref.vertex = pair.vertex;
      f.phase = f_ref.phase = pair.phase;
      for (const std::uint32_t w : succs[pair.vertex]) {
        if (rng.next_bernoulli(0.6)) {
          const double payload = rng.next_normal();
          f.deliveries.push_back(
              Scheduler::Delivery{w, 0, event::Value(payload)});
          f_ref.deliveries.push_back(
              Scheduler::Delivery{w, 0, event::Value(payload)});
        }
      }
      f.recycled = std::move(pair.bundle);
      f_ref.recycled = std::move(pair.bundle_copy);
      staged.push_back(std::move(f));
      staged_ref.push_back(std::move(f_ref));
      if (rng.next_bernoulli(0.4)) {
        drain();
      }
    } else {
      drain();
    }
  }

  EXPECT_TRUE(sharded.all_started_phases_complete());
  EXPECT_TRUE(flat.all_started_phases_complete());
  EXPECT_EQ(sharded.completed_through(), total_phases);
  EXPECT_EQ(flat.completed_through(), total_phases);
  for (event::PhaseId p = 1; p <= total_phases; ++p) {
    EXPECT_EQ(sharded.x(p), flat.x(p));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardedVsFlat,
                         ::testing::Range<std::uint64_t>(0, 30));

// --- layer 2: zero-allocation steady state ----------------------------------

/// Drives one scheduler like the engine does (window of in-flight phases,
/// all vertices forward to all successors) and returns the number of heap
/// allocations performed inside scheduler transitions after `warmup_phases`.
/// With `event_sources`, every source bundle carries a message (exercising
/// capacity-carrying adoption, the fan-in pool-recycling path).
struct SteadyStats {
  std::uint64_t allocs = 0;             // inside transitions, post warm-up
  std::size_t pool_slots_at_warmup = 0;
  std::size_t pool_slots_final = 0;
  std::uint64_t steady_transitions = 0;
};

SteadyStats measure_steady_allocs(const Dag& dag, event::PhaseId phases,
                                  event::PhaseId warmup_phases,
                                  std::size_t window,
                                  bool event_sources = false) {
  const Numbering numbering = graph::compute_satisfactory_numbering(dag);
  const auto succs = internal_successors(dag, numbering);

  Scheduler scheduler(numbering.m);
  std::vector<event::InputBundle> bundles;
  std::vector<Scheduler::ReadyPair> queue;
  std::vector<Scheduler::ReadyPair> ready;
  std::vector<Scheduler::Delivery> deliveries;
  event::PhaseId next_phase = 1;
  SteadyStats stats;

  while (next_phase <= phases || !queue.empty()) {
    const bool in_steady = next_phase > warmup_phases;
    if (in_steady && stats.pool_slots_at_warmup == 0) {
      stats.pool_slots_at_warmup = scheduler.bundle_pool_slots();
    }
    if (next_phase <= phases &&
        (queue.empty() || scheduler.active_phase_count() < window)) {
      bundles.clear();
      bundles.resize(numbering.m[0]);
      if (event_sources) {
        for (auto& bundle : bundles) {
          bundle.push_back(event::Message{0, event::Value(2.5)});
        }
      }
      ready.clear();
      const std::uint64_t before = g_thread_allocs;
      scheduler.start_phase(next_phase,
                            std::span<event::InputBundle>(bundles), ready);
      if (in_steady) {
        stats.allocs += g_thread_allocs - before;
        ++stats.steady_transitions;
      }
      ++next_phase;
    } else {
      Scheduler::ReadyPair pair = std::move(queue.back());
      queue.pop_back();
      deliveries.clear();
      for (const std::uint32_t w : succs[pair.vertex]) {
        deliveries.push_back(Scheduler::Delivery{w, 0, event::Value(1.0)});
      }
      ready.clear();
      const std::uint64_t before = g_thread_allocs;
      scheduler.finish_execution(pair.vertex, pair.phase,
                                 std::span<Scheduler::Delivery>(deliveries),
                                 std::move(pair.bundle), ready);
      if (in_steady) {
        stats.allocs += g_thread_allocs - before;
        ++stats.steady_transitions;
      }
    }
    for (auto& r : ready) {
      queue.push_back(std::move(r));
    }
    ready.clear();
  }
  EXPECT_TRUE(scheduler.all_started_phases_complete());
  EXPECT_EQ(scheduler.completed_through(), phases);
  stats.pool_slots_final = scheduler.bundle_pool_slots();
  return stats;
}

TEST(ZeroAllocation, SteadyStateTransitionsDoNotAllocate) {
  support::Rng rng(42);
  const SteadyStats stats = measure_steady_allocs(
      graph::layered(4, 6, 2, rng), /*phases=*/60, /*warmup_phases=*/20,
      /*window=*/4);
  EXPECT_EQ(stats.allocs, 0U)
      << "scheduler transitions allocated after warm-up";
  EXPECT_EQ(stats.pool_slots_final, stats.pool_slots_at_warmup)
      << "bundle pool kept growing after warm-up";
}

TEST(ZeroAllocation, FanInWithEventBundlesStaysBounded) {
  // Many event-carrying sources funneling into one sink: adoptions of
  // capacity-carrying bundles outpace acquisitions, the scenario where a
  // pool that grew a slot whenever donations found no spare room would
  // leak slots at a constant rate forever. The pool footprint must be
  // exactly flat after warm-up. Heap traffic is not zero here — bundles
  // of different sizes (1-message source bundles, 2-message fan-in
  // bundles) share the pool, so a reused buffer may regrow once — but it
  // is bounded per transition, not cumulative.
  const SteadyStats stats = measure_steady_allocs(
      graph::binary_in_tree(4), /*phases=*/600, /*warmup_phases=*/200,
      /*window=*/4, /*event_sources=*/true);
  EXPECT_EQ(stats.pool_slots_final, stats.pool_slots_at_warmup)
      << "bundle pool kept growing after warm-up (slot leak)";
  EXPECT_LE(stats.allocs, stats.steady_transitions)
      << "more than one (re)allocation per transition: capacity churn "
         "is compounding instead of bounded";
}

TEST(ZeroAllocation, StagedBatchApplicationDoesNotAllocateUnderLock) {
  // The engine's drain path: staged finishes accumulate outside the lock
  // and finish_execution_batch applies them in one critical section. Only
  // the batched call is measured — batch assembly is off-lock by design.
  support::Rng rng(11);
  const Dag dag = graph::layered(4, 6, 2, rng);
  const Numbering numbering = graph::compute_satisfactory_numbering(dag);
  const auto succs = internal_successors(dag, numbering);

  Scheduler scheduler(numbering.m);
  const std::size_t window = 4;
  scheduler.reserve_steady_state(window,
                                 window * (dag.vertex_count() + 1));
  std::vector<event::InputBundle> bundles;
  std::vector<Scheduler::ReadyPair> queue;
  std::vector<Scheduler::ReadyPair> ready;
  std::vector<Scheduler::StagedFinish> batch;
  const event::PhaseId phases = 80;
  const event::PhaseId warmup = 30;
  std::uint64_t steady_allocs = 0;
  std::uint64_t steady_batches = 0;
  event::PhaseId next_phase = 1;

  while (next_phase <= phases || !queue.empty()) {
    if (next_phase <= phases &&
        (queue.empty() || scheduler.active_phase_count() < window)) {
      bundles.clear();
      bundles.resize(numbering.m[0]);
      ready.clear();
      scheduler.start_phase(next_phase,
                            std::span<event::InputBundle>(bundles), ready);
      ++next_phase;
    } else {
      // Stage every currently-issued pair, then drain them as one batch.
      batch.clear();
      for (auto& pair : queue) {
        Scheduler::StagedFinish staged;
        staged.vertex = pair.vertex;
        staged.phase = pair.phase;
        for (const std::uint32_t w : succs[pair.vertex]) {
          staged.deliveries.push_back(
              Scheduler::Delivery{w, 0, event::Value(1.0)});
        }
        staged.recycled = std::move(pair.bundle);
        batch.push_back(std::move(staged));
      }
      queue.clear();
      ready.clear();
      const bool steady = next_phase > warmup;
      const std::uint64_t before = g_thread_allocs;
      scheduler.finish_execution_batch(
          std::span<Scheduler::StagedFinish>(batch), ready);
      if (steady) {
        steady_allocs += g_thread_allocs - before;
        ++steady_batches;
      }
    }
    for (auto& r : ready) {
      queue.push_back(std::move(r));
    }
    ready.clear();
  }
  EXPECT_TRUE(scheduler.all_started_phases_complete());
  EXPECT_EQ(scheduler.completed_through(), phases);
  EXPECT_GT(steady_batches, 0U);
  EXPECT_EQ(steady_allocs, 0U)
      << "batched applications allocated after warm-up";
}

TEST(ZeroAllocation, MultiThreadStressStaysAllocationFreeUnderLock) {
  support::Rng rng(7);
  const Dag dag = graph::layered(4, 4, 2, rng);
  const Numbering numbering = graph::compute_satisfactory_numbering(dag);
  const auto succs = internal_successors(dag, numbering);
  const auto n = static_cast<std::uint64_t>(dag.vertex_count());

  const event::PhaseId phases = 400;
  const std::size_t window = 8;
  const std::size_t num_threads = 4;
  // Every vertex forwards every phase, so the expected pair count is exact.
  const std::uint64_t expected_pairs = n * phases;

  Scheduler scheduler(numbering.m);
  // Pre-size everything to its hard bound: with that in place the locked
  // path must not allocate even once past warm-up, regardless of thread
  // interleaving.
  scheduler.reserve_steady_state(window, n * window);
  std::mutex mutex;  // the engine's global lock, reproduced here
  std::condition_variable window_cv;
  conc::BlockingQueue<Scheduler::ReadyPair> run_queue;
  std::atomic<std::uint64_t> executed{0};
  std::atomic<std::uint64_t> locked_steady_allocs{0};
  const std::uint64_t steady_after = expected_pairs / 2;

  const auto worker = [&] {
    std::vector<Scheduler::Delivery> deliveries;
    std::vector<Scheduler::ReadyPair> ready;
    deliveries.reserve(dag.vertex_count());
    ready.reserve(dag.vertex_count() + 1);
    while (auto item = run_queue.pop()) {
      deliveries.clear();
      for (const std::uint32_t w : succs[item->vertex]) {
        deliveries.push_back(Scheduler::Delivery{w, 0, event::Value(1.0)});
      }
      ready.clear();
      const bool steady = executed.load(std::memory_order_relaxed) >
                          steady_after;
      {
        std::lock_guard lock(mutex);
        const std::uint64_t before = g_thread_allocs;
        scheduler.finish_execution(
            item->vertex, item->phase,
            std::span<Scheduler::Delivery>(deliveries),
            std::move(item->bundle), ready);
        if (steady) {
          locked_steady_allocs.fetch_add(g_thread_allocs - before,
                                         std::memory_order_relaxed);
        }
      }
      window_cv.notify_all();
      if (!ready.empty()) {
        run_queue.push_all(ready);
      }
      if (executed.fetch_add(1, std::memory_order_relaxed) + 1 ==
          expected_pairs) {
        run_queue.close();
      }
    }
  };

  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < num_threads; ++i) {
    threads.emplace_back(worker);
  }

  // Environment: start phases while holding the window bound, like
  // Engine::start_phase.
  std::vector<event::InputBundle> bundles;
  std::vector<Scheduler::ReadyPair> ready;
  for (event::PhaseId p = 1; p <= phases; ++p) {
    bundles.clear();
    bundles.resize(numbering.m[0]);
    ready.clear();
    {
      std::unique_lock lock(mutex);
      window_cv.wait(lock, [&] {
        return scheduler.active_phase_count() < window;
      });
      scheduler.start_phase(p, std::span<event::InputBundle>(bundles),
                            ready);
    }
    if (!ready.empty()) {
      run_queue.push_all(ready);
    }
  }

  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(executed.load(), expected_pairs);
  {
    std::lock_guard lock(mutex);
    EXPECT_TRUE(scheduler.all_started_phases_complete());
    EXPECT_EQ(scheduler.completed_through(), phases);
  }
  EXPECT_EQ(locked_steady_allocs.load(), 0U)
      << "allocations under the global lock after warm-up";
}

// --- layer 3: multi-worker staged rings (run under TSan in CI) --------------
//
// The engine's staged-delivery drain protocol at scheduler level (the
// eager-drain variant: every stage volunteers, threshold 1): workers
// execute pairs from a shared run queue, stage finishes into their own
// SPSC rings, and whoever wins the `draining` flag applies batches under
// the lock. Exercises the producer/consumer handoff, the increment-before-
// push accounting, and the post-release re-check against stranded entries.
// Correctness signal: exactly the expected number of pairs is executed and
// every phase completes (a stranded staged entry deadlocks the run).
TEST(StagedRings, MultiWorkerDrainProtocolCompletesEveryPhase) {
  support::Rng rng(13);
  const Dag dag = graph::layered(4, 4, 2, rng);
  const Numbering numbering = graph::compute_satisfactory_numbering(dag);
  const auto succs = internal_successors(dag, numbering);
  const auto n = static_cast<std::uint64_t>(dag.vertex_count());

  const event::PhaseId phases = 300;
  const std::size_t window = 8;
  const std::size_t num_threads = 4;
  const std::uint64_t expected_pairs = n * phases;

  Scheduler scheduler(numbering.m);
  scheduler.reserve_steady_state(window, n * window);
  std::mutex mutex;
  std::condition_variable window_cv;
  conc::BlockingQueue<Scheduler::ReadyPair> run_queue;
  std::vector<std::unique_ptr<conc::SpscRing<Scheduler::StagedFinish>>>
      rings;
  for (std::size_t i = 0; i < num_threads; ++i) {
    rings.push_back(
        std::make_unique<conc::SpscRing<Scheduler::StagedFinish>>(64));
  }
  std::atomic<std::size_t> staged_pending{0};
  std::atomic<bool> draining{false};
  std::atomic<std::uint64_t> executed{0};

  std::vector<Scheduler::StagedFinish> drain_batch;
  std::vector<Scheduler::ReadyPair> drain_ready;  // guarded by `draining`

  const auto drain_once = [&]() -> std::size_t {
    drain_batch.clear();
    for (auto& ring : rings) {
      // Winning the draining exchange was the consumer handoff; announce
      // it to the debug-only SPSC owner check (as Engine::drain_staged
      // does).
      ring->adopt_consumer();
      ring->drain([&](Scheduler::StagedFinish&& staged) {
        drain_batch.push_back(std::move(staged));
      });
    }
    if (drain_batch.empty()) {
      return 0;
    }
    drain_ready.clear();
    {
      std::lock_guard lock(mutex);
      scheduler.finish_execution_batch(
          std::span<Scheduler::StagedFinish>(drain_batch), drain_ready);
    }
    window_cv.notify_all();
    staged_pending.fetch_sub(drain_batch.size());
    if (!drain_ready.empty()) {
      run_queue.push_all(drain_ready);
    }
    return drain_batch.size();
  };
  const auto maybe_drain = [&] {
    for (;;) {
      if (staged_pending.load() == 0) {
        return;
      }
      if (draining.exchange(true)) {
        return;
      }
      const std::size_t drained = drain_once();
      draining.store(false);
      if (drained == 0) {
        std::this_thread::yield();
      }
    }
  };

  const auto worker = [&](std::size_t index) {
    while (auto item = run_queue.pop()) {
      Scheduler::StagedFinish staged;
      staged.vertex = item->vertex;
      staged.phase = item->phase;
      for (const std::uint32_t w : succs[item->vertex]) {
        staged.deliveries.push_back(
            Scheduler::Delivery{w, 0, event::Value(1.0)});
      }
      staged.recycled = std::move(item->bundle);
      staged_pending.fetch_add(1);
      while (!rings[index]->try_push(staged)) {
        maybe_drain();  // ring full: help drain, then retry
      }
      maybe_drain();
      if (executed.fetch_add(1) + 1 == expected_pairs) {
        // Final pair staged; drain everything left before closing so the
        // run ends with the scheduler fully settled.
        while (staged_pending.load() != 0) {
          maybe_drain();
          std::this_thread::yield();
        }
        run_queue.close();
      }
    }
  };

  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < num_threads; ++i) {
    threads.emplace_back(worker, i);
  }

  std::vector<event::InputBundle> bundles;
  std::vector<Scheduler::ReadyPair> ready;
  for (event::PhaseId p = 1; p <= phases; ++p) {
    bundles.clear();
    bundles.resize(numbering.m[0]);
    ready.clear();
    {
      std::unique_lock lock(mutex);
      window_cv.wait(lock, [&] {
        return scheduler.active_phase_count() < window;
      });
      scheduler.start_phase(p, std::span<event::InputBundle>(bundles),
                            ready);
    }
    if (!ready.empty()) {
      run_queue.push_all(ready);
    }
  }

  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(executed.load(), expected_pairs);
  {
    std::lock_guard lock(mutex);
    EXPECT_TRUE(scheduler.all_started_phases_complete());
    EXPECT_EQ(scheduler.completed_through(), phases);
  }
}

// --- layer 3b: multi-shard apply/collect stress (run under TSan in CI) ------
//
// The sharded two-stage drain protocol at scheduler level: workers execute
// pairs from a shared run queue, batch finishes locally, apply them under
// per-shard locks (concurrently with each other and with the collector),
// and volunteer to collect behind a `collecting` flag. The graph is a
// chain, so *every* delivery targets the next vertex and the traffic
// constantly crosses partition boundaries — with 7 shards over 30 vertices
// each boundary is hit every phase. Correctness signal: every pair
// executes exactly once and every phase completes (a lost delivery or a
// frontier overtaking an in-flight message deadlocks or throws).
TEST(ShardedStress, CrossShardDeliveriesAtPartitionBoundaries) {
  const Dag dag = graph::chain(30);
  const Numbering numbering = graph::compute_satisfactory_numbering(dag);
  const auto succs = internal_successors(dag, numbering);
  const auto n = static_cast<std::uint64_t>(dag.vertex_count());

  for (const std::size_t shards : {std::size_t{2}, std::size_t{7}}) {
    const event::PhaseId phases = 250;
    const std::size_t window = 8;
    const std::size_t num_threads = 4;
    const std::uint64_t expected_pairs = n * phases;

    ShardedScheduler scheduler(
        numbering.m,
        graph::make_shard_map(graph::partition_balanced(numbering, shards)),
        window);
    scheduler.reserve_steady_state(n * window);
    std::mutex cv_mutex;
    std::condition_variable window_cv;
    conc::BlockingQueue<Scheduler::ReadyPair> run_queue;
    std::atomic<std::size_t> dirty{0};
    std::atomic<bool> collecting{false};
    std::atomic<std::uint64_t> executed{0};
    std::vector<Scheduler::ReadyPair> collect_ready;  // owned by collector

    const auto maybe_collect = [&](std::size_t threshold) {
      for (;;) {
        if (dirty.load() < threshold) {
          return;
        }
        if (collecting.exchange(true)) {
          if (threshold > 1) {
            return;
          }
          std::this_thread::yield();
          continue;
        }
        const std::size_t observed = dirty.load();
        collect_ready.clear();
        const bool retired = scheduler.collect(collect_ready);
        dirty.fetch_sub(observed);
        if (retired) {
          {
            std::lock_guard lock(cv_mutex);
          }
          window_cv.notify_all();
        }
        if (!collect_ready.empty()) {
          run_queue.push_all(collect_ready);
        }
        collecting.store(false);
      }
    };

    const auto worker = [&] {
      std::vector<Scheduler::StagedFinish> local;
      const auto flush = [&] {
        if (local.empty()) {
          return;
        }
        scheduler.apply_finish_batch(
            std::span<Scheduler::StagedFinish>(local));
        const std::size_t applied = local.size();
        local.clear();
        dirty.fetch_add(applied);
      };
      for (;;) {
        std::optional<Scheduler::ReadyPair> item = run_queue.try_pop();
        if (!item.has_value()) {
          flush();
          maybe_collect(1);
          item = run_queue.pop();
          if (!item.has_value()) {
            break;
          }
        }
        Scheduler::StagedFinish staged;
        staged.vertex = item->vertex;
        staged.phase = item->phase;
        for (const std::uint32_t w : succs[item->vertex]) {
          staged.deliveries.push_back(
              Scheduler::Delivery{w, 0, event::Value(1.0)});
        }
        staged.recycled = std::move(item->bundle);
        local.push_back(std::move(staged));
        if (local.size() >= 3) {
          flush();
          maybe_collect(6);
        }
        if (executed.fetch_add(1) + 1 == expected_pairs) {
          // Final pair executed; flush ourselves and keep collecting until
          // every other worker's pre-block flush has landed and the last
          // phase retires, then close the queue.
          flush();
          while (!scheduler.all_started_phases_complete()) {
            maybe_collect(1);
            std::this_thread::yield();
          }
          run_queue.close();
        }
      }
    };

    std::vector<std::thread> threads;
    for (std::size_t i = 0; i < num_threads; ++i) {
      threads.emplace_back(worker);
    }

    std::vector<event::InputBundle> bundles;
    std::vector<Scheduler::ReadyPair> ready;
    for (event::PhaseId p = 1; p <= phases; ++p) {
      bundles.clear();
      bundles.resize(numbering.m[0]);
      ready.clear();
      {
        std::unique_lock lock(cv_mutex);
        window_cv.wait(lock, [&] {
          return scheduler.active_phase_count() < window;
        });
      }
      scheduler.start_phase(p, std::span<event::InputBundle>(bundles),
                            ready);
      if (!ready.empty()) {
        run_queue.push_all(ready);
      }
    }

    for (auto& t : threads) {
      t.join();
    }
    EXPECT_EQ(executed.load(), expected_pairs) << "shards " << shards;
    EXPECT_TRUE(scheduler.all_started_phases_complete());
    EXPECT_EQ(scheduler.completed_through(), phases);
  }
}

}  // namespace
}  // namespace df::core
