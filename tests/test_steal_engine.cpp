// Engine-level coverage for the work-stealing dispatch mode (PR 9):
// dispatch = kWorkStealing must be observationally identical to the
// central queue — byte-identical sink streams against the sequential
// reference across the threads x shards matrix over the shared randomized
// corpus — while exercising the spill path (tiny deques), the teardown
// path (destroy mid-run), and the stats plumbing. Runs under
// `ctest -L concurrency` so the TSan CI leg covers the lock-free dispatch
// protocols end-to-end through real engine traffic.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "random_program.hpp"
#include "trace/serializability.hpp"

namespace df::core {
namespace {

using testutil::random_program;

EngineOptions steal_options(std::size_t threads, std::size_t shards) {
  EngineOptions options;
  options.threads = threads;
  options.scheduler_shards = shards;
  options.dispatch = EngineOptions::Dispatch::kWorkStealing;
  options.max_inflight_phases = 8;
  return options;
}

// The ISSUE 9 acceptance matrix: dispatch=steal x threads {1,2,4} x
// shards {1,2}, sink output byte-identical to the sequential reference.
class StealDifferential
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::size_t,
                                                 std::size_t>> {};

TEST_P(StealDifferential, MatchesSequentialReference) {
  const auto [seed, threads, shards] = GetParam();
  const Program program = random_program(seed);
  Engine engine(program, steal_options(threads, shards));
  const auto report = trace::check_against_sequential(program, engine, 120);
  EXPECT_TRUE(report.equivalent) << report.summary();
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, StealDifferential,
    ::testing::Combine(::testing::Values<std::uint64_t>(21, 22, 23),
                       ::testing::Values<std::size_t>(1, 2, 4),
                       ::testing::Values<std::size_t>(1, 2)));

// Tiny per-worker deques force constant overflow through the inbox /
// injector spill machinery; results must be unchanged and nothing lost.
TEST(StealEngine, TinyDequeSpillPathMatchesReference) {
  const Program program = random_program(25);
  EngineOptions options = steal_options(4, 1);
  options.steal_deque_capacity = 2;
  options.dispatch_chunk = 1;  // maximal cross-lane distribution
  Engine engine(program, options);
  const auto report = trace::check_against_sequential(program, engine, 200);
  EXPECT_TRUE(report.equivalent) << report.summary();
}

// Central and stealing dispatch must agree with each other bit-for-bit,
// including with the lock-per-pair (non-staged) apply path.
TEST(StealEngine, CentralAndStealingProduceIdenticalSinks) {
  const Program program = random_program(26);
  std::vector<std::vector<SinkRecord>> outputs;
  for (const bool staged : {true, false}) {
    for (const auto dispatch : {EngineOptions::Dispatch::kCentral,
                                EngineOptions::Dispatch::kWorkStealing}) {
      EngineOptions options = steal_options(4, 1);
      options.staged_deliveries = staged;
      options.dispatch = dispatch;
      Engine engine(program, options);
      engine.run(300, nullptr);
      outputs.push_back(engine.sinks().canonical());
    }
  }
  for (std::size_t i = 1; i < outputs.size(); ++i) {
    ASSERT_EQ(outputs[i], outputs[0]) << "configuration " << i;
  }
  EXPECT_GT(outputs[0].size(), 50U) << "workload was trivial";
}

// Teardown loop at dispatch=steal: destroying the engine with phases
// outstanding must let workers drain or drop cleanly — never trip the
// "run queue closed while work was outstanding" check (the abandoning_
// ordering extends to the dispatch close), deadlock a parked worker, or
// leak/double-free pairs stranded in lanes. Mirrors the central-path
// DestroyMidRunNeverTripsTeardownChecks loop.
TEST(StealEngine, DestroyMidRunNeverTripsTeardownChecks) {
  const Program program = random_program(27);
  for (int iter = 0; iter < 60; ++iter) {
    EngineOptions options =
        steal_options(1 + iter % 5, 1 + iter % 2);
    options.max_inflight_phases = 1 + iter % 9;
    options.staged_deliveries = iter % 3 != 0;
    if (iter % 4 == 0) {
      options.steal_deque_capacity = 2;  // teardown with spill traffic
    }
    Engine engine(program, options);
    engine.start();
    const int phases = iter % 8;
    for (int p = 0; p < phases; ++p) {
      engine.start_phase({});
    }
    // Destructor runs here with up to `phases` phases outstanding.
  }
}

TEST(StealEngine, StatsReportDispatchCounters) {
  const Program program = random_program(28);
  {
    Engine central(program, {.threads = 4});
    central.run(100, nullptr);
    const ExecStats stats = central.stats();
    EXPECT_EQ(stats.steals_ok, 0U);
    EXPECT_EQ(stats.steals_empty, 0U);
    EXPECT_EQ(stats.parks, 0U);
  }
  {
    Engine stealing(program, steal_options(4, 1));
    stealing.run(100, nullptr);
    const ExecStats stats = stealing.stats();
    EXPECT_GT(stats.executed_pairs, 0U);
    // Every exiting worker runs at least one empty steal sweep before it
    // observes the close, so with 4 workers the counters cannot all be 0.
    EXPECT_GT(stats.steals_ok + stats.steals_empty, 0U);
  }
}

}  // namespace
}  // namespace df::core
