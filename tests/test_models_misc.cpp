// Unit tests for clustering, regression/forecasting and synthetic modules.
#include <gtest/gtest.h>

#include <cmath>

#include "model/clustering.hpp"
#include "model/regression.hpp"
#include "model/synthetic.hpp"
#include "module_test_util.hpp"
#include "support/check.hpp"
#include "support/stopwatch.hpp"

namespace df::model {
namespace {

using testutil::Script;
using testutil::run_module;
using testutil::script_of;

TEST(OnlineKMeans, SeparatesTwoBlobs) {
  // Alternate points near 0 and near 100: after seeding, every alternation
  // flips the assignment, so the module keeps emitting changes.
  Script script;
  for (int i = 0; i < 40; ++i) {
    script.push_back(event::Value(i % 2 == 0 ? 0.0 + 0.1 * i : 100.0 - 0.1 * i));
  }
  const auto out = run_module(
      factory_of<OnlineKMeansModule>(std::size_t{2}, 0.0), {script});
  ASSERT_GE(out.size(), 10U);
  // Assignments alternate between the two cluster ids.
  for (std::size_t i = 1; i < out.size(); ++i) {
    EXPECT_NE(out[i].second.as_int(), out[i - 1].second.as_int());
  }
}

TEST(OnlineKMeans, StableStreamGoesQuiet) {
  // All points in one tight blob with k=1: after the first assignment there
  // is never a change to report.
  Script script = script_of(30, [](auto p) { return 5.0 + 0.01 * (p % 3); });
  const auto out = run_module(
      factory_of<OnlineKMeansModule>(std::size_t{1}, 0.0), {script});
  ASSERT_EQ(out.size(), 1U);
  EXPECT_EQ(out[0].second.as_int(), 0);
}

TEST(OnlineKMeans, OutlierDistanceEmitsOnPort1) {
  // Seed with 0, then a far point; port-1 emissions are dangling in the
  // helper graph and therefore recorded as sink output.
  Script script{event::Value(0.0), event::Value(0.1), event::Value(50.0)};
  const auto out = run_module(
      factory_of<OnlineKMeansModule>(std::size_t{1}, 5.0), {script});
  bool saw_outlier = false;
  for (const auto& [phase, value] : out) {
    if (value.is_double() && value.as_double() > 5.0) {
      saw_outlier = true;
    }
  }
  EXPECT_TRUE(saw_outlier);
}

TEST(OnlineKMeans, VectorPointsSupported) {
  Script script{event::Value(std::vector<double>{0.0, 0.0}),
                event::Value(std::vector<double>{10.0, 10.0}),
                event::Value(std::vector<double>{0.2, 0.1}),
                event::Value(std::vector<double>{9.8, 10.2})};
  const auto out = run_module(
      factory_of<OnlineKMeansModule>(std::size_t{2}, 0.0), {script});
  ASSERT_GE(out.size(), 2U);
}

TEST(Trend, RecoversSlope) {
  const auto out = run_module(
      factory_of<TrendModule>(std::size_t{16}, std::size_t{4}),
      {script_of(20, [](auto p) { return 4.0 * static_cast<double>(p); })});
  ASSERT_FALSE(out.empty());
  EXPECT_NEAR(out.back().second.as_double(), 4.0, 1e-9);
}

TEST(Forecast, PredictsAhead) {
  const auto out = run_module(
      factory_of<ForecastModule>(std::size_t{16}, event::PhaseId{5},
                                 std::size_t{4}),
      {script_of(20, [](auto p) { return 2.0 * static_cast<double>(p); })});
  ASSERT_FALSE(out.empty());
  // At phase 20 the 5-ahead forecast of y=2x is 2*25 = 50.
  EXPECT_NEAR(out.back().second.as_double(), 50.0, 1e-6);
}

TEST(Holt, TracksLinearGrowth) {
  const auto out = run_module(
      factory_of<HoltForecastModule>(0.6, 0.4),
      {script_of(60, [](auto p) { return static_cast<double>(p); })});
  ASSERT_FALSE(out.empty());
  // One-step-ahead forecast of y=p at p=60 is ~61.
  EXPECT_NEAR(out.back().second.as_double(), 61.0, 1.0);
}

TEST(Holt, RejectsBadSmoothing) {
  EXPECT_THROW(HoltForecastModule(0.0, 0.5), support::check_error);
  EXPECT_THROW(HoltForecastModule(0.5, 2.0), support::check_error);
}

TEST(BusyWork, SpinsForRequestedTime) {
  const auto factory =
      factory_of<BusyWorkModule>(std::uint64_t{2'000'000}, std::size_t{1},
                                 1.0);
  support::Stopwatch sw;
  const auto out = run_module(factory, {Script{event::Value(1.0)}});
  EXPECT_GE(sw.elapsed_ns(), 2'000'000U);
  ASSERT_EQ(out.size(), 1U);
  EXPECT_DOUBLE_EQ(out[0].second.as_double(), 1.0);
}

TEST(BusyWork, SumsChangedInputs) {
  const auto out = run_module(
      factory_of<BusyWorkModule>(std::uint64_t{0}, std::size_t{2}, 1.0),
      {Script{event::Value(2.0), std::nullopt},
       Script{event::Value(3.0), event::Value(10.0)}});
  ASSERT_EQ(out.size(), 2U);
  EXPECT_DOUBLE_EQ(out[0].second.as_double(), 5.0);   // both changed
  EXPECT_DOUBLE_EQ(out[1].second.as_double(), 10.0);  // only port 1 changed
}

TEST(Forward, PassesThrough) {
  const auto out = run_module(
      factory_of<ForwardModule>(),
      {Script{event::Value(7.0), std::nullopt, event::Value(9.0)}});
  ASSERT_EQ(out.size(), 2U);
  EXPECT_DOUBLE_EQ(out[0].second.as_double(), 7.0);
  EXPECT_DOUBLE_EQ(out[1].second.as_double(), 9.0);
}

TEST(NoOp, NeverEmits) {
  const auto out = run_module(
      factory_of<NoOpModule>(),
      {script_of(10, [](auto) { return 1.0; })});
  EXPECT_TRUE(out.empty());
}

TEST(BusyWorkSource, EmitProbabilityThrottles) {
  // Direct check through the registry-style factory and helper harness is
  // covered elsewhere; here run as lone source via a 0-input module graph.
  spec::GraphBuilder b;
  b.add("src", factory_of<BusyWorkSource>(std::uint64_t{0}, 0.3));
  baseline::SequentialExecutor exec(std::move(b).build(4));
  exec.run(1000, nullptr);
  EXPECT_GT(exec.sinks().size(), 150U);
  EXPECT_LT(exec.sinks().size(), 450U);
}

}  // namespace
}  // namespace df::model
