// Unit tests for the boolean combinator modules.
#include <gtest/gtest.h>

#include "model/logic.hpp"
#include "module_test_util.hpp"
#include "support/check.hpp"

namespace df::model {
namespace {

using testutil::Script;
using testutil::run_module;

Script bools(std::initializer_list<int> bits) {
  Script script;
  for (const int b : bits) {
    script.push_back(event::Value(b != 0));
  }
  return script;
}

TEST(AndGate, TruthTableOverTime) {
  const auto out = run_module(factory_of<AndGate>(std::size_t{2}),
                              {bools({0, 1, 1, 1}), bools({0, 0, 1, 1})});
  // Outputs: f (initial), then t at phase 3; phase 4 unchanged -> silent.
  ASSERT_EQ(out.size(), 2U);
  EXPECT_FALSE(out[0].second.as_bool());
  EXPECT_EQ(out[1].first, 3U);
  EXPECT_TRUE(out[1].second.as_bool());
}

TEST(AndGate, UnfiredInputsCountAsFalse) {
  const auto out = run_module(factory_of<AndGate>(std::size_t{2}),
                              {bools({1}), Script{std::nullopt}});
  ASSERT_EQ(out.size(), 1U);
  EXPECT_FALSE(out[0].second.as_bool());
}

TEST(OrGate, RisesAndFalls) {
  const auto out = run_module(factory_of<OrGate>(std::size_t{2}),
                              {bools({0, 1, 0, 0}), bools({0, 0, 0, 1})});
  ASSERT_EQ(out.size(), 4U);
  EXPECT_FALSE(out[0].second.as_bool());
  EXPECT_TRUE(out[1].second.as_bool());
  EXPECT_FALSE(out[2].second.as_bool());
  EXPECT_TRUE(out[3].second.as_bool());
}

TEST(XorGate, ParityOverInputs) {
  const auto out = run_module(factory_of<XorGate>(std::size_t{2}),
                              {bools({1, 1}), bools({0, 1})});
  ASSERT_EQ(out.size(), 2U);
  EXPECT_TRUE(out[0].second.as_bool());   // 1 xor 0
  EXPECT_FALSE(out[1].second.as_bool());  // 1 xor 1
}

TEST(MajorityGate, QuorumSemantics) {
  const auto out = run_module(
      factory_of<MajorityGate>(std::size_t{3}, std::size_t{2}),
      {bools({1, 1, 1}), bools({0, 1, 0}), bools({0, 0, 0})});
  ASSERT_EQ(out.size(), 3U);
  EXPECT_FALSE(out[0].second.as_bool());  // 1 of 3
  EXPECT_TRUE(out[1].second.as_bool());   // 2 of 3
  EXPECT_FALSE(out[2].second.as_bool());  // back to 1 of 3
}

TEST(MajorityGate, RejectsBadQuorum) {
  EXPECT_THROW(MajorityGate(2, 3), support::check_error);
  EXPECT_THROW(MajorityGate(2, 0), support::check_error);
}

TEST(NotGate, Inverts) {
  const auto out =
      run_module(factory_of<NotGate>(), {bools({0, 1, 1, 0})});
  ASSERT_EQ(out.size(), 3U);
  EXPECT_TRUE(out[0].second.as_bool());
  EXPECT_FALSE(out[1].second.as_bool());
  EXPECT_TRUE(out[2].second.as_bool());
}

TEST(Latch, FiresExactlyOnce) {
  const auto out = run_module(
      factory_of<LatchModule>(),
      {Script{std::nullopt, event::Value(true), event::Value(true),
              event::Value(false)}});
  ASSERT_EQ(out.size(), 1U);
  EXPECT_EQ(out[0].first, 2U);
  EXPECT_TRUE(out[0].second.as_bool());
}

TEST(PulseCounter, EmitsEveryNthEvent) {
  const auto out = run_module(
      factory_of<PulseCounterModule>(std::uint64_t{3}),
      {testutil::script_of(10, [](auto) { return 1.0; })});
  ASSERT_EQ(out.size(), 3U);
  EXPECT_EQ(out[0].second.as_int(), 3);
  EXPECT_EQ(out[1].second.as_int(), 6);
  EXPECT_EQ(out[2].second.as_int(), 9);
}

TEST(BoolGate, RequiresAtLeastOneInput) {
  EXPECT_THROW(AndGate(0), support::check_error);
}

}  // namespace
}  // namespace df::model
