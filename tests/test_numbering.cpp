// Tests for the vertex-numbering machinery of paper section 3.1.1: paper-
// fidelity checks on the Figure 2 example plus parameterized property sweeps
// over generated graph families.
#include <gtest/gtest.h>

#include <set>

#include "graph/generators.hpp"
#include "graph/numbering.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace df::graph {
namespace {

// --- Paper fidelity: Figure 2 -------------------------------------------

TEST(PaperFigure2, SatisfactoryNumberingMatchesPaperM) {
  const Dag dag = paper_figure2();
  const Numbering numbering = compute_satisfactory_numbering(dag);
  // Paper: "the sequence of values of m(v) from v = 0 to v = 7 is
  // [ 3, 3, 4, 5, 5, 6, 7, 7 ]".
  const std::vector<std::uint32_t> expected{3, 3, 4, 5, 5, 6, 7, 7};
  EXPECT_EQ(numbering.m, expected);
  EXPECT_TRUE(is_topological(dag, numbering));
  EXPECT_TRUE(is_satisfactory(dag, numbering));
}

TEST(PaperFigure2, UnsatisfactoryNumberingReproducesPaperSValues) {
  const Dag dag = paper_figure2();
  const Numbering bad = make_numbering(dag, paper_figure2a_indices());
  EXPECT_TRUE(is_topological(dag, bad));
  EXPECT_FALSE(is_satisfactory(dag, bad));
  // Paper: "S(2) is {1,2,3,5} and is not indexed sequentially because 4 is
  // missing."
  const std::set<std::uint32_t> expected_s2{1, 2, 3, 5};
  EXPECT_EQ(compute_S(dag, bad, 2), expected_s2);
  // S(0) and S(1) are {1,2,3} in both numberings.
  const std::set<std::uint32_t> expected_s0{1, 2, 3};
  EXPECT_EQ(compute_S(dag, bad, 0), expected_s0);
  EXPECT_EQ(compute_S(dag, bad, 1), expected_s0);
}

TEST(PaperFigure2, SOfSatisfactoryNumberingIsAlwaysAPrefix) {
  const Dag dag = paper_figure2();
  const Numbering good = compute_satisfactory_numbering(dag);
  for (std::uint32_t v = 0; v <= dag.vertex_count(); ++v) {
    const auto s = compute_S(dag, good, v);
    EXPECT_EQ(s.size(), good.m[v]) << "at v=" << v;
    if (!s.empty()) {
      EXPECT_EQ(*s.rbegin(), s.size()) << "S(" << v << ") is not a prefix";
    }
  }
}

TEST(PaperFigure2, SourceVerticesAreFirstIndices) {
  const Dag dag = paper_figure2();
  const Numbering numbering = compute_satisfactory_numbering(dag);
  // S(0) = sources = {1..m(0)} means sources get indices 1..3.
  for (const VertexId s : dag.sources()) {
    EXPECT_LE(numbering.index_of[s], numbering.m[0]);
  }
}

// --- m-function properties (eqns 2-4) ------------------------------------

void check_m_properties(const Dag& dag, const Numbering& numbering) {
  const auto n = static_cast<std::uint32_t>(dag.vertex_count());
  for (std::uint32_t v = 1; v <= n; ++v) {
    EXPECT_LE(numbering.m[v - 1], numbering.m[v]);  // eqn (2)
  }
  for (std::uint32_t v = 1; v < n; ++v) {
    EXPECT_LT(v, numbering.m[v]);  // eqn (3)
  }
  EXPECT_EQ(numbering.m[n], n);  // eqn (4)
}

TEST(Numbering, FigureGraphsSatisfyMProperties) {
  for (const Dag& dag : {paper_figure2(), paper_figure3()}) {
    check_m_properties(dag, compute_satisfactory_numbering(dag));
  }
}

TEST(Numbering, SingleVertexAndAllSourcesEdgeCases) {
  const Dag single = chain(1);
  const Numbering n1 = compute_satisfactory_numbering(single);
  EXPECT_EQ(n1.m, (std::vector<std::uint32_t>{1, 1}));

  Dag all_sources;
  all_sources.add_vertex("a");
  all_sources.add_vertex("b");
  all_sources.add_vertex("c");
  const Numbering n3 = compute_satisfactory_numbering(all_sources);
  EXPECT_EQ(n3.m[0], 3U);
  EXPECT_TRUE(is_satisfactory(all_sources, n3));
}

TEST(Numbering, ChainHasIdentityLikeM) {
  const Dag dag = chain(6);
  const Numbering numbering = compute_satisfactory_numbering(dag);
  // For a chain, m(v) = v+1 for v < N (one new vertex released per finish).
  for (std::uint32_t v = 0; v < 6; ++v) {
    EXPECT_EQ(numbering.m[v], v + 1);
  }
}

TEST(Numbering, MakeNumberingValidatesPermutation) {
  const Dag dag = chain(3);
  EXPECT_THROW(make_numbering(dag, {1, 1, 2}), support::check_error);
  EXPECT_THROW(make_numbering(dag, {0, 1, 2}), support::check_error);
  EXPECT_THROW(make_numbering(dag, {1, 2}), support::check_error);
}

TEST(Numbering, DetectsNonTopologicalNumbering) {
  const Dag dag = chain(3);  // edges 1->2->3 in original order
  const Numbering reversed = make_numbering(dag, {3, 2, 1});
  EXPECT_FALSE(is_topological(dag, reversed));
  EXPECT_FALSE(is_satisfactory(dag, reversed));
}

TEST(Numbering, ReleaseIndicesMatchDefinition) {
  const Dag dag = paper_figure2();
  const Numbering numbering = compute_satisfactory_numbering(dag);
  const auto releases = release_indices(dag, numbering);
  for (VertexId v = 0; v < dag.vertex_count(); ++v) {
    std::uint32_t expected = 0;
    for (const Edge& e : dag.in_edges(v)) {
      expected = std::max(expected, numbering.index_of[e.from]);
    }
    EXPECT_EQ(releases[v], expected);
  }
}

// --- Property sweep over graph families -----------------------------------

struct GraphCase {
  std::string name;
  Dag dag;
};

class NumberingProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NumberingProperty, GreedyAlwaysProducesSatisfactoryNumbering) {
  const std::uint64_t seed = GetParam();
  support::Rng rng(seed);
  std::vector<GraphCase> cases;
  cases.push_back({"chain", chain(1 + static_cast<std::uint32_t>(seed % 40))});
  cases.push_back(
      {"diamond", diamond(1 + static_cast<std::uint32_t>(seed % 12))});
  cases.push_back({"layered", layered(2 + seed % 5, 3 + seed % 4, 2, rng)});
  cases.push_back({"in_tree", binary_in_tree(2 + seed % 4)});
  cases.push_back({"out_tree", binary_out_tree(2 + seed % 4)});
  cases.push_back(
      {"random_sparse", random_dag(20 + seed % 30, 0.08, rng)});
  cases.push_back({"random_dense", random_dag(15 + seed % 15, 0.5, rng)});

  for (const GraphCase& c : cases) {
    const Numbering numbering = compute_satisfactory_numbering(c.dag);
    EXPECT_TRUE(is_topological(c.dag, numbering)) << c.name;
    EXPECT_TRUE(is_satisfactory(c.dag, numbering)) << c.name;
    check_m_properties(c.dag, numbering);
    // S(v) evaluated from the definition must be the prefix {1..m(v)}.
    for (std::uint32_t v = 0; v <= c.dag.vertex_count(); ++v) {
      const auto s = compute_S(c.dag, numbering, v);
      ASSERT_EQ(s.size(), numbering.m[v]) << c.name << " at v=" << v;
      std::uint32_t expected = 1;
      for (const std::uint32_t member : s) {
        ASSERT_EQ(member, expected++) << c.name << " at v=" << v;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NumberingProperty,
                         ::testing::Range<std::uint64_t>(0, 12));

TEST(Numbering, DeterministicAcrossCalls) {
  support::Rng rng(5);
  const Dag dag = random_dag(40, 0.2, rng);
  const Numbering a = compute_satisfactory_numbering(dag);
  const Numbering b = compute_satisfactory_numbering(dag);
  EXPECT_EQ(a.index_of, b.index_of);
  EXPECT_EQ(a.m, b.m);
}

}  // namespace
}  // namespace df::graph
