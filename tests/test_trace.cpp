// Tests for the tracer: Figure 3-style set-membership observation.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "model/sources.hpp"
#include "model/synthetic.hpp"
#include "spec/builder.hpp"
#include "trace/tracer.hpp"

namespace df::trace {
namespace {

core::Program fig3_program() {
  // The Figure 3 graph with deterministic replay sources: v1 emits in phase
  // 1 only, v2 emits in phases 1 and 2 (mirroring the figure's narrative
  // where (1,2) "generated no output").
  const graph::Dag shape = graph::paper_figure3();
  spec::GraphBuilder b;
  std::vector<graph::VertexId> ids;
  for (graph::VertexId v = 0; v < shape.vertex_count(); ++v) {
    if (shape.name(v) == "v1") {
      ids.push_back(b.add("v1", model::factory_of<model::ReplaySource>(
                                    std::vector<std::optional<event::Value>>{
                                        event::Value(1.0), std::nullopt})));
    } else if (shape.name(v) == "v2") {
      ids.push_back(b.add("v2", model::factory_of<model::ReplaySource>(
                                    std::vector<std::optional<event::Value>>{
                                        event::Value(2.0),
                                        event::Value(3.0)})));
    } else {
      ids.push_back(
          b.add(shape.name(v), model::factory_of<model::ForwardModule>()));
    }
  }
  for (const graph::Edge& e : shape.edges()) {
    b.connect(ids[e.from], e.from_port, ids[e.to], e.to_port);
  }
  return std::move(b).build(1);
}

TEST(Tracer, RecordsEveryTransition) {
  const core::Program program = fig3_program();
  Tracer tracer;
  core::EngineOptions options;
  options.threads = 1;
  options.observer = &tracer;
  core::Engine engine(program, options);
  engine.run(2, nullptr);

  const auto steps = tracer.steps();
  ASSERT_GT(steps.size(), 4U);
  // First transition: phase 1 initiated.
  EXPECT_EQ(steps[0].transition,
            core::SchedulerObserver::Transition::kPhaseStarted);
  EXPECT_EQ(steps[0].phase, 1U);
  // Right after the start, both sources are full and ready.
  EXPECT_EQ(steps[0].snapshot.ready.size(), 2U);
  EXPECT_EQ(steps[0].snapshot.full.size(), 2U);
  EXPECT_TRUE(steps[0].snapshot.partial.empty());
  // Engine transitions = phase starts + pair completions.
  std::size_t finishes = 0;
  for (const auto& step : steps) {
    if (step.transition ==
        core::SchedulerObserver::Transition::kPairFinished) {
      ++finishes;
    }
  }
  EXPECT_EQ(finishes, engine.stats().executed_pairs);
}

TEST(Tracer, RenderShowsFigureLegend) {
  const core::Program program = fig3_program();
  Tracer tracer;
  core::EngineOptions options;
  options.threads = 1;
  options.observer = &tracer;
  core::Engine engine(program, options);
  engine.run(1, nullptr);

  const auto steps = tracer.steps();
  ASSERT_FALSE(steps.empty());
  const std::string first = Tracer::render_step(steps[0], 6);
  EXPECT_NE(first.find("phase 1 initiated"), std::string::npos);
  EXPECT_NE(first.find("[1]"), std::string::npos);  // source ready
  EXPECT_NE(first.find("[2]"), std::string::npos);

  bool saw_partial_marker = false;
  for (const auto& step : steps) {
    if (Tracer::render_step(step, 6).find('<') != std::string::npos) {
      saw_partial_marker = true;
    }
  }
  EXPECT_TRUE(saw_partial_marker)
      << "no pair was ever observed in the partial set";
}

TEST(Tracer, BoundedHistoryDropsOldest) {
  Tracer tracer(/*max_steps=*/4);
  core::Scheduler::Snapshot snapshot;
  for (std::uint32_t i = 0; i < 10; ++i) {
    tracer.on_transition(core::SchedulerObserver::Transition::kPairFinished,
                         i, 1, snapshot);
  }
  const auto steps = tracer.steps();
  ASSERT_EQ(steps.size(), 4U);
  EXPECT_EQ(steps.front().vertex, 6U);  // oldest retained
  EXPECT_EQ(steps.back().vertex, 9U);
}

}  // namespace
}  // namespace df::trace
