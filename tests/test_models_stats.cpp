// Unit tests for the streaming-statistics modules.
#include <gtest/gtest.h>

#include "model/stats_models.hpp"
#include "module_test_util.hpp"

namespace df::model {
namespace {

using testutil::Emission;
using testutil::Script;
using testutil::run_module;
using testutil::script_of;

TEST(MovingAverage, ComputesWindowedMean) {
  const auto out = run_module(
      factory_of<MovingAverageModule>(std::size_t{3}),
      {Script{event::Value(1.0), event::Value(2.0), event::Value(3.0),
              event::Value(10.0)}});
  ASSERT_EQ(out.size(), 4U);
  EXPECT_DOUBLE_EQ(out[0].second.as_double(), 1.0);
  EXPECT_DOUBLE_EQ(out[1].second.as_double(), 1.5);
  EXPECT_DOUBLE_EQ(out[2].second.as_double(), 2.0);
  EXPECT_DOUBLE_EQ(out[3].second.as_double(), 5.0);  // mean of {2,3,10}
}

TEST(MovingAverage, SilentWithoutInput) {
  const auto out = run_module(
      factory_of<MovingAverageModule>(std::size_t{3}),
      {Script{std::nullopt, event::Value(4.0), std::nullopt}});
  ASSERT_EQ(out.size(), 1U);
  EXPECT_EQ(out[0].first, 2U);  // only the phase with input
}

TEST(MovingStdDev, ZeroForConstantStream) {
  const auto out = run_module(factory_of<MovingStdDevModule>(std::size_t{4}),
                              {script_of(8, [](auto) { return 7.0; })});
  ASSERT_EQ(out.size(), 8U);
  for (const auto& [phase, value] : out) {
    EXPECT_NEAR(value.as_double(), 0.0, 1e-9);
  }
}

TEST(Ewma, SmoothsInput) {
  const auto out =
      run_module(factory_of<EwmaModule>(0.5),
                 {Script{event::Value(0.0), event::Value(10.0)}});
  ASSERT_EQ(out.size(), 2U);
  EXPECT_DOUBLE_EQ(out[0].second.as_double(), 0.0);
  EXPECT_DOUBLE_EQ(out[1].second.as_double(), 5.0);
}

TEST(Sum, EmitsOnlyWhenSumChanges) {
  // Two inputs; second stream repeats its value, so only real changes emit.
  const auto out = run_module(
      factory_of<SumModule>(std::size_t{2}),
      {Script{event::Value(1.0), event::Value(2.0), event::Value(2.0)},
       Script{event::Value(10.0), event::Value(10.0), event::Value(10.0)}});
  ASSERT_EQ(out.size(), 2U);
  EXPECT_DOUBLE_EQ(out[0].second.as_double(), 11.0);
  EXPECT_DOUBLE_EQ(out[1].second.as_double(), 12.0);
  // Phase 3: inputs re-sent but sum unchanged -> silence.
}

TEST(Sum, WaitsForAllPorts) {
  const auto out = run_module(
      factory_of<SumModule>(std::size_t{2}),
      {Script{event::Value(1.0), std::nullopt},
       Script{std::nullopt, event::Value(2.0)}});
  ASSERT_EQ(out.size(), 1U);
  EXPECT_EQ(out[0].first, 2U);  // emits once both ports have spoken
  EXPECT_DOUBLE_EQ(out[0].second.as_double(), 3.0);
}

TEST(MaxMin, TrackLatestExtremes) {
  const Script a{event::Value(1.0), event::Value(5.0), event::Value(2.0)};
  const Script b{event::Value(3.0), event::Value(3.0), event::Value(3.0)};
  const auto maxima =
      run_module(factory_of<MaxModule>(std::size_t{2}), {a, b});
  ASSERT_EQ(maxima.size(), 3U);
  EXPECT_DOUBLE_EQ(maxima[0].second.as_double(), 3.0);
  EXPECT_DOUBLE_EQ(maxima[1].second.as_double(), 5.0);
  EXPECT_DOUBLE_EQ(maxima[2].second.as_double(), 3.0);

  const auto minima =
      run_module(factory_of<MinModule>(std::size_t{2}), {a, b});
  ASSERT_EQ(minima.size(), 3U);
  EXPECT_DOUBLE_EQ(minima[0].second.as_double(), 1.0);
  EXPECT_DOUBLE_EQ(minima[1].second.as_double(), 3.0);
  EXPECT_DOUBLE_EQ(minima[2].second.as_double(), 2.0);
}

TEST(SnapshotJoin, EmitsVectorOfLatest) {
  const auto out = run_module(
      factory_of<SnapshotJoinModule>(std::size_t{2}),
      {Script{event::Value(1.0), event::Value(2.0)},
       Script{std::nullopt, event::Value(9.0)}});
  ASSERT_EQ(out.size(), 1U);  // incomplete until phase 2
  const auto& vec = out[0].second.as_vector();
  ASSERT_EQ(vec.size(), 2U);
  EXPECT_DOUBLE_EQ(vec[0], 2.0);
  EXPECT_DOUBLE_EQ(vec[1], 9.0);
}

TEST(Quantile, TracksMedian) {
  Script script;
  for (int i = 1; i <= 101; ++i) {
    script.push_back(event::Value(static_cast<double>(i)));
  }
  const auto out =
      run_module(factory_of<QuantileModule>(0.5), {script});
  ASSERT_EQ(out.size(), 101U);
  EXPECT_NEAR(out.back().second.as_double(), 51.0, 3.0);
}

TEST(ChangeFilter, SuppressesSmallChanges) {
  const auto out = run_module(
      factory_of<ChangeFilterModule>(1.0),
      {Script{event::Value(0.0), event::Value(0.5), event::Value(2.0),
              event::Value(2.9), event::Value(4.5)}});
  ASSERT_EQ(out.size(), 3U);
  EXPECT_DOUBLE_EQ(out[0].second.as_double(), 0.0);
  EXPECT_DOUBLE_EQ(out[1].second.as_double(), 2.0);
  EXPECT_DOUBLE_EQ(out[2].second.as_double(), 4.5);
}

TEST(Debounce, EnforcesMinimumGap) {
  const auto out = run_module(
      factory_of<DebounceModule>(event::PhaseId{3}),
      {script_of(7, [](auto p) { return static_cast<double>(p); })});
  ASSERT_EQ(out.size(), 3U);
  EXPECT_EQ(out[0].first, 1U);
  EXPECT_EQ(out[1].first, 4U);
  EXPECT_EQ(out[2].first, 7U);
}

TEST(RateEstimator, ReportsEventsPerPhase) {
  // Events on every phase: rate should converge to 1.0 once warm.
  const auto out = run_module(
      factory_of<RateEstimatorModule>(event::PhaseId{4}),
      {script_of(8, [](auto) { return 1.0; })});
  ASSERT_EQ(out.size(), 8U);
  EXPECT_DOUBLE_EQ(out.back().second.as_double(), 1.0);
  EXPECT_DOUBLE_EQ(out[0].second.as_double(), 0.25);  // 1 event / window 4
}

TEST(Correlator, DetectsSignOfRelationship) {
  Script xs;
  Script ys;
  for (int i = 0; i < 40; ++i) {
    xs.push_back(event::Value(static_cast<double>(i)));
    ys.push_back(event::Value(static_cast<double>(-2 * i)));
  }
  const auto out = run_module(
      factory_of<CorrelatorModule>(std::size_t{16}), {xs, ys});
  ASSERT_FALSE(out.empty());
  EXPECT_NEAR(out.back().second.as_double(), -1.0, 1e-6);
}

}  // namespace
}  // namespace df::model
