// The partitioned-transport test harness (DESIGN.md, "Real transport"):
//
//   * differential suite — TransportEngine over 2/3/4 partitions and both
//     channel implementations must produce sink output byte-identical to
//     the sequential reference across the randomized program corpus
//     (random_program.hpp, the same corpus the engine serializability
//     sweep uses);
//   * fault injection — channels that duplicate, reorder (within a bounded
//     window), and delay frames must not change the output by a single
//     byte, and the receiver-side sequencers must drop exactly the
//     duplicates that were injected (exactly-once ingestion);
//   * degenerate partitions — empty blocks are legal for both the real
//     transport and the simulated cluster, and invalid cuts are rejected
//     by the one shared validator (graph::validate_partition_cut);
//   * error teardown — a module exception anywhere in the ensemble
//     surfaces as the root cause (not as a secondary peer-closed abort)
//     and the run still terminates;
//   * channel stress — the blocking bounded in-process channel and the
//     loopback socket channel under a fast producer/consumer pair (the
//     `transport` ctest label; runs under TSan in CI).
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "distrib/channel.hpp"
#include "distrib/cluster.hpp"
#include "distrib/protocol.hpp"
#include "distrib/transport.hpp"
#include "distrib/wire.hpp"
#include "model/sources.hpp"
#include "model/synthetic.hpp"
#include "random_program.hpp"
#include "spec/builder.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"
#include "trace/serializability.hpp"

namespace df {
namespace {

using distrib::ChannelKind;
using distrib::TransportEngine;
using distrib::TransportOptions;

constexpr ChannelKind kBothKinds[] = {ChannelKind::kInProcess,
                                      ChannelKind::kSocket};

const char* kind_name(ChannelKind kind) {
  return kind == ChannelKind::kInProcess ? "inproc" : "socket";
}

// --- differential: transport vs sequential over the randomized corpus ------

class TransportDifferential : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(TransportDifferential, MatchesSequentialOnBothChannelKinds) {
  const std::uint64_t seed = GetParam();
  const core::Program program = testutil::random_program(seed);
  const event::PhaseId phases = 60;

  for (const std::size_t machines : {std::size_t{2}, std::size_t{3},
                                     std::size_t{4}}) {
    if (machines > program.numbering.size()) {
      continue;  // balanced partitioner needs at least one vertex per block
    }
    for (const ChannelKind kind : kBothKinds) {
      TransportOptions options;
      options.machines = machines;
      options.channel = kind;
      // A small bound so backpressure (blocked senders) is exercised, not
      // just theoretical.
      options.channel_capacity = 8;
      TransportEngine transport(program, options);
      const auto report =
          trace::check_against_sequential(program, transport, phases);
      EXPECT_TRUE(report.equivalent)
          << "machines=" << machines << " channel=" << kind_name(kind)
          << " seed=" << seed << "\n"
          << report.summary();
      EXPECT_GT(report.reference_records, 0U) << "workload produced no output";

      // Batching ceiling: with one channel per ordered pair (j, k), j < k,
      // a phase costs each channel at most one watermark plus one coalesced
      // kDeliveryBatch flush (this corpus never reaches the flush
      // threshold), so total frames are bounded by 2 * phases * channels.
      // The v1 one-frame-per-delivery wire would blow through this on any
      // seed whose remote traffic exceeds phases * channels.
      const auto& stats = transport.transport_stats();
      const std::uint64_t channels = machines * (machines - 1) / 2;
      EXPECT_GT(stats.watermarks_sent, 0U);
      EXPECT_LE(stats.frames_sent, 2 * phases * channels)
          << "machines=" << machines << " channel=" << kind_name(kind)
          << " seed=" << seed << ": batching regressed ("
          << stats.frames_sent << " frames, " << stats.remote_messages
          << " remote deliveries)";
      // Every remote delivery rides a batch — the engine never falls back
      // to one-delivery-per-frame — and nothing is lost or double-counted.
      EXPECT_EQ(stats.batched_deliveries, stats.remote_messages);
      EXPECT_EQ(stats.frames_received, stats.frames_sent);
      EXPECT_EQ(stats.bytes_received, stats.bytes_sent);
      if (stats.remote_messages > 0) {
        EXPECT_GT(stats.batch_frames_sent, 0U);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransportDifferential,
                         ::testing::Range<std::uint64_t>(0, 22));

// --- two-level parallelism: worker pool inside every partition --------------

// The full matrix the tentpole promises: every partition block running a
// multi-threaded (and optionally sharded) core::Engine must still produce
// sink output byte-identical to the sequential reference, and concurrent
// egress must not break the frames-per-phase ceiling — batches for a phase
// are held until the phase completes, so the per-channel cost stays one
// coalesced batch plus one watermark regardless of worker interleaving.
class TransportTwoLevel : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TransportTwoLevel, WorkerPoolPerBlockMatchesSequential) {
  const std::uint64_t seed = GetParam();
  const core::Program program = testutil::random_program(seed);
  const event::PhaseId phases = 40;

  for (const std::size_t machines : {std::size_t{2}, std::size_t{3}}) {
    if (machines > program.numbering.size()) {
      continue;
    }
    for (const std::size_t engine_threads :
         {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
      for (const std::size_t shards : {std::size_t{1}, std::size_t{2}}) {
        for (const ChannelKind kind : kBothKinds) {
          TransportOptions options;
          options.machines = machines;
          options.channel = kind;
          options.channel_capacity = 8;
          options.engine_threads = engine_threads;
          options.scheduler_shards = shards;
          // Small window so the inner pipeline's backpressure (start_phase
          // blocking while the egress hub holds future-phase batches) is
          // exercised, not just theoretical.
          options.max_inflight_phases = 4;
          TransportEngine transport(program, options);
          const auto report =
              trace::check_against_sequential(program, transport, phases);
          EXPECT_TRUE(report.equivalent)
              << "machines=" << machines << " threads=" << engine_threads
              << " shards=" << shards << " channel=" << kind_name(kind)
              << " seed=" << seed << "\n"
              << report.summary();
          EXPECT_GT(report.reference_records, 0U)
              << "workload produced no output";

          // The ceiling and the accounting invariants must survive
          // concurrent egress from engine_threads workers per block.
          const auto& stats = transport.transport_stats();
          const std::uint64_t channels = machines * (machines - 1) / 2;
          EXPECT_LE(stats.frames_sent, 2 * phases * channels)
              << "machines=" << machines << " threads=" << engine_threads
              << " shards=" << shards << " seed=" << seed
              << ": concurrent egress broke the batching ceiling ("
              << stats.frames_sent << " frames, " << stats.remote_messages
              << " remote deliveries)";
          EXPECT_EQ(stats.batched_deliveries, stats.remote_messages);
          EXPECT_EQ(stats.frames_received, stats.frames_sent);
          EXPECT_EQ(stats.bytes_received, stats.bytes_sent);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransportTwoLevel,
                         ::testing::Range<std::uint64_t>(0, 10));

// The stealing member of the matrix (PR 9): per-block engines running
// dispatch = kWorkStealing under both channel implementations, with the
// same sequential-equivalence and frames-per-phase ceiling assertions —
// cross-partition egress and watermark flushing must be indifferent to
// which worker's lane executed the boundary pair.
TEST(TransportTwoLevel, StealingDispatchMatchesSequential) {
  const core::Program program = testutil::random_program(6);
  const event::PhaseId phases = 40;
  for (const ChannelKind kind : kBothKinds) {
    TransportOptions options;
    options.machines = 3;
    options.channel = kind;
    options.channel_capacity = 8;
    options.engine_threads = 4;
    options.scheduler_shards = 2;
    options.dispatch = core::EngineOptions::Dispatch::kWorkStealing;
    options.max_inflight_phases = 4;
    TransportEngine transport(program, options);
    const auto report =
        trace::check_against_sequential(program, transport, phases);
    EXPECT_TRUE(report.equivalent)
        << "channel=" << kind_name(kind) << "\n" << report.summary();
    const auto& stats = transport.transport_stats();
    const std::uint64_t channels = 3 * 2 / 2;
    EXPECT_LE(stats.frames_sent, 2 * phases * channels)
        << "stealing dispatch broke the batching ceiling";
    EXPECT_EQ(stats.frames_received, stats.frames_sent);
    EXPECT_EQ(stats.batched_deliveries, stats.remote_messages);
  }
}

// Fault-injected channels under multi-threaded block engines: duplicates,
// reordering, and delays must interact correctly with the hold-and-patch
// egress (sequence numbers are assigned at send time, so the receiver's
// reassembly contract is unchanged).
TEST(TransportTwoLevel, FaultInjectionSurvivesWorkerPools) {
  const core::Program program = testutil::random_program(4);
  const event::PhaseId phases = 40;
  std::vector<distrib::FaultInjectingChannel*> faulty;
  TransportOptions options;
  options.machines = 3;
  options.channel = ChannelKind::kInProcess;
  options.channel_capacity = 8;
  options.engine_threads = 4;
  options.scheduler_shards = 2;
  options.channel_wrapper =
      [&faulty](std::unique_ptr<distrib::Channel> inner, std::size_t from,
                std::size_t to) -> std::unique_ptr<distrib::Channel> {
    distrib::FaultOptions fault;
    fault.duplicate_probability = 0.2;
    fault.hold_probability = 0.3;
    fault.reorder_window = 4;
    fault.seed = 0x2fa917ULL + from * 10 + to;
    auto channel = std::make_unique<distrib::FaultInjectingChannel>(
        std::move(inner), fault);
    faulty.push_back(channel.get());
    return channel;
  };
  TransportEngine transport(program, options);
  const auto report =
      trace::check_against_sequential(program, transport, phases);
  EXPECT_TRUE(report.equivalent) << report.summary();
  std::uint64_t injected = 0;
  for (const auto* channel : faulty) {
    injected += channel->duplicates_injected();
  }
  EXPECT_EQ(transport.transport_stats().duplicates_dropped, injected);
}

// Cross-boundary stress for TSan (ctest label: transport): three blocks,
// four workers and two scheduler shards each, a tiny channel bound, and a
// deep phase pipeline — maximal concurrency between worker-pool egress,
// the per-link flush callbacks, the coordinator's ingress loop, and the
// reader threads.
TEST(TransportTwoLevel, CrossBoundaryStressUnderWorkerPools) {
  const core::Program program = testutil::random_program(11);
  ASSERT_GE(program.numbering.size(), 3U);
  const event::PhaseId phases = 120;
  TransportOptions options;
  options.machines = 3;
  options.channel = ChannelKind::kInProcess;
  options.channel_capacity = 4;  // senders block constantly
  options.engine_threads = 4;
  options.scheduler_shards = 2;
  options.max_inflight_phases = 16;
  TransportEngine transport(program, options);
  const auto report =
      trace::check_against_sequential(program, transport, phases);
  EXPECT_TRUE(report.equivalent) << report.summary();
  EXPECT_GT(transport.transport_stats().remote_messages, 0U);
}

// Degenerate knobs are rejected loudly instead of silently falling back.
TEST(TransportTwoLevel, RejectsZeroThreadsShardsAndWindow) {
  const core::Program program = testutil::random_program(2);
  {
    TransportOptions options;
    options.engine_threads = 0;
    EXPECT_THROW(TransportEngine(program, options), support::check_error);
  }
  {
    TransportOptions options;
    options.scheduler_shards = 0;
    EXPECT_THROW(TransportEngine(program, options), support::check_error);
  }
  {
    TransportOptions options;
    options.max_inflight_phases = 0;
    EXPECT_THROW(TransportEngine(program, options), support::check_error);
  }
}

// External events must route to whichever partition owns each source — with
// enough sources and four blocks, sources land in non-zero blocks too.
TEST(TransportFeed, ExternalEventsReachSourcesInEveryBlock) {
  spec::GraphBuilder b;
  std::vector<graph::VertexId> sensors;
  for (int i = 0; i < 6; ++i) {
    sensors.push_back(
        b.add("sensor" + std::to_string(i),
              model::factory_of<model::ExternalPassthroughSource>()));
  }
  const auto sum =
      b.add("sum", model::factory_of<model::SumModule>(std::size_t{3}));
  const auto max =
      b.add("max", model::factory_of<model::MaxModule>(std::size_t{3}));
  for (int i = 0; i < 3; ++i) {
    b.connect(sensors[i], 0, sum, static_cast<graph::Port>(i));
    b.connect(sensors[3 + i], 0, max, static_cast<graph::Port>(i));
  }
  const core::Program program = std::move(b).build(99);

  support::Rng rng(0xfeedULL);
  std::vector<std::vector<event::ExternalEvent>> batches(80);
  for (auto& batch : batches) {
    for (const graph::VertexId sensor : sensors) {
      if (rng.next_bernoulli(0.4)) {
        batch.push_back(
            event::ExternalEvent{sensor, 0, event::Value(rng.next_double())});
      }
    }
  }

  for (const ChannelKind kind : kBothKinds) {
    TransportOptions options;
    options.machines = 4;  // 8 vertices -> sources span blocks 0..2
    options.channel = kind;
    TransportEngine transport(program, options);
    const auto report = trace::check_against_sequential(
        program, transport, batches.size(), batches);
    EXPECT_TRUE(report.equivalent)
        << "channel=" << kind_name(kind) << "\n" << report.summary();
  }
}

// --- fault injection: exactly-once delivery and Δ-semantics survive ---------

class TransportFaults : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TransportFaults, DuplicatedReorderedDelayedFramesChangeNothing) {
  const std::uint64_t seed = GetParam();
  const core::Program program = testutil::random_program(seed);
  const event::PhaseId phases = 50;

  for (const std::size_t machines : {std::size_t{2}, std::size_t{4}}) {
    if (machines > program.numbering.size()) {
      continue;
    }
    std::vector<distrib::FaultInjectingChannel*> faulty;
    TransportOptions options;
    options.machines = machines;
    options.channel = ChannelKind::kInProcess;
    options.channel_capacity = 8;
    options.channel_wrapper =
        [&faulty, seed](std::unique_ptr<distrib::Channel> inner,
                        std::size_t from,
                        std::size_t to) -> std::unique_ptr<distrib::Channel> {
      distrib::FaultOptions fault;
      fault.duplicate_probability = 0.2;
      fault.hold_probability = 0.3;
      fault.reorder_window = 4;
      fault.seed = seed * 1000 + from * 10 + to;
      auto channel = std::make_unique<distrib::FaultInjectingChannel>(
          std::move(inner), fault);
      faulty.push_back(channel.get());
      return channel;
    };

    TransportEngine transport(program, options);
    const auto report =
        trace::check_against_sequential(program, transport, phases);
    EXPECT_TRUE(report.equivalent)
        << "machines=" << machines << " seed=" << seed << "\n"
        << report.summary();

    // Exactly-once: the receiver sequencers dropped precisely the copies
    // the fault layer injected — nothing more (a lost frame would deadlock
    // the run long before this check) and nothing less (a duplicate that
    // slipped through would corrupt a bundle and fail the sink diff).
    std::uint64_t injected = 0;
    std::uint64_t held = 0;
    for (const auto* channel : faulty) {
      injected += channel->duplicates_injected();
      held += channel->frames_held();
    }
    EXPECT_EQ(transport.transport_stats().duplicates_dropped, injected);
    EXPECT_GT(injected, 0U) << "fault layer never duplicated a frame";
    EXPECT_GT(held, 0U) << "fault layer never delayed/reordered a frame";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransportFaults,
                         ::testing::Range<std::uint64_t>(0, 10));

// --- degenerate partitions and the shared cut validator ---------------------

TEST(PartitionCuts, EmptyBlocksExecuteCorrectlyOnTransportAndCluster) {
  const core::Program program = testutil::random_program(7);
  const auto n = program.numbering.size();
  ASSERT_GE(n, 6U);
  // First, middle, and last blocks empty: {0, 0, k, k, n, n}.
  graph::Partitioning degenerate;
  degenerate.bounds = {0, 0, n / 2, n / 2, n, n};
  const event::PhaseId phases = 40;

  for (const ChannelKind kind : kBothKinds) {
    TransportOptions options;
    options.machines = degenerate.bounds.size() - 1;
    options.channel = kind;
    options.partitioning = degenerate;
    TransportEngine transport(program, options);
    const auto report =
        trace::check_against_sequential(program, transport, phases);
    EXPECT_TRUE(report.equivalent)
        << "channel=" << kind_name(kind) << "\n" << report.summary();
  }

  distrib::ClusterOptions cluster_options;
  cluster_options.machines = degenerate.bounds.size() - 1;
  cluster_options.partitioning = degenerate;
  cluster_options.fixed_vertex_cost_ns = 100;
  distrib::ClusterExecutor cluster(program, cluster_options);
  const auto report =
      trace::check_against_sequential(program, cluster, phases);
  EXPECT_TRUE(report.equivalent) << report.summary();
}

TEST(PartitionCuts, SharedValidatorRejectsInvalidCutsEverywhere) {
  const core::Program program = testutil::random_program(3);
  const auto n = program.numbering.size();
  ASSERT_GE(n, 4U);

  const auto reject_everywhere = [&](std::vector<std::uint32_t> bounds) {
    graph::Partitioning bad;
    bad.bounds = std::move(bounds);
    EXPECT_THROW(graph::validate_partition_cut(
                     bad, n, bad.bounds.empty() ? 1 : bad.bounds.size() - 1),
                 support::check_error);
    TransportOptions transport_options;
    transport_options.machines = bad.bounds.size() < 2
                                     ? 1
                                     : bad.bounds.size() - 1;
    transport_options.partitioning = bad;
    EXPECT_THROW(TransportEngine(program, transport_options),
                 support::check_error);
    distrib::ClusterOptions cluster_options;
    cluster_options.machines = transport_options.machines;
    cluster_options.partitioning = bad;
    EXPECT_THROW(distrib::ClusterExecutor(program, cluster_options),
                 support::check_error);
  };

  reject_everywhere({1, n});         // does not start at 0
  reject_everywhere({0, n - 1});     // does not cover the graph
  reject_everywhere({0, 3, 2, n});   // decreasing bounds
  reject_everywhere({0, n + 1});     // out of range
  reject_everywhere({0});            // no blocks at all

  // Block-count mismatch against the options' machine count.
  graph::Partitioning three_blocks;
  three_blocks.bounds = {0, 1, 2, n};
  TransportOptions mismatched;
  mismatched.machines = 2;
  mismatched.partitioning = three_blocks;
  EXPECT_THROW(TransportEngine(program, mismatched), support::check_error);

  // Valid degenerate cut passes the validator directly.
  graph::Partitioning degenerate;
  degenerate.bounds = {0, 0, n, n};
  graph::validate_partition_cut(degenerate, n, 3);
}

// --- error teardown ----------------------------------------------------------

core::Program throwing_program(event::PhaseId throw_phase,
                               bool throw_in_last_vertex) {
  // chain: source -> mid -> tail; the chosen vertex throws at throw_phase.
  spec::GraphBuilder b;
  const auto make_thrower = [throw_phase] {
    return model::ModuleFactory([throw_phase] {
      return std::make_unique<model::LambdaModule>(
          [throw_phase](model::PhaseContext& ctx) {
            if (ctx.phase() == throw_phase) {
              throw std::runtime_error("module exploded");
            }
            ctx.emit(0, event::Value(static_cast<double>(ctx.phase())));
          });
    });
  };
  const auto forward = [] {
    return model::ModuleFactory([] {
      return std::make_unique<model::LambdaModule>(
          [](model::PhaseContext& ctx) {
            ctx.emit(0, ctx.has_input(0) ? ctx.input(0) : event::Value(0.0));
          });
    });
  };
  const auto source = b.add("source", throw_in_last_vertex ? forward()
                                                           : make_thrower());
  const auto mid = b.add("mid", forward());
  const auto tail = b.add("tail", throw_in_last_vertex ? make_thrower()
                                                       : forward());
  b.connect(source, 0, mid, 0);
  b.connect(mid, 0, tail, 0);
  return std::move(b).build(5);
}

TEST(TransportTeardown, ModuleExceptionSurfacesAsRootCause) {
  for (const bool in_last : {false, true}) {
    for (const ChannelKind kind : kBothKinds) {
      TransportOptions options;
      options.machines = 3;  // one vertex per block
      options.channel = kind;
      TransportEngine transport(throwing_program(4, in_last), options);
      try {
        transport.run(20, nullptr);
        FAIL() << "expected the module exception to propagate";
      } catch (const std::runtime_error& error) {
        EXPECT_STREQ(error.what(), "module exploded")
            << "secondary teardown error masked the root cause (in_last="
            << in_last << ", channel=" << kind_name(kind) << ")";
      }
    }
  }
}

// Corrupts one frame in transit on the wrapped channel (send-side byte
// flip), so the receiving reader's decode rejects it mid-run.
class CorruptingChannel final : public distrib::Channel {
 public:
  CorruptingChannel(std::unique_ptr<distrib::Channel> inner,
                    std::uint64_t corrupt_index)
      : inner_(std::move(inner)), corrupt_index_(corrupt_index) {}

  void send(std::span<const std::uint8_t> frame) override {
    if (sent_++ == corrupt_index_) {
      std::vector<std::uint8_t> mangled(frame.begin(), frame.end());
      mangled[0] ^= 0xff;  // breaks the DFW magic
      inner_->send(mangled);
      return;
    }
    inner_->send(frame);
  }
  void close_send() override { inner_->close_send(); }
  bool recv(std::vector<std::uint8_t>& frame) override {
    return inner_->recv(frame);
  }
  void close_recv() override { inner_->close_recv(); }

 private:
  std::unique_ptr<distrib::Channel> inner_;
  std::uint64_t corrupt_index_;
  std::uint64_t sent_ = 0;
};

// Regression: a reader that dies on a rejected frame must keep draining its
// channel to EOF. Before that fix the upstream sender blocked forever on
// the full channel, never reached its own teardown, and run() hung instead
// of surfacing the decode error.
TEST(TransportTeardown, CorruptedFrameAbortsTheRunInsteadOfHanging) {
  const core::Program program = testutil::random_program(1);
  for (const ChannelKind kind : kBothKinds) {
    TransportOptions options;
    options.machines = 2;
    options.channel = kind;
    options.channel_capacity = 8;  // small: the blocked-sender bound bites
    options.channel_wrapper =
        [](std::unique_ptr<distrib::Channel> inner, std::size_t,
           std::size_t) -> std::unique_ptr<distrib::Channel> {
      return std::make_unique<CorruptingChannel>(std::move(inner), 5);
    };
    TransportEngine transport(program, options);
    try {
      transport.run(50, nullptr);
      FAIL() << "expected the decode rejection to propagate (channel="
             << kind_name(kind) << ")";
    } catch (const support::check_error& error) {
      EXPECT_NE(std::string(error.what()).find("rejected ingress frame"),
                std::string::npos)
          << "channel=" << kind_name(kind) << ": " << error.what();
    }
  }
}

// Throws from send() on the final watermark (the frame whose phase field
// equals the run's last phase), i.e. at the very end of the sender's
// lifecycle — the last moment an egress error can occur.
class FinalWatermarkFailingChannel final : public distrib::Channel {
 public:
  FinalWatermarkFailingChannel(std::unique_ptr<distrib::Channel> inner,
                               event::PhaseId final_phase)
      : inner_(std::move(inner)), final_phase_(final_phase) {}

  void send(std::span<const std::uint8_t> frame) override {
    distrib::wire::FrameHeader header;
    if (distrib::wire::decode_header(frame, header) ==
            distrib::wire::DecodeStatus::kOk &&
        header.type == distrib::wire::FrameType::kWatermark &&
        header.phase == final_phase_) {
      throw std::runtime_error("send exploded");
    }
    inner_->send(frame);
  }
  void close_send() override { inner_->close_send(); }
  bool recv(std::vector<std::uint8_t>& frame) override {
    return inner_->recv(frame);
  }
  void close_recv() override { inner_->close_recv(); }

 private:
  std::unique_ptr<distrib::Channel> inner_;
  event::PhaseId final_phase_;
};

// Regression: a send failure recorded *inside* the teardown-side
// belt-and-braces flush_through(num_phases) used to vanish — the hub noted
// it, nothing rethrew it, and the run surfaced the downstream's secondary
// peer_closed_error (missing final watermark) instead of the root cause.
// Whether that flush or the phase-completion callback performs the failing
// send is a race; both paths must now surface the same root cause, so this
// test is deterministic only with the post-flush re-check in place.
TEST(TransportTeardown, SendFailureOnFinalWatermarkSurfacesAsRootCause) {
  const core::Program program = testutil::random_program(1);
  const event::PhaseId phases = 30;
  for (const ChannelKind kind : kBothKinds) {
    TransportOptions options;
    options.machines = 2;
    options.channel = kind;
    options.channel_wrapper =
        [phases](std::unique_ptr<distrib::Channel> inner, std::size_t,
                 std::size_t) -> std::unique_ptr<distrib::Channel> {
      return std::make_unique<FinalWatermarkFailingChannel>(std::move(inner),
                                                            phases);
    };
    TransportEngine transport(program, options);
    try {
      transport.run(phases, nullptr);
      FAIL() << "expected the send failure to propagate (channel="
             << kind_name(kind) << ")";
    } catch (const std::runtime_error& error) {
      EXPECT_STREQ(error.what(), "send exploded")
          << "secondary teardown error masked the egress root cause "
          << "(channel=" << kind_name(kind) << ")";
    }
  }
}

// Regression for the framed-stream teardown contract: a peer that dies
// after writing a length prefix (or part of one) but before the full
// payload must surface as a hard error on the receiver — never a hang and
// never a silent truncation that looks like clean EOF.
TEST(TransportTeardown, HalfWrittenFrameAtCloseSurfacesAsError) {
  const auto raw_write = [](int fd, const std::vector<std::uint8_t>& bytes) {
    std::size_t written = 0;
    while (written < bytes.size()) {
      const ssize_t result =
          ::write(fd, bytes.data() + written, bytes.size() - written);
      ASSERT_GE(result, 0) << std::strerror(errno);
      written += static_cast<std::size_t>(result);
    }
  };
  const auto prefix_for = [](std::uint32_t size) {
    std::vector<std::uint8_t> bytes;
    for (int i = 0; i < 4; ++i) {
      bytes.push_back(static_cast<std::uint8_t>(size >> (8 * i)));
    }
    return bytes;
  };

  {
    // Prefix claims 40 payload bytes; only 10 arrive before the close.
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    raw_write(fds[0], prefix_for(40));
    raw_write(fds[0], std::vector<std::uint8_t>(10, 0xcd));
    ::close(fds[0]);
    auto channel = distrib::SocketChannel::adopt(-1, fds[1]);
    std::vector<std::uint8_t> frame;
    try {
      channel->recv(frame);
      FAIL() << "truncated payload decoded as a clean EOF";
    } catch (const support::check_error& error) {
      EXPECT_NE(std::string(error.what()).find("peer closed mid-frame"),
                std::string::npos)
          << error.what();
    }
  }
  {
    // Even a torn length prefix (2 of 4 bytes) is mid-frame, not EOF.
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    raw_write(fds[0], {0x12, 0x34});
    ::close(fds[0]);
    auto channel = distrib::SocketChannel::adopt(-1, fds[1]);
    std::vector<std::uint8_t> frame;
    EXPECT_THROW(channel->recv(frame), support::check_error);
  }
  {
    // A complete frame followed by a half-written one: the good frame is
    // delivered, then the truncation surfaces.
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    const std::vector<std::uint8_t> payload(16, 0xab);
    raw_write(fds[0], prefix_for(16));
    raw_write(fds[0], payload);
    raw_write(fds[0], prefix_for(16));
    raw_write(fds[0], std::vector<std::uint8_t>(7, 0xee));
    ::close(fds[0]);
    auto channel = distrib::SocketChannel::adopt(-1, fds[1]);
    std::vector<std::uint8_t> frame;
    ASSERT_TRUE(channel->recv(frame));
    EXPECT_EQ(frame, payload);
    EXPECT_THROW(channel->recv(frame), support::check_error);
  }
  {
    // Clean close exactly on a frame boundary is EOF, not an error.
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    raw_write(fds[0], prefix_for(4));
    raw_write(fds[0], {1, 2, 3, 4});
    ::close(fds[0]);
    auto channel = distrib::SocketChannel::adopt(-1, fds[1]);
    std::vector<std::uint8_t> frame;
    ASSERT_TRUE(channel->recv(frame));
    EXPECT_FALSE(channel->recv(frame));
  }
}

// Half-open teardown: a peer that dies *abruptly* (connection reset, the
// process-death signature — e.g. between its checkpoint and the next
// watermark) must surface as the retryable peer_lost_error so the
// crash-restart supervisor can trigger recovery, distinct from the fatal
// "peer closed mid-frame" above (an orderly close mid-frame can only be a
// sender bug) and from clean EOF.
TEST(TransportTeardown, AbruptPeerDeathSurfacesAsRetryablePeerLost) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  // One complete frame reaches the receiver's queue before the death.
  const std::uint8_t good[8] = {4, 0, 0, 0, 9, 9, 9, 9};
  ASSERT_EQ(::write(fds[0], good, sizeof good), 8);
  // Unread data in the dying peer's queue turns its close into a reset
  // (the kernel's equivalent of a TCP RST) instead of an orderly FIN.
  const std::uint8_t junk = 0x5a;
  ASSERT_EQ(::write(fds[1], &junk, 1), 1);
  ::close(fds[0]);

  auto channel = distrib::SocketChannel::adopt(-1, fds[1]);
  std::vector<std::uint8_t> frame;
  // Frames already in flight before the reset are still delivered.
  ASSERT_TRUE(channel->recv(frame));
  EXPECT_EQ(frame, (std::vector<std::uint8_t>{9, 9, 9, 9}));
  // The reset itself is the retryable peer-loss, caught by exact type —
  // a check_error here would abort the run instead of triggering restart.
  try {
    channel->recv(frame);
    FAIL() << "peer reset decoded as clean EOF";
  } catch (const distrib::protocol::peer_lost_error& error) {
    EXPECT_NE(std::string(error.what()).find("peer connection lost"),
              std::string::npos)
        << error.what();
  }
}

// --- channel stress (ctest label: transport; runs under TSan in CI) ---------

std::vector<std::uint8_t> stress_frame(std::uint64_t i) {
  // Variable-length payload derived from i so truncation/misordering shows.
  std::vector<std::uint8_t> frame(8 + (i * 7) % 96);
  for (std::size_t b = 0; b < 8; ++b) {
    frame[b] = static_cast<std::uint8_t>(i >> (8 * b));
  }
  for (std::size_t b = 8; b < frame.size(); ++b) {
    frame[b] = static_cast<std::uint8_t>(i + b);
  }
  return frame;
}

void stress_channel(distrib::Channel& channel, std::uint64_t frames) {
  std::atomic<std::uint64_t> received{0};
  std::thread consumer([&] {
    std::vector<std::uint8_t> frame;
    std::uint64_t expected = 0;
    while (channel.recv(frame)) {
      const std::vector<std::uint8_t> want = stress_frame(expected);
      ASSERT_EQ(frame.size(), want.size()) << "frame " << expected;
      ASSERT_EQ(std::memcmp(frame.data(), want.data(), want.size()), 0)
          << "frame " << expected << " corrupted in transit";
      ++expected;
    }
    received.store(expected);
  });
  for (std::uint64_t i = 0; i < frames; ++i) {
    const std::vector<std::uint8_t> frame = stress_frame(i);
    channel.send(frame);
  }
  channel.close_send();
  consumer.join();
  EXPECT_EQ(received.load(), frames);
}

TEST(ChannelStress, InProcessBoundedChannelDeliversEverythingInOrder) {
  // Tiny capacity: the sender blocks constantly, exercising both condvar
  // directions and the close-after-final-push race re-check.
  distrib::InProcessChannel channel(4);
  stress_channel(channel, 50000);
}

TEST(ChannelStress, SocketChannelDeliversEverythingInOrder) {
  auto channel = distrib::SocketChannel::make_loopback();
  stress_channel(*channel, 20000);
}

TEST(ChannelStress, CloseRecvUnblocksAFullSender) {
  distrib::InProcessChannel channel(2);
  std::thread sender([&] {
    const std::vector<std::uint8_t> frame(16, 0xab);
    for (int i = 0; i < 100; ++i) {
      channel.send(frame);  // blocks at capacity until close_recv
    }
    channel.close_send();
  });
  std::vector<std::uint8_t> frame;
  ASSERT_TRUE(channel.recv(frame));  // let the sender make some progress
  channel.close_recv();
  sender.join();  // must not hang: remaining sends drop
}

TEST(ChannelStress, CloseRecvUnblocksAFullSocketSender) {
  // Socket flavour of the same contract: the sender fills the kernel
  // buffer and parks inside send(); close_recv() must wake it (the blocked
  // send returns EPIPE under MSG_NOSIGNAL and the channel goes broken, so
  // the rest of the loop drops) without close()ing a descriptor out from
  // under anyone.
  auto channel = distrib::SocketChannel::make_loopback();
  std::thread sender([&] {
    const std::vector<std::uint8_t> frame(4096, 0xab);
    for (int i = 0; i < 10000; ++i) {
      channel->send(frame);
    }
    channel->close_send();
  });
  std::vector<std::uint8_t> frame;
  ASSERT_TRUE(channel->recv(frame));  // let the sender make some progress
  channel->close_recv();
  sender.join();  // must not hang: shutdown(SHUT_WR) wakes the parked send
}

}  // namespace
}  // namespace df
