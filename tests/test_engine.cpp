// Integration tests for the parallel engine (paper section 3.2).
#include <gtest/gtest.h>

#include <stdexcept>

#include "baseline/sequential.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "model/sources.hpp"
#include "model/stats_models.hpp"
#include "model/synthetic.hpp"
#include "spec/builder.hpp"
#include "support/check.hpp"
#include "trace/serializability.hpp"

namespace df::core {
namespace {

Program chain_program(std::uint32_t length, std::uint64_t seed) {
  spec::GraphBuilder b;
  std::vector<graph::VertexId> ids;
  ids.push_back(b.add("src", model::factory_of<model::CounterSource>()));
  for (std::uint32_t i = 1; i < length; ++i) {
    ids.push_back(b.add("f" + std::to_string(i),
                        model::factory_of<model::ForwardModule>()));
    b.connect(ids[i - 1], ids[i]);
  }
  return std::move(b).build(seed);
}

TEST(Engine, SingleVertexGraph) {
  spec::GraphBuilder b;
  b.add("only", model::factory_of<model::CounterSource>());
  const Program program = std::move(b).build(1);
  Engine engine(program, {.threads = 2});
  engine.run(10, nullptr);
  // The lone source is also a sink: every phase's emission is recorded.
  EXPECT_EQ(engine.sinks().size(), 10U);
  EXPECT_EQ(engine.stats().phases_completed, 10U);
  EXPECT_EQ(engine.stats().executed_pairs, 10U);
}

TEST(Engine, AllSourcesGraph) {
  spec::GraphBuilder b;
  for (int i = 0; i < 4; ++i) {
    b.add("s" + std::to_string(i),
          model::factory_of<model::CounterSource>());
  }
  const Program program = std::move(b).build(2);
  Engine engine(program, {.threads = 3});
  engine.run(25, nullptr);
  EXPECT_EQ(engine.sinks().size(), 100U);
  EXPECT_EQ(engine.stats().executed_pairs, 100U);
}

TEST(Engine, ChainPropagatesEveryPhase) {
  const Program program = chain_program(8, 3);
  Engine engine(program, {.threads = 4});
  engine.run(50, nullptr);
  const auto records = engine.sinks().canonical();
  ASSERT_EQ(records.size(), 50U);
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].phase, i + 1);
    EXPECT_EQ(records[i].value.as_int(),
              static_cast<std::int64_t>(i + 1));
  }
}

TEST(Engine, ZeroPhasesCompletesImmediately) {
  const Program program = chain_program(3, 4);
  Engine engine(program, {.threads = 2});
  engine.run(0, nullptr);
  EXPECT_EQ(engine.stats().phases_completed, 0U);
  EXPECT_EQ(engine.sinks().size(), 0U);
}

TEST(Engine, TinyInflightWindowStillCorrect) {
  const Program program = chain_program(6, 5);
  EngineOptions options;
  options.threads = 3;
  options.max_inflight_phases = 1;  // fully serialized phases
  Engine engine(program, options);
  const auto report = trace::check_against_sequential(program, engine, 64);
  EXPECT_TRUE(report.equivalent) << report.summary();
  EXPECT_LE(engine.stats().max_inflight_phases, 1U);
}

TEST(Engine, UnboundedWindowPipelinesDeeply) {
  const Program program = chain_program(12, 6);
  EngineOptions options;
  options.threads = 1;
  options.max_inflight_phases = 0;  // unbounded
  options.sample_inflight = true;
  Engine engine(program, options);
  engine.run(100, nullptr);
  EXPECT_EQ(engine.stats().phases_completed, 100U);
  // With one worker and instant environment injection, many phases overlap.
  EXPECT_GT(engine.stats().max_inflight_phases, 1U);
}

TEST(Engine, StreamingApiWithExternalEvents) {
  spec::GraphBuilder b;
  const auto src =
      b.add("src", model::factory_of<model::ExternalPassthroughSource>());
  const auto avg = b.add("avg", model::factory_of<model::MovingAverageModule>(
                                    std::size_t{4}));
  b.connect(src, avg);
  const Program program = std::move(b).build(7);

  Engine engine(program, {.threads = 2});
  engine.start();
  for (int i = 1; i <= 8; ++i) {
    engine.start_phase({event::ExternalEvent{src, 0, event::Value(
                            static_cast<double>(i))}});
  }
  engine.start_phase({});  // a phase with no external data
  engine.finish();
  EXPECT_EQ(engine.completed_phases(), 9U);
  const auto records = engine.sinks().canonical();
  ASSERT_EQ(records.size(), 8U);  // the empty phase produced nothing
  // Last average: mean of 5,6,7,8.
  EXPECT_DOUBLE_EQ(records.back().value.as_double(), 6.5);
}

TEST(Engine, ExternalEventsToNonSourceAreRejected) {
  spec::GraphBuilder b;
  const auto src = b.add("src", model::factory_of<model::CounterSource>());
  const auto mid = b.add("mid", model::factory_of<model::ForwardModule>());
  b.connect(src, mid);
  const Program program = std::move(b).build(8);
  Engine engine(program, {.threads = 1});
  engine.start();
  EXPECT_THROW(
      engine.start_phase({event::ExternalEvent{mid, 0, event::Value(1.0)}}),
      support::check_error);
  engine.finish();
}

TEST(Engine, ModuleExceptionSurfacesAtFinish) {
  spec::GraphBuilder b;
  const auto src = b.add("src", model::factory_of<model::CounterSource>());
  const auto bomb = b.add_lambda("bomb", [](model::PhaseContext& ctx) {
    if (ctx.phase() == 3) {
      throw std::runtime_error("model blew up");
    }
  });
  b.connect(src, bomb);
  const Program program = std::move(b).build(9);
  Engine engine(program, {.threads = 2});
  EXPECT_THROW(engine.run(10, nullptr), std::runtime_error);
  // All phases still drained before the rethrow.
  EXPECT_EQ(engine.completed_phases(), 10U);
}

TEST(Engine, StatsAccountForWork) {
  const Program program = chain_program(5, 10);
  Engine engine(program, {.threads = 2});
  engine.run(40, nullptr);
  const ExecStats stats = engine.stats();
  EXPECT_EQ(stats.phases_completed, 40U);
  EXPECT_EQ(stats.executed_pairs, 5U * 40U);       // every vertex every phase
  EXPECT_EQ(stats.messages_delivered, 4U * 40U);   // chain edges
  EXPECT_EQ(stats.sink_records, 40U);
  EXPECT_GT(stats.wall_seconds, 0.0);
  EXPECT_GT(stats.pairs_per_second(), 0.0);
}

TEST(Engine, RequiresAtLeastOneThread) {
  const Program program = chain_program(2, 11);
  EXPECT_THROW(Engine(program, {.threads = 0}), support::check_error);
}

TEST(Engine, AbandonedEngineShutsDownCleanly) {
  const Program program = chain_program(4, 12);
  {
    Engine engine(program, {.threads = 2});
    engine.start();
    engine.start_phase({});
    // Destructor must join workers without finish().
  }
  SUCCEED();
}

TEST(Engine, ShardedSchedulerMatchesSequential) {
  // scheduler_shards > 1 swaps in the partition-aligned sharded scheduler
  // with the apply/collect drain; results must be serializably equivalent
  // to the sequential reference, exactly like the flat path.
  const Program program = chain_program(12, 21);
  for (const std::size_t shards : {std::size_t{2}, std::size_t{4},
                                   std::size_t{8}}) {
    EngineOptions options;
    options.threads = 4;
    options.scheduler_shards = shards;
    Engine engine(program, options);
    const auto report = trace::check_against_sequential(program, engine, 120);
    EXPECT_TRUE(report.equivalent) << "shards " << shards << ": "
                                   << report.summary();
  }
}

TEST(Engine, ShardedTinyInflightWindowStillCorrect) {
  const Program program = chain_program(6, 5);
  EngineOptions options;
  options.threads = 3;
  options.max_inflight_phases = 1;  // fully serialized phases
  options.scheduler_shards = 3;
  Engine engine(program, options);
  const auto report = trace::check_against_sequential(program, engine, 64);
  EXPECT_TRUE(report.equivalent) << report.summary();
  EXPECT_LE(engine.stats().max_inflight_phases, 1U);
}

TEST(Engine, ShardedStatsAccountForWork) {
  const Program program = chain_program(5, 10);
  EngineOptions options;
  options.threads = 2;
  options.scheduler_shards = 5;
  Engine engine(program, options);
  engine.run(40, nullptr);
  const ExecStats stats = engine.stats();
  EXPECT_EQ(stats.phases_completed, 40U);
  EXPECT_EQ(stats.executed_pairs, 5U * 40U);
  EXPECT_EQ(stats.messages_delivered, 4U * 40U);
  EXPECT_EQ(stats.sink_records, 40U);
}

TEST(Engine, ShardedShardCountClampedToVertices) {
  // More shards than vertices must degrade gracefully (clamped), and a
  // single worker still drives the apply/collect protocol to completion.
  const Program program = chain_program(3, 17);
  EngineOptions options;
  options.threads = 1;
  options.scheduler_shards = 64;
  Engine engine(program, options);
  engine.run(30, nullptr);
  EXPECT_EQ(engine.stats().phases_completed, 30U);
  EXPECT_EQ(engine.stats().executed_pairs, 3U * 30U);
}

TEST(Engine, ShardedModuleExceptionSurfacesAtFinish) {
  spec::GraphBuilder b;
  const auto src = b.add("src", model::factory_of<model::CounterSource>());
  const auto bomb = b.add_lambda("bomb", [](model::PhaseContext& ctx) {
    if (ctx.phase() == 3) {
      throw std::runtime_error("model blew up");
    }
  });
  b.connect(src, bomb);
  const Program program = std::move(b).build(9);
  EngineOptions options;
  options.threads = 2;
  options.scheduler_shards = 2;
  Engine engine(program, options);
  EXPECT_THROW(engine.run(10, nullptr), std::runtime_error);
  EXPECT_EQ(engine.completed_phases(), 10U);
}

TEST(Engine, ShardedAbandonedEngineShutsDownCleanly) {
  const Program program = chain_program(4, 12);
  {
    EngineOptions options;
    options.threads = 2;
    options.scheduler_shards = 2;
    Engine engine(program, options);
    engine.start();
    engine.start_phase({});
    // Destructor must join workers without finish().
  }
  SUCCEED();
}

TEST(Engine, SparseTrafficExecutesOnlyReachedVertices) {
  // src emits on ~10% of phases; downstream executes only then.
  spec::GraphBuilder b;
  const auto src = b.add(
      "src", model::factory_of<model::SparseEventSource>(0.1,
                                                         event::Value(1.0)));
  const auto fwd = b.add("fwd", model::factory_of<model::ForwardModule>());
  b.connect(src, fwd);
  const Program program = std::move(b).build(13);
  Engine engine(program, {.threads = 2});
  engine.run(1000, nullptr);
  const ExecStats stats = engine.stats();
  // Source executes every phase; forwarder only when a message arrived.
  EXPECT_EQ(stats.executed_pairs, 1000U + stats.messages_delivered);
  EXPECT_LT(stats.messages_delivered, 300U);
  EXPECT_GT(stats.messages_delivered, 20U);
}

}  // namespace
}  // namespace df::core
