// Robustness sweep for the XML parser: random mutations of a valid
// specification must either parse or throw xml_error / check_error —
// never crash, hang, or corrupt memory.
#include <gtest/gtest.h>

#include <string>

#include "spec/spec.hpp"
#include "spec/xml.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace df::spec {
namespace {

const char* kBase = R"(<computation>
  <simulation timesteps="10" seed="1" threads="2"/>
  <graph>
    <vertex id="a" type="counter"/>
    <vertex id="b" type="forward"/>
    <edge from="a" to="b"/>
  </graph>
</computation>)";

class XmlFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(XmlFuzz, MutatedDocumentsNeverCrash) {
  support::Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    std::string text = kBase;
    const int mutations = 1 + static_cast<int>(rng.next_below(6));
    for (int m = 0; m < mutations; ++m) {
      const std::size_t pos =
          static_cast<std::size_t>(rng.next_below(text.size()));
      switch (rng.next_below(4)) {
        case 0:  // flip a character
          text[pos] = static_cast<char>(32 + rng.next_below(95));
          break;
        case 1:  // delete a character
          text.erase(pos, 1);
          break;
        case 2:  // duplicate a character
          text.insert(pos, 1, text[pos]);
          break;
        default:  // insert structural noise
          text.insert(pos, "<");
          break;
      }
    }
    try {
      const ComputationSpec spec = parse_spec(text);
      // If it parsed, building the program must also either work or throw.
      try {
        (void)spec.to_program();
      } catch (const support::check_error&) {
      }
    } catch (const xml_error&) {
    } catch (const support::check_error&) {
    }
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, XmlFuzz,
                         ::testing::Range<std::uint64_t>(0, 6));

TEST(XmlFuzz, RandomGarbageNeverCrashes) {
  support::Rng rng(42);
  for (int trial = 0; trial < 300; ++trial) {
    std::string text;
    const std::size_t length = rng.next_below(120);
    for (std::size_t i = 0; i < length; ++i) {
      text.push_back(static_cast<char>(rng.next_below(256)));
    }
    try {
      (void)parse_xml(text);
    } catch (const xml_error&) {
    } catch (const support::check_error&) {
    }
  }
  SUCCEED();
}

}  // namespace
}  // namespace df::spec
