// Tests for the baseline executors: sequential reference semantics, lockstep
// equivalence, and the eager executor's message-count blow-up (the paper's
// option (1) vs option (2) argument from section 1).
#include <gtest/gtest.h>

#include "baseline/eager.hpp"
#include "baseline/lockstep.hpp"
#include "baseline/sequential.hpp"
#include "model/detectors.hpp"
#include "model/sources.hpp"
#include "model/stats_models.hpp"
#include "model/synthetic.hpp"
#include "spec/builder.hpp"
#include "support/check.hpp"
#include "trace/serializability.hpp"

namespace df::baseline {
namespace {

core::Program detector_program(std::uint64_t seed) {
  spec::GraphBuilder b;
  const auto src = b.add("src", model::factory_of<model::GaussianSource>(
                                    10.0, 2.0, 1.0));
  const auto avg = b.add("avg", model::factory_of<model::MovingAverageModule>(
                                    std::size_t{8}));
  const auto det =
      b.add("det", model::factory_of<model::ThresholdDetector>(10.5));
  const auto spike =
      b.add("spike", model::factory_of<model::SpikeDetector>(std::size_t{8},
                                                             1.2));
  b.connect(src, avg).connect(avg, det).connect(src, spike);
  return std::move(b).build(seed);
}

TEST(Sequential, DeterministicAcrossRuns) {
  const core::Program program = detector_program(21);
  SequentialExecutor a(program);
  SequentialExecutor b(program);
  a.run(300, nullptr);
  b.run(300, nullptr);
  EXPECT_EQ(a.sinks().canonical(), b.sinks().canonical());
  EXPECT_GT(a.sinks().size(), 0U);
}

TEST(Sequential, SkipsVerticesWithoutInput) {
  spec::GraphBuilder b;
  const auto src = b.add("src", model::factory_of<model::SparseEventSource>(
                                    0.05, event::Value(1.0)));
  const auto fwd = b.add("fwd", model::factory_of<model::ForwardModule>());
  b.connect(src, fwd);
  SequentialExecutor exec(std::move(b).build(22));
  exec.run(500, nullptr);
  const auto stats = exec.stats();
  EXPECT_EQ(stats.executed_pairs, 500U + stats.messages_delivered);
}

class LockstepEquivalence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LockstepEquivalence, MatchesSequentialReference) {
  const core::Program program = detector_program(23);
  LockstepExecutor lockstep(program, GetParam());
  const auto report =
      trace::check_against_sequential(program, lockstep, 400);
  EXPECT_TRUE(report.equivalent) << report.summary();
}

INSTANTIATE_TEST_SUITE_P(Threads, LockstepEquivalence,
                         ::testing::Values(1, 2, 4, 8));

TEST(Lockstep, CountsMatchSequential) {
  const core::Program program = detector_program(24);
  SequentialExecutor sequential(program);
  LockstepExecutor lockstep(program, 4);
  sequential.run(200, nullptr);
  lockstep.run(200, nullptr);
  EXPECT_EQ(sequential.stats().executed_pairs,
            lockstep.stats().executed_pairs);
  EXPECT_EQ(sequential.stats().messages_delivered,
            lockstep.stats().messages_delivered);
}

// The heart of the paper's efficiency argument: with an anomaly rate r, the
// Δ-executor sends O(r) messages past the detector while the eager executor
// sends one message per edge per phase.
TEST(Eager, EveryVertexEveryPhaseEveryEdge) {
  spec::GraphBuilder b;
  const auto src = b.add("src", model::factory_of<model::CounterSource>());
  const auto f1 = b.add("f1", model::factory_of<model::ForwardModule>());
  const auto f2 = b.add("f2", model::factory_of<model::ForwardModule>());
  b.connect(src, f1).connect(f1, f2);
  const core::Program program = std::move(b).build(25);

  EagerExecutor eager(program);
  eager.run(100, nullptr);
  const auto stats = eager.stats();
  EXPECT_EQ(stats.executed_pairs, 300U);  // 3 vertices x 100 phases
  // Each of the 2 edges carries a message every phase once warm; the chain
  // warms within the first phase because the source emits immediately.
  EXPECT_EQ(stats.messages_delivered, 200U);
}

TEST(Eager, DeltaSendsFewerMessagesOnSparseStreams) {
  const double rate = 0.02;
  const auto build = [&] {
    spec::GraphBuilder b;
    const auto src = b.add("src", model::factory_of<model::SparseEventSource>(
                                      rate, event::Value(1.0)));
    const auto f1 = b.add("f1", model::factory_of<model::ForwardModule>());
    const auto f2 = b.add("f2", model::factory_of<model::ForwardModule>());
    b.connect(src, f1).connect(f1, f2);
    return std::move(b).build(26);
  };
  SequentialExecutor delta(build());
  EagerExecutor eager(build());
  delta.run(2000, nullptr);
  eager.run(2000, nullptr);
  // Eager: ~2 messages per phase once the first event has been seen.
  // Delta: ~2 messages per event, events at 2% of phases.
  EXPECT_GT(eager.stats().messages_delivered,
            10 * delta.stats().messages_delivered);
  EXPECT_GT(eager.stats().executed_pairs, delta.stats().executed_pairs);
}

TEST(Eager, StatelessPipelineValuesMatchDelta) {
  // For modules that are pure functions of their latest inputs, eager
  // forwarding must not change sink values (only traffic).
  spec::GraphBuilder b;
  const auto src = b.add("src", model::factory_of<model::CounterSource>());
  const auto fwd = b.add("fwd", model::factory_of<model::ForwardModule>());
  b.connect(src, fwd);
  const core::Program program = std::move(b).build(27);

  SequentialExecutor delta(program);
  EagerExecutor eager(program);
  delta.run(50, nullptr);
  eager.run(50, nullptr);
  EXPECT_EQ(delta.sinks().canonical(), eager.sinks().canonical());
}

TEST(Lockstep, RequiresAtLeastOneThread) {
  const core::Program program = detector_program(28);
  EXPECT_THROW(LockstepExecutor(program, 0), support::check_error);
}

}  // namespace
}  // namespace df::baseline
