// Unit tests for the temporal pattern detectors.
#include <gtest/gtest.h>

#include "model/patterns.hpp"
#include "module_test_util.hpp"
#include "support/check.hpp"

namespace df::model {
namespace {

using testutil::Script;
using testutil::run_module;
using testutil::script_of;

Script events_at(std::initializer_list<event::PhaseId> phases,
                 event::PhaseId length) {
  Script script(length);
  for (const event::PhaseId p : phases) {
    script[p - 1] = event::Value(1.0);
  }
  return script;
}

TEST(Sequence, MatchesAThenBWithinWindow) {
  // A at 2, B at 5, window 4 -> distance 3.
  const auto out = run_module(
      factory_of<SequenceDetector>(event::PhaseId{4}),
      {events_at({2}, 8), events_at({5}, 8)});
  ASSERT_EQ(out.size(), 1U);
  EXPECT_EQ(out[0].first, 5U);
  EXPECT_EQ(out[0].second.as_int(), 3);
}

TEST(Sequence, ExpiredAIsForgotten) {
  // A at 1, B at 8, window 4 -> too late, no match.
  const auto out = run_module(
      factory_of<SequenceDetector>(event::PhaseId{4}),
      {events_at({1}, 10), events_at({8}, 10)});
  EXPECT_TRUE(out.empty());
}

TEST(Sequence, EachAMatchesAtMostOneB) {
  // A at 2; Bs at 3 and 4: only the first B matches.
  const auto out = run_module(
      factory_of<SequenceDetector>(event::PhaseId{8}),
      {events_at({2}, 6), events_at({3, 4}, 6)});
  ASSERT_EQ(out.size(), 1U);
  EXPECT_EQ(out[0].first, 3U);
}

TEST(Sequence, SimultaneousAAndBMatchesNextB) {
  // A and B in the same phase: B belongs to an *earlier* A only; the
  // same-phase A then matches a later B.
  const auto out = run_module(
      factory_of<SequenceDetector>(event::PhaseId{8}),
      {events_at({3}, 8), events_at({3, 5}, 8)});
  ASSERT_EQ(out.size(), 1U);
  EXPECT_EQ(out[0].first, 5U);
  EXPECT_EQ(out[0].second.as_int(), 2);
}

TEST(CountWindow, FiresOnBurst) {
  // Events at 1,2,3 with count 3 window 4 -> fires at phase 3.
  const auto out = run_module(
      factory_of<CountWindowDetector>(std::size_t{3}, event::PhaseId{4}),
      {events_at({1, 2, 3, 9}, 10)});
  ASSERT_EQ(out.size(), 1U);
  EXPECT_EQ(out[0].first, 3U);
  EXPECT_EQ(out[0].second.as_int(), 3);
}

TEST(CountWindow, SparseEventsNeverFire) {
  const auto out = run_module(
      factory_of<CountWindowDetector>(std::size_t{3}, event::PhaseId{4}),
      {events_at({1, 6, 11, 16}, 20)});
  EXPECT_TRUE(out.empty());
}

TEST(CountWindow, RearmsAfterFiring) {
  const auto out = run_module(
      factory_of<CountWindowDetector>(std::size_t{2}, event::PhaseId{3}),
      {events_at({1, 2, 5, 6}, 8)});
  ASSERT_EQ(out.size(), 2U);
  EXPECT_EQ(out[0].first, 2U);
  EXPECT_EQ(out[1].first, 6U);
}

TEST(Absence, DetectsHeartbeatLossAndRecovery) {
  // Clock on port 0 every phase; heartbeats on port 1 at 1..3, then silence
  // until 12. Timeout 4 -> alarm at 8 (3+4+1), recovery at 12.
  const auto out = run_module(
      factory_of<AbsenceDetector>(event::PhaseId{4}),
      {script_of(14, [](auto) { return 1.0; }),
       events_at({1, 2, 3, 12}, 14)});
  ASSERT_EQ(out.size(), 2U);
  EXPECT_EQ(out[0].first, 8U);
  EXPECT_TRUE(out[0].second.as_bool());
  EXPECT_EQ(out[1].first, 12U);
  EXPECT_FALSE(out[1].second.as_bool());
}

TEST(Absence, SilentBeforeFirstHeartbeat) {
  const auto out = run_module(
      factory_of<AbsenceDetector>(event::PhaseId{2}),
      {script_of(10, [](auto) { return 1.0; }), Script(10)});
  EXPECT_TRUE(out.empty());  // stream never established
}

TEST(Hysteresis, SwitchesAtDifferentLevels) {
  const auto out = run_module(
      factory_of<HysteresisDetector>(2.0, 5.0),
      {Script{event::Value(1.0), event::Value(4.0), event::Value(6.0),
              event::Value(4.0), event::Value(1.0)}});
  // 1.0 -> false (initial), 4.0 no change, 6.0 -> true, 4.0 holds (inside
  // band), 1.0 -> false.
  ASSERT_EQ(out.size(), 3U);
  EXPECT_FALSE(out[0].second.as_bool());
  EXPECT_EQ(out[1].first, 3U);
  EXPECT_TRUE(out[1].second.as_bool());
  EXPECT_EQ(out[2].first, 5U);
  EXPECT_FALSE(out[2].second.as_bool());
}

TEST(Hysteresis, RejectsInvertedBand) {
  EXPECT_THROW(HysteresisDetector(5.0, 2.0), support::check_error);
}

TEST(Range, ReportsExcursionsAndTransitions) {
  const auto out = run_module(
      factory_of<RangeDetector>(0.0, 10.0),
      {Script{event::Value(5.0), event::Value(12.0), event::Value(7.0)}});
  // Phase 1: inside -> transition true (port 1).
  // Phase 2: 12 outside -> excursion value (port 0) + transition false.
  // Phase 3: back inside -> transition true.
  ASSERT_EQ(out.size(), 4U);
  // Canonical order sorts by port within a phase.
  EXPECT_TRUE(out[0].second.as_bool());
  EXPECT_DOUBLE_EQ(out[1].second.as_double(), 12.0);
  EXPECT_FALSE(out[2].second.as_bool());
  EXPECT_TRUE(out[3].second.as_bool());
}

}  // namespace
}  // namespace df::model
