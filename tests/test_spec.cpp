// Tests for specification parsing, the module registry, and the builder.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "baseline/sequential.hpp"
#include "core/engine.hpp"
#include "model/registry.hpp"
#include "spec/builder.hpp"
#include "spec/spec.hpp"
#include "support/check.hpp"
#include "trace/serializability.hpp"

namespace df::spec {
namespace {

constexpr const char* kSpecText = R"(<?xml version="1.0"?>
<computation>
  <simulation timesteps="240" seed="42" threads="3" max_inflight="16"
              machines="3"/>
  <graph>
    <vertex id="temp"  type="temperature" base="20" amplitude="8"
            period="24" noise="0.5" report_delta="0.5"/>
    <vertex id="avg"   type="moving_average" window="6"/>
    <vertex id="alarm" type="threshold" threshold="24"/>
    <edge from="temp" to="avg"/>
    <edge from="avg"  to="alarm"/>
  </graph>
</computation>)";

TEST(Spec, ParsesSimulationAndGraph) {
  const ComputationSpec spec = parse_spec(kSpecText);
  EXPECT_EQ(spec.simulation.timesteps, 240U);
  EXPECT_EQ(spec.simulation.seed, 42U);
  EXPECT_EQ(spec.simulation.threads, 3U);
  EXPECT_EQ(spec.simulation.max_inflight_phases, 16U);
  EXPECT_EQ(spec.simulation.machines, 3U);
  ASSERT_EQ(spec.vertices.size(), 3U);
  EXPECT_EQ(spec.vertices[0].id, "temp");
  EXPECT_EQ(spec.vertices[0].type, "temperature");
  EXPECT_EQ(spec.vertices[0].params.at("amplitude"), "8");
  ASSERT_EQ(spec.edges.size(), 2U);
}

TEST(Spec, AutoAssignsInputPorts) {
  const ComputationSpec spec = parse_spec(R"(<computation><graph>
    <vertex id="a" type="counter"/>
    <vertex id="b" type="counter"/>
    <vertex id="s" type="sum"/>
    <edge from="a" to="s"/>
    <edge from="b" to="s"/>
  </graph></computation>)");
  EXPECT_EQ(spec.edges[0].to_port, 0);
  EXPECT_EQ(spec.edges[1].to_port, 1);  // next free port
  EXPECT_EQ(spec.simulation.machines, 1U);  // default: single machine
}

TEST(Spec, ExplicitPortsRespected) {
  const ComputationSpec spec = parse_spec(R"(<computation><graph>
    <vertex id="a" type="counter"/>
    <vertex id="s" type="sum"/>
    <edge from="a" from_port="2" to="s" to_port="3"/>
  </graph></computation>)");
  EXPECT_EQ(spec.edges[0].from_port, 2);
  EXPECT_EQ(spec.edges[0].to_port, 3);
}

TEST(Spec, ToProgramRunsEndToEnd) {
  const ComputationSpec spec = parse_spec(kSpecText);
  const core::Program program = spec.to_program();
  core::Engine engine(program, {.threads = spec.simulation.threads});
  const auto report = trace::check_against_sequential(
      program, engine, spec.simulation.timesteps);
  EXPECT_TRUE(report.equivalent) << report.summary();
  EXPECT_GT(report.reference_records, 0U);
}

TEST(Spec, RoundTripsThroughXml) {
  const ComputationSpec spec = parse_spec(kSpecText);
  const ComputationSpec again = parse_spec(spec.to_xml_text());
  EXPECT_EQ(again.simulation.timesteps, spec.simulation.timesteps);
  EXPECT_EQ(again.simulation.machines, spec.simulation.machines);
  EXPECT_EQ(again.vertices.size(), spec.vertices.size());
  EXPECT_EQ(again.edges.size(), spec.edges.size());
  EXPECT_EQ(again.vertices[0].params, spec.vertices[0].params);
}

TEST(Spec, LoadSpecFileReadsDisk) {
  const std::string path = ::testing::TempDir() + "df_spec_test.xml";
  {
    std::ofstream out(path);
    out << kSpecText;
  }
  const ComputationSpec spec = load_spec_file(path);
  EXPECT_EQ(spec.vertices.size(), 3U);
  std::remove(path.c_str());
  EXPECT_THROW(load_spec_file(path), support::check_error);
}

TEST(Spec, RejectsMalformedSpecs) {
  EXPECT_THROW(parse_spec("<bogus/>"), support::check_error);
  EXPECT_THROW(parse_spec("<computation/>"), support::check_error);
  EXPECT_THROW(parse_spec("<computation><graph/></computation>"),
               support::check_error);
  EXPECT_THROW(parse_spec(R"(<computation><graph>
      <vertex id="a" type="counter"/>
      <widget/>
    </graph></computation>)"),
               support::check_error);
}

TEST(Spec, UnknownModuleTypeFails) {
  const ComputationSpec spec = parse_spec(R"(<computation><graph>
    <vertex id="a" type="definitely_not_registered"/>
  </graph></computation>)");
  EXPECT_THROW(spec.to_program(), support::check_error);
}

TEST(Registry, BuiltinHasDocumentedTypes) {
  const model::Registry& registry = model::Registry::builtin();
  for (const char* name :
       {"counter", "gaussian", "temperature", "transactions",
        "moving_average", "zscore", "threshold", "and", "or", "kmeans",
        "busy", "forward", "join", "expectation", "forecast"}) {
    EXPECT_TRUE(registry.has_type(name)) << name;
  }
  EXPECT_FALSE(registry.has_type("nope"));
  EXPECT_GE(registry.type_names().size(), 30U);
}

TEST(Registry, BadParameterValueFails) {
  const model::Registry& registry = model::Registry::builtin();
  const model::Params params(
      std::map<std::string, std::string>{{"window", "abc"}});
  EXPECT_THROW(registry.build("moving_average", params, 1),
               support::check_error);
}

TEST(Registry, RequiredParameterEnforced) {
  const model::Registry& registry = model::Registry::builtin();
  EXPECT_THROW(registry.build("threshold", model::Params{}, 1),
               support::check_error);
}

TEST(Registry, DuplicateRegistrationFails) {
  model::Registry registry;
  registry.register_type("x", [](const model::Params&, std::size_t) {
    return model::factory_of<model::LambdaModule>(
        [](model::PhaseContext&) {});
  });
  EXPECT_THROW(registry.register_type(
                   "x",
                   [](const model::Params&, std::size_t) {
                     return model::factory_of<model::LambdaModule>(
                         [](model::PhaseContext&) {});
                   }),
               support::check_error);
}

TEST(Builder, ChainsAndBuilds) {
  GraphBuilder b;
  const auto a = b.add_lambda("a", [](model::PhaseContext& ctx) {
    ctx.emit(0, static_cast<std::int64_t>(ctx.phase()));
  });
  const auto c = b.add_lambda("c", [](model::PhaseContext& ctx) {
    if (ctx.has_input(0)) {
      ctx.emit(0, ctx.input(0));
    }
  });
  b.connect(a, c);
  const core::Program program = std::move(b).build(5);
  baseline::SequentialExecutor exec(program);
  exec.run(3, nullptr);
  EXPECT_EQ(exec.sinks().size(), 3U);
}

TEST(Builder, CopyBuildAllowsReuse) {
  GraphBuilder b;
  b.add("src", model::factory_of<model::LambdaModule>(
                   [](model::PhaseContext& ctx) { ctx.emit(0, 1.0); }));
  const core::Program p1 = b.build(1);
  const core::Program p2 = b.build(2);
  EXPECT_EQ(p1.dag.vertex_count(), p2.dag.vertex_count());
  EXPECT_NE(p1.seed, p2.seed);
}

TEST(Builder, RejectsNullFactory) {
  GraphBuilder b;
  EXPECT_THROW(b.add("bad", model::ModuleFactory{}), support::check_error);
}

}  // namespace
}  // namespace df::spec
