// Unit tests for Program / ProgramInstance: index remapping, routing,
// per-vertex rng streams, and the execute_vertex helper.
#include <gtest/gtest.h>

#include "core/executor.hpp"
#include "core/program.hpp"
#include "graph/generators.hpp"
#include "model/module.hpp"
#include "model/sources.hpp"
#include "spec/builder.hpp"
#include "support/check.hpp"

namespace df::core {
namespace {

Program two_chain_program() {
  spec::GraphBuilder b;
  const auto src = b.add("src", model::factory_of<model::CounterSource>());
  const auto mid = b.add_lambda("mid", [](model::PhaseContext& ctx) {
    if (ctx.has_input(0)) {
      ctx.emit(0, ctx.input(0).as_int() * 2);
      ctx.emit(1, std::string("aux"));
    }
  });
  b.connect(src, mid);
  return std::move(b).build(5);
}

TEST(Program, FactoryCountMustMatchVertices) {
  graph::Dag dag;
  dag.add_vertex("a");
  EXPECT_THROW(make_program(std::move(dag), {}), support::check_error);
}

TEST(Program, NullFactoryRejected) {
  graph::Dag dag;
  dag.add_vertex("a");
  std::vector<model::ModuleFactory> factories;
  factories.emplace_back();  // empty function
  EXPECT_THROW(make_program(std::move(dag), std::move(factories)),
               support::check_error);
}

TEST(ProgramInstance, IndexMappingRoundTrips) {
  const Program program = two_chain_program();
  ProgramInstance instance(program);
  EXPECT_EQ(instance.n(), 2U);
  for (std::uint32_t index = 1; index <= instance.n(); ++index) {
    const graph::VertexId orig = instance.original_id(index);
    EXPECT_EQ(instance.internal_index(orig), index);
  }
  EXPECT_EQ(instance.name(1), "src");
  EXPECT_EQ(instance.name(2), "mid");
  EXPECT_TRUE(instance.is_source(1));
  EXPECT_FALSE(instance.is_source(2));
  EXPECT_EQ(instance.source_count(), 1U);
}

TEST(ProgramInstance, RoutesFollowEdgesAndDanglingPortsAreEmpty) {
  const Program program = two_chain_program();
  ProgramInstance instance(program);
  const auto& routes = instance.routes(1, 0);
  ASSERT_EQ(routes.size(), 1U);
  EXPECT_EQ(routes[0].to_index, 2U);
  EXPECT_EQ(routes[0].to_port, 0);
  // mid's port 0 and port 1 both dangle (no successors).
  EXPECT_TRUE(instance.routes(2, 0).empty());
  EXPECT_TRUE(instance.routes(2, 7).empty());  // never-used port: empty too
}

TEST(ProgramInstance, VertexRngStreamsAreIndependentAndStable) {
  const Program program = two_chain_program();
  ProgramInstance a(program);
  ProgramInstance b(program);
  // Same program => identical streams per vertex across instances.
  EXPECT_EQ(a.runtime(1).rng.next_u64(), b.runtime(1).rng.next_u64());
  // Different vertices => different streams.
  ProgramInstance c(program);
  EXPECT_NE(c.runtime(1).rng.next_u64(), c.runtime(2).rng.next_u64());
}

TEST(ProgramInstance, DifferentSeedsDifferentStreams) {
  spec::GraphBuilder b;
  b.add("src", model::factory_of<model::CounterSource>());
  const Program p1 = b.build(1);
  const Program p2 = b.build(2);
  ProgramInstance i1(p1);
  ProgramInstance i2(p2);
  EXPECT_NE(i1.runtime(1).rng.next_u64(), i2.runtime(1).rng.next_u64());
}

TEST(ExecuteVertex, SplitsDeliveriesAndSinkRecords) {
  const Program program = two_chain_program();
  ProgramInstance instance(program);
  // Execute the source: its port 0 routes to mid.
  ExecutionResult src_result = execute_vertex(instance, 1, 1, {});
  ASSERT_EQ(src_result.deliveries.size(), 1U);
  EXPECT_TRUE(src_result.sink_records.empty());
  EXPECT_EQ(src_result.emissions.size(), 1U);

  // Execute mid with that message: both its ports dangle -> sink records.
  event::InputBundle bundle{
      event::Message{0, src_result.deliveries[0].value}};
  ExecutionResult mid_result = execute_vertex(instance, 2, 1, bundle);
  EXPECT_TRUE(mid_result.deliveries.empty());
  ASSERT_EQ(mid_result.sink_records.size(), 2U);
  EXPECT_EQ(mid_result.sink_records[0].value.as_int(), 2);
  EXPECT_EQ(mid_result.sink_records[1].value.as_string(), "aux");
}

TEST(ExecuteVertex, LatestValuesPersistAcrossPhases) {
  spec::GraphBuilder b;
  const auto probe = b.add_lambda("probe", [](model::PhaseContext& ctx) {
    if (ctx.has_latest(0)) {
      ctx.emit(0, ctx.latest(0));
    }
  });
  (void)probe;
  const Program program = std::move(b).build(3);
  ProgramInstance instance(program);

  // Phase 1 delivers 7 on port 0 (as if external); phase 2 delivers
  // nothing — latest(0) must still read 7.
  event::InputBundle first{event::Message{0, event::Value(7.0)}};
  ExecutionResult r1 = execute_vertex(instance, 1, 1, first);
  ASSERT_EQ(r1.sink_records.size(), 1U);
  ExecutionResult r2 = execute_vertex(instance, 1, 2, {});
  ASSERT_EQ(r2.sink_records.size(), 1U);
  EXPECT_DOUBLE_EQ(r2.sink_records[0].value.as_double(), 7.0);
}

TEST(ExecuteVertex, LastMessagePerPortWins) {
  spec::GraphBuilder b;
  b.add_lambda("probe", [](model::PhaseContext& ctx) {
    ctx.emit(0, ctx.input(0));
  });
  const Program program = std::move(b).build(4);
  ProgramInstance instance(program);
  event::InputBundle bundle{event::Message{0, event::Value(1.0)},
                            event::Message{0, event::Value(2.0)}};
  const ExecutionResult result = execute_vertex(instance, 1, 1, bundle);
  ASSERT_EQ(result.sink_records.size(), 1U);
  EXPECT_DOUBLE_EQ(result.sink_records[0].value.as_double(), 2.0);
}

TEST(ProgramInstance, OutOfRangeAccessesAreChecked) {
  const Program program = two_chain_program();
  ProgramInstance instance(program);
  EXPECT_THROW(instance.runtime(0), support::check_error);
  EXPECT_THROW(instance.runtime(3), support::check_error);
  EXPECT_THROW(instance.original_id(0), support::check_error);
  EXPECT_THROW(instance.internal_index(99), support::check_error);
}

}  // namespace
}  // namespace df::core
