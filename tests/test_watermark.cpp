// Tests for the out-of-order event handling extension (paper section 6).
#include <gtest/gtest.h>

#include "event/watermark.hpp"
#include "support/check.hpp"

namespace df::event {
namespace {

DelayedEvent at(Timestamp generated, Timestamp arrived) {
  return DelayedEvent{generated, arrived, ExternalEvent{0, 0, Value(1.0)}};
}

TEST(WatermarkAssembler, ClosesPhaseWhenWatermarkPasses) {
  WatermarkAssembler assembler(/*wait=*/5);
  EXPECT_TRUE(assembler.feed(at(10, 11)).empty());
  // Arrival at 14: watermark 14 - wait 5 = 9 < 10, still open.
  EXPECT_TRUE(assembler.feed(at(11, 14)).empty());
  // Arrival at 16: watermark 11 >= 10 closes generation time 10.
  const auto closed = assembler.feed(at(12, 16));
  ASSERT_EQ(closed.size(), 2U);  // generation times 10 and 11
  EXPECT_EQ(closed[0].timestamp, 10);
  EXPECT_EQ(closed[0].phase, 1U);
  EXPECT_EQ(closed[1].timestamp, 11);
  EXPECT_EQ(closed[1].phase, 2U);
}

TEST(WatermarkAssembler, GroupsEventsOfSameGenerationTime) {
  WatermarkAssembler assembler(/*wait=*/4);
  assembler.feed(at(5, 6));
  assembler.feed(at(5, 7));  // second arrival for the same generation time
  const auto closed = assembler.feed(at(6, 10));  // watermark 10-4 >= 5
  ASSERT_GE(closed.size(), 1U);
  EXPECT_EQ(closed[0].timestamp, 5);
  EXPECT_EQ(closed[0].events.size(), 2U);
}

TEST(WatermarkAssembler, ReordersWithinWait) {
  WatermarkAssembler assembler(/*wait=*/10);
  // Generation times arrive out of order: 7 after 9.
  assembler.feed(at(9, 12));
  assembler.feed(at(7, 13));
  const auto closed = assembler.flush();
  ASSERT_EQ(closed.size(), 2U);
  EXPECT_EQ(closed[0].timestamp, 7);  // generation order restored
  EXPECT_EQ(closed[1].timestamp, 9);
  EXPECT_EQ(assembler.late_events(), 0U);
}

TEST(WatermarkAssembler, CountsLateEventsAsDropped) {
  WatermarkAssembler assembler(/*wait=*/1);
  assembler.feed(at(10, 11));
  // This arrival pushes the watermark to 19, closing everything <= 18.
  const auto closed = assembler.feed(at(15, 20));
  ASSERT_FALSE(closed.empty());
  // A straggler for generation time 12 arrives after its phase closed.
  EXPECT_TRUE(assembler.feed(at(12, 21)).empty());
  EXPECT_EQ(assembler.late_events(), 1U);
  EXPECT_EQ(assembler.accepted_events(), 2U);
}

TEST(WatermarkAssembler, LargerWaitLosesFewerEvents) {
  support::Rng rng(1);
  const auto run = [&](Timestamp wait) {
    DelayModel model(/*base_delay=*/1, /*mean_extra_delay=*/8.0, /*seed=*/7);
    std::vector<DelayedEvent> delayed;
    for (Timestamp t = 1; t <= 2000; ++t) {
      delayed.push_back(model.delay(
          TimestampedEvent{t, ExternalEvent{0, 0, Value(1.0)}}));
    }
    delayed = DelayModel::arrival_order(std::move(delayed));
    WatermarkAssembler assembler(wait);
    for (const DelayedEvent& e : delayed) {
      assembler.feed(e);
    }
    assembler.flush();
    return assembler.late_events();
  };
  const auto late_short = run(1);
  const auto late_long = run(100);
  EXPECT_GT(late_short, late_long);
  EXPECT_LE(late_long, 1U);  // ~12 mean-delay units of slack: ~no losses
  (void)rng;
}

TEST(DelayModel, ZeroDelayPreservesTimestamps) {
  DelayModel model(0, 0.0, 1);
  const auto delayed =
      model.delay(TimestampedEvent{42, ExternalEvent{0, 0, Value(1.0)}});
  EXPECT_EQ(delayed.generated, 42);
  EXPECT_EQ(delayed.arrived, 42);
}

TEST(DelayModel, ArrivalOrderSorts) {
  std::vector<DelayedEvent> events{at(1, 30), at(2, 10), at(3, 20)};
  const auto sorted = DelayModel::arrival_order(std::move(events));
  EXPECT_EQ(sorted[0].generated, 2);
  EXPECT_EQ(sorted[1].generated, 3);
  EXPECT_EQ(sorted[2].generated, 1);
}

TEST(DelayModel, RejectsNegativeParameters) {
  EXPECT_THROW(DelayModel(-1, 0.0, 1), support::check_error);
  EXPECT_THROW(DelayModel(0, -1.0, 1), support::check_error);
  EXPECT_THROW(WatermarkAssembler(-3), support::check_error);
}

}  // namespace
}  // namespace df::event
