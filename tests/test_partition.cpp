// Tests for graph partitioning and the simulated cluster executor
// (paper section 6, future work).
#include <gtest/gtest.h>

#include "baseline/sequential.hpp"
#include "distrib/cluster.hpp"
#include "graph/generators.hpp"
#include "graph/partition.hpp"
#include "model/sources.hpp"
#include "model/synthetic.hpp"
#include "spec/builder.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"
#include "trace/serializability.hpp"

namespace df {
namespace {

using graph::Numbering;
using graph::Partitioning;

Numbering numbering_of(const graph::Dag& dag) {
  return graph::compute_satisfactory_numbering(dag);
}

TEST(Partition, BalancedBlocksCoverRange) {
  const graph::Dag dag = graph::chain(10);
  const Numbering numbering = numbering_of(dag);
  const Partitioning p = graph::partition_balanced(numbering, 3);
  EXPECT_EQ(p.block_count(), 3U);
  EXPECT_EQ(p.bounds.front(), 0U);
  EXPECT_EQ(p.bounds.back(), 10U);
  // Every index lands in exactly one block and blocks are contiguous.
  std::size_t previous = 0;
  for (std::uint32_t v = 1; v <= 10; ++v) {
    const std::size_t block = p.block_of(v);
    EXPECT_GE(block, previous);
    EXPECT_LE(block, previous + 1);
    previous = block;
  }
  EXPECT_EQ(p.block_of(1), 0U);
  EXPECT_EQ(p.block_of(10), 2U);
}

TEST(Partition, SingleBlockAndRejections) {
  const graph::Dag dag = graph::chain(4);
  const Numbering numbering = numbering_of(dag);
  const Partitioning p = graph::partition_balanced(numbering, 1);
  EXPECT_EQ(p.block_count(), 1U);
  EXPECT_THROW(graph::partition_balanced(numbering, 0),
               support::check_error);
  EXPECT_THROW(graph::partition_balanced(numbering, 5),
               support::check_error);
}

TEST(Partition, ValidatorAcceptsDegenerateCutsAndRejectsInvalidOnes) {
  // Empty blocks are legal (regression: only balanced cuts used to be
  // exercised, and an empty block slipping into an executor was untested);
  // gaps, overlaps, and coverage errors are not.
  graph::Partitioning degenerate;
  degenerate.bounds = {0, 0, 4, 4, 9, 9};
  graph::validate_partition_cut(degenerate, 9, 5);

  // block_of stays consistent across empty neighbours: the empty blocks
  // own nothing and every index maps into a non-empty block.
  EXPECT_EQ(degenerate.block_of(1), 1U);
  EXPECT_EQ(degenerate.block_of(4), 1U);
  EXPECT_EQ(degenerate.block_of(5), 3U);
  EXPECT_EQ(degenerate.block_of(9), 3U);

  graph::Partitioning bad;
  bad.bounds = {1, 9};
  EXPECT_THROW(graph::validate_partition_cut(bad, 9, 1),
               support::check_error);
  bad.bounds = {0, 8};
  EXPECT_THROW(graph::validate_partition_cut(bad, 9, 1),
               support::check_error);
  bad.bounds = {0, 5, 3, 9};
  EXPECT_THROW(graph::validate_partition_cut(bad, 9, 3),
               support::check_error);
  bad.bounds = {0, 9};
  EXPECT_THROW(graph::validate_partition_cut(bad, 9, 2),
               support::check_error);
  EXPECT_THROW(graph::validate_partition_cut(bad, 9, 0),
               support::check_error);
}

TEST(Partition, ShardMapAgreesWithBlockOf) {
  support::Rng rng(5);
  const graph::Dag dag = graph::random_dag(23, 0.3, rng);
  const Numbering numbering = numbering_of(dag);
  for (const std::size_t blocks : {std::size_t{1}, std::size_t{4},
                                   std::size_t{8}}) {
    const Partitioning p = graph::partition_balanced(numbering, blocks);
    const graph::ShardMap map = graph::make_shard_map(p);
    ASSERT_EQ(map.shard_count(), blocks);
    EXPECT_EQ(map.vertex_count(), numbering.size());
    for (std::uint32_t v = 1; v <= numbering.size(); ++v) {
      EXPECT_EQ(map.shard_of[v], p.block_of(v)) << "vertex " << v;
      const std::size_t k = map.shard_of[v];
      EXPECT_GE(v, map.begin(k));
      EXPECT_LE(v, map.end(k));
    }
    // Shards tile 1..N contiguously.
    EXPECT_EQ(map.begin(0), 1U);
    EXPECT_EQ(map.end(blocks - 1), numbering.size());
    for (std::size_t k = 1; k < blocks; ++k) {
      EXPECT_EQ(map.begin(k), map.end(k - 1) + 1);
    }
  }
}

TEST(Partition, ShardMapCrossTrafficIsForwardOnly) {
  // The property the sharded scheduler's locking discipline rests on:
  // under a satisfactory numbering, every edge's target shard is >= its
  // source shard.
  support::Rng rng(9);
  const graph::Dag dag = graph::random_dag(31, 0.25, rng);
  const Numbering numbering = numbering_of(dag);
  const graph::ShardMap map = graph::make_shard_map(
      graph::partition_balanced(numbering, 5));
  for (const graph::Edge& e : dag.edges()) {
    const std::uint32_t from = numbering.index_of[e.from];
    const std::uint32_t to = numbering.index_of[e.to];
    EXPECT_LE(map.shard_of[from], map.shard_of[to])
        << "edge " << from << " -> " << to << " flows backward across shards";
  }
}

TEST(Partition, WeightedBalancesCost) {
  const graph::Dag dag = graph::chain(8);
  const Numbering numbering = numbering_of(dag);
  // One heavy vertex at index 1: weighted split should put it alone-ish.
  std::vector<double> weight(9, 1.0);
  weight[1] = 100.0;
  const Partitioning p = graph::partition_weighted(numbering, weight, 2);
  EXPECT_EQ(p.block_count(), 2U);
  EXPECT_LE(p.block_end(0), 2U);  // first block stays small
  // All blocks non-empty and ordered.
  for (std::size_t k = 0; k < p.block_count(); ++k) {
    EXPECT_LE(p.block_begin(k), p.block_end(k));
  }
}

TEST(Partition, MinCutNeverWorseThanBalanced) {
  support::Rng rng(5);
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    support::Rng graph_rng(seed);
    const graph::Dag dag = graph::random_dag(40, 0.15, graph_rng);
    const Numbering numbering = numbering_of(dag);
    const auto balanced = graph::partition_balanced(numbering, 4);
    const auto min_cut = graph::partition_min_cut(dag, numbering, 4, 6);
    const auto m_balanced =
        graph::evaluate_partitioning(dag, numbering, balanced);
    const auto m_cut = graph::evaluate_partitioning(dag, numbering, min_cut);
    EXPECT_LE(m_cut.edge_cut, m_balanced.edge_cut) << "seed " << seed;
    EXPECT_EQ(m_cut.blocks, 4U);
  }
  (void)rng;
}

TEST(Partition, MetricsOnChain) {
  const graph::Dag dag = graph::chain(9);
  const Numbering numbering = numbering_of(dag);
  const auto p = graph::partition_balanced(numbering, 3);
  const auto metrics = graph::evaluate_partitioning(dag, numbering, p);
  EXPECT_EQ(metrics.blocks, 3U);
  EXPECT_EQ(metrics.edge_cut, 2U);  // one edge per boundary on a chain
  EXPECT_EQ(metrics.max_block, 3U);
  EXPECT_EQ(metrics.min_block, 3U);
  EXPECT_DOUBLE_EQ(metrics.imbalance, 1.0);
}

core::Program pipeline_program(std::uint32_t length) {
  spec::GraphBuilder b;
  std::vector<graph::VertexId> ids;
  ids.push_back(b.add("src", model::factory_of<model::CounterSource>()));
  for (std::uint32_t i = 1; i < length; ++i) {
    ids.push_back(b.add("f" + std::to_string(i),
                        model::factory_of<model::ForwardModule>()));
    b.connect(ids[i - 1], ids[i]);
  }
  return std::move(b).build(3);
}

TEST(Cluster, SemanticsMatchSequential) {
  const core::Program program = pipeline_program(12);
  distrib::ClusterOptions options;
  options.machines = 3;
  options.fixed_vertex_cost_ns = 1000;
  distrib::ClusterExecutor cluster(program, options);
  const auto report = trace::check_against_sequential(program, cluster, 80);
  EXPECT_TRUE(report.equivalent) << report.summary();
}

TEST(Cluster, CountsNetworkVsLocalMessages) {
  const core::Program program = pipeline_program(12);
  distrib::ClusterOptions options;
  options.machines = 3;
  options.fixed_vertex_cost_ns = 1000;
  distrib::ClusterExecutor cluster(program, options);
  cluster.run(10, nullptr);
  const auto& cs = cluster.cluster_stats();
  // Chain of 12 over 3 machines: 2 cross-machine edges, 9 local, x10 phases.
  EXPECT_EQ(cs.network_messages, 20U);
  EXPECT_EQ(cs.local_messages, 90U);
  EXPECT_GT(cs.makespan_ns, 0U);
  ASSERT_EQ(cs.busy_ns.size(), 3U);
}

TEST(Cluster, LatencyInflatesMakespan) {
  const core::Program program = pipeline_program(12);
  const auto makespan = [&](std::uint64_t latency) {
    distrib::ClusterOptions options;
    options.machines = 3;
    options.fixed_vertex_cost_ns = 1000;
    options.network_latency_ns = latency;
    distrib::ClusterExecutor cluster(program, options);
    cluster.run(50, nullptr);
    return cluster.cluster_stats().makespan_ns;
  };
  EXPECT_GT(makespan(100000), makespan(0));
}

TEST(Cluster, MoreMachinesShortenCompute) {
  // With zero network latency and real per-vertex cost, adding machines
  // divides the per-phase serial work (each machine has one core).
  const core::Program program = pipeline_program(16);
  const auto makespan = [&](std::size_t machines) {
    distrib::ClusterOptions options;
    options.machines = machines;
    options.network_latency_ns = 0;
    options.fixed_vertex_cost_ns = 10000;
    distrib::ClusterExecutor cluster(program, options);
    cluster.run(100, nullptr);
    return cluster.cluster_stats().makespan_ns;
  };
  // A chain pipelines across machines: more machines => shorter makespan.
  EXPECT_LT(makespan(4), makespan(1));
}

TEST(Cluster, RejectsBadOptions) {
  const core::Program program = pipeline_program(4);
  distrib::ClusterOptions zero_machines;
  zero_machines.machines = 0;
  EXPECT_THROW(distrib::ClusterExecutor(program, zero_machines),
               support::check_error);
  distrib::ClusterOptions mismatched;
  mismatched.machines = 2;
  mismatched.partitioning.bounds = {0, 1, 2, 4};  // 3 blocks != 2 machines
  EXPECT_THROW(distrib::ClusterExecutor(program, mismatched),
               support::check_error);
}

class ClusterSerializability
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ClusterSerializability, RandomGraphsMatchSequential) {
  const std::uint64_t seed = GetParam();
  support::Rng rng(seed);
  const graph::Dag shape = graph::random_dag(
      10 + static_cast<std::uint32_t>(seed % 12), 0.25, rng);
  spec::GraphBuilder b;
  std::vector<graph::VertexId> ids;
  for (graph::VertexId v = 0; v < shape.vertex_count(); ++v) {
    if (shape.in_degree(v) == 0) {
      ids.push_back(b.add(shape.name(v),
                          model::factory_of<model::CounterSource>()));
    } else {
      ids.push_back(b.add(
          shape.name(v),
          model::factory_of<model::BusyWorkModule>(
              std::uint64_t{0}, shape.in_degree(v), 0.7)));
    }
  }
  for (const graph::Edge& e : shape.edges()) {
    b.connect(ids[e.from], e.from_port, ids[e.to], e.to_port);
  }
  const core::Program program = std::move(b).build(seed + 99);

  distrib::ClusterOptions options;
  options.machines = 1 + seed % 4;
  options.cores_per_machine = 1 + seed % 2;
  options.fixed_vertex_cost_ns = 500;
  distrib::ClusterExecutor cluster(program, options);
  const auto report = trace::check_against_sequential(program, cluster, 120);
  EXPECT_TRUE(report.equivalent) << report.summary();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClusterSerializability,
                         ::testing::Range<std::uint64_t>(0, 8));

TEST(Replication, ReplicasAgreeBitForBit) {
  const core::Program program = pipeline_program(8);
  std::size_t records = 0;
  EXPECT_TRUE(distrib::run_replicated(program, 3, 60, {}, 2, &records));
  EXPECT_EQ(records, 60U);  // counter source reaches the sink every phase
}

}  // namespace
}  // namespace df
