// End-to-end smoke test: builds a small Δ-dataflow program, runs it on the
// parallel engine and the sequential reference, and checks serializability.
#include <gtest/gtest.h>

#include "baseline/sequential.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "model/sources.hpp"
#include "model/stats_models.hpp"
#include "model/detectors.hpp"
#include "spec/builder.hpp"
#include "trace/serializability.hpp"

namespace df {
namespace {

core::Program temperature_alarm_program() {
  spec::GraphBuilder b;
  const auto temp = b.add("temp", model::factory_of<model::TemperatureSource>(
                                      20.0, 8.0, std::uint64_t{24}, 0.5, 0.5));
  const auto avg =
      b.add("avg", model::factory_of<model::MovingAverageModule>(
                       std::size_t{6}));
  const auto alarm =
      b.add("alarm", model::factory_of<model::ThresholdDetector>(24.0));
  b.connect(temp, avg).connect(avg, alarm);
  return std::move(b).build(/*seed=*/7);
}

TEST(Smoke, SequentialProducesOutput) {
  baseline::SequentialExecutor sequential(temperature_alarm_program());
  sequential.run(200, nullptr);
  EXPECT_GT(sequential.sinks().size(), 0U);
  EXPECT_EQ(sequential.stats().phases_completed, 200U);
}

TEST(Smoke, EngineMatchesSequential) {
  const core::Program program = temperature_alarm_program();
  core::EngineOptions options;
  options.threads = 4;
  core::Engine engine(program, options);
  const auto report = trace::check_against_sequential(program, engine, 500);
  EXPECT_TRUE(report.equivalent) << report.summary();
  EXPECT_GT(report.reference_records, 0U);
}

}  // namespace
}  // namespace df
