// Shared helper for model tests: runs a module under test against scripted
// input streams (one ReplaySource per input port) on the sequential
// executor, returning the module's emissions as (phase, value) pairs.
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "baseline/sequential.hpp"
#include "core/program.hpp"
#include "event/value.hpp"
#include "model/module.hpp"
#include "model/sources.hpp"
#include "spec/builder.hpp"

namespace df::testutil {

using Script = std::vector<std::optional<event::Value>>;
using Emission = std::pair<event::PhaseId, event::Value>;

/// Runs `factory`'s module with `scripts[i]` feeding input port i.
/// The run lasts max(script lengths) phases unless `phases` is larger.
inline std::vector<Emission> run_module(model::ModuleFactory factory,
                                        std::vector<Script> scripts,
                                        event::PhaseId phases = 0,
                                        std::uint64_t seed = 1) {
  spec::GraphBuilder builder;
  std::vector<graph::VertexId> sources;
  event::PhaseId length = phases;
  for (std::size_t i = 0; i < scripts.size(); ++i) {
    length = std::max<event::PhaseId>(length, scripts[i].size());
    sources.push_back(builder.add(
        "in" + std::to_string(i),
        [script = scripts[i]] {
          return std::make_unique<model::ReplaySource>(script);
        }));
  }
  const graph::VertexId module =
      builder.add("module", std::move(factory));
  for (std::size_t i = 0; i < sources.size(); ++i) {
    builder.connect(sources[i], 0, module, static_cast<graph::Port>(i));
  }
  const core::Program program = std::move(builder).build(seed);

  baseline::SequentialExecutor executor(program);
  executor.run(length, nullptr);

  std::vector<Emission> out;
  for (const core::SinkRecord& record : executor.sinks().canonical()) {
    if (record.vertex == module) {
      out.emplace_back(record.phase, record.value);
    }
  }
  return out;
}

/// Script helper: a value at every phase 1..n from a generator.
template <typename Fn>
Script script_of(event::PhaseId n, Fn fn) {
  Script script;
  for (event::PhaseId p = 1; p <= n; ++p) {
    script.push_back(event::Value(fn(p)));
  }
  return script;
}

}  // namespace df::testutil
