// Unit tests for the detector modules (change-only emission discipline).
#include <gtest/gtest.h>

#include <cmath>

#include "model/detectors.hpp"
#include "module_test_util.hpp"

namespace df::model {
namespace {

using testutil::Script;
using testutil::run_module;
using testutil::script_of;

TEST(Threshold, EmitsOnlyOnStateChange) {
  const auto out = run_module(
      factory_of<ThresholdDetector>(5.0),
      {Script{event::Value(1.0), event::Value(2.0), event::Value(7.0),
              event::Value(8.0), event::Value(3.0)}});
  ASSERT_EQ(out.size(), 3U);
  EXPECT_FALSE(out[0].second.as_bool());  // initial state reported once
  EXPECT_EQ(out[1].first, 3U);
  EXPECT_TRUE(out[1].second.as_bool());
  EXPECT_EQ(out[2].first, 5U);
  EXPECT_FALSE(out[2].second.as_bool());
}

TEST(ZScore, FlagsInjectedOutlier) {
  Script script = script_of(40, [](auto p) {
    return 10.0 + 0.1 * static_cast<double>(p % 3);  // tight cluster
  });
  script.push_back(event::Value(50.0));  // wild outlier at phase 41
  const auto out = run_module(
      factory_of<ZScoreDetector>(std::size_t{64}, 4.0, std::size_t{8}),
      {script});
  ASSERT_EQ(out.size(), 1U);
  EXPECT_EQ(out[0].first, 41U);
  EXPECT_GT(out[0].second.as_double(), 4.0);
}

TEST(ZScore, SilentOnSteadyStream) {
  const auto out = run_module(
      factory_of<ZScoreDetector>(std::size_t{32}, 3.0, std::size_t{8}),
      {script_of(100, [](auto p) { return std::sin(0.3 * p); })});
  EXPECT_TRUE(out.empty());
}

TEST(RegressionResidual, FlagsLevelShift) {
  Script script = script_of(60, [](auto p) {
    // Linear trend plus a small deterministic wobble so the residual
    // standard deviation is non-zero.
    return 2.0 * static_cast<double>(p) + 0.3 * std::sin(0.7 * p);
  });
  script.push_back(event::Value(500.0));  // breaks the regression line
  const auto out = run_module(
      factory_of<RegressionResidualDetector>(std::size_t{64}, 4.0,
                                             std::size_t{8}),
      {script});
  ASSERT_GE(out.size(), 1U);
  EXPECT_EQ(out.back().first, 61U);
  EXPECT_DOUBLE_EQ(out.back().second.as_double(), 500.0);
}

TEST(RegressionResidual, SilentOnCleanTrend) {
  const auto out = run_module(
      factory_of<RegressionResidualDetector>(std::size_t{64}, 6.0,
                                             std::size_t{8}),
      {script_of(80, [](auto p) { return 3.0 * static_cast<double>(p); })});
  EXPECT_TRUE(out.empty());
}

TEST(Expectation, EmitsOncePerExcursion) {
  // Port 0: observations; port 1: the assumption (constant 10).
  Script observed{event::Value(10.0), event::Value(10.2),
                  event::Value(15.0),  // violation begins
                  event::Value(16.0),  // still violated: no second message
                  event::Value(10.0),  // back within tolerance
                  event::Value(14.9)}; // second excursion
  Script assumption{event::Value(10.0), std::nullopt, std::nullopt,
                    std::nullopt,       std::nullopt, std::nullopt};
  const auto out = run_module(factory_of<ExpectationMonitor>(2.0),
                              {observed, assumption});
  ASSERT_EQ(out.size(), 2U);
  EXPECT_EQ(out[0].first, 3U);
  EXPECT_DOUBLE_EQ(out[0].second.as_double(), 15.0);
  EXPECT_EQ(out[1].first, 6U);
}

TEST(Expectation, SilentWhileAssumptionHolds) {
  // The paper's point: "information is conveyed by the absence of events".
  Script observed = testutil::script_of(50, [](auto) { return 15.0; });
  Script assumption{event::Value(15.0)};
  const auto out = run_module(factory_of<ExpectationMonitor>(1.0),
                              {observed, assumption});
  EXPECT_TRUE(out.empty());
}

TEST(Cusum, DetectsUpwardDrift) {
  Script script;
  for (int i = 0; i < 16; ++i) {
    script.push_back(event::Value(10.0));  // warmup reference
  }
  for (int i = 0; i < 30; ++i) {
    script.push_back(event::Value(11.5));  // sustained +1.5 drift
  }
  const auto out =
      run_module(factory_of<CusumDetector>(0.5, 5.0, std::size_t{16}),
                 {script});
  ASSERT_GE(out.size(), 1U);
  EXPECT_DOUBLE_EQ(out[0].second.as_double(), 1.0);
}

TEST(Cusum, DetectsDownwardDrift) {
  Script script;
  for (int i = 0; i < 16; ++i) {
    script.push_back(event::Value(10.0));
  }
  for (int i = 0; i < 30; ++i) {
    script.push_back(event::Value(8.5));
  }
  const auto out =
      run_module(factory_of<CusumDetector>(0.5, 5.0, std::size_t{16}),
                 {script});
  ASSERT_GE(out.size(), 1U);
  EXPECT_DOUBLE_EQ(out[0].second.as_double(), -1.0);
}

TEST(Cusum, IgnoresZeroMeanNoise) {
  Script script;
  for (int i = 0; i < 100; ++i) {
    script.push_back(event::Value(10.0 + ((i % 2 == 0) ? 0.2 : -0.2)));
  }
  const auto out =
      run_module(factory_of<CusumDetector>(0.5, 8.0, std::size_t{16}),
                 {script});
  EXPECT_TRUE(out.empty());
}

TEST(Spike, FiresOnBurstAboveMovingAverage) {
  Script script = script_of(20, [](auto) { return 10.0; });
  script.push_back(event::Value(100.0));
  const auto out = run_module(
      factory_of<SpikeDetector>(std::size_t{8}, 3.0), {script});
  ASSERT_EQ(out.size(), 1U);
  EXPECT_EQ(out[0].first, 21U);
  EXPECT_DOUBLE_EQ(out[0].second.as_double(), 100.0);
}

TEST(Spike, RequiresFullWindow) {
  const auto out = run_module(
      factory_of<SpikeDetector>(std::size_t{8}, 1.1),
      {Script{event::Value(1.0), event::Value(100.0)}});
  EXPECT_TRUE(out.empty());  // window not yet full
}

}  // namespace
}  // namespace df::model
