// Long-run stress and cross-configuration equivalence for the engine:
// beyond matching the sequential reference, every engine configuration
// (thread count x in-flight window) must produce *identical* sink streams,
// since the computation is deterministic and serializable.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "model/detectors.hpp"
#include "model/sources.hpp"
#include "model/stats_models.hpp"
#include "spec/builder.hpp"
#include "support/rng.hpp"
#include "trace/serializability.hpp"

namespace df::core {
namespace {

Program stress_program(std::uint64_t seed) {
  support::Rng rng(seed);
  const graph::Dag shape = graph::layered(5, 4, 2, rng);
  spec::GraphBuilder b;
  std::vector<graph::VertexId> ids;
  for (graph::VertexId v = 0; v < shape.vertex_count(); ++v) {
    const std::size_t fan_in = shape.in_degree(v);
    if (fan_in == 0) {
      ids.push_back(b.add(shape.name(v),
                          model::factory_of<model::RandomWalkSource>(
                              0.0, 1.0, 0.8)));
    } else if (shape.is_sink(v)) {
      // Bool-emitting detectors only at sinks, so numeric folds upstream
      // never receive a boolean.
      ids.push_back(b.add(shape.name(v),
                          model::factory_of<model::ThresholdDetector>(0.0)));
    } else if (v % 2 == 0) {
      ids.push_back(b.add(shape.name(v),
                          model::factory_of<model::SumModule>(fan_in)));
    } else {
      ids.push_back(b.add(shape.name(v),
                          model::factory_of<model::EwmaModule>(0.3)));
    }
  }
  for (const graph::Edge& e : shape.edges()) {
    b.connect(ids[e.from], e.from_port, ids[e.to], e.to_port);
  }
  return std::move(b).build(seed);
}

TEST(EngineStress, LongRunManyThreadsMatchesReference) {
  const Program program = stress_program(1);
  EngineOptions options;
  options.threads = 8;
  options.max_inflight_phases = 16;
  Engine engine(program, options);
  const auto report = trace::check_against_sequential(program, engine, 5000);
  EXPECT_TRUE(report.equivalent) << report.summary();
  EXPECT_EQ(engine.stats().phases_completed, 5000U);
}

TEST(EngineStress, AllConfigurationsProduceIdenticalSinks) {
  const Program program = stress_program(2);
  std::vector<std::vector<SinkRecord>> outputs;
  for (const std::size_t threads : {1UL, 2UL, 5UL}) {
    for (const std::size_t window : {1UL, 3UL, 0UL /*unbounded*/}) {
      for (const bool staged : {true, false}) {
        EngineOptions options;
        options.threads = threads;
        options.max_inflight_phases = window;
        options.staged_deliveries = staged;
        Engine engine(program, options);
        engine.run(800, nullptr);
        outputs.push_back(engine.sinks().canonical());
      }
    }
  }
  for (std::size_t i = 1; i < outputs.size(); ++i) {
    ASSERT_EQ(outputs[i].size(), outputs[0].size())
        << "configuration " << i << " record count differs";
    EXPECT_EQ(outputs[i], outputs[0]) << "configuration " << i;
  }
  EXPECT_GT(outputs[0].size(), 100U) << "stress workload was trivial";
}

// A staging ring too small for the workload forces the try_push-failure
// fallback (apply directly under the lock) to interleave with batched
// drains; results must be unchanged.
TEST(EngineStress, TinyStagingRingFallbackMatchesReference) {
  const Program program = stress_program(1);
  EngineOptions options;
  options.threads = 6;
  options.max_inflight_phases = 16;
  options.staging_ring_capacity = 2;
  Engine engine(program, options);
  const auto report = trace::check_against_sequential(program, engine, 1200);
  EXPECT_TRUE(report.equivalent) << report.summary();
}

// Teardown-race regression (the abandoning_/close() ordering audit): an
// engine destroyed with phases outstanding must let in-flight workers
// finish their current pair, observe the closed queue, read abandoning_ ==
// true, and exit — never trip the "run queue closed while work was
// outstanding" check, deadlock, or crash while staged finishes are still
// sitting in the delivery rings. Loop many configurations so destruction
// lands at many different points of the pipeline.
TEST(EngineStress, DestroyMidRunNeverTripsTeardownChecks) {
  const Program program = stress_program(4);
  for (int iter = 0; iter < 60; ++iter) {
    EngineOptions options;
    options.threads = 1 + iter % 5;
    options.max_inflight_phases = 1 + iter % 9;
    // Exercise both the staged-ring and lock-per-pair teardown paths.
    options.staged_deliveries = iter % 3 != 0;
    Engine engine(program, options);
    engine.start();
    const int phases = iter % 8;
    for (int p = 0; p < phases; ++p) {
      engine.start_phase({});
    }
    // Destructor runs here with up to `phases` phases outstanding.
  }
}

// Backpressure regression for the 1-phase window: start_phase may only
// proceed when the window has room, and the only transition that makes
// room is a phase retirement. If any apply path retired a phase without
// notifying progress_cv_, this configuration would deadlock on the second
// phase; with staged deliveries the retirement happens inside a batched
// drain, so this pins the drain path's notify too.
TEST(EngineStress, SingleInflightWindowSustainsThroughput) {
  const Program program = stress_program(5);
  EngineOptions options;
  options.threads = 4;
  options.max_inflight_phases = 1;
  Engine engine(program, options);
  engine.run(1500, nullptr);
  const auto stats = engine.stats();
  EXPECT_EQ(stats.phases_completed, 1500U);
  EXPECT_EQ(stats.max_inflight_phases, 1U);
}

TEST(EngineStress, RepeatedRunsOfSameConfigAreBitIdentical) {
  const Program program = stress_program(3);
  std::vector<SinkRecord> first;
  for (int run = 0; run < 3; ++run) {
    Engine engine(program, {.threads = 4});
    engine.run(600, nullptr);
    if (run == 0) {
      first = engine.sinks().canonical();
    } else {
      EXPECT_EQ(engine.sinks().canonical(), first) << "run " << run;
    }
  }
}

}  // namespace
}  // namespace df::core
