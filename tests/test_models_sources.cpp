// Unit tests for the source-module library.
#include <gtest/gtest.h>

#include "baseline/sequential.hpp"
#include "model/sources.hpp"
#include "spec/builder.hpp"

namespace df::model {
namespace {

/// Runs a lone source for `phases` phases and returns its emissions.
std::vector<core::SinkRecord> run_source(ModuleFactory factory,
                                         event::PhaseId phases,
                                         std::uint64_t seed = 1) {
  spec::GraphBuilder builder;
  builder.add("src", std::move(factory));
  const core::Program program = std::move(builder).build(seed);
  baseline::SequentialExecutor executor(program);
  executor.run(phases, nullptr);
  return executor.sinks().canonical();
}

TEST(ConstantSource, EmitsExactlyOnce) {
  const auto records =
      run_source(factory_of<ConstantSource>(event::Value(5.0)), 20);
  ASSERT_EQ(records.size(), 1U);
  EXPECT_EQ(records[0].phase, 1U);
  EXPECT_DOUBLE_EQ(records[0].value.as_double(), 5.0);
}

TEST(CounterSource, EmitsPhaseNumberEveryPhase) {
  const auto records = run_source(factory_of<CounterSource>(), 10);
  ASSERT_EQ(records.size(), 10U);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(records[i].value.as_int(), static_cast<std::int64_t>(i + 1));
  }
}

TEST(UniformSource, ValuesInRange) {
  const auto records =
      run_source(factory_of<UniformSource>(2.0, 5.0, 1.0), 500);
  ASSERT_EQ(records.size(), 500U);
  for (const auto& r : records) {
    EXPECT_GE(r.value.as_double(), 2.0);
    EXPECT_LT(r.value.as_double(), 5.0);
  }
}

TEST(UniformSource, EmitProbabilityThrottles) {
  const auto records =
      run_source(factory_of<UniformSource>(0.0, 1.0, 0.2), 2000);
  EXPECT_GT(records.size(), 250U);
  EXPECT_LT(records.size(), 600U);
}

TEST(GaussianSource, MomentsMatch) {
  const auto records =
      run_source(factory_of<GaussianSource>(10.0, 2.0, 1.0), 20000);
  double sum = 0.0;
  for (const auto& r : records) {
    sum += r.value.as_double();
  }
  EXPECT_NEAR(sum / static_cast<double>(records.size()), 10.0, 0.1);
}

TEST(RandomWalkSource, EmitThresholdSuppressesSmallMoves) {
  // A huge threshold: after the first emission, almost nothing.
  const auto quiet =
      run_source(factory_of<RandomWalkSource>(0.0, 0.1, 1000.0), 500);
  EXPECT_EQ(quiet.size(), 1U);  // the initial report only
  // Zero threshold: every phase emits.
  const auto chatty =
      run_source(factory_of<RandomWalkSource>(0.0, 0.1, 0.0), 500);
  EXPECT_EQ(chatty.size(), 500U);
}

TEST(TemperatureSource, FollowsDailyCycle) {
  const auto records = run_source(
      factory_of<TemperatureSource>(20.0, 8.0, std::uint64_t{24}, 0.0, 0.0),
      48, /*seed=*/3);
  ASSERT_EQ(records.size(), 48U);
  // Peak near phase 6 (quarter period), trough near phase 18.
  EXPECT_NEAR(records[5].value.as_double(), 28.0, 1.0);
  EXPECT_NEAR(records[17].value.as_double(), 12.0, 1.0);
}

TEST(TemperatureSource, ReportDeltaReducesTraffic) {
  const auto fine = run_source(
      factory_of<TemperatureSource>(20.0, 8.0, std::uint64_t{24}, 0.1, 0.0),
      240);
  const auto coarse = run_source(
      factory_of<TemperatureSource>(20.0, 8.0, std::uint64_t{24}, 0.1, 3.0),
      240);
  EXPECT_EQ(fine.size(), 240U);
  EXPECT_LT(coarse.size(), 150U);
  EXPECT_GT(coarse.size(), 10U);
}

TEST(TransactionSource, AnomalyRateControlsTail) {
  const auto records = run_source(
      factory_of<TransactionSource>(100.0, 10.0, 0.01, 100.0), 20000);
  ASSERT_EQ(records.size(), 20000U);
  std::size_t huge = 0;
  for (const auto& r : records) {
    if (r.value.as_double() > 1000.0) {
      ++huge;
    }
  }
  // ~1% anomalies scaled by 100x stand far outside the N(100,10) bulk.
  EXPECT_GT(huge, 120U);
  EXPECT_LT(huge, 280U);
}

TEST(DiseaseIncidenceSource, EmitsOnlyOnChange) {
  const auto records = run_source(
      factory_of<DiseaseIncidenceSource>(3.0, 0.0, 1.0, 0.9), 2000);
  // Counts are small integers; consecutive equal counts are suppressed, so
  // traffic is strictly below the phase count.
  EXPECT_LT(records.size(), 2000U);
  EXPECT_GT(records.size(), 500U);
  for (std::size_t i = 1; i < records.size(); ++i) {
    // A record only exists when the count changed.
    EXPECT_NE(records[i].value.as_int(), records[i - 1].value.as_int());
  }
}

TEST(BurstSource, QuietBetweenBursts) {
  const auto records =
      run_source(factory_of<BurstSource>(0.01, 8.0), 5000);
  // Expected duty cycle ~ p*len/(1+p*len) ~ 7.4%.
  EXPECT_GT(records.size(), 100U);
  EXPECT_LT(records.size(), 1200U);
}

TEST(SparseEventSource, RateMatchesProbability) {
  const auto records = run_source(
      factory_of<SparseEventSource>(0.05, event::Value(true)), 10000);
  EXPECT_NEAR(static_cast<double>(records.size()), 500.0, 120.0);
}

TEST(ReplaySource, PlaysScriptExactly) {
  const auto records = run_source(
      factory_of<ReplaySource>(std::vector<std::optional<event::Value>>{
          event::Value(1.0), std::nullopt, event::Value(3.0)}),
      5);
  ASSERT_EQ(records.size(), 2U);
  EXPECT_EQ(records[0].phase, 1U);
  EXPECT_EQ(records[1].phase, 3U);
  EXPECT_DOUBLE_EQ(records[1].value.as_double(), 3.0);
}

TEST(Sources, SameSeedSameOutput) {
  const auto a =
      run_source(factory_of<GaussianSource>(0.0, 1.0, 0.5), 200, 9);
  const auto b =
      run_source(factory_of<GaussianSource>(0.0, 1.0, 0.5), 200, 9);
  EXPECT_EQ(a, b);
}

TEST(Sources, DifferentSeedDifferentOutput) {
  const auto a =
      run_source(factory_of<GaussianSource>(0.0, 1.0, 0.5), 200, 9);
  const auto b =
      run_source(factory_of<GaussianSource>(0.0, 1.0, 0.5), 200, 10);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace df::model
