// The kill-a-partition differential harness (DESIGN.md, "Crash-restart
// recovery"):
//
//   * crash differential — a TransportEngine partition is killed at a
//     randomized (victim, phase, crash-point) chosen from the seed, the
//     supervisor restarts it from its last committed checkpoint, upstream
//     retention replays the watermark-bounded suffix, and the ensemble's
//     sink output must stay byte-identical to the sequential reference —
//     across the randomized program corpus, machines x {2, 3}, both
//     channel implementations, and every instrumented CrashPoint
//     (kMidCheckpoint specifically proves a crash between snapshot and
//     commit restarts from the *previous* checkpoint);
//   * stats discipline — frames_sent keeps counting unique sequence
//     numbers only, so the frames-per-phase batching ceiling survives a
//     restart; replayed frames are counted separately and every
//     kMidCheckpoint crash must observe some;
//   * checkpoint-only runs — checkpoint_every > 0 without any crash must
//     not change a byte of output (the deterministic sorted-flush egress
//     path is differentially equivalent to the incremental-encode path).
//
// Labeled [fault;transport]; runs under TSan in CI.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "distrib/transport.hpp"
#include "random_program.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"
#include "trace/serializability.hpp"

namespace df {
namespace {

using distrib::ChannelKind;
using distrib::CrashPoint;
using distrib::CrashSignal;
using distrib::TransportEngine;
using distrib::TransportOptions;

constexpr ChannelKind kBothKinds[] = {ChannelKind::kInProcess,
                                      ChannelKind::kSocket};

const char* kind_name(ChannelKind kind) {
  return kind == ChannelKind::kInProcess ? "inproc" : "socket";
}

const char* point_name(CrashPoint point) {
  switch (point) {
    case CrashPoint::kBeforeIngest: return "before-ingest";
    case CrashPoint::kMidIngest: return "mid-ingest";
    case CrashPoint::kBeforePhase: return "before-phase";
    case CrashPoint::kMidCheckpoint: return "mid-checkpoint";
    case CrashPoint::kAfterCheckpoint: return "after-checkpoint";
  }
  return "?";
}

/// One planned process death: partition `victim` dies the first time its
/// coordinator reaches `point` in `phase`. The fired flag stops the plan
/// from re-triggering when the restarted partition re-reaches the same
/// instant (which it must, deterministically).
struct CrashPlan {
  std::size_t victim = 0;
  event::PhaseId phase = 0;
  CrashPoint point = CrashPoint::kBeforeIngest;
};

/// Derives a plan from the seed so the suite sweeps the failure geometry
/// without hand-enumerating it. kMidIngest needs an upstream, so it is
/// only planned for victims >= 1; checkpoint-bracketing points need the
/// phase to be a checkpoint phase.
CrashPlan plan_crash(support::Rng& rng, std::size_t machines,
                     event::PhaseId phases, std::size_t checkpoint_every) {
  CrashPlan plan;
  plan.victim = rng.next_below(machines);
  const std::uint32_t upper = plan.victim >= 1 ? 5 : 4;
  switch (rng.next_below(upper)) {
    case 0: plan.point = CrashPoint::kBeforeIngest; break;
    case 1: plan.point = CrashPoint::kBeforePhase; break;
    case 2: plan.point = CrashPoint::kMidCheckpoint; break;
    case 3: plan.point = CrashPoint::kAfterCheckpoint; break;
    default: plan.point = CrashPoint::kMidIngest; break;
  }
  if (plan.point == CrashPoint::kMidCheckpoint ||
      plan.point == CrashPoint::kAfterCheckpoint) {
    const auto k = static_cast<event::PhaseId>(checkpoint_every);
    const event::PhaseId slots = (phases - 1) / k;  // checkpoint phases < phases
    plan.phase = k * (1 + rng.next_below(static_cast<std::uint32_t>(slots)));
  } else {
    plan.phase = 2 + rng.next_below(static_cast<std::uint32_t>(phases - 4));
  }
  return plan;
}

// Replay activity observed anywhere in the suite; every kMidCheckpoint
// crash must contribute (see below), and the suite as a whole must have
// exercised replay, restarts, and checkpoint fallback.
std::atomic<std::uint64_t> g_suite_replays{0};
std::atomic<std::uint64_t> g_suite_restarts{0};

class CrashRestartDifferential
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CrashRestartDifferential, KilledPartitionRecoversByteIdentical) {
  const std::uint64_t seed = GetParam();
  const core::Program program = testutil::random_program(seed);
  const event::PhaseId phases = 48;

  for (const std::size_t machines : {std::size_t{2}, std::size_t{3}}) {
    if (machines > program.numbering.size()) {
      continue;
    }
    for (const ChannelKind kind : kBothKinds) {
      // Independent stream per configuration so each one kills a different
      // (victim, phase, point); the corpus then covers the whole geometry.
      support::Rng rng(seed * 6364136223846793005ULL +
                       machines * 1442695040888963407ULL +
                       static_cast<std::uint64_t>(kind));
      const std::size_t checkpoint_every = 2 + rng.next_below(2);  // 2 or 3
      const CrashPlan plan =
          plan_crash(rng, machines, phases, checkpoint_every);

      TransportOptions options;
      options.machines = machines;
      options.channel = kind;
      options.channel_capacity = 8;  // keep backpressure in play
      options.checkpoint_every = checkpoint_every;
      std::atomic<bool> fired{false};
      options.crash_hook = [&plan, &fired](std::size_t block,
                                           event::PhaseId phase,
                                           CrashPoint point) {
        if (block == plan.victim && phase == plan.phase &&
            point == plan.point) {
          bool expected = false;
          if (fired.compare_exchange_strong(expected, true)) {
            throw CrashSignal{};
          }
        }
      };

      const std::string where =
          std::string("machines=") + std::to_string(machines) +
          " channel=" + kind_name(kind) + " seed=" + std::to_string(seed) +
          " victim=" + std::to_string(plan.victim) + " phase=" +
          std::to_string(plan.phase) + " point=" + point_name(plan.point) +
          " ckpt_every=" + std::to_string(checkpoint_every);
      TransportEngine transport(program, options);
      const auto report =
          trace::check_against_sequential(program, transport, phases);
      const auto& stats = transport.transport_stats();

      EXPECT_TRUE(report.equivalent) << where << "\n" << report.summary();
      EXPECT_GT(report.reference_records, 0U) << "workload produced no output";
      ASSERT_TRUE(fired.load()) << where << ": planned crash never fired";
      EXPECT_EQ(stats.restarts, 1U) << where;
      EXPECT_GT(stats.checkpoints_taken, 0U) << where;
      EXPECT_GT(stats.checkpoint_bytes, 0U) << where;

      // Unique-seq discipline: the batching ceiling from the steady-state
      // suite must hold across the restart — rollback re-flushes and
      // retention replays land in frames_replayed, never frames_sent.
      const std::uint64_t channels = machines * (machines - 1) / 2;
      EXPECT_LE(stats.frames_sent, 2 * phases * channels) << where;
      // (No batched_deliveries == remote_messages here: remote_messages
      // counts re-executed adds again, batched_deliveries only unique
      // frames' contents — re-execution legitimately separates them.)
      EXPECT_GE(stats.remote_messages, stats.batched_deliveries) << where;

      // A mid-checkpoint death rolls back to the *previous* checkpoint (or
      // scratch), so at least one phase re-executes and at least one frame
      // — if only a watermark — is replayed on some link.
      if (plan.point == CrashPoint::kMidCheckpoint) {
        EXPECT_GT(stats.frames_replayed, 0U) << where;
      }
      g_suite_replays.fetch_add(stats.frames_replayed);
      g_suite_restarts.fetch_add(stats.restarts);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrashRestartDifferential,
                         ::testing::Range<std::uint64_t>(0, 12));

// Checked after every test has run (global-environment teardown — plain
// TESTs would run before the parameterized sweep): the sweep as a whole
// must actually have exercised replay and restarts — a sweep where every
// crash happened to need no replayed frame would be vacuous.
class SweepCoverage : public ::testing::Environment {
 public:
  void TearDown() override {
    EXPECT_GT(g_suite_restarts.load(), 0U)
        << "no crash in the sweep caused a restart";
    EXPECT_GT(g_suite_replays.load(), 0U)
        << "no restart in the sweep replayed any frame";
  }
};

const ::testing::Environment* const kSweepCoverage =
    ::testing::AddGlobalTestEnvironment(new SweepCoverage);

// --- checkpointing without crashes is invisible in the output --------------

class CheckpointOnlyDifferential
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CheckpointOnlyDifferential, CheckpointingDoesNotChangeOutput) {
  const std::uint64_t seed = GetParam();
  const core::Program program = testutil::random_program(seed);
  const event::PhaseId phases = 40;

  for (const std::size_t machines : {std::size_t{2}, std::size_t{3}}) {
    if (machines > program.numbering.size()) {
      continue;
    }
    TransportOptions options;
    options.machines = machines;
    options.channel_capacity = 8;
    options.checkpoint_every = 4;
    TransportEngine transport(program, options);
    const auto report =
        trace::check_against_sequential(program, transport, phases);
    EXPECT_TRUE(report.equivalent)
        << "machines=" << machines << " seed=" << seed << "\n"
        << report.summary();

    const auto& stats = transport.transport_stats();
    EXPECT_EQ(stats.restarts, 0U);
    EXPECT_EQ(stats.frames_replayed, 0U);
    EXPECT_EQ(stats.duplicates_dropped, 0U);
    // Every partition checkpoints at every multiple of checkpoint_every.
    EXPECT_EQ(stats.checkpoints_taken, machines * (phases / 4));
    EXPECT_GT(stats.checkpoint_bytes, 0U);
    // The deterministic sorted-flush path must not cost extra frames.
    const std::uint64_t channels = machines * (machines - 1) / 2;
    EXPECT_LE(stats.frames_sent, 2 * phases * channels);
    EXPECT_EQ(stats.frames_received, stats.frames_sent);
    EXPECT_EQ(stats.batched_deliveries, stats.remote_messages);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CheckpointOnlyDifferential,
                         ::testing::Range<std::uint64_t>(0, 8));

// --- repeated deaths of the same partition ----------------------------------

// The supervisor loop must tolerate more than one generation: kill the
// same victim at two different phases (the second plan only arms after the
// first restart) and still match the sequential reference.
TEST(CrashRestartRepeated, TwoDeathsSamePartition) {
  const core::Program program = testutil::random_program(3);
  const event::PhaseId phases = 48;

  TransportOptions options;
  options.machines = 2;
  options.channel_capacity = 8;
  options.checkpoint_every = 3;
  std::atomic<int> deaths{0};
  options.crash_hook = [&deaths](std::size_t block, event::PhaseId phase,
                                 CrashPoint point) {
    if (block != 1 || point != CrashPoint::kBeforePhase) {
      return;
    }
    int seen = deaths.load();
    if ((seen == 0 && phase == 10) || (seen == 1 && phase == 25)) {
      if (deaths.compare_exchange_strong(seen, seen + 1)) {
        throw CrashSignal{};
      }
    }
  };

  TransportEngine transport(program, options);
  const auto report =
      trace::check_against_sequential(program, transport, phases);
  EXPECT_TRUE(report.equivalent) << report.summary();
  EXPECT_EQ(deaths.load(), 2);
  EXPECT_EQ(transport.transport_stats().restarts, 2U);
}

// --- option validation ------------------------------------------------------

TEST(CrashRestartOptions, CrashHookRequiresCheckpointing) {
  const core::Program program = testutil::random_program(0);
  TransportOptions options;
  options.crash_hook = [](std::size_t, event::PhaseId, CrashPoint) {};
  EXPECT_THROW(TransportEngine(program, options), support::check_error);
}

TEST(CrashRestartOptions, CheckpointingRequiresFlatScheduler) {
  const core::Program program = testutil::random_program(0);
  TransportOptions options;
  options.checkpoint_every = 2;
  options.scheduler_shards = 2;
  EXPECT_THROW(TransportEngine(program, options), support::check_error);
}

}  // namespace
}  // namespace df
