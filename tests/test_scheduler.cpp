// Tests for the scheduling state machine (paper section 3, Listings 1-2).
//
// Two layers:
//  1. scripted scenarios on the Figure 3 graph, checking ready sets, x
//     values, pipelining and no-overtaking step by step;
//  2. a randomized definitional property test: after *every* transition the
//     scheduler's partial/full/ready sets must equal the paper's set
//     definitions (eqns 7-9) evaluated from first principles over ghost
//     msg(v,p) variables — the exact obligation of the paper's correctness
//     argument (section 3.3).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/scheduler.hpp"
#include "graph/generators.hpp"
#include "graph/numbering.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace df::core {
namespace {

using graph::Dag;
using graph::Numbering;

/// Internal-index successor lists for a numbered DAG.
std::vector<std::vector<std::uint32_t>> internal_successors(
    const Dag& dag, const Numbering& numbering) {
  std::vector<std::vector<std::uint32_t>> succs(dag.vertex_count() + 1);
  for (const graph::Edge& e : dag.edges()) {
    succs[numbering.index_of[e.from]].push_back(numbering.index_of[e.to]);
  }
  return succs;
}

Scheduler::Delivery deliver(std::uint32_t to) {
  return Scheduler::Delivery{to, 0, event::Value(1.0)};
}

// Vector-returning conveniences over the buffer-reuse API (the seed-compat
// wrappers were removed from the Scheduler itself once no production code
// used them; scripted tests keep the ergonomic shape here).
std::vector<Scheduler::ReadyPair> start_phase(
    Scheduler& scheduler, event::PhaseId p,
    std::vector<event::InputBundle> bundles) {
  std::vector<Scheduler::ReadyPair> out;
  scheduler.start_phase(p, std::span<event::InputBundle>(bundles), out);
  return out;
}

std::vector<Scheduler::ReadyPair> finish_execution(
    Scheduler& scheduler, std::uint32_t vertex, event::PhaseId p,
    std::vector<Scheduler::Delivery> deliveries) {
  std::vector<Scheduler::ReadyPair> out;
  scheduler.finish_execution(vertex, p,
                             std::span<Scheduler::Delivery>(deliveries), {},
                             out);
  return out;
}

std::set<std::pair<std::uint32_t, event::PhaseId>> as_set(
    const std::vector<Scheduler::Snapshot::Pair>& pairs) {
  std::set<std::pair<std::uint32_t, event::PhaseId>> out;
  for (const auto& p : pairs) {
    out.insert({p.vertex, p.phase});
  }
  return out;
}

std::set<std::pair<std::uint32_t, event::PhaseId>> ready_set(
    const std::vector<Scheduler::ReadyPair>& pairs) {
  std::set<std::pair<std::uint32_t, event::PhaseId>> out;
  for (const auto& p : pairs) {
    out.insert({p.vertex, p.phase});
  }
  return out;
}

/// Figure 3 graph numbering: v1..v6 keep their indices 1..6 under the greedy
/// algorithm (checked below); m = [2, 2, 4, 4, 6, 6, 6].
class Fig3Scheduler : public ::testing::Test {
 protected:
  Fig3Scheduler()
      : dag_(graph::paper_figure3()),
        numbering_(graph::compute_satisfactory_numbering(dag_)),
        scheduler_(numbering_.m) {}

  std::vector<event::InputBundle> source_bundles() const {
    return std::vector<event::InputBundle>(numbering_.m[0]);
  }

  Dag dag_;
  Numbering numbering_;
  Scheduler scheduler_;
};

TEST_F(Fig3Scheduler, NumberingMatchesHandComputation) {
  const std::vector<std::uint32_t> expected_m{2, 2, 4, 4, 6, 6, 6};
  EXPECT_EQ(numbering_.m, expected_m);
  for (std::uint32_t i = 0; i < 6; ++i) {
    EXPECT_EQ(numbering_.index_of[i], i + 1);  // identity numbering
  }
}

TEST_F(Fig3Scheduler, PhaseStartMakesSourcesReady) {
  const auto ready = start_phase(scheduler_, 1, source_bundles());
  EXPECT_EQ(ready_set(ready),
            (std::set<std::pair<std::uint32_t, event::PhaseId>>{{1, 1},
                                                                {2, 1}}));
  EXPECT_EQ(scheduler_.pmax(), 1U);
  EXPECT_EQ(scheduler_.x(1), 0U);
  EXPECT_EQ(scheduler_.completed_through(), 0U);
}

TEST_F(Fig3Scheduler, PhasesMustStartInOrder) {
  start_phase(scheduler_, 1, source_bundles());
  EXPECT_THROW(start_phase(scheduler_, 3, source_bundles()),
               support::check_error);
}

TEST_F(Fig3Scheduler, MessageWaitsInPartialUntilFrontierReaches) {
  start_phase(scheduler_, 1, source_bundles());
  // v1 finishes and sends to v3. v2 has not finished, so x_1 = 1, m(1) = 2,
  // and v3 (> 2) must wait in partial.
  const auto ready = finish_execution(scheduler_, 1, 1, {deliver(3)});
  EXPECT_TRUE(ready.empty());
  EXPECT_EQ(scheduler_.x(1), 1U);
  const auto snap = scheduler_.snapshot();
  EXPECT_EQ(as_set(snap.partial),
            (std::set<std::pair<std::uint32_t, event::PhaseId>>{{3, 1}}));
}

TEST_F(Fig3Scheduler, AbsenceOfMessagesStillUnblocksSuccessors) {
  start_phase(scheduler_, 1, source_bundles());
  finish_execution(scheduler_, 1, 1, {deliver(3)});
  // v2 finishes *without* sending anything: the absence of messages is
  // information. x_1 jumps to 2 (v3 pending), m(2) = 4 releases v3.
  const auto ready = finish_execution(scheduler_, 2, 1, {});
  EXPECT_EQ(ready_set(ready),
            (std::set<std::pair<std::uint32_t, event::PhaseId>>{{3, 1}}));
  EXPECT_EQ(scheduler_.x(1), 2U);
}

TEST_F(Fig3Scheduler, FanInBundleCollectsBothMessages) {
  start_phase(scheduler_, 1, source_bundles());
  finish_execution(scheduler_, 1, 1, {deliver(3)});
  const auto ready = finish_execution(scheduler_, 
      2, 1, {Scheduler::Delivery{3, 1, event::Value(2.0)},
             Scheduler::Delivery{4, 0, event::Value(3.0)}});
  ASSERT_EQ(ready.size(), 2U);
  // v3 received one message from each source, on ports 0 and 1.
  const auto& v3 = ready[0].vertex == 3 ? ready[0] : ready[1];
  ASSERT_EQ(v3.vertex, 3U);
  EXPECT_EQ(v3.bundle.size(), 2U);
}

TEST_F(Fig3Scheduler, PhaseCompletesAndRetiresInOrder) {
  start_phase(scheduler_, 1, source_bundles());
  finish_execution(scheduler_, 1, 1, {deliver(3)});
  auto ready = finish_execution(scheduler_, 2, 1, {deliver(4)});
  // v3 and v4 both ready.
  ASSERT_EQ(ready.size(), 2U);
  auto more = finish_execution(scheduler_, 3, 1, {});  // no output
  EXPECT_TRUE(more.empty());
  EXPECT_EQ(scheduler_.completed_through(), 0U);
  more = finish_execution(scheduler_, 4, 1, {});  // no output either
  // Nothing was sent to v5/v6, so the phase completes without them.
  EXPECT_TRUE(more.empty());
  EXPECT_EQ(scheduler_.completed_through(), 1U);
  EXPECT_TRUE(scheduler_.all_started_phases_complete());
  EXPECT_EQ(scheduler_.x(1), 6U);
}

TEST_F(Fig3Scheduler, PipelinedPhasesKeepSourcesBusy) {
  start_phase(scheduler_, 1, source_bundles());
  // Sources are issued for phase 1; starting phase 2 cannot issue them
  // again until they finish (one phase at a time per vertex).
  auto ready2 = start_phase(scheduler_, 2, source_bundles());
  EXPECT_TRUE(ready2.empty());
  // When v1 finishes phase 1, it immediately becomes ready for phase 2.
  const auto ready = finish_execution(scheduler_, 1, 1, {});
  EXPECT_EQ(ready_set(ready),
            (std::set<std::pair<std::uint32_t, event::PhaseId>>{{1, 2}}));
}

TEST_F(Fig3Scheduler, NoOvertaking) {
  start_phase(scheduler_, 1, source_bundles());
  start_phase(scheduler_, 2, source_bundles());
  finish_execution(scheduler_, 1, 1, {deliver(3)});
  finish_execution(scheduler_, 1, 2, {});
  // Phase 2's sources are done except v2... finish v2 phase 1 delivering
  // nothing; then v2 phase 2. Throughout, x_2 <= x_1 must hold.
  EXPECT_LE(scheduler_.x(2), scheduler_.x(1));
  finish_execution(scheduler_, 2, 1, {});
  EXPECT_LE(scheduler_.x(2), scheduler_.x(1));
  const auto snap = scheduler_.snapshot();
  for (std::size_t i = 1; i < snap.x.size(); ++i) {
    EXPECT_LE(snap.x[i].second, snap.x[i - 1].second);
  }
}

TEST_F(Fig3Scheduler, FinishOfUnissuedPairIsRejected) {
  start_phase(scheduler_, 1, source_bundles());
  EXPECT_THROW(finish_execution(scheduler_, 3, 1, {}), support::check_error);
  EXPECT_THROW(finish_execution(scheduler_, 1, 2, {}), support::check_error);
}

TEST_F(Fig3Scheduler, WrongBundleCountIsRejected) {
  EXPECT_THROW(start_phase(scheduler_, 1, {}), support::check_error);
}

// --- Definitional property test -------------------------------------------

struct GhostState {
  // msg(v,p): true iff a message (or phase signal) for phase p is waiting on
  // an input of vertex v and v has not finished executing phase p.
  std::map<std::pair<std::uint32_t, event::PhaseId>, bool> msg;
};

class DefinitionalProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(DefinitionalProperty, SetsAlwaysMatchEquations7To9) {
  const std::uint64_t seed = GetParam();
  support::Rng rng(seed);

  // Random DAG, renumbered satisfactorily.
  const Dag dag = graph::random_dag(
      6 + static_cast<std::uint32_t>(seed % 20), 0.25, rng);
  const Numbering numbering = graph::compute_satisfactory_numbering(dag);
  const auto succs = internal_successors(dag, numbering);
  const auto n = static_cast<std::uint32_t>(dag.vertex_count());

  Scheduler scheduler(numbering.m);
  GhostState ghost;
  std::vector<Scheduler::ReadyPair> issued;
  std::set<std::pair<std::uint32_t, event::PhaseId>> executed;

  const event::PhaseId total_phases = 12;
  event::PhaseId started = 0;

  const auto verify = [&] {
    const Scheduler::Snapshot snap = scheduler.snapshot();
    // Evaluate the paper's definitions from ghost state.
    std::set<std::pair<std::uint32_t, event::PhaseId>> full_def;
    std::set<std::pair<std::uint32_t, event::PhaseId>> partial_def;
    for (const auto& [key, waiting] : ghost.msg) {
      if (!waiting) {
        continue;
      }
      const auto [v, p] = key;
      ASSERT_GE(p, 1U);
      ASSERT_LE(p, scheduler.pmax());
      const std::uint32_t xp = scheduler.x(p);
      if (xp < v && v <= numbering.m[xp]) {
        full_def.insert(key);  // eqn (7)
      } else if (numbering.m[xp] < v) {
        partial_def.insert(key);  // eqn (9)
      } else {
        FAIL() << "msg waiting on a vertex at or below the frontier";
      }
    }
    // eqn (8): ready = min-phase-per-vertex subset of full.
    std::set<std::pair<std::uint32_t, event::PhaseId>> ready_def;
    std::map<std::uint32_t, event::PhaseId> min_phase;
    for (const auto& [v, p] : full_def) {
      const auto it = min_phase.find(v);
      if (it == min_phase.end() || p < it->second) {
        min_phase[v] = p;
      }
    }
    for (const auto& [v, p] : min_phase) {
      ready_def.insert({v, p});
    }
    EXPECT_EQ(as_set(snap.full), full_def);
    EXPECT_EQ(as_set(snap.partial), partial_def);
    EXPECT_EQ(as_set(snap.ready), ready_def);
  };

  const auto absorb = [&](std::vector<Scheduler::ReadyPair> ready) {
    for (auto& pair : ready) {
      issued.push_back(std::move(pair));
    }
  };

  while (started < total_phases || !issued.empty()) {
    const bool can_start = started < total_phases;
    const bool start_now =
        can_start && (issued.empty() || rng.next_bernoulli(0.3));
    if (start_now) {
      ++started;
      for (std::uint32_t s = 1; s <= numbering.m[0]; ++s) {
        ghost.msg[{s, started}] = true;  // phase signal
      }
      absorb(start_phase(scheduler, 
          started, std::vector<event::InputBundle>(numbering.m[0])));
      verify();
      continue;
    }
    // Execute a random issued pair.
    const std::size_t pick = static_cast<std::size_t>(
        rng.next_below(issued.size()));
    const Scheduler::ReadyPair pair = std::move(issued[pick]);
    issued.erase(issued.begin() + static_cast<std::ptrdiff_t>(pick));

    ASSERT_TRUE(executed.insert({pair.vertex, pair.phase}).second)
        << "pair executed twice";

    // Random subset of actual graph successors receives output.
    std::vector<Scheduler::Delivery> deliveries;
    for (const std::uint32_t w : succs[pair.vertex]) {
      if (rng.next_bernoulli(0.6)) {
        deliveries.push_back(deliver(w));
        ghost.msg[{w, pair.phase}] = true;
      }
    }
    ghost.msg[{pair.vertex, pair.phase}] = false;  // inputs consumed
    absorb(finish_execution(scheduler, pair.vertex, pair.phase,
                                      std::move(deliveries)));
    verify();
  }

  EXPECT_TRUE(scheduler.all_started_phases_complete());
  EXPECT_EQ(scheduler.completed_through(), total_phases);
  // Every executed pair is unique and every phase's sources executed.
  EXPECT_GE(executed.size(),
            static_cast<std::size_t>(numbering.m[0] * total_phases));
  (void)n;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DefinitionalProperty,
                         ::testing::Range<std::uint64_t>(0, 15));

}  // namespace
}  // namespace df::core
