// Unit tests for the DAG substrate.
#include <gtest/gtest.h>

#include "graph/dag.hpp"
#include "graph/dot.hpp"
#include "graph/generators.hpp"
#include "graph/numbering.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace df::graph {
namespace {

TEST(Dag, AddVertexAssignsDenseIds) {
  Dag dag;
  EXPECT_EQ(dag.add_vertex("a"), 0U);
  EXPECT_EQ(dag.add_vertex("b"), 1U);
  EXPECT_EQ(dag.vertex_count(), 2U);
  EXPECT_EQ(dag.name(0), "a");
  EXPECT_EQ(dag.vertex("b"), 1U);
  EXPECT_TRUE(dag.has_vertex("a"));
  EXPECT_FALSE(dag.has_vertex("zzz"));
}

TEST(Dag, RejectsDuplicateAndEmptyNames) {
  Dag dag;
  dag.add_vertex("a");
  EXPECT_THROW(dag.add_vertex("a"), support::check_error);
  EXPECT_THROW(dag.add_vertex(""), support::check_error);
}

TEST(Dag, RejectsUnknownVertexLookups) {
  Dag dag;
  dag.add_vertex("a");
  EXPECT_THROW(dag.vertex("b"), support::check_error);
  EXPECT_THROW(dag.name(5), support::check_error);
}

TEST(Dag, EdgesTrackDegreesAndPorts) {
  Dag dag;
  const auto a = dag.add_vertex("a");
  const auto b = dag.add_vertex("b");
  const auto c = dag.add_vertex("c");
  dag.add_edge(a, 0, c, 0);
  dag.add_edge(b, 0, c, 1);
  EXPECT_EQ(dag.in_degree(c), 2U);
  EXPECT_EQ(dag.out_degree(a), 1U);
  EXPECT_EQ(dag.in_port_count(c), 2U);
  EXPECT_EQ(dag.out_port_count(a), 1U);
  EXPECT_TRUE(dag.is_source(a));
  EXPECT_TRUE(dag.is_sink(c));
  EXPECT_FALSE(dag.is_sink(a));
}

TEST(Dag, InEdgesOrderedByPort) {
  Dag dag;
  const auto a = dag.add_vertex("a");
  const auto b = dag.add_vertex("b");
  const auto c = dag.add_vertex("c");
  dag.add_edge(b, 0, c, 1);
  dag.add_edge(a, 0, c, 0);  // added second, lower port
  const auto& ins = dag.in_edges(c);
  ASSERT_EQ(ins.size(), 2U);
  EXPECT_EQ(ins[0].to_port, 0);
  EXPECT_EQ(ins[1].to_port, 1);
}

TEST(Dag, RejectsSelfLoopAndDuplicateInputPort) {
  Dag dag;
  const auto a = dag.add_vertex("a");
  const auto b = dag.add_vertex("b");
  EXPECT_THROW(dag.add_edge(a, 0, a, 0), support::check_error);
  dag.add_edge(a, 0, b, 0);
  EXPECT_THROW(dag.add_edge(a, 1, b, 0), support::check_error);
}

TEST(Dag, FanOutFromOnePortIsAllowed) {
  Dag dag;
  const auto a = dag.add_vertex("a");
  const auto b = dag.add_vertex("b");
  const auto c = dag.add_vertex("c");
  dag.add_edge(a, 0, b, 0);
  dag.add_edge(a, 0, c, 0);
  EXPECT_EQ(dag.out_degree(a), 2U);
  EXPECT_EQ(dag.out_port_count(a), 1U);
}

TEST(Dag, SourcesAndSinks) {
  const Dag dag = paper_figure3();
  const auto sources = dag.sources();
  const auto sinks = dag.sinks();
  ASSERT_EQ(sources.size(), 2U);
  ASSERT_EQ(sinks.size(), 2U);
  EXPECT_EQ(dag.name(sources[0]), "v1");
  EXPECT_EQ(dag.name(sources[1]), "v2");
  EXPECT_EQ(dag.name(sinks[0]), "v5");
  EXPECT_EQ(dag.name(sinks[1]), "v6");
}

TEST(Dag, AcyclicityDetection) {
  Dag dag;
  const auto a = dag.add_vertex("a");
  const auto b = dag.add_vertex("b");
  const auto c = dag.add_vertex("c");
  dag.add_edge(a, 0, b, 0);
  dag.add_edge(b, 0, c, 0);
  EXPECT_TRUE(dag.is_acyclic());
  dag.add_edge(c, 0, a, 0);  // creates the cycle a->b->c->a
  EXPECT_FALSE(dag.is_acyclic());
  EXPECT_THROW(dag.validate(), support::check_error);
}

TEST(Dag, ValidateRejectsEmptyAndSparsePorts) {
  Dag empty;
  EXPECT_THROW(empty.validate(), support::check_error);

  Dag sparse;
  const auto a = sparse.add_vertex("a");
  const auto b = sparse.add_vertex("b");
  sparse.add_edge(a, 0, b, 1);  // port 0 missing
  EXPECT_THROW(sparse.validate(), support::check_error);
}

TEST(Generators, ChainShape) {
  const Dag dag = chain(5);
  EXPECT_EQ(dag.vertex_count(), 5U);
  EXPECT_EQ(dag.edge_count(), 4U);
  EXPECT_EQ(dag.sources().size(), 1U);
  EXPECT_EQ(dag.sinks().size(), 1U);
  dag.validate();
}

TEST(Generators, SingleVertexChain) {
  const Dag dag = chain(1);
  EXPECT_EQ(dag.vertex_count(), 1U);
  EXPECT_EQ(dag.edge_count(), 0U);
  dag.validate();
}

TEST(Generators, DiamondShape) {
  const Dag dag = diamond(4);
  EXPECT_EQ(dag.vertex_count(), 6U);
  EXPECT_EQ(dag.edge_count(), 8U);
  EXPECT_EQ(dag.sources().size(), 1U);
  EXPECT_EQ(dag.sinks().size(), 1U);
  EXPECT_EQ(dag.in_degree(dag.vertex("sink")), 4U);
  dag.validate();
}

TEST(Generators, LayeredShape) {
  support::Rng rng(1);
  const Dag dag = layered(4, 5, 2, rng);
  EXPECT_EQ(dag.vertex_count(), 20U);
  EXPECT_EQ(dag.sources().size(), 5U);
  EXPECT_EQ(dag.edge_count(), 3U * 5U * 2U);
  dag.validate();
}

TEST(Generators, BinaryTrees) {
  const Dag in_tree = binary_in_tree(4);
  EXPECT_EQ(in_tree.vertex_count(), 15U);
  EXPECT_EQ(in_tree.sources().size(), 8U);
  EXPECT_EQ(in_tree.sinks().size(), 1U);
  in_tree.validate();

  const Dag out_tree = binary_out_tree(4);
  EXPECT_EQ(out_tree.vertex_count(), 15U);
  EXPECT_EQ(out_tree.sources().size(), 1U);
  EXPECT_EQ(out_tree.sinks().size(), 8U);
  out_tree.validate();
}

TEST(Generators, RandomDagIsValid) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    support::Rng rng(seed);
    const Dag dag = random_dag(30, 0.15, rng);
    EXPECT_EQ(dag.vertex_count(), 30U);
    dag.validate();
  }
}

TEST(Generators, Figure1GraphHasTenVertices) {
  support::Rng rng(2);
  const Dag dag = figure1_style_graph(rng);
  EXPECT_EQ(dag.vertex_count(), 10U);
  EXPECT_EQ(dag.sources().size(), 3U);
  dag.validate();
}

TEST(Dot, ExportMentionsVerticesAndEdges) {
  const Dag dag = paper_figure2();
  const std::string dot = to_dot(dag);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("v7"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);

  const Numbering numbering = compute_satisfactory_numbering(dag);
  const std::string annotated = to_dot(dag, numbering);
  EXPECT_NE(annotated.find("#1"), std::string::npos);
}

}  // namespace
}  // namespace df::graph
