// The paper's central correctness property, as a parameterized sweep:
// for random graphs, random Δ-workloads, random thread counts and feeds,
// the parallel engine's sink streams must be identical to the sequential
// phase-at-a-time reference ("the logical effect must be the same as
// executing only one phase at a time in serial order", section 2).
#include <gtest/gtest.h>

#include <tuple>

#include "baseline/lockstep.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "model/detectors.hpp"
#include "model/sources.hpp"
#include "model/stats_models.hpp"
#include "model/synthetic.hpp"
#include "random_program.hpp"
#include "spec/builder.hpp"
#include "support/rng.hpp"
#include "trace/serializability.hpp"

namespace df {
namespace {

// The randomized Δ-program corpus lives in random_program.hpp, shared with
// the partitioned-transport differential suite (test_transport.cpp).
using testutil::random_program;

using Case = std::tuple<std::uint64_t /*seed*/, std::size_t /*threads*/>;

class EngineSerializability : public ::testing::TestWithParam<Case> {};

TEST_P(EngineSerializability, EngineEqualsSequential) {
  const auto [seed, threads] = GetParam();
  const core::Program program = random_program(seed);
  core::EngineOptions options;
  options.threads = threads;
  options.max_inflight_phases = 1 + seed % 8;  // vary pipelining depth too
  core::Engine engine(program, options);
  const auto report = trace::check_against_sequential(program, engine, 150);
  EXPECT_TRUE(report.equivalent) << report.summary();
  EXPECT_GT(report.reference_records, 0U) << "workload produced no output";
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndThreads, EngineSerializability,
    ::testing::Combine(::testing::Range<std::uint64_t>(0, 10),
                       ::testing::Values<std::size_t>(1, 2, 4)));

class LockstepSerializability : public ::testing::TestWithParam<Case> {};

TEST_P(LockstepSerializability, LockstepEqualsSequential) {
  const auto [seed, threads] = GetParam();
  const core::Program program = random_program(seed + 1000);
  baseline::LockstepExecutor lockstep(program, threads);
  const auto report =
      trace::check_against_sequential(program, lockstep, 150);
  EXPECT_TRUE(report.equivalent) << report.summary();
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndThreads, LockstepSerializability,
    ::testing::Combine(::testing::Range<std::uint64_t>(0, 5),
                       ::testing::Values<std::size_t>(1, 4)));

// External feeds: the same per-phase batches go to all executors.
class FeedSerializability
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FeedSerializability, ExternalEventsPreserveEquivalence) {
  const std::uint64_t seed = GetParam();
  spec::GraphBuilder b;
  const auto sensor_a =
      b.add("sensor_a", model::factory_of<model::ExternalPassthroughSource>());
  const auto sensor_b =
      b.add("sensor_b", model::factory_of<model::ExternalPassthroughSource>());
  const auto join = b.add(
      "join", model::factory_of<model::SnapshotJoinModule>(std::size_t{2}));
  const auto avg = b.add("avg", model::factory_of<model::MovingAverageModule>(
                                    std::size_t{4}));
  b.connect(sensor_a, 0, join, 0);
  b.connect(sensor_b, 0, join, 1);
  b.connect(sensor_a, avg);
  const core::Program program = std::move(b).build(seed);

  // Random sparse batches: some phases carry events, some do not.
  support::Rng rng(seed ^ 0xfeedULL);
  std::vector<std::vector<event::ExternalEvent>> batches(120);
  for (auto& batch : batches) {
    if (rng.next_bernoulli(0.4)) {
      batch.push_back(event::ExternalEvent{sensor_a, 0,
                                           event::Value(rng.next_double())});
    }
    if (rng.next_bernoulli(0.3)) {
      batch.push_back(event::ExternalEvent{sensor_b, 0,
                                           event::Value(rng.next_double())});
    }
  }

  core::Engine engine(program, {.threads = 4});
  const auto report = trace::check_against_sequential(
      program, engine, batches.size(), batches);
  EXPECT_TRUE(report.equivalent) << report.summary();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FeedSerializability,
                         ::testing::Range<std::uint64_t>(0, 8));

// Paper figure graphs under load.
TEST(Serializability, Figure2GraphUnderLoad) {
  const graph::Dag shape = graph::paper_figure2();
  spec::GraphBuilder b;
  std::vector<graph::VertexId> ids;
  for (graph::VertexId v = 0; v < shape.vertex_count(); ++v) {
    if (shape.in_degree(v) == 0) {
      ids.push_back(b.add(shape.name(v),
                          model::factory_of<model::GaussianSource>(
                              0.0, 1.0, 0.6)));
    } else {
      ids.push_back(b.add(shape.name(v), model::factory_of<model::SumModule>(
                                             shape.in_degree(v))));
    }
  }
  for (const graph::Edge& e : shape.edges()) {
    b.connect(ids[e.from], e.from_port, ids[e.to], e.to_port);
  }
  const core::Program program = std::move(b).build(77);
  core::Engine engine(program, {.threads = 3});
  const auto report = trace::check_against_sequential(program, engine, 500);
  EXPECT_TRUE(report.equivalent) << report.summary();
}

}  // namespace
}  // namespace df
