// The paper's run-queue obligation, observed from inside the modules:
// "every vertex-phase pair placed in the ready set gets executed exactly
// once" (section 3.1.2) and phases execute in increasing order per vertex.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <mutex>
#include <set>

#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "model/module.hpp"
#include "spec/builder.hpp"
#include "support/rng.hpp"

namespace df::core {
namespace {

/// Shared, thread-safe execution journal written by every probe module.
struct Journal {
  std::mutex mutex;
  // (vertex name, phase) -> execution count.
  std::map<std::pair<std::string, event::PhaseId>, int> executions;
  // Last phase seen per vertex (to check per-vertex phase ordering).
  std::map<std::string, event::PhaseId> last_phase;
  bool ordering_violated = false;

  void record(const std::string& vertex, event::PhaseId phase) {
    std::lock_guard lock(mutex);
    ++executions[{vertex, phase}];
    auto [it, inserted] = last_phase.try_emplace(vertex, phase);
    if (!inserted) {
      if (phase <= it->second) {
        ordering_violated = true;
      }
      it->second = phase;
    }
  }
};

/// Probe: records its execution, then forwards with probability `p`.
class ProbeModule final : public model::Module {
 public:
  ProbeModule(std::shared_ptr<Journal> journal, std::string name,
              double emit_probability)
      : journal_(std::move(journal)), name_(std::move(name)),
        emit_probability_(emit_probability) {}

  void on_phase(model::PhaseContext& ctx) override {
    journal_->record(name_, ctx.phase());
    if (ctx.rng().next_bernoulli(emit_probability_)) {
      ctx.emit(0, static_cast<std::int64_t>(ctx.phase()));
    }
  }

 private:
  std::shared_ptr<Journal> journal_;
  std::string name_;
  double emit_probability_;
};

class ExactlyOnce : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ExactlyOnce, NoDuplicateOrReorderedExecutions) {
  const std::size_t threads = GetParam();
  support::Rng rng(threads);
  const graph::Dag shape = graph::random_dag(24, 0.2, rng);
  const auto journal = std::make_shared<Journal>();

  spec::GraphBuilder b;
  std::vector<graph::VertexId> ids;
  for (graph::VertexId v = 0; v < shape.vertex_count(); ++v) {
    const std::string name = shape.name(v);
    ids.push_back(b.add(name, [journal, name] {
      return std::make_unique<ProbeModule>(journal, name, 0.5);
    }));
  }
  for (const graph::Edge& e : shape.edges()) {
    b.connect(ids[e.from], e.from_port, ids[e.to], e.to_port);
  }

  const event::PhaseId phases = 300;
  core::Engine engine(std::move(b).build(7), {.threads = threads});
  engine.run(phases, nullptr);

  std::lock_guard lock(journal->mutex);
  EXPECT_FALSE(journal->ordering_violated)
      << "a vertex executed phases out of order";
  for (const auto& [key, count] : journal->executions) {
    ASSERT_EQ(count, 1) << key.first << " phase " << key.second
                        << " executed " << count << " times";
  }
  // Every source executed every phase (phase signals are unconditional).
  std::size_t source_executions = 0;
  for (const auto& [key, count] : journal->executions) {
    if (shape.is_source(shape.vertex(key.first))) {
      source_executions += static_cast<std::size_t>(count);
    }
  }
  EXPECT_EQ(source_executions, shape.sources().size() * phases);
}

INSTANTIATE_TEST_SUITE_P(Threads, ExactlyOnce,
                         ::testing::Values<std::size_t>(1, 2, 4, 8));

}  // namespace
}  // namespace df::core
