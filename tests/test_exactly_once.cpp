// The paper's run-queue obligation, observed from inside the modules:
// "every vertex-phase pair placed in the ready set gets executed exactly
// once" (section 3.1.2) and phases execute in increasing order per vertex.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <set>

#include "core/engine.hpp"
#include "distrib/transport.hpp"
#include "graph/generators.hpp"
#include "model/module.hpp"
#include "random_program.hpp"
#include "spec/builder.hpp"
#include "support/rng.hpp"
#include "trace/serializability.hpp"

namespace df::core {
namespace {

/// Shared, thread-safe execution journal written by every probe module.
struct Journal {
  std::mutex mutex;
  // (vertex name, phase) -> execution count.
  std::map<std::pair<std::string, event::PhaseId>, int> executions;
  // Last phase seen per vertex (to check per-vertex phase ordering).
  std::map<std::string, event::PhaseId> last_phase;
  bool ordering_violated = false;

  void record(const std::string& vertex, event::PhaseId phase) {
    std::lock_guard lock(mutex);
    ++executions[{vertex, phase}];
    auto [it, inserted] = last_phase.try_emplace(vertex, phase);
    if (!inserted) {
      if (phase <= it->second) {
        ordering_violated = true;
      }
      it->second = phase;
    }
  }
};

/// Probe: records its execution, then forwards with probability `p`.
class ProbeModule final : public model::Module {
 public:
  ProbeModule(std::shared_ptr<Journal> journal, std::string name,
              double emit_probability)
      : journal_(std::move(journal)), name_(std::move(name)),
        emit_probability_(emit_probability) {}

  void on_phase(model::PhaseContext& ctx) override {
    journal_->record(name_, ctx.phase());
    if (ctx.rng().next_bernoulli(emit_probability_)) {
      ctx.emit(0, static_cast<std::int64_t>(ctx.phase()));
    }
  }

 private:
  std::shared_ptr<Journal> journal_;
  std::string name_;
  double emit_probability_;
};

class ExactlyOnce : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ExactlyOnce, NoDuplicateOrReorderedExecutions) {
  const std::size_t threads = GetParam();
  support::Rng rng(threads);
  const graph::Dag shape = graph::random_dag(24, 0.2, rng);
  const auto journal = std::make_shared<Journal>();

  spec::GraphBuilder b;
  std::vector<graph::VertexId> ids;
  for (graph::VertexId v = 0; v < shape.vertex_count(); ++v) {
    const std::string name = shape.name(v);
    ids.push_back(b.add(name, [journal, name] {
      return std::make_unique<ProbeModule>(journal, name, 0.5);
    }));
  }
  for (const graph::Edge& e : shape.edges()) {
    b.connect(ids[e.from], e.from_port, ids[e.to], e.to_port);
  }

  const event::PhaseId phases = 300;
  core::Engine engine(std::move(b).build(7), {.threads = threads});
  engine.run(phases, nullptr);

  std::lock_guard lock(journal->mutex);
  EXPECT_FALSE(journal->ordering_violated)
      << "a vertex executed phases out of order";
  for (const auto& [key, count] : journal->executions) {
    ASSERT_EQ(count, 1) << key.first << " phase " << key.second
                        << " executed " << count << " times";
  }
  // Every source executed every phase (phase signals are unconditional).
  std::size_t source_executions = 0;
  for (const auto& [key, count] : journal->executions) {
    if (shape.is_source(shape.vertex(key.first))) {
      source_executions += static_cast<std::size_t>(count);
    }
  }
  EXPECT_EQ(source_executions, shape.sources().size() * phases);
}

INSTANTIATE_TEST_SUITE_P(Threads, ExactlyOnce,
                         ::testing::Values<std::size_t>(1, 2, 4, 8));

// Exactly-once across a crash-restart: a restarted partition re-executes
// the phases past its checkpoint and re-sends their frames under their
// original sequence numbers. With the *most-upstream* partition as the
// victim (it has no ingress, so no retention replay muddies the ledger),
// every one of those re-sent frames already reached the downstream
// sequencer before the crash — the channel is order-preserving and was
// never severed — so the dedup ledger must account for each replayed
// frame exactly, and the sink output must not change by a byte.
TEST(ExactlyOnceAcrossRestart, ReplayedFramesAreAllDeduplicated) {
  const core::Program program = testutil::random_program(5);
  const event::PhaseId phases = 40;

  distrib::TransportOptions options;
  options.machines = 2;
  options.channel = distrib::ChannelKind::kInProcess;
  options.checkpoint_every = 4;
  // Kill partition 0 mid-checkpoint at phase 8: the snapshot's phases are
  // complete and their frames flushed (quiesce precedes the snapshot), but
  // the checkpoint is not committed, so recovery restores phase 4 and
  // re-execution of phases 5-8 re-sends every flushed frame.
  std::atomic<bool> fired{false};
  options.crash_hook = [&fired](std::size_t block, event::PhaseId phase,
                                distrib::CrashPoint point) {
    if (block == 0 && phase == 8 &&
        point == distrib::CrashPoint::kMidCheckpoint) {
      bool expected = false;
      if (fired.compare_exchange_strong(expected, true)) {
        throw distrib::CrashSignal{};
      }
    }
  };

  distrib::TransportEngine transport(program, options);
  const auto report =
      trace::check_against_sequential(program, transport, phases);
  const auto& stats = transport.transport_stats();

  EXPECT_TRUE(report.equivalent) << report.summary();
  ASSERT_TRUE(fired.load()) << "planned crash never fired";
  EXPECT_EQ(stats.restarts, 1U);
  EXPECT_GT(stats.frames_replayed, 0U)
      << "restart re-executed no phase; the dedup path went unexercised";
  EXPECT_EQ(stats.duplicates_dropped, stats.frames_replayed)
      << "a replayed frame was delivered twice (or dropped without replay)";
}

}  // namespace
}  // namespace df::core
