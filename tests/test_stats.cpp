// Unit tests for the streaming-statistics substrate.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "support/check.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace df::support {
namespace {

double direct_mean(const std::vector<double>& xs) {
  double sum = 0.0;
  for (const double x : xs) {
    sum += x;
  }
  return sum / static_cast<double>(xs.size());
}

double direct_variance(const std::vector<double>& xs) {
  const double m = direct_mean(xs);
  double sum = 0.0;
  for (const double x : xs) {
    sum += (x - m) * (x - m);
  }
  return sum / static_cast<double>(xs.size());
}

TEST(RunningStats, MatchesDirectComputation) {
  Rng rng(1);
  std::vector<double> xs;
  RunningStats stats;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double(-50.0, 50.0);
    xs.push_back(x);
    stats.add(x);
  }
  EXPECT_NEAR(stats.mean(), direct_mean(xs), 1e-9);
  EXPECT_NEAR(stats.variance(), direct_variance(xs), 1e-8);
  EXPECT_EQ(stats.count(), 1000U);
}

TEST(RunningStats, TracksMinMaxSum) {
  RunningStats stats;
  stats.add(3.0);
  stats.add(-1.0);
  stats.add(7.0);
  EXPECT_DOUBLE_EQ(stats.min(), -1.0);
  EXPECT_DOUBLE_EQ(stats.max(), 7.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 9.0);
}

TEST(RunningStats, MergeEqualsCombinedStream) {
  Rng rng(2);
  RunningStats left;
  RunningStats right;
  RunningStats all;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.next_normal(10.0, 3.0);
    (i % 2 == 0 ? left : right).add(x);
    all.add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-8);
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats a;
  RunningStats b;
  b.add(5.0);
  a.merge(b);  // empty += non-empty
  EXPECT_EQ(a.count(), 1U);
  RunningStats c;
  a.merge(c);  // non-empty += empty
  EXPECT_EQ(a.count(), 1U);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
}

TEST(RunningStats, SampleVarianceUsesBesselCorrection) {
  RunningStats stats;
  stats.add(1.0);
  EXPECT_DOUBLE_EQ(stats.sample_variance(), 0.0);
  stats.add(3.0);
  EXPECT_DOUBLE_EQ(stats.sample_variance(), 2.0);  // ((1-2)^2+(3-2)^2)/1
  EXPECT_DOUBLE_EQ(stats.variance(), 1.0);
}

TEST(WindowedStats, SlidesCorrectly) {
  WindowedStats window(3);
  window.add(1.0);
  window.add(2.0);
  window.add(3.0);
  EXPECT_TRUE(window.full());
  EXPECT_DOUBLE_EQ(window.mean(), 2.0);
  window.add(10.0);  // evicts 1.0 -> {2,3,10}
  EXPECT_DOUBLE_EQ(window.mean(), 5.0);
  EXPECT_DOUBLE_EQ(window.min(), 2.0);
  EXPECT_DOUBLE_EQ(window.max(), 10.0);
  EXPECT_DOUBLE_EQ(window.front(), 2.0);
  EXPECT_DOUBLE_EQ(window.back(), 10.0);
}

TEST(WindowedStats, VarianceMatchesDirect) {
  Rng rng(3);
  WindowedStats window(32);
  std::vector<double> recent;
  for (int i = 0; i < 200; ++i) {
    const double x = rng.next_double(0.0, 100.0);
    window.add(x);
    recent.push_back(x);
    if (recent.size() > 32) {
      recent.erase(recent.begin());
    }
    ASSERT_NEAR(window.variance(), direct_variance(recent), 1e-6);
  }
}

TEST(WindowedStats, RejectsZeroCapacityAndEmptyQueries) {
  EXPECT_THROW(WindowedStats(0), check_error);
  WindowedStats window(4);
  EXPECT_THROW(window.min(), check_error);
  EXPECT_DOUBLE_EQ(window.mean(), 0.0);  // empty mean defined as 0
}

TEST(Ewma, ConvergesToConstantInput) {
  Ewma ewma(0.25);
  EXPECT_FALSE(ewma.initialized());
  for (int i = 0; i < 100; ++i) {
    ewma.add(8.0);
  }
  EXPECT_TRUE(ewma.initialized());
  EXPECT_NEAR(ewma.value(), 8.0, 1e-9);
}

TEST(Ewma, FirstSampleInitializes) {
  Ewma ewma(0.5);
  ewma.add(4.0);
  EXPECT_DOUBLE_EQ(ewma.value(), 4.0);
  ewma.add(8.0);
  EXPECT_DOUBLE_EQ(ewma.value(), 6.0);
}

TEST(Ewma, RejectsInvalidAlpha) {
  EXPECT_THROW(Ewma(0.0), check_error);
  EXPECT_THROW(Ewma(1.5), check_error);
}

TEST(OnlineLinearRegression, RecoversExactLine) {
  OnlineLinearRegression reg;
  for (int i = 0; i < 50; ++i) {
    reg.add(i, 3.0 * i + 2.0);
  }
  ASSERT_TRUE(reg.has_fit());
  EXPECT_NEAR(reg.slope(), 3.0, 1e-9);
  EXPECT_NEAR(reg.intercept(), 2.0, 1e-8);
  EXPECT_NEAR(reg.predict(100.0), 302.0, 1e-7);
  EXPECT_NEAR(reg.correlation(), 1.0, 1e-9);
}

TEST(OnlineLinearRegression, NegativeCorrelation) {
  OnlineLinearRegression reg;
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    reg.add(i, -2.0 * i + rng.next_normal(0.0, 0.1));
  }
  EXPECT_LT(reg.correlation(), -0.999);
}

TEST(OnlineLinearRegression, RemoveRestoresPreviousFit) {
  OnlineLinearRegression reg;
  for (int i = 0; i < 20; ++i) {
    reg.add(i, 2.0 * i);
  }
  const double slope_before = reg.slope();
  reg.add(100.0, -500.0);  // wild outlier
  EXPECT_NE(reg.slope(), slope_before);
  reg.remove(100.0, -500.0);
  EXPECT_NEAR(reg.slope(), slope_before, 1e-9);
}

TEST(OnlineLinearRegression, NoFitForDegenerateX) {
  OnlineLinearRegression reg;
  reg.add(5.0, 1.0);
  reg.add(5.0, 2.0);  // vertical line: no defined slope
  EXPECT_FALSE(reg.has_fit());
  EXPECT_DOUBLE_EQ(reg.slope(), 0.0);
}

TEST(RollingCorrelation, TracksWindowedRelationship) {
  RollingCorrelation corr(16);
  // First 16 samples positively correlated, then strongly negative.
  for (int i = 0; i < 16; ++i) {
    corr.add(i, i);
  }
  EXPECT_NEAR(corr.correlation(), 1.0, 1e-9);
  for (int i = 16; i < 48; ++i) {
    corr.add(i, -i);
  }
  EXPECT_NEAR(corr.correlation(), -1.0, 1e-9);
  EXPECT_TRUE(corr.full());
}

TEST(RollingCorrelation, RequiresTwoSampleWindow) {
  EXPECT_THROW(RollingCorrelation(1), check_error);
}

}  // namespace
}  // namespace df::support
