// Unit tests for the transport lifecycle protocol (distrib/protocol.hpp):
//
//   * transition tables — legal walks advance, illegal edges throw
//     (DF_CHECK, every build type), terminal states accept nothing;
//   * error precedence — classify/outranks implement "root cause beats
//     secondary peer-closed abort beats nothing";
//   * differential instrumentation — a real TransportEngine run (clean and
//     aborting) drives its lifecycle through the *checked* advance path:
//     the process-wide advance counter must grow, and since every advance
//     is table-checked, run completion is itself the proof that teardown
//     used only legal edges.
//
// The exhaustive composed exploration (product of the three machines over
// a bounded channel) lives in tools/verify_protocol.cpp; both read the
// same tables, so these tests focus on the API contract and the live
// wiring.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <utility>

#include "distrib/protocol.hpp"
#include "distrib/transport.hpp"
#include "model/synthetic.hpp"
#include "random_program.hpp"
#include "spec/builder.hpp"
#include "support/check.hpp"
#include "trace/serializability.hpp"

namespace df {
namespace {

namespace proto = distrib::protocol;
using proto::EngineEvent;
using proto::EngineState;
using proto::ReceiverEvent;
using proto::ReceiverState;
using proto::SenderEvent;
using proto::SenderState;

// --- sender table ------------------------------------------------------------

TEST(SenderMachine, NormalLifecycle) {
  proto::SenderMachine m;
  EXPECT_TRUE(m.is(SenderState::kOpen));
  m.advance(SenderEvent::kFlush);
  m.advance(SenderEvent::kFlush);  // one flush per phase, self-loop
  EXPECT_TRUE(m.is(SenderState::kOpen));
  m.advance(SenderEvent::kClose);
  EXPECT_TRUE(m.is(SenderState::kClosed));
  EXPECT_TRUE(m.terminal());
}

TEST(SenderMachine, FailureStillCloses) {
  proto::SenderMachine m;
  m.advance(SenderEvent::kFlush);
  m.advance(SenderEvent::kSendError);
  EXPECT_TRUE(m.is(SenderState::kFailed));
  EXPECT_FALSE(m.terminal());  // the abort path still signals EOF
  m.advance(SenderEvent::kClose);
  EXPECT_TRUE(m.is(SenderState::kClosed));
}

TEST(SenderMachine, NoSendAfterCloseOrFailure) {
  proto::SenderMachine closed;
  closed.advance(SenderEvent::kClose);
  EXPECT_THROW(closed.advance(SenderEvent::kFlush), support::check_error);

  proto::SenderMachine failed;
  failed.advance(SenderEvent::kSendError);
  EXPECT_THROW(failed.advance(SenderEvent::kFlush), support::check_error);
}

// --- receiver table ----------------------------------------------------------

TEST(ReceiverMachine, NormalLifecycle) {
  proto::ReceiverMachine m;
  m.advance(ReceiverEvent::kFrame);
  m.advance(ReceiverEvent::kWatermark);
  m.advance(ReceiverEvent::kDuplicate);
  m.advance(ReceiverEvent::kFrame);
  EXPECT_TRUE(m.is(ReceiverState::kStreaming));
  m.advance(ReceiverEvent::kFinalWatermark);
  EXPECT_TRUE(m.is(ReceiverState::kDrained));
  m.advance(ReceiverEvent::kDuplicate);  // trailing duplicates are legal
  m.advance(ReceiverEvent::kEof);
  EXPECT_TRUE(m.is(ReceiverState::kEof));
  EXPECT_TRUE(m.terminal());
}

TEST(ReceiverMachine, EarlyEofIsPeerClosed) {
  proto::ReceiverMachine m;
  m.advance(ReceiverEvent::kFrame);
  m.advance(ReceiverEvent::kEof);  // close before the final watermark
  EXPECT_TRUE(m.is(ReceiverState::kPeerClosed));
  EXPECT_TRUE(m.terminal());
}

TEST(ReceiverMachine, NonDuplicateFrameAfterDrainIsIllegal) {
  proto::ReceiverMachine m;
  m.advance(ReceiverEvent::kFinalWatermark);
  EXPECT_THROW(m.advance(ReceiverEvent::kFrame), support::check_error);
  EXPECT_THROW(m.advance(ReceiverEvent::kWatermark), support::check_error);
}

TEST(ReceiverMachine, ReaderErrorFailsFromEitherLiveState) {
  proto::ReceiverMachine streaming;
  streaming.advance(ReceiverEvent::kError);
  EXPECT_TRUE(streaming.is(ReceiverState::kFailed));

  proto::ReceiverMachine drained;
  drained.advance(ReceiverEvent::kFinalWatermark);
  drained.advance(ReceiverEvent::kError);
  EXPECT_TRUE(drained.is(ReceiverState::kFailed));
}

// --- engine table ------------------------------------------------------------

TEST(EngineMachine, NormalTeardownOrdering) {
  proto::EngineMachine m;
  m.advance(EngineEvent::kStart);
  m.advance(EngineEvent::kLocalComplete);
  m.advance(EngineEvent::kCloseEgress);
  m.advance(EngineEvent::kIngressEof);
  EXPECT_TRUE(m.is(EngineState::kDone));
  EXPECT_TRUE(m.terminal());
}

TEST(EngineMachine, IngressEofBeforeEgressCloseIsIllegal) {
  // The teardown ordering invariant, as structure: draining ingress to EOF
  // before closing egress has no edge.
  proto::EngineMachine m;
  m.advance(EngineEvent::kStart);
  m.advance(EngineEvent::kLocalComplete);
  EXPECT_THROW(m.advance(EngineEvent::kIngressEof), support::check_error);
}

TEST(EngineMachine, AbortPathFromEveryLiveState) {
  for (int stage = 0; stage < 4; ++stage) {
    proto::EngineMachine m;
    if (stage >= 1) m.advance(EngineEvent::kStart);
    if (stage >= 2) m.advance(EngineEvent::kLocalComplete);
    if (stage >= 3) m.advance(EngineEvent::kCloseEgress);
    m.advance(EngineEvent::kError);
    // Egress already closed -> the re-close is an absorbed self-loop;
    // otherwise the abort must still close egress before draining.
    m.advance(EngineEvent::kCloseEgress);
    m.advance(EngineEvent::kError);  // secondary errors are absorbed
    m.advance(EngineEvent::kIngressEof);
    EXPECT_TRUE(m.is(EngineState::kAborted)) << "stage " << stage;
  }
}

TEST(EngineMachine, TerminalStatesAcceptNothing) {
  proto::EngineMachine done;
  done.advance(EngineEvent::kStart);
  done.advance(EngineEvent::kLocalComplete);
  done.advance(EngineEvent::kCloseEgress);
  done.advance(EngineEvent::kIngressEof);
  for (EngineEvent e : proto::kEngineEvents) {
    EXPECT_THROW(done.advance(e), support::check_error);
    EXPECT_TRUE(done.is(EngineState::kDone));  // failed advance moves nothing
  }
}

// --- crash-restart replay states (DESIGN.md, "Crash-restart recovery") -------

TEST(SenderMachine, ReplayIsBracketed) {
  // kReplayStart is the only way in, kReplayDone the only way back: a
  // retained-frame re-send can never interleave with a fresh-phase flush.
  proto::SenderMachine m;
  m.advance(SenderEvent::kFlush);
  m.advance(SenderEvent::kReplayStart);
  EXPECT_TRUE(m.is(SenderState::kReplaying));
  m.advance(SenderEvent::kFlush);  // retained re-sends self-loop
  m.advance(SenderEvent::kFlush);
  EXPECT_TRUE(m.is(SenderState::kReplaying));
  EXPECT_THROW(m.advance(SenderEvent::kReplayStart), support::check_error);
  m.advance(SenderEvent::kReplayDone);
  EXPECT_TRUE(m.is(SenderState::kOpen));
  // Back in kOpen: no stray kReplayDone, and normal flushing resumes.
  EXPECT_THROW(m.advance(SenderEvent::kReplayDone), support::check_error);
  m.advance(SenderEvent::kFlush);
  m.advance(SenderEvent::kClose);
  EXPECT_TRUE(m.is(SenderState::kClosed));
}

TEST(SenderMachine, ReplayFailureAndCloseStillExit) {
  proto::SenderMachine failing;
  failing.advance(SenderEvent::kReplayStart);
  failing.advance(SenderEvent::kSendError);
  EXPECT_TRUE(failing.is(SenderState::kFailed));

  // An upstream that completes while the replay hold is released closes
  // out of kReplaying directly (the revive/close latch makes this real).
  proto::SenderMachine closing;
  closing.advance(SenderEvent::kReplayStart);
  closing.advance(SenderEvent::kClose);
  EXPECT_TRUE(closing.is(SenderState::kClosed));
}

TEST(ReceiverMachine, RestartedSequencerAbsorbsReplayPrefix) {
  // A restarted sequencer starts in kReplaying: below-floor duplicates
  // self-loop, and the first in-sequence frame (or watermark) resumes the
  // ordinary streaming lifecycle.
  proto::ReceiverMachine m(ReceiverState::kReplaying);
  m.advance(ReceiverEvent::kDuplicate);
  m.advance(ReceiverEvent::kDuplicate);
  EXPECT_TRUE(m.is(ReceiverState::kReplaying));
  m.advance(ReceiverEvent::kFrame);
  EXPECT_TRUE(m.is(ReceiverState::kStreaming));
  m.advance(ReceiverEvent::kFinalWatermark);
  m.advance(ReceiverEvent::kEof);
  EXPECT_TRUE(m.is(ReceiverState::kEof));
}

TEST(ReceiverMachine, ReplayingEofIsPeerClosedNotClean) {
  // EOF while still absorbing replay means the upstream died again before
  // delivering the suffix — a peer abort, never a clean end-of-stream.
  proto::ReceiverMachine m(ReceiverState::kReplaying);
  m.advance(ReceiverEvent::kDuplicate);
  m.advance(ReceiverEvent::kEof);
  EXPECT_TRUE(m.is(ReceiverState::kPeerClosed));
  EXPECT_TRUE(m.terminal());
}

TEST(EngineMachine, RestoredGenerationPassesThroughReplaying) {
  // kRestore fires only after restore_state succeeds; the restored
  // generation must walk kCreated -> kReplaying -> kRunning, then tear
  // down like any other generation.
  proto::EngineMachine m;
  m.advance(EngineEvent::kRestore);
  EXPECT_TRUE(m.is(EngineState::kReplaying));
  m.advance(EngineEvent::kStart);
  EXPECT_TRUE(m.is(EngineState::kRunning));
  m.advance(EngineEvent::kLocalComplete);
  m.advance(EngineEvent::kCloseEgress);
  m.advance(EngineEvent::kIngressEof);
  EXPECT_TRUE(m.is(EngineState::kDone));
}

TEST(EngineMachine, RestoreFromRunningIsIllegal) {
  // Restore happens between start() and the first phase, never mid-run —
  // the table has no edge for it, so the discipline is structural.
  proto::EngineMachine m;
  m.advance(EngineEvent::kStart);
  EXPECT_THROW(m.advance(EngineEvent::kRestore), support::check_error);

  // A failed restore aborts the generation (engine discarded, older image
  // retried); the abort path out of kReplaying is the standard one.
  proto::EngineMachine failing;
  failing.advance(EngineEvent::kRestore);
  failing.advance(EngineEvent::kError);
  EXPECT_TRUE(failing.is(EngineState::kAborting));
}

// --- error precedence ---------------------------------------------------------

std::exception_ptr make_error(bool peer) {
  try {
    if (peer) {
      throw proto::peer_closed_error("peer closed");
    }
    throw std::runtime_error("root cause");
  } catch (...) {
    return std::current_exception();
  }
}

std::exception_ptr make_peer_lost() {
  try {
    throw proto::peer_lost_error("peer connection lost");
  } catch (...) {
    return std::current_exception();
  }
}

TEST(ErrorRank, ClassifyAndOutrank) {
  EXPECT_EQ(proto::classify(nullptr), proto::ErrorRank::kNone);
  EXPECT_EQ(proto::classify(make_error(true)), proto::ErrorRank::kPeerClosed);
  EXPECT_EQ(proto::classify(make_error(false)), proto::ErrorRank::kRootCause);
  // Abrupt peer loss ranks with the orderly peer-closed aborts: secondary
  // to whatever root cause killed the peer.
  EXPECT_EQ(proto::classify(make_peer_lost()), proto::ErrorRank::kPeerClosed);

  EXPECT_TRUE(proto::outranks(proto::ErrorRank::kRootCause,
                              proto::ErrorRank::kPeerClosed));
  EXPECT_TRUE(proto::outranks(proto::ErrorRank::kPeerClosed,
                              proto::ErrorRank::kNone));
  EXPECT_FALSE(proto::outranks(proto::ErrorRank::kPeerClosed,
                               proto::ErrorRank::kRootCause));
  // Not strict: equal ranks do not outrank, so the first error in block
  // order wins and reports stay deterministic.
  EXPECT_FALSE(proto::outranks(proto::ErrorRank::kRootCause,
                               proto::ErrorRank::kRootCause));
}

// --- differential: the live transport drives the checked advance path --------

TEST(ProtocolInstrumentation, CleanRunAdvancesOnlyLegalEdges) {
  const core::Program program = testutil::random_program(3);
  distrib::TransportOptions options;
  options.machines = 3;
  options.channel = distrib::ChannelKind::kInProcess;
  options.channel_capacity = 8;
  distrib::TransportEngine transport(program, options);

  const std::uint64_t before = proto::advance_count().load();
  const auto report = trace::check_against_sequential(program, transport, 30);
  EXPECT_TRUE(report.equivalent) << report.summary();
  const std::uint64_t advances = proto::advance_count().load() - before;

  // Every advance is table-checked and throws on an illegal edge, so the
  // clean completion above already proves teardown took only legal edges;
  // the counter proves the lifecycle went *through* the checked path
  // rather than around it. Floor: per engine kStart + kLocalComplete +
  // kCloseEgress + kIngressEof, per channel at least one sender flush +
  // close and one receiver final watermark + EOF.
  const std::uint64_t channels = 3;  // 3 machines, one per ordered pair
  EXPECT_GE(advances, 4 * options.machines + 4 * channels);
}

TEST(ProtocolInstrumentation, AbortingRunStillAdvancesCheckedEdges) {
  // chain: source -> mid -> tail with mid throwing at phase 3; one vertex
  // per block so the failure crosses partition boundaries.
  spec::GraphBuilder b;
  const auto thrower = model::ModuleFactory([] {
    return std::make_unique<model::LambdaModule>(
        [](model::PhaseContext& ctx) {
          if (ctx.phase() == 3) {
            throw std::runtime_error("module exploded");
          }
          ctx.emit(0, event::Value(static_cast<double>(ctx.phase())));
        });
  });
  const auto forward = model::ModuleFactory([] {
    return std::make_unique<model::LambdaModule>(
        [](model::PhaseContext& ctx) {
          ctx.emit(0, ctx.has_input(0) ? ctx.input(0) : event::Value(0.0));
        });
  });
  const auto source = b.add("source", thrower);
  const auto mid = b.add("mid", forward);
  const auto tail = b.add("tail", forward);
  b.connect(source, 0, mid, 0);
  b.connect(mid, 0, tail, 0);
  const core::Program program = std::move(b).build(5);

  distrib::TransportOptions options;
  options.machines = 3;
  options.channel = distrib::ChannelKind::kInProcess;
  distrib::TransportEngine transport(program, options);

  const std::uint64_t before = proto::advance_count().load();
  try {
    transport.run(20, nullptr);
    FAIL() << "expected the module exception to propagate";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "module exploded");
  }
  const std::uint64_t advances = proto::advance_count().load() - before;
  // Abort teardown is checked too: every engine still walks kError ->
  // kCloseEgress -> kIngressEof (or the clean path, for blocks that
  // finished first), so the floor stands.
  EXPECT_GE(advances, 4 * options.machines);
}

}  // namespace
}  // namespace df
