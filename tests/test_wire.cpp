// Wire-format round-trip and rejection fuzzing (distrib/wire.hpp).
//
// Properties, all meant to run under ASan/UBSan in CI:
//   * every frame the v2 encoder can produce — deliveries, watermarks, and
//     kDeliveryBatch frames over a randomized delivery corpus — decodes
//     back to an identical frame, both through the Frame-level decoder and
//     the streaming BatchReader;
//   * validate_frame (the readers' no-allocation structural walk) returns
//     exactly the status a full decode would, on valid and corrupt input;
//   * every strict prefix of a valid encoding is rejected (no partial
//     frame ever half-applies);
//   * arbitrary single-byte corruption and pure random bytes never crash
//     or read out of bounds — they either decode to *something* (payload
//     bits are not checksummed) or return a DecodeStatus, but length and
//     count fields can never trigger giant allocations or overreads;
//   * cross-version rejection is clean both ways: the v2 decoder rejects
//     v1 frames with kBadVersion and the v1 decode-compat fixture rejects
//     v2 frames the same way — no UB, no hang, no partial decode.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "distrib/wire.hpp"
#include "support/rng.hpp"

namespace df::distrib::wire {
namespace {

event::Value random_value(support::Rng& rng) {
  switch (rng.next_below(9)) {
    case 0:
      return event::Value();
    case 1:
      return event::Value(rng.next_bernoulli(0.5));
    case 2:
      return event::Value(static_cast<std::int64_t>(rng.next_u64()));
    case 3:
      return event::Value(rng.next_normal() * 1e12);
    case 4: {
      // Strings with arbitrary bytes: NULs, high bits, no terminator help.
      std::string text;
      const std::size_t length = rng.next_below(64);
      for (std::size_t i = 0; i < length; ++i) {
        text.push_back(static_cast<char>(rng.next_below(256)));
      }
      return event::Value(std::move(text));
    }
    case 5: {
      std::vector<double> values(rng.next_below(32));
      for (double& v : values) {
        v = rng.next_normal();
      }
      return event::Value(std::move(values));
    }
    case 6:
      // Small ints are the varint encoding's sweet spot; cover them and
      // the sign boundary explicitly, not just as a sliver of case 2.
      return event::Value(rng.next_int(-300, 300));
    case 7: {
      // Strings around the short-string (u8 length) boundary.
      std::string text(250 + rng.next_below(12), 'x');
      return event::Value(std::move(text));
    }
    default:
      return event::Value(rng.next_double());
  }
}

core::Delivery random_delivery(support::Rng& rng) {
  core::Delivery delivery;
  delivery.to_index = static_cast<std::uint32_t>(rng.next_u64());
  delivery.to_port = static_cast<graph::Port>(rng.next_below(1 << 16));
  delivery.value = random_value(rng);
  return delivery;
}

Frame random_frame(support::Rng& rng) {
  Frame frame;
  frame.seq = rng.next_u64();
  frame.phase = rng.next_below(1 << 20);
  const std::uint64_t pick = rng.next_below(10);
  if (pick < 4) {
    frame.type = FrameType::kDelivery;
    frame.delivery = random_delivery(rng);
  } else if (pick < 8) {
    frame.type = FrameType::kDeliveryBatch;
    const std::size_t count = 1 + rng.next_below(24);
    for (std::size_t i = 0; i < count; ++i) {
      frame.batch.push_back(random_delivery(rng));
    }
  } else {
    frame.type = FrameType::kWatermark;
  }
  return frame;
}

void encode(const Frame& frame, std::vector<std::uint8_t>& out) {
  switch (frame.type) {
    case FrameType::kDelivery:
      encode_delivery(frame.seq, frame.phase, frame.delivery, out);
      break;
    case FrameType::kDeliveryBatch:
      encode_delivery_batch(frame.seq, frame.phase, frame.batch, out);
      break;
    case FrameType::kWatermark:
      encode_watermark(frame.seq, frame.phase, out);
      break;
  }
}

void expect_frames_equal(const Frame& decoded, const Frame& frame) {
  EXPECT_EQ(decoded.type, frame.type);
  EXPECT_EQ(decoded.seq, frame.seq);
  EXPECT_EQ(decoded.phase, frame.phase);
  if (frame.type == FrameType::kDelivery) {
    EXPECT_EQ(decoded.delivery.to_index, frame.delivery.to_index);
    EXPECT_EQ(decoded.delivery.to_port, frame.delivery.to_port);
    EXPECT_EQ(decoded.delivery.value, frame.delivery.value);
  }
  if (frame.type == FrameType::kDeliveryBatch) {
    ASSERT_EQ(decoded.batch.size(), frame.batch.size());
    for (std::size_t i = 0; i < frame.batch.size(); ++i) {
      EXPECT_EQ(decoded.batch[i].to_index, frame.batch[i].to_index);
      EXPECT_EQ(decoded.batch[i].to_port, frame.batch[i].to_port);
      EXPECT_EQ(decoded.batch[i].value, frame.batch[i].value);
    }
  }
}

TEST(WireRoundTrip, RandomFramesEncodeDecodeIdentically) {
  support::Rng rng(2026);
  std::vector<std::uint8_t> bytes;
  for (int i = 0; i < 2000; ++i) {
    const Frame frame = random_frame(rng);
    encode(frame, bytes);
    ASSERT_EQ(validate_frame(bytes), DecodeStatus::kOk) << "iteration " << i;
    Frame decoded;
    ASSERT_EQ(decode_frame(bytes, decoded), DecodeStatus::kOk)
        << "iteration " << i;
    expect_frames_equal(decoded, frame);
  }
}

TEST(WireRoundTrip, BatchReaderStreamsDeliveriesIdentically) {
  support::Rng rng(2027);
  std::vector<std::uint8_t> bytes;
  for (int i = 0; i < 500; ++i) {
    std::vector<core::Delivery> deliveries(1 + rng.next_below(40));
    for (core::Delivery& d : deliveries) {
      d = random_delivery(rng);
    }
    encode_delivery_batch(rng.next_u64(), rng.next_below(1 << 20),
                          deliveries, bytes);
    BatchReader reader;
    ASSERT_EQ(reader.open(bytes), DecodeStatus::kOk);
    ASSERT_EQ(reader.header().type, FrameType::kDeliveryBatch);
    ASSERT_EQ(reader.remaining(), deliveries.size());
    for (const core::Delivery& want : deliveries) {
      core::Delivery got;
      ASSERT_EQ(reader.next(got), DecodeStatus::kOk);
      EXPECT_EQ(got.to_index, want.to_index);
      EXPECT_EQ(got.to_port, want.to_port);
      EXPECT_EQ(got.value, want.value);
    }
    EXPECT_EQ(reader.remaining(), 0U);
  }
}

TEST(WireRoundTrip, ValueLevelHelpersRoundTripBothVersions) {
  support::Rng rng(7);
  std::vector<std::uint8_t> bytes;
  for (int i = 0; i < 2000; ++i) {
    const event::Value value = random_value(rng);
    bytes.clear();
    encode_value(value, bytes);
    std::size_t cursor = 0;
    event::Value decoded;
    ASSERT_EQ(decode_value(bytes, cursor, decoded), DecodeStatus::kOk);
    EXPECT_EQ(cursor, bytes.size()) << "decoder left trailing bytes";
    EXPECT_EQ(decoded, value);

    bytes.clear();
    encode_value_v1(value, bytes);
    cursor = 0;
    event::Value decoded_v1;
    ASSERT_EQ(decode_value_v1(bytes, cursor, decoded_v1), DecodeStatus::kOk);
    EXPECT_EQ(cursor, bytes.size());
    EXPECT_EQ(decoded_v1, value);

    // The v2 decoder also speaks the v1 tags (they are a prefix of its tag
    // space); the v1 decoder must *reject* the dense tags, not misread.
    cursor = 0;
    event::Value decoded_compat;
    ASSERT_EQ(decode_value(bytes, cursor, decoded_compat), DecodeStatus::kOk);
    EXPECT_EQ(decoded_compat, value);
  }
}

TEST(WireDensity, DenseEncodingIsSmallerOnCommonSmallValues) {
  // The whole point of the v2 value encoding: common small payloads cost a
  // fraction of their v1 size.
  const event::Value small_ints[] = {
      event::Value(0), event::Value(1), event::Value(-1), event::Value(4096)};
  std::vector<std::uint8_t> v1;
  std::vector<std::uint8_t> v2;
  for (const event::Value& value : small_ints) {
    v1.clear();
    v2.clear();
    encode_value_v1(value, v1);
    encode_value(value, v2);
    EXPECT_EQ(v1.size(), 9U);
    EXPECT_LE(v2.size(), 3U) << value.to_string();
  }
  v1.clear();
  v2.clear();
  const event::Value text(std::string("alert"));
  encode_value_v1(text, v1);
  encode_value(text, v2);
  EXPECT_EQ(v1.size(), 1U + 4U + 5U);
  EXPECT_EQ(v2.size(), 1U + 1U + 5U);
}

TEST(WireDensity, BatchAmortizesTheFrameHeader) {
  // 64 single-delivery frames vs one 64-delivery batch over typical small
  // payloads: the batch must cut total bytes by well over half.
  support::Rng rng(31);
  std::vector<core::Delivery> deliveries(64);
  std::uint32_t index = 5;
  for (core::Delivery& d : deliveries) {
    index += static_cast<std::uint32_t>(rng.next_below(4));
    d.to_index = index;
    d.to_port = static_cast<graph::Port>(rng.next_below(4));
    d.value = event::Value(static_cast<std::int64_t>(rng.next_below(1000)));
  }
  std::size_t single_total = 0;
  std::vector<std::uint8_t> bytes;
  for (const core::Delivery& d : deliveries) {
    encode_delivery_v1(7, 3, d, bytes);
    single_total += bytes.size();
  }
  encode_delivery_batch(7, 3, deliveries, bytes);
  EXPECT_LT(bytes.size() * 2, single_total)
      << "batch " << bytes.size() << "B vs singles " << single_total << "B";
  // Per-delivery framing cost (everything except the value payload) must
  // be a few bytes, not 21+.
  const std::size_t value_bytes = [&deliveries] {
    std::vector<std::uint8_t> tmp;
    std::size_t total = 0;
    for (const core::Delivery& d : deliveries) {
      tmp.clear();
      encode_value(d.value, tmp);
      total += tmp.size();
    }
    return total;
  }();
  const std::size_t framing = bytes.size() - value_bytes;
  EXPECT_LE(framing, kHeaderBytes + 1 + 4 * deliveries.size())
      << "framing overhead " << framing << "B for " << deliveries.size()
      << " deliveries";
}

TEST(WireRejection, EveryStrictPrefixOfAValidFrameIsRejected) {
  support::Rng rng(11);
  std::vector<std::uint8_t> bytes;
  for (int i = 0; i < 120; ++i) {
    const Frame frame = random_frame(rng);
    encode(frame, bytes);
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
      const std::span<const std::uint8_t> prefix(bytes.data(), cut);
      Frame decoded;
      EXPECT_NE(decode_frame(prefix, decoded), DecodeStatus::kOk)
          << "prefix of " << cut << "/" << bytes.size()
          << " bytes decoded as a whole frame";
      EXPECT_NE(validate_frame(prefix), DecodeStatus::kOk);
    }
  }
}

TEST(WireRejection, TrailingBytesAreRejected) {
  support::Rng rng(13);
  std::vector<std::uint8_t> bytes;
  for (int i = 0; i < 200; ++i) {
    encode(random_frame(rng), bytes);
    bytes.push_back(0);
    Frame decoded;
    EXPECT_EQ(decode_frame(bytes, decoded), DecodeStatus::kTrailingBytes);
    EXPECT_EQ(validate_frame(bytes), DecodeStatus::kTrailingBytes);
  }
}

TEST(WireRejection, SingleByteCorruptionNeverCrashesAndValidateAgrees) {
  support::Rng rng(17);
  std::vector<std::uint8_t> bytes;
  std::vector<std::uint8_t> corrupted;
  std::uint64_t rejected = 0;
  std::uint64_t still_decoded = 0;
  for (int i = 0; i < 400; ++i) {
    encode(random_frame(rng), bytes);
    for (int flip = 0; flip < 8; ++flip) {
      corrupted = bytes;
      const std::size_t at = rng.next_below(corrupted.size());
      corrupted[at] ^= static_cast<std::uint8_t>(1 + rng.next_below(255));
      Frame decoded;
      // Either outcome is fine — payload bits carry no checksum — but the
      // decode must stay in bounds (ASan/UBSan enforce that part), and the
      // readers' allocation-free validate must agree with the real decode.
      const DecodeStatus status = decode_frame(corrupted, decoded);
      EXPECT_EQ(validate_frame(corrupted), status);
      if (status == DecodeStatus::kOk) {
        ++still_decoded;
      } else {
        ++rejected;
      }
    }
  }
  // Corrupting magic/version/type/length bytes must reject; corrupting
  // payload bits usually survives. Both branches need real coverage.
  EXPECT_GT(rejected, 0U);
  EXPECT_GT(still_decoded, 0U);
}

TEST(WireRejection, RandomGarbageNeverCrashesAndValidateAgrees) {
  support::Rng rng(23);
  std::vector<std::uint8_t> garbage;
  for (int i = 0; i < 2000; ++i) {
    garbage.resize(rng.next_below(96));
    for (std::uint8_t& b : garbage) {
      b = static_cast<std::uint8_t>(rng.next_below(256));
    }
    Frame decoded;
    EXPECT_EQ(validate_frame(garbage), decode_frame(garbage, decoded));
  }
}

TEST(WireRejection, CorruptedLengthFieldCannotTriggerGiantAllocation) {
  // A delivery carrying a long (v1-form, u32 length) string whose length
  // field is corrupted to a huge value: the decoder must reject before
  // allocating (kTruncated), because the claimed length exceeds the
  // remaining bytes.
  core::Delivery delivery;
  delivery.to_index = 9;
  delivery.to_port = 1;
  delivery.value = event::Value(std::string(300, 'a'));
  std::vector<std::uint8_t> bytes;
  encode_delivery(5, 3, delivery, bytes);
  // Header (21) + to_index (4) + to_port (2) + tag (1) => length at 28.
  const std::size_t length_at = 28;
  ASSERT_LT(length_at + 3, bytes.size());
  ASSERT_EQ(bytes[length_at - 1],
            static_cast<std::uint8_t>(event::Value::Kind::kString));
  bytes[length_at + 0] = 0xff;
  bytes[length_at + 1] = 0xff;
  bytes[length_at + 2] = 0xff;
  bytes[length_at + 3] = 0x7f;
  Frame decoded;
  EXPECT_EQ(decode_frame(bytes, decoded), DecodeStatus::kTruncated);

  // Same for a vector count (varint in v2: saturate the count bytes).
  delivery.value = event::Value(std::vector<double>{1.0, 2.0});
  encode_delivery(6, 3, delivery, bytes);
  std::vector<std::uint8_t> huge_count(bytes.begin(), bytes.begin() + 28);
  for (int i = 0; i < 9; ++i) {
    huge_count.push_back(0xff);  // varint continuation bytes
  }
  huge_count.push_back(0x01);
  EXPECT_EQ(decode_frame(huge_count, decoded), DecodeStatus::kTruncated);
}

TEST(WireRejection, CorruptedBatchCountCannotTriggerGiantAllocation) {
  // A batch frame whose count varint is corrupted to a value the remaining
  // bytes cannot possibly hold must be rejected before any reserve() —
  // each delivery occupies at least 3 payload bytes.
  std::vector<core::Delivery> deliveries(4);
  for (std::size_t i = 0; i < deliveries.size(); ++i) {
    deliveries[i].to_index = static_cast<std::uint32_t>(10 + i);
    deliveries[i].to_port = 0;
    deliveries[i].value = event::Value(static_cast<std::int64_t>(i));
  }
  std::vector<std::uint8_t> bytes;
  encode_delivery_batch(1, 2, deliveries, bytes);
  // The count varint sits immediately after the header; 4 fits one byte.
  ASSERT_EQ(bytes[kHeaderBytes], 4);
  // Splice in a 5-byte varint claiming ~2^31 deliveries.
  std::vector<std::uint8_t> corrupted(bytes.begin(),
                                      bytes.begin() + kHeaderBytes);
  corrupted.insert(corrupted.end(), {0xff, 0xff, 0xff, 0xff, 0x07});
  corrupted.insert(corrupted.end(), bytes.begin() + kHeaderBytes + 1,
                   bytes.end());
  Frame decoded;
  EXPECT_EQ(decode_frame(corrupted, decoded), DecodeStatus::kTruncated);
  EXPECT_EQ(validate_frame(corrupted), DecodeStatus::kTruncated);
  BatchReader reader;
  EXPECT_EQ(reader.open(corrupted), DecodeStatus::kTruncated);

  // An explicitly empty batch is structurally invalid (the encoder never
  // emits one), not a silent no-op.
  std::vector<std::uint8_t> empty_batch(bytes.begin(),
                                        bytes.begin() + kHeaderBytes);
  empty_batch.push_back(0);
  EXPECT_EQ(decode_frame(empty_batch, decoded), DecodeStatus::kBadPayload);
}

TEST(WireVersioning, CrossVersionFramesAreRejectedCleanly) {
  support::Rng rng(29);
  std::vector<std::uint8_t> v2_bytes;
  std::vector<std::uint8_t> v1_bytes;
  for (int i = 0; i < 200; ++i) {
    // v1 receiver (decode_frame_v1) must reject every v2 frame.
    const Frame frame = random_frame(rng);
    encode(frame, v2_bytes);
    Frame decoded;
    EXPECT_EQ(decode_frame_v1(v2_bytes, decoded), DecodeStatus::kBadVersion);

    // v2 receiver must reject every v1 frame the same way.
    if (frame.type == FrameType::kDelivery) {
      encode_delivery_v1(frame.seq, frame.phase, frame.delivery, v1_bytes);
    } else {
      encode_watermark_v1(frame.seq, frame.phase, v1_bytes);
    }
    EXPECT_EQ(decode_frame(v1_bytes, decoded), DecodeStatus::kBadVersion);
    EXPECT_EQ(validate_frame(v1_bytes), DecodeStatus::kBadVersion);
    BatchReader reader;
    EXPECT_EQ(reader.open(v1_bytes), DecodeStatus::kBadVersion);
  }
}

TEST(WireVersioning, V1FixtureStillRoundTripsItsOwnFrames) {
  // The v1 path survives as a decode-compat fixture: its own frames must
  // keep round-tripping exactly, and a batch frame type byte inside a v1
  // frame is an unknown type to the v1 decoder.
  support::Rng rng(37);
  std::vector<std::uint8_t> bytes;
  for (int i = 0; i < 500; ++i) {
    Frame frame;
    frame.seq = rng.next_u64();
    frame.phase = rng.next_below(1 << 20);
    if (rng.next_bernoulli(0.7)) {
      frame.type = FrameType::kDelivery;
      frame.delivery = random_delivery(rng);
      encode_delivery_v1(frame.seq, frame.phase, frame.delivery, bytes);
    } else {
      frame.type = FrameType::kWatermark;
      encode_watermark_v1(frame.seq, frame.phase, bytes);
    }
    Frame decoded;
    ASSERT_EQ(decode_frame_v1(bytes, decoded), DecodeStatus::kOk);
    expect_frames_equal(decoded, frame);
  }

  encode_watermark_v1(1, 2, bytes);
  bytes[4] = static_cast<std::uint8_t>(FrameType::kDeliveryBatch);
  Frame decoded;
  EXPECT_EQ(decode_frame_v1(bytes, decoded), DecodeStatus::kBadFrameType);
}

TEST(WireRejection, WrongMagicVersionAndTypeAreDistinguished) {
  std::vector<std::uint8_t> bytes;
  encode_watermark(1, 2, bytes);
  {
    auto copy = bytes;
    copy[0] = 'X';
    Frame f;
    EXPECT_EQ(decode_frame(copy, f), DecodeStatus::kBadMagic);
  }
  {
    auto copy = bytes;
    copy[3] = kVersion + 1;
    Frame f;
    EXPECT_EQ(decode_frame(copy, f), DecodeStatus::kBadVersion);
  }
  {
    auto copy = bytes;
    copy[4] = 0x7e;  // not a FrameType
    Frame f;
    EXPECT_EQ(decode_frame(copy, f), DecodeStatus::kBadFrameType);
  }
  {
    std::vector<std::uint8_t> oversized(kMaxFrameBytes + 1, 0);
    Frame f;
    EXPECT_EQ(decode_frame(oversized, f), DecodeStatus::kOversized);
    EXPECT_EQ(validate_frame(oversized), DecodeStatus::kOversized);
  }
}

}  // namespace
}  // namespace df::distrib::wire
