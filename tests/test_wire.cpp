// Wire-format round-trip and rejection fuzzing (distrib/wire.hpp).
//
// Three properties, all meant to run under ASan/UBSan in CI:
//   * every frame the encoder can produce decodes back to an identical
//     frame (encode -> decode identity over randomized deliveries and
//     watermarks, covering every Value kind including adversarial string
//     bytes and empty/large vectors);
//   * every strict prefix of a valid encoding is rejected (no partial
//     frame ever half-applies);
//   * arbitrary single-byte corruption and pure random bytes never crash
//     or read out of bounds — they either decode to *something* (payload
//     bits are not checksummed) or return a DecodeStatus, but length
//     fields can never trigger giant allocations or overreads.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "distrib/wire.hpp"
#include "support/rng.hpp"

namespace df::distrib::wire {
namespace {

event::Value random_value(support::Rng& rng) {
  switch (rng.next_below(7)) {
    case 0:
      return event::Value();
    case 1:
      return event::Value(rng.next_bernoulli(0.5));
    case 2:
      return event::Value(static_cast<std::int64_t>(rng.next_u64()));
    case 3:
      return event::Value(rng.next_normal() * 1e12);
    case 4: {
      // Strings with arbitrary bytes: NULs, high bits, no terminator help.
      std::string text;
      const std::size_t length = rng.next_below(64);
      for (std::size_t i = 0; i < length; ++i) {
        text.push_back(static_cast<char>(rng.next_below(256)));
      }
      return event::Value(std::move(text));
    }
    case 5: {
      std::vector<double> values(rng.next_below(32));
      for (double& v : values) {
        v = rng.next_normal();
      }
      return event::Value(std::move(values));
    }
    default:
      return event::Value(rng.next_double());
  }
}

Frame random_frame(support::Rng& rng) {
  Frame frame;
  frame.seq = rng.next_u64();
  frame.phase = rng.next_below(1 << 20);
  if (rng.next_bernoulli(0.7)) {
    frame.type = FrameType::kDelivery;
    frame.delivery.to_index = static_cast<std::uint32_t>(rng.next_u64());
    frame.delivery.to_port =
        static_cast<graph::Port>(rng.next_below(1 << 16));
    frame.delivery.value = random_value(rng);
  } else {
    frame.type = FrameType::kWatermark;
  }
  return frame;
}

void encode(const Frame& frame, std::vector<std::uint8_t>& out) {
  if (frame.type == FrameType::kDelivery) {
    encode_delivery(frame.seq, frame.phase, frame.delivery, out);
  } else {
    encode_watermark(frame.seq, frame.phase, out);
  }
}

TEST(WireRoundTrip, RandomFramesEncodeDecodeIdentically) {
  support::Rng rng(2026);
  std::vector<std::uint8_t> bytes;
  for (int i = 0; i < 2000; ++i) {
    const Frame frame = random_frame(rng);
    encode(frame, bytes);
    Frame decoded;
    ASSERT_EQ(decode_frame(bytes, decoded), DecodeStatus::kOk)
        << "iteration " << i;
    EXPECT_EQ(decoded.type, frame.type);
    EXPECT_EQ(decoded.seq, frame.seq);
    EXPECT_EQ(decoded.phase, frame.phase);
    if (frame.type == FrameType::kDelivery) {
      EXPECT_EQ(decoded.delivery.to_index, frame.delivery.to_index);
      EXPECT_EQ(decoded.delivery.to_port, frame.delivery.to_port);
      EXPECT_EQ(decoded.delivery.value, frame.delivery.value);
    }
  }
}

TEST(WireRoundTrip, ValueLevelHelpersRoundTrip) {
  support::Rng rng(7);
  std::vector<std::uint8_t> bytes;
  for (int i = 0; i < 2000; ++i) {
    const event::Value value = random_value(rng);
    bytes.clear();
    encode_value(value, bytes);
    std::size_t cursor = 0;
    event::Value decoded;
    ASSERT_EQ(decode_value(bytes, cursor, decoded), DecodeStatus::kOk);
    EXPECT_EQ(cursor, bytes.size()) << "decoder left trailing bytes";
    EXPECT_EQ(decoded, value);
  }
}

TEST(WireRejection, EveryStrictPrefixOfAValidFrameIsRejected) {
  support::Rng rng(11);
  std::vector<std::uint8_t> bytes;
  for (int i = 0; i < 200; ++i) {
    const Frame frame = random_frame(rng);
    encode(frame, bytes);
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
      Frame decoded;
      const DecodeStatus status = decode_frame(
          std::span<const std::uint8_t>(bytes.data(), cut), decoded);
      EXPECT_NE(status, DecodeStatus::kOk)
          << "prefix of " << cut << "/" << bytes.size()
          << " bytes decoded as a whole frame";
    }
  }
}

TEST(WireRejection, TrailingBytesAreRejected) {
  support::Rng rng(13);
  std::vector<std::uint8_t> bytes;
  for (int i = 0; i < 200; ++i) {
    encode(random_frame(rng), bytes);
    bytes.push_back(0);
    Frame decoded;
    EXPECT_EQ(decode_frame(bytes, decoded), DecodeStatus::kTrailingBytes);
  }
}

TEST(WireRejection, SingleByteCorruptionNeverCrashes) {
  support::Rng rng(17);
  std::vector<std::uint8_t> bytes;
  std::vector<std::uint8_t> corrupted;
  std::uint64_t rejected = 0;
  std::uint64_t still_decoded = 0;
  for (int i = 0; i < 400; ++i) {
    encode(random_frame(rng), bytes);
    for (int flip = 0; flip < 8; ++flip) {
      corrupted = bytes;
      const std::size_t at = rng.next_below(corrupted.size());
      corrupted[at] ^= static_cast<std::uint8_t>(1 + rng.next_below(255));
      Frame decoded;
      // Either outcome is fine — payload bits carry no checksum — but the
      // decode must stay in bounds (ASan/UBSan enforce that part).
      if (decode_frame(corrupted, decoded) == DecodeStatus::kOk) {
        ++still_decoded;
      } else {
        ++rejected;
      }
    }
  }
  // Corrupting magic/version/type/length bytes must reject; corrupting
  // payload bits usually survives. Both branches need real coverage.
  EXPECT_GT(rejected, 0U);
  EXPECT_GT(still_decoded, 0U);
}

TEST(WireRejection, RandomGarbageNeverCrashes) {
  support::Rng rng(23);
  std::vector<std::uint8_t> garbage;
  for (int i = 0; i < 2000; ++i) {
    garbage.resize(rng.next_below(96));
    for (std::uint8_t& b : garbage) {
      b = static_cast<std::uint8_t>(rng.next_below(256));
    }
    Frame decoded;
    decode_frame(garbage, decoded);  // status irrelevant; must not crash
  }
}

TEST(WireRejection, CorruptedLengthFieldCannotTriggerGiantAllocation) {
  // A delivery carrying a string whose length field is corrupted to a huge
  // value: the decoder must reject before allocating (kTruncated), because
  // the claimed length exceeds the remaining bytes.
  core::Delivery delivery;
  delivery.to_index = 9;
  delivery.to_port = 1;
  delivery.value = event::Value(std::string("abcdef"));
  std::vector<std::uint8_t> bytes;
  encode_delivery(5, 3, delivery, bytes);
  // Header (21) + to_index (4) + to_port (2) + tag (1) => length at 28.
  const std::size_t length_at = 28;
  ASSERT_LT(length_at + 3, bytes.size());
  bytes[length_at + 0] = 0xff;
  bytes[length_at + 1] = 0xff;
  bytes[length_at + 2] = 0xff;
  bytes[length_at + 3] = 0x7f;
  Frame decoded;
  EXPECT_EQ(decode_frame(bytes, decoded), DecodeStatus::kTruncated);

  // Same for a vector count.
  delivery.value = event::Value(std::vector<double>{1.0, 2.0});
  encode_delivery(6, 3, delivery, bytes);
  bytes[length_at + 0] = 0xff;
  bytes[length_at + 1] = 0xff;
  bytes[length_at + 2] = 0xff;
  bytes[length_at + 3] = 0x7f;
  Frame decoded2;
  EXPECT_EQ(decode_frame(bytes, decoded2), DecodeStatus::kTruncated);
}

TEST(WireRejection, WrongMagicVersionAndTypeAreDistinguished) {
  std::vector<std::uint8_t> bytes;
  encode_watermark(1, 2, bytes);
  {
    auto copy = bytes;
    copy[0] = 'X';
    Frame f;
    EXPECT_EQ(decode_frame(copy, f), DecodeStatus::kBadMagic);
  }
  {
    auto copy = bytes;
    copy[3] = kVersion + 1;
    Frame f;
    EXPECT_EQ(decode_frame(copy, f), DecodeStatus::kBadVersion);
  }
  {
    auto copy = bytes;
    copy[4] = 0x7e;  // not a FrameType
    Frame f;
    EXPECT_EQ(decode_frame(copy, f), DecodeStatus::kBadFrameType);
  }
  {
    std::vector<std::uint8_t> oversized(kMaxFrameBytes + 1, 0);
    Frame f;
    EXPECT_EQ(decode_frame(oversized, f), DecodeStatus::kOversized);
  }
}

}  // namespace
}  // namespace df::distrib::wire
