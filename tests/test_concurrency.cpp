// Unit and stress tests for the concurrency substrate: blocking MPMC queue
// (the paper's run queue), thread pool, SPSC ring, sharded counters.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <numeric>
#include <optional>
#include <set>
#include <thread>
#include <vector>

#include "concurrency/blocking_queue.hpp"
#include "concurrency/sharded_counter.hpp"
#include "concurrency/spsc_ring.hpp"
#include "concurrency/thread_pool.hpp"
#include "support/check.hpp"
#include "support/stopwatch.hpp"

namespace df::conc {
namespace {

TEST(BlockingQueue, FifoOrder) {
  BlockingQueue<int> queue;
  queue.push(1);
  queue.push(2);
  queue.push(3);
  EXPECT_EQ(queue.pop(), 1);
  EXPECT_EQ(queue.pop(), 2);
  EXPECT_EQ(queue.pop(), 3);
}

TEST(BlockingQueue, TryPopOnEmpty) {
  BlockingQueue<int> queue;
  EXPECT_FALSE(queue.try_pop().has_value());
}

TEST(BlockingQueue, BoundedTryPush) {
  BlockingQueue<int> queue(2);
  EXPECT_TRUE(queue.try_push(1));
  EXPECT_TRUE(queue.try_push(2));
  EXPECT_FALSE(queue.try_push(3));  // full
  EXPECT_EQ(queue.size(), 2U);
}

TEST(BlockingQueue, CloseWakesBlockedPopper) {
  BlockingQueue<int> queue;
  std::optional<int> result = 42;
  std::thread popper([&] { result = queue.pop(); });
  queue.close();
  popper.join();
  EXPECT_FALSE(result.has_value());
}

TEST(BlockingQueue, CloseDrainsRemainingItems) {
  BlockingQueue<int> queue;
  queue.push(7);
  queue.push(8);
  queue.close();
  EXPECT_FALSE(queue.push(9));  // rejected after close
  EXPECT_EQ(queue.pop(), 7);
  EXPECT_EQ(queue.pop(), 8);
  EXPECT_FALSE(queue.pop().has_value());
  EXPECT_TRUE(queue.closed());
}

TEST(BlockingQueue, PopBlocksUntilPush) {
  BlockingQueue<int> queue;
  std::optional<int> got;
  std::thread popper([&] { got = queue.pop(); });
  queue.push(99);
  popper.join();
  EXPECT_EQ(got, 99);
}

// The paper's requirement: "each item on the queue is dequeued at most
// once". MPMC stress: many producers, many consumers, every item exactly
// once.
TEST(BlockingQueue, MpmcExactlyOnceStress) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 2000;
  BlockingQueue<int> queue;
  std::array<std::atomic<int>, kProducers * kPerProducer> seen{};

  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (auto item = queue.pop()) {
        seen[static_cast<std::size_t>(*item)].fetch_add(1);
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        queue.push(p * kPerProducer + i);
      }
    });
  }
  for (auto& t : producers) {
    t.join();
  }
  queue.close();
  for (auto& t : consumers) {
    t.join();
  }
  for (const auto& count : seen) {
    ASSERT_EQ(count.load(), 1);
  }
}

// Wakeup-audit hammer: many idle consumers, a producer feeding single-item
// batches through push_all (the engine's common case — a chain graph drains
// one ready pair per transition). The producer waits for the queue to drain
// between bursts, so an under-wake cannot hide behind close()'s
// notify_all: if a batch's wakeups are insufficient, the queue never
// empties and the test hangs rather than passes.
TEST(BlockingQueue, SingleItemBatchesWakeIdleConsumersStress) {
  constexpr int kConsumers = 6;
  constexpr int kBursts = 400;
  constexpr int kPerBurst = 8;
  BlockingQueue<int> queue;
  std::atomic<int> consumed{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (queue.pop()) {
        consumed.fetch_add(1);
      }
    });
  }
  std::vector<int> batch;
  for (int b = 0; b < kBursts; ++b) {
    for (int i = 0; i < kPerBurst; ++i) {
      batch.assign(1, b * kPerBurst + i);  // batches of exactly one
      ASSERT_TRUE(queue.push_all(batch));
    }
    while (consumed.load() < (b + 1) * kPerBurst) {
      std::this_thread::yield();  // hangs here on a lost wakeup
    }
  }
  queue.close();
  for (auto& t : consumers) {
    t.join();
  }
  EXPECT_EQ(consumed.load(), kBursts * kPerBurst);
}

// The lost wakeup the audit actually found: producers blocked in push_all
// wait for *batch-sized* room, so their predicates are heterogeneous. A
// notify_one on the consumer side could wake a large-batch producer that
// goes straight back to sleep while a small-batch producer that now fits
// sleeps forever; with consumers draining the queue empty afterwards,
// nobody signals again — deadlock. This hammers a small bounded queue with
// mixed batch sizes; the old code deadlocks here within a few rounds.
TEST(BlockingQueue, HeterogeneousBatchPushersDoNotLoseWakeups) {
  constexpr std::size_t kCapacity = 8;
  constexpr int kRounds = 500;
  BlockingQueue<int> queue(kCapacity);
  const std::size_t sizes[] = {7, 1, 5, 2};
  std::atomic<int> produced{0};
  std::atomic<int> consumed{0};

  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < std::size(sizes); ++p) {
    producers.emplace_back([&, p] {
      std::vector<int> batch;
      for (int r = 0; r < kRounds; ++r) {
        batch.assign(sizes[p], static_cast<int>(p));
        ASSERT_TRUE(queue.push_all(batch));
        produced.fetch_add(static_cast<int>(sizes[p]));
      }
    });
  }
  const int total = kRounds * static_cast<int>(7 + 1 + 5 + 2);
  std::vector<std::thread> consumers;
  for (int c = 0; c < 2; ++c) {
    consumers.emplace_back([&] {
      while (queue.pop()) {
        consumed.fetch_add(1);
      }
    });
  }
  for (auto& t : producers) {
    t.join();
  }
  queue.close();
  for (auto& t : consumers) {
    t.join();
  }
  EXPECT_EQ(produced.load(), total);
  EXPECT_EQ(consumed.load(), total);
}

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, RunOnAllPassesDistinctIndices) {
  ThreadPool pool(4);
  std::array<std::atomic<int>, 4> hits{};
  pool.run_on_all([&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, RejectsZeroWorkers) {
  EXPECT_THROW(ThreadPool(0), support::check_error);
}

TEST(ThreadPool, WaitIdleWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();
  SUCCEED();
}

TEST(ParallelForThreads, RunsEachIndexOnce) {
  std::array<std::atomic<int>, 8> hits{};
  parallel_for_threads(8, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(SpscRing, CapacityMustBePowerOfTwo) {
  EXPECT_THROW(SpscRing<int>(3), support::check_error);
  EXPECT_THROW(SpscRing<int>(1), support::check_error);
  SpscRing<int> ok(8);
  EXPECT_EQ(ok.capacity(), 8U);
}

TEST(SpscRing, FifoAndFullness) {
  SpscRing<int> ring(4);
  EXPECT_TRUE(ring.empty());
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(ring.push(i));
  }
  EXPECT_FALSE(ring.push(99));  // full
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(ring.pop(), i);
  }
  EXPECT_FALSE(ring.pop().has_value());
}

TEST(SpscRing, ConcurrentProducerConsumer) {
  constexpr int kItems = 100000;
  SpscRing<int> ring(1024);
  std::vector<int> received;
  received.reserve(kItems);
  std::thread consumer([&] {
    while (received.size() < kItems) {
      if (auto item = ring.pop()) {
        received.push_back(*item);
      }
    }
  });
  for (int i = 0; i < kItems; ++i) {
    while (!ring.push(i)) {
    }
  }
  consumer.join();
  for (int i = 0; i < kItems; ++i) {
    ASSERT_EQ(received[static_cast<std::size_t>(i)], i);
  }
}

TEST(SpscRing, TryPushKeepsItemOnFullRing) {
  SpscRing<std::vector<int>> ring(2);
  std::vector<int> payload = {1, 2, 3};
  std::vector<int> a = payload;
  std::vector<int> b = payload;
  std::vector<int> c = payload;
  EXPECT_TRUE(ring.try_push(a));
  EXPECT_TRUE(ring.try_push(b));
  EXPECT_FALSE(ring.try_push(c));
  // Failure must leave the caller's item intact for a fallback path.
  EXPECT_EQ(c, payload);
}

TEST(SpscRing, DrainConsumesEverythingVisible) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 5; ++i) {
    ring.push(i);
  }
  std::vector<int> got;
  EXPECT_EQ(ring.drain([&](int&& v) { got.push_back(v); }), 5U);
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.drain([&](int&&) { FAIL(); }), 0U);
}

// Consumer-role migration: the drain side hops between threads with an
// acquire/release flag handoff, exactly how the engine's draining_ flag
// serializes staging-ring consumers. Run under TSan to validate the
// ordering contract documented in spsc_ring.hpp.
TEST(SpscRing, ConsumerRoleMigratesAcrossThreadsWithHandoff) {
  constexpr int kItems = 50000;
  SpscRing<int> ring(256);
  std::atomic<bool> draining{false};  // the engine's drain-flag handoff
  std::atomic<int> drained{0};
  std::vector<std::atomic<char>> seen(kItems);

  const auto consumer = [&] {
    while (drained.load() < kItems) {
      if (draining.exchange(true)) {
        std::this_thread::yield();  // other side holds the drain
        continue;
      }
      // Winning the exchange is the handoff; announce it to the debug-only
      // owner check before consuming (mirrors Engine::drain_staged).
      ring.adopt_consumer();
      const std::size_t n = ring.drain([&](int&& v) {
        seen[static_cast<std::size_t>(v)].fetch_add(1);
      });
      drained.fetch_add(static_cast<int>(n));
      draining.store(false);
    }
  };
  std::thread a(consumer);
  std::thread b(consumer);
  for (int i = 0; i < kItems; ++i) {
    while (!ring.push(i)) {
      std::this_thread::yield();
    }
  }
  a.join();
  b.join();
  for (int i = 0; i < kItems; ++i) {
    ASSERT_EQ(seen[static_cast<std::size_t>(i)].load(), 1) << "item " << i;
  }
}

TEST(ShardedCounter, SumsAcrossThreads) {
  ShardedCounter counter;
  parallel_for_threads(8, [&](std::size_t) {
    for (int i = 0; i < 10000; ++i) {
      counter.add();
    }
  });
  EXPECT_EQ(counter.value(), 80000U);
  counter.reset();
  EXPECT_EQ(counter.value(), 0U);
}

TEST(ScopedNanoTimer, AccumulatesElapsedTime) {
  ShardedCounter sink;
  {
    ScopedNanoTimer timer(sink);
    support::spin_for_ns(1'000'000);
  }
  EXPECT_GE(sink.value(), 1'000'000U);
}

}  // namespace
}  // namespace df::conc
