// The randomized Δ-program corpus shared by the differential suites
// (test_serializability.cpp for the parallel engine, test_transport.cpp for
// the partitioned transport): a random DAG whose sources are a mix of
// chatty and sparse generators and whose interior vertices are a mix of
// stateful models, so sink streams exercise every Value kind the executors
// route.
#pragma once

#include <cstdint>
#include <vector>

#include "core/program.hpp"
#include "graph/generators.hpp"
#include "model/detectors.hpp"
#include "model/sources.hpp"
#include "model/stats_models.hpp"
#include "model/synthetic.hpp"
#include "spec/builder.hpp"
#include "support/rng.hpp"

namespace df::testutil {

inline core::Program random_program(std::uint64_t seed) {
  support::Rng rng(seed);
  const graph::Dag shape = graph::random_dag(
      8 + static_cast<std::uint32_t>(seed % 16), 0.3, rng);

  spec::GraphBuilder b;
  std::vector<graph::VertexId> ids;
  for (graph::VertexId v = 0; v < shape.vertex_count(); ++v) {
    const std::size_t fan_in = shape.in_degree(v);
    model::ModuleFactory factory;
    if (fan_in == 0) {
      switch (rng.next_below(4)) {
        case 0:
          factory = model::factory_of<model::CounterSource>();
          break;
        case 1:
          factory = model::factory_of<model::GaussianSource>(5.0, 2.0, 0.7);
          break;
        case 2:
          factory = model::factory_of<model::SparseEventSource>(
              0.15, event::Value(1.0));
          break;
        default:
          factory = model::factory_of<model::RandomWalkSource>(0.0, 1.0, 0.5);
      }
    } else {
      switch (rng.next_below(5)) {
        case 0:
          factory = model::factory_of<model::SumModule>(fan_in);
          break;
        case 1:
          factory = model::factory_of<model::MaxModule>(fan_in);
          break;
        case 2:
          factory =
              model::factory_of<model::BusyWorkModule>(std::uint64_t{0},
                                                       fan_in, 0.8);
          break;
        case 3:
          // (No SnapshotJoin here: its vector output would reach numeric
          // folds downstream in a random topology.)
          factory = model::factory_of<model::MinModule>(fan_in);
          break;
        default:
          factory = model::factory_of<model::MovingAverageModule>(
              std::size_t{4});
      }
    }
    ids.push_back(b.add(shape.name(v), std::move(factory)));
  }
  for (const graph::Edge& e : shape.edges()) {
    b.connect(ids[e.from], e.from_port, ids[e.to], e.to_port);
  }
  return std::move(b).build(seed * 7919 + 13);
}

}  // namespace df::testutil
