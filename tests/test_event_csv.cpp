// Tests for timestamped-event CSV ingestion.
#include <gtest/gtest.h>

#include <sstream>

#include "baseline/sequential.hpp"
#include "core/executor.hpp"
#include "graph/dag.hpp"
#include "model/sources.hpp"
#include "model/stats_models.hpp"
#include "spec/builder.hpp"
#include "spec/event_csv.hpp"
#include "support/check.hpp"

namespace df::spec {
namespace {

graph::Dag sensor_dag() {
  graph::Dag dag;
  dag.add_vertex("flood");
  dag.add_vertex("wind");
  return dag;
}

TEST(EventCsv, ParsesTypedRowsAndHeader) {
  const graph::Dag dag = sensor_dag();
  const auto events = parse_event_csv(
      "timestamp,vertex,port,type,value\n"
      "10,flood,0,double,0.5\n"
      "10,wind,0,int,12\n"
      "# comment line\n"
      "\n"
      "25,flood,0,bool,true\n"
      "30,wind,1,string,gusty\n",
      dag);
  ASSERT_EQ(events.size(), 4U);
  EXPECT_EQ(events[0].timestamp, 10);
  EXPECT_DOUBLE_EQ(events[0].event.value.as_double(), 0.5);
  EXPECT_EQ(events[1].event.vertex, dag.vertex("wind"));
  EXPECT_EQ(events[1].event.value.as_int(), 12);
  EXPECT_TRUE(events[2].event.value.as_bool());
  EXPECT_EQ(events[3].event.port, 1);
  EXPECT_EQ(events[3].event.value.as_string(), "gusty");
}

TEST(EventCsv, RejectsBadRows) {
  const graph::Dag dag = sensor_dag();
  EXPECT_THROW(parse_event_csv("10,flood,0,double\n", dag),
               support::check_error);  // missing field
  EXPECT_THROW(parse_event_csv("10,unknown,0,double,1\n", dag),
               support::check_error);  // unknown vertex
  EXPECT_THROW(parse_event_csv("10,flood,0,widget,1\n", dag),
               support::check_error);  // unknown type
  EXPECT_THROW(parse_event_csv("10,flood,0,int,1.5\n", dag),
               support::check_error);  // bad int
  EXPECT_THROW(
      parse_event_csv("10,flood,0,double,1\n5,flood,0,double,1\n", dag),
      support::check_error);  // decreasing timestamps
}

TEST(EventCsv, AssembleBatchesGroupsEqualTimestamps) {
  const graph::Dag dag = sensor_dag();
  const auto events = parse_event_csv(
      "10,flood,0,double,1\n"
      "10,wind,0,double,2\n"
      "20,flood,0,double,3\n",
      dag);
  const auto batches = assemble_batches(events);
  ASSERT_EQ(batches.size(), 2U);
  EXPECT_EQ(batches[0].size(), 2U);
  EXPECT_EQ(batches[1].size(), 1U);
}

TEST(EventCsv, RoundTripsThroughWriter) {
  const graph::Dag dag = sensor_dag();
  const auto events = parse_event_csv(
      "10,flood,0,double,0.125\n"
      "12,wind,0,int,-3\n"
      "12,wind,1,bool,false\n"
      "15,flood,0,string,high\n",
      dag);
  std::ostringstream out;
  write_event_csv(out, events, dag);
  const auto reparsed = parse_event_csv(out.str(), dag);
  ASSERT_EQ(reparsed.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(reparsed[i].timestamp, events[i].timestamp);
    EXPECT_EQ(reparsed[i].event.vertex, events[i].event.vertex);
    EXPECT_EQ(reparsed[i].event.port, events[i].event.port);
    EXPECT_EQ(reparsed[i].event.value, events[i].event.value);
  }
}

TEST(EventCsv, DrivesAnExecutorEndToEnd) {
  spec::GraphBuilder b;
  const auto sensor =
      b.add("sensor", model::factory_of<model::ExternalPassthroughSource>());
  const auto avg = b.add(
      "avg", model::factory_of<model::MovingAverageModule>(std::size_t{2}));
  b.connect(sensor, avg);
  const core::Program program = std::move(b).build(1);

  const auto events = parse_event_csv(
      "100,sensor,0,double,2\n"
      "200,sensor,0,double,4\n"
      "300,sensor,0,double,6\n",
      program.dag);
  core::VectorFeed feed(assemble_batches(events));
  baseline::SequentialExecutor exec(program);
  exec.run(3, &feed);
  const auto records = exec.sinks().canonical();
  ASSERT_EQ(records.size(), 3U);
  EXPECT_DOUBLE_EQ(records[0].value.as_double(), 2.0);
  EXPECT_DOUBLE_EQ(records[1].value.as_double(), 3.0);
  EXPECT_DOUBLE_EQ(records[2].value.as_double(), 5.0);
}

TEST(EventCsv, MissingFileFails) {
  const graph::Dag dag = sensor_dag();
  EXPECT_THROW(load_event_csv_file("/no/such/file.csv", dag),
               support::check_error);
}

}  // namespace
}  // namespace df::spec
