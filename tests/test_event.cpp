// Unit tests for the event substrate: Value, messages, and the
// timestamp-to-phase assembler of paper section 2.
#include <gtest/gtest.h>

#include "event/phase.hpp"
#include "event/value.hpp"
#include "support/check.hpp"

namespace df::event {
namespace {

TEST(Value, DefaultIsEmpty) {
  const Value v;
  EXPECT_TRUE(v.is_empty());
  EXPECT_FALSE(v.is_number());
}

TEST(Value, TypePredicatesAndAccessors) {
  EXPECT_TRUE(Value(true).is_bool());
  EXPECT_TRUE(Value(true).as_bool());
  EXPECT_TRUE(Value(std::int64_t{7}).is_int());
  EXPECT_EQ(Value(std::int64_t{7}).as_int(), 7);
  EXPECT_TRUE(Value(3.5).is_double());
  EXPECT_DOUBLE_EQ(Value(3.5).as_double(), 3.5);
  EXPECT_TRUE(Value("hello").is_string());
  EXPECT_EQ(Value("hello").as_string(), "hello");
  const Value vec(std::vector<double>{1.0, 2.0});
  EXPECT_TRUE(vec.is_vector());
  EXPECT_EQ(vec.as_vector().size(), 2U);
}

TEST(Value, IntLiteralConvenience) {
  const Value v(42);  // int -> int64
  EXPECT_TRUE(v.is_int());
  EXPECT_EQ(v.as_int(), 42);
}

TEST(Value, AsNumberCoercesIntAndDouble) {
  EXPECT_DOUBLE_EQ(Value(std::int64_t{4}).as_number(), 4.0);
  EXPECT_DOUBLE_EQ(Value(2.5).as_number(), 2.5);
  EXPECT_TRUE(Value(std::int64_t{1}).is_number());
  EXPECT_FALSE(Value("x").is_number());
  EXPECT_THROW(Value("x").as_number(), support::check_error);
}

TEST(Value, CheckedAccessorsRejectWrongType) {
  EXPECT_THROW(Value(1.0).as_bool(), support::check_error);
  EXPECT_THROW(Value(true).as_int(), support::check_error);
  EXPECT_THROW(Value(std::int64_t{1}).as_double(), support::check_error);
  EXPECT_THROW(Value(1.0).as_string(), support::check_error);
  EXPECT_THROW(Value(1.0).as_vector(), support::check_error);
}

TEST(Value, EqualityIsTypeAndValueSensitive) {
  EXPECT_EQ(Value(1.0), Value(1.0));
  EXPECT_NE(Value(1.0), Value(std::int64_t{1}));  // double 1.0 != int 1
  EXPECT_NE(Value(true), Value(false));
  EXPECT_EQ(Value("a"), Value(std::string("a")));
  EXPECT_EQ(Value(), Value());
}

TEST(Value, ToStringIsReadable) {
  EXPECT_EQ(Value().to_string(), "<empty>");
  EXPECT_EQ(Value(true).to_string(), "true");
  EXPECT_EQ(Value(std::int64_t{5}).to_string(), "5");
  EXPECT_EQ(Value("hi").to_string(), "\"hi\"");
  EXPECT_EQ(Value(std::vector<double>{1.0, 2.5}).to_string(), "[1, 2.5]");
}

TEST(PhaseAssembler, GroupsEqualTimestamps) {
  PhaseAssembler assembler;
  // Three events at t=10, then one at t=20 closing the first phase.
  EXPECT_FALSE(assembler.feed({10, {0, 0, Value(1.0)}}).has_value());
  EXPECT_FALSE(assembler.feed({10, {1, 0, Value(2.0)}}).has_value());
  EXPECT_FALSE(assembler.feed({10, {0, 1, Value(3.0)}}).has_value());
  const auto batch = assembler.feed({20, {0, 0, Value(4.0)}});
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->phase, 1U);
  EXPECT_EQ(batch->timestamp, 10);
  EXPECT_EQ(batch->events.size(), 3U);
  EXPECT_EQ(assembler.completed_phases(), 1U);
  EXPECT_TRUE(assembler.has_pending());
}

TEST(PhaseAssembler, PhasesAreIndexedSequentially) {
  PhaseAssembler assembler;
  assembler.feed({1, {0, 0, Value(1.0)}});
  const auto p1 = assembler.feed({5, {0, 0, Value(2.0)}});
  const auto p2 = assembler.feed({9, {0, 0, Value(3.0)}});
  ASSERT_TRUE(p1.has_value());
  ASSERT_TRUE(p2.has_value());
  EXPECT_EQ(p1->phase, 1U);
  EXPECT_EQ(p2->phase, 2U);
}

TEST(PhaseAssembler, FlushClosesPendingPhase) {
  PhaseAssembler assembler;
  EXPECT_FALSE(assembler.flush().has_value());  // nothing pending
  assembler.feed({7, {0, 0, Value(1.0)}});
  const auto batch = assembler.flush();
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->phase, 1U);
  EXPECT_FALSE(assembler.has_pending());
  EXPECT_EQ(assembler.completed_phases(), 1U);
}

TEST(PhaseAssembler, RejectsDecreasingTimestamps) {
  PhaseAssembler assembler;
  assembler.feed({10, {0, 0, Value(1.0)}});
  EXPECT_THROW(assembler.feed({9, {0, 0, Value(2.0)}}),
               support::check_error);
}

}  // namespace
}  // namespace df::event
