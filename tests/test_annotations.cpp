// Runtime smoke tests for the annotated concurrency wrappers
// (concurrency/annotations.hpp).
//
// The *static* value of these types — clang's -Wthread-safety proving that
// every DF_GUARDED_BY field is touched under its mutex — is checked by the
// clang CI job, not here. What these tests pin down is that the wrappers
// are faithful stand-ins for the std primitives they replace: locking
// excludes, try_lock contends, UniqueLock's manual unlock/relock works, and
// CondVar wakes waiters under both the raw and predicate overloads. A
// regression here (e.g. a wrapper that forgets to forward to the std
// primitive) would corrupt every component in src/, so the smoke coverage
// is cheap insurance.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "concurrency/annotations.hpp"

namespace df::conc {
namespace {

TEST(Annotations, MutexLockExcludesConcurrentCriticalSections) {
  Mutex mutex;
  int counter = 0;
  std::vector<std::thread> threads;
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        MutexLock lock(mutex);
        ++counter;  // data race iff the lock is not real
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(counter, kThreads * kIters);
}

TEST(Annotations, TryLockFailsWhileHeldElsewhere) {
  Mutex mutex;
  mutex.lock();
  std::thread contender([&] { EXPECT_FALSE(mutex.try_lock()); });
  contender.join();
  mutex.unlock();

  EXPECT_TRUE(mutex.try_lock());
  mutex.unlock();
}

TEST(Annotations, UniqueLockManualUnlockRelock) {
  Mutex mutex;
  UniqueLock lock(mutex);
  EXPECT_TRUE(lock.owns_lock());
  lock.unlock();
  EXPECT_FALSE(lock.owns_lock());
  {
    // The mutex really is free between unlock() and lock().
    MutexLock reentrant(mutex);
  }
  lock.lock();
  EXPECT_TRUE(lock.owns_lock());
}

TEST(Annotations, CondVarWaitWakesOnNotify) {
  Mutex mutex;
  CondVar cv;
  bool ready = false;

  std::thread waiter([&] {
    UniqueLock lock(mutex);
    while (!ready) {
      cv.wait(lock);
    }
  });
  {
    MutexLock lock(mutex);
    ready = true;
  }
  cv.notify_one();
  waiter.join();
  SUCCEED();
}

TEST(Annotations, CondVarPredicateOverloadWakesOnAtomicFlag) {
  // The predicate overload is reserved for unguarded (atomic) state; use it
  // exactly that way here.
  Mutex mutex;
  CondVar cv;
  std::atomic<bool> ready{false};

  std::thread waiter([&] {
    UniqueLock lock(mutex);
    cv.wait(lock, [&] { return ready.load(); });
  });
  ready.store(true);
  {
    MutexLock lock(mutex);
  }
  cv.notify_one();
  waiter.join();
  SUCCEED();
}

}  // namespace
}  // namespace df::conc
