// Tests for CSV export of sink streams.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "baseline/sequential.hpp"
#include "model/sources.hpp"
#include "spec/builder.hpp"
#include "support/check.hpp"
#include "trace/csv.hpp"

namespace df::trace {
namespace {

core::Program mixed_output_program() {
  spec::GraphBuilder b;
  b.add_lambda("emitter", [](model::PhaseContext& ctx) {
    switch (ctx.phase()) {
      case 1:
        ctx.emit(0, event::Value(true));
        break;
      case 2:
        ctx.emit(0, event::Value(std::int64_t{42}));
        break;
      case 3:
        ctx.emit(0, event::Value(2.5));
        break;
      case 4:
        ctx.emit(0, event::Value("say \"hi\""));
        break;
      default:
        ctx.emit(0, event::Value(std::vector<double>{1.0, 2.0}));
    }
  });
  return std::move(b).build(1);
}

TEST(Csv, RendersAllValueTypes) {
  const core::Program program = mixed_output_program();
  baseline::SequentialExecutor exec(program);
  exec.run(5, nullptr);
  const std::string csv = sinks_to_csv(exec.sinks(), program);

  std::istringstream lines(csv);
  std::string line;
  std::getline(lines, line);
  EXPECT_EQ(line, "phase,vertex,name,port,type,value");
  std::getline(lines, line);
  EXPECT_EQ(line, "1,0,\"emitter\",0,bool,true");
  std::getline(lines, line);
  EXPECT_EQ(line, "2,0,\"emitter\",0,int,42");
  std::getline(lines, line);
  EXPECT_EQ(line, "3,0,\"emitter\",0,double,2.5");
  std::getline(lines, line);
  EXPECT_EQ(line, "4,0,\"emitter\",0,string,\"say \"\"hi\"\"\"");
  std::getline(lines, line);
  EXPECT_EQ(line, "5,0,\"emitter\",0,vector,\"1;2\"");
}

TEST(Csv, WritesFile) {
  const core::Program program = mixed_output_program();
  baseline::SequentialExecutor exec(program);
  exec.run(2, nullptr);
  const std::string path = ::testing::TempDir() + "df_csv_test.csv";
  write_sinks_csv_file(path, exec.sinks(), program);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "phase,vertex,name,port,type,value");
  in.close();
  std::remove(path.c_str());
}

TEST(Csv, BadPathFails) {
  const core::Program program = mixed_output_program();
  baseline::SequentialExecutor exec(program);
  exec.run(1, nullptr);
  EXPECT_THROW(
      write_sinks_csv_file("/nonexistent_dir/x.csv", exec.sinks(), program),
      support::check_error);
}

}  // namespace
}  // namespace df::trace
