// Protocol stress for the work-stealing dispatch primitives (PR 9):
// the bounded Chase–Lev deque (concurrency/ws_deque.hpp), the overflow
// injector, the per-worker parker (concurrency/parker.hpp), and the
// composed dispatch layer (core/dispatch.hpp).
//
// These suites are the designated checker for the lock-free protocols the
// static thread-safety analysis cannot express (see the header comments):
// they run under the CI TSan leg via `ctest -L concurrency`. Every stress
// asserts *conservation* — each pushed item is consumed exactly once, by
// exactly one consumer — across the specific races the deque resolves:
// index wraparound over many laps, overflow spilling to the injector, and
// thieves racing the owner's pop for the last element. Payloads carry a
// heap vector on purpose: a double-consume or consume/overwrite race is a
// real use-after-move TSan can see, not a benign torn word.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include "concurrency/parker.hpp"
#include "concurrency/ws_deque.hpp"
#include "core/dispatch.hpp"

namespace df::conc {
namespace {

// Non-trivially-copyable payload modelling Scheduler::ReadyPair: the value
// is duplicated into heap storage so any protocol violation (element read
// or overwritten while another consumer still owns it) is a data race on
// heap memory, and a moved-from double-consume shows up as an empty body.
struct Item {
  std::uint64_t value = 0;
  std::vector<std::uint64_t> body;

  Item() = default;
  explicit Item(std::uint64_t v) : value(v), body{v, ~v} {}
  Item(Item&&) = default;
  Item& operator=(Item&&) = default;
};

std::uint64_t checked_value(const Item& item) {
  EXPECT_EQ(item.body.size(), 2U) << "consumed a moved-from item";
  EXPECT_EQ(item.body[0], item.value);
  EXPECT_EQ(item.body[1], ~item.value);
  return item.value;
}

TEST(WsDeque, OwnerLifoOrderAndManyLapWraparound) {
  WsDeque<Item> deque(8);
  std::uint64_t next = 0;
  // Thousands of laps over an 8-slot buffer: any slot-freeing bug (wrong
  // lap tag) turns into a push refusal or a stale element within one lap.
  for (int round = 0; round < 20000; ++round) {
    const std::size_t burst = 1 + round % 8;
    std::vector<std::uint64_t> pushed;
    for (std::size_t i = 0; i < burst; ++i) {
      Item item(next);
      ASSERT_TRUE(deque.push(item)) << "round " << round << " item " << i;
      pushed.push_back(next++);
    }
    for (std::size_t i = 0; i < burst; ++i) {
      std::optional<Item> item = deque.pop();
      ASSERT_TRUE(item.has_value());
      EXPECT_EQ(checked_value(*item), pushed[burst - 1 - i]) << "LIFO order";
    }
    EXPECT_FALSE(deque.pop().has_value());
  }
}

// Regression for the slot free-marker rule (WsDeque::FreeFor): an interior
// owner pop returns bottom to the popped index, so the *same* absolute
// index is pushed next — if pop freed the slot a lap ahead instead, this
// push would spuriously report full forever (livelock, not a race).
TEST(WsDeque, SlotIsReusableImmediatelyAfterInteriorPop) {
  WsDeque<Item> deque(4);
  for (int round = 0; round < 1000; ++round) {
    for (std::uint64_t v = 0; v < 4; ++v) {
      Item item(v);
      ASSERT_TRUE(deque.push(item));
    }
    Item overflow(99);
    EXPECT_FALSE(deque.push(overflow)) << "full deque must refuse";
    EXPECT_EQ(overflow.value, 99U) << "refused item must stay intact";
    ASSERT_TRUE(deque.pop().has_value());  // interior pop (size 4 -> 3)
    Item again(100);
    EXPECT_TRUE(deque.push(again)) << "slot must be free for the same index";
    while (deque.pop().has_value()) {
    }
  }
}

TEST(WsDeque, StealTakesOldestPopTakesNewest) {
  WsDeque<Item> deque(8);
  for (std::uint64_t v = 0; v < 3; ++v) {
    Item item(v);
    ASSERT_TRUE(deque.push(item));
  }
  std::optional<Item> stolen = deque.steal();
  ASSERT_TRUE(stolen.has_value());
  EXPECT_EQ(checked_value(*stolen), 0U) << "thief takes FIFO";
  std::optional<Item> popped = deque.pop();
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(checked_value(*popped), 2U) << "owner takes LIFO";
}

// The central conservation stress: one owner pushing/popping with spill to
// the injector, several thieves stealing, everyone hammering a deliberately
// tiny deque so wraparound, overflow, and the size-one owner-vs-thief CAS
// race all fire constantly. Every value 0..N-1 must be consumed exactly
// once across all parties.
void run_conservation_stress(std::size_t capacity, std::size_t thieves,
                             std::uint64_t total) {
  WsDeque<Item> deque(capacity);
  Injector<Item> injector;
  std::atomic<bool> done{false};

  std::vector<std::vector<std::uint64_t>> taken(thieves + 1);
  std::vector<std::thread> threads;
  threads.reserve(thieves);
  for (std::size_t t = 0; t < thieves; ++t) {
    threads.emplace_back([&, t] {
      std::vector<std::uint64_t>& mine = taken[t + 1];
      for (;;) {
        if (std::optional<Item> item = deque.steal()) {
          mine.push_back(checked_value(*item));
          continue;
        }
        if (std::optional<Item> item = injector.try_pop()) {
          mine.push_back(checked_value(*item));
          continue;
        }
        if (done.load(std::memory_order_acquire)) {
          // Producer finished: one last sweep of both sources, then out.
          while (std::optional<Item> item = deque.steal()) {
            mine.push_back(checked_value(*item));
          }
          while (std::optional<Item> item = injector.try_pop()) {
            mine.push_back(checked_value(*item));
          }
          return;
        }
      }
    });
  }

  // Owner: bursts of pushes (spilling on refusal), interleaved with own
  // pops — the pop of a size-one deque races the thieves' CAS directly.
  std::vector<std::uint64_t>& own = taken[0];
  std::uint64_t next = 0;
  while (next < total) {
    const std::size_t burst = 1 + next % (capacity + 2);
    for (std::size_t i = 0; i < burst && next < total; ++i) {
      Item item(next);
      if (deque.push(item)) {
        ++next;
      } else {
        ASSERT_TRUE(injector.push(std::move(item)));
        ++next;
      }
    }
    if (next % 3 != 0) {
      if (std::optional<Item> item = deque.pop()) {
        own.push_back(checked_value(*item));
      }
    }
  }
  // Drain what the thieves leave behind, then release them.
  while (std::optional<Item> item = deque.pop()) {
    own.push_back(checked_value(*item));
  }
  done.store(true, std::memory_order_release);
  for (std::thread& thread : threads) {
    thread.join();
  }
  while (std::optional<Item> item = injector.try_pop()) {
    own.push_back(checked_value(*item));
  }

  std::vector<std::uint64_t> all;
  for (const auto& part : taken) {
    all.insert(all.end(), part.begin(), part.end());
  }
  ASSERT_EQ(all.size(), total) << "lost or duplicated items";
  std::sort(all.begin(), all.end());
  for (std::uint64_t v = 0; v < total; ++v) {
    ASSERT_EQ(all[v], v) << "conservation broken at " << v;
  }
}

TEST(WsDeque, MultiThiefConservationTinyDeque) {
  // capacity 4 forces overflow spills and near-permanent size-one races.
  run_conservation_stress(4, 3, 60000);
}

TEST(WsDeque, MultiThiefConservationWraparound) {
  // Larger buffer, more laps of sustained mixed traffic.
  run_conservation_stress(16, 2, 120000);
}

// Ping-pong termination proof for the parker: each round, each side parks
// until the peer's unpark arrives. A single lost wakeup deadlocks the test
// (caught by the ctest timeout); the sticky-permit exchange must carry it
// through every interleaving, including unpark-before-park.
TEST(Parker, PingPongNeverLosesAWakeup) {
  Parker a;
  Parker b;
  constexpr int kRounds = 50000;
  std::thread peer([&] {
    for (int i = 0; i < kRounds; ++i) {
      a.unpark();
      b.park();
    }
  });
  for (int i = 0; i < kRounds; ++i) {
    a.park();
    b.unpark();
  }
  peer.join();
}

TEST(Parker, BankedPermitMakesNextParkImmediate) {
  Parker parker;
  parker.unpark();
  parker.unpark();  // idempotent while banked
  parker.park();    // consumes the permit without blocking
  SUCCEED();
}

TEST(Injector, BatchRoundTripAndClose) {
  Injector<Item> injector;
  std::vector<Item> batch;
  for (std::uint64_t v = 0; v < 40; ++v) {
    batch.emplace_back(v);
  }
  ASSERT_TRUE(injector.push_batch(std::span<Item>(batch)));
  std::vector<Item> out;
  EXPECT_EQ(injector.try_pop_batch(out, 25), 25U);
  EXPECT_EQ(injector.try_pop_batch(out, 100), 15U);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(checked_value(out[i]), i) << "FIFO order";
  }
  injector.close();
  Item late(7);
  EXPECT_FALSE(injector.push(std::move(late)));
  EXPECT_TRUE(injector.empty());
}

// Dispatch-layer conservation: an external producer feeds batches, workers
// consume through the full acquire path (own pop -> inbox -> steal ->
// injector -> park) until close. Tiny deques force the inbox-overflow
// spill; one item per chunk forces maximal cross-lane distribution.
TEST(StealDispatch, ExternalBatchesConservedAcrossWorkers) {
  using Dispatch = df::core::StealDispatch<Item>;
  constexpr std::size_t kWorkers = 4;
  constexpr std::uint64_t kTotal = 40000;
  Dispatch dispatch(kWorkers, /*deque_capacity=*/4, /*chunk=*/1);

  std::vector<std::vector<std::uint64_t>> taken(kWorkers);
  std::vector<std::thread> workers;
  workers.reserve(kWorkers);
  for (std::size_t w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      while (std::optional<Item> item = dispatch.acquire(w, [] {})) {
        taken[w].push_back(checked_value(*item));
      }
    });
  }
  std::vector<Item> batch;
  std::uint64_t next = 0;
  while (next < kTotal) {
    batch.clear();
    const std::uint64_t burst = 1 + next % 13;
    for (std::uint64_t i = 0; i < burst && next < kTotal; ++i) {
      batch.emplace_back(next++);
    }
    ASSERT_TRUE(dispatch.push_batch(batch, Dispatch::kExternalProducer));
  }
  dispatch.close();
  for (std::thread& worker : workers) {
    worker.join();
  }

  std::vector<std::uint64_t> all;
  for (const auto& part : taken) {
    all.insert(all.end(), part.begin(), part.end());
  }
  ASSERT_EQ(all.size(), kTotal);
  std::sort(all.begin(), all.end());
  for (std::uint64_t v = 0; v < kTotal; ++v) {
    ASSERT_EQ(all[v], v);
  }
  const Dispatch::Counters counters = dispatch.counters();
  // Each exiting worker runs at least one empty steal sweep before it
  // observes the close, so the counters must have registered activity.
  EXPECT_GT(counters.steals_ok + counters.steals_empty, 0U);
}

// Workers as producers: each consumed item with budget k > 0 re-enqueues
// two children with budget k - 1 from the consuming worker's own lane
// (exercising owner-push chunks + cross-lane inbox chunks + targeted
// unparks). The consumed total must equal the full binary tree.
TEST(StealDispatch, WorkerProducedTreesConserved) {
  using Dispatch = df::core::StealDispatch<Item>;
  constexpr std::size_t kWorkers = 3;
  constexpr std::uint64_t kDepth = 9;
  constexpr std::uint64_t kSeeds = 8;
  // Item value encodes the remaining budget; total nodes per seed tree of
  // depth d is 2^(d+1) - 1.
  constexpr std::uint64_t kExpected = kSeeds * ((1ULL << (kDepth + 1)) - 1);

  Dispatch dispatch(kWorkers, /*deque_capacity=*/8, /*chunk=*/0);
  std::atomic<std::uint64_t> consumed{0};
  std::vector<std::thread> workers;
  workers.reserve(kWorkers);
  for (std::size_t w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      std::vector<Item> children;
      while (std::optional<Item> item = dispatch.acquire(w, [] {})) {
        const std::uint64_t budget = checked_value(*item);
        if (consumed.fetch_add(1) + 1 == kExpected) {
          // Last node of the last tree: nothing can be in flight anymore
          // (every ancestor was consumed to produce it), so close here.
          dispatch.close();
        }
        if (budget > 0) {
          children.clear();
          children.emplace_back(budget - 1);
          children.emplace_back(budget - 1);
          if (!dispatch.push_batch(children, w)) {
            ADD_FAILURE() << "push rejected before close";
          }
        }
      }
    });
  }
  std::vector<Item> seeds;
  for (std::uint64_t s = 0; s < kSeeds; ++s) {
    seeds.emplace_back(kDepth);
  }
  ASSERT_TRUE(dispatch.push_batch(seeds, Dispatch::kExternalProducer));
  for (std::thread& worker : workers) {
    worker.join();
  }
  EXPECT_EQ(consumed.load(), kExpected);
}

TEST(StealDispatch, CloseRejectsFurtherBatches) {
  using Dispatch = df::core::StealDispatch<Item>;
  Dispatch dispatch(2, 8, 0);
  dispatch.close();
  std::vector<Item> batch;
  batch.emplace_back(1);
  EXPECT_FALSE(dispatch.push_batch(batch, Dispatch::kExternalProducer));
  // Workers see closed + empty and exit immediately.
  EXPECT_FALSE(dispatch.acquire(0, [] {}).has_value());
}

}  // namespace
}  // namespace df::conc
