// Unit tests for strings, CLI flags, tables, check macros and the stopwatch.
#include <gtest/gtest.h>

#include "support/check.hpp"
#include "support/cli.hpp"
#include "support/stopwatch.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace df::support {
namespace {

TEST(Strings, SplitPreservesEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4U);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, TrimBothEnds) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Strings, PrefixSuffix) {
  EXPECT_TRUE(starts_with("deltaflow", "delta"));
  EXPECT_FALSE(starts_with("de", "delta"));
  EXPECT_TRUE(ends_with("deltaflow", "flow"));
  EXPECT_FALSE(ends_with("ow", "flow"));
}

TEST(Strings, ParseIntStrict) {
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int("-7"), -7);
  EXPECT_FALSE(parse_int("42x").has_value());
  EXPECT_FALSE(parse_int("").has_value());
  EXPECT_FALSE(parse_int("4.2").has_value());
}

TEST(Strings, ParseUintRejectsNegative) {
  EXPECT_EQ(parse_uint("42"), 42U);
  EXPECT_FALSE(parse_uint("-1").has_value());
}

TEST(Strings, ParseDoubleStrict) {
  EXPECT_DOUBLE_EQ(*parse_double("3.5"), 3.5);
  EXPECT_DOUBLE_EQ(*parse_double("-1e3"), -1000.0);
  EXPECT_FALSE(parse_double("3.5kg").has_value());
}

TEST(Strings, ParseBoolForms) {
  EXPECT_EQ(parse_bool("true"), true);
  EXPECT_EQ(parse_bool("FALSE"), false);
  EXPECT_EQ(parse_bool("1"), true);
  EXPECT_EQ(parse_bool(" no "), false);
  EXPECT_FALSE(parse_bool("maybe").has_value());
}

TEST(Strings, JoinAndLower) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(to_lower("DeltaFlow"), "deltaflow");
}

TEST(Cli, ParsesAllForms) {
  const char* argv[] = {"prog", "--alpha=3", "--gamma", "positional"};
  CliFlags flags(4, argv);
  EXPECT_EQ(flags.get("alpha", std::int64_t{0}), 3);
  EXPECT_TRUE(flags.get("gamma", false));  // bare flag -> boolean true
  ASSERT_EQ(flags.positional().size(), 1U);
  EXPECT_EQ(flags.positional()[0], "positional");
}

TEST(Cli, DefaultsAndTypes) {
  const char* argv[] = {"prog", "--rate=0.25", "--name=run1"};
  CliFlags flags(3, argv);
  EXPECT_DOUBLE_EQ(flags.get("rate", 0.0), 0.25);
  EXPECT_EQ(flags.get("name", std::string("x")), "run1");
  EXPECT_EQ(flags.get("missing", std::uint64_t{9}), 9U);
  EXPECT_FALSE(flags.has("missing"));
}

TEST(Cli, UnusedFlagsAreReported) {
  const char* argv[] = {"prog", "--used=1", "--typo=2"};
  CliFlags flags(3, argv);
  (void)flags.get("used", std::int64_t{0});
  const auto unused = flags.unused();
  ASSERT_EQ(unused.size(), 1U);
  EXPECT_EQ(unused[0], "typo");
}

TEST(Cli, BadTypeThrows) {
  const char* argv[] = {"prog", "--n=abc"};
  CliFlags flags(2, argv);
  EXPECT_THROW(flags.get("n", std::int64_t{0}), check_error);
}

TEST(Table, RendersAlignedColumns) {
  Table table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"bb", "22.5"});
  const std::string text = table.render();
  EXPECT_NE(text.find("| name"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("22.5"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2U);
}

TEST(Table, RowWidthIsChecked) {
  Table table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), check_error);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(1.5, 3), "1.5");
  EXPECT_EQ(Table::num(2.0, 3), "2");
  EXPECT_EQ(Table::num(0.126, 2), "0.13");
  // 0.125 is exactly representable; iostreams round it half-to-even.
  EXPECT_EQ(Table::num(0.125, 2), "0.12");
  EXPECT_EQ(Table::num(std::uint64_t{42}), "42");
  EXPECT_EQ(Table::num(std::int64_t{-42}), "-42");
}

TEST(Check, ThrowsWithMessage) {
  try {
    DF_CHECK(false, "context ", 42);
    FAIL() << "DF_CHECK did not throw";
  } catch (const check_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("context 42"), std::string::npos);
    EXPECT_NE(what.find("false"), std::string::npos);
  }
}

TEST(Check, PassesSilently) {
  DF_CHECK(1 + 1 == 2);
  SUCCEED();
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch sw;
  const std::uint64_t spun = spin_for_ns(2'000'000);  // 2 ms
  EXPECT_NE(spun, 0U);
  EXPECT_GE(sw.elapsed_ns(), 2'000'000U);
  EXPECT_GT(sw.elapsed_ms(), 1.9);
  sw.restart();
  EXPECT_LT(sw.elapsed_ms(), 2.0);
}

}  // namespace
}  // namespace df::support
