// Unit tests for the deterministic PRNG substrate.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "support/check.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace df::support {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(SplitMix64, DifferentSeedsDiffer) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += a.next() == b.next() ? 1 : 0;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, SameSeedSameStream) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, ForkIsIndependentOfParentConsumption) {
  // Forking derives from current state; two forks with different ids from
  // the same state must differ, and the same id must reproduce.
  Rng parent(11);
  Rng f1 = parent.fork(1);
  Rng f1_again = parent.fork(1);
  Rng f2 = parent.fork(2);
  EXPECT_EQ(f1.next_u64(), f1_again.next_u64());
  EXPECT_NE(f1.next_u64(), f2.next_u64());
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(3);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 60}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowOneIsAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(rng.next_below(1), 0ULL);
  }
}

TEST(Rng, NextIntCoversInclusiveRange) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.next_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7U);  // all 7 values hit with overwhelming odds
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NormalMomentsAreSane) {
  Rng rng(17);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) {
    stats.add(rng.next_normal(5.0, 2.0));
  }
  EXPECT_NEAR(stats.mean(), 5.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(19);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) {
    const double x = rng.next_exponential(4.0);
    EXPECT_GE(x, 0.0);
    stats.add(x);
  }
  EXPECT_NEAR(stats.mean(), 0.25, 0.01);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    hits += rng.next_bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.01);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bernoulli(0.0));
    EXPECT_TRUE(rng.next_bernoulli(1.0));
  }
}

TEST(Rng, PoissonSmallMean) {
  Rng rng(31);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) {
    stats.add(static_cast<double>(rng.next_poisson(3.0)));
  }
  EXPECT_NEAR(stats.mean(), 3.0, 0.1);
  EXPECT_NEAR(stats.variance(), 3.0, 0.2);
}

TEST(Rng, PoissonLargeMeanUsesNormalApproximation) {
  Rng rng(37);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) {
    stats.add(static_cast<double>(rng.next_poisson(200.0)));
  }
  EXPECT_NEAR(stats.mean(), 200.0, 1.0);
}

TEST(Rng, PoissonZeroMean) {
  Rng rng(41);
  EXPECT_EQ(rng.next_poisson(0.0), 0ULL);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(43);
  std::vector<int> items(100);
  for (int i = 0; i < 100; ++i) {
    items[static_cast<std::size_t>(i)] = i;
  }
  auto shuffled = items;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, items);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(HashSeed, StableAndDistinct) {
  EXPECT_EQ(hash_seed("alpha"), hash_seed(std::string("alpha")));
  EXPECT_NE(hash_seed("alpha"), hash_seed("beta"));
  EXPECT_NE(hash_seed(""), hash_seed("a"));
}

TEST(CombineSeeds, OrderSensitive) {
  EXPECT_NE(combine_seeds(1, 2), combine_seeds(2, 1));
  EXPECT_EQ(combine_seeds(1, 2), combine_seeds(1, 2));
}

TEST(Rng, RejectsInvalidArguments) {
  Rng rng(47);
  EXPECT_THROW(rng.next_below(0), check_error);
  EXPECT_THROW(rng.next_int(3, 2), check_error);
  EXPECT_THROW(rng.next_exponential(0.0), check_error);
  EXPECT_THROW(rng.next_bernoulli(1.5), check_error);
  EXPECT_THROW(rng.next_poisson(-1.0), check_error);
}

}  // namespace
}  // namespace df::support
