// Checkpoint round-trip tests in isolation (no transport, no crash
// machinery) — the state-capture half of crash-restart recovery
// (DESIGN.md, "Crash-restart recovery").
//
// Layer 1 — scheduler twin differential (mirror of
// test_scheduler_differential.cpp): a flat scheduler is driven through
// random phase/execution interleavings; at a random mid-run transition its
// snapshot_state image is restored into a fresh scheduler, and from then
// on both run in lockstep over identical inputs. After *every* subsequent
// transition the two must produce identical Snapshots and issue identical
// ready batches with identical sealed bundles. Issued-but-unfinished pairs
// at the checkpoint exercise the membership-only contract: the driver
// keeps their bundles and re-presents them to both schedulers.
//
// Layer 2 — engine round-trip over the random Δ-program corpus: run K
// phases, quiesce, snapshot; restore into a fresh engine and run the
// remaining phases. The checkpoint's sink prefix plus the resumed run's
// sink suffix must be byte-identical to an uninterrupted twin (module
// state, rng streams, and the latest-value cache all resume exactly).
//
// Layer 3 — image rejection (same strictness discipline as
// test_wire.cpp): truncated, bit-flipped, wrong-version, wrong-magic, and
// wrong-geometry images must fail restore_state with a loud
// support::check_error (no UB under ASan/UBSan), and recovery must be able
// to fall back to the previous intact checkpoint.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/engine.hpp"
#include "core/scheduler.hpp"
#include "core/sink_store.hpp"
#include "graph/generators.hpp"
#include "graph/numbering.hpp"
#include "random_program.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"
#include "trace/serializability.hpp"

namespace df::core {
namespace {

using graph::Dag;
using graph::Numbering;

std::vector<std::vector<std::uint32_t>> internal_successors(
    const Dag& dag, const Numbering& numbering) {
  std::vector<std::vector<std::uint32_t>> succs(dag.vertex_count() + 1);
  for (const graph::Edge& e : dag.edges()) {
    succs[numbering.index_of[e.from]].push_back(numbering.index_of[e.to]);
  }
  return succs;
}

// --- layer 1: scheduler snapshot -> restore -> lockstep twin ----------------

class SchedulerCheckpointResume
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerCheckpointResume, RestoredTwinMatchesAfterEveryTransition) {
  const std::uint64_t seed = GetParam();
  support::Rng rng(seed);

  const Dag dag = graph::random_dag(
      5 + static_cast<std::uint32_t>(seed % 27), 0.3, rng);
  const Numbering numbering = graph::compute_satisfactory_numbering(dag);
  const auto succs = internal_successors(dag, numbering);

  Scheduler live(numbering.m);
  std::optional<Scheduler> resumed;  // engaged once the checkpoint is taken

  struct Issued {
    std::uint32_t vertex;
    event::PhaseId phase;
    event::InputBundle bundle;
  };
  std::vector<Issued> issued;
  const event::PhaseId total_phases = 12;
  event::PhaseId started = 0;
  std::size_t transitions = 0;
  // The workload performs at least total_phases * (n + 1) transitions, so
  // this trigger always fires mid-run, usually with pairs issued (the
  // membership-only part of the image).
  const std::size_t checkpoint_at = 3 + rng.next_below(25);

  std::vector<Scheduler::ReadyPair> live_ready;
  std::vector<Scheduler::ReadyPair> twin_ready;

  // After the live transition (and its twin copy, once engaged): compare
  // ready batches, keep the live bundles for later finishes, and diff the
  // full set snapshots.
  const auto absorb = [&] {
    if (resumed.has_value()) {
      ASSERT_EQ(live_ready.size(), twin_ready.size());
      for (std::size_t i = 0; i < live_ready.size(); ++i) {
        EXPECT_EQ(live_ready[i].vertex, twin_ready[i].vertex);
        EXPECT_EQ(live_ready[i].phase, twin_ready[i].phase);
        EXPECT_EQ(live_ready[i].bundle, twin_ready[i].bundle)
            << "bundle mismatch at vertex " << live_ready[i].vertex;
      }
      EXPECT_EQ(live.snapshot(), resumed->snapshot())
          << "snapshot divergence after restore (seed " << seed << ")";
    }
    for (auto& pair : live_ready) {
      issued.push_back(Issued{pair.vertex, pair.phase,
                              std::move(pair.bundle)});
    }
    live_ready.clear();
    twin_ready.clear();
  };

  while (started < total_phases || !issued.empty()) {
    const bool start_now = started < total_phases &&
                           (issued.empty() || rng.next_bernoulli(0.35));
    if (start_now) {
      ++started;
      std::vector<event::InputBundle> bundles(numbering.m[0]);
      std::vector<event::InputBundle> bundles_copy(numbering.m[0]);
      for (std::uint32_t s = 0; s < numbering.m[0]; ++s) {
        if (rng.next_bernoulli(0.5)) {
          const double payload = rng.next_normal();
          bundles[s].push_back(event::Message{0, event::Value(payload)});
          bundles_copy[s].push_back(event::Message{0, event::Value(payload)});
        }
      }
      live.start_phase(started, std::span<event::InputBundle>(bundles),
                       live_ready);
      if (resumed.has_value()) {
        resumed->start_phase(started,
                             std::span<event::InputBundle>(bundles_copy),
                             twin_ready);
      }
    } else {
      const std::size_t pick =
          static_cast<std::size_t>(rng.next_below(issued.size()));
      Issued pair = std::move(issued[pick]);
      issued.erase(issued.begin() + static_cast<std::ptrdiff_t>(pick));

      std::vector<Scheduler::Delivery> deliveries;
      std::vector<Scheduler::Delivery> deliveries_copy;
      for (const std::uint32_t w : succs[pair.vertex]) {
        if (rng.next_bernoulli(0.6)) {
          const double payload = rng.next_normal();
          deliveries.push_back(Scheduler::Delivery{w, 0,
                                                   event::Value(payload)});
          deliveries_copy.push_back(
              Scheduler::Delivery{w, 0, event::Value(payload)});
        }
      }
      event::InputBundle bundle_copy = pair.bundle;  // twin recycles its own
      live.finish_execution(pair.vertex, pair.phase,
                            std::span<Scheduler::Delivery>(deliveries),
                            std::move(pair.bundle), live_ready);
      if (resumed.has_value()) {
        resumed->finish_execution(
            pair.vertex, pair.phase,
            std::span<Scheduler::Delivery>(deliveries_copy),
            std::move(bundle_copy), twin_ready);
      }
    }
    absorb();

    ++transitions;
    if (!resumed.has_value() && transitions >= checkpoint_at) {
      // Checkpoint: serialize the live scheduler mid-run and rebuild a
      // twin from the image. Issued pairs stay with the driver (`issued`)
      // — both schedulers now expect the same finish_execution calls.
      const std::vector<std::uint8_t> image = live.snapshot_state();
      resumed.emplace(numbering.m);
      resumed->restore_state(image);
      EXPECT_EQ(live.snapshot(), resumed->snapshot())
          << "snapshot divergence immediately after restore (seed " << seed
          << ", " << issued.size() << " pairs issued)";
    }
  }

  ASSERT_TRUE(resumed.has_value()) << "checkpoint trigger never fired";
  EXPECT_TRUE(live.all_started_phases_complete());
  EXPECT_TRUE(resumed->all_started_phases_complete());
  EXPECT_EQ(live.completed_through(), total_phases);
  EXPECT_EQ(resumed->completed_through(), total_phases);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerCheckpointResume,
                         ::testing::Range<std::uint64_t>(0, 20));

// --- layer 2: engine snapshot -> restore -> resume --------------------------

const std::vector<event::ExternalEvent> kNoEvents;

class EngineCheckpointResume : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(EngineCheckpointResume, ResumedRunMatchesUninterruptedTwin) {
  const std::uint64_t seed = GetParam();
  const Program program = testutil::random_program(seed);
  const event::PhaseId phases = 24;
  const event::PhaseId checkpoint_phase = 10;
  EngineOptions options;
  options.threads = 2;

  // The uninterrupted twin.
  Engine twin(program, options);
  twin.start();
  for (event::PhaseId p = 1; p <= phases; ++p) {
    twin.start_phase(kNoEvents);
  }
  twin.finish();

  // The interrupted pair: first engine runs to the checkpoint and stops
  // (its image and sink prefix survive, as the supervisor's checkpoint
  // does); second engine restores and runs the rest.
  SinkStore combined;
  std::vector<std::uint8_t> image;
  {
    Engine first(program, options);
    first.start();
    for (event::PhaseId p = 1; p <= checkpoint_phase; ++p) {
      first.start_phase(kNoEvents);
    }
    first.quiesce();
    image = first.snapshot_state();
    first.finish();
    EXPECT_EQ(first.completed_phases(), checkpoint_phase);
    combined.record_batch(first.sinks().canonical());
  }
  {
    Engine second(program, options);
    second.start();
    second.restore_state(image);
    for (event::PhaseId p = checkpoint_phase + 1; p <= phases; ++p) {
      second.start_phase(kNoEvents);
    }
    second.finish();
    EXPECT_EQ(second.completed_phases(), phases);
    combined.record_batch(second.sinks().canonical());
  }

  const auto report = trace::compare_sinks(twin.sinks(), combined);
  EXPECT_TRUE(report.equivalent) << "seed " << seed << "\n"
                                 << report.summary();
  EXPECT_GT(twin.sinks().size(), 0U) << "workload produced no sink output";
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineCheckpointResume,
                         ::testing::Range<std::uint64_t>(0, 10));

// --- layer 3: image rejection ------------------------------------------------

/// Runs `k` phases on a fresh engine and returns its sealed checkpoint
/// image (and, optionally, the canonical sink prefix at the checkpoint).
std::vector<std::uint8_t> image_after(const Program& program,
                                      event::PhaseId k,
                                      std::vector<SinkRecord>* sinks_out =
                                          nullptr) {
  EngineOptions options;
  options.threads = 2;
  Engine engine(program, options);
  engine.start();
  for (event::PhaseId p = 1; p <= k; ++p) {
    engine.start_phase(kNoEvents);
  }
  engine.quiesce();
  std::vector<std::uint8_t> image = engine.snapshot_state();
  if (sinks_out != nullptr) {
    *sinks_out = engine.sinks().canonical();
  }
  engine.finish();
  return image;
}

void expect_restore_rejects(const Program& program,
                            const std::vector<std::uint8_t>& image,
                            const char* what) {
  EngineOptions options;
  options.threads = 2;
  Engine engine(program, options);
  engine.start();
  EXPECT_THROW(engine.restore_state(image), support::check_error) << what;
  engine.finish();  // nothing started; the broken engine is discarded
}

TEST(CheckpointImageRejection, TruncatedImagesFailLoudly) {
  const Program program = testutil::random_program(1);
  const std::vector<std::uint8_t> image = image_after(program, 6);
  ASSERT_GT(image.size(), 16U);
  for (const std::size_t cut :
       {std::size_t{0}, std::size_t{3}, std::size_t{7}, image.size() / 2,
        image.size() - 1}) {
    std::vector<std::uint8_t> torn = image;
    torn.resize(cut);
    expect_restore_rejects(program, torn, "truncated image");
  }
}

TEST(CheckpointImageRejection, BitFlipsFailTheChecksum) {
  const Program program = testutil::random_program(1);
  const std::vector<std::uint8_t> image = image_after(program, 6);
  // Header, body, and trailer positions: every flip must trip the FNV-1a
  // trailer (or, for trailer flips, the comparison against the body hash).
  for (const std::size_t offset :
       {std::size_t{0}, std::size_t{5}, image.size() / 3, image.size() / 2,
        image.size() - 3}) {
    std::vector<std::uint8_t> flipped = image;
    flipped[offset] ^= 0x10;
    expect_restore_rejects(program, flipped, "bit-flipped image");
  }
}

TEST(CheckpointImageRejection, WrongVersionAndMagicFailAfterReseal) {
  // A checksum-valid image with a tampered header: strip the trailer,
  // corrupt the field, re-seal. The version/magic checks must catch what
  // the checksum no longer can.
  const Program program = testutil::random_program(1);
  const std::vector<std::uint8_t> image = image_after(program, 6);
  const std::vector<std::uint8_t> body = open_image(image, "engine");

  std::vector<std::uint8_t> wrong_version = body;
  wrong_version[4] ^= 0xFF;  // version u32 LE at offset 4
  expect_restore_rejects(program, seal_image(std::move(wrong_version)),
                         "wrong-version image");

  std::vector<std::uint8_t> wrong_magic = body;
  wrong_magic[0] ^= 0xFF;  // magic u32 LE at offset 0
  expect_restore_rejects(program, seal_image(std::move(wrong_magic)),
                         "wrong-magic image");
}

TEST(CheckpointImageRejection, SchedulerImageGeometryAndCorruption) {
  support::Rng rng(7);
  const Dag dag = graph::random_dag(10, 0.3, rng);
  const Numbering numbering = graph::compute_satisfactory_numbering(dag);

  Scheduler scheduler(numbering.m);
  std::vector<event::InputBundle> bundles(numbering.m[0]);
  std::vector<Scheduler::ReadyPair> ready;
  scheduler.start_phase(1, std::span<event::InputBundle>(bundles), ready);
  const std::vector<std::uint8_t> image = scheduler.snapshot_state();

  std::vector<std::uint8_t> torn = image;
  torn.resize(image.size() / 2);
  {
    Scheduler fresh(numbering.m);
    EXPECT_THROW(fresh.restore_state(torn), support::check_error);
  }
  std::vector<std::uint8_t> flipped = image;
  flipped[image.size() / 2] ^= 0x01;
  {
    Scheduler fresh(numbering.m);
    EXPECT_THROW(fresh.restore_state(flipped), support::check_error);
  }
  {
    // Intact image into a scheduler with different geometry: the m-vector
    // validation must reject it before any state is interpreted.
    std::vector<std::uint32_t> other_m = numbering.m;
    other_m.push_back(other_m.back() + 1);
    Scheduler fresh(other_m);
    EXPECT_THROW(fresh.restore_state(image), support::check_error);
  }
}

TEST(CheckpointImageRejection, FallsBackToPreviousIntactCheckpoint) {
  // The supervisor's fallback discipline end to end: the newest image is
  // corrupt, so recovery discards the half-restored engine, restores the
  // previous checkpoint, and re-executes forward — output still
  // byte-identical to the uninterrupted twin.
  const Program program = testutil::random_program(2);
  const event::PhaseId phases = 20;
  EngineOptions options;
  options.threads = 2;

  Engine twin(program, options);
  twin.start();
  for (event::PhaseId p = 1; p <= phases; ++p) {
    twin.start_phase(kNoEvents);
  }
  twin.finish();

  // One run, two checkpoints (phase 6 and phase 12); the later one is
  // then corrupted in "storage".
  std::vector<std::uint8_t> early_image;
  std::vector<std::uint8_t> late_image;
  std::vector<SinkRecord> sinks_at_early;
  {
    Engine first(program, options);
    first.start();
    for (event::PhaseId p = 1; p <= 6; ++p) {
      first.start_phase(kNoEvents);
    }
    first.quiesce();
    early_image = first.snapshot_state();
    sinks_at_early = first.sinks().canonical();
    for (event::PhaseId p = 7; p <= 12; ++p) {
      first.start_phase(kNoEvents);
    }
    first.quiesce();
    late_image = first.snapshot_state();
    first.finish();
  }
  late_image[late_image.size() / 2] ^= 0x04;

  expect_restore_rejects(program, late_image, "corrupt newest checkpoint");

  SinkStore combined;
  combined.record_batch(sinks_at_early);
  {
    Engine second(program, options);
    second.start();
    second.restore_state(early_image);
    for (event::PhaseId p = 7; p <= phases; ++p) {
      second.start_phase(kNoEvents);
    }
    second.finish();
    EXPECT_EQ(second.completed_phases(), phases);
    combined.record_batch(second.sinks().canonical());
  }
  const auto report = trace::compare_sinks(twin.sinks(), combined);
  EXPECT_TRUE(report.equivalent) << report.summary();
}

TEST(CheckpointImageRejection, ShardedSchedulerRefusesToSnapshot) {
  const Program program = testutil::random_program(3);
  EngineOptions options;
  options.threads = 2;
  options.scheduler_shards = 2;
  Engine engine(program, options);
  engine.start();
  engine.quiesce();
  EXPECT_THROW(engine.snapshot_state(), support::check_error);
  engine.finish();
}

}  // namespace
}  // namespace df::core
