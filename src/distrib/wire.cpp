#include "distrib/wire.hpp"

#include <bit>
#include <cstring>
#include <string>

namespace df::distrib::wire {

namespace {

constexpr std::uint8_t kMagic[3] = {'D', 'F', 'W'};
constexpr std::size_t kHeaderBytes = 3 + 1 + 1 + 8 + 8;

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

/// Bounds-checked little-endian reader. Every `read_*` either succeeds and
/// advances the cursor or returns false leaving the cursor untouched, so a
/// decoder can bail with kTruncated at any point without having read past
/// the buffer.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::size_t remaining() const { return bytes_.size() - cursor_; }
  std::size_t cursor() const { return cursor_; }

  bool read_u8(std::uint8_t& v) {
    if (remaining() < 1) {
      return false;
    }
    v = bytes_[cursor_++];
    return true;
  }

  bool read_u16(std::uint16_t& v) {
    if (remaining() < 2) {
      return false;
    }
    v = static_cast<std::uint16_t>(
        static_cast<std::uint16_t>(bytes_[cursor_]) |
        (static_cast<std::uint16_t>(bytes_[cursor_ + 1]) << 8));
    cursor_ += 2;
    return true;
  }

  bool read_u32(std::uint32_t& v) {
    if (remaining() < 4) {
      return false;
    }
    v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(bytes_[cursor_ + i]) << (8 * i);
    }
    cursor_ += 4;
    return true;
  }

  bool read_u64(std::uint64_t& v) {
    if (remaining() < 8) {
      return false;
    }
    v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(bytes_[cursor_ + i]) << (8 * i);
    }
    cursor_ += 8;
    return true;
  }

  bool read_bytes(std::size_t count, const std::uint8_t*& data) {
    if (remaining() < count) {
      return false;
    }
    data = bytes_.data() + cursor_;
    cursor_ += count;
    return true;
  }

  void seek(std::size_t cursor) { cursor_ = cursor; }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t cursor_ = 0;
};

DecodeStatus decode_value_at(Reader& reader, event::Value& out) {
  std::uint8_t tag = 0;
  if (!reader.read_u8(tag)) {
    return DecodeStatus::kTruncated;
  }
  switch (static_cast<event::Value::Kind>(tag)) {
    case event::Value::Kind::kEmpty:
      out = event::Value();
      return DecodeStatus::kOk;
    case event::Value::Kind::kBool: {
      std::uint8_t byte = 0;
      if (!reader.read_u8(byte)) {
        return DecodeStatus::kTruncated;
      }
      if (byte > 1) {
        return DecodeStatus::kBadPayload;
      }
      out = event::Value(byte == 1);
      return DecodeStatus::kOk;
    }
    case event::Value::Kind::kInt: {
      std::uint64_t bits = 0;
      if (!reader.read_u64(bits)) {
        return DecodeStatus::kTruncated;
      }
      out = event::Value(static_cast<std::int64_t>(bits));
      return DecodeStatus::kOk;
    }
    case event::Value::Kind::kDouble: {
      std::uint64_t bits = 0;
      if (!reader.read_u64(bits)) {
        return DecodeStatus::kTruncated;
      }
      out = event::Value(std::bit_cast<double>(bits));
      return DecodeStatus::kOk;
    }
    case event::Value::Kind::kString: {
      std::uint32_t length = 0;
      if (!reader.read_u32(length)) {
        return DecodeStatus::kTruncated;
      }
      // Validate against the remaining bytes *before* allocating, so a
      // corrupted length cannot trigger a giant allocation.
      const std::uint8_t* data = nullptr;
      if (!reader.read_bytes(length, data)) {
        return DecodeStatus::kTruncated;
      }
      out = event::Value(
          std::string(reinterpret_cast<const char*>(data), length));
      return DecodeStatus::kOk;
    }
    case event::Value::Kind::kVector: {
      std::uint32_t count = 0;
      if (!reader.read_u32(count)) {
        return DecodeStatus::kTruncated;
      }
      if (reader.remaining() / 8 < count) {
        return DecodeStatus::kTruncated;
      }
      std::vector<double> values;
      values.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        std::uint64_t bits = 0;
        if (!reader.read_u64(bits)) {
          return DecodeStatus::kTruncated;
        }
        values.push_back(std::bit_cast<double>(bits));
      }
      out = event::Value(std::move(values));
      return DecodeStatus::kOk;
    }
  }
  return DecodeStatus::kBadValueTag;
}

void encode_header(FrameType type, std::uint64_t seq, event::PhaseId phase,
                   std::vector<std::uint8_t>& out) {
  out.clear();
  out.push_back(kMagic[0]);
  out.push_back(kMagic[1]);
  out.push_back(kMagic[2]);
  put_u8(out, kVersion);
  put_u8(out, static_cast<std::uint8_t>(type));
  put_u64(out, seq);
  put_u64(out, phase);
}

}  // namespace

const char* to_string(DecodeStatus status) {
  switch (status) {
    case DecodeStatus::kOk:
      return "ok";
    case DecodeStatus::kTruncated:
      return "truncated";
    case DecodeStatus::kBadMagic:
      return "bad magic";
    case DecodeStatus::kBadVersion:
      return "unsupported version";
    case DecodeStatus::kBadFrameType:
      return "unknown frame type";
    case DecodeStatus::kBadValueTag:
      return "unknown value tag";
    case DecodeStatus::kBadPayload:
      return "invalid payload";
    case DecodeStatus::kTrailingBytes:
      return "trailing bytes";
    case DecodeStatus::kOversized:
      return "oversized frame";
  }
  return "unknown status";
}

void encode_value(const event::Value& value, std::vector<std::uint8_t>& out) {
  put_u8(out, static_cast<std::uint8_t>(value.kind()));
  switch (value.kind()) {
    case event::Value::Kind::kEmpty:
      break;
    case event::Value::Kind::kBool:
      put_u8(out, value.as_bool() ? 1 : 0);
      break;
    case event::Value::Kind::kInt:
      put_u64(out, static_cast<std::uint64_t>(value.as_int()));
      break;
    case event::Value::Kind::kDouble:
      put_u64(out, std::bit_cast<std::uint64_t>(value.as_double()));
      break;
    case event::Value::Kind::kString: {
      const std::string& text = value.as_string();
      put_u32(out, static_cast<std::uint32_t>(text.size()));
      out.insert(out.end(), text.begin(), text.end());
      break;
    }
    case event::Value::Kind::kVector: {
      const std::vector<double>& values = value.as_vector();
      put_u32(out, static_cast<std::uint32_t>(values.size()));
      for (const double v : values) {
        put_u64(out, std::bit_cast<std::uint64_t>(v));
      }
      break;
    }
  }
}

DecodeStatus decode_value(std::span<const std::uint8_t> bytes,
                          std::size_t& cursor, event::Value& out) {
  Reader reader(bytes);
  reader.seek(cursor);
  const DecodeStatus status = decode_value_at(reader, out);
  if (status == DecodeStatus::kOk) {
    cursor = reader.cursor();
  }
  return status;
}

void encode_delivery(std::uint64_t seq, event::PhaseId phase,
                     const core::Delivery& delivery,
                     std::vector<std::uint8_t>& out) {
  encode_header(FrameType::kDelivery, seq, phase, out);
  put_u32(out, delivery.to_index);
  put_u16(out, delivery.to_port);
  encode_value(delivery.value, out);
}

void encode_watermark(std::uint64_t seq, event::PhaseId phase,
                      std::vector<std::uint8_t>& out) {
  encode_header(FrameType::kWatermark, seq, phase, out);
}

DecodeStatus decode_frame(std::span<const std::uint8_t> bytes, Frame& out) {
  if (bytes.size() > kMaxFrameBytes) {
    return DecodeStatus::kOversized;
  }
  if (bytes.size() < kHeaderBytes) {
    return DecodeStatus::kTruncated;
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof kMagic) != 0) {
    return DecodeStatus::kBadMagic;
  }
  Reader reader(bytes);
  reader.seek(sizeof kMagic);
  std::uint8_t version = 0;
  std::uint8_t type = 0;
  reader.read_u8(version);
  reader.read_u8(type);
  if (version != kVersion) {
    return DecodeStatus::kBadVersion;
  }
  reader.read_u64(out.seq);
  std::uint64_t phase = 0;
  reader.read_u64(phase);
  out.phase = phase;

  switch (static_cast<FrameType>(type)) {
    case FrameType::kWatermark:
      out.type = FrameType::kWatermark;
      out.delivery = core::Delivery{};
      break;
    case FrameType::kDelivery: {
      out.type = FrameType::kDelivery;
      if (!reader.read_u32(out.delivery.to_index)) {
        return DecodeStatus::kTruncated;
      }
      std::uint16_t port = 0;
      if (!reader.read_u16(port)) {
        return DecodeStatus::kTruncated;
      }
      out.delivery.to_port = port;
      const DecodeStatus status = decode_value_at(reader, out.delivery.value);
      if (status != DecodeStatus::kOk) {
        return status;
      }
      break;
    }
    default:
      return DecodeStatus::kBadFrameType;
  }
  if (reader.remaining() != 0) {
    return DecodeStatus::kTrailingBytes;
  }
  return DecodeStatus::kOk;
}

}  // namespace df::distrib::wire
