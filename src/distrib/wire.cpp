#include "distrib/wire.hpp"

#include <bit>
#include <cstring>
#include <string>

#include "support/check.hpp"

namespace df::distrib::wire {

namespace {

constexpr std::uint8_t kMagic[3] = {'D', 'F', 'W'};

// Dense value tags appended (never reordered) after the Value::Kind range;
// version 2 frames only. See the header comment for the layout contract.
constexpr std::uint8_t kTagIntVarint = 6;     // zigzag varint int64
constexpr std::uint8_t kTagShortString = 7;   // u8 length + bytes
constexpr std::uint8_t kTagVectorVarint = 8;  // varint count + doubles

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

std::size_t varint_size(std::uint64_t v) {
  std::size_t size = 1;
  while (v >= 0x80) {
    ++size;
    v >>= 7;
  }
  return size;
}

std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

/// Bounds-checked little-endian reader. Every `read_*` either succeeds and
/// advances the cursor or returns false leaving the cursor untouched, so a
/// decoder can bail with kTruncated at any point without having read past
/// the buffer.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::size_t remaining() const { return bytes_.size() - cursor_; }
  std::size_t cursor() const { return cursor_; }

  bool read_u8(std::uint8_t& v) {
    if (remaining() < 1) {
      return false;
    }
    v = bytes_[cursor_++];
    return true;
  }

  bool read_u16(std::uint16_t& v) {
    if (remaining() < 2) {
      return false;
    }
    v = static_cast<std::uint16_t>(
        static_cast<std::uint16_t>(bytes_[cursor_]) |
        (static_cast<std::uint16_t>(bytes_[cursor_ + 1]) << 8));
    cursor_ += 2;
    return true;
  }

  bool read_u32(std::uint32_t& v) {
    if (remaining() < 4) {
      return false;
    }
    v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(bytes_[cursor_ + i]) << (8 * i);
    }
    cursor_ += 4;
    return true;
  }

  bool read_u64(std::uint64_t& v) {
    if (remaining() < 8) {
      return false;
    }
    v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(bytes_[cursor_ + i]) << (8 * i);
    }
    cursor_ += 8;
    return true;
  }

  /// LEB128 varint, at most 10 bytes; an 11th continuation byte or bits
  /// past the 64th are kBadPayload (no silent wraparound for the fuzzer to
  /// find).
  DecodeStatus read_varint(std::uint64_t& v) {
    v = 0;
    int shift = 0;
    for (int i = 0; i < 10; ++i) {
      std::uint8_t byte = 0;
      if (!read_u8(byte)) {
        return DecodeStatus::kTruncated;
      }
      if (i == 9 && (byte & 0xfe) != 0) {
        return DecodeStatus::kBadPayload;
      }
      v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) {
        return DecodeStatus::kOk;
      }
      shift += 7;
    }
    return DecodeStatus::kBadPayload;
  }

  bool read_bytes(std::size_t count, const std::uint8_t*& data) {
    if (remaining() < count) {
      return false;
    }
    data = bytes_.data() + cursor_;
    cursor_ += count;
    return true;
  }

  bool skip(std::size_t count) {
    if (remaining() < count) {
      return false;
    }
    cursor_ += count;
    return true;
  }

  void seek(std::size_t cursor) { cursor_ = cursor; }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t cursor_ = 0;
};

/// Decodes one value. `v2` admits the dense tags; `out == nullptr` walks
/// the exact same validation without materializing anything (the
/// no-allocation path validate_frame is built on) and returns the exact
/// status a materializing decode would.
DecodeStatus decode_value_at(Reader& reader, event::Value* out, bool v2) {
  std::uint8_t tag = 0;
  if (!reader.read_u8(tag)) {
    return DecodeStatus::kTruncated;
  }
  switch (tag) {
    case static_cast<std::uint8_t>(event::Value::Kind::kEmpty):
      if (out != nullptr) {
        *out = event::Value();
      }
      return DecodeStatus::kOk;
    case static_cast<std::uint8_t>(event::Value::Kind::kBool): {
      std::uint8_t byte = 0;
      if (!reader.read_u8(byte)) {
        return DecodeStatus::kTruncated;
      }
      if (byte > 1) {
        return DecodeStatus::kBadPayload;
      }
      if (out != nullptr) {
        *out = event::Value(byte == 1);
      }
      return DecodeStatus::kOk;
    }
    case static_cast<std::uint8_t>(event::Value::Kind::kInt): {
      std::uint64_t bits = 0;
      if (!reader.read_u64(bits)) {
        return DecodeStatus::kTruncated;
      }
      if (out != nullptr) {
        *out = event::Value(static_cast<std::int64_t>(bits));
      }
      return DecodeStatus::kOk;
    }
    case static_cast<std::uint8_t>(event::Value::Kind::kDouble): {
      std::uint64_t bits = 0;
      if (!reader.read_u64(bits)) {
        return DecodeStatus::kTruncated;
      }
      if (out != nullptr) {
        *out = event::Value(std::bit_cast<double>(bits));
      }
      return DecodeStatus::kOk;
    }
    case static_cast<std::uint8_t>(event::Value::Kind::kString): {
      std::uint32_t length = 0;
      if (!reader.read_u32(length)) {
        return DecodeStatus::kTruncated;
      }
      // Validate against the remaining bytes *before* allocating, so a
      // corrupted length cannot trigger a giant allocation.
      const std::uint8_t* data = nullptr;
      if (!reader.read_bytes(length, data)) {
        return DecodeStatus::kTruncated;
      }
      if (out != nullptr) {
        *out = event::Value(std::string_view(
            reinterpret_cast<const char*>(data), length));
      }
      return DecodeStatus::kOk;
    }
    case static_cast<std::uint8_t>(event::Value::Kind::kVector): {
      std::uint32_t count = 0;
      if (!reader.read_u32(count)) {
        return DecodeStatus::kTruncated;
      }
      if (reader.remaining() / 8 < count) {
        return DecodeStatus::kTruncated;
      }
      if (out == nullptr) {
        reader.skip(std::size_t{count} * 8);
        return DecodeStatus::kOk;
      }
      std::vector<double> values;
      values.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        std::uint64_t bits = 0;
        reader.read_u64(bits);
        values.push_back(std::bit_cast<double>(bits));
      }
      *out = event::Value(std::move(values));
      return DecodeStatus::kOk;
    }
    case kTagIntVarint: {
      if (!v2) {
        return DecodeStatus::kBadValueTag;
      }
      std::uint64_t encoded = 0;
      const DecodeStatus status = reader.read_varint(encoded);
      if (status != DecodeStatus::kOk) {
        return status;
      }
      if (out != nullptr) {
        *out = event::Value(unzigzag(encoded));
      }
      return DecodeStatus::kOk;
    }
    case kTagShortString: {
      if (!v2) {
        return DecodeStatus::kBadValueTag;
      }
      std::uint8_t length = 0;
      if (!reader.read_u8(length)) {
        return DecodeStatus::kTruncated;
      }
      const std::uint8_t* data = nullptr;
      if (!reader.read_bytes(length, data)) {
        return DecodeStatus::kTruncated;
      }
      if (out != nullptr) {
        *out = event::Value(std::string_view(
            reinterpret_cast<const char*>(data), length));
      }
      return DecodeStatus::kOk;
    }
    case kTagVectorVarint: {
      if (!v2) {
        return DecodeStatus::kBadValueTag;
      }
      std::uint64_t count = 0;
      const DecodeStatus status = reader.read_varint(count);
      if (status != DecodeStatus::kOk) {
        return status;
      }
      if (reader.remaining() / 8 < count) {
        return DecodeStatus::kTruncated;
      }
      if (out == nullptr) {
        reader.skip(static_cast<std::size_t>(count) * 8);
        return DecodeStatus::kOk;
      }
      std::vector<double> values;
      values.reserve(static_cast<std::size_t>(count));
      for (std::uint64_t i = 0; i < count; ++i) {
        std::uint64_t bits = 0;
        reader.read_u64(bits);
        values.push_back(std::bit_cast<double>(bits));
      }
      *out = event::Value(std::move(values));
      return DecodeStatus::kOk;
    }
    default:
      return DecodeStatus::kBadValueTag;
  }
}

void encode_value_dense(const event::Value& value,
                        std::vector<std::uint8_t>& out) {
  switch (value.kind()) {
    case event::Value::Kind::kInt: {
      const std::uint64_t encoded = zigzag(value.as_int());
      // The zigzag varint beats the fixed u64 form up to 8 payload bytes;
      // huge magnitudes (rare) keep the v1 form.
      if (varint_size(encoded) <= 8) {
        put_u8(out, kTagIntVarint);
        put_varint(out, encoded);
      } else {
        put_u8(out, static_cast<std::uint8_t>(event::Value::Kind::kInt));
        put_u64(out, static_cast<std::uint64_t>(value.as_int()));
      }
      break;
    }
    case event::Value::Kind::kString: {
      const std::string& text = value.as_string();
      if (text.size() <= 0xff) {
        put_u8(out, kTagShortString);
        put_u8(out, static_cast<std::uint8_t>(text.size()));
        out.insert(out.end(), text.begin(), text.end());
      } else {
        put_u8(out, static_cast<std::uint8_t>(event::Value::Kind::kString));
        put_u32(out, static_cast<std::uint32_t>(text.size()));
        out.insert(out.end(), text.begin(), text.end());
      }
      break;
    }
    case event::Value::Kind::kVector: {
      const std::vector<double>& values = value.as_vector();
      put_u8(out, kTagVectorVarint);
      put_varint(out, values.size());
      for (const double v : values) {
        put_u64(out, std::bit_cast<std::uint64_t>(v));
      }
      break;
    }
    default:
      encode_value_v1(value, out);
      break;
  }
}

void encode_header(FrameType type, std::uint64_t seq, event::PhaseId phase,
                   std::vector<std::uint8_t>& out, std::uint8_t version) {
  out.clear();
  out.push_back(kMagic[0]);
  out.push_back(kMagic[1]);
  out.push_back(kMagic[2]);
  put_u8(out, version);
  put_u8(out, static_cast<std::uint8_t>(type));
  put_u64(out, seq);
  put_u64(out, phase);
}

/// Header checks shared by every decode entry point; on kOk the reader is
/// positioned at the first payload byte.
DecodeStatus decode_header_at(std::span<const std::uint8_t> bytes,
                              Reader& reader, FrameHeader& out,
                              std::uint8_t version) {
  if (bytes.size() > kMaxFrameBytes) {
    return DecodeStatus::kOversized;
  }
  if (bytes.size() < kHeaderBytes) {
    return DecodeStatus::kTruncated;
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof kMagic) != 0) {
    return DecodeStatus::kBadMagic;
  }
  reader.seek(sizeof kMagic);
  std::uint8_t got_version = 0;
  std::uint8_t type = 0;
  reader.read_u8(got_version);
  reader.read_u8(type);
  if (got_version != version) {
    return DecodeStatus::kBadVersion;
  }
  std::uint64_t phase = 0;
  reader.read_u64(out.seq);
  reader.read_u64(phase);
  out.phase = phase;
  switch (static_cast<FrameType>(type)) {
    case FrameType::kDelivery:
    case FrameType::kWatermark:
      break;
    case FrameType::kDeliveryBatch:
      if (version == kVersion1) {
        return DecodeStatus::kBadFrameType;  // batches exist only in v2
      }
      break;
    default:
      return DecodeStatus::kBadFrameType;
  }
  out.type = static_cast<FrameType>(type);
  return DecodeStatus::kOk;
}

/// Reads a batch frame's delivery count and applies the allocation guard:
/// every delivery occupies at least 3 payload bytes (index delta, port,
/// value tag), so a count the remaining bytes cannot possibly hold is
/// rejected *before* any reserve().
DecodeStatus read_batch_count(Reader& reader, std::uint32_t& count) {
  std::uint64_t raw = 0;
  const DecodeStatus status = reader.read_varint(raw);
  if (status != DecodeStatus::kOk) {
    return status;
  }
  if (raw == 0) {
    return DecodeStatus::kBadPayload;  // the encoder never emits empty batches
  }
  if (raw > reader.remaining() / 3) {
    return DecodeStatus::kTruncated;
  }
  count = static_cast<std::uint32_t>(raw);
  return DecodeStatus::kOk;
}

/// Decodes one batched delivery (index delta, port, value) in place.
DecodeStatus decode_batch_delivery(Reader& reader, std::uint32_t& prev_index,
                                   core::Delivery* out, bool materialize) {
  std::uint64_t delta_bits = 0;
  DecodeStatus status = reader.read_varint(delta_bits);
  if (status != DecodeStatus::kOk) {
    return status;
  }
  const std::int64_t index =
      static_cast<std::int64_t>(prev_index) + unzigzag(delta_bits);
  if (index < 0 || index > static_cast<std::int64_t>(UINT32_MAX)) {
    return DecodeStatus::kBadPayload;
  }
  prev_index = static_cast<std::uint32_t>(index);
  std::uint64_t port = 0;
  status = reader.read_varint(port);
  if (status != DecodeStatus::kOk) {
    return status;
  }
  if (port > 0xffff) {
    return DecodeStatus::kBadPayload;
  }
  if (materialize) {
    out->to_index = prev_index;
    out->to_port = static_cast<graph::Port>(port);
    return decode_value_at(reader, &out->value, /*v2=*/true);
  }
  return decode_value_at(reader, nullptr, /*v2=*/true);
}

DecodeStatus decode_frame_impl(std::span<const std::uint8_t> bytes,
                               Frame& out, std::uint8_t version) {
  Reader reader(bytes);
  FrameHeader header;
  DecodeStatus status = decode_header_at(bytes, reader, header, version);
  if (status != DecodeStatus::kOk) {
    return status;
  }
  out.type = header.type;
  out.seq = header.seq;
  out.phase = header.phase;
  out.delivery = core::Delivery{};
  out.batch.clear();
  const bool v2 = version != kVersion1;

  switch (header.type) {
    case FrameType::kWatermark:
      break;
    case FrameType::kDelivery: {
      if (!reader.read_u32(out.delivery.to_index)) {
        return DecodeStatus::kTruncated;
      }
      std::uint16_t port = 0;
      if (!reader.read_u16(port)) {
        return DecodeStatus::kTruncated;
      }
      out.delivery.to_port = port;
      status = decode_value_at(reader, &out.delivery.value, v2);
      if (status != DecodeStatus::kOk) {
        return status;
      }
      break;
    }
    case FrameType::kDeliveryBatch: {
      std::uint32_t count = 0;
      status = read_batch_count(reader, count);
      if (status != DecodeStatus::kOk) {
        return status;
      }
      out.batch.reserve(count);
      std::uint32_t prev_index = 0;
      for (std::uint32_t i = 0; i < count; ++i) {
        core::Delivery delivery;
        status = decode_batch_delivery(reader, prev_index, &delivery,
                                       /*materialize=*/true);
        if (status != DecodeStatus::kOk) {
          return status;
        }
        out.batch.push_back(std::move(delivery));
      }
      break;
    }
  }
  if (reader.remaining() != 0) {
    return DecodeStatus::kTrailingBytes;
  }
  return DecodeStatus::kOk;
}

}  // namespace

const char* to_string(DecodeStatus status) {
  switch (status) {
    case DecodeStatus::kOk:
      return "ok";
    case DecodeStatus::kTruncated:
      return "truncated";
    case DecodeStatus::kBadMagic:
      return "bad magic";
    case DecodeStatus::kBadVersion:
      return "unsupported version";
    case DecodeStatus::kBadFrameType:
      return "unknown frame type";
    case DecodeStatus::kBadValueTag:
      return "unknown value tag";
    case DecodeStatus::kBadPayload:
      return "invalid payload";
    case DecodeStatus::kTrailingBytes:
      return "trailing bytes";
    case DecodeStatus::kOversized:
      return "oversized frame";
  }
  return "unknown status";
}

// --- version 2 entry points -------------------------------------------------

void encode_value(const event::Value& value, std::vector<std::uint8_t>& out) {
  encode_value_dense(value, out);
}

DecodeStatus decode_value(std::span<const std::uint8_t> bytes,
                          std::size_t& cursor, event::Value& out) {
  Reader reader(bytes);
  reader.seek(cursor);
  const DecodeStatus status = decode_value_at(reader, &out, /*v2=*/true);
  if (status == DecodeStatus::kOk) {
    cursor = reader.cursor();
  }
  return status;
}

void encode_delivery(std::uint64_t seq, event::PhaseId phase,
                     const core::Delivery& delivery,
                     std::vector<std::uint8_t>& out) {
  encode_header(FrameType::kDelivery, seq, phase, out, kVersion);
  put_u32(out, delivery.to_index);
  put_u16(out, delivery.to_port);
  encode_value_dense(delivery.value, out);
}

void encode_watermark(std::uint64_t seq, event::PhaseId phase,
                      std::vector<std::uint8_t>& out) {
  encode_header(FrameType::kWatermark, seq, phase, out, kVersion);
}

void patch_seq(std::span<std::uint8_t> frame, std::uint64_t seq) {
  // Header layout: magic (3) + version (1) + type (1), then seq as u64 LE
  // at offset 5 (see the module comment).
  DF_CHECK(frame.size() >= kHeaderBytes,
           "patch_seq needs a complete frame header, got ", frame.size(),
           " bytes");
  for (std::size_t i = 0; i < 8; ++i) {
    frame[5 + i] = static_cast<std::uint8_t>(seq >> (8 * i));
  }
}

void encode_delivery_batch(std::uint64_t seq, event::PhaseId phase,
                           std::span<const core::Delivery> deliveries,
                           std::vector<std::uint8_t>& out) {
  BatchEncoder encoder;
  for (const core::Delivery& delivery : deliveries) {
    encoder.add(delivery);
  }
  encoder.finish(seq, phase, out);
}

void BatchEncoder::add(const core::Delivery& delivery) {
  const std::int64_t delta = static_cast<std::int64_t>(delivery.to_index) -
                             static_cast<std::int64_t>(prev_index_);
  put_varint(payload_, zigzag(delta));
  prev_index_ = delivery.to_index;
  put_varint(payload_, delivery.to_port);
  encode_value_dense(delivery.value, payload_);
  ++count_;
}

void BatchEncoder::finish(std::uint64_t seq, event::PhaseId phase,
                          std::vector<std::uint8_t>& out) {
  encode_header(FrameType::kDeliveryBatch, seq, phase, out, kVersion);
  put_varint(out, count_);
  out.insert(out.end(), payload_.begin(), payload_.end());
  payload_.clear();
  count_ = 0;
  prev_index_ = 0;
}

DecodeStatus decode_header(std::span<const std::uint8_t> bytes,
                           FrameHeader& out) {
  Reader reader(bytes);
  return decode_header_at(bytes, reader, out, kVersion);
}

DecodeStatus validate_frame(std::span<const std::uint8_t> bytes) {
  Reader reader(bytes);
  FrameHeader header;
  DecodeStatus status = decode_header_at(bytes, reader, header, kVersion);
  if (status != DecodeStatus::kOk) {
    return status;
  }
  switch (header.type) {
    case FrameType::kWatermark:
      break;
    case FrameType::kDelivery: {
      if (!reader.skip(4 + 2)) {  // to_index + to_port
        return DecodeStatus::kTruncated;
      }
      status = decode_value_at(reader, nullptr, /*v2=*/true);
      if (status != DecodeStatus::kOk) {
        return status;
      }
      break;
    }
    case FrameType::kDeliveryBatch: {
      std::uint32_t count = 0;
      status = read_batch_count(reader, count);
      if (status != DecodeStatus::kOk) {
        return status;
      }
      std::uint32_t prev_index = 0;
      for (std::uint32_t i = 0; i < count; ++i) {
        status = decode_batch_delivery(reader, prev_index, nullptr,
                                       /*materialize=*/false);
        if (status != DecodeStatus::kOk) {
          return status;
        }
      }
      break;
    }
  }
  if (reader.remaining() != 0) {
    return DecodeStatus::kTrailingBytes;
  }
  return DecodeStatus::kOk;
}

DecodeStatus decode_frame(std::span<const std::uint8_t> bytes, Frame& out) {
  return decode_frame_impl(bytes, out, kVersion);
}

DecodeStatus BatchReader::open(std::span<const std::uint8_t> bytes) {
  bytes_ = bytes;
  Reader reader(bytes_);
  DecodeStatus status = decode_header_at(bytes_, reader, header_, kVersion);
  if (status != DecodeStatus::kOk) {
    return status;
  }
  if (header_.type != FrameType::kDeliveryBatch) {
    return DecodeStatus::kBadFrameType;
  }
  status = read_batch_count(reader, remaining_);
  if (status != DecodeStatus::kOk) {
    return status;
  }
  prev_index_ = 0;
  cursor_ = reader.cursor();
  return DecodeStatus::kOk;
}

DecodeStatus BatchReader::next(core::Delivery& out) {
  Reader reader(bytes_);
  reader.seek(cursor_);
  const DecodeStatus status =
      decode_batch_delivery(reader, prev_index_, &out, /*materialize=*/true);
  if (status != DecodeStatus::kOk) {
    return status;
  }
  cursor_ = reader.cursor();
  --remaining_;
  if (remaining_ == 0 && reader.remaining() != 0) {
    return DecodeStatus::kTrailingBytes;
  }
  return DecodeStatus::kOk;
}

// --- version 1 (decode-compat fixture) --------------------------------------

void encode_value_v1(const event::Value& value,
                     std::vector<std::uint8_t>& out) {
  put_u8(out, static_cast<std::uint8_t>(value.kind()));
  switch (value.kind()) {
    case event::Value::Kind::kEmpty:
      break;
    case event::Value::Kind::kBool:
      put_u8(out, value.as_bool() ? 1 : 0);
      break;
    case event::Value::Kind::kInt:
      put_u64(out, static_cast<std::uint64_t>(value.as_int()));
      break;
    case event::Value::Kind::kDouble:
      put_u64(out, std::bit_cast<std::uint64_t>(value.as_double()));
      break;
    case event::Value::Kind::kString: {
      const std::string& text = value.as_string();
      put_u32(out, static_cast<std::uint32_t>(text.size()));
      out.insert(out.end(), text.begin(), text.end());
      break;
    }
    case event::Value::Kind::kVector: {
      const std::vector<double>& values = value.as_vector();
      put_u32(out, static_cast<std::uint32_t>(values.size()));
      for (const double v : values) {
        put_u64(out, std::bit_cast<std::uint64_t>(v));
      }
      break;
    }
  }
}

DecodeStatus decode_value_v1(std::span<const std::uint8_t> bytes,
                             std::size_t& cursor, event::Value& out) {
  Reader reader(bytes);
  reader.seek(cursor);
  const DecodeStatus status = decode_value_at(reader, &out, /*v2=*/false);
  if (status == DecodeStatus::kOk) {
    cursor = reader.cursor();
  }
  return status;
}

void encode_delivery_v1(std::uint64_t seq, event::PhaseId phase,
                        const core::Delivery& delivery,
                        std::vector<std::uint8_t>& out) {
  encode_header(FrameType::kDelivery, seq, phase, out, kVersion1);
  put_u32(out, delivery.to_index);
  put_u16(out, delivery.to_port);
  encode_value_v1(delivery.value, out);
}

void encode_watermark_v1(std::uint64_t seq, event::PhaseId phase,
                         std::vector<std::uint8_t>& out) {
  encode_header(FrameType::kWatermark, seq, phase, out, kVersion1);
}

DecodeStatus decode_frame_v1(std::span<const std::uint8_t> bytes,
                             Frame& out) {
  return decode_frame_impl(bytes, out, kVersion1);
}

}  // namespace df::distrib::wire
