// Real partitioned execution over serialized channels (paper section 6;
// DESIGN.md, "Real transport").
//
// Where distrib::ClusterExecutor *simulates* multi-machine execution with a
// timing model, TransportEngine actually runs one engine per partition
// block with serialized bytes crossing every boundary:
//
//   * the graph is cut into contiguous satisfactory-numbering blocks
//     (graph::Partitioning, the same cuts the sharded scheduler aligns its
//     state segments with); partition engine k owns block k and executes
//     only its own vertices — a coordinator thread paces the phase windows
//     and a block-scoped core::Engine worker pool runs the pairs — against
//     its own module state;
//   * every ordered pair (j, k), j < k, gets one distrib::Channel carrying
//     wire-encoded frames (distrib/wire.hpp) — cross-partition traffic is
//     forward-only, the invariant the numbering guarantees, so no backward
//     channels exist;
//   * cross-partition deliveries accumulate per egress channel and travel
//     as coalesced kDeliveryBatch frames (wire v2: one header + seq/phase
//     for the whole flush, varint-delta addressing, dense value encoding);
//     a batch is flushed when it reaches the flush threshold and before the
//     phase's kWatermark frame ("all my phase <= p deliveries precede
//     this") goes out on every egress channel — that watermark is the
//     phase-advance handshake: a receiving engine starts phase p only after
//     reassembling watermark p from every upstream block;
//   * the receiver ingests remote frames through a per-channel sequencer
//     that restores exact send order from frame sequence numbers and drops
//     duplicates, so exactly-once in-order ingestion survives duplicating,
//     reordering, and delaying channels (FaultInjectingChannel). Reader
//     threads only *validate* frames (bounds-checked structural walk, no
//     allocation); the raw bytes ride pooled buffers through the sequencer
//     and the engine decodes batches straight into its pending input
//     bundles — payload bytes are copied exactly once, from the received
//     frame into the final event::Value, and steady-state ingestion
//     recycles every buffer it touches;
//   * pipelining happens *across* blocks: block 0 may be phases ahead of
//     block k, bounded by channel capacity (in-process ring) or the kernel
//     socket buffer — the transport's backpressure.
//
// Within a block, execution is a full core::Engine — the paper's multicore
// worker pool — scoped to the block (DESIGN.md, "Two-level parallelism"):
// the engine's scheduler tables are sized to the block's contiguous index
// range (graph::block_local_m), engine_threads workers execute in-block
// pairs concurrently with phases pipelined up to max_inflight_phases, and
// scheduler_shards sub-partition the block. The two seams:
//
//   * ingress: each phase's reassembled remote deliveries are injected as
//     that phase's virtual index-0 inputs when its window opens (the
//     watermark handshake guarantees the set is complete), so the block
//     scheduler can promote remote-fed vertices exactly like locally-fed
//     ones;
//   * egress: boundary-crossing worker outputs land in per-(channel, phase)
//     batches under a per-link mutex and are sent only when the engine
//     reports the phase complete — watermark order is preserved and the
//     sub-threshold frames-per-phase ceiling (one batch + one watermark per
//     channel per phase) survives concurrent egress.
//
// The ensemble's sink output stays *byte-identical* (canonical order) to
// the sequential reference; the differential suite in test_transport.cpp
// asserts exactly that over the randomized program corpus, both channel
// implementations, fault-injected channels, and the engine-threads x
// shards matrix.
//
// Teardown ordering (also DESIGN.md): each engine closes its egress
// channels immediately after its last watermark, then drains its ingress
// channels to EOF (consuming any fault-injected trailing duplicates). On an
// error, the failing engine closes egress first — downstream observes a
// close before the expected watermark and aborts in turn — and then keeps
// draining ingress to EOF so upstream senders can never block forever on a
// full channel to it. The coordinator joins all engines and rethrows the
// first root-cause error.
#pragma once

#include <functional>
#include <memory>

#include "core/engine.hpp"
#include "core/executor.hpp"
#include "distrib/channel.hpp"
#include "graph/partition.hpp"

namespace df::distrib {

enum class ChannelKind {
  kInProcess,  // bounded SPSC-ring channel, frames still wire-encoded
  kSocket,     // loopback TCP, length-prefixed frames
};

/// Thrown by a TransportOptions::crash_hook to kill the calling partition
/// at that instant: its block engine (all in-flight phases, module state,
/// staged egress) is destroyed, its ingress channels die mid-stream, and
/// the supervisor restarts it from its last committed checkpoint. Not an
/// std::exception on purpose — nothing but the supervisor may absorb it.
struct CrashSignal {};

/// Instrumented points of the partition coordinator loop where a
/// crash_hook fires (and may throw CrashSignal). Together they cover the
/// interesting failure geometry: between phases, mid-ingest (after one
/// upstream's watermark but before the next), and on both sides of the
/// checkpoint commit point — a kMidCheckpoint crash must restart from the
/// *previous* checkpoint, kAfterCheckpoint from the new one.
enum class CrashPoint : std::uint8_t {
  kBeforeIngest,    // top of the phase loop, before any ingestion
  kMidIngest,       // first upstream's watermark consumed, rest pending
  kBeforePhase,     // all remote deliveries reassembled, phase not started
  kMidCheckpoint,   // snapshot built but not yet committed
  kAfterCheckpoint  // checkpoint committed and upstream retention acked
};

struct TransportOptions {
  std::size_t machines = 2;
  ChannelKind channel = ChannelKind::kInProcess;
  /// Frames buffered per in-process channel before the sender blocks (the
  /// cross-partition backpressure bound). Rounded up to a power of two.
  std::size_t channel_capacity = 256;
  /// Explicit cut; if empty bounds, a balanced one is computed. Validated
  /// by graph::validate_partition_cut (empty blocks are legal).
  graph::Partitioning partitioning;
  /// Test hook: wraps each freshly built channel, e.g. in a
  /// FaultInjectingChannel. Arguments are (channel, from_block, to_block).
  std::function<std::unique_ptr<Channel>(std::unique_ptr<Channel>,
                                         std::size_t, std::size_t)>
      channel_wrapper;
  /// Worker threads of each per-block core::Engine (the inner level of the
  /// two-level parallelism; the outer level is `machines`).
  std::size_t engine_threads = 1;
  /// Scheduler shards of each per-block engine, sub-partitioning the
  /// block's local index range (clamped to the block size).
  std::size_t scheduler_shards = 1;
  /// Run-queue dispatch of each per-block engine: central blocking queue
  /// (default) or per-worker work-stealing deques (see
  /// core::EngineOptions::dispatch). Orthogonal to engine_threads and
  /// scheduler_shards — the third axis of the per-block knob matrix.
  core::EngineOptions::Dispatch dispatch =
      core::EngineOptions::Dispatch::kCentral;
  /// Per-block engine phase window (EngineOptions::max_inflight_phases);
  /// bounds how far a block's own pipeline runs ahead of its slowest
  /// in-flight phase. Cross-block skew is bounded separately by
  /// channel_capacity. Must be >= 1 (the per-block engines need a finite
  /// window to pace the watermark flush).
  std::size_t max_inflight_phases = 64;
  /// Crash-restart recovery (DESIGN.md, "Crash-restart recovery"): when
  /// > 0, every partition engine checkpoints its full execution state
  /// (core::Engine::snapshot_state plus ingress/egress cursors and the
  /// partition's sink count) each `checkpoint_every` completed phases, and
  /// egress links retain their sent frames until the downstream partition's
  /// checkpoint commit acknowledges them (watermark-bounded replay). Egress
  /// framing also switches to the deterministic sorted-flush path so a
  /// restarted partition's re-executed phases reproduce byte-identical
  /// frames under the original sequence numbers. 0 (default) disables
  /// checkpointing, retention, and the deterministic path entirely — the
  /// incremental-encode hot path is untouched. Requires scheduler_shards
  /// == 1 (snapshots are flat-scheduler only).
  std::size_t checkpoint_every = 0;
  /// Test seam for the kill-a-partition harness: called at the instrumented
  /// CrashPoints of every partition coordinator with (block, phase, point).
  /// Throwing CrashSignal from it simulates that partition's process death;
  /// anything else it throws aborts the run like a module error. Setting it
  /// requires checkpoint_every > 0 (recovery needs retained frames to
  /// replay) and wraps every channel in a CrashableChannel.
  std::function<void(std::size_t, event::PhaseId, CrashPoint)> crash_hook;
};

/// Per-run wire accounting, summed over every engine. The differential
/// suite asserts a frames-per-phase ceiling on these (at most one batch
/// flush plus one watermark per channel per phase for sub-threshold
/// traffic), so a batching regression fails CI instead of only showing up
/// in bench_transport.
struct TransportStats {
  std::uint64_t frames_sent = 0;        // delivery + batch + watermark frames
  std::uint64_t frames_received = 0;    // includes duplicates
  std::uint64_t bytes_sent = 0;         // encoded frame bytes (no prefixes)
  std::uint64_t bytes_received = 0;     // encoded frame bytes (incl. dups)
  std::uint64_t batch_frames_sent = 0;  // kDeliveryBatch frames
  std::uint64_t batched_deliveries = 0; // deliveries carried inside batches
  std::uint64_t watermarks_sent = 0;
  std::uint64_t duplicates_dropped = 0;
  std::uint64_t remote_messages = 0;    // deliveries that crossed a boundary
  std::uint64_t local_messages = 0;     // deliveries within a block
  /// Re-sends of frames whose sequence number had already been sent on
  /// that link — retention replays after a downstream restart plus a
  /// restarted partition's own rollback re-flushes. Counted separately
  /// from frames_sent, which keeps counting *unique* seqs only, so the
  /// frames-per-phase ceiling holds across restarts.
  std::uint64_t frames_replayed = 0;
  std::uint64_t checkpoints_taken = 0;  // committed partition checkpoints
  std::uint64_t checkpoint_bytes = 0;   // engine snapshot bytes, summed
  std::uint64_t restarts = 0;           // partition generations beyond the first
};

class TransportEngine final : public core::Executor {
 public:
  TransportEngine(const core::Program& program, TransportOptions options);

  /// Pulls all feed batches up front, routes each external event to the
  /// partition owning its source vertex, runs every partition engine to
  /// completion, and rethrows the first engine error (if any) after all
  /// threads have been joined.
  void run(event::PhaseId num_phases, core::PhaseFeed* feed) override;

  const core::SinkStore& sinks() const override { return sinks_; }
  core::ExecStats stats() const override { return stats_; }
  const TransportStats& transport_stats() const { return transport_stats_; }
  const graph::Partitioning& partitioning() const { return partitioning_; }

 private:
  struct EngineState;

  void engine_main(EngineState& state, event::PhaseId num_phases);

  core::Program program_;
  TransportOptions options_;
  graph::Partitioning partitioning_;
  /// owner_[v] = block owning internal index v (slot 0 unused). Like
  /// graph::ShardMap::shard_of but tolerant of empty blocks.
  std::vector<std::uint32_t> owner_;
  /// Channels live until the engine is destroyed (not just until run()
  /// returns), so tests holding wrapper pointers can read fault counters
  /// after the run.
  std::vector<std::unique_ptr<Channel>> channels_;
  core::SinkStore sinks_;
  core::ExecStats stats_;
  TransportStats transport_stats_;
  bool ran_ = false;
};

}  // namespace df::distrib
