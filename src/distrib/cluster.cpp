#include "distrib/cluster.hpp"

#include <algorithm>
#include <queue>

#include "core/engine.hpp"
#include "support/check.hpp"
#include "support/stopwatch.hpp"

namespace df::distrib {

namespace {

/// Earliest-free-core tracker for one simulated machine.
class MachineCores {
 public:
  explicit MachineCores(std::size_t cores) : free_at_(cores, 0) {}

  /// Schedules a task that is ready at `ready_ns` for `cost_ns`; returns
  /// its finish time.
  std::uint64_t schedule(std::uint64_t ready_ns, std::uint64_t cost_ns) {
    auto earliest = std::min_element(free_at_.begin(), free_at_.end());
    const std::uint64_t start = std::max(*earliest, ready_ns);
    *earliest = start + cost_ns;
    return *earliest;
  }

  std::uint64_t last_finish() const {
    return *std::max_element(free_at_.begin(), free_at_.end());
  }

 private:
  std::vector<std::uint64_t> free_at_;
};

}  // namespace

ClusterExecutor::ClusterExecutor(const core::Program& program,
                                 ClusterOptions options)
    : instance_(program), options_(options),
      partitioning_(options.partitioning.bounds.empty()
                        ? graph::partition_balanced(program.numbering,
                                                    options.machines)
                        : options.partitioning) {
  DF_CHECK(options_.machines >= 1, "cluster needs at least one machine");
  DF_CHECK(options_.cores_per_machine >= 1,
           "machines need at least one core");
  graph::validate_partition_cut(partitioning_, instance_.n(),
                                options_.machines);
}

void ClusterExecutor::run(event::PhaseId num_phases, core::PhaseFeed* feed) {
  core::NullFeed null_feed;
  core::PhaseFeed& source = feed != nullptr ? *feed : null_feed;
  const std::uint32_t n = instance_.n();

  support::Stopwatch wall;
  std::vector<MachineCores> machines(
      options_.machines, MachineCores(options_.cores_per_machine));
  cluster_stats_.busy_ns.assign(options_.machines, 0);

  // Per-vertex pending bundle and per-vertex earliest message-arrival time
  // within the current phase (simulated clock, ns).
  std::vector<std::optional<event::InputBundle>> pending(n + 1);
  std::vector<std::uint64_t> ready_at(n + 1, 0);

  for (event::PhaseId p = 1; p <= num_phases; ++p) {
    for (const event::ExternalEvent& ev : source.events_for(p)) {
      const std::uint32_t index = instance_.internal_index(ev.vertex);
      DF_CHECK(instance_.is_source(index),
               "external events may only target source vertices");
      if (!pending[index].has_value()) {
        pending[index].emplace();
      }
      pending[index]->push_back(event::Message{ev.port, ev.value});
    }

    for (std::uint32_t v = 1; v <= n; ++v) {
      const bool is_source = instance_.is_source(v);
      if (!is_source && !pending[v].has_value()) {
        ready_at[v] = 0;
        continue;
      }
      const event::InputBundle bundle =
          pending[v].has_value() ? std::move(*pending[v])
                                 : event::InputBundle{};
      pending[v].reset();

      // Semantics: identical to the sequential reference.
      support::Stopwatch compute_timer;
      core::ExecutionResult result =
          core::execute_vertex(instance_, v, p, bundle);
      const std::uint64_t measured_ns = compute_timer.elapsed_ns();
      ++stats_.executed_pairs;
      stats_.compute_ns += measured_ns;

      // Timing model: occupy a core on the owning machine.
      const std::size_t machine = partitioning_.block_of(v);
      const std::uint64_t cost = options_.fixed_vertex_cost_ns > 0
                                     ? options_.fixed_vertex_cost_ns
                                     : measured_ns;
      const std::uint64_t finish =
          machines[machine].schedule(ready_at[v], cost);
      cluster_stats_.busy_ns[machine] += cost;
      ready_at[v] = 0;

      for (core::ExecutionResult::Delivery& d : result.deliveries) {
        const std::size_t dest = partitioning_.block_of(d.to_index);
        std::uint64_t arrival = finish;
        if (dest != machine) {
          arrival += options_.network_latency_ns;
          ++cluster_stats_.network_messages;
        } else {
          ++cluster_stats_.local_messages;
        }
        ready_at[d.to_index] = std::max(ready_at[d.to_index], arrival);
        if (!pending[d.to_index].has_value()) {
          pending[d.to_index].emplace();
        }
        pending[d.to_index]->push_back(
            event::Message{d.to_port, std::move(d.value)});
        ++stats_.messages_delivered;
      }
      stats_.sink_records += result.sink_records.size();
      sinks_.record_batch(std::move(result.sink_records));
    }
    ++stats_.phases_completed;
  }

  for (const MachineCores& machine : machines) {
    cluster_stats_.makespan_ns =
        std::max(cluster_stats_.makespan_ns, machine.last_finish());
  }
  stats_.wall_seconds = wall.elapsed_s();
  stats_.max_inflight_phases = 1;
  stats_.mean_inflight_phases = 1.0;
}

bool run_replicated(
    const core::Program& program, std::size_t replicas,
    event::PhaseId num_phases,
    const std::vector<std::vector<event::ExternalEvent>>& batches,
    std::size_t threads_per_replica, std::size_t* records) {
  DF_CHECK(replicas >= 1, "need at least one replica");
  std::vector<std::vector<core::SinkRecord>> outputs;
  outputs.reserve(replicas);
  for (std::size_t r = 0; r < replicas; ++r) {
    core::EngineOptions options;
    options.threads = threads_per_replica;
    core::Engine engine(program, options);
    core::VectorFeed feed(batches);
    engine.run(num_phases, &feed);
    outputs.push_back(engine.sinks().canonical());
  }
  for (std::size_t r = 1; r < replicas; ++r) {
    if (outputs[r] != outputs[0]) {
      return false;
    }
  }
  if (records != nullptr) {
    *records = outputs[0].size();
  }
  return true;
}

}  // namespace df::distrib
