#include "distrib/channel.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "distrib/wire.hpp"
#include "support/check.hpp"

namespace df::distrib {

namespace {

std::size_t round_up_pow2(std::size_t v) {
  std::size_t result = 2;
  while (result < v) {
    result <<= 1;
  }
  return result;
}

}  // namespace

// --- InProcessChannel -------------------------------------------------------

InProcessChannel::InProcessChannel(std::size_t capacity_frames)
    : ring_(round_up_pow2(capacity_frames)) {}

void InProcessChannel::send(std::span<const std::uint8_t> frame) {
  // The sender role migrates between engine workers (whichever completes a
  // phase flushes), serialized by the egress link mutex — announce the
  // handoff to the ring's debug-only SPSC owner check.
  ring_.adopt_producer();
  std::vector<std::uint8_t> buffer(frame.begin(), frame.end());
  for (;;) {
    if (recv_closed_.load(std::memory_order_acquire)) {
      return;  // receiver abandoned the channel; drop
    }
    if (ring_.try_push(buffer)) {
      break;
    }
    conc::UniqueLock lock(mutex_);
    can_send_.wait(lock, [&] {
      return ring_.size() < ring_.capacity() ||
             recv_closed_.load(std::memory_order_acquire);
    });
  }
  {
    conc::MutexLock lock(mutex_);
  }
  can_recv_.notify_one();
}

void InProcessChannel::close_send() {
  send_closed_.store(true, std::memory_order_release);
  {
    conc::MutexLock lock(mutex_);
  }
  can_recv_.notify_all();
}

bool InProcessChannel::recv(std::vector<std::uint8_t>& frame) {
  for (;;) {
    if (auto item = ring_.pop()) {
      frame = std::move(*item);
      {
        conc::MutexLock lock(mutex_);
      }
      can_send_.notify_one();
      return true;
    }
    if (send_closed_.load(std::memory_order_acquire)) {
      // The closed flag was stored after the final push; re-check the ring
      // so a frame racing the close is not lost.
      if (auto item = ring_.pop()) {
        frame = std::move(*item);
        return true;
      }
      return false;
    }
    conc::UniqueLock lock(mutex_);
    can_recv_.wait(lock, [&] {
      return !ring_.empty() || send_closed_.load(std::memory_order_acquire);
    });
  }
}

void InProcessChannel::close_recv() {
  recv_closed_.store(true, std::memory_order_release);
  {
    conc::MutexLock lock(mutex_);
  }
  can_send_.notify_all();
}

// --- SocketChannel ----------------------------------------------------------

SocketChannel::SocketChannel(int write_fd, int read_fd)
    : write_fd_(write_fd), read_fd_(read_fd) {}

std::unique_ptr<SocketChannel> SocketChannel::make_loopback() {
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  DF_CHECK(listener >= 0, "socket() failed: ", std::strerror(errno));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  DF_CHECK(::bind(listener, reinterpret_cast<sockaddr*>(&addr),
                  sizeof addr) == 0,
           "bind(127.0.0.1) failed: ", std::strerror(errno));
  DF_CHECK(::listen(listener, 1) == 0,
           "listen() failed: ", std::strerror(errno));
  socklen_t addr_len = sizeof addr;
  DF_CHECK(::getsockname(listener, reinterpret_cast<sockaddr*>(&addr),
                         &addr_len) == 0,
           "getsockname() failed: ", std::strerror(errno));

  // Loopback connect to a listening socket completes in-kernel (backlog),
  // so the synchronous connect-then-accept sequence cannot deadlock.
  const int client = ::socket(AF_INET, SOCK_STREAM, 0);
  DF_CHECK(client >= 0, "socket() failed: ", std::strerror(errno));
  DF_CHECK(::connect(client, reinterpret_cast<sockaddr*>(&addr),
                     sizeof addr) == 0,
           "connect(127.0.0.1) failed: ", std::strerror(errno));
  const int server = ::accept(listener, nullptr, nullptr);
  DF_CHECK(server >= 0, "accept() failed: ", std::strerror(errno));
  ::close(listener);

  const int nodelay = 1;
  ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof nodelay);
  ::setsockopt(server, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof nodelay);

  return std::unique_ptr<SocketChannel>(new SocketChannel(client, server));
}

std::unique_ptr<SocketChannel> SocketChannel::adopt(int write_fd,
                                                    int read_fd) {
  return std::unique_ptr<SocketChannel>(new SocketChannel(write_fd, read_fd));
}

SocketChannel::~SocketChannel() {
  if (write_fd_ >= 0) {
    ::close(write_fd_);
  }
  if (read_fd_ >= 0) {
    ::close(read_fd_);
  }
}

void SocketChannel::send(std::span<const std::uint8_t> frame) {
  DF_CHECK(frame.size() <= wire::kMaxFrameBytes, "frame too large");
  DF_CHECK(write_fd_ >= 0, "send on a receive-only socket channel");
  if (broken_.load(std::memory_order_relaxed)) {
    return;  // receiver closed its end; the run is tearing down
  }
  // One send() per frame: assemble prefix + payload in the reused scratch
  // so the kernel sees the frame as a single write (with TCP_NODELAY a
  // separate prefix write would go out as its own 4-byte segment).
  const auto size = static_cast<std::uint32_t>(frame.size());
  send_buf_.clear();
  for (int i = 0; i < 4; ++i) {
    send_buf_.push_back(static_cast<std::uint8_t>(size >> (8 * i)));
  }
  send_buf_.insert(send_buf_.end(), frame.begin(), frame.end());

  std::size_t written = 0;
  while (written < send_buf_.size()) {
    // MSG_NOSIGNAL: a dead peer must surface as EPIPE, not SIGPIPE.
    const ssize_t result = ::send(write_fd_, send_buf_.data() + written,
                                  send_buf_.size() - written, MSG_NOSIGNAL);
    if (result < 0) {
      if (errno == EINTR) {
        continue;
      }
      DF_CHECK(errno == EPIPE || errno == ECONNRESET,
               "socket send failed: ", std::strerror(errno));
      broken_.store(true, std::memory_order_relaxed);
      return;
    }
    written += static_cast<std::size_t>(result);
  }
}

void SocketChannel::close_send() {
  if (write_fd_ >= 0) {
    ::shutdown(write_fd_, SHUT_WR);
  }
}

bool SocketChannel::recv(std::vector<std::uint8_t>& frame) {
  if (read_fd_ < 0) {
    return false;
  }
  const auto read_all = [&](std::uint8_t* data, std::size_t count,
                            bool eof_ok) -> bool {
    std::size_t got = 0;
    while (got < count) {
      const ssize_t result = ::read(read_fd_, data + got, count - got);
      if (result < 0) {
        if (errno == EINTR) {
          continue;
        }
        DF_CHECK(false, "socket read failed: ", std::strerror(errno));
      }
      if (result == 0) {
        DF_CHECK(eof_ok && got == 0,
                 "peer closed mid-frame (truncated stream)");
        return false;
      }
      got += static_cast<std::size_t>(result);
    }
    return true;
  };

  std::uint8_t prefix[4];
  if (!read_all(prefix, sizeof prefix, /*eof_ok=*/true)) {
    return false;
  }
  std::uint32_t size = 0;
  for (int i = 0; i < 4; ++i) {
    size |= static_cast<std::uint32_t>(prefix[i]) << (8 * i);
  }
  DF_CHECK(size <= wire::kMaxFrameBytes,
           "frame length prefix exceeds sanity bound: ", size);
  frame.resize(size);
  if (size > 0) {
    read_all(frame.data(), size, /*eof_ok=*/false);
  }
  return true;
}

void SocketChannel::close_recv() {
  // A full close (not shutdown) makes the kernel answer later-arriving data
  // with RST, which surfaces as EPIPE/ECONNRESET on a sender blocked in a
  // full-buffer write — exactly the unblock-and-drop teardown we need.
  if (read_fd_ >= 0) {
    ::close(read_fd_);
    read_fd_ = -1;
  }
}

// --- FaultInjectingChannel --------------------------------------------------

FaultInjectingChannel::FaultInjectingChannel(std::unique_ptr<Channel> inner,
                                             FaultOptions options)
    : inner_(std::move(inner)), options_(options), rng_(options.seed) {
  DF_CHECK(options_.reorder_window >= 1, "reorder window must be >= 1");
}

void FaultInjectingChannel::release_down_to(std::size_t keep) {
  while (held_.size() > keep) {
    const std::size_t pick =
        static_cast<std::size_t>(rng_.next_below(held_.size()));
    inner_->send(held_[pick]);
    held_[pick] = std::move(held_.back());
    held_.pop_back();
  }
}

void FaultInjectingChannel::send(std::span<const std::uint8_t> frame) {
  std::vector<std::uint8_t> copy(frame.begin(), frame.end());
  if (rng_.next_bernoulli(options_.duplicate_probability)) {
    ++duplicates_injected_;
    held_.push_back(copy);
  }
  if (rng_.next_bernoulli(options_.hold_probability)) {
    ++frames_held_;
    held_.push_back(std::move(copy));
  } else {
    inner_->send(copy);
  }
  // Release a random subset so held frames are delayed past — and reordered
  // with — later sends, but never past the window bound.
  std::size_t keep = held_.size();
  while (keep > 0 && rng_.next_bernoulli(0.5)) {
    --keep;
  }
  release_down_to(std::min(keep, options_.reorder_window));
}

void FaultInjectingChannel::close_send() {
  release_down_to(0);
  inner_->close_send();
}

bool FaultInjectingChannel::recv(std::vector<std::uint8_t>& frame) {
  return inner_->recv(frame);
}

void FaultInjectingChannel::close_recv() {
  inner_->close_recv();
}

}  // namespace df::distrib
