#include "distrib/channel.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <string>
#include <utility>

#include "distrib/protocol.hpp"
#include "distrib/wire.hpp"
#include "support/check.hpp"

namespace df::distrib {

namespace {

std::size_t round_up_pow2(std::size_t v) {
  std::size_t result = 2;
  while (result < v) {
    result <<= 1;
  }
  return result;
}

}  // namespace

// --- InProcessChannel -------------------------------------------------------

InProcessChannel::InProcessChannel(std::size_t capacity_frames)
    : ring_(round_up_pow2(capacity_frames)) {}

void InProcessChannel::send(std::span<const std::uint8_t> frame) {
  // The sender role migrates between engine workers (whichever completes a
  // phase flushes), serialized by the egress link mutex — announce the
  // handoff to the ring's debug-only SPSC owner check.
  ring_.adopt_producer();
  std::vector<std::uint8_t> buffer(frame.begin(), frame.end());
  for (;;) {
    if (recv_closed_.load(std::memory_order_acquire)) {
      return;  // receiver abandoned the channel; drop
    }
    if (ring_.try_push(buffer)) {
      break;
    }
    conc::UniqueLock lock(mutex_);
    can_send_.wait(lock, [&] {
      return ring_.size() < ring_.capacity() ||
             recv_closed_.load(std::memory_order_acquire);
    });
  }
  {
    conc::MutexLock lock(mutex_);
  }
  can_recv_.notify_one();
}

void InProcessChannel::close_send() {
  send_closed_.store(true, std::memory_order_release);
  {
    conc::MutexLock lock(mutex_);
  }
  can_recv_.notify_all();
}

bool InProcessChannel::recv(std::vector<std::uint8_t>& frame) {
  for (;;) {
    if (auto item = ring_.pop()) {
      frame = std::move(*item);
      {
        conc::MutexLock lock(mutex_);
      }
      can_send_.notify_one();
      return true;
    }
    if (send_closed_.load(std::memory_order_acquire)) {
      // The closed flag was stored after the final push; re-check the ring
      // so a frame racing the close is not lost.
      if (auto item = ring_.pop()) {
        frame = std::move(*item);
        return true;
      }
      return false;
    }
    conc::UniqueLock lock(mutex_);
    can_recv_.wait(lock, [&] {
      return !ring_.empty() || send_closed_.load(std::memory_order_acquire);
    });
  }
}

void InProcessChannel::close_recv() {
  recv_closed_.store(true, std::memory_order_release);
  {
    conc::MutexLock lock(mutex_);
  }
  can_send_.notify_all();
}

// --- SocketChannel ----------------------------------------------------------

SocketChannel::SocketChannel(int write_fd, int read_fd)
    : write_fd_(write_fd), read_fd_(read_fd) {}

std::unique_ptr<SocketChannel> SocketChannel::make_loopback() {
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  DF_CHECK(listener >= 0, "socket() failed: ", std::strerror(errno));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  DF_CHECK(::bind(listener, reinterpret_cast<sockaddr*>(&addr),
                  sizeof addr) == 0,
           "bind(127.0.0.1) failed: ", std::strerror(errno));
  DF_CHECK(::listen(listener, 1) == 0,
           "listen() failed: ", std::strerror(errno));
  socklen_t addr_len = sizeof addr;
  DF_CHECK(::getsockname(listener, reinterpret_cast<sockaddr*>(&addr),
                         &addr_len) == 0,
           "getsockname() failed: ", std::strerror(errno));

  // Loopback connect to a listening socket completes in-kernel (backlog),
  // so the synchronous connect-then-accept sequence cannot deadlock.
  const int client = ::socket(AF_INET, SOCK_STREAM, 0);
  DF_CHECK(client >= 0, "socket() failed: ", std::strerror(errno));
  DF_CHECK(::connect(client, reinterpret_cast<sockaddr*>(&addr),
                     sizeof addr) == 0,
           "connect(127.0.0.1) failed: ", std::strerror(errno));
  const int server = ::accept(listener, nullptr, nullptr);
  DF_CHECK(server >= 0, "accept() failed: ", std::strerror(errno));
  ::close(listener);

  const int nodelay = 1;
  ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof nodelay);
  ::setsockopt(server, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof nodelay);

  return std::unique_ptr<SocketChannel>(new SocketChannel(client, server));
}

std::unique_ptr<SocketChannel> SocketChannel::adopt(int write_fd,
                                                    int read_fd) {
  return std::unique_ptr<SocketChannel>(new SocketChannel(write_fd, read_fd));
}

SocketChannel::~SocketChannel() {
  if (write_fd_ >= 0) {
    ::close(write_fd_);
  }
  if (read_fd_ >= 0) {
    ::close(read_fd_);
  }
}

void SocketChannel::send(std::span<const std::uint8_t> frame) {
  DF_CHECK(frame.size() <= wire::kMaxFrameBytes, "frame too large");
  DF_CHECK(write_fd_ >= 0, "send on a receive-only socket channel");
  if (broken_.load(std::memory_order_relaxed)) {
    return;  // receiver closed its end; the run is tearing down
  }
  // One send() per frame: assemble prefix + payload in the reused scratch
  // so the kernel sees the frame as a single write (with TCP_NODELAY a
  // separate prefix write would go out as its own 4-byte segment).
  const auto size = static_cast<std::uint32_t>(frame.size());
  send_buf_.clear();
  for (int i = 0; i < 4; ++i) {
    send_buf_.push_back(static_cast<std::uint8_t>(size >> (8 * i)));
  }
  send_buf_.insert(send_buf_.end(), frame.begin(), frame.end());

  std::size_t written = 0;
  while (written < send_buf_.size()) {
    // MSG_NOSIGNAL: a dead peer must surface as EPIPE, not SIGPIPE.
    const ssize_t result = ::send(write_fd_, send_buf_.data() + written,
                                  send_buf_.size() - written, MSG_NOSIGNAL);
    if (result < 0) {
      if (errno == EINTR) {
        continue;
      }
      DF_CHECK(errno == EPIPE || errno == ECONNRESET,
               "socket send failed: ", std::strerror(errno));
      broken_.store(true, std::memory_order_relaxed);
      return;
    }
    written += static_cast<std::size_t>(result);
  }
}

void SocketChannel::close_send() {
  if (write_fd_ >= 0) {
    ::shutdown(write_fd_, SHUT_WR);
  }
}

bool SocketChannel::recv(std::vector<std::uint8_t>& frame) {
  if (read_fd_ < 0) {
    return false;
  }
  const auto read_all = [&](std::uint8_t* data, std::size_t count,
                            bool eof_ok) -> bool {
    std::size_t got = 0;
    while (got < count) {
      const ssize_t result = ::read(read_fd_, data + got, count - got);
      if (result < 0) {
        if (errno == EINTR) {
          continue;
        }
        // Half-open teardown: a peer that died abruptly (RST instead of an
        // orderly FIN) surfaces as ECONNRESET here. That is a *retryable*
        // peer-loss — the crash-restart supervisor replays past it — so it
        // gets its own exception type, distinct from the fatal truncated
        // stream below (an orderly close mid-frame can only be a sender
        // bug) and from genuinely unexpected read errors.
        if (errno == ECONNRESET) {
          throw protocol::peer_lost_error(
              std::string("peer connection lost: ") + std::strerror(errno));
        }
        DF_CHECK(false, "socket read failed: ", std::strerror(errno));
      }
      if (result == 0) {
        if (eof_ok && got == 0) {
          return false;
        }
        // Mid-frame EOF on an intact stream can only be a sender bug; the
        // same EOF after a local close_recv() is just where shutdown()
        // truncated the reader — retryable peer loss, like the ECONNRESET
        // the close()-and-RST teardown used to produce here.
        if (torn_down_.load(std::memory_order_relaxed)) {
          throw protocol::peer_lost_error(
              "channel torn down under a mid-frame read");
        }
        DF_CHECK(false, "peer closed mid-frame (truncated stream)");
      }
      got += static_cast<std::size_t>(result);
    }
    return true;
  };

  std::uint8_t prefix[4];
  if (!read_all(prefix, sizeof prefix, /*eof_ok=*/true)) {
    return false;
  }
  std::uint32_t size = 0;
  for (int i = 0; i < 4; ++i) {
    size |= static_cast<std::uint32_t>(prefix[i]) << (8 * i);
  }
  DF_CHECK(size <= wire::kMaxFrameBytes,
           "frame length prefix exceeds sanity bound: ", size);
  frame.resize(size);
  if (size > 0) {
    read_all(frame.data(), size, /*eof_ok=*/false);
  }
  return true;
}

void SocketChannel::close_recv() {
  // shutdown(), never close(): close()ing a descriptor while another
  // thread is blocked in read() on it is an fd-lifetime race (the number
  // can be reused under the reader; TSan flags it). shutdown() wakes the
  // blocked reader with EOF and leaves the descriptor alive until the
  // destructor, which runs only after every reader has let go of the
  // channel. shutdown() on the receive side does *not* wake a peer sender
  // blocked in a full-buffer write, though — that takes SHUT_WR on the
  // sender's own descriptor, which makes its blocked send() return EPIPE
  // (MSG_NOSIGNAL) and drop. Both ends of this stream live here, so tear
  // both down: abandon-the-channel must unblock reader and sender alike.
  torn_down_.store(true, std::memory_order_relaxed);
  if (read_fd_ >= 0) {
    ::shutdown(read_fd_, SHUT_RDWR);
  }
  if (write_fd_ >= 0) {
    ::shutdown(write_fd_, SHUT_WR);
  }
}

// --- FaultInjectingChannel --------------------------------------------------

FaultInjectingChannel::FaultInjectingChannel(std::unique_ptr<Channel> inner,
                                             FaultOptions options)
    : inner_(std::move(inner)), options_(options), rng_(options.seed) {
  DF_CHECK(options_.reorder_window >= 1, "reorder window must be >= 1");
}

void FaultInjectingChannel::release_down_to(std::size_t keep) {
  while (held_.size() > keep) {
    const std::size_t pick =
        static_cast<std::size_t>(rng_.next_below(held_.size()));
    inner_->send(held_[pick]);
    held_[pick] = std::move(held_.back());
    held_.pop_back();
  }
}

void FaultInjectingChannel::send(std::span<const std::uint8_t> frame) {
  std::vector<std::uint8_t> copy(frame.begin(), frame.end());
  if (rng_.next_bernoulli(options_.duplicate_probability)) {
    ++duplicates_injected_;
    held_.push_back(copy);
  }
  if (rng_.next_bernoulli(options_.hold_probability)) {
    ++frames_held_;
    held_.push_back(std::move(copy));
  } else {
    inner_->send(copy);
  }
  // Release a random subset so held frames are delayed past — and reordered
  // with — later sends, but never past the window bound.
  std::size_t keep = held_.size();
  while (keep > 0 && rng_.next_bernoulli(0.5)) {
    --keep;
  }
  release_down_to(std::min(keep, options_.reorder_window));
}

void FaultInjectingChannel::close_send() {
  release_down_to(0);
  inner_->close_send();
}

bool FaultInjectingChannel::recv(std::vector<std::uint8_t>& frame) {
  return inner_->recv(frame);
}

void FaultInjectingChannel::close_recv() {
  inner_->close_recv();
}

// --- CrashableChannel -------------------------------------------------------

CrashableChannel::CrashableChannel(std::unique_ptr<Channel> inner,
                                   Factory factory)
    : inner_(std::move(inner)), factory_(std::move(factory)) {
  DF_CHECK(inner_ != nullptr, "crashable channel needs an inner channel");
  DF_CHECK(factory_ != nullptr, "crashable channel needs a revive factory");
}

std::shared_ptr<Channel> CrashableChannel::snapshot(bool& dead) {
  conc::MutexLock lock(mutex_);
  dead = dead_;
  return inner_;
}

void CrashableChannel::send(std::span<const std::uint8_t> frame) {
  bool dead = false;
  const std::shared_ptr<Channel> inner = snapshot(dead);
  if (dead) {
    return;  // frame lost in flight; retention upstream will replay it
  }
  // A kill() racing this call lands the frame in the severed inner, where
  // it is discarded with the rest of the dead receiver's backlog — the
  // same in-flight loss, decided a moment later.
  inner->send(frame);
}

void CrashableChannel::close_send() {
  std::shared_ptr<Channel> inner;
  {
    conc::MutexLock lock(mutex_);
    if (dead_) {
      // Absorbed: the sender machine is kClosed, and the retention replay
      // re-issues close_send against the revived channel so the restarted
      // receiver still observes frames-then-EOF.
      return;
    }
    if (hold_close_) {
      // Between revive() and release_close() the sender may finish its run
      // and close — but the pending replay's frames must precede the EOF,
      // so the close is parked until the replay releases it.
      deferred_close_ = true;
      return;
    }
    inner = inner_;
  }
  inner->close_send();
}

bool CrashableChannel::recv(std::vector<std::uint8_t>& frame) {
  bool dead = false;
  const std::shared_ptr<Channel> inner = snapshot(dead);
  if (dead) {
    return false;  // the old reader exits; frames in the severed inner drop
  }
  return inner->recv(frame);
}

void CrashableChannel::close_recv() {
  bool dead = false;
  const std::shared_ptr<Channel> inner = snapshot(dead);
  if (dead) {
    return;
  }
  inner->close_recv();
}

void CrashableChannel::kill() {
  std::shared_ptr<Channel> severed;
  {
    conc::MutexLock lock(mutex_);
    if (dead_) {
      return;
    }
    dead_ = true;
    hold_close_ = false;
    deferred_close_ = false;  // the channel it was parked for is dying
    severed = inner_;
  }
  // Outside the lock: both calls may contend with blocked peers. close_recv
  // unblocks both a sender stuck on a full channel (it drops and moves on)
  // and a reader parked mid-recv (EOF or retryable peer loss); close_send
  // marks the sender side closed so the old reader drains what already
  // arrived and exits through its closed marker.
  severed->close_recv();
  severed->close_send();
}

void CrashableChannel::revive() {
  std::unique_ptr<Channel> fresh = factory_();
  DF_CHECK(fresh != nullptr, "crashable channel factory returned null");
  conc::MutexLock lock(mutex_);
  DF_CHECK(dead_, "revive() without a preceding kill()");
  inner_ = std::move(fresh);
  dead_ = false;
  // Park sender closes until the pending replay has run (release_close):
  // without this, a sender that finishes during the recovery window could
  // close the fresh channel before the replayed frames enter it, and the
  // restarted receiver would observe EOF ahead of frames it still needs.
  hold_close_ = true;
}

void CrashableChannel::release_close() {
  std::shared_ptr<Channel> inner;
  bool apply = false;
  {
    conc::MutexLock lock(mutex_);
    hold_close_ = false;
    apply = deferred_close_ && !dead_;
    deferred_close_ = false;
    inner = inner_;
  }
  if (apply) {
    inner->close_send();
  }
}

}  // namespace df::distrib
