#include "distrib/transport.hpp"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "distrib/wire.hpp"
#include "support/check.hpp"
#include "support/stopwatch.hpp"

namespace df::distrib {

namespace {

/// Thrown when a neighbour closed its channel before the protocol allowed
/// it — the sign that *another* engine failed and the run is tearing down.
/// The coordinator reports the root cause, not these secondary aborts.
class peer_closed_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A batch flushes as soon as its payload reaches this size, so memory per
/// egress link stays bounded no matter how chatty a phase is (multiple
/// batch frames per phase are legal; each carries the same phase id).
constexpr std::size_t kBatchFlushBytes = std::size_t{48} * 1024;

/// Sender side of one egress channel: assigns the per-channel sequence
/// numbers, accumulates the current phase's deliveries into one
/// kDeliveryBatch frame (encoded incrementally — nothing is staged as live
/// objects), and owns the encode scratch buffer. Both buffers retain their
/// capacity across phases, so a warmed-up sender encodes and flushes with
/// zero allocations.
struct EgressLink {
  explicit EgressLink(Channel* channel) : channel(channel) {}

  Channel* channel;
  std::uint64_t next_seq = 0;
  std::vector<std::uint8_t> buf;
  wire::BatchEncoder batch;

  void add_delivery(event::PhaseId phase, const core::Delivery& delivery,
                    TransportStats& stats) {
    batch.add(delivery);
    if (batch.payload_bytes() >= kBatchFlushBytes) {
      flush(phase, stats);
    }
  }

  void flush(event::PhaseId phase, TransportStats& stats) {
    if (batch.pending() == 0) {
      return;
    }
    stats.batched_deliveries += batch.pending();
    batch.finish(next_seq++, phase, buf);
    channel->send(buf);
    ++stats.frames_sent;
    ++stats.batch_frames_sent;
    stats.bytes_sent += buf.size();
  }

  void send_watermark(event::PhaseId phase, TransportStats& stats) {
    flush(phase, stats);
    wire::encode_watermark(next_seq++, phase, buf);
    channel->send(buf);
    ++stats.frames_sent;
    ++stats.watermarks_sent;
    stats.bytes_sent += buf.size();
  }
};

/// Recycles received-frame buffers between the engine thread (which
/// releases each consumed frame) and its reader threads (which acquire one
/// before every recv). In steady state every buffer in flight came from
/// here with its capacity intact, so ingestion performs no per-frame
/// allocations. The lock is uncontended in practice: batching makes frames
/// rare (a couple per channel per phase).
class BufferPool {
 public:
  std::vector<std::uint8_t> acquire() {
    std::lock_guard lock(mutex_);
    if (pool_.empty()) {
      return {};
    }
    std::vector<std::uint8_t> buf = std::move(pool_.back());
    pool_.pop_back();
    return buf;
  }

  void release(std::vector<std::uint8_t>&& buf) {
    buf.clear();
    std::lock_guard lock(mutex_);
    if (pool_.size() < kMaxPooled) {
      pool_.push_back(std::move(buf));
    }
  }

 private:
  static constexpr std::size_t kMaxPooled = 64;
  std::mutex mutex_;
  std::vector<std::vector<std::uint8_t>> pool_;
};

/// One received frame travelling from a reader to the engine: the decoded
/// header plus the raw encoded bytes (already validated by the reader; the
/// payload is decoded only by the engine, straight into its input
/// bundles). `bytes` is a pooled buffer and returns to the pool once the
/// engine has consumed the frame.
struct RawFrame {
  wire::FrameHeader header;
  std::vector<std::uint8_t> bytes;
};

/// One entry of an engine's ingress queue: a validated frame from upstream
/// block `src`, or (with `closed`) that channel's end-of-stream marker,
/// carrying the reader's error if validation failed.
struct IngressItem {
  std::size_t src = 0;
  bool closed = false;
  std::exception_ptr error;
  RawFrame frame;
};

/// Bounded MPSC queue between an engine's channel readers (one producer
/// per ingress channel) and the engine thread. The bound is part of the
/// backpressure story: readers stop pulling once the engine falls this far
/// behind, which in turn fills the channel and blocks the sender.
///
/// Why readers exist at all (DESIGN.md, "Real transport"): an engine that
/// blocked on *one* channel's recv while another ingress channel filled up
/// could deadlock the ensemble (sender j stuck on a full j->k while k
/// waits for a laggard j' whose progress transitively needs j). Readers
/// guarantee every ingress channel keeps draining no matter which sender
/// the engine is logically waiting for; the engine itself always consumes
/// from this queue while waiting, so the queue never stays full while
/// anyone needs it to move.
class IngressQueue {
 public:
  explicit IngressQueue(std::size_t capacity) : capacity_(capacity) {}

  void push(IngressItem item) {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock, [&] { return items_.size() < capacity_; });
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
  }

  IngressItem pop() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [&] { return !items_.empty(); });
    IngressItem item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

 private:
  std::size_t capacity_;
  std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<IngressItem> items_;
};

/// Engine-side reassembly state for one ingress channel: restores the
/// exact send order from sequence numbers, parking early arrivals in a
/// reorder buffer and dropping duplicates — the exactly-once, in-order
/// ingestion layer that makes fault-injected channels survivable. Fed by
/// the engine thread only (frames arrive through the IngressQueue), so it
/// needs no synchronization of its own.
class IngressSequencer {
 public:
  /// Accepts one validated frame: duplicates are counted and dropped (their
  /// buffers recycled), early arrivals parked, and every frame that
  /// completes the sequence moves to the in-order ready queue.
  void feed(RawFrame&& frame, BufferPool& pool) {
    ++frames_received_;
    bytes_received_ += frame.bytes.size();
    if (frame.header.seq < next_seq_ ||
        out_of_order_.contains(frame.header.seq)) {
      ++duplicates_dropped_;
      pool.release(std::move(frame.bytes));
      return;
    }
    out_of_order_.emplace(frame.header.seq, std::move(frame));
    while (!out_of_order_.empty() &&
           out_of_order_.begin()->first == next_seq_) {
      ready_.push_back(std::move(out_of_order_.begin()->second));
      out_of_order_.erase(out_of_order_.begin());
      ++next_seq_;
    }
  }

  /// Pops the next in-order frame, if one is ready. The engine consumes
  /// frames one at a time, stopping at each watermark — frames past the
  /// current phase's watermark stay queued until that phase's window.
  bool next_ready(RawFrame& out) {
    if (ready_.empty()) {
      return false;
    }
    out = std::move(ready_.front());
    ready_.pop_front();
    return true;
  }

  void mark_closed() { closed_ = true; }
  bool closed() const { return closed_; }

  /// After the final watermark, nothing new may remain: trailing frames
  /// reaching feed() must all have been duplicates, and no gap may be left
  /// in the sequence.
  void check_drained() const {
    DF_CHECK(ready_.empty(), "trailing non-duplicate frames after teardown");
    DF_CHECK(out_of_order_.empty(),
             "channel closed with frames missing from the sequence");
  }

  std::uint64_t frames_received() const { return frames_received_; }
  std::uint64_t bytes_received() const { return bytes_received_; }
  std::uint64_t duplicates_dropped() const { return duplicates_dropped_; }

 private:
  std::uint64_t next_seq_ = 0;
  std::map<std::uint64_t, RawFrame> out_of_order_;
  std::deque<RawFrame> ready_;
  bool closed_ = false;
  std::uint64_t frames_received_ = 0;
  std::uint64_t bytes_received_ = 0;
  std::uint64_t duplicates_dropped_ = 0;
};

/// Body of one channel-reader thread: blocking-receive frames into pooled
/// buffers, validate them (a bounds-checked structural walk — corruption
/// dies here, off the engine's critical path, without allocating), and
/// hand the raw bytes to the engine through the bounded queue. Always ends
/// by pushing the channel's closed marker.
void reader_main(Channel* channel, std::size_t src, IngressQueue& queue,
                 BufferPool& pool) {
  std::exception_ptr error;
  try {
    for (;;) {
      std::vector<std::uint8_t> buf = pool.acquire();
      if (!channel->recv(buf)) {
        pool.release(std::move(buf));
        break;
      }
      IngressItem item;
      item.src = src;
      const wire::DecodeStatus status = wire::validate_frame(buf);
      DF_CHECK(status == wire::DecodeStatus::kOk,
               "rejected ingress frame: ", wire::to_string(status));
      wire::decode_header(buf, item.frame.header);
      item.frame.bytes = std::move(buf);
      queue.push(std::move(item));
    }
  } catch (...) {
    error = std::current_exception();
    // Keep consuming to EOF, discarding frames: a reader that stopped
    // receiving would let the upstream sender block forever on a full
    // channel, freezing that engine before it could close its *other*
    // egress channels and deadlocking the ensemble. The error is already
    // captured; it rides the closed marker once EOF arrives.
    try {
      std::vector<std::uint8_t> discard;
      while (channel->recv(discard)) {
      }
    } catch (...) {
    }
  }
  IngressItem closed;
  closed.src = src;
  closed.closed = true;
  closed.error = error;
  queue.push(std::move(closed));
}

}  // namespace

/// Everything one partition engine owns: its block bounds, its own
/// ProgramInstance (constructed exactly like the sequential reference's, so
/// per-vertex module state and rng streams agree bit-for-bit — a real
/// deployment would ship the same program to every machine), its channel
/// endpoints, and its pre-routed external events. `ingress_channels` and
/// `sequencers` are parallel vectors over upstream blocks 0..block-1 in
/// ascending order; `queue` sits between the per-channel reader threads
/// and the engine thread.
struct TransportEngine::EngineState {
  std::size_t block = 0;
  std::uint32_t begin = 1;  // inclusive internal range; begin > end if empty
  std::uint32_t end = 0;
  std::unique_ptr<core::ProgramInstance> instance;
  std::vector<Channel*> ingress_channels;
  std::vector<IngressSequencer> sequencers;
  std::unique_ptr<IngressQueue> queue;
  BufferPool pool;  // recycles frame buffers engine -> readers
  std::vector<EgressLink> egress;  // to blocks block+1.., ascending
  std::vector<std::vector<event::ExternalEvent>> events;  // [phase - 1]
  core::ExecStats stats;
  TransportStats tstats;
  std::exception_ptr error;
};

TransportEngine::TransportEngine(const core::Program& program,
                                 TransportOptions options)
    : program_(program),
      options_(std::move(options)),
      partitioning_(options_.partitioning.bounds.empty()
                        ? graph::partition_balanced(program.numbering,
                                                    options_.machines)
                        : options_.partitioning) {
  DF_CHECK(options_.machines >= 1, "transport needs at least one machine");
  const auto n = static_cast<std::uint32_t>(program_.numbering.size());
  graph::validate_partition_cut(partitioning_, n, options_.machines);
  owner_.assign(n + 1, 0);
  for (std::size_t k = 0; k < partitioning_.block_count(); ++k) {
    for (std::uint32_t v = partitioning_.bounds[k] + 1;
         v <= partitioning_.bounds[k + 1]; ++v) {
      owner_[v] = static_cast<std::uint32_t>(k);
    }
  }
}

void TransportEngine::engine_main(EngineState& state,
                                  event::PhaseId num_phases) {
  // One reader per ingress channel for the whole run; they exit at channel
  // EOF (every sender closes its egress on completion *and* on abort, so
  // EOF always arrives).
  std::vector<std::thread> readers;
  readers.reserve(state.ingress_channels.size());
  for (std::size_t j = 0; j < state.ingress_channels.size(); ++j) {
    readers.emplace_back(reader_main, state.ingress_channels[j], j,
                         std::ref(*state.queue), std::ref(state.pool));
  }
  std::size_t open_channels = state.ingress_channels.size();

  // Takes one item off the ingress queue: feeds a frame to its channel's
  // sequencer, or marks the channel closed (rethrowing the reader's error,
  // e.g. a rejected frame — a root-cause protocol failure).
  const auto ingest_one = [&state, &open_channels] {
    IngressItem item = state.queue->pop();
    if (item.closed) {
      --open_channels;
      state.sequencers[item.src].mark_closed();
      if (item.error) {
        std::rethrow_exception(item.error);
      }
      return;
    }
    state.sequencers[item.src].feed(std::move(item.frame), state.pool);
  };

  try {
    core::ProgramInstance& instance = *state.instance;
    const std::uint32_t n = instance.n();
    // Messages waiting per vertex within the current phase; only this
    // block's slots are ever populated (plus the check below proves it).
    std::vector<std::optional<event::InputBundle>> pending(n + 1);

    // Routes one remote delivery into its pending bundle. Batch payloads
    // decode straight into this — one Value materialization per delivery,
    // no intermediate collection.
    const auto deliver_remote = [this, &state, &pending,
                                 n](core::Delivery&& d) {
      DF_CHECK(d.to_index >= 1 && d.to_index <= n &&
                   owner_[d.to_index] == state.block,
               "misrouted delivery for internal index ", d.to_index);
      if (!pending[d.to_index].has_value()) {
        pending[d.to_index].emplace();
      }
      pending[d.to_index]->push_back(
          event::Message{d.to_port, std::move(d.value)});
    };

    for (event::PhaseId p = 1; p <= num_phases; ++p) {
      // Phase-advance handshake: ingest every upstream block's phase-p
      // deliveries, in ascending block order, blocking on each until its
      // watermark arrives. Ascending block order = ascending sender index
      // order, the order the sequential reference applies them in. While
      // logically waiting for one channel the engine still consumes the
      // shared queue, so every ingress channel keeps draining (the
      // no-deadlock argument in DESIGN.md rests on this). Stopping at each
      // watermark keeps frames the sender pipelined ahead (later phases)
      // queued until their own window.
      for (IngressSequencer& in : state.sequencers) {
        for (bool watermark = false; !watermark;) {
          RawFrame raw;
          if (!in.next_ready(raw)) {
            if (in.closed()) {
              throw peer_closed_error(
                  "upstream partition closed its channel before phase " +
                  std::to_string(p) + " completed");
            }
            ingest_one();
            continue;
          }
          DF_CHECK(raw.header.phase == p, "frame for phase ",
                   raw.header.phase, " inside phase ", p,
                   "'s window (protocol violation)");
          switch (raw.header.type) {
            case wire::FrameType::kWatermark:
              watermark = true;
              break;
            case wire::FrameType::kDeliveryBatch: {
              // The reader already validated the frame; these statuses are
              // protocol assertions, not reachable decode paths.
              wire::BatchReader batch;
              wire::DecodeStatus status = batch.open(raw.bytes);
              DF_CHECK(status == wire::DecodeStatus::kOk,
                       "batch frame failed to reopen: ",
                       wire::to_string(status));
              core::Delivery d;
              while (batch.remaining() > 0) {
                status = batch.next(d);
                DF_CHECK(status == wire::DecodeStatus::kOk,
                         "batched delivery failed to decode: ",
                         wire::to_string(status));
                deliver_remote(std::move(d));
              }
              break;
            }
            case wire::FrameType::kDelivery: {
              wire::Frame frame;
              const wire::DecodeStatus status =
                  wire::decode_frame(raw.bytes, frame);
              DF_CHECK(status == wire::DecodeStatus::kOk,
                       "delivery frame failed to reopen: ",
                       wire::to_string(status));
              deliver_remote(std::move(frame.delivery));
              break;
            }
          }
          state.pool.release(std::move(raw.bytes));
        }
      }
      for (const event::ExternalEvent& ev : state.events[p - 1]) {
        const std::uint32_t index = instance.internal_index(ev.vertex);
        if (!pending[index].has_value()) {
          pending[index].emplace();
        }
        pending[index]->push_back(event::Message{ev.port, ev.value});
      }

      // Execute this block in index order — Δ-semantics identical to the
      // sequential reference's sweep restricted to [begin, end].
      for (std::uint32_t v = state.begin; v <= state.end; ++v) {
        const bool is_source = instance.is_source(v);
        if (!is_source && !pending[v].has_value()) {
          continue;  // no input changed: execution unnecessary this phase
        }
        const event::InputBundle bundle =
            pending[v].has_value() ? std::move(*pending[v])
                                   : event::InputBundle{};
        pending[v].reset();

        support::Stopwatch compute_timer;
        core::ExecutionResult result =
            core::execute_vertex(instance, v, p, bundle);
        state.stats.compute_ns += compute_timer.elapsed_ns();
        ++state.stats.executed_pairs;

        for (core::Delivery& d : result.deliveries) {
          DF_CHECK(d.to_index > v, "delivery to an already-visited vertex");
          const std::uint32_t dest = owner_[d.to_index];
          if (dest == state.block) {
            if (!pending[d.to_index].has_value()) {
              pending[d.to_index].emplace();
            }
            pending[d.to_index]->push_back(
                event::Message{d.to_port, std::move(d.value)});
            ++state.tstats.local_messages;
          } else {
            state.egress[dest - state.block - 1].add_delivery(p, d,
                                                              state.tstats);
            ++state.tstats.remote_messages;
          }
          ++state.stats.messages_delivered;
        }
        state.stats.sink_records += result.sink_records.size();
        sinks_.record_batch(std::move(result.sink_records));
      }

      for (EgressLink& out : state.egress) {
        out.send_watermark(p, state.tstats);
      }
      ++state.stats.phases_completed;
    }

    // Normal teardown: tell downstream we are done first, then consume
    // trailing (necessarily duplicate) frames from upstream until every
    // reader reports EOF — see DESIGN.md, "Real transport", teardown
    // ordering.
    for (EgressLink& out : state.egress) {
      out.channel->close_send();
    }
    while (open_channels > 0) {
      ingest_one();
    }
    for (const IngressSequencer& in : state.sequencers) {
      in.check_drained();
    }
  } catch (...) {
    state.error = std::current_exception();
    // Abort teardown: close egress so downstream observes the failure (a
    // close before the expected watermark) and aborts in turn, then keep
    // draining ingress to EOF so upstream senders never block forever on a
    // full channel to us. Secondary reader errors are absorbed — the root
    // cause is already recorded.
    for (EgressLink& out : state.egress) {
      out.channel->close_send();
    }
    while (open_channels > 0) {
      try {
        ingest_one();
      } catch (...) {
      }
    }
  }
  for (std::thread& reader : readers) {
    reader.join();
  }
  for (const IngressSequencer& in : state.sequencers) {
    state.tstats.frames_received += in.frames_received();
    state.tstats.bytes_received += in.bytes_received();
    state.tstats.duplicates_dropped += in.duplicates_dropped();
  }
}

void TransportEngine::run(event::PhaseId num_phases, core::PhaseFeed* feed) {
  DF_CHECK(!ran_, "run() may be called once per TransportEngine");
  ran_ = true;
  const std::size_t machines = options_.machines;
  support::Stopwatch wall;

  std::vector<EngineState> states(machines);
  for (std::size_t k = 0; k < machines; ++k) {
    states[k].block = k;
    states[k].begin = partitioning_.bounds[k] + 1;
    states[k].end = partitioning_.bounds[k + 1];
    states[k].instance = std::make_unique<core::ProgramInstance>(program_);
    states[k].events.resize(num_phases);
    states[k].queue = std::make_unique<IngressQueue>(
        std::max<std::size_t>(8, options_.channel_capacity));
  }

  // One channel per ordered pair (j, k), j < k; forward-only traffic needs
  // nothing else. Watermarks flow on every channel each phase, so even a
  // pair with no crossing edges keeps its handshake (and an *empty* block
  // still paces its downstream neighbours).
  for (std::size_t j = 0; j < machines; ++j) {
    for (std::size_t k = j + 1; k < machines; ++k) {
      std::unique_ptr<Channel> channel;
      switch (options_.channel) {
        case ChannelKind::kInProcess:
          channel =
              std::make_unique<InProcessChannel>(options_.channel_capacity);
          break;
        case ChannelKind::kSocket:
          channel = SocketChannel::make_loopback();
          break;
      }
      if (options_.channel_wrapper) {
        channel = options_.channel_wrapper(std::move(channel), j, k);
        DF_CHECK(channel != nullptr, "channel_wrapper returned null");
      }
      states[j].egress.emplace_back(channel.get());
      states[k].ingress_channels.push_back(channel.get());
      states[k].sequencers.emplace_back();
      channels_.push_back(std::move(channel));
    }
  }

  // Pull the feed up front (feeds are sequential by contract) and route
  // every external event to the partition owning its source vertex.
  core::NullFeed null_feed;
  core::PhaseFeed& source = feed != nullptr ? *feed : null_feed;
  const std::vector<std::uint32_t>& index_of = program_.numbering.index_of;
  const std::uint32_t source_bound = program_.numbering.m[0];
  for (event::PhaseId p = 1; p <= num_phases; ++p) {
    std::vector<event::ExternalEvent> batch = source.events_for(p);
    for (event::ExternalEvent& ev : batch) {
      DF_CHECK(ev.vertex < index_of.size(), "unknown vertex ", ev.vertex);
      const std::uint32_t index = index_of[ev.vertex];
      DF_CHECK(index >= 1 && index <= source_bound,
               "external events may only target source vertices");
      states[owner_[index]].events[p - 1].push_back(std::move(ev));
    }
  }

  std::vector<std::thread> threads;
  threads.reserve(machines);
  for (std::size_t k = 0; k < machines; ++k) {
    threads.emplace_back([this, &states, k, num_phases] {
      engine_main(states[k], num_phases);
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }

  // Aggregate, then rethrow the first root-cause error (a module exception
  // or protocol violation beats the secondary peer-closed aborts it set
  // off in the neighbours).
  std::exception_ptr root_error;
  std::exception_ptr peer_error;
  stats_.phases_completed = num_phases;
  for (EngineState& state : states) {
    stats_.executed_pairs += state.stats.executed_pairs;
    stats_.messages_delivered += state.stats.messages_delivered;
    stats_.sink_records += state.stats.sink_records;
    stats_.compute_ns += state.stats.compute_ns;
    stats_.phases_completed =
        std::min(stats_.phases_completed, state.stats.phases_completed);
    transport_stats_.frames_sent += state.tstats.frames_sent;
    transport_stats_.frames_received += state.tstats.frames_received;
    transport_stats_.bytes_sent += state.tstats.bytes_sent;
    transport_stats_.bytes_received += state.tstats.bytes_received;
    transport_stats_.batch_frames_sent += state.tstats.batch_frames_sent;
    transport_stats_.batched_deliveries += state.tstats.batched_deliveries;
    transport_stats_.watermarks_sent += state.tstats.watermarks_sent;
    transport_stats_.duplicates_dropped += state.tstats.duplicates_dropped;
    transport_stats_.remote_messages += state.tstats.remote_messages;
    transport_stats_.local_messages += state.tstats.local_messages;
    if (state.error) {
      try {
        std::rethrow_exception(state.error);
      } catch (const peer_closed_error&) {
        if (!peer_error) {
          peer_error = state.error;
        }
      } catch (...) {
        if (!root_error) {
          root_error = state.error;
        }
      }
    }
  }
  stats_.wall_seconds = wall.elapsed_s();
  stats_.max_inflight_phases = 0;
  stats_.mean_inflight_phases = 0.0;
  if (root_error) {
    std::rethrow_exception(root_error);
  }
  if (peer_error) {
    std::rethrow_exception(peer_error);
  }
}

}  // namespace df::distrib
