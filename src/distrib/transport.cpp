#include "distrib/transport.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <string>
#include <thread>
#include <utility>

#include "concurrency/annotations.hpp"
#include "core/engine.hpp"
#include "distrib/protocol.hpp"
#include "distrib/wire.hpp"
#include "support/check.hpp"
#include "support/stopwatch.hpp"

namespace df::distrib {

namespace {

using protocol::EngineEvent;
using protocol::peer_closed_error;
using protocol::ReceiverEvent;
using protocol::SenderEvent;
using protocol::SenderState;

/// A batch's payload is finished (encoded into a held frame) as soon as it
/// reaches this size, so memory per open (link, phase) stays bounded no
/// matter how chatty a phase is (multiple batch frames per phase are legal;
/// each carries the same phase id).
constexpr std::size_t kBatchFlushBytes = std::size_t{48} * 1024;

/// Concurrent egress side of one partition: owns every egress link of the
/// block. The block engine's workers add boundary-crossing deliveries from
/// any thread (serialized per link by that link's mutex); the engine's
/// phase-completion hook flushes completed phases in watermark order.
///
/// Because the worker pool pipelines phases, deliveries for phase q arrive
/// while earlier phases are still open — but a frame for phase q must not
/// reach the peer before watermark q-1 (the receiver's phase window
/// rejects it), and the per-channel seq must reflect send order. So each
/// link holds one in-progress batch per open phase and sends nothing until
/// the phase completes; oversized batches are encoded early into held
/// frames with a placeholder seq (bounding memory at ~kBatchFlushBytes per
/// open (link, phase)) and wire::patch_seq stamps the real number at send
/// time. Sub-threshold traffic keeps the frames-per-phase ceiling: exactly
/// one kDeliveryBatch (if any deliveries) plus one kWatermark per channel
/// per phase.
///
/// The add -> flush ordering needs no extra fence: a phase-q delivery is
/// added while its producing pair executes, the pair's finish is applied
/// afterwards, and only then can phase q complete and trigger the flush —
/// with the link mutex serializing add against flush.
class EgressHub {
 public:
  explicit EgressHub(const std::vector<Channel*>& channels) {
    links_.reserve(channels.size());
    for (Channel* channel : channels) {
      links_.push_back(std::make_unique<Link>());
      links_.back()->channel = channel;
    }
  }

  /// Routes one boundary-crossing delivery into link `link_index`'s batch
  /// for `phase`. Called from engine worker threads.
  void add(std::size_t link_index, event::PhaseId phase,
           core::Delivery&& delivery) {
    Link& link = *links_[link_index];
    conc::MutexLock lock(link.mutex);
    ++link.stats.remote_messages;
    // Workers only produce deliveries while the block engine is alive, and
    // close_all runs strictly after its destruction — an add after close is
    // a protocol violation, not a race to tolerate.
    DF_CHECK(!link.machine.is(SenderState::kClosed),
             "egress delivery for phase ", phase, " after close_send");
    if (link.machine.is(SenderState::kFailed)) {
      return;  // peer unreachable; the run is already aborting
    }
    DF_CHECK(phase > link.flushed_through,
             "egress delivery for phase ", phase,
             " after its watermark was flushed");
    PhaseBatch& batch = link.batches[phase];
    batch.encoder.add(delivery);
    if (batch.encoder.payload_bytes() >= kBatchFlushBytes) {
      link.stats.batched_deliveries += batch.encoder.pending();
      batch.held_frames.emplace_back();
      // Send order (and therefore this frame's seq) is unknown until the
      // phase completes; patch_seq fills it in inside flush_through.
      batch.encoder.finish(/*seq=*/0, phase, batch.held_frames.back());
    }
  }

  /// Sends every unflushed phase <= p, in phase order, each phase's
  /// batches followed by its watermark. Monotone and idempotent per link,
  /// so out-of-order completion callbacks from concurrent workers are
  /// safe. Send failures take the link's sender machine to kFailed and
  /// record the first error instead of throwing (callers run inside engine
  /// worker loops).
  void flush_through(event::PhaseId p) {
    for (std::unique_ptr<Link>& entry : links_) {
      Link& link = *entry;
      conc::MutexLock lock(link.mutex);
      while (link.machine.is(SenderState::kOpen) && link.flushed_through < p) {
        const event::PhaseId q = link.flushed_through + 1;
        try {
          flush_phase_locked(link, q);
        } catch (...) {
          record_error(std::current_exception());
          link.machine.advance(SenderEvent::kSendError);
          break;
        }
        link.machine.advance(SenderEvent::kFlush);
        link.flushed_through = q;
      }
    }
  }

  /// Idempotent: the sender machine's kClose edge fires at most once per
  /// link (kFailed also closes — the abort path still signals EOF so the
  /// peer can finish draining).
  void close_all() {
    for (std::unique_ptr<Link>& entry : links_) {
      Link& link = *entry;
      conc::MutexLock lock(link.mutex);
      if (!link.machine.is(SenderState::kClosed)) {
        link.machine.advance(SenderEvent::kClose);
      }
      try {
        link.channel->close_send();
      } catch (...) {
        record_error(std::current_exception());
      }
    }
  }

  std::exception_ptr error() {
    conc::MutexLock lock(error_mutex_);
    return error_;
  }

  void fold_stats(TransportStats& total) {
    for (std::unique_ptr<Link>& entry : links_) {
      Link& link = *entry;
      conc::MutexLock lock(link.mutex);
      total.frames_sent += link.stats.frames_sent;
      total.bytes_sent += link.stats.bytes_sent;
      total.batch_frames_sent += link.stats.batch_frames_sent;
      total.batched_deliveries += link.stats.batched_deliveries;
      total.watermarks_sent += link.stats.watermarks_sent;
      total.remote_messages += link.stats.remote_messages;
    }
  }

 private:
  struct LinkStats {
    std::uint64_t frames_sent = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t batch_frames_sent = 0;
    std::uint64_t batched_deliveries = 0;
    std::uint64_t watermarks_sent = 0;
    std::uint64_t remote_messages = 0;
  };

  /// One (link, phase) accumulation: the in-progress incremental batch
  /// plus any threshold-overflow frames already encoded and awaiting their
  /// send-time seq.
  struct PhaseBatch {
    wire::BatchEncoder encoder;
    std::vector<std::vector<std::uint8_t>> held_frames;
  };

  struct Link {
    Channel* channel = nullptr;  // set once at construction, then immutable
    conc::Mutex mutex;
    /// Lifecycle per protocol.hpp's sender machine: one kFlush per flushed
    /// phase, kSendError on the first failure, kClose exactly once.
    protocol::SenderMachine machine DF_GUARDED_BY(mutex);
    std::uint64_t next_seq DF_GUARDED_BY(mutex) = 0;
    event::PhaseId flushed_through DF_GUARDED_BY(mutex) = 0;
    std::map<event::PhaseId, PhaseBatch> batches DF_GUARDED_BY(mutex);
    // encode scratch, capacity retained
    std::vector<std::uint8_t> buf DF_GUARDED_BY(mutex);
    LinkStats stats DF_GUARDED_BY(mutex);
  };

  void flush_phase_locked(Link& link, event::PhaseId q)
      DF_REQUIRES(link.mutex) {
    const auto it = link.batches.find(q);
    if (it != link.batches.end()) {
      PhaseBatch& batch = it->second;
      for (std::vector<std::uint8_t>& frame : batch.held_frames) {
        wire::patch_seq(frame, link.next_seq++);
        link.channel->send(frame);
        ++link.stats.frames_sent;
        ++link.stats.batch_frames_sent;
        link.stats.bytes_sent += frame.size();
      }
      if (batch.encoder.pending() > 0) {
        link.stats.batched_deliveries += batch.encoder.pending();
        batch.encoder.finish(link.next_seq++, q, link.buf);
        link.channel->send(link.buf);
        ++link.stats.frames_sent;
        ++link.stats.batch_frames_sent;
        link.stats.bytes_sent += link.buf.size();
      }
      link.batches.erase(it);
    }
    wire::encode_watermark(link.next_seq++, q, link.buf);
    link.channel->send(link.buf);
    ++link.stats.frames_sent;
    ++link.stats.watermarks_sent;
    link.stats.bytes_sent += link.buf.size();
  }

  void record_error(std::exception_ptr error) {
    conc::MutexLock lock(error_mutex_);
    if (!error_) {
      error_ = std::move(error);
    }
  }

  std::vector<std::unique_ptr<Link>> links_;
  conc::Mutex error_mutex_;
  std::exception_ptr error_ DF_GUARDED_BY(error_mutex_);
};

/// Recycles received-frame buffers between the engine thread (which
/// releases each consumed frame) and its reader threads (which acquire one
/// before every recv). In steady state every buffer in flight came from
/// here with its capacity intact, so ingestion performs no per-frame
/// allocations. The lock is uncontended in practice: batching makes frames
/// rare (a couple per channel per phase).
class BufferPool {
 public:
  std::vector<std::uint8_t> acquire() {
    conc::MutexLock lock(mutex_);
    if (pool_.empty()) {
      return {};
    }
    std::vector<std::uint8_t> buf = std::move(pool_.back());
    pool_.pop_back();
    return buf;
  }

  void release(std::vector<std::uint8_t>&& buf) {
    buf.clear();
    conc::MutexLock lock(mutex_);
    if (pool_.size() < kMaxPooled) {
      pool_.push_back(std::move(buf));
    }
  }

 private:
  static constexpr std::size_t kMaxPooled = 64;
  conc::Mutex mutex_;
  std::vector<std::vector<std::uint8_t>> pool_ DF_GUARDED_BY(mutex_);
};

/// One received frame travelling from a reader to the engine: the decoded
/// header plus the raw encoded bytes (already validated by the reader; the
/// payload is decoded only by the engine, straight into its input
/// bundles). `bytes` is a pooled buffer and returns to the pool once the
/// engine has consumed the frame.
struct RawFrame {
  wire::FrameHeader header;
  std::vector<std::uint8_t> bytes;
};

/// One entry of an engine's ingress queue: a validated frame from upstream
/// block `src`, or (with `closed`) that channel's end-of-stream marker,
/// carrying the reader's error if validation failed.
struct IngressItem {
  std::size_t src = 0;
  bool closed = false;
  std::exception_ptr error;
  RawFrame frame;
};

/// Bounded MPSC queue between an engine's channel readers (one producer
/// per ingress channel) and the engine thread. The bound is part of the
/// backpressure story: readers stop pulling once the engine falls this far
/// behind, which in turn fills the channel and blocks the sender.
///
/// Why readers exist at all (DESIGN.md, "Real transport"): an engine that
/// blocked on *one* channel's recv while another ingress channel filled up
/// could deadlock the ensemble (sender j stuck on a full j->k while k
/// waits for a laggard j' whose progress transitively needs j). Readers
/// guarantee every ingress channel keeps draining no matter which sender
/// the engine is logically waiting for; the engine itself always consumes
/// from this queue while waiting, so the queue never stays full while
/// anyone needs it to move.
class IngressQueue {
 public:
  explicit IngressQueue(std::size_t capacity) : capacity_(capacity) {}

  void push(IngressItem item) {
    conc::UniqueLock lock(mutex_);
    // Explicit predicate loops (not the lambda-predicate overload): the
    // predicates read items_, which is guarded, and the analysis cannot
    // see through a lambda's closure.
    while (items_.size() >= capacity_) {
      not_full_.wait(lock);
    }
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
  }

  IngressItem pop() {
    conc::UniqueLock lock(mutex_);
    while (items_.empty()) {
      not_empty_.wait(lock);
    }
    IngressItem item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

 private:
  const std::size_t capacity_;
  conc::Mutex mutex_;
  conc::CondVar not_full_;
  conc::CondVar not_empty_;
  std::deque<IngressItem> items_ DF_GUARDED_BY(mutex_);
};

/// Engine-side reassembly state for one ingress channel: restores the
/// exact send order from sequence numbers, parking early arrivals in a
/// reorder buffer and dropping duplicates — the exactly-once, in-order
/// ingestion layer that makes fault-injected channels survivable. Fed by
/// the engine thread only (frames arrive through the IngressQueue), so it
/// needs no synchronization of its own.
class IngressSequencer {
 public:
  /// Accepts one validated frame: duplicates are counted and dropped (their
  /// buffers recycled), early arrivals parked, and every frame that
  /// completes the sequence moves to the in-order ready queue.
  void feed(RawFrame&& frame, BufferPool& pool) {
    ++frames_received_;
    bytes_received_ += frame.bytes.size();
    if (frame.header.seq < next_seq_ ||
        out_of_order_.contains(frame.header.seq)) {
      ++duplicates_dropped_;
      // Legal while streaming or drained; after a failure the trailing
      // stream is garbage and no longer a protocol event.
      if (!machine_.terminal()) {
        machine_.advance(ReceiverEvent::kDuplicate);
      }
      pool.release(std::move(frame.bytes));
      return;
    }
    out_of_order_.emplace(frame.header.seq, std::move(frame));
    while (!out_of_order_.empty() &&
           out_of_order_.begin()->first == next_seq_) {
      ready_.push_back(std::move(out_of_order_.begin()->second));
      out_of_order_.erase(out_of_order_.begin());
      ++next_seq_;
    }
  }

  /// Pops the next in-order frame, if one is ready. The engine consumes
  /// frames one at a time, stopping at each watermark — frames past the
  /// current phase's watermark stay queued until that phase's window.
  bool next_ready(RawFrame& out) {
    if (ready_.empty()) {
      return false;
    }
    out = std::move(ready_.front());
    ready_.pop_front();
    return true;
  }

  void mark_closed() { closed_ = true; }
  bool closed() const { return closed_; }

  /// The stream's receiver machine (protocol.hpp). The sequencer advances
  /// kDuplicate itself (drops never reach the consumer); the engine thread
  /// advances kFrame/kWatermark/kFinalWatermark at consumption, and
  /// kEof/kError where it observes the close — the machine must not reach
  /// a terminal state before the frames ahead of the close are consumed.
  protocol::ReceiverMachine& machine() { return machine_; }

  /// After the final watermark, nothing new may remain: trailing frames
  /// reaching feed() must all have been duplicates, and no gap may be left
  /// in the sequence.
  void check_drained() const {
    DF_CHECK(ready_.empty(), "trailing non-duplicate frames after teardown");
    DF_CHECK(out_of_order_.empty(),
             "channel closed with frames missing from the sequence");
  }

  std::uint64_t frames_received() const { return frames_received_; }
  std::uint64_t bytes_received() const { return bytes_received_; }
  std::uint64_t duplicates_dropped() const { return duplicates_dropped_; }

 private:
  std::uint64_t next_seq_ = 0;
  std::map<std::uint64_t, RawFrame> out_of_order_;
  std::deque<RawFrame> ready_;
  protocol::ReceiverMachine machine_;
  bool closed_ = false;
  std::uint64_t frames_received_ = 0;
  std::uint64_t bytes_received_ = 0;
  std::uint64_t duplicates_dropped_ = 0;
};

/// Body of one channel-reader thread: blocking-receive frames into pooled
/// buffers, validate them (a bounds-checked structural walk — corruption
/// dies here, off the engine's critical path, without allocating), and
/// hand the raw bytes to the engine through the bounded queue. Always ends
/// by pushing the channel's closed marker.
void reader_main(Channel* channel, std::size_t src, IngressQueue& queue,
                 BufferPool& pool) {
  std::exception_ptr error;
  try {
    for (;;) {
      std::vector<std::uint8_t> buf = pool.acquire();
      if (!channel->recv(buf)) {
        pool.release(std::move(buf));
        break;
      }
      IngressItem item;
      item.src = src;
      const wire::DecodeStatus status = wire::validate_frame(buf);
      DF_CHECK(status == wire::DecodeStatus::kOk,
               "rejected ingress frame: ", wire::to_string(status));
      wire::decode_header(buf, item.frame.header);
      item.frame.bytes = std::move(buf);
      queue.push(std::move(item));
    }
  } catch (...) {
    error = std::current_exception();
    // Keep consuming to EOF, discarding frames: a reader that stopped
    // receiving would let the upstream sender block forever on a full
    // channel, freezing that engine before it could close its *other*
    // egress channels and deadlocking the ensemble. The error is already
    // captured; it rides the closed marker once EOF arrives.
    try {
      std::vector<std::uint8_t> discard;
      while (channel->recv(discard)) {
      }
    } catch (...) {
    }
  }
  IngressItem closed;
  closed.src = src;
  closed.closed = true;
  closed.error = error;
  queue.push(std::move(closed));
}

}  // namespace

/// Everything one partition engine owns: its block bounds, its channel
/// endpoints, and its pre-routed external events. The block's own
/// core::Engine (which instantiates the full program, so per-vertex module
/// state and rng streams agree bit-for-bit with the sequential reference)
/// is constructed inside engine_main. `ingress_channels` and `sequencers`
/// are parallel vectors over upstream blocks 0..block-1 in ascending
/// order; `queue` sits between the per-channel reader threads and the
/// coordinator thread.
struct TransportEngine::EngineState {
  std::size_t block = 0;
  std::uint32_t begin = 1;  // inclusive internal range; begin > end if empty
  std::uint32_t end = 0;
  std::vector<Channel*> ingress_channels;
  std::vector<IngressSequencer> sequencers;
  std::unique_ptr<IngressQueue> queue;
  BufferPool pool;  // recycles frame buffers engine -> readers
  std::vector<Channel*> egress_channels;  // to blocks block+1.., ascending
  std::vector<std::vector<event::ExternalEvent>> events;  // [phase - 1]
  core::ExecStats stats;
  TransportStats tstats;
  std::exception_ptr error;
};

TransportEngine::TransportEngine(const core::Program& program,
                                 TransportOptions options)
    : program_(program),
      options_(std::move(options)),
      partitioning_(options_.partitioning.bounds.empty()
                        ? graph::partition_balanced(program.numbering,
                                                    options_.machines)
                        : options_.partitioning) {
  DF_CHECK(options_.machines >= 1, "transport needs at least one machine");
  DF_CHECK(options_.engine_threads >= 1,
           "transport needs at least one engine thread per block");
  DF_CHECK(options_.scheduler_shards >= 1,
           "transport needs at least one scheduler shard per block");
  DF_CHECK(options_.max_inflight_phases >= 1,
           "transport block engines need a finite phase window");
  const auto n = static_cast<std::uint32_t>(program_.numbering.size());
  graph::validate_partition_cut(partitioning_, n, options_.machines);
  owner_.assign(n + 1, 0);
  for (std::size_t k = 0; k < partitioning_.block_count(); ++k) {
    for (std::uint32_t v = partitioning_.bounds[k] + 1;
         v <= partitioning_.bounds[k + 1]; ++v) {
      owner_[v] = static_cast<std::uint32_t>(k);
    }
  }
}

void TransportEngine::engine_main(EngineState& state,
                                  event::PhaseId num_phases) {
  // The egress hub and the block engine outlive the try below: the catch
  // path must capture the engine's partial stats and close the hub's
  // channels, and the stats fold at the bottom runs on both paths.
  EgressHub hub(state.egress_channels);
  std::unique_ptr<core::Engine> engine;

  // This partition's lifecycle machine. Every control-flow milestone below
  // steps it through a checked advance; an out-of-order milestone (e.g.
  // draining ingress before closing egress) is a DF_CHECK failure in every
  // build type, and tools/verify_protocol explores the same table
  // exhaustively in CI.
  protocol::EngineMachine machine;

  // One reader per ingress channel for the whole run; they exit at channel
  // EOF (every sender closes its egress on completion *and* on abort, so
  // EOF always arrives).
  std::vector<std::thread> readers;
  readers.reserve(state.ingress_channels.size());
  for (std::size_t j = 0; j < state.ingress_channels.size(); ++j) {
    readers.emplace_back(reader_main, state.ingress_channels[j], j,
                         std::ref(*state.queue), std::ref(state.pool));
  }
  std::size_t open_channels = state.ingress_channels.size();

  // Takes one item off the ingress queue: feeds a frame to its channel's
  // sequencer, or marks the channel closed (rethrowing the reader's error,
  // e.g. a rejected frame — a root-cause protocol failure).
  const auto ingest_one = [&state, &open_channels] {
    IngressItem item = state.queue->pop();
    if (item.closed) {
      --open_channels;
      state.sequencers[item.src].mark_closed();
      if (item.error) {
        state.sequencers[item.src].machine().advance(ReceiverEvent::kError);
        std::rethrow_exception(item.error);
      }
      return;
    }
    state.sequencers[item.src].feed(std::move(item.frame), state.pool);
  };

  try {
    const auto n = static_cast<std::uint32_t>(program_.numbering.size());

    // The block's full worker pool: a core::Engine scoped to [begin, end].
    // Its egress hook routes boundary-crossing deliveries into the hub's
    // per-(channel, phase) batches, and its phase-completion hook flushes
    // them (batches, then watermark) the moment the phase's last finish is
    // applied — from whichever worker applied it.
    core::EngineOptions eopts;
    eopts.threads = options_.engine_threads;
    eopts.scheduler_shards = options_.scheduler_shards;
    eopts.dispatch = options_.dispatch;
    eopts.max_inflight_phases = options_.max_inflight_phases;
    core::EngineOptions::BlockScope scope;
    scope.begin = state.begin;
    scope.end = state.end;
    scope.egress = [this, &state, &hub, n](core::Delivery&& d,
                                           event::PhaseId phase) {
      DF_CHECK(d.to_index >= 1 && d.to_index <= n, "egress delivery for ",
               "out-of-range internal index ", d.to_index);
      const std::size_t dest = owner_[d.to_index];
      DF_CHECK(dest > state.block,
               "backward cross-partition delivery for internal index ",
               d.to_index);
      hub.add(dest - state.block - 1, phase, std::move(d));
    };
    scope.sinks = &sinks_;  // shared store; record_batch is thread-safe
    eopts.block = std::move(scope);
    eopts.on_phase_complete = [&hub](event::PhaseId completed) {
      hub.flush_through(completed);
    };
    engine = std::make_unique<core::Engine>(program_, std::move(eopts));
    engine->start();
    machine.advance(EngineEvent::kStart);

    // Reassembled remote deliveries for the phase being opened, still
    // addressed by global internal index; start_phase consumes them.
    std::vector<core::Delivery> remote;
    const auto deliver_remote = [this, &state, &remote, n](core::Delivery&& d) {
      DF_CHECK(d.to_index >= 1 && d.to_index <= n &&
                   owner_[d.to_index] == state.block,
               "misrouted delivery for internal index ", d.to_index);
      remote.push_back(std::move(d));
    };

    for (event::PhaseId p = 1; p <= num_phases; ++p) {
      remote.clear();
      // Phase-advance handshake: ingest every upstream block's phase-p
      // deliveries, in ascending block order, blocking on each until its
      // watermark arrives. Ascending block order = ascending sender index
      // order, the order the sequential reference applies them in. While
      // logically waiting for one channel the engine still consumes the
      // shared queue, so every ingress channel keeps draining (the
      // no-deadlock argument in DESIGN.md rests on this). Stopping at each
      // watermark keeps frames the sender pipelined ahead (later phases)
      // queued until their own window.
      for (IngressSequencer& in : state.sequencers) {
        for (bool watermark = false; !watermark;) {
          RawFrame raw;
          if (!in.next_ready(raw)) {
            if (in.closed()) {
              // EOF before this phase's watermark: the peer aborted. The
              // receiver machine lands in kPeerClosed and classify() ranks
              // the resulting error below any root cause.
              in.machine().advance(ReceiverEvent::kEof);
              throw peer_closed_error(
                  "upstream partition closed its channel before phase " +
                  std::to_string(p) + " completed");
            }
            ingest_one();
            continue;
          }
          DF_CHECK(raw.header.phase == p, "frame for phase ",
                   raw.header.phase, " inside phase ", p,
                   "'s window (protocol violation)");
          switch (raw.header.type) {
            case wire::FrameType::kWatermark:
              in.machine().advance(p == num_phases
                                       ? ReceiverEvent::kFinalWatermark
                                       : ReceiverEvent::kWatermark);
              watermark = true;
              break;
            case wire::FrameType::kDeliveryBatch: {
              in.machine().advance(ReceiverEvent::kFrame);
              // The reader already validated the frame; these statuses are
              // protocol assertions, not reachable decode paths.
              wire::BatchReader batch;
              wire::DecodeStatus status = batch.open(raw.bytes);
              DF_CHECK(status == wire::DecodeStatus::kOk,
                       "batch frame failed to reopen: ",
                       wire::to_string(status));
              core::Delivery d;
              while (batch.remaining() > 0) {
                status = batch.next(d);
                DF_CHECK(status == wire::DecodeStatus::kOk,
                         "batched delivery failed to decode: ",
                         wire::to_string(status));
                deliver_remote(std::move(d));
              }
              break;
            }
            case wire::FrameType::kDelivery: {
              in.machine().advance(ReceiverEvent::kFrame);
              wire::Frame frame;
              const wire::DecodeStatus status =
                  wire::decode_frame(raw.bytes, frame);
              DF_CHECK(status == wire::DecodeStatus::kOk,
                       "delivery frame failed to reopen: ",
                       wire::to_string(status));
              deliver_remote(std::move(frame.delivery));
              break;
            }
          }
          state.pool.release(std::move(raw.bytes));
        }
      }

      // Open the phase window: external events plus the injected remote
      // deliveries enter together, then the worker pool takes over. The
      // call blocks while max_inflight_phases are active — the inner
      // backpressure; meanwhile this block's readers keep draining ingress
      // and its workers keep flushing egress, so the ensemble's
      // no-deadlock argument is unchanged (DESIGN.md, "Two-level
      // parallelism").
      engine->start_phase(state.events[p - 1], remote);
    }

    // Wait for every started phase to finish (rethrows the first module
    // error after draining — watermarks for all phases were already
    // flushed by the completion hook, so downstream is never left
    // waiting). The flush_through below is belt-and-braces for the
    // final callback having raced with finish(); it is idempotent.
    engine->finish();
    state.stats = engine->stats();
    engine.reset();
    if (hub.error() != nullptr) {
      std::rethrow_exception(hub.error());
    }
    hub.flush_through(num_phases);
    // Re-check after the belt-and-braces flush: a send failure *inside* it
    // is recorded, not thrown, and used to vanish here — downstream would
    // abort on the missing watermark and the run reported its secondary
    // peer_closed_error instead of this root cause.
    if (hub.error() != nullptr) {
      std::rethrow_exception(hub.error());
    }
    machine.advance(EngineEvent::kLocalComplete);

    // Normal teardown: tell downstream we are done first, then consume
    // trailing (necessarily duplicate) frames from upstream until every
    // reader reports EOF — see DESIGN.md, "Real transport", teardown
    // ordering. The machine enforces it: kIngressEof has no edge out of
    // kLocalDone, only out of kEgressClosed.
    hub.close_all();
    machine.advance(EngineEvent::kCloseEgress);
    while (open_channels > 0) {
      ingest_one();
    }
    for (IngressSequencer& in : state.sequencers) {
      // Each receiver consumed its final watermark in the phase loop
      // (kDrained), so the observed EOF is clean. With zero phases the
      // machine is still kStreaming and the same edge lands in
      // kPeerClosed — with nothing expected, that close is also clean.
      in.machine().advance(ReceiverEvent::kEof);
      in.check_drained();
    }
    machine.advance(EngineEvent::kIngressEof);
  } catch (...) {
    state.error = std::current_exception();
    machine.advance(EngineEvent::kError);
    // Abort teardown: capture whatever the block engine managed to do,
    // then destroy it *first* (its destructor joins or abandons the
    // workers, so no more egress traffic can be produced), close egress so
    // downstream observes the failure (a close before the expected
    // watermark) and aborts in turn, and keep draining ingress to EOF so
    // upstream senders never block forever on a full channel to us.
    // Secondary reader errors are absorbed — the root cause is recorded.
    if (engine != nullptr) {
      state.stats = engine->stats();
      engine.reset();
    }
    hub.close_all();
    machine.advance(EngineEvent::kCloseEgress);
    while (open_channels > 0) {
      try {
        ingest_one();
      } catch (...) {
      }
    }
    machine.advance(EngineEvent::kIngressEof);
  }
  DF_CHECK(machine.terminal(), "engine teardown ended in non-terminal state ",
           protocol::to_string(machine.state()));
  for (std::thread& reader : readers) {
    reader.join();
  }
  for (const IngressSequencer& in : state.sequencers) {
    state.tstats.frames_received += in.frames_received();
    state.tstats.bytes_received += in.bytes_received();
    state.tstats.duplicates_dropped += in.duplicates_dropped();
  }
  hub.fold_stats(state.tstats);
  // The engine counts every delivery (pre-routing); the hub counted the
  // cross-boundary ones. Saturating on the abort path, where the stats
  // snapshot may predate the hub's last add.
  state.tstats.local_messages =
      state.stats.messages_delivered >= state.tstats.remote_messages
          ? state.stats.messages_delivered - state.tstats.remote_messages
          : 0;
}

void TransportEngine::run(event::PhaseId num_phases, core::PhaseFeed* feed) {
  DF_CHECK(!ran_, "run() may be called once per TransportEngine");
  ran_ = true;
  const std::size_t machines = options_.machines;
  support::Stopwatch wall;

  std::vector<EngineState> states(machines);
  for (std::size_t k = 0; k < machines; ++k) {
    states[k].block = k;
    states[k].begin = partitioning_.bounds[k] + 1;
    states[k].end = partitioning_.bounds[k + 1];
    states[k].events.resize(num_phases);
    states[k].queue = std::make_unique<IngressQueue>(
        std::max<std::size_t>(8, options_.channel_capacity));
  }

  // One channel per ordered pair (j, k), j < k; forward-only traffic needs
  // nothing else. Watermarks flow on every channel each phase, so even a
  // pair with no crossing edges keeps its handshake (and an *empty* block
  // still paces its downstream neighbours).
  for (std::size_t j = 0; j < machines; ++j) {
    for (std::size_t k = j + 1; k < machines; ++k) {
      std::unique_ptr<Channel> channel;
      switch (options_.channel) {
        case ChannelKind::kInProcess:
          channel =
              std::make_unique<InProcessChannel>(options_.channel_capacity);
          break;
        case ChannelKind::kSocket:
          channel = SocketChannel::make_loopback();
          break;
      }
      if (options_.channel_wrapper) {
        channel = options_.channel_wrapper(std::move(channel), j, k);
        DF_CHECK(channel != nullptr, "channel_wrapper returned null");
      }
      states[j].egress_channels.push_back(channel.get());
      states[k].ingress_channels.push_back(channel.get());
      states[k].sequencers.emplace_back();
      channels_.push_back(std::move(channel));
    }
  }

  // Pull the feed up front (feeds are sequential by contract) and route
  // every external event to the partition owning its source vertex.
  core::NullFeed null_feed;
  core::PhaseFeed& source = feed != nullptr ? *feed : null_feed;
  const std::vector<std::uint32_t>& index_of = program_.numbering.index_of;
  const std::uint32_t source_bound = program_.numbering.m[0];
  for (event::PhaseId p = 1; p <= num_phases; ++p) {
    std::vector<event::ExternalEvent> batch = source.events_for(p);
    for (event::ExternalEvent& ev : batch) {
      DF_CHECK(ev.vertex < index_of.size(), "unknown vertex ", ev.vertex);
      const std::uint32_t index = index_of[ev.vertex];
      DF_CHECK(index >= 1 && index <= source_bound,
               "external events may only target source vertices");
      states[owner_[index]].events[p - 1].push_back(std::move(ev));
    }
  }

  std::vector<std::thread> threads;
  threads.reserve(machines);
  for (std::size_t k = 0; k < machines; ++k) {
    threads.emplace_back([this, &states, k, num_phases] {
      engine_main(states[k], num_phases);
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }

  // Aggregate, then rethrow the highest-ranked error under the protocol's
  // explicit precedence (protocol::ErrorRank): a root cause — module
  // exception, protocol violation, send failure — beats the secondary
  // peer-closed aborts it set off in the neighbours; within a rank the
  // first block wins, keeping reports deterministic.
  std::exception_ptr first_error;
  protocol::ErrorRank first_rank = protocol::ErrorRank::kNone;
  stats_.phases_completed = num_phases;
  for (EngineState& state : states) {
    stats_.executed_pairs += state.stats.executed_pairs;
    stats_.messages_delivered += state.stats.messages_delivered;
    stats_.sink_records += state.stats.sink_records;
    stats_.compute_ns += state.stats.compute_ns;
    stats_.bookkeeping_ns += state.stats.bookkeeping_ns;
    stats_.phases_completed =
        std::min(stats_.phases_completed, state.stats.phases_completed);
    stats_.max_inflight_phases =
        std::max(stats_.max_inflight_phases, state.stats.max_inflight_phases);
    stats_.steals_ok += state.stats.steals_ok;
    stats_.steals_empty += state.stats.steals_empty;
    stats_.parks += state.stats.parks;
    transport_stats_.frames_sent += state.tstats.frames_sent;
    transport_stats_.frames_received += state.tstats.frames_received;
    transport_stats_.bytes_sent += state.tstats.bytes_sent;
    transport_stats_.bytes_received += state.tstats.bytes_received;
    transport_stats_.batch_frames_sent += state.tstats.batch_frames_sent;
    transport_stats_.batched_deliveries += state.tstats.batched_deliveries;
    transport_stats_.watermarks_sent += state.tstats.watermarks_sent;
    transport_stats_.duplicates_dropped += state.tstats.duplicates_dropped;
    transport_stats_.remote_messages += state.tstats.remote_messages;
    transport_stats_.local_messages += state.tstats.local_messages;
    const protocol::ErrorRank rank = protocol::classify(state.error);
    if (protocol::outranks(rank, first_rank)) {
      first_rank = rank;
      first_error = state.error;
    }
  }
  stats_.wall_seconds = wall.elapsed_s();
  stats_.mean_inflight_phases = 0.0;
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

}  // namespace df::distrib
