#include "distrib/transport.hpp"

#include <algorithm>
#include <atomic>
#include <deque>
#include <map>
#include <string>
#include <thread>
#include <utility>

#include "concurrency/annotations.hpp"
#include "core/engine.hpp"
#include "distrib/protocol.hpp"
#include "distrib/wire.hpp"
#include "support/check.hpp"
#include "support/stopwatch.hpp"

namespace df::distrib {

namespace {

using protocol::EngineEvent;
using protocol::peer_closed_error;
using protocol::ReceiverEvent;
using protocol::SenderEvent;
using protocol::SenderState;

/// A batch's payload is finished (encoded into a held frame) as soon as it
/// reaches this size, so memory per open (link, phase) stays bounded no
/// matter how chatty a phase is (multiple batch frames per phase are legal;
/// each carries the same phase id).
constexpr std::size_t kBatchFlushBytes = std::size_t{48} * 1024;

/// Concurrent egress side of one partition: owns every egress link of the
/// block. The block engine's workers add boundary-crossing deliveries from
/// any thread (serialized per link by that link's mutex); the engine's
/// phase-completion hook flushes completed phases in watermark order.
///
/// Because the worker pool pipelines phases, deliveries for phase q arrive
/// while earlier phases are still open — but a frame for phase q must not
/// reach the peer before watermark q-1 (the receiver's phase window
/// rejects it), and the per-channel seq must reflect send order. So each
/// link holds one in-progress batch per open phase and sends nothing until
/// the phase completes; oversized batches are encoded early into held
/// frames with a placeholder seq (bounding memory at ~kBatchFlushBytes per
/// open (link, phase)) and wire::patch_seq stamps the real number at send
/// time. Sub-threshold traffic keeps the frames-per-phase ceiling: exactly
/// one kDeliveryBatch (if any deliveries) plus one kWatermark per channel
/// per phase.
///
/// The add -> flush ordering needs no extra fence: a phase-q delivery is
/// added while its producing pair executes, the pair's finish is applied
/// afterwards, and only then can phase q complete and trigger the flush —
/// with the link mutex serializing add against flush.
///
/// Crash-restart recovery (retain mode, DESIGN.md "Crash-restart
/// recovery") layers three things on top, all inactive when retain is
/// false:
///   * retention — every sent frame is kept, keyed by seq, until the
///     downstream partition's checkpoint commit calls ack_through; a
///     restarted downstream asks replay_from to re-send everything past
///     its checkpoint's consumed floor;
///   * deterministic framing — deliveries stage as live objects and are
///     sorted by (to_index, to_port) (unique within a phase: one delivery
///     per in-edge per phase) before encoding at flush time, so a
///     restarted *sender's* re-executed phases reproduce byte-identical
///     frames under the original seqs and the peer's sequencer can drop
///     them as duplicates. The trade: staged deliveries hold live Values,
///     so memory per open (link, phase) is bounded by the phase's traffic
///     rather than kBatchFlushBytes;
///   * rollback — a restarted sender rewinds its seq/flush cursors to the
///     checkpoint's and clears in-progress batches; re-execution restages
///     them. Re-sends of already-sent seqs count as frames_replayed, not
///     frames_sent, so frames_sent keeps counting unique seqs and the
///     frames-per-phase ceiling holds across restarts.
class EgressHub {
 public:
  /// One link's send-side cursor pair, recorded into checkpoints.
  struct LinkCursor {
    std::uint64_t next_seq = 0;
    event::PhaseId flushed_through = 0;
  };

  EgressHub(const std::vector<Channel*>& channels, bool retain)
      : retain_(retain) {
    links_.reserve(channels.size());
    for (Channel* channel : channels) {
      links_.push_back(std::make_unique<Link>());
      links_.back()->channel = channel;
    }
  }

  /// Routes one boundary-crossing delivery into link `link_index`'s batch
  /// for `phase`. Called from engine worker threads.
  void add(std::size_t link_index, event::PhaseId phase,
           core::Delivery&& delivery) {
    Link& link = *links_[link_index];
    conc::MutexLock lock(link.mutex);
    ++link.stats.remote_messages;
    // Workers only produce deliveries while the block engine is alive, and
    // close_all runs strictly after its destruction — an add after close is
    // a protocol violation, not a race to tolerate.
    DF_CHECK(!link.machine.is(SenderState::kClosed),
             "egress delivery for phase ", phase, " after close_send");
    if (link.machine.is(SenderState::kFailed)) {
      return;  // peer unreachable; the run is already aborting
    }
    DF_CHECK(phase > link.flushed_through,
             "egress delivery for phase ", phase,
             " after its watermark was flushed");
    PhaseBatch& batch = link.batches[phase];
    if (retain_) {
      // Deterministic framing: stage the live delivery; the flush sorts
      // and encodes the whole phase at once.
      batch.staged.push_back(std::move(delivery));
      return;
    }
    batch.encoder.add(delivery);
    if (batch.encoder.payload_bytes() >= kBatchFlushBytes) {
      link.stats.batched_deliveries += batch.encoder.pending();
      batch.held_frames.emplace_back();
      // Send order (and therefore this frame's seq) is unknown until the
      // phase completes; patch_seq fills it in inside flush_through.
      batch.encoder.finish(/*seq=*/0, phase, batch.held_frames.back());
    }
  }

  /// Sends every unflushed phase <= p, in phase order, each phase's
  /// batches followed by its watermark. Monotone and idempotent per link,
  /// so out-of-order completion callbacks from concurrent workers are
  /// safe. Send failures take the link's sender machine to kFailed and
  /// record the first error instead of throwing (callers run inside engine
  /// worker loops).
  void flush_through(event::PhaseId p) {
    for (std::unique_ptr<Link>& entry : links_) {
      Link& link = *entry;
      conc::MutexLock lock(link.mutex);
      if (retain_) {
        prune_locked(link);  // harvest acks posted since the last flush
      }
      while (link.machine.is(SenderState::kOpen) && link.flushed_through < p) {
        const event::PhaseId q = link.flushed_through + 1;
        try {
          flush_phase_locked(link, q);
        } catch (...) {
          record_error(std::current_exception());
          link.machine.advance(SenderEvent::kSendError);
          break;
        }
        link.machine.advance(SenderEvent::kFlush);
        link.flushed_through = q;
      }
    }
  }

  /// Idempotent: the sender machine's kClose edge fires at most once per
  /// link (kFailed also closes — the abort path still signals EOF so the
  /// peer can finish draining).
  void close_all() {
    for (std::unique_ptr<Link>& entry : links_) {
      Link& link = *entry;
      conc::MutexLock lock(link.mutex);
      if (!link.machine.is(SenderState::kClosed)) {
        link.machine.advance(SenderEvent::kClose);
      }
      try {
        link.channel->close_send();
      } catch (...) {
        record_error(std::current_exception());
      }
    }
  }

  std::exception_ptr error() {
    conc::MutexLock lock(error_mutex_);
    return error_;
  }

  /// Snapshot of every link's send-side cursors, for the checkpoint image.
  /// Call only at a quiescent point after flush_through (no concurrent
  /// adds or flushes advancing the cursors mid-snapshot).
  std::vector<LinkCursor> cursors() {
    std::vector<LinkCursor> out;
    out.reserve(links_.size());
    for (std::unique_ptr<Link>& entry : links_) {
      Link& link = *entry;
      conc::MutexLock lock(link.mutex);
      out.push_back({link.next_seq, link.flushed_through});
    }
    return out;
  }

  /// Restart rollback: rewinds every link to a checkpoint's cursors and
  /// discards in-progress batches (re-execution restages them). The
  /// downstream peer never died, so the sender machine stays kOpen and the
  /// re-executed flushes re-send their frames under the original seqs —
  /// deterministically identical bytes — which the peer's sequencer drops
  /// as duplicates. Retained frames are kept: another partition may still
  /// request them.
  void rollback(const std::vector<LinkCursor>& cursors) {
    DF_CHECK(retain_, "egress rollback without retention");
    DF_CHECK(cursors.size() == links_.size(), "egress rollback cursor count");
    for (std::size_t i = 0; i < links_.size(); ++i) {
      Link& link = *links_[i];
      conc::MutexLock lock(link.mutex);
      DF_CHECK(link.machine.is(SenderState::kOpen),
               "egress rollback on a ", protocol::to_string(link.machine.state()),
               " link");
      link.batches.clear();
      link.next_seq = cursors[i].next_seq;
      link.flushed_through = cursors[i].flushed_through;
    }
  }

  /// Downstream checkpoint commit for link `link_index`: frames below
  /// `floor` can never be requested again, so retention may drop them.
  /// This is the watermark bound on replay memory. Deliberately lock-free
  /// (a monotone atomic floor, harvested by the sender's own flushes and
  /// by replay_from): the caller is the *downstream* coordinator, and this
  /// link's mutex may be held by an upstream worker blocked on a send into
  /// the very channel that coordinator has stopped draining — taking the
  /// mutex here would close a deadlock cycle through the backpressure.
  void ack_through(std::size_t link_index, std::uint64_t floor) {
    std::atomic<std::uint64_t>& cell = links_[link_index]->ack_floor;
    std::uint64_t seen = cell.load(std::memory_order_relaxed);
    while (seen < floor &&
           !cell.compare_exchange_weak(seen, floor,
                                       std::memory_order_release,
                                       std::memory_order_relaxed)) {
    }
  }

  /// Re-sends every retained frame with seq >= from_seq down link
  /// `link_index`, bracketed by the sender machine's kReplayStart /
  /// kReplayDone edges. Called by the *restarted downstream partition's*
  /// supervisor thread — not by this block's own workers — after it
  /// revived its end of the channel; holding the link mutex for the whole
  /// replay means a concurrent flush_through never observes kReplaying
  /// (the verifier's model additionally proves the interleaved composition
  /// safe). If the original session had already closed, a fresh sender
  /// machine walks the same verified open->replay->close path and the
  /// close is re-issued so the revived peer still sees frames-then-EOF.
  void replay_from(std::size_t link_index, std::uint64_t from_seq) {
    DF_CHECK(retain_, "egress replay without retention");
    Link& link = *links_[link_index];
    conc::MutexLock lock(link.mutex);
    if (link.machine.is(SenderState::kFailed)) {
      return;  // the run is aborting; the restarted peer will observe EOF
    }
    const bool was_closed = link.machine.is(SenderState::kClosed);
    if (was_closed) {
      link.machine = protocol::SenderMachine();
    }
    // Requesting replay from `from_seq` is also an ack: the restarted peer
    // committed that floor, so earlier frames are unreachable.
    ack_through(link_index, from_seq);
    prune_locked(link);
    link.machine.advance(SenderEvent::kReplayStart);
    try {
      for (auto it = link.retained.lower_bound(from_seq);
           it != link.retained.end(); ++it) {
        link.channel->send(it->second);
        link.machine.advance(SenderEvent::kFlush);
        ++link.stats.frames_replayed;
      }
    } catch (...) {
      record_error(std::current_exception());
      link.machine.advance(SenderEvent::kSendError);
      return;
    }
    link.machine.advance(SenderEvent::kReplayDone);
    if (was_closed) {
      link.machine.advance(SenderEvent::kClose);
      try {
        link.channel->close_send();
      } catch (...) {
        record_error(std::current_exception());
      }
    }
  }

  /// frames_replayed is deliberately NOT folded here: fold_stats runs
  /// when this hub's own partition completes, but a crashed *downstream*
  /// partition's replay_from can still bump the counter afterwards (the
  /// upstream may finish its run long before the victim even crashes).
  /// The ensemble reads frames_replayed() once every partition thread has
  /// joined instead.
  void fold_stats(TransportStats& total) {
    for (std::unique_ptr<Link>& entry : links_) {
      Link& link = *entry;
      conc::MutexLock lock(link.mutex);
      total.frames_sent += link.stats.frames_sent;
      total.bytes_sent += link.stats.bytes_sent;
      total.batch_frames_sent += link.stats.batch_frames_sent;
      total.batched_deliveries += link.stats.batched_deliveries;
      total.watermarks_sent += link.stats.watermarks_sent;
      total.remote_messages += link.stats.remote_messages;
    }
  }

  /// Sum of replayed frames across links — rollback re-sends and
  /// retention replays both land here. Only stable once no restarted
  /// peer can request another replay (all partition threads joined).
  std::uint64_t frames_replayed() {
    std::uint64_t total = 0;
    for (std::unique_ptr<Link>& entry : links_) {
      Link& link = *entry;
      conc::MutexLock lock(link.mutex);
      total += link.stats.frames_replayed;
    }
    return total;
  }

 private:
  struct LinkStats {
    std::uint64_t frames_sent = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t batch_frames_sent = 0;
    std::uint64_t batched_deliveries = 0;
    std::uint64_t watermarks_sent = 0;
    std::uint64_t remote_messages = 0;
    std::uint64_t frames_replayed = 0;
  };

  /// One (link, phase) accumulation: the in-progress incremental batch
  /// plus any threshold-overflow frames already encoded and awaiting their
  /// send-time seq. Retain mode uses `staged` instead — live deliveries
  /// held until the flush sorts and encodes them.
  struct PhaseBatch {
    wire::BatchEncoder encoder;
    std::vector<std::vector<std::uint8_t>> held_frames;
    std::vector<core::Delivery> staged;
  };

  struct Link {
    Channel* channel = nullptr;  // set once at construction, then immutable
    conc::Mutex mutex;
    /// Lifecycle per protocol.hpp's sender machine: one kFlush per flushed
    /// phase, kSendError on the first failure, kClose exactly once —
    /// plus, in retain mode, kReplayStart/kReplayDone brackets around
    /// replay_from.
    protocol::SenderMachine machine DF_GUARDED_BY(mutex);
    std::uint64_t next_seq DF_GUARDED_BY(mutex) = 0;
    event::PhaseId flushed_through DF_GUARDED_BY(mutex) = 0;
    /// Count of distinct seqs ever sent (the high-water mark next_seq ever
    /// reached); a send below it is a rollback re-send.
    std::uint64_t sent_high DF_GUARDED_BY(mutex) = 0;
    std::map<event::PhaseId, PhaseBatch> batches DF_GUARDED_BY(mutex);
    /// Retain mode: sent frames keyed by seq, pruned below ack_floor.
    std::map<std::uint64_t, std::vector<std::uint8_t>> retained
        DF_GUARDED_BY(mutex);
    /// Monotone retention floor posted by the downstream peer's checkpoint
    /// commits (ack_through); applied to `retained` only by threads already
    /// holding the mutex (prune_locked).
    std::atomic<std::uint64_t> ack_floor{0};
    // encode scratch, capacity retained
    std::vector<std::uint8_t> buf DF_GUARDED_BY(mutex);
    LinkStats stats DF_GUARDED_BY(mutex);
  };

  /// Drops retained frames below the acked floor (the sender-side half of
  /// ack_through's deferred handshake).
  void prune_locked(Link& link) DF_REQUIRES(link.mutex) {
    const std::uint64_t floor = link.ack_floor.load(std::memory_order_acquire);
    link.retained.erase(link.retained.begin(),
                        link.retained.lower_bound(floor));
  }

  /// Sends one fully encoded frame already stamped with `seq` (the caller
  /// advanced link.next_seq). Retain mode stores the frame for replay —
  /// or, when a rollback re-execution re-produces an already-retained seq,
  /// byte-compares against the stored copy, turning any egress
  /// nondeterminism into a loud failure instead of silent divergence at
  /// the peer. Re-sends of already-sent seqs count as frames_replayed
  /// only; `deliveries` is the batch's delivery count (0 for watermarks
  /// and for frames whose deliveries were counted at add time).
  void send_encoded_locked(Link& link, std::uint64_t seq,
                           std::span<const std::uint8_t> frame,
                           bool watermark, std::uint64_t deliveries)
      DF_REQUIRES(link.mutex) {
    if (retain_) {
      const auto it = link.retained.find(seq);
      if (it == link.retained.end()) {
        link.retained.emplace(
            seq, std::vector<std::uint8_t>(frame.begin(), frame.end()));
      } else {
        DF_CHECK(it->second.size() == frame.size() &&
                     std::equal(frame.begin(), frame.end(),
                                it->second.begin()),
                 "rollback re-execution produced different bytes for seq ",
                 seq, " (nondeterministic egress framing)");
      }
    }
    link.channel->send(frame);
    if (seq < link.sent_high) {
      ++link.stats.frames_replayed;
      return;
    }
    link.sent_high = seq + 1;
    ++link.stats.frames_sent;
    link.stats.bytes_sent += frame.size();
    if (watermark) {
      ++link.stats.watermarks_sent;
    } else {
      ++link.stats.batch_frames_sent;
      link.stats.batched_deliveries += deliveries;
    }
  }

  void flush_phase_locked(Link& link, event::PhaseId q)
      DF_REQUIRES(link.mutex) {
    const auto it = link.batches.find(q);
    if (it != link.batches.end()) {
      PhaseBatch& batch = it->second;
      if (retain_) {
        // Deterministic framing: a fixed total order over the phase's
        // deliveries ((to_index, to_port) is unique within a phase — one
        // delivery per in-edge per phase) plus threshold splitting at a
        // fixed point in that order makes frame boundaries and bytes a
        // pure function of the phase's delivery set, independent of
        // worker interleaving — the property rollback re-sends rely on.
        std::sort(batch.staged.begin(), batch.staged.end(),
                  [](const core::Delivery& a, const core::Delivery& b) {
                    return a.to_index != b.to_index ? a.to_index < b.to_index
                                                    : a.to_port < b.to_port;
                  });
        for (core::Delivery& d : batch.staged) {
          batch.encoder.add(d);
          if (batch.encoder.payload_bytes() >= kBatchFlushBytes) {
            const std::uint64_t seq = link.next_seq++;
            const std::uint64_t count = batch.encoder.pending();
            batch.encoder.finish(seq, q, link.buf);
            send_encoded_locked(link, seq, link.buf, /*watermark=*/false,
                                count);
          }
        }
      }
      for (std::vector<std::uint8_t>& frame : batch.held_frames) {
        const std::uint64_t seq = link.next_seq++;
        wire::patch_seq(frame, seq);
        // Deliveries already counted at add time (threshold overflow).
        send_encoded_locked(link, seq, frame, /*watermark=*/false, 0);
      }
      if (batch.encoder.pending() > 0) {
        const std::uint64_t seq = link.next_seq++;
        const std::uint64_t count = batch.encoder.pending();
        batch.encoder.finish(seq, q, link.buf);
        send_encoded_locked(link, seq, link.buf, /*watermark=*/false, count);
      }
      link.batches.erase(it);
    }
    const std::uint64_t seq = link.next_seq++;
    wire::encode_watermark(seq, q, link.buf);
    send_encoded_locked(link, seq, link.buf, /*watermark=*/true, 0);
  }

  void record_error(std::exception_ptr error) {
    conc::MutexLock lock(error_mutex_);
    if (!error_) {
      error_ = std::move(error);
    }
  }

  const bool retain_;
  std::vector<std::unique_ptr<Link>> links_;
  conc::Mutex error_mutex_;
  std::exception_ptr error_ DF_GUARDED_BY(error_mutex_);
};

/// Recycles received-frame buffers between the engine thread (which
/// releases each consumed frame) and its reader threads (which acquire one
/// before every recv). In steady state every buffer in flight came from
/// here with its capacity intact, so ingestion performs no per-frame
/// allocations. The lock is uncontended in practice: batching makes frames
/// rare (a couple per channel per phase).
class BufferPool {
 public:
  std::vector<std::uint8_t> acquire() {
    conc::MutexLock lock(mutex_);
    if (pool_.empty()) {
      return {};
    }
    std::vector<std::uint8_t> buf = std::move(pool_.back());
    pool_.pop_back();
    return buf;
  }

  void release(std::vector<std::uint8_t>&& buf) {
    buf.clear();
    conc::MutexLock lock(mutex_);
    if (pool_.size() < kMaxPooled) {
      pool_.push_back(std::move(buf));
    }
  }

 private:
  static constexpr std::size_t kMaxPooled = 64;
  conc::Mutex mutex_;
  std::vector<std::vector<std::uint8_t>> pool_ DF_GUARDED_BY(mutex_);
};

/// One received frame travelling from a reader to the engine: the decoded
/// header plus the raw encoded bytes (already validated by the reader; the
/// payload is decoded only by the engine, straight into its input
/// bundles). `bytes` is a pooled buffer and returns to the pool once the
/// engine has consumed the frame.
struct RawFrame {
  wire::FrameHeader header;
  std::vector<std::uint8_t> bytes;
};

/// One entry of an engine's ingress queue: a validated frame from upstream
/// block `src`, or (with `closed`) that channel's end-of-stream marker,
/// carrying the reader's error if validation failed.
struct IngressItem {
  std::size_t src = 0;
  bool closed = false;
  std::exception_ptr error;
  RawFrame frame;
};

/// Bounded MPSC queue between an engine's channel readers (one producer
/// per ingress channel) and the engine thread. The bound is part of the
/// backpressure story: readers stop pulling once the engine falls this far
/// behind, which in turn fills the channel and blocks the sender.
///
/// Why readers exist at all (DESIGN.md, "Real transport"): an engine that
/// blocked on *one* channel's recv while another ingress channel filled up
/// could deadlock the ensemble (sender j stuck on a full j->k while k
/// waits for a laggard j' whose progress transitively needs j). Readers
/// guarantee every ingress channel keeps draining no matter which sender
/// the engine is logically waiting for; the engine itself always consumes
/// from this queue while waiting, so the queue never stays full while
/// anyone needs it to move.
class IngressQueue {
 public:
  explicit IngressQueue(std::size_t capacity) : capacity_(capacity) {}

  void push(IngressItem item) {
    conc::UniqueLock lock(mutex_);
    // Explicit predicate loops (not the lambda-predicate overload): the
    // predicates read items_, which is guarded, and the analysis cannot
    // see through a lambda's closure.
    while (items_.size() >= capacity_) {
      not_full_.wait(lock);
    }
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
  }

  IngressItem pop() {
    conc::UniqueLock lock(mutex_);
    while (items_.empty()) {
      not_empty_.wait(lock);
    }
    IngressItem item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

 private:
  const std::size_t capacity_;
  conc::Mutex mutex_;
  conc::CondVar not_full_;
  conc::CondVar not_empty_;
  std::deque<IngressItem> items_ DF_GUARDED_BY(mutex_);
};

/// Engine-side reassembly state for one ingress channel: restores the
/// exact send order from sequence numbers, parking early arrivals in a
/// reorder buffer and dropping duplicates — the exactly-once, in-order
/// ingestion layer that makes fault-injected channels survivable. Fed by
/// the engine thread only (frames arrive through the IngressQueue), so it
/// needs no synchronization of its own.
class IngressSequencer {
 public:
  /// Fresh stream from seq 0 (receiver machine starts kStreaming).
  IngressSequencer() = default;

  /// Restored stream for a restarted partition: `floor` is the restored
  /// checkpoint's consumed count, so the sequence resumes exactly where the
  /// checkpointed engine had consumed to — replayed frames below it drop as
  /// duplicates, frames at/above it re-deliver. The receiver machine starts
  /// in kReplaying (protocol.hpp): duplicates self-loop there and the first
  /// live frame or watermark returns the stream to kStreaming.
  explicit IngressSequencer(std::uint64_t floor)
      : next_seq_(floor),
        consumed_(floor),
        machine_(protocol::ReceiverState::kReplaying) {}

  /// Accepts one validated frame: duplicates are counted and dropped (their
  /// buffers recycled), early arrivals parked, and every frame that
  /// completes the sequence moves to the in-order ready queue.
  void feed(RawFrame&& frame, BufferPool& pool) {
    ++frames_received_;
    bytes_received_ += frame.bytes.size();
    if (frame.header.seq < next_seq_ ||
        out_of_order_.contains(frame.header.seq)) {
      ++duplicates_dropped_;
      // Legal while streaming or drained; after a failure the trailing
      // stream is garbage and no longer a protocol event.
      if (!machine_.terminal()) {
        machine_.advance(ReceiverEvent::kDuplicate);
      }
      pool.release(std::move(frame.bytes));
      return;
    }
    out_of_order_.emplace(frame.header.seq, std::move(frame));
    while (!out_of_order_.empty() &&
           out_of_order_.begin()->first == next_seq_) {
      ready_.push_back(std::move(out_of_order_.begin()->second));
      out_of_order_.erase(out_of_order_.begin());
      ++next_seq_;
    }
  }

  /// Pops the next in-order frame, if one is ready. The engine consumes
  /// frames one at a time, stopping at each watermark — frames past the
  /// current phase's watermark stay queued until that phase's window.
  bool next_ready(RawFrame& out) {
    if (ready_.empty()) {
      return false;
    }
    out = std::move(ready_.front());
    ready_.pop_front();
    ++consumed_;
    return true;
  }

  /// Seq of the next frame the engine would consume — the replay floor a
  /// checkpoint records: everything below it has been folded into the
  /// checkpointed engine state, everything at/above it must be replayed
  /// after a restore. Distinct from next_seq_ (frames *sequenced*, which
  /// may run ahead of consumption while later phases sit in ready_).
  std::uint64_t consumed() const { return consumed_; }

  void mark_closed() { closed_ = true; }
  bool closed() const { return closed_; }

  /// The stream's receiver machine (protocol.hpp). The sequencer advances
  /// kDuplicate itself (drops never reach the consumer); the engine thread
  /// advances kFrame/kWatermark/kFinalWatermark at consumption, and
  /// kEof/kError where it observes the close — the machine must not reach
  /// a terminal state before the frames ahead of the close are consumed.
  protocol::ReceiverMachine& machine() { return machine_; }

  /// After the final watermark, nothing new may remain: trailing frames
  /// reaching feed() must all have been duplicates, and no gap may be left
  /// in the sequence.
  void check_drained() const {
    DF_CHECK(ready_.empty(), "trailing non-duplicate frames after teardown");
    DF_CHECK(out_of_order_.empty(),
             "channel closed with frames missing from the sequence");
  }

  std::uint64_t frames_received() const { return frames_received_; }
  std::uint64_t bytes_received() const { return bytes_received_; }
  std::uint64_t duplicates_dropped() const { return duplicates_dropped_; }

 private:
  std::uint64_t next_seq_ = 0;
  std::uint64_t consumed_ = 0;
  std::map<std::uint64_t, RawFrame> out_of_order_;
  std::deque<RawFrame> ready_;
  protocol::ReceiverMachine machine_;
  bool closed_ = false;
  std::uint64_t frames_received_ = 0;
  std::uint64_t bytes_received_ = 0;
  std::uint64_t duplicates_dropped_ = 0;
};

/// Body of one channel-reader thread: blocking-receive frames into pooled
/// buffers, validate them (a bounds-checked structural walk — corruption
/// dies here, off the engine's critical path, without allocating), and
/// hand the raw bytes to the engine through the bounded queue. Always ends
/// by pushing the channel's closed marker.
void reader_main(Channel* channel, std::size_t src, IngressQueue& queue,
                 BufferPool& pool) {
  std::exception_ptr error;
  try {
    for (;;) {
      std::vector<std::uint8_t> buf = pool.acquire();
      if (!channel->recv(buf)) {
        pool.release(std::move(buf));
        break;
      }
      IngressItem item;
      item.src = src;
      const wire::DecodeStatus status = wire::validate_frame(buf);
      DF_CHECK(status == wire::DecodeStatus::kOk,
               "rejected ingress frame: ", wire::to_string(status));
      wire::decode_header(buf, item.frame.header);
      item.frame.bytes = std::move(buf);
      queue.push(std::move(item));
    }
  } catch (...) {
    error = std::current_exception();
    // Keep consuming to EOF, discarding frames: a reader that stopped
    // receiving would let the upstream sender block forever on a full
    // channel, freezing that engine before it could close its *other*
    // egress channels and deadlocking the ensemble. The error is already
    // captured; it rides the closed marker once EOF arrives.
    try {
      std::vector<std::uint8_t> discard;
      while (channel->recv(discard)) {
      }
    } catch (...) {
    }
  }
  IngressItem closed;
  closed.src = src;
  closed.closed = true;
  closed.error = error;
  queue.push(std::move(closed));
}

/// One committed partition checkpoint, held in the supervisor's memory —
/// the crash model is the partition's *execution state* dying (engine,
/// in-flight phases, channel contents), not host storage loss; a durable
/// variant would write exactly these bytes to disk at the commit point.
struct PartitionCheckpoint {
  event::PhaseId phase = 0;                   // completed through
  std::vector<std::uint8_t> engine_image;     // core::Engine::snapshot_state
  std::vector<std::uint64_t> ingress_floors;  // consumed seq per upstream
  std::vector<EgressHub::LinkCursor> egress;  // send cursors per egress link
  std::size_t sink_records = 0;               // partition sink store size
};

/// Adds one generation's engine stats into the partition's accumulator.
/// Across a restart the re-executed work is counted again on purpose: the
/// exec stats report work *performed* — exactly-once applies to sink
/// output and wire effects, not to effort.
void fold_exec_stats(core::ExecStats& total, const core::ExecStats& gen) {
  total.executed_pairs += gen.executed_pairs;
  total.messages_delivered += gen.messages_delivered;
  total.sink_records += gen.sink_records;
  total.compute_ns += gen.compute_ns;
  total.bookkeeping_ns += gen.bookkeeping_ns;
  total.phases_completed =
      std::max(total.phases_completed, gen.phases_completed);
  total.max_inflight_phases =
      std::max(total.max_inflight_phases, gen.max_inflight_phases);
  total.steals_ok += gen.steals_ok;
  total.steals_empty += gen.steals_empty;
  total.parks += gen.parks;
}

}  // namespace

/// Everything one partition engine owns: its block bounds, its channel
/// endpoints, and its pre-routed external events. The block's own
/// core::Engine (which instantiates the full program, so per-vertex module
/// state and rng streams agree bit-for-bit with the sequential reference)
/// is constructed inside engine_main. `ingress_channels` and `sequencers`
/// are parallel vectors over upstream blocks 0..block-1 in ascending
/// order; `queue` sits between the per-channel reader threads and the
/// coordinator thread.
struct TransportEngine::EngineState {
  std::size_t block = 0;
  std::uint32_t begin = 1;  // inclusive internal range; begin > end if empty
  std::uint32_t end = 0;
  std::vector<Channel*> ingress_channels;
  std::vector<IngressSequencer> sequencers;
  std::unique_ptr<IngressQueue> queue;
  BufferPool pool;  // recycles frame buffers engine -> readers
  std::vector<Channel*> egress_channels;  // to blocks block+1.., ascending
  /// The block's egress hub, built in run() (before any engine thread
  /// starts) rather than inside engine_main: a restarted *downstream*
  /// partition's supervisor calls replay_from / takes ack_through on its
  /// upstream blocks' hubs, so hubs must be addressable across threads.
  std::unique_ptr<EgressHub> hub;
  /// Hubs of blocks 0..block-1, for checkpoint acks and restart replay
  /// requests; upstream_hubs[j]'s link to this block is index
  /// block - j - 1.
  std::vector<EgressHub*> upstream_hubs;
  /// Crash-harness wrappers around ingress_channels (parallel vector; only
  /// populated when crash_hook is set) — the supervisor kills them on a
  /// CrashSignal and revives them before replay.
  std::vector<CrashableChannel*> ingress_crashable;
  /// This partition's own sink store: recovery truncates it back to the
  /// checkpoint's record count, which only works if no other partition
  /// interleaves records into it; run() folds the per-partition stores at
  /// the end.
  core::SinkStore sinks;
  std::vector<std::vector<event::ExternalEvent>> events;  // [phase - 1]
  core::ExecStats stats;
  TransportStats tstats;
  std::exception_ptr error;
};

TransportEngine::TransportEngine(const core::Program& program,
                                 TransportOptions options)
    : program_(program),
      options_(std::move(options)),
      partitioning_(options_.partitioning.bounds.empty()
                        ? graph::partition_balanced(program.numbering,
                                                    options_.machines)
                        : options_.partitioning) {
  DF_CHECK(options_.machines >= 1, "transport needs at least one machine");
  DF_CHECK(options_.engine_threads >= 1,
           "transport needs at least one engine thread per block");
  DF_CHECK(options_.scheduler_shards >= 1,
           "transport needs at least one scheduler shard per block");
  DF_CHECK(options_.max_inflight_phases >= 1,
           "transport block engines need a finite phase window");
  DF_CHECK(options_.checkpoint_every == 0 || options_.scheduler_shards == 1,
           "checkpointing requires the flat scheduler (scheduler_shards = 1)");
  DF_CHECK(!options_.crash_hook || options_.checkpoint_every > 0,
           "crash_hook requires checkpoint_every > 0 (recovery replays from "
           "retained frames)");
  const auto n = static_cast<std::uint32_t>(program_.numbering.size());
  graph::validate_partition_cut(partitioning_, n, options_.machines);
  owner_.assign(n + 1, 0);
  for (std::size_t k = 0; k < partitioning_.block_count(); ++k) {
    for (std::uint32_t v = partitioning_.bounds[k] + 1;
         v <= partitioning_.bounds[k + 1]; ++v) {
      owner_[v] = static_cast<std::uint32_t>(k);
    }
  }
}

void TransportEngine::engine_main(EngineState& state,
                                  event::PhaseId num_phases) {
  // The egress hub (owned by EngineState, built in run()) and the block
  // engine outlive the try below: the catch paths must capture the
  // engine's partial stats and close the hub's channels, and the stats
  // fold at the bottom runs on every path.
  EgressHub& hub = *state.hub;
  std::unique_ptr<core::Engine> engine;

  // This partition's lifecycle machine. Every control-flow milestone below
  // steps it through a checked advance; an out-of-order milestone (e.g.
  // draining ingress before closing egress) is a DF_CHECK failure in every
  // build type, and tools/verify_protocol explores the same table
  // exhaustively in CI. A crash discards it with the rest of the dead
  // generation; the replacement walks kCreated -> kReplaying -> kRunning.
  protocol::EngineMachine machine;

  // One reader per ingress channel per partition *generation*; they exit
  // at channel EOF (every sender closes its egress on completion *and* on
  // abort, and a killed CrashableChannel severs to EOF, so EOF always
  // arrives).
  std::vector<std::thread> readers;
  const auto spawn_readers = [&] {
    readers.clear();
    readers.reserve(state.ingress_channels.size());
    for (std::size_t j = 0; j < state.ingress_channels.size(); ++j) {
      readers.emplace_back(reader_main, state.ingress_channels[j], j,
                           std::ref(*state.queue), std::ref(state.pool));
    }
  };
  spawn_readers();
  std::size_t open_channels = state.ingress_channels.size();

  // One helper thread per upstream replay request. replay_from must not
  // run on this coordinator thread: it blocks on the upstream link mutex,
  // which an upstream flush may hold while blocked sending into *this*
  // partition's bounded ingress path — a cycle only this coordinator's
  // consumption can break. The helpers wait out that backpressure while
  // the phase loop below keeps draining; they finish as soon as their
  // sends are consumed (every replayed frame precedes a watermark this
  // partition must ingest, so joining after the phase loop never waits).
  std::vector<std::thread> replayers;
  const auto join_replayers = [&replayers] {
    for (std::thread& replayer : replayers) {
      replayer.join();
    }
    replayers.clear();
  };

  // Takes one item off the ingress queue: feeds a frame to its channel's
  // sequencer, or marks the channel closed (rethrowing the reader's error,
  // e.g. a rejected frame — a root-cause protocol failure).
  const auto ingest_one = [&state, &open_channels] {
    IngressItem item = state.queue->pop();
    if (item.closed) {
      --open_channels;
      state.sequencers[item.src].mark_closed();
      if (item.error) {
        state.sequencers[item.src].machine().advance(ReceiverEvent::kError);
        std::rethrow_exception(item.error);
      }
      return;
    }
    state.sequencers[item.src].feed(std::move(item.frame), state.pool);
  };

  // Crash-restart supervisor state. The loop below runs one iteration per
  // partition generation: normally exactly one, plus one per CrashSignal
  // a crash_hook throws. `last_good` is the restart target; before the
  // first commit the target is the initial state (phase 0, everything
  // zero), which restarts from scratch.
  const std::size_t checkpoint_every = options_.checkpoint_every;
  PartitionCheckpoint last_good;
  bool have_checkpoint = false;
  bool restarting = false;
  const auto crash_point = [&](event::PhaseId p, CrashPoint where) {
    if (options_.crash_hook) {
      options_.crash_hook(state.block, p, where);
    }
  };

  for (;;) {
    try {
    const auto n = static_cast<std::uint32_t>(program_.numbering.size());

    // The block's full worker pool: a core::Engine scoped to [begin, end].
    // Its egress hook routes boundary-crossing deliveries into the hub's
    // per-(channel, phase) batches, and its phase-completion hook flushes
    // them (batches, then watermark) the moment the phase's last finish is
    // applied — from whichever worker applied it.
    core::EngineOptions eopts;
    eopts.threads = options_.engine_threads;
    eopts.scheduler_shards = options_.scheduler_shards;
    eopts.dispatch = options_.dispatch;
    eopts.max_inflight_phases = options_.max_inflight_phases;
    core::EngineOptions::BlockScope scope;
    scope.begin = state.begin;
    scope.end = state.end;
    scope.egress = [this, &state, &hub, n](core::Delivery&& d,
                                           event::PhaseId phase) {
      DF_CHECK(d.to_index >= 1 && d.to_index <= n, "egress delivery for ",
               "out-of-range internal index ", d.to_index);
      const std::size_t dest = owner_[d.to_index];
      DF_CHECK(dest > state.block,
               "backward cross-partition delivery for internal index ",
               d.to_index);
      hub.add(dest - state.block - 1, phase, std::move(d));
    };
    // Partition-private store (folded by run()): recovery truncates it back
    // to the checkpoint's record count, which a store shared across
    // partitions could not support.
    scope.sinks = &state.sinks;
    eopts.block = std::move(scope);
    eopts.on_phase_complete = [&hub](event::PhaseId completed) {
      hub.flush_through(completed);
    };
    engine = std::make_unique<core::Engine>(program_, std::move(eopts));
    engine->start();
    if (restarting) {
      // kCreated -> kReplaying -> kRunning: the restore must land between
      // start() (reserve_steady_state) and the first start_phase.
      machine.advance(EngineEvent::kRestore);
      if (have_checkpoint) {
        engine->restore_state(last_good.engine_image);
      }
      machine.advance(EngineEvent::kStart);
    } else {
      machine.advance(EngineEvent::kStart);
    }

    // Reassembled remote deliveries for the phase being opened, still
    // addressed by global internal index; start_phase consumes them.
    std::vector<core::Delivery> remote;
    const auto deliver_remote = [this, &state, &remote, n](core::Delivery&& d) {
      DF_CHECK(d.to_index >= 1 && d.to_index <= n &&
                   owner_[d.to_index] == state.block,
               "misrouted delivery for internal index ", d.to_index);
      remote.push_back(std::move(d));
    };

    const event::PhaseId first_phase =
        restarting ? (have_checkpoint ? last_good.phase + 1 : 1) : 1;
    for (event::PhaseId p = first_phase; p <= num_phases; ++p) {
      crash_point(p, CrashPoint::kBeforeIngest);
      remote.clear();
      // Phase-advance handshake: ingest every upstream block's phase-p
      // deliveries, in ascending block order, blocking on each until its
      // watermark arrives. Ascending block order = ascending sender index
      // order, the order the sequential reference applies them in. While
      // logically waiting for one channel the engine still consumes the
      // shared queue, so every ingress channel keeps draining (the
      // no-deadlock argument in DESIGN.md rests on this). Stopping at each
      // watermark keeps frames the sender pipelined ahead (later phases)
      // queued until their own window.
      for (IngressSequencer& in : state.sequencers) {
        for (bool watermark = false; !watermark;) {
          RawFrame raw;
          if (!in.next_ready(raw)) {
            if (in.closed()) {
              // EOF before this phase's watermark: the peer aborted. The
              // receiver machine lands in kPeerClosed and classify() ranks
              // the resulting error below any root cause.
              in.machine().advance(ReceiverEvent::kEof);
              throw peer_closed_error(
                  "upstream partition closed its channel before phase " +
                  std::to_string(p) + " completed");
            }
            ingest_one();
            continue;
          }
          DF_CHECK(raw.header.phase == p, "frame for phase ",
                   raw.header.phase, " inside phase ", p,
                   "'s window (protocol violation)");
          switch (raw.header.type) {
            case wire::FrameType::kWatermark:
              in.machine().advance(p == num_phases
                                       ? ReceiverEvent::kFinalWatermark
                                       : ReceiverEvent::kWatermark);
              watermark = true;
              break;
            case wire::FrameType::kDeliveryBatch: {
              in.machine().advance(ReceiverEvent::kFrame);
              // The reader already validated the frame; these statuses are
              // protocol assertions, not reachable decode paths.
              wire::BatchReader batch;
              wire::DecodeStatus status = batch.open(raw.bytes);
              DF_CHECK(status == wire::DecodeStatus::kOk,
                       "batch frame failed to reopen: ",
                       wire::to_string(status));
              core::Delivery d;
              while (batch.remaining() > 0) {
                status = batch.next(d);
                DF_CHECK(status == wire::DecodeStatus::kOk,
                         "batched delivery failed to decode: ",
                         wire::to_string(status));
                deliver_remote(std::move(d));
              }
              break;
            }
            case wire::FrameType::kDelivery: {
              in.machine().advance(ReceiverEvent::kFrame);
              wire::Frame frame;
              const wire::DecodeStatus status =
                  wire::decode_frame(raw.bytes, frame);
              DF_CHECK(status == wire::DecodeStatus::kOk,
                       "delivery frame failed to reopen: ",
                       wire::to_string(status));
              deliver_remote(std::move(frame.delivery));
              break;
            }
          }
          state.pool.release(std::move(raw.bytes));
        }
        // One upstream's phase-p traffic fully consumed, the rest still
        // pending — the mid-ingest kill point (a crash here loses a
        // half-reassembled phase).
        crash_point(p, CrashPoint::kMidIngest);
      }

      crash_point(p, CrashPoint::kBeforePhase);
      // Open the phase window: external events plus the injected remote
      // deliveries enter together, then the worker pool takes over. The
      // call blocks while max_inflight_phases are active — the inner
      // backpressure; meanwhile this block's readers keep draining ingress
      // and its workers keep flushing egress, so the ensemble's
      // no-deadlock argument is unchanged (DESIGN.md, "Two-level
      // parallelism").
      engine->start_phase(state.events[p - 1], remote);

      if (checkpoint_every > 0 && p % checkpoint_every == 0) {
        // Checkpoint: quiesce the block (all started phases complete, all
        // staged finishes applied), make the egress cursors final (the
        // completion hook may still be in flight on a worker; the
        // coordinator's own idempotent flush closes that window), then
        // snapshot everything a restart needs.
        engine->quiesce();
        hub.flush_through(p);
        if (hub.error() != nullptr) {
          std::rethrow_exception(hub.error());
        }
        PartitionCheckpoint next;
        next.phase = p;
        next.engine_image = engine->snapshot_state();
        next.ingress_floors.reserve(state.sequencers.size());
        for (IngressSequencer& in : state.sequencers) {
          next.ingress_floors.push_back(in.consumed());
        }
        next.egress = hub.cursors();
        next.sink_records = state.sinks.size();
        crash_point(p, CrashPoint::kMidCheckpoint);
        // The commit point. Only now — never for an uncommitted image —
        // may upstream retention drop frames below this image's floors.
        last_good = std::move(next);
        have_checkpoint = true;
        ++state.tstats.checkpoints_taken;
        state.tstats.checkpoint_bytes += last_good.engine_image.size();
        for (std::size_t j = 0; j < state.upstream_hubs.size(); ++j) {
          state.upstream_hubs[j]->ack_through(state.block - j - 1,
                                             last_good.ingress_floors[j]);
        }
        crash_point(p, CrashPoint::kAfterCheckpoint);
      }
    }

    // Wait for every started phase to finish (rethrows the first module
    // error after draining — watermarks for all phases were already
    // flushed by the completion hook, so downstream is never left
    // waiting). The flush_through below is belt-and-braces for the
    // final callback having raced with finish(); it is idempotent.
    engine->finish();
    fold_exec_stats(state.stats, engine->stats());
    engine.reset();
    if (hub.error() != nullptr) {
      std::rethrow_exception(hub.error());
    }
    hub.flush_through(num_phases);
    // Re-check after the belt-and-braces flush: a send failure *inside* it
    // is recorded, not thrown, and used to vanish here — downstream would
    // abort on the missing watermark and the run reported its secondary
    // peer_closed_error instead of this root cause.
    if (hub.error() != nullptr) {
      std::rethrow_exception(hub.error());
    }
    machine.advance(EngineEvent::kLocalComplete);

    // Normal teardown: tell downstream we are done first, then consume
    // trailing (necessarily duplicate) frames from upstream until every
    // reader reports EOF — see DESIGN.md, "Real transport", teardown
    // ordering. The machine enforces it: kIngressEof has no edge out of
    // kLocalDone, only out of kEgressClosed.
    hub.close_all();
    machine.advance(EngineEvent::kCloseEgress);
    while (open_channels > 0) {
      ingest_one();
    }
    for (IngressSequencer& in : state.sequencers) {
      // Each receiver consumed its final watermark in the phase loop
      // (kDrained), so the observed EOF is clean. With zero phases the
      // machine is still kStreaming and the same edge lands in
      // kPeerClosed — with nothing expected, that close is also clean.
      // A generation restored past the final checkpoint with no replayed
      // traffic left can still be kReplaying; its EOF is equally clean.
      in.machine().advance(ReceiverEvent::kEof);
      in.check_drained();
    }
    machine.advance(EngineEvent::kIngressEof);
    break;  // generation ran to completion; supervisor done
    } catch (const CrashSignal&) {
      // == Simulated process death of this partition ==
      // Everything the dead generation owned is discarded, in dependency
      // order, then a fresh generation restarts from last_good.
      //
      // 1. The execution state dies. Destroying the engine joins or
      //    abandons its workers (destroy-mid-run is a tested engine
      //    contract), so after reset() no hook can touch the hub.
      if (engine != nullptr) {
        fold_exec_stats(state.stats, engine->stats());
        engine.reset();
      }
      // 2. Its channel endpoints die: killing the ingress wrappers severs
      //    the inner channels, so upstream sends during the outage drop
      //    (in-flight loss — retention replays them) and the old readers
      //    run to EOF. Egress channels stay up: downstream never notices
      //    this death; rollback re-sends arrive as byte-identical
      //    duplicates it drops by seq.
      for (CrashableChannel* wrapper : state.ingress_crashable) {
        wrapper->kill();
      }
      // 3. Drain the queue to every closed marker, discarding frames (the
      //    dead engine's unconsumed backlog is lost with it) and absorbing
      //    reader errors (the death itself is not an error).
      while (open_channels > 0) {
        IngressItem item = state.queue->pop();
        if (item.closed) {
          --open_channels;
        } else {
          state.pool.release(std::move(item.frame.bytes));
        }
      }
      for (std::thread& reader : readers) {
        reader.join();
      }
      // A previous restart's replay helpers can still be mid-send; the
      // kill above turned those sends into drops, so they finish now (the
      // frames they were re-sending stay retained and the next replay
      // request covers them).
      join_replayers();
      // 4. Restore from the checkpoint: fresh sequencers seeded at the
      //    checkpoint's consumed floors (receiver machines start
      //    kReplaying), egress cursors rewound, sink store truncated to
      //    the committed record count. The dead generation's wire
      //    counters fold into the partition totals first.
      for (const IngressSequencer& in : state.sequencers) {
        state.tstats.frames_received += in.frames_received();
        state.tstats.bytes_received += in.bytes_received();
        state.tstats.duplicates_dropped += in.duplicates_dropped();
      }
      std::vector<IngressSequencer> fresh;
      fresh.reserve(state.sequencers.size());
      for (std::size_t j = 0; j < state.sequencers.size(); ++j) {
        fresh.emplace_back(IngressSequencer(
            have_checkpoint ? last_good.ingress_floors[j] : 0));
      }
      state.sequencers = std::move(fresh);
      hub.rollback(have_checkpoint
                       ? last_good.egress
                       : std::vector<EgressHub::LinkCursor>(
                             state.egress_channels.size()));
      state.sinks.truncate(have_checkpoint ? last_good.sink_records : 0);
      // 5. Revive the ingress channels (which parks upstream closes until
      //    each link's replay has run — a racing normal completion must
      //    not EOF the fresh channel ahead of the replayed frames) and
      //    spawn the new generation's readers *before* requesting replay
      //    (replay sends block on channel backpressure until a reader
      //    drains them). The replay requests themselves run on helper
      //    threads: replay_from blocks on the upstream link mutex, which
      //    an upstream flush may hold while blocked sending into this
      //    partition's bounded ingress path — a cycle only this
      //    coordinator's continued consumption can break.
      for (CrashableChannel* wrapper : state.ingress_crashable) {
        wrapper->revive();
      }
      spawn_readers();
      open_channels = state.ingress_channels.size();
      for (std::size_t j = 0; j < state.upstream_hubs.size(); ++j) {
        EgressHub* upstream = state.upstream_hubs[j];
        CrashableChannel* wrapper = state.ingress_crashable[j];
        const std::size_t link = state.block - j - 1;
        const std::uint64_t floor =
            have_checkpoint ? last_good.ingress_floors[j] : 0;
        replayers.emplace_back([upstream, wrapper, link, floor] {
          upstream->replay_from(link, floor);
          wrapper->release_close();
        });
      }
      // 6. A fresh lifecycle machine for the new generation; the next
      //    iteration advances it kRestore -> kReplaying -> kRunning.
      machine = protocol::EngineMachine();
      restarting = true;
      ++state.tstats.restarts;
      continue;
    } catch (...) {
    state.error = std::current_exception();
    machine.advance(EngineEvent::kError);
    // Abort teardown: capture whatever the block engine managed to do,
    // then destroy it *first* (its destructor joins or abandons the
    // workers, so no more egress traffic can be produced), close egress so
    // downstream observes the failure (a close before the expected
    // watermark) and aborts in turn, and keep draining ingress to EOF so
    // upstream senders never block forever on a full channel to us.
    // Secondary reader errors are absorbed — the root cause is recorded.
    if (engine != nullptr) {
      fold_exec_stats(state.stats, engine->stats());
      engine.reset();
    }
    hub.close_all();
    machine.advance(EngineEvent::kCloseEgress);
    while (open_channels > 0) {
      try {
        ingest_one();
      } catch (...) {
      }
    }
    machine.advance(EngineEvent::kIngressEof);
    break;
    }
  }
  DF_CHECK(machine.terminal(), "engine teardown ended in non-terminal state ",
           protocol::to_string(machine.state()));
  for (std::thread& reader : readers) {
    reader.join();
  }
  // Both exits drained ingress to EOF, which transitively required every
  // outstanding replay send to be consumed — the helpers are already done.
  join_replayers();
  for (const IngressSequencer& in : state.sequencers) {
    state.tstats.frames_received += in.frames_received();
    state.tstats.bytes_received += in.bytes_received();
    state.tstats.duplicates_dropped += in.duplicates_dropped();
  }
  hub.fold_stats(state.tstats);
  // The engine counts every delivery (pre-routing); the hub counted the
  // cross-boundary ones. Saturating on the abort path, where the stats
  // snapshot may predate the hub's last add.
  state.tstats.local_messages =
      state.stats.messages_delivered >= state.tstats.remote_messages
          ? state.stats.messages_delivered - state.tstats.remote_messages
          : 0;
}

void TransportEngine::run(event::PhaseId num_phases, core::PhaseFeed* feed) {
  DF_CHECK(!ran_, "run() may be called once per TransportEngine");
  ran_ = true;
  const std::size_t machines = options_.machines;
  support::Stopwatch wall;

  std::vector<EngineState> states(machines);
  for (std::size_t k = 0; k < machines; ++k) {
    states[k].block = k;
    states[k].begin = partitioning_.bounds[k] + 1;
    states[k].end = partitioning_.bounds[k + 1];
    states[k].events.resize(num_phases);
    states[k].queue = std::make_unique<IngressQueue>(
        std::max<std::size_t>(8, options_.channel_capacity));
  }

  // One channel per ordered pair (j, k), j < k; forward-only traffic needs
  // nothing else. Watermarks flow on every channel each phase, so even a
  // pair with no crossing edges keeps its handshake (and an *empty* block
  // still paces its downstream neighbours). With a crash_hook set, every
  // channel additionally goes behind a CrashableChannel so the receiving
  // partition's supervisor can sever and revive it across a simulated
  // death; the factory rebuilds the same kind (and test wrapping) for the
  // revived generation.
  const auto build_channel = [this](std::size_t j,
                                    std::size_t k) -> std::unique_ptr<Channel> {
    std::unique_ptr<Channel> channel;
    switch (options_.channel) {
      case ChannelKind::kInProcess:
        channel =
            std::make_unique<InProcessChannel>(options_.channel_capacity);
        break;
      case ChannelKind::kSocket:
        channel = SocketChannel::make_loopback();
        break;
    }
    if (options_.channel_wrapper) {
      channel = options_.channel_wrapper(std::move(channel), j, k);
      DF_CHECK(channel != nullptr, "channel_wrapper returned null");
    }
    return channel;
  };
  for (std::size_t j = 0; j < machines; ++j) {
    for (std::size_t k = j + 1; k < machines; ++k) {
      std::unique_ptr<Channel> channel = build_channel(j, k);
      if (options_.crash_hook) {
        auto crashable = std::make_unique<CrashableChannel>(
            std::move(channel),
            [build_channel, j, k] { return build_channel(j, k); });
        states[k].ingress_crashable.push_back(crashable.get());
        channel = std::move(crashable);
      }
      states[j].egress_channels.push_back(channel.get());
      states[k].ingress_channels.push_back(channel.get());
      states[k].sequencers.emplace_back();
      channels_.push_back(std::move(channel));
    }
  }

  // Egress hubs live in EngineState rather than inside engine_main: a
  // restarted partition's supervisor thread calls replay_from (and its
  // checkpoints call ack_through) on its *upstream* blocks' hubs.
  const bool retain = options_.checkpoint_every > 0;
  for (std::size_t k = 0; k < machines; ++k) {
    states[k].hub =
        std::make_unique<EgressHub>(states[k].egress_channels, retain);
    for (std::size_t j = 0; j < k; ++j) {
      states[k].upstream_hubs.push_back(states[j].hub.get());
    }
  }

  // Pull the feed up front (feeds are sequential by contract) and route
  // every external event to the partition owning its source vertex.
  core::NullFeed null_feed;
  core::PhaseFeed& source = feed != nullptr ? *feed : null_feed;
  const std::vector<std::uint32_t>& index_of = program_.numbering.index_of;
  const std::uint32_t source_bound = program_.numbering.m[0];
  for (event::PhaseId p = 1; p <= num_phases; ++p) {
    std::vector<event::ExternalEvent> batch = source.events_for(p);
    for (event::ExternalEvent& ev : batch) {
      DF_CHECK(ev.vertex < index_of.size(), "unknown vertex ", ev.vertex);
      const std::uint32_t index = index_of[ev.vertex];
      DF_CHECK(index >= 1 && index <= source_bound,
               "external events may only target source vertices");
      states[owner_[index]].events[p - 1].push_back(std::move(ev));
    }
  }

  std::vector<std::thread> threads;
  threads.reserve(machines);
  for (std::size_t k = 0; k < machines; ++k) {
    threads.emplace_back([this, &states, k, num_phases] {
      engine_main(states[k], num_phases);
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }

  // Aggregate, then rethrow the highest-ranked error under the protocol's
  // explicit precedence (protocol::ErrorRank): a root cause — module
  // exception, protocol violation, send failure — beats the secondary
  // peer-closed aborts it set off in the neighbours; within a rank the
  // first block wins, keeping reports deterministic.
  std::exception_ptr first_error;
  protocol::ErrorRank first_rank = protocol::ErrorRank::kNone;
  stats_.phases_completed = num_phases;
  for (EngineState& state : states) {
    stats_.executed_pairs += state.stats.executed_pairs;
    stats_.messages_delivered += state.stats.messages_delivered;
    stats_.sink_records += state.stats.sink_records;
    stats_.compute_ns += state.stats.compute_ns;
    stats_.bookkeeping_ns += state.stats.bookkeeping_ns;
    stats_.phases_completed =
        std::min(stats_.phases_completed, state.stats.phases_completed);
    stats_.max_inflight_phases =
        std::max(stats_.max_inflight_phases, state.stats.max_inflight_phases);
    stats_.steals_ok += state.stats.steals_ok;
    stats_.steals_empty += state.stats.steals_empty;
    stats_.parks += state.stats.parks;
    transport_stats_.frames_sent += state.tstats.frames_sent;
    transport_stats_.frames_received += state.tstats.frames_received;
    transport_stats_.bytes_sent += state.tstats.bytes_sent;
    transport_stats_.bytes_received += state.tstats.bytes_received;
    transport_stats_.batch_frames_sent += state.tstats.batch_frames_sent;
    transport_stats_.batched_deliveries += state.tstats.batched_deliveries;
    transport_stats_.watermarks_sent += state.tstats.watermarks_sent;
    transport_stats_.duplicates_dropped += state.tstats.duplicates_dropped;
    transport_stats_.remote_messages += state.tstats.remote_messages;
    transport_stats_.local_messages += state.tstats.local_messages;
    // Read from the hub, not the folded tstats: a downstream restart's
    // replay_from can bump the upstream hub's counter *after* that
    // upstream partition completed and folded (see fold_stats). Here
    // every partition thread has joined, so the count is final.
    transport_stats_.frames_replayed +=
        state.hub != nullptr ? state.hub->frames_replayed() : 0;
    transport_stats_.checkpoints_taken += state.tstats.checkpoints_taken;
    transport_stats_.checkpoint_bytes += state.tstats.checkpoint_bytes;
    transport_stats_.restarts += state.tstats.restarts;
    // Fold the partition-private sink store into the engine's (canonical
    // order is imposed at comparison time; within-partition emission order
    // is preserved by the batch append).
    state.sinks.drain_into(sinks_);
    const protocol::ErrorRank rank = protocol::classify(state.error);
    if (protocol::outranks(rank, first_rank)) {
      first_rank = rank;
      first_error = state.error;
    }
  }
  stats_.wall_seconds = wall.elapsed_s();
  stats_.mean_inflight_phases = 0.0;
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

}  // namespace df::distrib
