// Simulated multi-machine execution (paper section 6, future work).
//
// The paper's algorithm targets one shared-memory multiprocessor; its
// future work asks about "networks of multiprocessor machines ...
// partitioning the computation graph across multiple machines and
// replication of event streams". We do not have a cluster in this
// environment, so this module *simulates* one (see DESIGN.md,
// substitutions): the computation executes with exact Δ-semantics (sink
// output identical to the sequential reference) while a discrete timing
// model tracks per-machine clocks:
//
//   * the graph is cut into contiguous index blocks (graph/partition.hpp);
//     machine k owns block k, so cross-machine traffic flows forward only;
//   * each machine has `cores_per_machine` cores; executing (v,p) occupies
//     a core for the vertex's measured (or modelled) cost;
//   * a message crossing machines arrives network_latency_ns after its
//     sender finishes; intra-machine delivery is free;
//   * a vertex starts when its machine has a free core AND all its phase-p
//     messages have arrived; phases pipeline naturally because machine
//     clocks carry over between phases.
//
// The simulated makespan, per-machine utilisation and network traffic let
// bench_partition compare partitioning strategies — the exact question the
// paper leaves open.
#pragma once

#include <cstdint>
#include <vector>

#include "core/executor.hpp"
#include "graph/partition.hpp"

namespace df::distrib {

struct ClusterOptions {
  std::size_t machines = 2;
  std::size_t cores_per_machine = 1;
  std::uint64_t network_latency_ns = 50000;  // ~50 us per hop
  /// If > 0, use this fixed per-vertex cost instead of measured wall time
  /// (makes simulations deterministic and platform-independent).
  std::uint64_t fixed_vertex_cost_ns = 0;
  /// Partitioning to use; if empty bounds, a balanced one is computed.
  graph::Partitioning partitioning;
};

struct ClusterStats {
  /// Simulated end-to-end completion time of the whole run.
  std::uint64_t makespan_ns = 0;
  /// Simulated busy time per machine.
  std::vector<std::uint64_t> busy_ns;
  /// Messages that crossed machines (paid latency).
  std::uint64_t network_messages = 0;
  /// Messages delivered within a machine.
  std::uint64_t local_messages = 0;

  double utilisation(std::size_t machine, std::size_t cores) const {
    return makespan_ns == 0
               ? 0.0
               : static_cast<double>(busy_ns[machine]) /
                     (static_cast<double>(makespan_ns) *
                      static_cast<double>(cores));
  }
};

class ClusterExecutor final : public core::Executor {
 public:
  ClusterExecutor(const core::Program& program, ClusterOptions options);

  void run(event::PhaseId num_phases, core::PhaseFeed* feed) override;

  const core::SinkStore& sinks() const override { return sinks_; }
  core::ExecStats stats() const override { return stats_; }
  const ClusterStats& cluster_stats() const { return cluster_stats_; }
  const graph::Partitioning& partitioning() const { return partitioning_; }

 private:
  core::ProgramInstance instance_;
  ClusterOptions options_;
  graph::Partitioning partitioning_;
  core::SinkStore sinks_;
  core::ExecStats stats_;
  ClusterStats cluster_stats_;
};

/// Stream replication (the other section 6 direction): runs `replicas`
/// engines over the same program and feed batches and checks that every
/// replica produced identical sink streams (what a fault-tolerant
/// replicated deployment must guarantee). Returns true iff all replicas
/// agree; the agreed record count is written to *records.
bool run_replicated(const core::Program& program, std::size_t replicas,
                    event::PhaseId num_phases,
                    const std::vector<std::vector<event::ExternalEvent>>&
                        batches,
                    std::size_t threads_per_replica,
                    std::size_t* records = nullptr);

}  // namespace df::distrib
