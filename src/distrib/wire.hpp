// Wire format for cross-partition transport frames (DESIGN.md, "Real
// transport").
//
// The partitioned TransportEngine (distrib/transport.hpp) moves *serialized
// bytes* between partition engines — unlike the simulated ClusterExecutor,
// nothing crosses a partition boundary as a live C++ object. This module
// defines the frame format those bytes follow. All frames share one header:
//
//   offset  size  field
//   0       3     magic "DFW"
//   3       1     version (kVersion; receivers reject anything else)
//   4       1     frame type (FrameType)
//   5       8     sequence number, little-endian (per-channel, starts at 0,
//                 counts every frame; the receiver reassembles the exact
//                 send order from it and drops duplicates)
//   13      8     phase id, little-endian
//   21      ...   type-specific payload
//
// Version 2 (current) payloads:
//   kDeliveryBatch — every delivery of one (channel, phase) flush in a
//     single frame: varint count, then per delivery a zigzag-varint
//     to_index delta (vs the previous delivery's to_index, starting from
//     0), a varint to_port, and one dense-encoded Value. This amortizes
//     the 21-byte header plus per-frame seq/phase over the whole flush —
//     the per-delivery framing cost drops from 21+ bytes to typically 2–3.
//   kDelivery — u32 to_index, u16 to_port, one dense-encoded Value (kept
//     for single-message sends; the transport egress only emits batches).
//   kWatermark — empty; the phase field *is* the watermark ("every
//     delivery I will ever send for phases <= p precedes this frame").
//
// Values serialize as one tag byte followed by a tag-specific payload. Tags
// 0..5 are event::Value::Kind verbatim (a wire contract — alternatives may
// be appended, never reordered): nothing (empty), u8 0/1 (bool), u64 two's
// complement (int), u64 bit pattern (double), u32 length + raw bytes
// (string), u32 count + count doubles (vector). Version 2 appends dense
// tags for the common small kinds: 6 = zigzag-varint int, 7 = short string
// (u8 length), 8 = vector with varint count. The v2 encoder picks whichever
// form is smaller; the v2 decoder accepts all nine tags. Version 1 frames
// (single-delivery only, tags 0..5 only) are kept as a decode-compat
// fixture: decode_frame_v1 still speaks them, the fuzz suite still covers
// them, and each version's decoder rejects the other version's frames with
// a clean kBadVersion.
//
// Decoding is total: every read is bounds-checked, length/count fields are
// validated against the remaining bytes *before* any allocation, and
// trailing bytes are rejected, so truncated or corrupted frames produce a
// DecodeStatus — never undefined behaviour (test_wire.cpp fuzzes exactly
// this under ASan/UBSan).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/delivery.hpp"
#include "event/phase.hpp"
#include "event/value.hpp"

namespace df::distrib::wire {

inline constexpr std::uint8_t kVersion = 2;
inline constexpr std::uint8_t kVersion1 = 1;

/// Sanity bound on a single frame; anything larger is rejected both by the
/// decoder and by the socket channel's length-prefix reader (a corrupted
/// length field must not trigger a giant allocation).
inline constexpr std::size_t kMaxFrameBytes = std::size_t{1} << 22;

/// Fixed header size shared by every frame type and version.
inline constexpr std::size_t kHeaderBytes = 3 + 1 + 1 + 8 + 8;

enum class FrameType : std::uint8_t {
  kDelivery = 1,
  kWatermark = 2,
  kDeliveryBatch = 3,  // v2 only
};

enum class DecodeStatus : std::uint8_t {
  kOk = 0,
  kTruncated,      // frame ends before a required field
  kBadMagic,       // not a DFW frame
  kBadVersion,     // version this decoder does not speak
  kBadFrameType,   // unknown FrameType
  kBadValueTag,    // unknown Value tag
  kBadPayload,     // structurally invalid payload (e.g. bool not 0/1)
  kTrailingBytes,  // frame longer than its content
  kOversized,      // exceeds kMaxFrameBytes
};

const char* to_string(DecodeStatus status);

/// The fixed frame header, decodable without touching the payload.
struct FrameHeader {
  FrameType type = FrameType::kWatermark;
  std::uint64_t seq = 0;
  event::PhaseId phase = 0;
};

/// One fully decoded frame. `delivery` is meaningful only for kDelivery,
/// `batch` only for kDeliveryBatch.
struct Frame {
  FrameType type = FrameType::kWatermark;
  std::uint64_t seq = 0;
  event::PhaseId phase = 0;
  core::Delivery delivery;
  std::vector<core::Delivery> batch;
};

// --- encode (version 2) -----------------------------------------------------

/// Replaces `out` with the encoded frame.
void encode_delivery(std::uint64_t seq, event::PhaseId phase,
                     const core::Delivery& delivery,
                     std::vector<std::uint8_t>& out);
void encode_watermark(std::uint64_t seq, event::PhaseId phase,
                      std::vector<std::uint8_t>& out);
void encode_delivery_batch(std::uint64_t seq, event::PhaseId phase,
                           std::span<const core::Delivery> deliveries,
                           std::vector<std::uint8_t>& out);

/// Rewrites the sequence-number field of an already-encoded frame in place.
/// The transport's two-level egress encodes batches for *future* phases
/// while earlier phases are still open (a worker pool finishes pairs out of
/// phase order), but the per-channel seq must reflect *send* order — so
/// oversized batches are encoded with a placeholder seq and patched here at
/// flush time. `frame` must hold at least a complete header.
void patch_seq(std::span<std::uint8_t> frame, std::uint64_t seq);

/// Incremental kDeliveryBatch encoder for the transport's egress hot path:
/// deliveries append into an internal scratch payload (dense-encoded as
/// they arrive, so nothing is staged as live Delivery objects) and
/// `finish` emits the complete frame. Scratch capacity is retained across
/// batches, so a warmed-up sender encodes with zero allocations.
class BatchEncoder {
 public:
  void add(const core::Delivery& delivery);

  std::uint32_t pending() const { return count_; }
  std::size_t payload_bytes() const { return payload_.size(); }

  /// Replaces `out` with the complete frame for everything added since the
  /// last finish, then resets for the next batch. pending() must be > 0.
  void finish(std::uint64_t seq, event::PhaseId phase,
              std::vector<std::uint8_t>& out);

 private:
  std::vector<std::uint8_t> payload_;
  std::uint32_t count_ = 0;
  std::uint32_t prev_index_ = 0;
};

// --- decode (version 2) -----------------------------------------------------

/// Decodes the fixed header only (magic/version/type checked). The payload
/// is not examined.
DecodeStatus decode_header(std::span<const std::uint8_t> bytes,
                           FrameHeader& out);

/// Walks the entire frame with bounds checks but without materializing any
/// value — no allocation on any input. Returns exactly the status a full
/// decode_frame would: readers use it to reject corrupt frames off the
/// engine's critical path while forwarding the raw bytes untouched.
DecodeStatus validate_frame(std::span<const std::uint8_t> bytes);

/// Decodes one complete frame; `out` is valid only when kOk is returned.
DecodeStatus decode_frame(std::span<const std::uint8_t> bytes, Frame& out);

/// Streaming decoder over a kDeliveryBatch frame: deliveries decode one at
/// a time straight into a caller-owned Delivery (whose value the caller
/// typically moves into its destination bundle), so a batch never
/// materializes as an intermediate vector. open() validates the header and
/// the count's allocation guard; next() decodes the following delivery.
class BatchReader {
 public:
  /// Binds to a complete encoded frame. On kOk, header() and remaining()
  /// are valid and `bytes` must outlive the reader.
  DecodeStatus open(std::span<const std::uint8_t> bytes);

  const FrameHeader& header() const { return header_; }
  std::uint32_t remaining() const { return remaining_; }

  /// Decodes the next delivery; remaining() must be > 0. After the last
  /// delivery, checks the frame for trailing bytes.
  DecodeStatus next(core::Delivery& out);

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t cursor_ = 0;
  FrameHeader header_;
  std::uint32_t remaining_ = 0;
  std::uint32_t prev_index_ = 0;
};

// Value-level encode/append and decode, exposed for the round-trip fuzz
// tests; decode_value advances `cursor` past the consumed bytes. The v2
// forms use the dense tags where smaller; the v1 forms speak tags 0..5
// only (the decode-compat fixture).
void encode_value(const event::Value& value, std::vector<std::uint8_t>& out);
DecodeStatus decode_value(std::span<const std::uint8_t> bytes,
                          std::size_t& cursor, event::Value& out);

// --- version 1 (decode-compat fixture; see test_wire.cpp) -------------------

void encode_delivery_v1(std::uint64_t seq, event::PhaseId phase,
                        const core::Delivery& delivery,
                        std::vector<std::uint8_t>& out);
void encode_watermark_v1(std::uint64_t seq, event::PhaseId phase,
                         std::vector<std::uint8_t>& out);
DecodeStatus decode_frame_v1(std::span<const std::uint8_t> bytes, Frame& out);
void encode_value_v1(const event::Value& value,
                     std::vector<std::uint8_t>& out);
DecodeStatus decode_value_v1(std::span<const std::uint8_t> bytes,
                             std::size_t& cursor, event::Value& out);

}  // namespace df::distrib::wire
