// Wire format for cross-partition transport frames (DESIGN.md, "Real
// transport").
//
// The partitioned TransportEngine (distrib/transport.hpp) moves *serialized
// bytes* between partition engines — unlike the simulated ClusterExecutor,
// nothing crosses a partition boundary as a live C++ object. This module
// defines the frame format those bytes follow:
//
//   offset  size  field
//   0       3     magic "DFW"
//   3       1     version (kVersion; receivers reject anything else)
//   4       1     frame type (FrameType)
//   5       8     sequence number, little-endian (per-channel, starts at 0,
//                 counts every frame; the receiver reassembles the exact
//                 send order from it and drops duplicates)
//   13      8     phase id, little-endian
//   21      ...   type-specific payload
//
// kDelivery payload: u32 to_index, u16 to_port, then one encoded Value.
// kWatermark payload: empty — the phase field *is* the watermark ("every
// delivery I will ever send for phases <= p precedes this frame").
//
// Values serialize as one Kind tag byte (event::Value::Kind, a wire
// contract) followed by: nothing (empty), u8 0/1 (bool), u64 two's
// complement (int), u64 bit pattern (double), u32 length + raw bytes
// (string), u32 count + count doubles (vector).
//
// Decoding is total: every read is bounds-checked, length fields are
// validated against the remaining bytes *before* any allocation, and
// trailing bytes are rejected, so truncated or corrupted frames produce a
// DecodeStatus — never undefined behaviour (test_wire.cpp fuzzes exactly
// this under ASan/UBSan).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/delivery.hpp"
#include "event/phase.hpp"
#include "event/value.hpp"

namespace df::distrib::wire {

inline constexpr std::uint8_t kVersion = 1;

/// Sanity bound on a single frame; anything larger is rejected both by the
/// decoder and by the socket channel's length-prefix reader (a corrupted
/// length field must not trigger a giant allocation).
inline constexpr std::size_t kMaxFrameBytes = std::size_t{1} << 22;

enum class FrameType : std::uint8_t {
  kDelivery = 1,
  kWatermark = 2,
};

/// One decoded frame. `delivery` is meaningful only for kDelivery.
struct Frame {
  FrameType type = FrameType::kWatermark;
  std::uint64_t seq = 0;
  event::PhaseId phase = 0;
  core::Delivery delivery;
};

enum class DecodeStatus : std::uint8_t {
  kOk = 0,
  kTruncated,      // frame ends before a required field
  kBadMagic,       // not a DFW frame
  kBadVersion,     // version this decoder does not speak
  kBadFrameType,   // unknown FrameType
  kBadValueTag,    // unknown Value::Kind tag
  kBadPayload,     // structurally invalid payload (e.g. bool not 0/1)
  kTrailingBytes,  // frame longer than its content
  kOversized,      // exceeds kMaxFrameBytes
};

const char* to_string(DecodeStatus status);

/// Replaces `out` with the encoded frame.
void encode_delivery(std::uint64_t seq, event::PhaseId phase,
                     const core::Delivery& delivery,
                     std::vector<std::uint8_t>& out);
void encode_watermark(std::uint64_t seq, event::PhaseId phase,
                      std::vector<std::uint8_t>& out);

/// Decodes one complete frame; `out` is valid only when kOk is returned.
DecodeStatus decode_frame(std::span<const std::uint8_t> bytes, Frame& out);

// Value-level encode/append and decode, exposed for the round-trip fuzz
// tests; decode_value advances `cursor` past the consumed bytes.
void encode_value(const event::Value& value, std::vector<std::uint8_t>& out);
DecodeStatus decode_value(std::span<const std::uint8_t> bytes,
                          std::size_t& cursor, event::Value& out);

}  // namespace df::distrib::wire
