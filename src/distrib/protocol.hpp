// The transport run/teardown protocol as an explicit, machine-checked state
// machine (DESIGN.md, "Static analysis & protocol verification").
//
// PR 5's teardown ordering and PR 7's per-link flush discipline lived as
// prose plus scattered booleans (`failed`, `closed_`). This header makes the
// lifecycle declarative: three small machines with enum states, a
// transition-table *data structure* the live code must step through a
// checked advance() (an illegal edge is a DF_CHECK failure, in every build
// type), and which tools/verify_protocol.cpp explores exhaustively in CI —
// the product of sender x receiver x engine machines over a bounded channel,
// asserting no send-after-close, no exit from terminal states, and that
// every reachable non-terminal composite state can still reach the
// all-terminal one (no hang).
//
// The three machines and how the live code drives them:
//
//   Sender — one per egress link (EgressHub::Link, under the link mutex):
//
//         kFlush (phase batches + watermark sent)
//          v--.
//       [kOpen] --kSendError--> [kFailed]
//        | ^ |                      |
//        | | +------kClose----------+--> [[kClosed]]
//        | kReplayDone                        ^
//        v |      kFlush (retained re-send)   |
//     [kReplaying]<--/  --kClose--------------+   (kSendError -> kFailed)
//
//   Receiver — one per ingress sequencer (engine thread only):
//
//         kFrame/kWatermark/kDuplicate
//          v--.
//     [kStreaming] --kFinalWatermark--> [kDrained] --.kDuplicate
//        ^ |    \--kError-->[[kFailed]]<--kError-- | ^--/
//        | |                                       +--kEof--> [[kEof]]
//        | +--kEof--> [[kPeerClosed]]   (close before the final watermark:
//        |                               the peer aborted; secondary error)
//        +--kFrame/kWatermark-- [kReplaying]   (restart-initial state;
//           kDuplicate self-loops absorb       kFinalWatermark -> kDrained,
//           the below-floor replay stream)     kEof/kError as from kStreaming)
//
//   Engine — one per partition engine_main:
//
//     [kCreated] -kStart-> [kRunning] -kLocalComplete-> [kLocalDone]
//         |  \                 | ^                          |
//         |   kRestore         | +--kStart--[kReplaying]    v
//         |    \               |             (restored;  [kEgressClosed]
//         |     ----------------------kError---^ gen n+1)   | kCloseEgress
//         |                    v    kError                  | kIngressEof
//         +----kError----> [kAborting] <---------------+    v
//                              | kCloseEgress           \ [[kDone]]
//                              v
//                    [kAbortingEgressClosed] (kCloseEgress/kError self-loop)
//                              | kIngressEof
//                              v
//                         [[kAborted]]
//
// Crash-restart (DESIGN.md "Crash-restart recovery") extends all three
// machines with a kReplaying state: the sender enters it from kOpen when a
// restarted peer requests replay (kReplayStart), re-flushes retained frames,
// and returns via kReplayDone; a restarted sequencer *starts* in receiver
// kReplaying, where kDuplicate self-loops absorb the below-floor replay
// stream until the first fresh frame/watermark rejoins kStreaming; a
// restored engine passes kCreated -kRestore-> kReplaying -kStart-> kRunning,
// so a generation that skips restore_state cannot claim to have replayed.
//
// ([[x]] = terminal.) The teardown ordering invariant — close egress first,
// then drain ingress to EOF — is exactly the edge structure: kIngressEof is
// only reachable from the two egress-closed states.
//
// Error precedence: a root-cause failure (module exception, protocol
// violation, send failure) outranks the peer_closed_error aborts it sets
// off in neighbouring engines; ErrorRank/classify make the coordinator's
// fold explicit and testable.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <span>
#include <stdexcept>

#include "support/check.hpp"

namespace df::distrib::protocol {

// --- Transition-table machinery ---------------------------------------------

/// One legal transition. Tables below are the single source of truth: the
/// live code, the unit tests, and the exhaustive verifier all read them.
template <typename State, typename Event>
struct Edge {
  State from;
  Event event;
  State to;
};

/// The edge for (from, event), or nullptr if the transition is illegal.
template <typename State, typename Event>
constexpr const Edge<State, Event>* find_edge(
    std::span<const Edge<State, Event>> table, State from, Event event) {
  for (const Edge<State, Event>& edge : table) {
    if (edge.from == from && edge.event == event) {
      return &edge;
    }
  }
  return nullptr;
}

/// A state is terminal iff it has no outgoing edges.
template <typename State, typename Event>
constexpr bool is_terminal(std::span<const Edge<State, Event>> table,
                           State state) {
  for (const Edge<State, Event>& edge : table) {
    if (edge.from == state) {
      return false;
    }
  }
  return true;
}

/// Process-wide count of successful checked advances, across every machine
/// instance. Always on (relaxed increments on cold control-flow paths), so
/// tests in any build type can assert that TransportEngine really drives
/// its lifecycle through the checked path rather than around it.
inline std::atomic<std::uint64_t>& advance_count() {
  static std::atomic<std::uint64_t> count{0};
  return count;
}

/// A live machine: current state plus the table that constrains it.
/// advance() on an edge the table does not contain is a DF_CHECK failure
/// (thrown df::support::check_error) in all build types.
template <typename State, typename Event>
class Machine {
 public:
  constexpr Machine(std::span<const Edge<State, Event>> table, State initial,
                    const char* name)
      : table_(table), state_(initial), name_(name) {}

  State state() const { return state_; }
  bool is(State s) const { return state_ == s; }
  bool terminal() const { return is_terminal(table_, state_); }
  const char* name() const { return name_; }

  void advance(Event event) {
    const Edge<State, Event>* edge = find_edge(table_, state_, event);
    DF_CHECK(edge != nullptr, "illegal protocol transition: machine '", name_,
             "' in state ", to_string(state_), " received event ",
             to_string(event));
    state_ = edge->to;
    advance_count().fetch_add(1, std::memory_order_relaxed);
  }

 private:
  std::span<const Edge<State, Event>> table_;
  State state_;
  const char* name_;
};

// --- Sender (one per egress link) -------------------------------------------

enum class SenderState : std::uint8_t { kOpen, kFailed, kClosed, kReplaying };
enum class SenderEvent : std::uint8_t { kFlush, kSendError, kClose,
                                        kReplayStart, kReplayDone };

constexpr const char* to_string(SenderState s) {
  switch (s) {
    case SenderState::kOpen: return "Open";
    case SenderState::kFailed: return "Failed";
    case SenderState::kClosed: return "Closed";
    case SenderState::kReplaying: return "Replaying";
  }
  return "?";
}
constexpr const char* to_string(SenderEvent e) {
  switch (e) {
    case SenderEvent::kFlush: return "Flush";
    case SenderEvent::kSendError: return "SendError";
    case SenderEvent::kClose: return "Close";
    case SenderEvent::kReplayStart: return "ReplayStart";
    case SenderEvent::kReplayDone: return "ReplayDone";
  }
  return "?";
}

/// No kFlush edge exists from kFailed or kClosed: send-after-close (or
/// send-after-failure) is structurally impossible, not merely unexercised.
/// kReplaying is bracketed — only kReplayStart from kOpen enters it and only
/// kReplayDone leaves it for kOpen, so retained-frame re-sends (kFlush while
/// kReplaying) can never interleave with fresh-phase flushes: EgressHub's
/// flush_through loop runs only while the machine is(kOpen).
inline constexpr Edge<SenderState, SenderEvent> kSenderEdges[] = {
    {SenderState::kOpen, SenderEvent::kFlush, SenderState::kOpen},
    {SenderState::kOpen, SenderEvent::kSendError, SenderState::kFailed},
    {SenderState::kOpen, SenderEvent::kClose, SenderState::kClosed},
    {SenderState::kFailed, SenderEvent::kClose, SenderState::kClosed},
    {SenderState::kOpen, SenderEvent::kReplayStart, SenderState::kReplaying},
    {SenderState::kReplaying, SenderEvent::kFlush, SenderState::kReplaying},
    {SenderState::kReplaying, SenderEvent::kReplayDone, SenderState::kOpen},
    {SenderState::kReplaying, SenderEvent::kSendError, SenderState::kFailed},
    {SenderState::kReplaying, SenderEvent::kClose, SenderState::kClosed},
};
inline constexpr std::span<const Edge<SenderState, SenderEvent>> kSenderTable{
    kSenderEdges};
inline constexpr SenderState kSenderStates[] = {
    SenderState::kOpen, SenderState::kFailed, SenderState::kClosed,
    SenderState::kReplaying};
inline constexpr SenderEvent kSenderEvents[] = {
    SenderEvent::kFlush, SenderEvent::kSendError, SenderEvent::kClose,
    SenderEvent::kReplayStart, SenderEvent::kReplayDone};

class SenderMachine : public Machine<SenderState, SenderEvent> {
 public:
  SenderMachine() : Machine(kSenderTable, SenderState::kOpen, "sender") {}
};

// --- Receiver (one per ingress sequencer) -----------------------------------

enum class ReceiverState : std::uint8_t {
  kStreaming,   // inside the phase-window handshake
  kDrained,     // final watermark consumed; only duplicates may trail
  kEof,         // terminal: clean end-of-stream after drain
  kFailed,      // terminal: reader/validation error on this channel
  kPeerClosed,  // terminal: EOF before the final watermark (peer aborted)
  kReplaying,   // restart-initial: absorbing the below-floor replay stream
};
enum class ReceiverEvent : std::uint8_t {
  kFrame,           // in-order delivery/batch frame consumed
  kWatermark,       // non-final watermark consumed
  kFinalWatermark,  // watermark for the last phase consumed
  kDuplicate,       // sequencer dropped a duplicate
  kEof,             // channel end-of-stream observed
  kError,           // reader error surfaced for this channel
};

constexpr const char* to_string(ReceiverState s) {
  switch (s) {
    case ReceiverState::kStreaming: return "Streaming";
    case ReceiverState::kDrained: return "Drained";
    case ReceiverState::kEof: return "Eof";
    case ReceiverState::kFailed: return "Failed";
    case ReceiverState::kPeerClosed: return "PeerClosed";
    case ReceiverState::kReplaying: return "Replaying";
  }
  return "?";
}
constexpr const char* to_string(ReceiverEvent e) {
  switch (e) {
    case ReceiverEvent::kFrame: return "Frame";
    case ReceiverEvent::kWatermark: return "Watermark";
    case ReceiverEvent::kFinalWatermark: return "FinalWatermark";
    case ReceiverEvent::kDuplicate: return "Duplicate";
    case ReceiverEvent::kEof: return "Eof";
    case ReceiverEvent::kError: return "Error";
  }
  return "?";
}

/// kEof from kStreaming lands in kPeerClosed (the peer closed before its
/// final watermark — it aborted; classify() ranks the resulting error below
/// any root cause). No kFrame/kWatermark edge exists from kDrained: a
/// non-duplicate frame after the final watermark is a protocol violation
/// and fails the checked advance.
inline constexpr Edge<ReceiverState, ReceiverEvent> kReceiverEdges[] = {
    {ReceiverState::kStreaming, ReceiverEvent::kFrame,
     ReceiverState::kStreaming},
    {ReceiverState::kStreaming, ReceiverEvent::kWatermark,
     ReceiverState::kStreaming},
    {ReceiverState::kStreaming, ReceiverEvent::kDuplicate,
     ReceiverState::kStreaming},
    {ReceiverState::kStreaming, ReceiverEvent::kFinalWatermark,
     ReceiverState::kDrained},
    {ReceiverState::kStreaming, ReceiverEvent::kEof,
     ReceiverState::kPeerClosed},
    {ReceiverState::kStreaming, ReceiverEvent::kError, ReceiverState::kFailed},
    {ReceiverState::kDrained, ReceiverEvent::kDuplicate,
     ReceiverState::kDrained},
    {ReceiverState::kDrained, ReceiverEvent::kEof, ReceiverState::kEof},
    {ReceiverState::kDrained, ReceiverEvent::kError, ReceiverState::kFailed},
    // A restarted sequencer starts in kReplaying: below-floor duplicates
    // self-loop, and the first fresh frame/watermark rejoins the normal
    // stream. kEof while still replaying means the peer died before
    // completing the replay — same secondary-abort semantics as kStreaming.
    {ReceiverState::kReplaying, ReceiverEvent::kDuplicate,
     ReceiverState::kReplaying},
    {ReceiverState::kReplaying, ReceiverEvent::kFrame,
     ReceiverState::kStreaming},
    {ReceiverState::kReplaying, ReceiverEvent::kWatermark,
     ReceiverState::kStreaming},
    {ReceiverState::kReplaying, ReceiverEvent::kFinalWatermark,
     ReceiverState::kDrained},
    {ReceiverState::kReplaying, ReceiverEvent::kEof,
     ReceiverState::kPeerClosed},
    {ReceiverState::kReplaying, ReceiverEvent::kError, ReceiverState::kFailed},
};
inline constexpr std::span<const Edge<ReceiverState, ReceiverEvent>>
    kReceiverTable{kReceiverEdges};
inline constexpr ReceiverState kReceiverStates[] = {
    ReceiverState::kStreaming, ReceiverState::kDrained, ReceiverState::kEof,
    ReceiverState::kFailed, ReceiverState::kPeerClosed,
    ReceiverState::kReplaying};
inline constexpr ReceiverEvent kReceiverEvents[] = {
    ReceiverEvent::kFrame,     ReceiverEvent::kWatermark,
    ReceiverEvent::kFinalWatermark, ReceiverEvent::kDuplicate,
    ReceiverEvent::kEof,       ReceiverEvent::kError};

class ReceiverMachine : public Machine<ReceiverState, ReceiverEvent> {
 public:
  /// Fresh sequencers stream from seq 0; restarted ones pass
  /// ReceiverState::kReplaying so the replay prefix is absorbed under a
  /// state the verifier models, not an ad-hoc flag.
  explicit ReceiverMachine(ReceiverState initial = ReceiverState::kStreaming)
      : Machine(kReceiverTable, initial, "receiver") {}
};

// --- Engine (one per partition engine_main) ---------------------------------

enum class EngineState : std::uint8_t {
  kCreated,
  kRunning,
  kLocalDone,             // every started phase completed, error re-checked
  kEgressClosed,          // close-egress-first half of normal teardown
  kDone,                  // terminal: ingress drained to EOF
  kAborting,              // error captured; egress not yet closed
  kAbortingEgressClosed,  // error captured; draining ingress to EOF
  kAborted,               // terminal
  kReplaying,             // restored from a checkpoint; not yet running
};
enum class EngineEvent : std::uint8_t {
  kStart,
  kLocalComplete,
  kCloseEgress,
  kIngressEof,
  kError,
  kRestore,
};

constexpr const char* to_string(EngineState s) {
  switch (s) {
    case EngineState::kCreated: return "Created";
    case EngineState::kRunning: return "Running";
    case EngineState::kLocalDone: return "LocalDone";
    case EngineState::kEgressClosed: return "EgressClosed";
    case EngineState::kDone: return "Done";
    case EngineState::kAborting: return "Aborting";
    case EngineState::kAbortingEgressClosed: return "AbortingEgressClosed";
    case EngineState::kAborted: return "Aborted";
    case EngineState::kReplaying: return "Replaying";
  }
  return "?";
}
constexpr const char* to_string(EngineEvent e) {
  switch (e) {
    case EngineEvent::kStart: return "Start";
    case EngineEvent::kLocalComplete: return "LocalComplete";
    case EngineEvent::kCloseEgress: return "CloseEgress";
    case EngineEvent::kIngressEof: return "IngressEof";
    case EngineEvent::kError: return "Error";
    case EngineEvent::kRestore: return "Restore";
  }
  return "?";
}

/// kIngressEof only leaves the two egress-closed states: the table *is* the
/// "close egress first, then drain ingress to EOF" teardown ordering. The
/// self-loops on kAbortingEgressClosed absorb the idempotent re-close and
/// secondary errors of the abort drain.
inline constexpr Edge<EngineState, EngineEvent> kEngineEdges[] = {
    {EngineState::kCreated, EngineEvent::kStart, EngineState::kRunning},
    {EngineState::kRunning, EngineEvent::kLocalComplete,
     EngineState::kLocalDone},
    {EngineState::kLocalDone, EngineEvent::kCloseEgress,
     EngineState::kEgressClosed},
    {EngineState::kEgressClosed, EngineEvent::kIngressEof, EngineState::kDone},
    {EngineState::kCreated, EngineEvent::kError, EngineState::kAborting},
    {EngineState::kRunning, EngineEvent::kError, EngineState::kAborting},
    {EngineState::kLocalDone, EngineEvent::kError, EngineState::kAborting},
    {EngineState::kEgressClosed, EngineEvent::kError,
     EngineState::kAbortingEgressClosed},
    {EngineState::kAborting, EngineEvent::kError, EngineState::kAborting},
    {EngineState::kAborting, EngineEvent::kCloseEgress,
     EngineState::kAbortingEgressClosed},
    {EngineState::kAbortingEgressClosed, EngineEvent::kCloseEgress,
     EngineState::kAbortingEgressClosed},
    {EngineState::kAbortingEgressClosed, EngineEvent::kError,
     EngineState::kAbortingEgressClosed},
    {EngineState::kAbortingEgressClosed, EngineEvent::kIngressEof,
     EngineState::kAborted},
    // Crash-restart: a restored generation must pass through kReplaying
    // (kRestore fires only after restore_state succeeds), so kStart out of a
    // restart always carries replayed state. An error during restore aborts
    // through the normal path.
    {EngineState::kCreated, EngineEvent::kRestore, EngineState::kReplaying},
    {EngineState::kReplaying, EngineEvent::kStart, EngineState::kRunning},
    {EngineState::kReplaying, EngineEvent::kError, EngineState::kAborting},
};
inline constexpr std::span<const Edge<EngineState, EngineEvent>> kEngineTable{
    kEngineEdges};
inline constexpr EngineState kEngineStates[] = {
    EngineState::kCreated,  EngineState::kRunning,
    EngineState::kLocalDone, EngineState::kEgressClosed,
    EngineState::kDone,     EngineState::kAborting,
    EngineState::kAbortingEgressClosed, EngineState::kAborted,
    EngineState::kReplaying};
inline constexpr EngineEvent kEngineEvents[] = {
    EngineEvent::kStart, EngineEvent::kLocalComplete, EngineEvent::kCloseEgress,
    EngineEvent::kIngressEof, EngineEvent::kError, EngineEvent::kRestore};

class EngineMachine : public Machine<EngineState, EngineEvent> {
 public:
  EngineMachine() : Machine(kEngineTable, EngineState::kCreated, "engine") {}
};

// --- Error precedence --------------------------------------------------------

/// Thrown when a neighbour closed its channel before the protocol allowed
/// it (ReceiverState::kPeerClosed) — the sign that *another* engine failed
/// and the run is tearing down. The coordinator reports the root cause, not
/// these secondary aborts.
class peer_closed_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown when a socket peer vanished abruptly (ECONNRESET / EPIPE on a
/// once-healthy connection) — the process-death signature, as opposed to the
/// torn-stream "peer closed mid-frame" which means the peer wrote garbage.
/// Retryable: a crash-restart supervisor treats it as "trigger recovery",
/// while an unsupervised run reports it like any other secondary abort
/// (classify() ranks it with peer_closed_error, below a root cause).
class peer_lost_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Severity order for the coordinator's fold: a root cause (module
/// exception, protocol violation, send failure) outranks the
/// peer_closed_error aborts it set off in the neighbours. Within a rank the
/// first error in block order wins (deterministic reporting).
enum class ErrorRank : std::uint8_t { kNone = 0, kPeerClosed = 1,
                                      kRootCause = 2 };

constexpr bool outranks(ErrorRank a, ErrorRank b) {
  return static_cast<std::uint8_t>(a) > static_cast<std::uint8_t>(b);
}

inline ErrorRank classify(const std::exception_ptr& error) {
  if (error == nullptr) {
    return ErrorRank::kNone;
  }
  try {
    std::rethrow_exception(error);
  } catch (const peer_closed_error&) {
    return ErrorRank::kPeerClosed;
  } catch (const peer_lost_error&) {
    return ErrorRank::kPeerClosed;
  } catch (...) {
    return ErrorRank::kRootCause;
  }
}

}  // namespace df::distrib::protocol
