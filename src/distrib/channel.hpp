// Frame channels between partition engines (DESIGN.md, "Real transport").
//
// A Channel is a unidirectional, order-preserving pipe of byte frames with
// exactly one sender thread and one receiver thread (the roles may migrate
// like SpscRing's, through a stronger-than-acquire/release handoff). The
// TransportEngine creates one channel per ordered partition pair (j, k),
// j < k — cross-partition traffic is forward-only, so no backward channels
// exist at all.
//
// Two production implementations:
//   * InProcessChannel — a bounded SPSC-ring of frames; the sender blocks
//     while the ring is full, which is the engine's cross-partition
//     backpressure (an upstream partition cannot run unboundedly ahead).
//   * SocketChannel — a loopback TCP connection carrying length-prefixed
//     frames; backpressure comes from the kernel socket buffer. This is the
//     configuration that proves real bytes cross the boundary; pointing the
//     same code at a remote address is deployment, not engineering.
//
// Plus two test implementations:
//   * FaultInjectingChannel — wraps any channel and duplicates, reorders
//     (within a bounded window), and delays frames on the send side. The
//     receiver's sequence-number reassembly must absorb all of it; the
//     fault-injection suite in test_transport.cpp asserts exactly-once
//     delivery and unchanged sink output.
//   * CrashableChannel — wraps any channel behind a kill()/revive() switch
//     simulating receiver process death: kill() severs the inner channel
//     (in-flight frames are lost, blocked peers unblock and drop, the old
//     reader runs to EOF) and revive() installs a factory-fresh inner for
//     the restarted receiver. The crash-restart suite and the transport's
//     partition supervisor (DESIGN.md, "Crash-restart recovery") drive it.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "concurrency/annotations.hpp"
#include "concurrency/spsc_ring.hpp"
#include "support/rng.hpp"

namespace df::distrib {

class Channel {
 public:
  virtual ~Channel() = default;

  /// Sender side: enqueues one frame, blocking while the channel is at
  /// capacity. After close_recv() the frame is silently dropped — the
  /// receiver is gone and the run is tearing down.
  virtual void send(std::span<const std::uint8_t> frame) = 0;

  /// Sender side: no more sends will follow. Idempotent.
  virtual void close_send() = 0;

  /// Receiver side: blocks for the next frame; returns false once the
  /// sender has closed and every frame has been drained.
  virtual bool recv(std::vector<std::uint8_t>& frame) = 0;

  /// Receiver side: abandons the channel so blocked or future senders drop
  /// frames instead of waiting forever (teardown of an aborting run).
  virtual void close_recv() = 0;
};

/// Bounded in-process channel over conc::SpscRing. The ring itself is
/// lock-free; the mutex/condvars only park threads that found it full or
/// empty (the state predicates read the ring's atomics, and notifiers take
/// the empty lock before notifying so a wakeup can never be lost).
class InProcessChannel final : public Channel {
 public:
  /// `capacity_frames` is rounded up to a power of two (ring requirement).
  explicit InProcessChannel(std::size_t capacity_frames);

  void send(std::span<const std::uint8_t> frame) override;
  void close_send() override;
  bool recv(std::vector<std::uint8_t>& frame) override;
  void close_recv() override;

 private:
  conc::SpscRing<std::vector<std::uint8_t>> ring_;
  // Pure parking lot: guards no fields (the wait predicates read the ring's
  // atomics and the closed flags), it only pairs waits with notifies so a
  // wakeup cannot be lost between predicate check and sleep.
  conc::Mutex mutex_;
  conc::CondVar can_send_;
  conc::CondVar can_recv_;
  std::atomic<bool> send_closed_{false};
  std::atomic<bool> recv_closed_{false};
};

/// Loopback-TCP channel: frames travel as u32 little-endian length prefixes
/// followed by the frame bytes. One connected socket per channel; the
/// sender owns the write end, the receiver the read end. Each frame goes
/// out as a *single* send() syscall — prefix and payload are assembled in
/// a reused scratch buffer first — so TCP_NODELAY never splits a frame
/// across segments needlessly and the per-frame syscall count is one.
class SocketChannel final : public Channel {
 public:
  /// Builds a connected loopback pair (listen on 127.0.0.1:0, connect,
  /// accept) and returns the ready channel. Throws check_error on any
  /// socket failure.
  static std::unique_ptr<SocketChannel> make_loopback();

  /// Wraps already-connected descriptors (ownership transfers; pass -1 for
  /// a side this endpoint does not use, e.g. a receive-only channel). This
  /// is the deployment seam — a remote connect/accept produces fds, this
  /// turns them into a Channel — and the hook tests use to inject raw
  /// stream conditions like a half-written frame.
  static std::unique_ptr<SocketChannel> adopt(int write_fd, int read_fd);

  ~SocketChannel() override;

  void send(std::span<const std::uint8_t> frame) override;
  void close_send() override;
  bool recv(std::vector<std::uint8_t>& frame) override;
  void close_recv() override;

 private:
  SocketChannel(int write_fd, int read_fd);

  int write_fd_;
  int read_fd_;
  /// Sender-side scratch assembling length prefix + payload for the single
  /// send() per frame; capacity persists across frames.
  std::vector<std::uint8_t> send_buf_;
  /// Set when a send hit a dead peer (EPIPE/ECONNRESET after the receiver
  /// closed); later sends drop immediately.
  std::atomic<bool> broken_{false};
  /// Set by close_recv() before it shutdown()s the stream. A mid-frame EOF
  /// is normally a fatal sender bug, but after a local teardown it is just
  /// wherever shutdown happened to truncate the reader — reclassified as
  /// the retryable peer_lost_error the old RST-based teardown surfaced.
  std::atomic<bool> torn_down_{false};
};

/// Knobs for FaultInjectingChannel. All faults are send-side: the wrapped
/// channel still delivers every frame it is given, in the order given.
struct FaultOptions {
  /// Chance a frame is enqueued twice.
  double duplicate_probability = 0.0;
  /// Chance a frame is held back and released later (delayed past — and
  /// therefore reordered with — up to `reorder_window` subsequent frames).
  double hold_probability = 0.0;
  /// Maximum frames held back at once; bounds how far delivery order can
  /// diverge from send order.
  std::size_t reorder_window = 4;
  std::uint64_t seed = 1;
};

class FaultInjectingChannel final : public Channel {
 public:
  FaultInjectingChannel(std::unique_ptr<Channel> inner, FaultOptions options);

  void send(std::span<const std::uint8_t> frame) override;
  /// Flushes every held frame (in random order), then closes the inner
  /// channel — faults delay frames, they never lose them.
  void close_send() override;
  bool recv(std::vector<std::uint8_t>& frame) override;
  void close_recv() override;

  /// Fault counters, for tests to assert the faults actually fired. Read
  /// only after the sending thread is joined.
  std::uint64_t duplicates_injected() const { return duplicates_injected_; }
  std::uint64_t frames_held() const { return frames_held_; }

 private:
  /// Releases random held frames until at most `keep` remain.
  void release_down_to(std::size_t keep);

  std::unique_ptr<Channel> inner_;
  FaultOptions options_;
  support::Rng rng_;
  std::vector<std::vector<std::uint8_t>> held_;
  std::uint64_t duplicates_injected_ = 0;
  std::uint64_t frames_held_ = 0;
};

/// Wraps a channel behind a kill()/revive() switch that simulates the
/// *receiving* process dying and restarting. Both endpoints keep their
/// pointer to this wrapper across the death:
///
///   * kill() marks the wrapper dead and severs the current inner channel
///     (close_recv so a sender blocked on a full channel unblocks and
///     drops, close_send so the old reader drains what arrived and hits
///     EOF). Frames the dead receiver had not consumed are lost — exactly
///     the in-flight loss a real crash causes — and sends during the dead
///     window are dropped at the wrapper.
///   * revive() installs a factory-fresh inner channel for the restarted
///     receiver; subsequent sends and recvs flow through it. The sender's
///     retention layer then replays everything past the receiver's last
///     acknowledged sequence number (distrib/transport.cpp, EgressHub).
///
/// Thread-safety: send/recv/close_* snapshot the inner channel under the
/// mutex and call it outside (a blocked recv must not hold the lock kill()
/// needs); the shared_ptr keeps a severed inner alive until every blocked
/// call on it returns. close_send during the dead window is absorbed — the
/// sender's machine records the close and replay re-issues it against the
/// revived channel.
class CrashableChannel final : public Channel {
 public:
  using Factory = std::function<std::unique_ptr<Channel>()>;

  /// `factory` builds replacement inner channels for revive(); it must
  /// produce the same kind (and wrapping) as `inner`.
  CrashableChannel(std::unique_ptr<Channel> inner, Factory factory);

  void send(std::span<const std::uint8_t> frame) override;
  void close_send() override;
  bool recv(std::vector<std::uint8_t>& frame) override;
  void close_recv() override;

  /// Receiver death. Idempotent while dead.
  void kill();
  /// Receiver restart; requires a preceding kill(). Also parks any
  /// subsequent close_send() until release_close(): the restarted
  /// receiver's replay request races the sender's normal completion, and
  /// the replayed frames must enter the fresh channel before its EOF.
  void revive();
  /// Ends the close hold revive() engaged, applying a close_send parked in
  /// the meantime. Called by the receiver's recovery once its replay
  /// request has been served (even a failed one — the hold must not
  /// outlive the replay attempt, or EOF never arrives).
  void release_close();

 private:
  /// Snapshots (inner, dead) under the lock.
  std::shared_ptr<Channel> snapshot(bool& dead);

  conc::Mutex mutex_;
  std::shared_ptr<Channel> inner_ DF_GUARDED_BY(mutex_);
  Factory factory_;
  bool dead_ DF_GUARDED_BY(mutex_) = false;
  /// revive() sets, release_close() clears: close_send() defers while set.
  bool hold_close_ DF_GUARDED_BY(mutex_) = false;
  /// A close_send() arrived during the hold and awaits release_close().
  bool deferred_close_ DF_GUARDED_BY(mutex_) = false;
};

}  // namespace df::distrib
