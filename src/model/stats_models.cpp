#include "model/stats_models.hpp"

#include <algorithm>
#include <cmath>

namespace df::model {

namespace {

/// Latest numeric value across ports [0, fan_in); nullopt until every port
/// has seen at least one value.
template <typename Fold>
std::optional<double> fold_latest(PhaseContext& ctx, std::size_t fan_in,
                                  double init, Fold fold) {
  double acc = init;
  for (std::size_t port = 0; port < fan_in; ++port) {
    const auto p = static_cast<graph::Port>(port);
    if (!ctx.has_latest(p)) {
      return std::nullopt;
    }
    acc = fold(acc, ctx.latest(p).as_number());
  }
  return acc;
}

}  // namespace

MovingAverageModule::MovingAverageModule(std::size_t window)
    : stats_(window) {}

void MovingAverageModule::on_phase(PhaseContext& ctx) {
  if (!ctx.has_input(0)) {
    return;
  }
  stats_.add(ctx.input(0).as_number());
  ctx.emit(0, stats_.mean());
}

MovingStdDevModule::MovingStdDevModule(std::size_t window) : stats_(window) {}

void MovingStdDevModule::on_phase(PhaseContext& ctx) {
  if (!ctx.has_input(0)) {
    return;
  }
  stats_.add(ctx.input(0).as_number());
  ctx.emit(0, stats_.stddev());
}

EwmaModule::EwmaModule(double alpha) : ewma_(alpha) {}

void EwmaModule::on_phase(PhaseContext& ctx) {
  if (!ctx.has_input(0)) {
    return;
  }
  ewma_.add(ctx.input(0).as_number());
  ctx.emit(0, ewma_.value());
}

SumModule::SumModule(std::size_t fan_in) : fan_in_(fan_in) {}

void SumModule::on_phase(PhaseContext& ctx) {
  const auto sum = fold_latest(ctx, fan_in_, 0.0,
                               [](double a, double b) { return a + b; });
  if (sum.has_value() && sum != last_sum_) {
    last_sum_ = sum;
    ctx.emit(0, *sum);
  }
}

MaxModule::MaxModule(std::size_t fan_in) : fan_in_(fan_in) {}

void MaxModule::on_phase(PhaseContext& ctx) {
  const auto value =
      fold_latest(ctx, fan_in_, -std::numeric_limits<double>::infinity(),
                  [](double a, double b) { return std::max(a, b); });
  if (value.has_value() && value != last_max_) {
    last_max_ = value;
    ctx.emit(0, *value);
  }
}

MinModule::MinModule(std::size_t fan_in) : fan_in_(fan_in) {}

void MinModule::on_phase(PhaseContext& ctx) {
  const auto value =
      fold_latest(ctx, fan_in_, std::numeric_limits<double>::infinity(),
                  [](double a, double b) { return std::min(a, b); });
  if (value.has_value() && value != last_min_) {
    last_min_ = value;
    ctx.emit(0, *value);
  }
}

SnapshotJoinModule::SnapshotJoinModule(std::size_t fan_in)
    : fan_in_(fan_in) {}

void SnapshotJoinModule::on_phase(PhaseContext& ctx) {
  std::vector<double> snapshot;
  snapshot.reserve(fan_in_);
  for (std::size_t port = 0; port < fan_in_; ++port) {
    const auto p = static_cast<graph::Port>(port);
    if (!ctx.has_latest(p)) {
      return;  // incomplete join: some stream has produced nothing yet
    }
    snapshot.push_back(ctx.latest(p).as_number());
  }
  ctx.emit(0, std::move(snapshot));
}

QuantileModule::QuantileModule(double q) : sketch_(q) {}

void QuantileModule::on_phase(PhaseContext& ctx) {
  if (!ctx.has_input(0)) {
    return;
  }
  sketch_.add(ctx.input(0).as_number());
  ctx.emit(0, sketch_.value());
}

ChangeFilterModule::ChangeFilterModule(double epsilon) : epsilon_(epsilon) {}

void ChangeFilterModule::on_phase(PhaseContext& ctx) {
  if (!ctx.has_input(0)) {
    return;
  }
  const double value = ctx.input(0).as_number();
  if (!last_forwarded_.has_value() ||
      std::abs(value - *last_forwarded_) > epsilon_) {
    last_forwarded_ = value;
    ctx.emit(0, value);
  }
}

DebounceModule::DebounceModule(event::PhaseId min_gap) : min_gap_(min_gap) {}

void DebounceModule::on_phase(PhaseContext& ctx) {
  if (!ctx.has_input(0)) {
    return;
  }
  if (!last_forward_phase_.has_value() ||
      ctx.phase() - *last_forward_phase_ >= min_gap_) {
    last_forward_phase_ = ctx.phase();
    ctx.emit(0, ctx.input(0));
  }
}

RateEstimatorModule::RateEstimatorModule(event::PhaseId window)
    : window_(window == 0 ? 1 : window) {}

void RateEstimatorModule::on_phase(PhaseContext& ctx) {
  if (!ctx.has_input(0)) {
    return;
  }
  const event::PhaseId now = ctx.phase();
  arrivals_.push_back(now);
  while (!arrivals_.empty() && arrivals_.front() + window_ <= now) {
    arrivals_.pop_front();
  }
  ctx.emit(0, static_cast<double>(arrivals_.size()) /
                  static_cast<double>(window_));
}

CorrelatorModule::CorrelatorModule(std::size_t window) : corr_(window) {}

void CorrelatorModule::on_phase(PhaseContext& ctx) {
  if (!ctx.has_input(0) && !ctx.has_input(1)) {
    return;
  }
  if (!ctx.has_latest(0) || !ctx.has_latest(1)) {
    return;  // wait until both streams have produced at least one sample
  }
  corr_.add(ctx.latest(0).as_number(), ctx.latest(1).as_number());
  if (corr_.size() >= 2) {
    ctx.emit(0, corr_.correlation());
  }
}

}  // namespace df::model
