#include "model/synthetic.hpp"

#include "support/stopwatch.hpp"

namespace df::model {

BusyWorkSource::BusyWorkSource(std::uint64_t spin_ns, double emit_probability)
    : spin_ns_(spin_ns), emit_probability_(emit_probability) {}

void BusyWorkSource::on_phase(PhaseContext& ctx) {
  if (spin_ns_ > 0) {
    support::spin_for_ns(spin_ns_);
  }
  if (ctx.rng().next_bernoulli(emit_probability_)) {
    ctx.emit(0, static_cast<std::int64_t>(ctx.phase()));
  }
}

BusyWorkModule::BusyWorkModule(std::uint64_t spin_ns, std::size_t fan_in,
                               double emit_probability)
    : spin_ns_(spin_ns), fan_in_(fan_in),
      emit_probability_(emit_probability) {}

void BusyWorkModule::on_phase(PhaseContext& ctx) {
  if (spin_ns_ > 0) {
    support::spin_for_ns(spin_ns_);
  }
  double sum = 0.0;
  bool any = false;
  for (std::size_t port = 0; port < fan_in_; ++port) {
    const auto p = static_cast<graph::Port>(port);
    if (ctx.has_input(p)) {
      sum += ctx.input(p).as_number();
      any = true;
    }
  }
  if (any && ctx.rng().next_bernoulli(emit_probability_)) {
    ctx.emit(0, sum);
  }
}

void ForwardModule::on_phase(PhaseContext& ctx) {
  if (ctx.has_input(0)) {
    ctx.emit(0, ctx.input(0));
  }
}

void NoOpModule::on_phase(PhaseContext& ctx) { (void)ctx; }

}  // namespace df::model
