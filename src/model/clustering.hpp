// Online clustering (the paper lists "clustering of points in
// multidimensional spaces" among the model types composed in fusion graphs).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "model/module.hpp"

namespace df::model {

/// Sequential (online) k-means over points arriving on port 0 (scalar or
/// vector values). Centroids are seeded from the first k distinct points,
/// then updated with a per-centroid harmonic learning rate (MacQueen).
/// Emits the assigned cluster index when the assignment *changes* relative
/// to the previous point (a Δ-signal that the stream moved between regimes);
/// also emits the distance to the assigned centroid on port 1 whenever the
/// point is farther than `outlier_distance` (0 disables).
class OnlineKMeansModule final : public Module {
 public:
  OnlineKMeansModule(std::size_t k, double outlier_distance = 0.0);
  void on_phase(PhaseContext& ctx) override;

  const std::vector<std::vector<double>>& centroids() const {
    return centroids_;
  }

 private:
  std::size_t k_;
  double outlier_distance_;
  std::vector<std::vector<double>> centroids_;
  std::vector<std::uint64_t> counts_;
  std::optional<std::size_t> last_assignment_;

  static std::vector<double> as_point(const event::Value& value);
  static double squared_distance(const std::vector<double>& a,
                                 const std::vector<double>& b);
};

}  // namespace df::model
