#include "model/clustering.hpp"

#include <cmath>
#include <limits>

#include "support/check.hpp"

namespace df::model {

OnlineKMeansModule::OnlineKMeansModule(std::size_t k, double outlier_distance)
    : k_(k), outlier_distance_(outlier_distance) {
  DF_CHECK(k >= 1, "k-means needs at least one cluster");
}

std::vector<double> OnlineKMeansModule::as_point(const event::Value& value) {
  if (value.is_vector()) {
    return value.as_vector();
  }
  return {value.as_number()};
}

double OnlineKMeansModule::squared_distance(const std::vector<double>& a,
                                            const std::vector<double>& b) {
  DF_CHECK(a.size() == b.size(), "dimension mismatch in k-means point");
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

void OnlineKMeansModule::on_phase(PhaseContext& ctx) {
  if (!ctx.has_input(0)) {
    return;
  }
  const std::vector<double> point = as_point(ctx.input(0));

  // Seeding: first k distinct points become centroids.
  if (centroids_.size() < k_) {
    for (const auto& centroid : centroids_) {
      if (squared_distance(centroid, point) == 0.0) {
        return;  // duplicate of an existing seed; wait for a distinct one
      }
    }
    centroids_.push_back(point);
    counts_.push_back(1);
    return;
  }

  std::size_t best = 0;
  double best_distance = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < centroids_.size(); ++c) {
    const double d = squared_distance(centroids_[c], point);
    if (d < best_distance) {
      best_distance = d;
      best = c;
    }
  }

  // MacQueen update: centroid moves toward the point by 1/n_c.
  ++counts_[best];
  const double rate = 1.0 / static_cast<double>(counts_[best]);
  for (std::size_t i = 0; i < centroids_[best].size(); ++i) {
    centroids_[best][i] += rate * (point[i] - centroids_[best][i]);
  }

  if (!last_assignment_.has_value() || best != *last_assignment_) {
    last_assignment_ = best;
    ctx.emit(0, static_cast<std::int64_t>(best));
  }
  if (outlier_distance_ > 0.0 &&
      std::sqrt(best_distance) > outlier_distance_) {
    ctx.emit(1, std::sqrt(best_distance));
  }
}

}  // namespace df::model
