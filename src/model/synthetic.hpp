// Synthetic workload modules for the performance experiments.
//
// The paper's section 4 measures "identical computations" with varying
// thread counts and predicts near-linear speedup "as long as the
// computations performed by the vertices take significantly more time than
// the computations performed to maintain the data structures". BusyWork
// makes that grain explicit: each execution spins for a configurable number
// of nanoseconds before forwarding.
#pragma once

#include <cstdint>

#include "model/module.hpp"

namespace df::model {

/// Source that spins for `spin_ns` and emits the phase number every phase
/// with probability `emit_probability`.
class BusyWorkSource final : public Module {
 public:
  explicit BusyWorkSource(std::uint64_t spin_ns,
                          double emit_probability = 1.0);
  void on_phase(PhaseContext& ctx) override;

 private:
  std::uint64_t spin_ns_;
  double emit_probability_;
};

/// Interior vertex: spins for `spin_ns` on every execution, then forwards
/// the sum of its changed inputs with probability `emit_probability`.
class BusyWorkModule final : public Module {
 public:
  BusyWorkModule(std::uint64_t spin_ns, std::size_t fan_in,
                 double emit_probability = 1.0);
  void on_phase(PhaseContext& ctx) override;

 private:
  std::uint64_t spin_ns_;
  std::size_t fan_in_;
  double emit_probability_;
};

/// Forwards input port 0 to output port 0 unchanged. Zero-work plumbing for
/// bookkeeping-overhead measurements (the grain=0 extreme).
class ForwardModule final : public Module {
 public:
  void on_phase(PhaseContext& ctx) override;
};

/// Consumes inputs and does nothing. Terminal no-op.
class NoOpModule final : public Module {
 public:
  void on_phase(PhaseContext& ctx) override;
};

}  // namespace df::model
