// The computational-module interface (paper sections 1-2).
//
// Vertices of the computation graph are modules: models such as statistical
// regressions, moving averages, anomaly detectors, or simulations. A module
// is executed for a phase either because messages arrived on its inputs for
// that phase, or — for source vertices — because the environment delivered
// the per-phase "phase signal".
//
// Δ-dataflow contract: a module should emit() only when an output *changes*;
// information is conveyed by the absence of messages. Emitting every phase is
// allowed but forfeits the efficiency the algorithm is designed to exploit
// (the paper's "obvious solution"; see baseline::EagerExecutor).
//
// Determinism contract: on_phase must be a deterministic function of the
// module's state, the context's inputs, and the context rng. The rng is
// seeded per vertex and advances only when the vertex executes, and a vertex
// executes exactly the same phases in the same order under every executor,
// so deterministic modules make parallel runs bit-identical to the
// sequential reference (this is how the serializability tests work).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "event/message.hpp"
#include "event/phase.hpp"
#include "event/value.hpp"
#include "graph/dag.hpp"
#include "support/rng.hpp"
#include "support/state_archive.hpp"

namespace df::model {

/// Everything a module may observe and do while executing one phase.
class PhaseContext {
 public:
  virtual ~PhaseContext() = default;

  /// The phase being executed.
  virtual event::PhaseId phase() const = 0;

  /// True iff a message arrived on `port` *for this phase* (the input
  /// changed). Absence means the upstream value is unchanged.
  virtual bool has_input(graph::Port port) const = 0;

  /// The message that arrived this phase; DF_CHECKs has_input(port).
  virtual const event::Value& input(graph::Port port) const = 0;

  /// True iff `port` has ever received a message (including this phase).
  virtual bool has_latest(graph::Port port) const = 0;

  /// Most recent value seen on `port` (already including this phase's
  /// message if one arrived); DF_CHECKs has_latest(port).
  virtual const event::Value& latest(graph::Port port) const = 0;

  /// Emits a message on an output port. Ports with downstream edges deliver
  /// to successors in this same phase; dangling ports are recorded as sink
  /// output (read by "input/output units outside the data fusion system").
  virtual void emit(graph::Port port, event::Value value) = 0;

  /// Deterministic per-vertex random stream (for source simulation).
  virtual support::Rng& rng() = 0;
};

/// A computational module. One instance exists per vertex per executor run;
/// the executor guarantees on_phase is never called concurrently for the
/// same instance and that phases arrive in increasing order.
class Module {
 public:
  virtual ~Module() = default;
  virtual void on_phase(PhaseContext& ctx) = 0;

  /// Checkpoint hook: save-mode archives append every piece of mutable state
  /// on_phase reads besides its inputs and rng; load-mode archives read the
  /// same fields back in the same order (support::StateArchive is
  /// bidirectional, so one override serves both). Stateless modules keep the
  /// default no-op. A module that omits mutable state here silently breaks
  /// crash-restart determinism — the crash differential suite is the guard.
  virtual void persist_state(support::StateArchive&) {}
};

/// Creates a fresh module instance. Executors instantiate their own copies
/// so parallel and sequential runs don't share state.
using ModuleFactory = std::function<std::unique_ptr<Module>()>;

/// Convenience: wraps a lambda `void(PhaseContext&)` as a Module.
class LambdaModule final : public Module {
 public:
  explicit LambdaModule(std::function<void(PhaseContext&)> body)
      : body_(std::move(body)) {}
  void on_phase(PhaseContext& ctx) override { body_(ctx); }

 private:
  std::function<void(PhaseContext&)> body_;
};

/// Factory for a default-constructible module type.
template <typename M, typename... Args>
ModuleFactory factory_of(Args... args) {
  return [args...]() { return std::make_unique<M>(args...); };
}

}  // namespace df::model
