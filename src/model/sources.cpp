#include "model/sources.hpp"

#include <cmath>
#include <numbers>

namespace df::model {

ConstantSource::ConstantSource(event::Value value)
    : value_(std::move(value)) {}

void ConstantSource::on_phase(PhaseContext& ctx) {
  if (!emitted_) {
    ctx.emit(0, value_);
    emitted_ = true;
  }
}

void CounterSource::on_phase(PhaseContext& ctx) {
  ctx.emit(0, static_cast<std::int64_t>(ctx.phase()));
}

UniformSource::UniformSource(double lo, double hi, double emit_probability)
    : lo_(lo), hi_(hi), emit_probability_(emit_probability) {}

void UniformSource::on_phase(PhaseContext& ctx) {
  if (ctx.rng().next_bernoulli(emit_probability_)) {
    ctx.emit(0, ctx.rng().next_double(lo_, hi_));
  }
}

GaussianSource::GaussianSource(double mean, double stddev,
                               double emit_probability)
    : mean_(mean), stddev_(stddev), emit_probability_(emit_probability) {}

void GaussianSource::on_phase(PhaseContext& ctx) {
  if (ctx.rng().next_bernoulli(emit_probability_)) {
    ctx.emit(0, ctx.rng().next_normal(mean_, stddev_));
  }
}

RandomWalkSource::RandomWalkSource(double start, double step_stddev,
                                   double emit_threshold)
    : value_(start), step_stddev_(step_stddev),
      emit_threshold_(emit_threshold) {}

void RandomWalkSource::on_phase(PhaseContext& ctx) {
  value_ += ctx.rng().next_normal(0.0, step_stddev_);
  if (!last_emitted_.has_value() ||
      std::abs(value_ - *last_emitted_) >= emit_threshold_) {
    last_emitted_ = value_;
    ctx.emit(0, value_);
  }
}

TemperatureSource::TemperatureSource(double base, double amplitude,
                                     std::uint64_t period, double noise,
                                     double report_delta)
    : base_(base), amplitude_(amplitude), period_(period == 0 ? 1 : period),
      noise_(noise), report_delta_(report_delta) {}

void TemperatureSource::on_phase(PhaseContext& ctx) {
  const double angle = 2.0 * std::numbers::pi *
                       static_cast<double>(ctx.phase() % period_) /
                       static_cast<double>(period_);
  const double reading = base_ + amplitude_ * std::sin(angle) +
                         ctx.rng().next_normal(0.0, noise_);
  if (!last_reported_.has_value() ||
      std::abs(reading - *last_reported_) >= report_delta_) {
    last_reported_ = reading;
    ctx.emit(0, reading);
  }
}

TransactionSource::TransactionSource(double mean, double sigma,
                                     double anomaly_rate,
                                     double anomaly_scale)
    : mean_(mean), sigma_(sigma), anomaly_rate_(anomaly_rate),
      anomaly_scale_(anomaly_scale) {}

void TransactionSource::on_phase(PhaseContext& ctx) {
  double amount = std::abs(ctx.rng().next_normal(mean_, sigma_));
  if (ctx.rng().next_bernoulli(anomaly_rate_)) {
    amount *= anomaly_scale_;
  }
  ctx.emit(0, amount);
}

DiseaseIncidenceSource::DiseaseIncidenceSource(double base_rate,
                                               double outbreak_probability,
                                               double outbreak_boost,
                                               double decay)
    : base_rate_(base_rate), outbreak_probability_(outbreak_probability),
      outbreak_boost_(outbreak_boost), decay_(decay) {}

void DiseaseIncidenceSource::on_phase(PhaseContext& ctx) {
  if (ctx.rng().next_bernoulli(outbreak_probability_)) {
    current_boost_ *= outbreak_boost_;
  }
  // Outbreak effect decays geometrically back toward 1.
  current_boost_ = 1.0 + (current_boost_ - 1.0) * decay_;
  const auto count = static_cast<std::int64_t>(
      ctx.rng().next_poisson(base_rate_ * current_boost_));
  if (!last_emitted_.has_value() || count != *last_emitted_) {
    last_emitted_ = count;
    ctx.emit(0, count);
  }
}

BurstSource::BurstSource(double burst_probability, double mean_burst_length)
    : burst_probability_(burst_probability),
      continue_probability_(mean_burst_length <= 1.0
                                ? 0.0
                                : 1.0 - 1.0 / mean_burst_length) {}

void BurstSource::on_phase(PhaseContext& ctx) {
  if (in_burst_) {
    in_burst_ = ctx.rng().next_bernoulli(continue_probability_);
  } else {
    in_burst_ = ctx.rng().next_bernoulli(burst_probability_);
  }
  if (in_burst_) {
    ctx.emit(0, 1.0);
  }
}

SparseEventSource::SparseEventSource(double probability, event::Value payload)
    : probability_(probability), payload_(std::move(payload)) {}

void SparseEventSource::on_phase(PhaseContext& ctx) {
  if (ctx.rng().next_bernoulli(probability_)) {
    ctx.emit(0, payload_);
  }
}

ReplaySource::ReplaySource(std::vector<std::optional<event::Value>> script)
    : script_(std::move(script)) {}

void ReplaySource::on_phase(PhaseContext& ctx) {
  const event::PhaseId p = ctx.phase();
  if (p >= 1 && p <= script_.size() && script_[p - 1].has_value()) {
    ctx.emit(0, *script_[p - 1]);
  }
}

void ExternalPassthroughSource::on_phase(PhaseContext& ctx) {
  if (ctx.has_input(0)) {
    ctx.emit(0, ctx.input(0));
  }
}

}  // namespace df::model
