#include "model/logic.hpp"

#include "support/check.hpp"

namespace df::model {

BoolGate::BoolGate(std::size_t fan_in) : fan_in_(fan_in) {
  DF_CHECK(fan_in >= 1, "gate needs at least one input");
}

void BoolGate::on_phase(PhaseContext& ctx) {
  std::vector<bool> inputs(fan_in_, false);
  for (std::size_t port = 0; port < fan_in_; ++port) {
    const auto p = static_cast<graph::Port>(port);
    if (ctx.has_latest(p)) {
      inputs[port] = ctx.latest(p).as_bool();
    }
  }
  const bool output = combine(inputs);
  if (!last_output_.has_value() || output != *last_output_) {
    last_output_ = output;
    ctx.emit(0, output);
  }
}

bool AndGate::combine(const std::vector<bool>& inputs) const {
  for (const bool b : inputs) {
    if (!b) {
      return false;
    }
  }
  return true;
}

bool OrGate::combine(const std::vector<bool>& inputs) const {
  for (const bool b : inputs) {
    if (b) {
      return true;
    }
  }
  return false;
}

bool XorGate::combine(const std::vector<bool>& inputs) const {
  bool acc = false;
  for (const bool b : inputs) {
    acc = acc != b;
  }
  return acc;
}

MajorityGate::MajorityGate(std::size_t fan_in, std::size_t quorum)
    : BoolGate(fan_in), quorum_(quorum) {
  DF_CHECK(quorum >= 1 && quorum <= fan_in, "quorum out of range");
}

bool MajorityGate::combine(const std::vector<bool>& inputs) const {
  std::size_t count = 0;
  for (const bool b : inputs) {
    count += b ? 1 : 0;
  }
  return count >= quorum_;
}

bool NotGate::combine(const std::vector<bool>& inputs) const {
  return !inputs[0];
}

void LatchModule::on_phase(PhaseContext& ctx) {
  if (fired_) {
    return;
  }
  if (ctx.has_input(0)) {
    fired_ = true;
    ctx.emit(0, true);
  }
}

PulseCounterModule::PulseCounterModule(std::uint64_t stride)
    : stride_(stride == 0 ? 1 : stride) {}

void PulseCounterModule::on_phase(PhaseContext& ctx) {
  if (!ctx.has_input(0)) {
    return;
  }
  ++count_;
  if (count_ % stride_ == 0) {
    ctx.emit(0, static_cast<std::int64_t>(count_));
  }
}

}  // namespace df::model
