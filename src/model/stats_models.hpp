// Streaming statistical models over event streams: moving windows, EWMA,
// joins, aggregation — the "complex functions of event histories" the paper
// composes into correlation graphs.
//
// Convention: models consume input port 0 (unless documented otherwise) and
// emit on output port 0. They execute only when an input message arrives
// (delta semantics), so absence of output means "unchanged".
#pragma once

#include <cstdint>
#include <optional>

#include "model/module.hpp"
#include "support/quantile.hpp"
#include "support/stats.hpp"

namespace df::model {

/// Moving point average over the last `window` input values; emits the mean
/// after each input.
class MovingAverageModule final : public Module {
 public:
  explicit MovingAverageModule(std::size_t window);
  void on_phase(PhaseContext& ctx) override;
  void persist_state(support::StateArchive& ar) override {
    stats_.persist(ar);
  }

 private:
  support::WindowedStats stats_;
};

/// Moving standard deviation over the last `window` inputs.
class MovingStdDevModule final : public Module {
 public:
  explicit MovingStdDevModule(std::size_t window);
  void on_phase(PhaseContext& ctx) override;
  void persist_state(support::StateArchive& ar) override {
    stats_.persist(ar);
  }

 private:
  support::WindowedStats stats_;
};

/// Exponentially weighted moving average of the input.
class EwmaModule final : public Module {
 public:
  explicit EwmaModule(double alpha);
  void on_phase(PhaseContext& ctx) override;
  void persist_state(support::StateArchive& ar) override { ewma_.persist(ar); }

 private:
  support::Ewma ewma_;
};

/// Sum of the latest values on all input ports; emits when the sum changes.
class SumModule final : public Module {
 public:
  explicit SumModule(std::size_t fan_in);
  void on_phase(PhaseContext& ctx) override;
  void persist_state(support::StateArchive& ar) override {
    ar.optional(last_sum_,
                [](support::StateArchive& a, double& x) { a.f64(x); });
  }

 private:
  std::size_t fan_in_;
  std::optional<double> last_sum_;
};

/// Maximum of the latest values on all input ports; emits on change.
class MaxModule final : public Module {
 public:
  explicit MaxModule(std::size_t fan_in);
  void on_phase(PhaseContext& ctx) override;
  void persist_state(support::StateArchive& ar) override {
    ar.optional(last_max_,
                [](support::StateArchive& a, double& x) { a.f64(x); });
  }

 private:
  std::size_t fan_in_;
  std::optional<double> last_max_;
};

/// Minimum of the latest values on all input ports; emits on change.
class MinModule final : public Module {
 public:
  explicit MinModule(std::size_t fan_in);
  void on_phase(PhaseContext& ctx) override;
  void persist_state(support::StateArchive& ar) override {
    ar.optional(last_min_,
                [](support::StateArchive& a, double& x) { a.f64(x); });
  }

 private:
  std::size_t fan_in_;
  std::optional<double> last_min_;
};

/// Snapshot join: whenever any input changes and every input has a value,
/// emits the vector of latest values across all ports — the stream
/// correlation primitive ("fusing" streams into one composite event).
class SnapshotJoinModule final : public Module {
 public:
  explicit SnapshotJoinModule(std::size_t fan_in);
  void on_phase(PhaseContext& ctx) override;

 private:
  std::size_t fan_in_;
};

/// Streaming quantile estimate (P²) of the input; emits after each input.
class QuantileModule final : public Module {
 public:
  explicit QuantileModule(double q);
  void on_phase(PhaseContext& ctx) override;
  void persist_state(support::StateArchive& ar) override {
    sketch_.persist(ar);
  }

 private:
  support::P2Quantile sketch_;
};

/// Forwards the input only when it differs from the last forwarded value by
/// more than epsilon — the Δ-filter that converts chatty streams into
/// change streams.
class ChangeFilterModule final : public Module {
 public:
  explicit ChangeFilterModule(double epsilon);
  void on_phase(PhaseContext& ctx) override;
  void persist_state(support::StateArchive& ar) override {
    ar.optional(last_forwarded_,
                [](support::StateArchive& a, double& x) { a.f64(x); });
  }

 private:
  double epsilon_;
  std::optional<double> last_forwarded_;
};

/// Forwards at most one input per `min_gap` phases (drops the rest).
class DebounceModule final : public Module {
 public:
  explicit DebounceModule(event::PhaseId min_gap);
  void on_phase(PhaseContext& ctx) override;
  void persist_state(support::StateArchive& ar) override {
    ar.optional(last_forward_phase_,
                [](support::StateArchive& a, event::PhaseId& p) { a.u64(p); });
  }

 private:
  event::PhaseId min_gap_;
  std::optional<event::PhaseId> last_forward_phase_;
};

/// Event-rate estimator: emits events-per-phase over a sliding phase window
/// after each input event.
class RateEstimatorModule final : public Module {
 public:
  explicit RateEstimatorModule(event::PhaseId window);
  void on_phase(PhaseContext& ctx) override;
  void persist_state(support::StateArchive& ar) override {
    ar.sequence(arrivals_,
                [](support::StateArchive& a, event::PhaseId& p) { a.u64(p); });
  }

 private:
  event::PhaseId window_;
  std::deque<event::PhaseId> arrivals_;
};

/// Rolling Pearson correlation of two streams (ports 0 and 1) over a
/// sliding window of synchronized samples; emits when both ports have seen
/// values and at least one changed this phase.
class CorrelatorModule final : public Module {
 public:
  explicit CorrelatorModule(std::size_t window);
  void on_phase(PhaseContext& ctx) override;
  void persist_state(support::StateArchive& ar) override { corr_.persist(ar); }

 private:
  support::RollingCorrelation corr_;
};

}  // namespace df::model
