// Condition detectors: the predicates over event-stream histories the paper
// calls "critical conditions — threats or opportunities".
//
// All detectors follow the paper's option (2): they emit *only when the
// condition fires or clears*, never per input. This is the behaviour that
// makes Δ-dataflow pay off (one-in-a-million anomalies produce a millionth
// of the traffic) and that creates the race the core algorithm resolves.
#pragma once

#include <cstdint>
#include <optional>

#include "model/module.hpp"
#include "support/stats.hpp"

namespace df::model {

/// Emits `true` when the input crosses above `threshold` and `false` when it
/// falls back — a level trigger with change-only output.
class ThresholdDetector final : public Module {
 public:
  explicit ThresholdDetector(double threshold);
  void on_phase(PhaseContext& ctx) override;

 private:
  double threshold_;
  std::optional<bool> state_;
};

/// Z-score anomaly detector: keeps windowed mean/stddev of the input and
/// emits the z-score when |z| exceeds z_threshold (an anomalous reading).
/// Needs `min_samples` before it starts judging.
class ZScoreDetector final : public Module {
 public:
  ZScoreDetector(std::size_t window, double z_threshold,
                 std::size_t min_samples = 8);
  void on_phase(PhaseContext& ctx) override;

 private:
  support::WindowedStats stats_;
  double z_threshold_;
  std::size_t min_samples_;
};

/// Regression-residual outlier detector (the paper's money-laundering
/// anomaly definition: "outlier points in a statistical regression model").
/// Regresses the input against the phase number over a sliding window and
/// emits the observation when its residual exceeds `sigmas` residual
/// standard deviations.
class RegressionResidualDetector final : public Module {
 public:
  RegressionResidualDetector(std::size_t window, double sigmas,
                             std::size_t min_samples = 8);
  void on_phase(PhaseContext& ctx) override;

 private:
  std::size_t window_;
  double sigmas_;
  std::size_t min_samples_;
  std::deque<std::pair<double, double>> samples_;
  support::OnlineLinearRegression regression_;
  support::WindowedStats residuals_;
};

/// Expectation monitor (the paper's power-demand example): port 0 carries
/// observations, port 1 carries the current assumption/forecast. Emits the
/// observed value when |observed - assumed| exceeds `tolerance` — i.e. a
/// message means "your assumption is violated"; silence means it holds.
class ExpectationMonitor final : public Module {
 public:
  explicit ExpectationMonitor(double tolerance);
  void on_phase(PhaseContext& ctx) override;

 private:
  double tolerance_;
  bool violated_ = false;
};

/// Two-sided CUSUM drift detector with slack `k` and decision interval `h`
/// (in units of the reference mean set by the first `warmup` samples).
/// Emits +1.0 / -1.0 on upward / downward drift detection, then resets.
class CusumDetector final : public Module {
 public:
  CusumDetector(double k, double h, std::size_t warmup = 16);
  void on_phase(PhaseContext& ctx) override;

 private:
  double k_;
  double h_;
  std::size_t warmup_;
  support::RunningStats reference_;
  double positive_ = 0.0;
  double negative_ = 0.0;
};

/// Spike detector: emits the input when it exceeds `factor` times the moving
/// average of the previous `window` inputs.
class SpikeDetector final : public Module {
 public:
  SpikeDetector(std::size_t window, double factor);
  void on_phase(PhaseContext& ctx) override;

 private:
  support::WindowedStats stats_;
  double factor_;
};

}  // namespace df::model
