#include "model/regression.hpp"

#include "support/check.hpp"

namespace df::model {

namespace {

/// Shared sliding-window update for phase-indexed regressions.
void slide_add(std::deque<std::pair<double, double>>& samples,
               support::OnlineLinearRegression& regression,
               std::size_t window, double x, double y) {
  samples.emplace_back(x, y);
  regression.add(x, y);
  if (samples.size() > window) {
    const auto [old_x, old_y] = samples.front();
    samples.pop_front();
    regression.remove(old_x, old_y);
  }
}

}  // namespace

TrendModule::TrendModule(std::size_t window, std::size_t min_samples)
    : window_(window), min_samples_(min_samples) {
  DF_CHECK(window >= 2, "trend window must hold at least two samples");
}

void TrendModule::on_phase(PhaseContext& ctx) {
  if (!ctx.has_input(0)) {
    return;
  }
  slide_add(samples_, regression_, window_,
            static_cast<double>(ctx.phase()), ctx.input(0).as_number());
  if (regression_.count() >= min_samples_ && regression_.has_fit()) {
    ctx.emit(0, regression_.slope());
  }
}

ForecastModule::ForecastModule(std::size_t window, event::PhaseId horizon,
                               std::size_t min_samples)
    : window_(window), horizon_(horizon), min_samples_(min_samples) {
  DF_CHECK(window >= 2, "forecast window must hold at least two samples");
}

void ForecastModule::on_phase(PhaseContext& ctx) {
  if (!ctx.has_input(0)) {
    return;
  }
  slide_add(samples_, regression_, window_,
            static_cast<double>(ctx.phase()), ctx.input(0).as_number());
  if (regression_.count() >= min_samples_ && regression_.has_fit()) {
    ctx.emit(0, regression_.predict(
                    static_cast<double>(ctx.phase() + horizon_)));
  }
}

HoltForecastModule::HoltForecastModule(double alpha, double beta)
    : alpha_(alpha), beta_(beta) {
  DF_CHECK(alpha > 0.0 && alpha <= 1.0, "Holt alpha out of (0,1]");
  DF_CHECK(beta > 0.0 && beta <= 1.0, "Holt beta out of (0,1]");
}

void HoltForecastModule::on_phase(PhaseContext& ctx) {
  if (!ctx.has_input(0)) {
    return;
  }
  const double observed = ctx.input(0).as_number();
  if (!initialized_) {
    level_ = observed;
    trend_ = 0.0;
    initialized_ = true;
  } else {
    const double previous_level = level_;
    level_ = alpha_ * observed + (1.0 - alpha_) * (level_ + trend_);
    trend_ = beta_ * (level_ - previous_level) + (1.0 - beta_) * trend_;
  }
  ctx.emit(0, level_ + trend_);
}

}  // namespace df::model
