#include "model/registry.hpp"

#include "model/clustering.hpp"
#include "model/detectors.hpp"
#include "model/logic.hpp"
#include "model/patterns.hpp"
#include "model/regression.hpp"
#include "model/sources.hpp"
#include "model/stats_models.hpp"
#include "model/synthetic.hpp"
#include "support/check.hpp"
#include "support/strings.hpp"

namespace df::model {

Params::Params(std::map<std::string, std::string> values)
    : values_(std::move(values)) {}

bool Params::has(const std::string& key) const {
  return values_.find(key) != values_.end();
}

std::string Params::get_string(const std::string& key,
                               const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

double Params::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) {
    return fallback;
  }
  const auto parsed = support::parse_double(it->second);
  DF_CHECK(parsed.has_value(), "parameter '", key, "' is not a number: ",
           it->second);
  return *parsed;
}

std::int64_t Params::get_int(const std::string& key,
                             std::int64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) {
    return fallback;
  }
  const auto parsed = support::parse_int(it->second);
  DF_CHECK(parsed.has_value(), "parameter '", key, "' is not an integer: ",
           it->second);
  return *parsed;
}

std::uint64_t Params::get_uint(const std::string& key,
                               std::uint64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) {
    return fallback;
  }
  const auto parsed = support::parse_uint(it->second);
  DF_CHECK(parsed.has_value(), "parameter '", key,
           "' is not an unsigned integer: ", it->second);
  return *parsed;
}

bool Params::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) {
    return fallback;
  }
  const auto parsed = support::parse_bool(it->second);
  DF_CHECK(parsed.has_value(), "parameter '", key, "' is not a boolean: ",
           it->second);
  return *parsed;
}

double Params::require_double(const std::string& key) const {
  DF_CHECK(has(key), "missing required parameter '", key, "'");
  return get_double(key, 0.0);
}

std::uint64_t Params::require_uint(const std::string& key) const {
  DF_CHECK(has(key), "missing required parameter '", key, "'");
  return get_uint(key, 0);
}

void Registry::register_type(const std::string& name, ModuleBuilder builder) {
  DF_CHECK(builders_.find(name) == builders_.end(),
           "duplicate module type '", name, "'");
  builders_.emplace(name, std::move(builder));
}

bool Registry::has_type(const std::string& name) const {
  return builders_.find(name) != builders_.end();
}

std::vector<std::string> Registry::type_names() const {
  std::vector<std::string> names;
  names.reserve(builders_.size());
  for (const auto& [name, builder] : builders_) {
    (void)builder;
    names.push_back(name);
  }
  return names;
}

ModuleFactory Registry::build(const std::string& name, const Params& params,
                              std::size_t fan_in) const {
  const auto it = builders_.find(name);
  DF_CHECK(it != builders_.end(), "unknown module type '", name, "'");
  return it->second(params, fan_in);
}

const Registry& Registry::builtin() {
  static const Registry* const kRegistry = [] {
    auto* registry = new Registry();
    register_builtin_modules(*registry);
    return registry;
  }();
  return *kRegistry;
}

void register_builtin_modules(Registry& registry) {
  // Sources ---------------------------------------------------------------
  registry.register_type("constant", [](const Params& p, std::size_t) {
    const double value = p.get_double("value", 0.0);
    return ModuleFactory(
        [value] { return std::make_unique<ConstantSource>(value); });
  });
  registry.register_type("counter", [](const Params&, std::size_t) {
    return factory_of<CounterSource>();
  });
  registry.register_type("uniform", [](const Params& p, std::size_t) {
    return factory_of<UniformSource>(p.get_double("lo", 0.0),
                                     p.get_double("hi", 1.0),
                                     p.get_double("emit_probability", 1.0));
  });
  registry.register_type("gaussian", [](const Params& p, std::size_t) {
    return factory_of<GaussianSource>(p.get_double("mean", 0.0),
                                      p.get_double("stddev", 1.0),
                                      p.get_double("emit_probability", 1.0));
  });
  registry.register_type("random_walk", [](const Params& p, std::size_t) {
    return factory_of<RandomWalkSource>(p.get_double("start", 0.0),
                                        p.get_double("step_stddev", 1.0),
                                        p.get_double("emit_threshold", 0.0));
  });
  registry.register_type("temperature", [](const Params& p, std::size_t) {
    return factory_of<TemperatureSource>(
        p.get_double("base", 20.0), p.get_double("amplitude", 8.0),
        p.get_uint("period", 24), p.get_double("noise", 0.5),
        p.get_double("report_delta", 1.0));
  });
  registry.register_type("transactions", [](const Params& p, std::size_t) {
    return factory_of<TransactionSource>(
        p.get_double("mean", 100.0), p.get_double("sigma", 30.0),
        p.get_double("anomaly_rate", 1e-3),
        p.get_double("anomaly_scale", 50.0));
  });
  registry.register_type("disease_incidence",
                         [](const Params& p, std::size_t) {
    return factory_of<DiseaseIncidenceSource>(
        p.get_double("base_rate", 5.0),
        p.get_double("outbreak_probability", 0.01),
        p.get_double("outbreak_boost", 4.0), p.get_double("decay", 0.9));
  });
  registry.register_type("burst", [](const Params& p, std::size_t) {
    return factory_of<BurstSource>(p.get_double("burst_probability", 0.01),
                                   p.get_double("mean_burst_length", 5.0));
  });
  registry.register_type("sparse_events", [](const Params& p, std::size_t) {
    return factory_of<SparseEventSource>(p.get_double("probability", 0.01));
  });
  registry.register_type("external", [](const Params&, std::size_t) {
    return factory_of<ExternalPassthroughSource>();
  });

  // Streaming statistics ---------------------------------------------------
  registry.register_type("moving_average", [](const Params& p, std::size_t) {
    return factory_of<MovingAverageModule>(p.get_uint("window", 16));
  });
  registry.register_type("moving_stddev", [](const Params& p, std::size_t) {
    return factory_of<MovingStdDevModule>(p.get_uint("window", 16));
  });
  registry.register_type("ewma", [](const Params& p, std::size_t) {
    return factory_of<EwmaModule>(p.get_double("alpha", 0.2));
  });
  registry.register_type("sum", [](const Params&, std::size_t fan_in) {
    return factory_of<SumModule>(fan_in);
  });
  registry.register_type("max", [](const Params&, std::size_t fan_in) {
    return factory_of<MaxModule>(fan_in);
  });
  registry.register_type("min", [](const Params&, std::size_t fan_in) {
    return factory_of<MinModule>(fan_in);
  });
  registry.register_type("join", [](const Params&, std::size_t fan_in) {
    return factory_of<SnapshotJoinModule>(fan_in);
  });
  registry.register_type("quantile", [](const Params& p, std::size_t) {
    return factory_of<QuantileModule>(p.get_double("q", 0.5));
  });
  registry.register_type("change_filter", [](const Params& p, std::size_t) {
    return factory_of<ChangeFilterModule>(p.get_double("epsilon", 0.0));
  });
  registry.register_type("debounce", [](const Params& p, std::size_t) {
    return factory_of<DebounceModule>(p.get_uint("min_gap", 1));
  });
  registry.register_type("rate", [](const Params& p, std::size_t) {
    return factory_of<RateEstimatorModule>(p.get_uint("window", 16));
  });
  registry.register_type("correlator", [](const Params& p, std::size_t) {
    return factory_of<CorrelatorModule>(p.get_uint("window", 32));
  });

  // Detectors ---------------------------------------------------------------
  registry.register_type("threshold", [](const Params& p, std::size_t) {
    return factory_of<ThresholdDetector>(p.require_double("threshold"));
  });
  registry.register_type("zscore", [](const Params& p, std::size_t) {
    return factory_of<ZScoreDetector>(p.get_uint("window", 64),
                                      p.get_double("z", 3.0),
                                      p.get_uint("min_samples", 8));
  });
  registry.register_type("regression_residual",
                         [](const Params& p, std::size_t) {
    return factory_of<RegressionResidualDetector>(
        p.get_uint("window", 64), p.get_double("sigmas", 3.0),
        p.get_uint("min_samples", 8));
  });
  registry.register_type("expectation", [](const Params& p, std::size_t) {
    return factory_of<ExpectationMonitor>(p.get_double("tolerance", 1.0));
  });
  registry.register_type("cusum", [](const Params& p, std::size_t) {
    return factory_of<CusumDetector>(p.get_double("k", 0.5),
                                     p.get_double("h", 5.0),
                                     p.get_uint("warmup", 16));
  });
  registry.register_type("spike", [](const Params& p, std::size_t) {
    return factory_of<SpikeDetector>(p.get_uint("window", 16),
                                     p.get_double("factor", 3.0));
  });

  // Regression / forecasting ------------------------------------------------
  registry.register_type("trend", [](const Params& p, std::size_t) {
    return factory_of<TrendModule>(p.get_uint("window", 32),
                                   p.get_uint("min_samples", 4));
  });
  registry.register_type("forecast", [](const Params& p, std::size_t) {
    return factory_of<ForecastModule>(p.get_uint("window", 32),
                                      p.get_uint("horizon", 1),
                                      p.get_uint("min_samples", 4));
  });
  registry.register_type("holt", [](const Params& p, std::size_t) {
    return factory_of<HoltForecastModule>(p.get_double("alpha", 0.5),
                                          p.get_double("beta", 0.3));
  });

  // Clustering ----------------------------------------------------------------
  registry.register_type("kmeans", [](const Params& p, std::size_t) {
    return factory_of<OnlineKMeansModule>(
        static_cast<std::size_t>(p.get_uint("k", 2)),
        p.get_double("outlier_distance", 0.0));
  });

  // Logic -----------------------------------------------------------------
  registry.register_type("and", [](const Params&, std::size_t fan_in) {
    return factory_of<AndGate>(fan_in);
  });
  registry.register_type("or", [](const Params&, std::size_t fan_in) {
    return factory_of<OrGate>(fan_in);
  });
  registry.register_type("xor", [](const Params&, std::size_t fan_in) {
    return factory_of<XorGate>(fan_in);
  });
  registry.register_type("majority", [](const Params& p, std::size_t fan_in) {
    return factory_of<MajorityGate>(
        fan_in, static_cast<std::size_t>(
                    p.get_uint("quorum", (fan_in + 1) / 2)));
  });
  registry.register_type("not", [](const Params&, std::size_t) {
    return factory_of<NotGate>();
  });
  registry.register_type("latch", [](const Params&, std::size_t) {
    return factory_of<LatchModule>();
  });
  registry.register_type("pulse_counter", [](const Params& p, std::size_t) {
    return factory_of<PulseCounterModule>(p.get_uint("stride", 1));
  });

  // Temporal patterns -------------------------------------------------------
  registry.register_type("sequence", [](const Params& p, std::size_t) {
    return factory_of<SequenceDetector>(p.get_uint("window", 16));
  });
  registry.register_type("count_window", [](const Params& p, std::size_t) {
    return factory_of<CountWindowDetector>(
        static_cast<std::size_t>(p.get_uint("count", 3)),
        p.get_uint("window", 16));
  });
  registry.register_type("absence", [](const Params& p, std::size_t) {
    return factory_of<AbsenceDetector>(p.get_uint("timeout", 8));
  });
  registry.register_type("hysteresis", [](const Params& p, std::size_t) {
    return factory_of<HysteresisDetector>(p.require_double("low"),
                                          p.require_double("high"));
  });
  registry.register_type("range", [](const Params& p, std::size_t) {
    return factory_of<RangeDetector>(p.require_double("lo"),
                                     p.require_double("hi"));
  });

  // Synthetic workloads -----------------------------------------------------
  registry.register_type("busy_source", [](const Params& p, std::size_t) {
    return factory_of<BusyWorkSource>(p.get_uint("spin_ns", 1000),
                                      p.get_double("emit_probability", 1.0));
  });
  registry.register_type("busy", [](const Params& p, std::size_t fan_in) {
    return factory_of<BusyWorkModule>(p.get_uint("spin_ns", 1000), fan_in,
                                      p.get_double("emit_probability", 1.0));
  });
  registry.register_type("forward", [](const Params&, std::size_t) {
    return factory_of<ForwardModule>();
  });
  registry.register_type("noop", [](const Params&, std::size_t) {
    return factory_of<NoOpModule>();
  });
}

}  // namespace df::model
