// Source modules: simulated sensors and event feeds.
//
// Source vertices have no graph inputs; the environment delivers a phase
// signal every phase (paper section 3.1.2) and optionally external events on
// input port 0. Each source draws from its own deterministic rng stream, so
// a given Program replays identically under every executor — the paper's
// prototype likewise takes "random seeds to use for the generation of random
// values by source vertices" from its specification file.
//
// Δ-discipline: sources that model slowly-changing signals emit only when
// their value moves materially, so downstream traffic reflects information,
// not sampling rate.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "model/module.hpp"

namespace df::model {

/// Emits a constant once, on the first phase. The canonical "nothing ever
/// changes" source for scheduler tests.
class ConstantSource final : public Module {
 public:
  explicit ConstantSource(event::Value value);
  void on_phase(PhaseContext& ctx) override;
  void persist_state(support::StateArchive& ar) override {
    ar.boolean(emitted_);
  }

 private:
  event::Value value_;
  bool emitted_ = false;
};

/// Emits the phase number every phase; maximally chatty.
class CounterSource final : public Module {
 public:
  void on_phase(PhaseContext& ctx) override;
};

/// Emits an independent uniform double each phase with probability
/// emit_probability.
class UniformSource final : public Module {
 public:
  UniformSource(double lo, double hi, double emit_probability = 1.0);
  void on_phase(PhaseContext& ctx) override;

 private:
  double lo_;
  double hi_;
  double emit_probability_;
};

/// Emits a Gaussian sample each phase with probability emit_probability.
class GaussianSource final : public Module {
 public:
  GaussianSource(double mean, double stddev, double emit_probability = 1.0);
  void on_phase(PhaseContext& ctx) override;

 private:
  double mean_;
  double stddev_;
  double emit_probability_;
};

/// Random walk that advances every phase but emits only when it has drifted
/// at least `emit_threshold` from the last emitted value — a model of a
/// sensor that reports on change.
class RandomWalkSource final : public Module {
 public:
  RandomWalkSource(double start, double step_stddev, double emit_threshold);
  void on_phase(PhaseContext& ctx) override;
  void persist_state(support::StateArchive& ar) override {
    ar.f64(value_);
    ar.optional(last_emitted_,
                [](support::StateArchive& a, double& x) { a.f64(x); });
  }

 private:
  double value_;
  double step_stddev_;
  double emit_threshold_;
  std::optional<double> last_emitted_;
};

/// Sinusoidal daily temperature with noise (the paper's energy-pricing
/// example): base + amplitude * sin(2*pi*phase/period) + N(0, noise).
/// Emits when the reading moved at least `report_delta` since last report.
class TemperatureSource final : public Module {
 public:
  TemperatureSource(double base, double amplitude, std::uint64_t period,
                    double noise, double report_delta);
  void on_phase(PhaseContext& ctx) override;
  void persist_state(support::StateArchive& ar) override {
    ar.optional(last_reported_,
                [](support::StateArchive& a, double& x) { a.f64(x); });
  }

 private:
  double base_;
  double amplitude_;
  std::uint64_t period_;
  double noise_;
  double report_delta_;
  std::optional<double> last_reported_;
};

/// Banking transactions (the paper's money-laundering example): every phase
/// emits an amount ~ LogNormal-ish (|N(mean, sigma)|); with probability
/// anomaly_rate the amount is scaled by anomaly_scale. Port 0: amount.
class TransactionSource final : public Module {
 public:
  TransactionSource(double mean, double sigma, double anomaly_rate,
                    double anomaly_scale);
  void on_phase(PhaseContext& ctx) override;

 private:
  double mean_;
  double sigma_;
  double anomaly_rate_;
  double anomaly_scale_;
};

/// Disease incidence counts (the paper's bioterror example): Poisson(base)
/// per phase, with occasional outbreaks that multiply the mean and decay
/// geometrically. Emits the count only when it changes.
class DiseaseIncidenceSource final : public Module {
 public:
  DiseaseIncidenceSource(double base_rate, double outbreak_probability,
                         double outbreak_boost, double decay);
  void on_phase(PhaseContext& ctx) override;
  void persist_state(support::StateArchive& ar) override {
    ar.f64(current_boost_);
    ar.optional(last_emitted_,
                [](support::StateArchive& a, std::int64_t& x) { a.i64(x); });
  }

 private:
  double base_rate_;
  double outbreak_probability_;
  double outbreak_boost_;
  double decay_;
  double current_boost_ = 1.0;
  std::optional<std::int64_t> last_emitted_;
};

/// Mostly silent; enters a burst with probability burst_probability, then
/// emits `1.0` for a geometric number of phases (mean burst_length).
/// Workload knob for the sparsity experiments.
class BurstSource final : public Module {
 public:
  BurstSource(double burst_probability, double mean_burst_length);
  void on_phase(PhaseContext& ctx) override;
  void persist_state(support::StateArchive& ar) override {
    ar.boolean(in_burst_);
  }

 private:
  double burst_probability_;
  double continue_probability_;
  bool in_burst_ = false;
};

/// Bernoulli(p) event source: emits `true` with probability p per phase and
/// nothing otherwise. The knob behind bench_sparsity's anomaly-rate sweep.
class SparseEventSource final : public Module {
 public:
  explicit SparseEventSource(double probability,
                             event::Value payload = event::Value(true));
  void on_phase(PhaseContext& ctx) override;

 private:
  double probability_;
  event::Value payload_;
};

/// Replays a fixed per-phase script: script[p-1] is emitted at phase p if
/// present. The deterministic workhorse of the scheduler unit tests.
class ReplaySource final : public Module {
 public:
  explicit ReplaySource(std::vector<std::optional<event::Value>> script);
  void on_phase(PhaseContext& ctx) override;

 private:
  std::vector<std::optional<event::Value>> script_;
};

/// Forwards external events injected by the environment (input port 0) to
/// output port 0. Use with Engine::start_phase / PhaseFeed.
class ExternalPassthroughSource final : public Module {
 public:
  void on_phase(PhaseContext& ctx) override;
};

}  // namespace df::model
