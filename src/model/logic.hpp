// Boolean combinators over condition streams: composite conditions such as
// "hospital occupancy high AND road closed" are conjunctions/disjunctions of
// detector outputs. All gates emit only when their output value changes.
//
// Inputs are the *latest* boolean on each port; a port that has never fired
// is treated as false (no condition reported yet), so gates can produce
// meaningful output before every upstream detector has spoken.
#pragma once

#include <cstdint>
#include <optional>

#include "model/module.hpp"

namespace df::model {

/// Base for change-only boolean gates over `fan_in` inputs.
class BoolGate : public Module {
 public:
  explicit BoolGate(std::size_t fan_in);
  void on_phase(PhaseContext& ctx) final;

 protected:
  /// Combines the current input values into the gate's output.
  virtual bool combine(const std::vector<bool>& inputs) const = 0;

 private:
  std::size_t fan_in_;
  std::optional<bool> last_output_;
};

class AndGate final : public BoolGate {
 public:
  explicit AndGate(std::size_t fan_in) : BoolGate(fan_in) {}

 protected:
  bool combine(const std::vector<bool>& inputs) const override;
};

class OrGate final : public BoolGate {
 public:
  explicit OrGate(std::size_t fan_in) : BoolGate(fan_in) {}

 protected:
  bool combine(const std::vector<bool>& inputs) const override;
};

class XorGate final : public BoolGate {
 public:
  explicit XorGate(std::size_t fan_in) : BoolGate(fan_in) {}

 protected:
  bool combine(const std::vector<bool>& inputs) const override;
};

/// True when at least `quorum` of the inputs are true.
class MajorityGate final : public BoolGate {
 public:
  MajorityGate(std::size_t fan_in, std::size_t quorum);

 protected:
  bool combine(const std::vector<bool>& inputs) const override;

 private:
  std::size_t quorum_;
};

/// Inverts its single input; emits on change.
class NotGate final : public BoolGate {
 public:
  NotGate() : BoolGate(1) {}

 protected:
  bool combine(const std::vector<bool>& inputs) const override;
};

/// Sticky alarm: once any input event arrives, emits `true` exactly once and
/// stays silent forever after (an edge-triggered latch).
class LatchModule final : public Module {
 public:
  void on_phase(PhaseContext& ctx) override;

 private:
  bool fired_ = false;
};

/// Emits the running count of input events on every `stride`-th event.
class PulseCounterModule final : public Module {
 public:
  explicit PulseCounterModule(std::uint64_t stride);
  void on_phase(PhaseContext& ctx) override;

 private:
  std::uint64_t stride_;
  std::uint64_t count_ = 0;
};

}  // namespace df::model
