// Module registry: maps specification type names to module factories.
//
// The paper's prototype instantiates vertices from an XML specification file
// naming "Java classes conforming to well-defined guidelines"; here the
// equivalent is a string type name plus key=value parameters, resolved
// through this registry. All built-in models register under the names
// documented in README.md; applications can register their own.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "model/module.hpp"

namespace df::model {

/// Typed view over string parameters from a vertex specification.
class Params {
 public:
  Params() = default;
  explicit Params(std::map<std::string, std::string> values);

  bool has(const std::string& key) const;
  std::string get_string(const std::string& key,
                         const std::string& fallback) const;
  double get_double(const std::string& key, double fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  std::uint64_t get_uint(const std::string& key,
                         std::uint64_t fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// Required variants: DF_CHECK when missing.
  double require_double(const std::string& key) const;
  std::uint64_t require_uint(const std::string& key) const;

  const std::map<std::string, std::string>& raw() const { return values_; }

 private:
  std::map<std::string, std::string> values_;
};

/// A registered module kind: builds a factory from parameters. `fan_in` is
/// the vertex's input-edge count from the graph spec, passed so fan-in-aware
/// modules (gates, joins, aggregators) need no duplicate parameter.
using ModuleBuilder =
    std::function<ModuleFactory(const Params& params, std::size_t fan_in)>;

class Registry {
 public:
  /// The registry preloaded with every built-in model type.
  static const Registry& builtin();

  Registry() = default;

  void register_type(const std::string& name, ModuleBuilder builder);
  bool has_type(const std::string& name) const;
  std::vector<std::string> type_names() const;

  /// Builds a factory; DF_CHECKs the type exists.
  ModuleFactory build(const std::string& name, const Params& params,
                      std::size_t fan_in) const;

 private:
  std::map<std::string, ModuleBuilder> builders_;
};

/// Registers all built-in module types into `registry` (used by builtin()).
void register_builtin_modules(Registry& registry);

}  // namespace df::model
