// model/module.hpp is interface-only; this translation unit anchors the
// vtables of PhaseContext and Module so they are emitted exactly once.
#include "model/module.hpp"

namespace df::model {}  // namespace df::model
