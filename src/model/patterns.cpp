#include "model/patterns.hpp"

#include "support/check.hpp"

namespace df::model {

SequenceDetector::SequenceDetector(event::PhaseId window) : window_(window) {
  DF_CHECK(window >= 1, "sequence window must be at least one phase");
}

void SequenceDetector::on_phase(PhaseContext& ctx) {
  const event::PhaseId now = ctx.phase();
  // Expire a stale A first so an A and B in the same execution can match.
  if (pending_a_.has_value() && now - *pending_a_ > window_) {
    pending_a_.reset();
  }
  if (ctx.has_input(1) && pending_a_.has_value()) {
    ctx.emit(0, static_cast<std::int64_t>(now - *pending_a_));
    pending_a_.reset();
  }
  if (ctx.has_input(0)) {
    pending_a_ = now;  // most recent unmatched A wins
  }
}

CountWindowDetector::CountWindowDetector(std::size_t count,
                                         event::PhaseId window)
    : count_(count), window_(window) {
  DF_CHECK(count >= 1, "count threshold must be positive");
  DF_CHECK(window >= 1, "count window must be at least one phase");
}

void CountWindowDetector::on_phase(PhaseContext& ctx) {
  if (!ctx.has_input(0)) {
    return;
  }
  const event::PhaseId now = ctx.phase();
  arrivals_.push_back(now);
  while (!arrivals_.empty() && now - arrivals_.front() >= window_) {
    arrivals_.pop_front();
  }
  if (arrivals_.size() >= count_) {
    ctx.emit(0, static_cast<std::int64_t>(arrivals_.size()));
    arrivals_.clear();  // edge-triggered: re-arm for the next burst
  }
}

AbsenceDetector::AbsenceDetector(event::PhaseId timeout) : timeout_(timeout) {
  DF_CHECK(timeout >= 1, "absence timeout must be at least one phase");
}

void AbsenceDetector::on_phase(PhaseContext& ctx) {
  const event::PhaseId now = ctx.phase();
  if (ctx.has_input(1)) {
    last_seen_ = now;
    if (alarmed_) {
      alarmed_ = false;
      ctx.emit(0, false);  // stream resumed
    }
    return;
  }
  // Clock tick without a watched event.
  if (last_seen_.has_value() && !alarmed_ && now - *last_seen_ > timeout_) {
    alarmed_ = true;
    ctx.emit(0, true);  // heartbeat lost
  }
}

HysteresisDetector::HysteresisDetector(double low, double high)
    : low_(low), high_(high) {
  DF_CHECK(low < high, "hysteresis requires low < high");
}

void HysteresisDetector::on_phase(PhaseContext& ctx) {
  if (!ctx.has_input(0)) {
    return;
  }
  const double value = ctx.input(0).as_number();
  bool next = state_.value_or(false);
  if (value > high_) {
    next = true;
  } else if (value < low_) {
    next = false;
  }
  if (!state_.has_value() || next != *state_) {
    state_ = next;
    ctx.emit(0, next);
  } else {
    state_ = next;
  }
}

RangeDetector::RangeDetector(double lo, double hi) : lo_(lo), hi_(hi) {
  DF_CHECK(lo <= hi, "range is inverted");
}

void RangeDetector::on_phase(PhaseContext& ctx) {
  if (!ctx.has_input(0)) {
    return;
  }
  const double value = ctx.input(0).as_number();
  const bool inside = value >= lo_ && value <= hi_;
  if (!inside) {
    ctx.emit(0, value);  // the offending reading
  }
  if (!in_range_.has_value() || inside != *in_range_) {
    in_range_ = inside;
    ctx.emit(1, inside);
  }
}

}  // namespace df::model
