// Temporal pattern detectors over event streams — the "composite conditions
// over multiple data streams" of the paper's abstract, expressed as phase-
// window patterns: A-then-B sequences, event bursts, and the absence of
// expected events (heartbeat loss), which is the purest form of the paper's
// "information is conveyed by the absence of events".
//
// Absence cannot be detected by a module that only runs when messages
// arrive, so AbsenceDetector takes a *clock* on port 0 (connect any
// every-phase source, e.g. CounterSource) and the watched stream on port 1.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "model/module.hpp"

namespace df::model {

/// Detects "A then B within `window` phases": port 0 carries A events,
/// port 1 carries B events. Emits the phase distance (int) when a B event
/// arrives within `window` phases after the most recent unmatched A.
/// Each A matches at most one B.
class SequenceDetector final : public Module {
 public:
  explicit SequenceDetector(event::PhaseId window);
  void on_phase(PhaseContext& ctx) override;

 private:
  event::PhaseId window_;
  std::optional<event::PhaseId> pending_a_;
};

/// Fires when at least `count` events arrive on port 0 within any sliding
/// `window` of phases; emits the count, then resets (edge-triggered).
class CountWindowDetector final : public Module {
 public:
  CountWindowDetector(std::size_t count, event::PhaseId window);
  void on_phase(PhaseContext& ctx) override;

 private:
  std::size_t count_;
  event::PhaseId window_;
  std::deque<event::PhaseId> arrivals_;
};

/// Heartbeat-loss detector: port 0 is a clock (message every phase), port 1
/// the watched stream. Emits `true` when no port-1 event has arrived for
/// more than `timeout` phases, and `false` when the stream resumes. Until
/// the first port-1 event, nothing is emitted (stream not yet established).
class AbsenceDetector final : public Module {
 public:
  explicit AbsenceDetector(event::PhaseId timeout);
  void on_phase(PhaseContext& ctx) override;

 private:
  event::PhaseId timeout_;
  std::optional<event::PhaseId> last_seen_;
  bool alarmed_ = false;
};

/// Hysteresis threshold: output switches to true above `high` and back to
/// false below `low` (low < high); emits only on state change. The noise-
/// robust sibling of ThresholdDetector.
class HysteresisDetector final : public Module {
 public:
  HysteresisDetector(double low, double high);
  void on_phase(PhaseContext& ctx) override;

 private:
  double low_;
  double high_;
  std::optional<bool> state_;
};

/// Range monitor: emits the value whenever the input leaves [lo, hi], and
/// `true`/`false` transitions of the in-range condition on port 1.
class RangeDetector final : public Module {
 public:
  RangeDetector(double lo, double hi);
  void on_phase(PhaseContext& ctx) override;

 private:
  double lo_;
  double hi_;
  std::optional<bool> in_range_;
};

}  // namespace df::model
