#include "model/detectors.hpp"

#include <cmath>

namespace df::model {

ThresholdDetector::ThresholdDetector(double threshold)
    : threshold_(threshold) {}

void ThresholdDetector::on_phase(PhaseContext& ctx) {
  if (!ctx.has_input(0)) {
    return;
  }
  const bool above = ctx.input(0).as_number() > threshold_;
  if (!state_.has_value() || above != *state_) {
    state_ = above;
    ctx.emit(0, above);
  }
}

ZScoreDetector::ZScoreDetector(std::size_t window, double z_threshold,
                               std::size_t min_samples)
    : stats_(window), z_threshold_(z_threshold), min_samples_(min_samples) {}

void ZScoreDetector::on_phase(PhaseContext& ctx) {
  if (!ctx.has_input(0)) {
    return;
  }
  const double value = ctx.input(0).as_number();
  if (stats_.size() >= min_samples_ && stats_.stddev() > 1e-12) {
    const double z = (value - stats_.mean()) / stats_.stddev();
    if (std::abs(z) > z_threshold_) {
      ctx.emit(0, z);
    }
  }
  // The anomalous point still enters the history: models adapt (the paper's
  // modules "adjust assumptions appropriately" on violation).
  stats_.add(value);
}

RegressionResidualDetector::RegressionResidualDetector(std::size_t window,
                                                       double sigmas,
                                                       std::size_t min_samples)
    : window_(window), sigmas_(sigmas), min_samples_(min_samples),
      residuals_(window) {}

void RegressionResidualDetector::on_phase(PhaseContext& ctx) {
  if (!ctx.has_input(0)) {
    return;
  }
  const double x = static_cast<double>(ctx.phase());
  const double y = ctx.input(0).as_number();
  if (regression_.count() >= min_samples_ && regression_.has_fit()) {
    const double residual = regression_.residual(x, y);
    const double sigma = residuals_.stddev();
    if (sigma > 1e-12 && std::abs(residual) > sigmas_ * sigma) {
      ctx.emit(0, y);
    }
    residuals_.add(residual);
  } else if (regression_.has_fit()) {
    residuals_.add(regression_.residual(x, y));
  }
  samples_.emplace_back(x, y);
  regression_.add(x, y);
  if (samples_.size() > window_) {
    const auto [old_x, old_y] = samples_.front();
    samples_.pop_front();
    regression_.remove(old_x, old_y);
  }
}

ExpectationMonitor::ExpectationMonitor(double tolerance)
    : tolerance_(tolerance) {}

void ExpectationMonitor::on_phase(PhaseContext& ctx) {
  if (!ctx.has_latest(0) || !ctx.has_latest(1)) {
    return;  // nothing observed or no assumption published yet
  }
  const double observed = ctx.latest(0).as_number();
  const double assumed = ctx.latest(1).as_number();
  const bool violation = std::abs(observed - assumed) > tolerance_;
  if (violation && !violated_) {
    // Notify the assuming model exactly once per excursion.
    ctx.emit(0, observed);
  }
  violated_ = violation;
}

CusumDetector::CusumDetector(double k, double h, std::size_t warmup)
    : k_(k), h_(h), warmup_(warmup) {}

void CusumDetector::on_phase(PhaseContext& ctx) {
  if (!ctx.has_input(0)) {
    return;
  }
  const double value = ctx.input(0).as_number();
  if (reference_.count() < warmup_) {
    reference_.add(value);
    return;
  }
  const double deviation = value - reference_.mean();
  positive_ = std::max(0.0, positive_ + deviation - k_);
  negative_ = std::max(0.0, negative_ - deviation - k_);
  if (positive_ > h_) {
    ctx.emit(0, 1.0);
    positive_ = 0.0;
    negative_ = 0.0;
  } else if (negative_ > h_) {
    ctx.emit(0, -1.0);
    positive_ = 0.0;
    negative_ = 0.0;
  }
}

SpikeDetector::SpikeDetector(std::size_t window, double factor)
    : stats_(window), factor_(factor) {}

void SpikeDetector::on_phase(PhaseContext& ctx) {
  if (!ctx.has_input(0)) {
    return;
  }
  const double value = ctx.input(0).as_number();
  if (stats_.full() && value > factor_ * stats_.mean()) {
    ctx.emit(0, value);
  }
  stats_.add(value);
}

}  // namespace df::model
