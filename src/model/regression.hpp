// Regression and forecasting models (the paper's "models forecasting
// temperature variation in the coming day, load on the power grid and
// future prices").
#pragma once

#include <cstdint>
#include <deque>

#include "model/module.hpp"
#include "support/stats.hpp"

namespace df::model {

/// Sliding-window linear trend of the input against the phase number; emits
/// the slope after each input once `min_samples` have been seen.
class TrendModule final : public Module {
 public:
  explicit TrendModule(std::size_t window, std::size_t min_samples = 4);
  void on_phase(PhaseContext& ctx) override;

 private:
  std::size_t window_;
  std::size_t min_samples_;
  std::deque<std::pair<double, double>> samples_;
  support::OnlineLinearRegression regression_;
};

/// Forecaster: fits a sliding linear model of the input vs phase and emits
/// the prediction `horizon` phases ahead after each input. Downstream
/// ExpectationMonitors compare observations with this forecast.
class ForecastModule final : public Module {
 public:
  ForecastModule(std::size_t window, event::PhaseId horizon,
                 std::size_t min_samples = 4);
  void on_phase(PhaseContext& ctx) override;

 private:
  std::size_t window_;
  event::PhaseId horizon_;
  std::size_t min_samples_;
  std::deque<std::pair<double, double>> samples_;
  support::OnlineLinearRegression regression_;
};

/// Holt's linear double-exponential smoothing: level+trend forecast of the
/// input one step ahead; emits the forecast after each input.
class HoltForecastModule final : public Module {
 public:
  HoltForecastModule(double alpha, double beta);
  void on_phase(PhaseContext& ctx) override;

 private:
  double alpha_;
  double beta_;
  bool initialized_ = false;
  double level_ = 0.0;
  double trend_ = 0.0;
};

}  // namespace df::model
