// Runtime invariant checking for deltaflow.
//
// DF_CHECK is active in all build types: the engine's correctness argument
// (paper section 3.3) is encoded as cheap checked invariants, and the cost of
// a predicate test is negligible next to the scheduler's locked section.
// DF_DCHECK compiles away in NDEBUG builds and is used on hot paths.
//
// Extra arguments are streamed into the failure message:
//   DF_CHECK(x < n, "index ", x, " out of range ", n);
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace df::support {

/// Thrown when a DF_CHECK fails. Carries the failing expression and location.
class check_error : public std::logic_error {
 public:
  explicit check_error(const std::string& what) : std::logic_error(what) {}
};

[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& message);

namespace detail {

template <typename... Args>
std::string concat_message(const Args&... args) {
  if constexpr (sizeof...(Args) == 0) {
    return {};
  } else {
    std::ostringstream stream;
    (stream << ... << args);
    return stream.str();
  }
}

}  // namespace detail

}  // namespace df::support

#define DF_CHECK(expr, ...)                                               \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::df::support::check_failed(                                        \
          #expr, __FILE__, __LINE__,                                      \
          ::df::support::detail::concat_message(__VA_ARGS__));            \
    }                                                                     \
  } while (false)

#ifdef NDEBUG
#define DF_DCHECK(expr, ...) \
  do {                       \
  } while (false)
#else
#define DF_DCHECK(expr, ...) DF_CHECK(expr, __VA_ARGS__)
#endif
