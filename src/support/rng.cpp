#include "support/rng.hpp"

#include <cmath>
#include <string>

#include "support/check.hpp"

namespace df::support {

namespace {

inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

inline std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : state_) {
    word = sm.next();
  }
}

Rng Rng::fork(std::uint64_t stream_id) const {
  // Forked streams must not depend on how far this generator has advanced in
  // ways that would surprise callers; we mix the full current state with the
  // stream id so distinct ids give independent streams.
  std::uint64_t mixed = 0x9e3779b97f4a7c15ULL;
  for (auto word : state_) {
    mixed = mix64(mixed ^ word);
  }
  return Rng(mix64(mixed ^ mix64(stream_id + 0x632be59bd9b4e019ULL)));
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  DF_CHECK(bound > 0, "next_below requires a positive bound");
  // Rejection sampling over the largest multiple of bound that fits in 64
  // bits; unbiased for every bound.
  const std::uint64_t threshold = (~bound + 1) % bound;  // 2^64 mod bound
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

std::int64_t Rng::next_int(std::int64_t lo, std::int64_t hi) {
  DF_CHECK(lo <= hi, "next_int range is inverted");
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next_u64());
  }
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() {
  // 53 random mantissa bits.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::next_double(double lo, double hi) {
  DF_CHECK(lo <= hi, "next_double range is inverted");
  return lo + (hi - lo) * next_double();
}

double Rng::next_normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  // Marsaglia polar method.
  for (;;) {
    const double u = next_double(-1.0, 1.0);
    const double v = next_double(-1.0, 1.0);
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      const double factor = std::sqrt(-2.0 * std::log(s) / s);
      spare_normal_ = v * factor;
      has_spare_normal_ = true;
      return u * factor;
    }
  }
}

double Rng::next_normal(double mean, double stddev) {
  return mean + stddev * next_normal();
}

double Rng::next_exponential(double rate) {
  DF_CHECK(rate > 0.0, "exponential rate must be positive");
  // Avoid log(0): next_double() is in [0,1), so 1 - u is in (0,1].
  return -std::log(1.0 - next_double()) / rate;
}

bool Rng::next_bernoulli(double p) {
  DF_CHECK(p >= 0.0 && p <= 1.0, "bernoulli probability out of range");
  return next_double() < p;
}

std::uint64_t Rng::next_poisson(double mean) {
  DF_CHECK(mean >= 0.0, "poisson mean must be non-negative");
  if (mean == 0.0) {
    return 0;
  }
  if (mean <= 64.0) {
    // Knuth: multiply uniforms until the product drops below e^-mean.
    const double limit = std::exp(-mean);
    std::uint64_t count = 0;
    double product = next_double();
    while (product > limit) {
      ++count;
      product *= next_double();
    }
    return count;
  }
  // Normal approximation for large means.
  const double sample = next_normal(mean, std::sqrt(mean));
  return sample <= 0.0 ? 0 : static_cast<std::uint64_t>(sample + 0.5);
}

std::uint64_t hash_seed(const char* text) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV offset basis
  for (const char* p = text; *p != '\0'; ++p) {
    h ^= static_cast<unsigned char>(*p);
    h *= 0x100000001b3ULL;  // FNV prime
  }
  return mix64(h);
}

std::uint64_t hash_seed(const std::string& text) {
  return hash_seed(text.c_str());
}

std::uint64_t combine_seeds(std::uint64_t a, std::uint64_t b) {
  return mix64(a ^ (mix64(b) + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

}  // namespace df::support
