#include "support/quantile.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace df::support {

P2Quantile::P2Quantile(double q) : quantile_(q) {
  DF_CHECK(q > 0.0 && q < 1.0, "P2 quantile must be strictly inside (0,1)");
  reset();
}

void P2Quantile::reset() {
  heights_.fill(0.0);
  count_ = 0;
  positions_ = {1.0, 2.0, 3.0, 4.0, 5.0};
  desired_ = {1.0, 1.0 + 2.0 * quantile_, 1.0 + 4.0 * quantile_,
              3.0 + 2.0 * quantile_, 5.0};
  increments_ = {0.0, quantile_ / 2.0, quantile_, (1.0 + quantile_) / 2.0,
                 1.0};
}

double P2Quantile::parabolic(int i, double d) const {
  const double qi = heights_[static_cast<std::size_t>(i)];
  const double qip = heights_[static_cast<std::size_t>(i + 1)];
  const double qim = heights_[static_cast<std::size_t>(i - 1)];
  const double ni = positions_[static_cast<std::size_t>(i)];
  const double nip = positions_[static_cast<std::size_t>(i + 1)];
  const double nim = positions_[static_cast<std::size_t>(i - 1)];
  return qi + d / (nip - nim) *
                  ((ni - nim + d) * (qip - qi) / (nip - ni) +
                   (nip - ni - d) * (qi - qim) / (ni - nim));
}

double P2Quantile::linear(int i, double d) const {
  const auto idx = static_cast<std::size_t>(i);
  const auto next = static_cast<std::size_t>(i + static_cast<int>(d));
  return heights_[idx] + d * (heights_[next] - heights_[idx]) /
                             (positions_[next] - positions_[idx]);
}

void P2Quantile::add(double x) {
  if (count_ < 5) {
    heights_[count_] = x;
    ++count_;
    if (count_ == 5) {
      std::sort(heights_.begin(), heights_.end());
    }
    return;
  }
  ++count_;

  // Find the cell containing x and clamp the extreme markers.
  std::size_t k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = std::max(heights_[4], x);
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[k + 1]) {
      ++k;
    }
  }

  for (std::size_t i = k + 1; i < 5; ++i) {
    positions_[i] += 1.0;
  }
  for (std::size_t i = 0; i < 5; ++i) {
    desired_[i] += increments_[i];
  }

  // Adjust the three interior markers toward their desired positions.
  for (int i = 1; i <= 3; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    const double delta = desired_[idx] - positions_[idx];
    const bool room_right = positions_[idx + 1] - positions_[idx] > 1.0;
    const bool room_left = positions_[idx - 1] - positions_[idx] < -1.0;
    if ((delta >= 1.0 && room_right) || (delta <= -1.0 && room_left)) {
      const double d = delta >= 1.0 ? 1.0 : -1.0;
      double candidate = parabolic(i, d);
      if (heights_[idx - 1] < candidate && candidate < heights_[idx + 1]) {
        heights_[idx] = candidate;
      } else {
        heights_[idx] = linear(i, d);
      }
      positions_[idx] += d;
    }
  }
}

double P2Quantile::value() const {
  if (count_ == 0) {
    return 0.0;
  }
  if (count_ < 5) {
    // Exact for tiny streams: nearest-rank on the sorted prefix.
    std::array<double, 5> sorted{};
    std::copy_n(heights_.begin(), count_, sorted.begin());
    std::sort(sorted.begin(), sorted.begin() + static_cast<long>(count_));
    const auto rank = static_cast<std::size_t>(
        quantile_ * static_cast<double>(count_ - 1) + 0.5);
    return sorted[std::min(rank, count_ - 1)];
  }
  return heights_[2];
}

}  // namespace df::support
