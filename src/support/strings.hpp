// Small string utilities shared by the spec parser and the CLI.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace df::support {

/// Splits on a single-character delimiter; empty fields are preserved.
std::vector<std::string> split(std::string_view text, char delimiter);

/// Strips ASCII whitespace from both ends.
std::string_view trim(std::string_view text);

bool starts_with(std::string_view text, std::string_view prefix);
bool ends_with(std::string_view text, std::string_view suffix);

/// Strict parsers: the whole string must be consumed, otherwise nullopt.
std::optional<std::int64_t> parse_int(std::string_view text);
std::optional<std::uint64_t> parse_uint(std::string_view text);
std::optional<double> parse_double(std::string_view text);
std::optional<bool> parse_bool(std::string_view text);  // true/false/1/0

std::string to_lower(std::string_view text);

/// Joins items with a separator.
std::string join(const std::vector<std::string>& items,
                 std::string_view separator);

}  // namespace df::support
