// Bidirectional byte archive for checkpoint state.
//
// One `persist` function per component serves both directions: in save mode
// every primitive call appends the value's little-endian encoding; in load
// mode it reads the same bytes back and overwrites the argument. Keeping a
// single code path makes it structurally impossible for the writer and
// reader to disagree about field order — the failure mode that torn-image
// tests exist to catch is then limited to genuinely corrupt bytes, which the
// bounds-checked reads reject loudly (DF_CHECK → df::support::check_error)
// instead of reading out of bounds.
//
// The encoding is deliberately dumb: fixed-width little-endian integers, bit
// patterns for doubles, u64 length prefixes for sequences. Checkpoint images
// are consumed by the process family that wrote them (same build), so there
// is no varint/compat machinery here — wire.hpp owns the network format.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "support/check.hpp"

namespace df::support {

class StateArchive {
 public:
  /// Archive that appends into a fresh byte buffer (save mode).
  static StateArchive saver() { return StateArchive(); }

  /// Archive that reads back from an existing image (load mode). The caller
  /// keeps ownership of nothing: the bytes are copied in so the image may be
  /// freed immediately.
  static StateArchive loader(std::vector<std::uint8_t> bytes) {
    StateArchive ar;
    ar.saving_ = false;
    ar.bytes_ = std::move(bytes);
    return ar;
  }

  bool saving() const { return saving_; }
  bool loading() const { return !saving_; }

  void u8(std::uint8_t& v) { fixed(v); }
  void u16(std::uint16_t& v) { fixed(v); }
  void u32(std::uint32_t& v) { fixed(v); }
  void u64(std::uint64_t& v) { fixed(v); }
  void i64(std::int64_t& v) {
    std::uint64_t bits = 0;
    if (saving_) std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
    if (!saving_) std::memcpy(&v, &bits, sizeof v);
  }
  void f64(double& v) {
    std::uint64_t bits = 0;
    if (saving_) std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
    if (!saving_) std::memcpy(&v, &bits, sizeof v);
  }
  void boolean(bool& v) {
    std::uint8_t byte = v ? 1 : 0;
    u8(byte);
    if (!saving_) {
      DF_CHECK(byte <= 1, "state archive: bool byte out of range");
      v = byte != 0;
    }
  }
  void size(std::size_t& v) {
    std::uint64_t wide = v;
    u64(wide);
    if (!saving_) {
      DF_CHECK(wide <= SIZE_MAX, "state archive: size_t overflow");
      v = static_cast<std::size_t>(wide);
    }
  }

  void str(std::string& v) {
    std::uint64_t n = v.size();
    u64(n);
    if (saving_) {
      bytes_.insert(bytes_.end(), v.begin(), v.end());
    } else {
      DF_CHECK(n <= remaining(), "state archive: string length exceeds image");
      v.assign(reinterpret_cast<const char*>(bytes_.data() + cursor_),
               static_cast<std::size_t>(n));
      cursor_ += static_cast<std::size_t>(n);
    }
  }

  /// Persists a resizable container: length prefix, then one callback per
  /// element. Load mode clear()s and resize()s first, with the length bounded
  /// by the remaining image size so a corrupt prefix cannot force a huge
  /// allocation before the per-element reads fail.
  template <typename Container, typename Fn>
  void sequence(Container& c, Fn per_element) {
    std::uint64_t n = saving_ ? c.size() : 0;
    u64(n);
    if (!saving_) {
      DF_CHECK(n <= remaining(),
               "state archive: sequence length exceeds image");
      c.clear();
      c.resize(static_cast<std::size_t>(n));
    }
    for (auto&& e : c) per_element(*this, e);
  }

  /// std::vector<bool> needs its own overload (proxy references).
  void bool_vector(std::vector<bool>& c) {
    std::uint64_t n = saving_ ? c.size() : 0;
    u64(n);
    if (!saving_) {
      DF_CHECK(n <= remaining(),
               "state archive: sequence length exceeds image");
      c.assign(static_cast<std::size_t>(n), false);
    }
    for (std::size_t i = 0; i < c.size(); ++i) {
      bool b = c[i];
      boolean(b);
      if (!saving_) c[i] = b;
    }
  }

  template <typename T, typename Fn>
  void optional(std::optional<T>& v, Fn per_value) {
    bool engaged = v.has_value();
    boolean(engaged);
    if (!saving_ && engaged && !v.has_value()) v.emplace();
    if (!saving_ && !engaged) v.reset();
    if (engaged) per_value(*this, *v);
  }

  std::size_t remaining() const { return bytes_.size() - cursor_; }

  /// Load mode: asserts the image was consumed exactly.
  void finish() {
    DF_CHECK(saving_ || cursor_ == bytes_.size(),
             "state archive: trailing bytes after load");
  }

  /// Save mode: yields the encoded image.
  std::vector<std::uint8_t> take() && {
    DF_CHECK(saving_, "state archive: take() on a loader");
    return std::move(bytes_);
  }

 private:
  StateArchive() = default;

  template <typename T>
  void fixed(T& v) {
    if (saving_) {
      std::uint8_t raw[sizeof(T)];
      std::memcpy(raw, &v, sizeof(T));
      bytes_.insert(bytes_.end(), raw, raw + sizeof(T));
    } else {
      DF_CHECK(remaining() >= sizeof(T),
               "state archive: truncated image (read past end)");
      std::memcpy(&v, bytes_.data() + cursor_, sizeof(T));
      cursor_ += sizeof(T);
    }
  }

  bool saving_ = true;
  std::vector<std::uint8_t> bytes_;
  std::size_t cursor_ = 0;
};

/// FNV-1a over a byte range — the checkpoint image trailer checksum.
inline std::uint64_t fnv1a(const std::uint8_t* data, std::size_t size) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace df::support
