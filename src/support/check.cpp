#include "support/check.hpp"

#include <sstream>

namespace df::support {

void check_failed(const char* expr, const char* file, int line,
                  const std::string& message) {
  std::ostringstream out;
  out << "DF_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!message.empty()) {
    out << " — " << message;
  }
  throw check_error(out.str());
}

}  // namespace df::support
