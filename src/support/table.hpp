// ASCII table rendering for the benchmark harness. Every bench binary prints
// the rows/series of the paper artifact it reproduces through this.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace df::support {

/// Column-aligned plain-text table. Numeric cells are right-aligned, text
/// cells left-aligned; alignment is decided per column from its contents.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; the row must match the header width.
  void add_row(std::vector<std::string> cells);

  std::size_t row_count() const { return rows_.size(); }
  std::string render() const;

  /// Formats a double with fixed precision, trimming trailing zeros.
  static std::string num(double value, int precision = 3);
  static std::string num(std::uint64_t value);
  static std::string num(std::int64_t value);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a "== title ==" section banner used between bench sections.
std::string banner(const std::string& title);

}  // namespace df::support
