// Minimal command-line flag parser for bench and example binaries.
//
// Flags take the form --name=value; bare --name sets a boolean flag to
// true (the ambiguous "--name value" form is deliberately not supported so
// booleans and positionals cannot swallow each other). Unknown flags can be
// detected via unused(), so typos in sweep scripts fail loudly instead of
// silently using defaults.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace df::support {

class CliFlags {
 public:
  CliFlags(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& fallback) const;
  std::int64_t get(const std::string& name, std::int64_t fallback) const;
  std::uint64_t get(const std::string& name, std::uint64_t fallback) const;
  double get(const std::string& name, double fallback) const;
  bool get(const std::string& name, bool fallback) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Names that were provided but never read; used to reject typos.
  std::vector<std::string> unused() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> consumed_;
  std::vector<std::string> positional_;
};

}  // namespace df::support
