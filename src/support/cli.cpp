#include "support/cli.hpp"

#include "support/check.hpp"
#include "support/strings.hpp"

namespace df::support {

CliFlags::CliFlags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!starts_with(arg, "--")) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else {
      values_[arg] = "true";
    }
  }
}

bool CliFlags::has(const std::string& name) const {
  const auto it = values_.find(name);
  if (it != values_.end()) {
    consumed_[name] = true;
    return true;
  }
  return false;
}

std::string CliFlags::get(const std::string& name,
                          const std::string& fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) {
    return fallback;
  }
  consumed_[name] = true;
  return it->second;
}

std::int64_t CliFlags::get(const std::string& name,
                           std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) {
    return fallback;
  }
  consumed_[name] = true;
  const auto parsed = parse_int(it->second);
  DF_CHECK(parsed.has_value(), "flag --", name, " is not an integer");
  return *parsed;
}

std::uint64_t CliFlags::get(const std::string& name,
                            std::uint64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) {
    return fallback;
  }
  consumed_[name] = true;
  const auto parsed = parse_uint(it->second);
  DF_CHECK(parsed.has_value(), "flag --", name,
           " is not an unsigned integer");
  return *parsed;
}

double CliFlags::get(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) {
    return fallback;
  }
  consumed_[name] = true;
  const auto parsed = parse_double(it->second);
  DF_CHECK(parsed.has_value(), "flag --", name, " is not a number");
  return *parsed;
}

bool CliFlags::get(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) {
    return fallback;
  }
  consumed_[name] = true;
  const auto parsed = parse_bool(it->second);
  DF_CHECK(parsed.has_value(), "flag --", name, " is not a boolean");
  return *parsed;
}

std::vector<std::string> CliFlags::unused() const {
  std::vector<std::string> names;
  for (const auto& [name, value] : values_) {
    (void)value;
    if (consumed_.find(name) == consumed_.end()) {
      names.push_back(name);
    }
  }
  return names;
}

}  // namespace df::support
