// Fixed-bin and logarithmic histograms for the benchmark harness
// (latency distributions, pipeline-depth distributions).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace df::support {

/// Linear histogram over [lo, hi) with uniform bins plus underflow/overflow.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  void merge(const Histogram& other);
  void reset();

  std::uint64_t total() const { return total_; }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  std::size_t bin_count() const { return counts_.size(); }
  std::uint64_t bin(std::size_t i) const { return counts_.at(i); }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;

  /// Approximate quantile (q in [0,1]) by linear interpolation within the
  /// containing bin. Underflow/overflow mass collapses to the range edges.
  double quantile(double q) const;

  /// Multi-line ASCII rendering, bars scaled to `width` columns.
  std::string render(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  double bin_width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

/// Histogram of non-negative integer counts with exact small values
/// (0..direct-1) and power-of-two buckets beyond. Used for distributions of
/// in-flight phases and queue depths where small values dominate.
class CountHistogram {
 public:
  explicit CountHistogram(std::uint64_t direct = 64);

  void add(std::uint64_t value);
  void reset();

  std::uint64_t total() const { return total_; }
  std::uint64_t max_seen() const { return max_seen_; }
  double mean() const;
  /// Exact quantile over recorded values (bucketed beyond `direct`).
  std::uint64_t quantile(double q) const;
  std::string render(std::size_t width = 50) const;

 private:
  std::uint64_t direct_;
  std::vector<std::uint64_t> direct_counts_;
  std::vector<std::uint64_t> pow2_counts_;  // bucket i: [2^i, 2^(i+1))
  std::uint64_t total_ = 0;
  std::uint64_t max_seen_ = 0;
  double sum_ = 0.0;
};

}  // namespace df::support
