// Streaming statistics used both by the model library (moving averages,
// z-scores, regression residuals) and by the benchmark harness (latency and
// throughput summaries).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <limits>
#include <vector>

#include "support/check.hpp"
#include "support/state_archive.hpp"

namespace df::support {

/// Welford's online mean/variance accumulator. Numerically stable; O(1)
/// memory regardless of stream length.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);
  void reset();

  std::uint64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  /// Population variance (divide by n).
  double variance() const;
  /// Sample variance (divide by n-1); 0 for fewer than two samples.
  double sample_variance() const;
  double stddev() const;
  double sample_stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

  void persist(StateArchive& ar) {
    ar.u64(count_);
    ar.f64(mean_);
    ar.f64(m2_);
    ar.f64(sum_);
    ar.f64(min_);
    ar.f64(max_);
  }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Mean/variance over a sliding window of the most recent `capacity` samples.
/// Used by the paper's motivating predicates ("one-week moving point average
/// ... two standard deviations away").
class WindowedStats {
 public:
  explicit WindowedStats(std::size_t capacity);

  void add(double x);
  void reset();

  std::size_t size() const { return window_.size(); }
  std::size_t capacity() const { return capacity_; }
  bool full() const { return window_.size() == capacity_; }
  double mean() const;
  /// Population variance over the current window contents.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double front() const;
  double back() const;
  const std::deque<double>& samples() const { return window_; }

  void persist(StateArchive& ar) {
    std::uint64_t cap = capacity_;
    ar.u64(cap);
    DF_CHECK(cap == capacity_, "WindowedStats: checkpoint capacity mismatch");
    ar.sequence(window_, [](StateArchive& a, double& x) { a.f64(x); });
    DF_CHECK(window_.size() <= capacity_,
             "WindowedStats: checkpoint window exceeds capacity");
    ar.f64(sum_);
    ar.f64(sum_sq_);
  }

 private:
  std::size_t capacity_;
  std::deque<double> window_;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
};

/// Exponentially weighted moving average with configurable smoothing factor
/// alpha in (0, 1].
class Ewma {
 public:
  explicit Ewma(double alpha);

  void add(double x);
  void reset();

  bool initialized() const { return initialized_; }
  double value() const { return value_; }
  double alpha() const { return alpha_; }

  void persist(StateArchive& ar) {
    ar.f64(value_);
    ar.boolean(initialized_);
  }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

/// Simple online linear regression of y against x (least squares over all
/// samples seen). Supports sliding-window operation via remove().
class OnlineLinearRegression {
 public:
  void add(double x, double y);
  /// Removes a previously added sample. The caller is responsible for only
  /// removing points that were added (sliding-window usage).
  void remove(double x, double y);
  void reset();

  std::uint64_t count() const { return count_; }
  bool has_fit() const;
  double slope() const;
  double intercept() const;
  /// Predicted y at x from the current fit.
  double predict(double x) const;
  /// Residual of an observation under the current fit.
  double residual(double x, double y) const { return y - predict(x); }
  /// Pearson correlation coefficient of the accumulated samples.
  double correlation() const;

  void persist(StateArchive& ar) {
    ar.u64(count_);
    ar.f64(sum_x_);
    ar.f64(sum_y_);
    ar.f64(sum_xx_);
    ar.f64(sum_yy_);
    ar.f64(sum_xy_);
  }

 private:
  std::uint64_t count_ = 0;
  double sum_x_ = 0.0;
  double sum_y_ = 0.0;
  double sum_xx_ = 0.0;
  double sum_yy_ = 0.0;
  double sum_xy_ = 0.0;
};

/// Pairwise rolling correlation between two synchronized streams over a
/// sliding window.
class RollingCorrelation {
 public:
  explicit RollingCorrelation(std::size_t capacity);

  void add(double x, double y);
  void reset();

  std::size_t size() const { return xs_.size(); }
  bool full() const { return xs_.size() == capacity_; }
  double correlation() const;

  void persist(StateArchive& ar) {
    std::uint64_t cap = capacity_;
    ar.u64(cap);
    DF_CHECK(cap == capacity_,
             "RollingCorrelation: checkpoint capacity mismatch");
    ar.sequence(xs_, [](StateArchive& a, double& x) { a.f64(x); });
    ar.sequence(ys_, [](StateArchive& a, double& y) { a.f64(y); });
    DF_CHECK(xs_.size() == ys_.size() && xs_.size() <= capacity_,
             "RollingCorrelation: inconsistent checkpoint window");
    acc_.persist(ar);
  }

 private:
  std::size_t capacity_;
  std::deque<double> xs_;
  std::deque<double> ys_;
  OnlineLinearRegression acc_;
};

}  // namespace df::support
