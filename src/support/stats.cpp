#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace df::support {

void RunningStats::add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(count_ + other.count_);
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) / total;
  mean_ = (mean_ * static_cast<double>(count_) +
           other.mean_ * static_cast<double>(other.count_)) /
          total;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::variance() const {
  return count_ == 0 ? 0.0 : m2_ / static_cast<double>(count_);
}

double RunningStats::sample_variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::sample_stddev() const {
  return std::sqrt(sample_variance());
}

WindowedStats::WindowedStats(std::size_t capacity) : capacity_(capacity) {
  DF_CHECK(capacity > 0, "window capacity must be positive");
}

void WindowedStats::add(double x) {
  if (window_.size() == capacity_) {
    const double old = window_.front();
    window_.pop_front();
    sum_ -= old;
    sum_sq_ -= old * old;
  }
  window_.push_back(x);
  sum_ += x;
  sum_sq_ += x * x;
}

void WindowedStats::reset() {
  window_.clear();
  sum_ = 0.0;
  sum_sq_ = 0.0;
}

double WindowedStats::mean() const {
  return window_.empty() ? 0.0 : sum_ / static_cast<double>(window_.size());
}

double WindowedStats::variance() const {
  if (window_.empty()) {
    return 0.0;
  }
  const double n = static_cast<double>(window_.size());
  const double m = sum_ / n;
  // Guard against tiny negative results from floating-point cancellation.
  return std::max(0.0, sum_sq_ / n - m * m);
}

double WindowedStats::stddev() const { return std::sqrt(variance()); }

double WindowedStats::min() const {
  DF_CHECK(!window_.empty(), "min of empty window");
  return *std::min_element(window_.begin(), window_.end());
}

double WindowedStats::max() const {
  DF_CHECK(!window_.empty(), "max of empty window");
  return *std::max_element(window_.begin(), window_.end());
}

double WindowedStats::front() const {
  DF_CHECK(!window_.empty(), "front of empty window");
  return window_.front();
}

double WindowedStats::back() const {
  DF_CHECK(!window_.empty(), "back of empty window");
  return window_.back();
}

Ewma::Ewma(double alpha) : alpha_(alpha) {
  DF_CHECK(alpha > 0.0 && alpha <= 1.0, "EWMA alpha must be in (0, 1]");
}

void Ewma::add(double x) {
  if (!initialized_) {
    value_ = x;
    initialized_ = true;
  } else {
    value_ = alpha_ * x + (1.0 - alpha_) * value_;
  }
}

void Ewma::reset() {
  value_ = 0.0;
  initialized_ = false;
}

void OnlineLinearRegression::add(double x, double y) {
  ++count_;
  sum_x_ += x;
  sum_y_ += y;
  sum_xx_ += x * x;
  sum_yy_ += y * y;
  sum_xy_ += x * y;
}

void OnlineLinearRegression::remove(double x, double y) {
  DF_CHECK(count_ > 0, "removing from an empty regression");
  --count_;
  sum_x_ -= x;
  sum_y_ -= y;
  sum_xx_ -= x * x;
  sum_yy_ -= y * y;
  sum_xy_ -= x * y;
}

void OnlineLinearRegression::reset() { *this = OnlineLinearRegression{}; }

bool OnlineLinearRegression::has_fit() const {
  if (count_ < 2) {
    return false;
  }
  const double n = static_cast<double>(count_);
  const double denom = n * sum_xx_ - sum_x_ * sum_x_;
  return std::abs(denom) > 1e-12;
}

double OnlineLinearRegression::slope() const {
  if (!has_fit()) {
    return 0.0;
  }
  const double n = static_cast<double>(count_);
  return (n * sum_xy_ - sum_x_ * sum_y_) / (n * sum_xx_ - sum_x_ * sum_x_);
}

double OnlineLinearRegression::intercept() const {
  if (count_ == 0) {
    return 0.0;
  }
  const double n = static_cast<double>(count_);
  return (sum_y_ - slope() * sum_x_) / n;
}

double OnlineLinearRegression::predict(double x) const {
  return slope() * x + intercept();
}

double OnlineLinearRegression::correlation() const {
  if (count_ < 2) {
    return 0.0;
  }
  const double n = static_cast<double>(count_);
  const double cov = n * sum_xy_ - sum_x_ * sum_y_;
  const double var_x = n * sum_xx_ - sum_x_ * sum_x_;
  const double var_y = n * sum_yy_ - sum_y_ * sum_y_;
  const double denom = std::sqrt(var_x) * std::sqrt(var_y);
  return denom < 1e-12 ? 0.0 : cov / denom;
}

RollingCorrelation::RollingCorrelation(std::size_t capacity)
    : capacity_(capacity) {
  DF_CHECK(capacity >= 2, "correlation window must hold at least two points");
}

void RollingCorrelation::add(double x, double y) {
  if (xs_.size() == capacity_) {
    acc_.remove(xs_.front(), ys_.front());
    xs_.pop_front();
    ys_.pop_front();
  }
  xs_.push_back(x);
  ys_.push_back(y);
  acc_.add(x, y);
}

void RollingCorrelation::reset() {
  xs_.clear();
  ys_.clear();
  acc_.reset();
}

double RollingCorrelation::correlation() const { return acc_.correlation(); }

}  // namespace df::support
