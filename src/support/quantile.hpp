// P² (piecewise-parabolic) streaming quantile estimator.
//
// Jain & Chlamtac, CACM 1985. O(1) memory per tracked quantile; used by the
// model library's QuantileSketch module and by the bench harness for latency
// percentiles without storing full sample vectors.
#pragma once

#include <array>
#include <cstdint>

#include "support/state_archive.hpp"

namespace df::support {

/// Estimates a single quantile q of a stream using five markers.
class P2Quantile {
 public:
  explicit P2Quantile(double q);

  void add(double x);
  void reset();

  std::uint64_t count() const { return count_; }
  /// Current estimate. Exact while fewer than five samples have been seen.
  double value() const;

  void persist(StateArchive& ar) {
    ar.f64(quantile_);
    for (auto& h : heights_) ar.f64(h);
    for (auto& p : positions_) ar.f64(p);
    for (auto& d : desired_) ar.f64(d);
    for (auto& inc : increments_) ar.f64(inc);
    ar.u64(count_);
  }

 private:
  double quantile_;
  std::array<double, 5> heights_{};
  std::array<double, 5> positions_{};
  std::array<double, 5> desired_{};
  std::array<double, 5> increments_{};
  std::uint64_t count_ = 0;

  double parabolic(int i, double d) const;
  double linear(int i, double d) const;
};

}  // namespace df::support
