// Deterministic pseudo-random number generation.
//
// The paper's prototype seeds source vertices from the XML specification so
// runs are reproducible; deltaflow does the same. We implement our own
// generators (SplitMix64 for seeding, Xoshiro256++ for streams) instead of
// relying on std::mt19937 so that sequences are identical across standard
// library implementations — the serializability checker compares parallel and
// sequential sink streams bit-for-bit.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "support/state_archive.hpp"

namespace df::support {

/// SplitMix64: tiny generator used to expand a single 64-bit seed into the
/// state of larger generators. Passes BigCrush when used as designed.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256++ — the library's workhorse generator. Small state, fast,
/// and deterministic across platforms.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0xdf5eedULL);

  /// Derives an independent stream for a sub-component (e.g. one per vertex).
  Rng fork(std::uint64_t stream_id) const;

  std::uint64_t next_u64();

  /// Uniform in [0, bound). bound must be > 0. Uses Lemire's method without
  /// 128-bit multiply bias correction shortcuts; exact rejection sampling.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi);

  /// Standard normal via Marsaglia polar method (cached spare).
  double next_normal();

  /// Normal with the given mean and standard deviation.
  double next_normal(double mean, double stddev);

  /// Exponential with the given rate (lambda > 0).
  double next_exponential(double rate);

  /// Bernoulli trial with success probability p.
  bool next_bernoulli(double p);

  /// Poisson-distributed count. Knuth's method for small means, normal
  /// approximation with rounding for large means (mean > 64).
  std::uint64_t next_poisson(double mean);

  /// Fisher-Yates shuffle of a vector.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Checkpoint hook: the full generator state (xoshiro words plus the
  /// cached Marsaglia spare), so a restored stream continues bit-identically.
  void persist(StateArchive& ar) {
    for (auto& word : state_) ar.u64(word);
    ar.f64(spare_normal_);
    ar.boolean(has_spare_normal_);
  }

  /// UniformRandomBitGenerator interface (for interop with <algorithm>).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next_u64(); }

 private:
  std::array<std::uint64_t, 4> state_{};
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
};

/// Stable 64-bit hash of a string, for deriving seeds from names
/// (FNV-1a, then finalized through SplitMix64's mixer).
std::uint64_t hash_seed(const char* text);
std::uint64_t hash_seed(const std::string& text);

/// Combines two seeds into one (order-sensitive).
std::uint64_t combine_seeds(std::uint64_t a, std::uint64_t b);

}  // namespace df::support
