#include "support/table.hpp"

#include <algorithm>
#include <cstdlib>
#include <iomanip>
#include <sstream>

#include "support/check.hpp"

namespace df::support {

namespace {

bool looks_numeric(const std::string& cell) {
  if (cell.empty()) {
    return false;
  }
  char* end = nullptr;
  std::strtod(cell.c_str(), &end);
  // Allow trailing units like "x" or "%" after a numeric prefix.
  return end != cell.c_str();
}

}  // namespace

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  DF_CHECK(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  DF_CHECK(cells.size() == headers_.size(),
           "row width does not match header width");
  rows_.push_back(std::move(cells));
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  std::vector<bool> numeric(headers_.size(), true);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
      if (!looks_numeric(row[c])) {
        numeric[c] = false;
      }
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row, bool header) {
    out << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      const bool right = !header && numeric[c];
      out << ' ' << (right ? std::right : std::left)
          << std::setw(static_cast<int>(widths[c])) << row[c] << " |";
    }
    out << "\n";
  };

  emit_row(headers_, /*header=*/true);
  out << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << "|";
  }
  out << "\n";
  for (const auto& row : rows_) {
    emit_row(row, /*header=*/false);
  }
  return out.str();
}

std::string Table::num(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  std::string text = out.str();
  if (text.find('.') != std::string::npos) {
    while (!text.empty() && text.back() == '0') {
      text.pop_back();
    }
    if (!text.empty() && text.back() == '.') {
      text.pop_back();
    }
  }
  return text;
}

std::string Table::num(std::uint64_t value) { return std::to_string(value); }

std::string Table::num(std::int64_t value) { return std::to_string(value); }

std::string banner(const std::string& title) {
  return "\n== " + title + " ==\n";
}

}  // namespace df::support
