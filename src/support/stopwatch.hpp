// Monotonic wall-clock timing for benchmarks and engine statistics.
#pragma once

#include <chrono>
#include <cstdint>

namespace df::support {

/// Thin wrapper over steady_clock with second/millisecond/nanosecond views.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void restart() { start_ = clock::now(); }

  std::uint64_t elapsed_ns() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                             start_)
            .count());
  }
  double elapsed_ms() const {
    return static_cast<double>(elapsed_ns()) / 1e6;
  }
  double elapsed_s() const { return static_cast<double>(elapsed_ns()) / 1e9; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Spins for approximately `ns` nanoseconds of CPU time. Used by the
/// synthetic busy-work module to emulate "computations performed by the
/// vertices [that] take significantly more time than the computations
/// performed to maintain the data structures" (paper section 4).
inline std::uint64_t spin_for_ns(std::uint64_t ns) {
  // The accumulator is returned so the loop cannot be optimized away.
  const auto start = std::chrono::steady_clock::now();
  std::uint64_t acc = 0xdeadbeefULL;
  for (;;) {
    for (int i = 0; i < 64; ++i) {
      acc = acc * 6364136223846793005ULL + 1442695040888963407ULL;
    }
    const auto now = std::chrono::steady_clock::now();
    if (static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(now - start)
                .count()) >= ns) {
      return acc;
    }
  }
}

}  // namespace df::support
