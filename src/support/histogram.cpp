#include "support/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

#include "support/check.hpp"

namespace df::support {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bin_width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  DF_CHECK(hi > lo, "histogram range is empty");
  DF_CHECK(bins > 0, "histogram needs at least one bin");
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto index = static_cast<std::size_t>((x - lo_) / bin_width_);
  index = std::min(index, counts_.size() - 1);
  ++counts_[index];
}

void Histogram::merge(const Histogram& other) {
  DF_CHECK(other.counts_.size() == counts_.size() && other.lo_ == lo_ &&
               other.hi_ == hi_,
           "merging incompatible histograms");
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  total_ += other.total_;
}

void Histogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0ULL);
  underflow_ = overflow_ = total_ = 0;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + bin_width_ * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const {
  return lo_ + bin_width_ * static_cast<double>(i + 1);
}

double Histogram::quantile(double q) const {
  DF_CHECK(q >= 0.0 && q <= 1.0, "quantile out of range");
  if (total_ == 0) {
    return lo_;
  }
  const double target = q * static_cast<double>(total_);
  double cumulative = static_cast<double>(underflow_);
  if (cumulative >= target) {
    return lo_;
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cumulative + static_cast<double>(counts_[i]);
    if (next >= target && counts_[i] > 0) {
      const double fraction =
          (target - cumulative) / static_cast<double>(counts_[i]);
      return bin_lo(i) + fraction * bin_width_;
    }
    cumulative = next;
  }
  return hi_;
}

std::string Histogram::render(std::size_t width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) {
    peak = std::max(peak, c);
  }
  std::ostringstream out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar =
        static_cast<std::size_t>(static_cast<double>(counts_[i]) /
                                 static_cast<double>(peak) *
                                 static_cast<double>(width));
    out << "[" << bin_lo(i) << ", " << bin_hi(i) << ") "
        << std::string(bar, '#') << " " << counts_[i] << "\n";
  }
  if (underflow_ != 0) {
    out << "underflow " << underflow_ << "\n";
  }
  if (overflow_ != 0) {
    out << "overflow " << overflow_ << "\n";
  }
  return out.str();
}

CountHistogram::CountHistogram(std::uint64_t direct)
    : direct_(direct), direct_counts_(direct, 0), pow2_counts_(64, 0) {
  DF_CHECK(direct > 0, "direct range must be positive");
}

void CountHistogram::add(std::uint64_t value) {
  ++total_;
  sum_ += static_cast<double>(value);
  max_seen_ = std::max(max_seen_, value);
  if (value < direct_) {
    ++direct_counts_[value];
  } else {
    ++pow2_counts_[static_cast<std::size_t>(std::bit_width(value) - 1)];
  }
}

void CountHistogram::reset() {
  std::fill(direct_counts_.begin(), direct_counts_.end(), 0ULL);
  std::fill(pow2_counts_.begin(), pow2_counts_.end(), 0ULL);
  total_ = 0;
  max_seen_ = 0;
  sum_ = 0.0;
}

double CountHistogram::mean() const {
  return total_ == 0 ? 0.0 : sum_ / static_cast<double>(total_);
}

std::uint64_t CountHistogram::quantile(double q) const {
  DF_CHECK(q >= 0.0 && q <= 1.0, "quantile out of range");
  if (total_ == 0) {
    return 0;
  }
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total_)));
  std::uint64_t cumulative = 0;
  for (std::uint64_t v = 0; v < direct_; ++v) {
    cumulative += direct_counts_[v];
    if (cumulative >= target) {
      return v;
    }
  }
  for (std::size_t i = 0; i < pow2_counts_.size(); ++i) {
    cumulative += pow2_counts_[i];
    if (cumulative >= target) {
      return 1ULL << i;  // bucket lower bound
    }
  }
  return max_seen_;
}

std::string CountHistogram::render(std::size_t width) const {
  std::uint64_t peak = 1;
  for (auto c : direct_counts_) {
    peak = std::max(peak, c);
  }
  std::ostringstream out;
  const std::uint64_t shown = std::min<std::uint64_t>(direct_, max_seen_ + 1);
  for (std::uint64_t v = 0; v < shown; ++v) {
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(direct_counts_[v]) / static_cast<double>(peak) *
        static_cast<double>(width));
    out << v << ": " << std::string(bar, '#') << " " << direct_counts_[v]
        << "\n";
  }
  for (std::size_t i = 0; i < pow2_counts_.size(); ++i) {
    if (pow2_counts_[i] != 0) {
      out << "[" << (1ULL << i) << ", " << (1ULL << (i + 1)) << "): "
          << pow2_counts_[i] << "\n";
    }
  }
  return out.str();
}

}  // namespace df::support
