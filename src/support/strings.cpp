#include "support/strings.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace df::support {

std::vector<std::string> split(std::string_view text, char delimiter) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delimiter) {
      parts.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin])) != 0) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1])) != 0) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::optional<std::int64_t> parse_int(std::string_view text) {
  if (text.empty()) {
    return std::nullopt;
  }
  std::string owned(text);
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(owned.c_str(), &end, 10);
  if (errno != 0 || end != owned.c_str() + owned.size()) {
    return std::nullopt;
  }
  return static_cast<std::int64_t>(value);
}

std::optional<std::uint64_t> parse_uint(std::string_view text) {
  if (text.empty() || text.front() == '-') {
    return std::nullopt;
  }
  std::string owned(text);
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(owned.c_str(), &end, 10);
  if (errno != 0 || end != owned.c_str() + owned.size()) {
    return std::nullopt;
  }
  return static_cast<std::uint64_t>(value);
}

std::optional<double> parse_double(std::string_view text) {
  if (text.empty()) {
    return std::nullopt;
  }
  std::string owned(text);
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(owned.c_str(), &end);
  if (errno != 0 || end != owned.c_str() + owned.size()) {
    return std::nullopt;
  }
  return value;
}

std::optional<bool> parse_bool(std::string_view text) {
  const std::string lowered = to_lower(trim(text));
  if (lowered == "true" || lowered == "1" || lowered == "yes") {
    return true;
  }
  if (lowered == "false" || lowered == "0" || lowered == "no") {
    return false;
  }
  return std::nullopt;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string join(const std::vector<std::string>& items,
                 std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i != 0) {
      out += separator;
    }
    out += items[i];
  }
  return out;
}

}  // namespace df::support
