#include "event/phase.hpp"

#include <utility>

#include "support/check.hpp"

namespace df::event {

std::optional<PhaseBatch> PhaseAssembler::feed(const TimestampedEvent& event) {
  if (!pending_.has_value()) {
    pending_ = PhaseBatch{next_phase_, event.timestamp, {event.event}};
    return std::nullopt;
  }
  DF_CHECK(event.timestamp >= pending_->timestamp,
           "timestamps must be non-decreasing (got ", event.timestamp,
           " after ", pending_->timestamp, ")");
  if (event.timestamp == pending_->timestamp) {
    pending_->events.push_back(event.event);
    return std::nullopt;
  }
  PhaseBatch done = std::move(*pending_);
  ++next_phase_;
  pending_ = PhaseBatch{next_phase_, event.timestamp, {event.event}};
  return done;
}

std::optional<PhaseBatch> PhaseAssembler::flush() {
  if (!pending_.has_value()) {
    return std::nullopt;
  }
  PhaseBatch done = std::move(*pending_);
  pending_.reset();
  ++next_phase_;
  return done;
}

}  // namespace df::event
