// Event payload values.
//
// The paper's modules exchange heterogeneous events (sensor readings,
// transactions, alerts). Value is a small tagged union closed over the types
// the model library needs; bitwise-comparable so the serializability checker
// can compare parallel and sequential sink streams exactly.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace df::event {

class Value {
 public:
  /// Alternative order is a wire contract: Kind below mirrors it and the
  /// transport frame format (distrib/wire.hpp) serializes Kind values
  /// verbatim, so alternatives may be appended but never reordered.
  using Storage = std::variant<std::monostate, bool, std::int64_t, double,
                               std::string, std::vector<double>>;

  Value() = default;
  Value(bool v) : storage_(v) {}                        // NOLINT(google-explicit-constructor)
  Value(std::int64_t v) : storage_(v) {}                // NOLINT(google-explicit-constructor)
  Value(int v) : storage_(static_cast<std::int64_t>(v)) {}  // NOLINT(google-explicit-constructor)
  Value(double v) : storage_(v) {}                      // NOLINT(google-explicit-constructor)
  Value(std::string v) : storage_(std::move(v)) {}      // NOLINT(google-explicit-constructor)
  Value(const char* v) : storage_(std::string(v)) {}    // NOLINT(google-explicit-constructor)
  /// Builds the string in place from a byte range — the wire decoder's
  /// path from a received frame buffer into a Value with exactly one copy.
  Value(std::string_view v) : storage_(std::string(v)) {}  // NOLINT(google-explicit-constructor)
  Value(std::vector<double> v) : storage_(std::move(v)) {}  // NOLINT(google-explicit-constructor)

  /// Stable discriminant for serialization; numeric values are part of the
  /// wire format and must never be renumbered. The transport's value
  /// encoding (distrib/wire.hpp) serializes these verbatim as tags 0..5 and
  /// appends dense wire-only tags after them, so alternatives may be
  /// appended here but never reordered.
  enum class Kind : std::uint8_t {
    kEmpty = 0,
    kBool = 1,
    kInt = 2,
    kDouble = 3,
    kString = 4,
    kVector = 5,
  };

  Kind kind() const { return static_cast<Kind>(storage_.index()); }

  bool is_empty() const {
    return std::holds_alternative<std::monostate>(storage_);
  }
  bool is_bool() const { return std::holds_alternative<bool>(storage_); }
  bool is_int() const {
    return std::holds_alternative<std::int64_t>(storage_);
  }
  bool is_double() const { return std::holds_alternative<double>(storage_); }
  bool is_string() const {
    return std::holds_alternative<std::string>(storage_);
  }
  bool is_vector() const {
    return std::holds_alternative<std::vector<double>>(storage_);
  }

  /// Checked accessors (DF_CHECK on type mismatch).
  bool as_bool() const;
  std::int64_t as_int() const;
  double as_double() const;
  const std::string& as_string() const;
  const std::vector<double>& as_vector() const;

  /// Numeric coercion: int and double read as double; everything else fails.
  double as_number() const;
  bool is_number() const { return is_int() || is_double(); }

  const Storage& storage() const { return storage_; }

  std::string to_string() const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.storage_ == b.storage_;
  }
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }

 private:
  Storage storage_;
};

}  // namespace df::event
