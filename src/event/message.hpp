// Messages and per-phase input bundles.
//
// A Message is a value arriving on one input port of a vertex during one
// phase. When a vertex-phase pair (v, p) becomes *ready*, all messages it
// will ever receive for phase p are known (its predecessors have finished
// phase p), so the bundle is sealed and travels with the run-queue item; the
// module then executes outside the global lock (paper Listing 1, statement 3
// precedes statement 4).
#pragma once

#include <cstdint>
#include <vector>

#include "event/value.hpp"
#include "graph/dag.hpp"

namespace df::event {

struct Message {
  graph::Port port = 0;
  Value value;

  friend bool operator==(const Message&, const Message&) = default;
};

/// All messages for one (vertex, phase). Ports are unique within a bundle.
using InputBundle = std::vector<Message>;

/// An event injected from outside the system (a sensor reading): it targets
/// a source vertex's input port for the phase being started.
struct ExternalEvent {
  graph::VertexId vertex = 0;
  graph::Port port = 0;
  Value value;
};

}  // namespace df::event
