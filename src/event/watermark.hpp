// Out-of-order event handling (paper section 6, future work).
//
// "In reality, clocks in sensors are noisy and message delays may be
// significant and random. The fusion engine must wait long enough after
// time t to ensure that sensor data taken at time t arrives with high
// probability."
//
// WatermarkAssembler implements that waiting policy: events arrive in
// *arrival* order carrying their original (generation) timestamps; a phase
// for generation time t is closed only when the watermark
// (max arrival time seen - wait) passes t. Events that arrive after their
// phase closed are counted as late and dropped — the false-negative risk
// the paper's error analysis would quantify; bench_watermark sweeps the
// wait against a random delay model to measure exactly that trade-off.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <vector>

#include "event/phase.hpp"
#include "support/rng.hpp"

namespace df::event {

/// An event as it reaches the fusion engine over a noisy network: the
/// generation timestamp plus the (later) arrival time.
struct DelayedEvent {
  Timestamp generated = 0;
  Timestamp arrived = 0;
  ExternalEvent event;
};

/// Applies a random delay model to an in-order stream of generated events,
/// producing the arrival-ordered stream the engine actually observes.
class DelayModel {
 public:
  /// Delays are base + Exponential(1/mean_extra) time units.
  DelayModel(Timestamp base_delay, double mean_extra_delay,
             std::uint64_t seed);

  DelayedEvent delay(const TimestampedEvent& event);

  /// Sorts a batch of delayed events into arrival order (stable on ties).
  static std::vector<DelayedEvent> arrival_order(
      std::vector<DelayedEvent> events);

 private:
  Timestamp base_delay_;
  double mean_extra_delay_;
  support::Rng rng_;
};

/// Groups delayed events into phases by *generation* timestamp, closing a
/// phase once the watermark passes it. Feed events in arrival order.
class WatermarkAssembler {
 public:
  /// `wait` is how long past a generation time the assembler holds the
  /// phase open (the paper's "wait long enough after time t").
  explicit WatermarkAssembler(Timestamp wait);

  /// Feeds one arrival. Returns every phase that became closed (in
  /// generation-time order). Events for already-closed times are dropped
  /// and counted as late.
  std::vector<PhaseBatch> feed(const DelayedEvent& event);

  /// Closes and returns all pending phases (end of stream).
  std::vector<PhaseBatch> flush();

  std::uint64_t late_events() const { return late_events_; }
  std::uint64_t accepted_events() const { return accepted_events_; }
  PhaseId phases_closed() const { return next_phase_ - 1; }

 private:
  Timestamp wait_;
  Timestamp watermark_ = std::numeric_limits<Timestamp>::min();
  Timestamp closed_through_ = std::numeric_limits<Timestamp>::min();
  std::map<Timestamp, std::vector<ExternalEvent>> pending_;
  PhaseId next_phase_ = 1;
  std::uint64_t late_events_ = 0;
  std::uint64_t accepted_events_ = 0;

  std::vector<PhaseBatch> close_up_to(Timestamp through);
};

}  // namespace df::event
