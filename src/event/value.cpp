#include "event/value.hpp"

#include <sstream>

#include "support/check.hpp"
#include "support/table.hpp"

namespace df::event {

bool Value::as_bool() const {
  DF_CHECK(is_bool(), "value is not a bool: ", to_string());
  return std::get<bool>(storage_);
}

std::int64_t Value::as_int() const {
  DF_CHECK(is_int(), "value is not an int: ", to_string());
  return std::get<std::int64_t>(storage_);
}

double Value::as_double() const {
  DF_CHECK(is_double(), "value is not a double: ", to_string());
  return std::get<double>(storage_);
}

const std::string& Value::as_string() const {
  DF_CHECK(is_string(), "value is not a string: ", to_string());
  return std::get<std::string>(storage_);
}

const std::vector<double>& Value::as_vector() const {
  DF_CHECK(is_vector(), "value is not a vector: ", to_string());
  return std::get<std::vector<double>>(storage_);
}

double Value::as_number() const {
  if (is_int()) {
    return static_cast<double>(std::get<std::int64_t>(storage_));
  }
  DF_CHECK(is_double(), "value is not numeric: ", to_string());
  return std::get<double>(storage_);
}

std::string Value::to_string() const {
  std::ostringstream out;
  std::visit(
      [&out](const auto& v) {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, std::monostate>) {
          out << "<empty>";
        } else if constexpr (std::is_same_v<T, bool>) {
          out << (v ? "true" : "false");
        } else if constexpr (std::is_same_v<T, std::int64_t>) {
          out << v;
        } else if constexpr (std::is_same_v<T, double>) {
          out << support::Table::num(v, 6);
        } else if constexpr (std::is_same_v<T, std::string>) {
          out << '"' << v << '"';
        } else {
          out << '[';
          for (std::size_t i = 0; i < v.size(); ++i) {
            if (i != 0) {
              out << ", ";
            }
            out << support::Table::num(v[i], 6);
          }
          out << ']';
        }
      },
      storage_);
  return out.str();
}

}  // namespace df::event
