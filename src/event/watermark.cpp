#include "event/watermark.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace df::event {

DelayModel::DelayModel(Timestamp base_delay, double mean_extra_delay,
                       std::uint64_t seed)
    : base_delay_(base_delay), mean_extra_delay_(mean_extra_delay),
      rng_(seed) {
  DF_CHECK(base_delay >= 0, "base delay must be non-negative");
  DF_CHECK(mean_extra_delay >= 0.0, "mean extra delay must be non-negative");
}

DelayedEvent DelayModel::delay(const TimestampedEvent& event) {
  Timestamp extra = 0;
  if (mean_extra_delay_ > 0.0) {
    extra = static_cast<Timestamp>(
        std::llround(rng_.next_exponential(1.0 / mean_extra_delay_)));
  }
  return DelayedEvent{event.timestamp,
                      event.timestamp + base_delay_ + extra, event.event};
}

std::vector<DelayedEvent> DelayModel::arrival_order(
    std::vector<DelayedEvent> events) {
  std::stable_sort(events.begin(), events.end(),
                   [](const DelayedEvent& a, const DelayedEvent& b) {
                     return a.arrived < b.arrived;
                   });
  return events;
}

WatermarkAssembler::WatermarkAssembler(Timestamp wait) : wait_(wait) {
  DF_CHECK(wait >= 0, "watermark wait must be non-negative");
}

std::vector<PhaseBatch> WatermarkAssembler::feed(const DelayedEvent& event) {
  if (event.generated <= closed_through_ &&
      closed_through_ != std::numeric_limits<Timestamp>::min()) {
    ++late_events_;  // its phase has already been handed to the engine
    return {};
  }
  pending_[event.generated].push_back(event.event);
  ++accepted_events_;
  watermark_ = std::max(watermark_, event.arrived);
  // A generation time t is safe to close once watermark - wait >= t.
  return close_up_to(watermark_ - wait_);
}

std::vector<PhaseBatch> WatermarkAssembler::flush() {
  return close_up_to(std::numeric_limits<Timestamp>::max());
}

std::vector<PhaseBatch> WatermarkAssembler::close_up_to(Timestamp through) {
  std::vector<PhaseBatch> closed;
  while (!pending_.empty() && pending_.begin()->first <= through) {
    auto node = pending_.extract(pending_.begin());
    closed.push_back(
        PhaseBatch{next_phase_++, node.key(), std::move(node.mapped())});
    closed_through_ = std::max(closed_through_, node.key());
  }
  if (through != std::numeric_limits<Timestamp>::max() &&
      (closed_through_ == std::numeric_limits<Timestamp>::min() ||
       closed_through_ < through)) {
    // Remember that everything at or before `through` is closed, even if no
    // events were pending there, so stragglers still count as late.
    closed_through_ = std::max(closed_through_, through);
  }
  return closed;
}

}  // namespace df::event
