// Phases and the timestamp -> phase mapping (paper section 2).
//
// "Assume that events arrive at times t1, t2, t3, ...; all events that
// arrive at the same time are considered part of the same phase. Phases are
// indexed sequentially." PhaseAssembler implements exactly that: it consumes
// timestamped external events and groups runs of equal timestamps into
// consecutively numbered phases.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "event/message.hpp"

namespace df::event {

/// Phases are numbered 1, 2, 3, ... (0 means "before the first phase").
using PhaseId = std::uint64_t;

/// Timestamps are arbitrary non-decreasing integers (e.g. microseconds).
using Timestamp = std::int64_t;

struct TimestampedEvent {
  Timestamp timestamp = 0;
  ExternalEvent event;
};

/// One assembled phase: its id, the originating timestamp, and the external
/// events that arrived at that instant.
struct PhaseBatch {
  PhaseId phase = 0;
  Timestamp timestamp = 0;
  std::vector<ExternalEvent> events;
};

/// Groups a non-decreasing stream of timestamped events into phases.
///
/// The paper assumes no delivery delay and perfect clocks, so a phase can be
/// closed as soon as an event with a strictly later timestamp arrives (or the
/// stream is flushed). Out-of-order timestamps are rejected — handling clock
/// drift is explicitly out of scope in the paper (section 6).
class PhaseAssembler {
 public:
  /// Feeds one event. Returns a completed batch when the event's timestamp
  /// strictly exceeds the pending one (the pending phase closes).
  std::optional<PhaseBatch> feed(const TimestampedEvent& event);

  /// Closes and returns the pending phase, if any.
  std::optional<PhaseBatch> flush();

  /// Number of phases fully assembled so far.
  PhaseId completed_phases() const { return next_phase_ - 1; }

  bool has_pending() const { return pending_.has_value(); }

 private:
  std::optional<PhaseBatch> pending_;
  PhaseId next_phase_ = 1;
};

}  // namespace df::event
