#include "core/executor.hpp"

#include "support/check.hpp"

namespace df::core {

namespace {

/// PhaseContext implementation shared by all executors. Input lookups scan
/// the bundle linearly: fan-in is small in practice and the bundle is
/// already in cache.
class ContextImpl final : public model::PhaseContext {
 public:
  ContextImpl(ProgramInstance& instance, std::uint32_t index,
              event::PhaseId phase, const event::InputBundle& bundle)
      : runtime_(instance.runtime(index)), phase_(phase), bundle_(bundle) {
    // Apply the bundle to the latest-value table first, so latest() already
    // reflects this phase (messages later in the bundle win per port).
    for (const event::Message& msg : bundle_) {
      if (msg.port >= runtime_.latest.size()) {
        runtime_.latest.resize(msg.port + 1);
        runtime_.has_latest.resize(msg.port + 1, false);
      }
      runtime_.latest[msg.port] = msg.value;
      runtime_.has_latest[msg.port] = true;
    }
  }

  event::PhaseId phase() const override { return phase_; }

  bool has_input(graph::Port port) const override {
    for (const event::Message& msg : bundle_) {
      if (msg.port == port) {
        return true;
      }
    }
    return false;
  }

  const event::Value& input(graph::Port port) const override {
    const event::Value* found = nullptr;
    for (const event::Message& msg : bundle_) {
      if (msg.port == port) {
        found = &msg.value;  // last message on the port wins
      }
    }
    DF_CHECK(found != nullptr, "no input on port ", port, " this phase");
    return *found;
  }

  bool has_latest(graph::Port port) const override {
    return port < runtime_.has_latest.size() && runtime_.has_latest[port];
  }

  const event::Value& latest(graph::Port port) const override {
    DF_CHECK(has_latest(port), "port ", port, " has never received a value");
    return runtime_.latest[port];
  }

  void emit(graph::Port port, event::Value value) override {
    emissions_.push_back(event::Message{port, std::move(value)});
  }

  support::Rng& rng() override { return runtime_.rng; }

  std::vector<event::Message> take_emissions() {
    return std::move(emissions_);
  }

 private:
  VertexRuntime& runtime_;
  event::PhaseId phase_;
  const event::InputBundle& bundle_;
  std::vector<event::Message> emissions_;
};

}  // namespace

ExecutionResult execute_vertex(ProgramInstance& instance, std::uint32_t index,
                               event::PhaseId phase,
                               const event::InputBundle& bundle) {
  ContextImpl ctx(instance, index, phase, bundle);
  instance.runtime(index).module->on_phase(ctx);

  ExecutionResult result;
  result.emissions = ctx.take_emissions();
  const graph::VertexId original = instance.original_id(index);
  for (const event::Message& msg : result.emissions) {
    const std::vector<Route>& routes = instance.routes(index, msg.port);
    if (routes.empty()) {
      // Dangling port: sink output, read from outside the fusion system.
      result.sink_records.push_back(
          SinkRecord{phase, original, msg.port, msg.value});
      continue;
    }
    for (const Route& route : routes) {
      result.deliveries.push_back(ExecutionResult::Delivery{
          route.to_index, route.to_port, msg.value});
    }
  }
  return result;
}

}  // namespace df::core
