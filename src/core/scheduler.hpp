// The paper's scheduling state machine (section 3.1.2, Listings 1 and 2).
//
// The Scheduler maintains, for every active phase p, the paper's data
// structures:
//
//   x_p       highest index such that all vertices indexed <= x_p have
//             finished phase p, clamped to x_{p-1} (no overtaking);
//   partial   vertex-phase pairs with at least one message but not yet a
//             full set of inputs (eqn 9): msg(v,p) and v > m(x_p);
//   full      pairs with a full set of inputs (eqn 7): msg(v,p) and
//             x_p < v <= m(x_p);
//   ready     the subset of full with the minimum phase per vertex (eqn 8);
//             pairs enter ready exactly once and leave when executed.
//
// The Scheduler is deliberately *passive*: it has no threads and no internal
// lock. The Engine calls it while holding the single global mutex (matching
// the paper's lock/unlock discipline); unit and property tests call it
// single-threaded and check the set definitions directly.
//
// Internal vertex indices 1..N follow a satisfactory numbering, so
//   * edges go from lower to higher index,
//   * sources are exactly 1..m(0),
//   * x_p < min(pending_p) - pairs at or below the frontier are finished.
//
// Because x_p <= x_{p-1}, phases complete in order, the set of active phases
// is a contiguous window, and completed state can be retired from the front.
//
// Representation (see DESIGN.md, "Flat scheduler state"): everything the
// scheduler touches per transition lives in dense, index-addressed storage.
// Each active phase occupies a slot in a ring of preallocated PhaseSlots;
// pending and partial are bitsets over vertex indices with monotone scan
// cursors (the minimum pending vertex and the promotion bound only move
// forward within a phase's lifetime), and input bundles are pooled vectors
// referenced by index from a per-slot bundle table. Steady-state transitions
// perform zero heap allocations: callers hand executed bundles back so
// their capacity recirculates through the pool.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/delivery.hpp"
#include "core/scheduler_state.hpp"
#include "event/message.hpp"
#include "event/phase.hpp"
#include "graph/numbering.hpp"

namespace df::core {

class Scheduler {
 public:
  /// A vertex-phase pair that just entered the ready set, with its sealed
  /// input bundle. The caller must execute it exactly once.
  struct ReadyPair {
    std::uint32_t vertex = 0;  // internal index 1..N
    event::PhaseId phase = 0;
    event::InputBundle bundle;
  };

  /// A message produced by an execution, addressed by internal index. The
  /// same type executors emit (core::Delivery), so executor output feeds
  /// the scheduler without a per-message copy.
  using Delivery = core::Delivery;

  /// One executed pair whose application to the sets has been deferred: the
  /// arguments of a finish_execution call, recorded by a worker outside the
  /// global lock. `deliveries` is moved straight from the executor's output
  /// and `recycled` is the executed pair's input bundle (donated back to
  /// the pool on application). See DESIGN.md, "Staged delivery rings".
  struct StagedFinish {
    std::uint32_t vertex = 0;
    event::PhaseId phase = 0;
    std::vector<Delivery> deliveries;
    event::InputBundle recycled;
  };

  /// Set-membership snapshot for tracing (Figure 3 reproductions) and for
  /// property tests that re-evaluate the set definitions from scratch.
  struct Snapshot {
    struct Pair {
      std::uint32_t vertex;
      event::PhaseId phase;

      friend bool operator==(const Pair&, const Pair&) = default;
    };
    event::PhaseId pmax = 0;
    event::PhaseId completed_through = 0;
    /// (phase, x_p) for each active phase, in phase order.
    std::vector<std::pair<event::PhaseId, std::uint32_t>> x;
    std::vector<Pair> partial;
    std::vector<Pair> full;   // includes pairs currently in ready
    std::vector<Pair> ready;  // issued but not yet finished

    friend bool operator==(const Snapshot&, const Snapshot&) = default;
  };

  /// Sentinel for the `signal_sources` constructor parameter: every vertex
  /// in 1..m(0) receives the per-phase signal (the whole-program default).
  static constexpr std::uint32_t kAllSources = 0xffffffffu;

  /// `m` is the numbering's m-vector (m[0..N]); n = m.size() - 1.
  /// `signal_sources` is the number of vertices (a prefix 1..S of the
  /// index space, S <= m(0)) that receive the implicit per-phase signal in
  /// start_phase. The default covers all of m(0) — correct for a whole
  /// program, where "no in-graph predecessors" and "driven by the
  /// environment" coincide. For a *block-local* scheduler (transport
  /// two-level mode) they diverge: m_loc(0) counts every vertex with no
  /// in-block predecessor, but only the block's true program sources (the
  /// global 1..m(0) range clipped to the block — a prefix of the block)
  /// are environment-driven; the rest wake up only when remote deliveries
  /// are injected (the start_phase `injected` span).
  explicit Scheduler(std::vector<std::uint32_t> m,
                     std::uint32_t signal_sources = kAllSources);

  /// Environment side (Listing 2 loop body): starts phase pmax+1. Source
  /// vertex i (1-based source ordinal, internal index == ordinal) receives
  /// source_bundles[i-1] plus the implicit phase signal. Appends pairs that
  /// became ready to `out_ready` (which is NOT cleared — the caller owns and
  /// reuses the buffer). `p` must equal pmax() + 1. The bundles are moved
  /// from; the span's backing vector can be reused by the caller.
  void start_phase(event::PhaseId p, std::span<event::InputBundle> bundles,
                   std::vector<ReadyPair>& out_ready);

  /// Block-scoped form: additionally injects `injected` (deliveries from
  /// outside this scheduler's index space, e.g. reassembled remote frames)
  /// into phase p as if a virtual index-0 vertex had finished first —
  /// every target enters partial exactly like an in-graph delivery, before
  /// any local pair of the phase executes. Targets must lie above the
  /// signal-source prefix (remote traffic never addresses a true source).
  /// When the phase starts with no signal sources, or when injection may
  /// have completed vertices' bundles (all-remote-predecessor vertices),
  /// the frontier/promotion/retire/collect pass runs immediately so such
  /// pairs are issued — and a phase with no work at all retires on the
  /// spot instead of waiting for a finish_execution that will never come.
  void start_phase(event::PhaseId p, std::span<event::InputBundle> bundles,
                   std::span<Delivery> injected,
                   std::vector<ReadyPair>& out_ready);

  /// Worker side (Listing 1, statements 4-31): records that (vertex, p)
  /// finished executing and produced `deliveries` (moved from). Appends
  /// pairs that became ready to `out_ready` (not cleared). `recycled` is the
  /// executed pair's input bundle, donated back to the pool so steady-state
  /// bookkeeping allocates nothing; pass {} if unavailable.
  void finish_execution(std::uint32_t vertex, event::PhaseId p,
                        std::span<Delivery> deliveries,
                        event::InputBundle recycled,
                        std::vector<ReadyPair>& out_ready);

  /// Applies a whole batch of staged finishes, then runs the frontier
  /// recomputation, promotion scan, retirement, and ready collection once
  /// for the entire batch instead of once per pair. Equivalent to calling
  /// finish_execution for each entry in order (the issued ready set and all
  /// bundle contents are identical — the batched frontier only lags inside
  /// the call, never at return), but the per-pair critical-section cost
  /// collapses to the delivery bit-flips. Entries are moved from. Every
  /// staged pair must still be outstanding (issued, not finished); batches
  /// may mix phases in any order.
  void finish_execution_batch(std::span<StagedFinish> batch,
                              std::vector<ReadyPair>& out_ready);

  event::PhaseId pmax() const { return pmax_; }
  /// All phases <= completed_through() have fully finished (x_p = N).
  event::PhaseId completed_through() const { return completed_through_; }
  bool all_started_phases_complete() const { return ring_count_ == 0; }
  std::size_t active_phase_count() const { return ring_count_; }

  /// x_p for any phase <= pmax: N for retired phases, 0 if never started.
  std::uint32_t x(event::PhaseId p) const;

  /// Bundle-pool footprint (slots ever created); flat at steady state.
  std::size_t bundle_pool_slots() const { return pool_.slot_count(); }

  std::uint32_t n() const { return n_; }
  /// Number of vertices receiving the per-phase signal (== m(0) unless a
  /// block-local signal-source prefix was configured).
  std::uint32_t source_count() const { return signal_sources_; }

  /// Pre-sizes every internal structure for a run with at most
  /// `max_inflight_phases` active phases and up to `live_bundles` pairs
  /// accumulating input simultaneously, each expecting around
  /// `bundle_capacity` messages. Purely a warm-up: transitions behave
  /// identically but reach the zero-allocation steady state immediately
  /// instead of growing into it. Call before the first start_phase.
  void reserve_steady_state(std::size_t max_inflight_phases,
                            std::size_t live_bundles,
                            std::size_t bundle_capacity = 4);

  Snapshot snapshot() const;

  /// Serializes the complete scheduler state — active-phase ring, pending/
  /// partial bitsets, cursors, per-vertex full-phase FIFOs and issued marks,
  /// and every live (partial or full-but-unissued) input bundle — into a
  /// self-validating image ("DFSC" magic, version, FNV-1a trailer; see
  /// core/checkpoint.hpp). Issued-but-unfinished pairs are recorded by
  /// membership only: their sealed bundles travel with the caller's
  /// ReadyPairs, which the caller must re-present after restore.
  std::vector<std::uint8_t> snapshot_state();

  /// Rebuilds the state from a snapshot_state image. Must be called on a
  /// fresh scheduler (no phase started) constructed with the same m-vector
  /// and signal-source prefix; both are validated against the image, as are
  /// the magic, version, checksum, and internal set counts. Any failure
  /// throws support::check_error and leaves the scheduler unspecified —
  /// discard it and fall back to an older image.
  void restore_state(const std::vector<std::uint8_t>& image);

 private:
  // BundlePool, VertexSchedState, the bundle-table sentinel and the bitset
  // helpers are shared with the sharded scheduler; see
  // core/scheduler_state.hpp for their documentation.

  /// Per active phase state, flat. `pending` is partial ∪ full ∪ ready
  /// (vertices not yet finished for this phase) as a bitset; it drives the
  /// x computation (min pending - 1) through a forward-only word cursor.
  /// `partial` is a bitset of vertices accumulating messages; promotion
  /// scans the window (promoted_bound, m(x)] exactly once per phase because
  /// both bounds are monotone. `bundle` maps vertex -> pooled bundle index
  /// for pairs currently partial or full-but-unissued.
  struct PhaseSlot {
    event::PhaseId id = 0;
    std::uint32_t x = 0;
    std::uint32_t pending_count = 0;
    std::uint32_t partial_count = 0;
    std::uint32_t min_pending_word = 0;  // scan hint; never moves backward
    std::uint32_t promoted_bound = 0;    // vertices <= this already promoted
    std::vector<std::uint64_t> pending_bits;
    std::vector<std::uint64_t> partial_bits;
    std::vector<std::uint32_t> bundle;  // [0..n], kNoBundle when absent
  };

  using VertexState = VertexSchedState;

  std::vector<std::uint32_t> m_;
  std::uint32_t n_;
  std::uint32_t signal_sources_;  // prefix 1..S gets the phase signal
  std::uint32_t words_;  // bitset words per phase slot
  event::PhaseId pmax_ = 0;
  event::PhaseId completed_through_ = 0;

  /// Ring of phase slots: the active phases are ring_[(ring_head_ + i) %
  /// ring_.size()] for i in [0, ring_count_), oldest first. Slots keep
  /// their arrays across reuse; retiring a phase resets them in place.
  std::vector<PhaseSlot> ring_;
  std::size_t ring_head_ = 0;
  std::size_t ring_count_ = 0;
  event::PhaseId first_active_ = 0;  // id of the oldest active phase

  std::vector<VertexState> vertices_;  // [1..n], slot 0 unused
  BundlePool pool_;
  std::vector<std::uint32_t> affected_;  // reusable scratch for transitions

  PhaseSlot& slot_at(std::size_t ordinal) {
    return ring_[(ring_head_ + ordinal) % ring_.size()];
  }
  const PhaseSlot& slot_at(std::size_t ordinal) const {
    return ring_[(ring_head_ + ordinal) % ring_.size()];
  }
  PhaseSlot& phase_slot(event::PhaseId p);
  const PhaseSlot* find_phase(event::PhaseId p) const;
  PhaseSlot& push_phase(event::PhaseId p);

  /// Statements 4-11 of Listing 1 plus the pending-bit clear: everything
  /// finish_execution does for one pair *before* the frontier/promotion/
  /// collect pass. Safe to run repeatedly before a single deferred pass:
  /// the delivery invariants (recipient above the promotion bound, no
  /// insertion below the pending minimum) are statements about actual set
  /// membership and hold regardless of how far x lags, because x and the
  /// promotion bound only ever under-approximate between passes.
  void apply_finish(std::uint32_t vertex, event::PhaseId p,
                    std::span<Delivery> deliveries,
                    event::InputBundle recycled);

  /// Smallest pending vertex; advances the slot's word cursor (valid because
  /// insertions never land below the current minimum: deliveries go to
  /// higher indices than the finishing vertex, which is itself pending).
  std::uint32_t min_pending(PhaseSlot& slot);

  /// Statements 1.12-1.23: recompute x_i for all active phases i >= from,
  /// clamping to the previous phase's x.
  void update_x_from(event::PhaseId from);

  /// Statements 1.24-1.26: move partial pairs with vertex <= m(x_q) into
  /// full for every active phase q >= from; appends affected vertices.
  void promote_newly_full(event::PhaseId from);

  /// Statements 1.27-1.30 / 2.16-2.19: for each affected vertex (sorted,
  /// deduplicated), if it has no issued pair and a non-empty full set,
  /// issue its minimum phase.
  void collect_ready(std::vector<ReadyPair>& out_ready);

  /// Retires completed phases from the front of the window.
  void retire_completed();
};

}  // namespace df::core
