// The paper's scheduling state machine (section 3.1.2, Listings 1 and 2).
//
// The Scheduler maintains, for every active phase p, the paper's data
// structures:
//
//   x_p       highest index such that all vertices indexed <= x_p have
//             finished phase p, clamped to x_{p-1} (no overtaking);
//   partial   vertex-phase pairs with at least one message but not yet a
//             full set of inputs (eqn 9): msg(v,p) and v > m(x_p);
//   full      pairs with a full set of inputs (eqn 7): msg(v,p) and
//             x_p < v <= m(x_p);
//   ready     the subset of full with the minimum phase per vertex (eqn 8);
//             pairs enter ready exactly once and leave when executed.
//
// The Scheduler is deliberately *passive*: it has no threads and no internal
// lock. The Engine calls it while holding the single global mutex (matching
// the paper's lock/unlock discipline); unit and property tests call it
// single-threaded and check the set definitions directly.
//
// Internal vertex indices 1..N follow a satisfactory numbering, so
//   * edges go from lower to higher index,
//   * sources are exactly 1..m(0),
//   * x_p < min(pending_p) - pairs at or below the frontier are finished.
//
// Because x_p <= x_{p-1}, phases complete in order, the set of active phases
// is a contiguous window, and completed state can be retired from the front.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "event/message.hpp"
#include "event/phase.hpp"
#include "graph/numbering.hpp"

namespace df::core {

class Scheduler {
 public:
  /// A vertex-phase pair that just entered the ready set, with its sealed
  /// input bundle. The caller must execute it exactly once.
  struct ReadyPair {
    std::uint32_t vertex = 0;  // internal index 1..N
    event::PhaseId phase = 0;
    event::InputBundle bundle;
  };

  /// A message produced by an execution, addressed by internal index.
  struct Delivery {
    std::uint32_t to_index = 0;
    graph::Port to_port = 0;
    event::Value value;
  };

  /// Set-membership snapshot for tracing (Figure 3 reproductions) and for
  /// property tests that re-evaluate the set definitions from scratch.
  struct Snapshot {
    struct Pair {
      std::uint32_t vertex;
      event::PhaseId phase;
    };
    event::PhaseId pmax = 0;
    event::PhaseId completed_through = 0;
    /// (phase, x_p) for each active phase, in phase order.
    std::vector<std::pair<event::PhaseId, std::uint32_t>> x;
    std::vector<Pair> partial;
    std::vector<Pair> full;   // includes pairs currently in ready
    std::vector<Pair> ready;  // issued but not yet finished
  };

  /// `m` is the numbering's m-vector (m[0..N]); n = m.size() - 1.
  explicit Scheduler(std::vector<std::uint32_t> m);

  /// Environment side (Listing 2 loop body): starts phase pmax+1. Source
  /// vertex i (1-based source ordinal, internal index == ordinal) receives
  /// source_bundles[i-1] plus the implicit phase signal. Returns pairs that
  /// became ready. `p` must equal pmax() + 1.
  std::vector<ReadyPair> start_phase(event::PhaseId p,
                                     std::vector<event::InputBundle> bundles);

  /// Worker side (Listing 1, statements 4-31): records that (vertex, p)
  /// finished executing and produced `deliveries`. Returns pairs that became
  /// ready as a result.
  std::vector<ReadyPair> finish_execution(std::uint32_t vertex,
                                          event::PhaseId p,
                                          std::vector<Delivery> deliveries);

  event::PhaseId pmax() const { return pmax_; }
  /// All phases <= completed_through() have fully finished (x_p = N).
  event::PhaseId completed_through() const { return completed_through_; }
  bool all_started_phases_complete() const { return phases_.empty(); }
  std::size_t active_phase_count() const { return phases_.size(); }

  /// x_p for any phase <= pmax: N for retired phases, 0 if never started.
  std::uint32_t x(event::PhaseId p) const;

  std::uint32_t n() const { return n_; }
  std::uint32_t source_count() const { return m_[0]; }

  Snapshot snapshot() const;

 private:
  /// Per active phase state. partial maps vertex -> accumulated bundle;
  /// pending is partial ∪ full ∪ ready (vertices not yet finished for this
  /// phase), which drives the x computation (min pending - 1).
  struct PhaseState {
    event::PhaseId id = 0;
    std::uint32_t x = 0;
    std::map<std::uint32_t, event::InputBundle> partial;
    std::set<std::uint32_t> pending;
  };

  /// Per vertex: full pairs not yet issued to the run queue (phase ->
  /// bundle), plus the at-most-one issued-but-unfinished ready pair.
  struct VertexState {
    std::map<event::PhaseId, event::InputBundle> full;
    bool in_ready = false;
    event::PhaseId ready_phase = 0;
  };

  std::vector<std::uint32_t> m_;
  std::uint32_t n_;
  event::PhaseId pmax_ = 0;
  event::PhaseId completed_through_ = 0;
  std::deque<PhaseState> phases_;  // contiguous, front = oldest active
  std::vector<VertexState> vertices_;  // [1..n], slot 0 unused

  PhaseState& phase_state(event::PhaseId p);
  const PhaseState* find_phase(event::PhaseId p) const;

  /// Statements 1.12-1.23: recompute x_i for all active phases i >= from,
  /// clamping to the previous phase's x.
  void update_x_from(event::PhaseId from);

  /// Statements 1.24-1.26: move partial pairs with vertex <= m(x_q) into
  /// full for every active phase q >= from; collects affected vertices.
  void promote_newly_full(event::PhaseId from,
                          std::set<std::uint32_t>& affected);

  /// Statements 1.27-1.30 / 2.16-2.19: for each affected vertex, if it has
  /// no issued pair and a non-empty full set, issue its minimum phase.
  std::vector<ReadyPair> collect_ready(const std::set<std::uint32_t>& affected);

  /// Retires completed phases from the front of the window.
  void retire_completed();
};

}  // namespace df::core
