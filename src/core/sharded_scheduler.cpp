#include "core/sharded_scheduler.hpp"

#include <algorithm>
#include <bit>

#include "support/check.hpp"

namespace df::core {

ShardedScheduler::ShardedScheduler(std::vector<std::uint32_t> m,
                                   graph::ShardMap shards,
                                   std::size_t capacity,
                                   std::uint32_t signal_sources)
    : m_(std::move(m)),
      shards_(std::move(shards)),
      n_(static_cast<std::uint32_t>(m_.size() - 1)),
      signal_sources_(signal_sources == Scheduler::kAllSources
                          ? m_[0]
                          : signal_sources),
      capacity_(capacity),
      locks_(shards_.shard_count()),
      global_slots_(capacity),
      x_pub_(std::make_unique<conc::AtomicFrontier[]>(capacity)) {
  DF_CHECK(!m_.empty(), "m vector must have at least m(0)");
  DF_CHECK(m_[n_] == n_, "m(N) != N — numbering is not satisfactory");
  DF_CHECK(signal_sources_ <= m_[0],
           "signal sources must be a prefix of 1..m(0)");
  DF_CHECK(capacity_ >= 1, "need room for at least one in-flight phase");
  DF_CHECK(shards_.vertex_count() == n_,
           "shard map does not cover internal indices 1..N");
  shard_state_.resize(shards_.shard_count());
  for (std::size_t k = 0; k < shards_.shard_count(); ++k) {
    Shard& shard = shard_state_[k];
    shard.begin = shards_.begin(k);
    shard.end = shards_.end(k);
    shard.word_lo = shard.begin >> 6;
    shard.words = (shard.end >> 6) - shard.word_lo + 1;
    shard.slots.resize(capacity_);
    shard.vertices.resize(shard.end - shard.begin + 1);
  }
}

ShardedScheduler::ShardSeg& ShardedScheduler::ensure_seg(Shard& shard,
                                                         std::size_t slot) {
  ShardSeg& seg = shard.slots[slot];
  if (!seg.allocated()) {
    seg.pending_bits.assign(shard.words, 0);
    seg.partial_bits.assign(shard.words, 0);
    seg.bundle.assign(shard.end - shard.begin + 1, kNoBundle);
    seg.pending_count = 0;
    seg.partial_count = 0;
    seg.min_pending_word = 0;
    seg.promoted_through = shard.begin - 1;
  }
  return seg;
}

void ShardedScheduler::reserve_steady_state(std::size_t live_bundles,
                                            std::size_t bundle_capacity) {
  conc::MutexLock wl(window_mutex_);
  DF_CHECK(pmax_ == 0,
           "reserve_steady_state must precede the first start_phase");
  for (std::size_t s = 0; s < shard_count(); ++s) {
    Shard& shard = shard_state_[s];
    conc::MutexLock sl(locks_.at(s));
    for (std::size_t slot = 0; slot < capacity_; ++slot) {
      ensure_seg(shard, slot);
    }
    for (VertexSchedState& vs : shard.vertices) {
      vs.full_phases.reserve(capacity_ + 1);
    }
    shard.affected.reserve(shard.end - shard.begin + 1);
    // The pool share is proportional to the shard's vertex count: bundles
    // never migrate between shards (a pair's bundle lives with its vertex).
    const std::size_t share =
        live_bundles * (shard.end - shard.begin + 1) / n_ + 1;
    shard.pool.prewarm(share, bundle_capacity);
  }
}

std::uint32_t ShardedScheduler::x(event::PhaseId p) const {
  if (p == 0 || p <= completed_through()) {
    return n_;  // x_0 = N by definition; retired phases are complete
  }
  const GlobalSlot& gs = global_slots_[p % capacity_];
  if (gs.id.load(std::memory_order_acquire) != p) {
    return 0;  // never started (or racing a slot transition: safe 0)
  }
  return x_pub_[p % capacity_].get();
}

std::size_t ShardedScheduler::bundle_pool_slots() {
  std::size_t total = 0;
  for (std::size_t s = 0; s < shard_count(); ++s) {
    conc::MutexLock sl(locks_.at(s));
    total += shard_state_[s].pool.slot_count();
  }
  return total;
}

void ShardedScheduler::issue_if_ready(Shard& shard, std::uint32_t v,
                                      std::vector<ReadyPair>& out_ready) {
  VertexSchedState& vs = shard.vertices[v - shard.begin];
  if (vs.in_ready || vs.full_empty()) {
    return;  // at most one issued pair per vertex; phases in order
  }
  const event::PhaseId q = vs.full_front();
  ++vs.full_head;
  if (vs.full_empty()) {
    vs.full_phases.clear();  // keeps capacity
    vs.full_head = 0;
  }
  ShardSeg& seg = shard.slots[slot_index(q)];
  const std::uint32_t idx = seg.bundle[v - shard.begin];
  DF_CHECK(idx != kNoBundle, "full pair has no bundle");
  seg.bundle[v - shard.begin] = kNoBundle;
  vs.in_ready = true;
  vs.ready_phase = q;
  out_ready.push_back(ReadyPair{v, q, shard.pool.take(idx)});
}

void ShardedScheduler::start_phase(event::PhaseId p,
                                   std::span<event::InputBundle> bundles,
                                   std::vector<ReadyPair>& out_ready) {
  start_phase(p, bundles, std::span<Delivery>{}, out_ready);
}

bool ShardedScheduler::start_phase(event::PhaseId p,
                                   std::span<event::InputBundle> bundles,
                                   std::span<Delivery> injected,
                                   std::vector<ReadyPair>& out_ready) {
  conc::MutexLock wl(window_mutex_);
  DF_CHECK(p == pmax_ + 1, "phases must start in order: expected ", pmax_ + 1,
           ", got ", p);
  DF_CHECK(bundles.size() == signal_sources_,
           "need one bundle per signal-source vertex");
  DF_CHECK(active_count_ < capacity_,
           "phase window exceeded the sharded scheduler's slot capacity");
  GlobalSlot& gs = global_slots_[slot_index(p)];
  DF_CHECK(gs.id.load(std::memory_order_relaxed) == 0,
           "phase slot still occupied");
  gs.x = 0;
  gs.promoted_bound = 0;
  gs.first_live_shard = 0;
  x_pub_[slot_index(p)].reset(0);
  gs.id.store(p, std::memory_order_release);
  pmax_ = p;
  if (active_count_ == 0) {
    first_active_ = p;
  }
  ++active_count_;
  active_atomic_.store(active_count_, std::memory_order_release);

  // Signal sources are the prefix 1..S (all of 1..m(0) for a full
  // program); walk the shards they span in ascending order, entering pairs
  // into full and issuing the issuable ones — ascending shards means the
  // issue order matches the flat scheduler's ascending-vertex collect.
  const std::uint32_t s_hi_v = signal_sources_;
  for (std::size_t s = 0;
       s < shard_count() && shard_state_[s].begin <= s_hi_v; ++s) {
    Shard& shard = shard_state_[s];
    conc::MutexLock sl(locks_.at(s));
    ShardSeg& seg = ensure_seg(shard, slot_index(p));
    const std::uint32_t hi = std::min(s_hi_v, shard.end);
    for (std::uint32_t v = shard.begin; v <= hi; ++v) {
      VertexSchedState& vs = shard.vertices[v - shard.begin];
      DF_DCHECK(vs.full_empty() || vs.full_phases.back() < p,
                "duplicate phase start");
      seg.bundle[v - shard.begin] = shard.pool.adopt(std::move(bundles[v - 1]));
      seg_set(shard, seg.pending_bits, v);
      ++seg.pending_count;
      vs.push_full(p);
    }
    for (std::uint32_t v = shard.begin; v <= hi; ++v) {
      issue_if_ready(shard, v, out_ready);
    }
  }

  // Remote deliveries enter partial under their target shard's lock, one
  // contiguous run of same-shard targets per acquisition.
  for (std::size_t i = 0; i < injected.size();) {
    const std::uint32_t shard_idx = shards_.shard_of[injected[i].to_index];
    Shard& shard = shard_state_[shard_idx];
    conc::MutexLock sl(locks_.at(shard_idx));
    do {
      Delivery& d = injected[i];
      DF_CHECK(d.to_index > signal_sources_ && d.to_index <= n_,
               "injected delivery must target a non-source block vertex, "
               "got ", d.to_index);
      deliver_locked(shard, slot_index(p), d);
      ++i;
    } while (i < injected.size() &&
             shards_.shard_of[injected[i].to_index] == shard_idx);
  }

  if (!injected.empty() || signal_sources_ == 0) {
    // Block-scoped start: the engine paces collects by applied finishes,
    // and injection applies none — run the pass inline so injected pairs
    // whose predecessors are all remote get promoted and issued, and an
    // empty phase retires instead of waiting forever (see the header).
    return collect_locked(out_ready);
  }
  return false;
}

void ShardedScheduler::deliver_locked(Shard& shard, std::size_t slot,
                                      Delivery& d) {
  ShardSeg& seg = ensure_seg(shard, slot);
  const std::uint32_t v = d.to_index;
  if (!seg_test(shard, seg.partial_bits, v)) {
    // The recipient cannot already be full/ready/executing for this phase
    // (all its predecessors would have to be finished, including the
    // sender), nor sit at or below the promotion bound — same theorem as
    // the flat scheduler's apply_finish, unchanged by sharding.
    DF_DCHECK(!seg_test(shard, seg.pending_bits, v),
              "delivery to a vertex already past partial in this phase");
    DF_DCHECK(v > seg.promoted_through, "delivery below the promotion bound");
    seg.bundle[v - shard.begin] = shard.pool.acquire();
    seg_set(shard, seg.partial_bits, v);
    ++seg.partial_count;
    seg_set(shard, seg.pending_bits, v);
    ++seg.pending_count;
  }
  shard.pool.at(seg.bundle[v - shard.begin])
      .push_back(event::Message{d.to_port, std::move(d.value)});
}

void ShardedScheduler::apply_finish_batch(std::span<StagedFinish> batch) {
  if (batch.empty()) {
    return;
  }
  // Sweep the batch's touched shard range from highest to lowest, taking
  // one shard lock per sweep step. For each staged finish, all delivery
  // insertions happen in passes at or above the finisher's own shard
  // (targets always have higher indices), and the finisher's pending-bit
  // clear runs in its shard's pass *after* its same-shard deliveries — so
  // every message is recorded before the clear that could let a
  // concurrent collector advance the frontier past it. Within one shard,
  // effects apply in batch order, so bundle contents match the flat
  // batched path exactly.
  std::uint32_t s_lo = shards_.shard_of[batch.front().vertex];
  std::uint32_t s_hi = s_lo;
  for (const StagedFinish& f : batch) {
    const std::uint32_t fs = shards_.shard_of[f.vertex];
    s_lo = std::min(s_lo, fs);
    s_hi = std::max(s_hi, fs);
    for (const Delivery& d : f.deliveries) {
      s_hi = std::max(s_hi, shards_.shard_of[d.to_index]);
    }
  }
  for (std::size_t s = s_hi + 1; s-- > s_lo;) {
    const std::uint32_t sv = static_cast<std::uint32_t>(s);
    bool any = false;
    for (const StagedFinish& f : batch) {
      if (shards_.shard_of[f.vertex] == sv) {
        any = true;
        break;
      }
      for (const Delivery& d : f.deliveries) {
        if (shards_.shard_of[d.to_index] == sv) {
          any = true;
          break;
        }
      }
      if (any) {
        break;
      }
    }
    if (!any) {
      continue;
    }
    Shard& shard = shard_state_[s];
    conc::MutexLock sl(locks_.at(s));
    for (StagedFinish& f : batch) {
      const std::uint32_t fs = shards_.shard_of[f.vertex];
      if (fs > sv) {
        continue;  // all of f's effects live in shards >= fs
      }
      for (Delivery& d : f.deliveries) {
        if (shards_.shard_of[d.to_index] == sv) {
          DF_CHECK(d.to_index > f.vertex,
                   "messages must flow to higher-indexed vertices");
          deliver_locked(shard, slot_index(f.phase), d);
        }
      }
      if (fs == sv) {
        // Statements 5-7 plus the pending clear (Listing 1 tail): the pair
        // leaves ready, its executed bundle recycles into this shard's
        // pool, and the vertex joins the affected list for the next
        // collect (it may have a later full phase queued).
        VertexSchedState& vs = shard.vertices[f.vertex - shard.begin];
        DF_CHECK(vs.in_ready && vs.ready_phase == f.phase,
                 "finish_execution for a pair that was not issued: vertex ",
                 f.vertex, " phase ", f.phase);
        vs.in_ready = false;
        shard.pool.donate(std::move(f.recycled));
        ShardSeg& seg = shard.slots[slot_index(f.phase)];
        DF_CHECK(seg.allocated() &&
                     seg_test(shard, seg.pending_bits, f.vertex),
                 "finished vertex was not pending");
        seg_clear(shard, seg.pending_bits, f.vertex);
        --seg.pending_count;
        shard.affected.push_back(f.vertex);
      }
    }
  }
}

std::uint32_t ShardedScheduler::seg_min_pending(const Shard& shard,
                                                ShardSeg& seg) const {
  std::uint32_t w = seg.min_pending_word;
  while (seg.pending_bits[w] == 0) {
    ++w;
  }
  seg.min_pending_word = w;
  return ((shard.word_lo + w) << 6) +
         static_cast<std::uint32_t>(std::countr_zero(seg.pending_bits[w]));
}

void ShardedScheduler::promote_range(event::PhaseId p, std::uint32_t lo,
                                     std::uint32_t hi) {
  if (lo > hi) {
    return;
  }
  const std::size_t s_lo = shards_.shard_of[lo];
  const std::size_t s_hi = shards_.shard_of[hi];
  for (std::size_t s = s_lo; s <= s_hi; ++s) {
    Shard& shard = shard_state_[s];
    conc::MutexLock sl(locks_.at(s));
    ShardSeg& seg = shard.slots[slot_index(p)];
    if (!seg.allocated()) {
      continue;  // no traffic ever reached this shard for p
    }
    const std::uint32_t shi = std::min(hi, shard.end);
    const std::uint32_t slo =
        std::max({lo, shard.begin, seg.promoted_through + 1});
    if (seg.partial_count > 0 && slo <= shi) {
      // Scan partial bits in [slo, shi]; the per-shard promoted_through
      // cursor is monotone, so each vertex is visited at most once per
      // phase (new partial entries always land above the bound).
      std::uint32_t w = (slo >> 6) - shard.word_lo;
      const std::uint32_t w_hi = (shi >> 6) - shard.word_lo;
      std::uint64_t word =
          seg.partial_bits[w] & (~std::uint64_t{0} << (slo & 63));
      while (true) {
        if (w == w_hi) {
          const std::uint32_t top = shi & 63;
          if (top != 63) {
            word &= (std::uint64_t{1} << (top + 1)) - 1;
          }
        }
        while (word != 0) {
          const std::uint32_t v =
              ((shard.word_lo + w) << 6) +
              static_cast<std::uint32_t>(std::countr_zero(word));
          word &= word - 1;
          seg_clear(shard, seg.partial_bits, v);
          --seg.partial_count;
          VertexSchedState& vs = shard.vertices[v - shard.begin];
          DF_DCHECK(vs.full_empty() || vs.full_phases.back() < p,
                    "full phases must be issued in ascending order");
          vs.push_full(p);
          shard.affected.push_back(v);
        }
        if (w == w_hi) {
          break;
        }
        ++w;
        word = seg.partial_bits[w];
      }
    }
    seg.promoted_through = std::max(seg.promoted_through, shi);
  }
}

void ShardedScheduler::collect_shard_ready(std::size_t s,
                                           std::vector<ReadyPair>& out_ready) {
  Shard& shard = shard_state_[s];
  if (shard.affected.empty()) {
    return;
  }
  // Deterministic issue order (ascending vertex), matching the flat
  // scheduler's sorted global pass — ascending shards make it global.
  std::sort(shard.affected.begin(), shard.affected.end());
  std::uint32_t prev = 0;
  for (const std::uint32_t v : shard.affected) {
    if (v == prev) {
      continue;
    }
    prev = v;
    issue_if_ready(shard, v, out_ready);
  }
  shard.affected.clear();
}

bool ShardedScheduler::collect(std::vector<ReadyPair>& out_ready) {
  conc::MutexLock wl(window_mutex_);
  return collect_locked(out_ready);
}

bool ShardedScheduler::collect_locked(std::vector<ReadyPair>& out_ready) {
  if (active_count_ == 0) {
    return false;
  }
  const event::PhaseId completed_before = completed_through_;
  // Stage A (statements 1.12-1.26, composed over shards): recompute each
  // active phase's frontier oldest-first. The lowest shard that still has
  // pending pairs owns the phase's frontier; its shard-local min-pending
  // cursor yields the candidate, which is clamped by the previous phase
  // (no overtaking) and published through the phase's atomic.
  std::uint32_t prev_x = n_;  // phase before the oldest active is complete
  for (std::size_t i = 0; i < active_count_; ++i) {
    const event::PhaseId p = first_active_ + i;
    GlobalSlot& gs = global_slots_[slot_index(p)];
    DF_DCHECK(gs.id.load(std::memory_order_relaxed) == p,
              "phase slot mismatch");
    std::uint32_t candidate = n_;
    std::size_t s = gs.first_live_shard;
    for (; s < shard_count(); ++s) {
      Shard& shard = shard_state_[s];
      conc::MutexLock sl(locks_.at(s));
      ShardSeg& seg = shard.slots[slot_index(p)];
      if (seg.allocated() && seg.pending_count > 0) {
        candidate = seg_min_pending(shard, seg) - 1;
        break;
      }
    }
    if (s < shard_count()) {
      // Shards below s hold no pending pairs for p and never will again
      // (insertions land above the monotone global minimum), so the scan
      // cursor only moves forward.
      gs.first_live_shard = static_cast<std::uint32_t>(s);
    }
    candidate = std::min(candidate, prev_x);
    DF_CHECK(candidate >= gs.x, "x must be monotone within a phase");
    gs.x = candidate;
    x_pub_[slot_index(p)].advance_to(candidate);
    prev_x = candidate;
    // Statements 1.24-1.26: promote partial pairs the new bound covers.
    const std::uint32_t bound = m_[candidate];
    if (bound > gs.promoted_bound) {
      promote_range(p, gs.promoted_bound + 1, bound);
      gs.promoted_bound = bound;
    }
  }
  // Stage B (statements 1.27-1.30): issue newly ready pairs, ascending
  // shard order == ascending vertex order.
  for (std::size_t s = 0; s < shard_count(); ++s) {
    conc::MutexLock sl(locks_.at(s));
    collect_shard_ready(s, out_ready);
  }
  // Retire complete phases from the front of the window.
  while (active_count_ > 0 &&
         global_slots_[slot_index(first_active_)].x == n_) {
    retire_front();
  }
  return completed_through_ != completed_before;
}

void ShardedScheduler::retire_front() {
  const event::PhaseId p = first_active_;
  GlobalSlot& gs = global_slots_[slot_index(p)];
  DF_CHECK(gs.x == n_, "retiring an incomplete phase");
  for (std::size_t s = 0; s < shard_count(); ++s) {
    Shard& shard = shard_state_[s];
    conc::MutexLock sl(locks_.at(s));
    ShardSeg& seg = shard.slots[slot_index(p)];
    if (!seg.allocated()) {
      continue;
    }
    DF_CHECK(seg.pending_count == 0, "complete phase still has pending pairs");
    DF_CHECK(seg.partial_count == 0, "complete phase still has partial pairs");
    // Counts at zero imply both bitsets and the bundle table are already
    // clear, so the segment is reusable in place.
    seg.min_pending_word = 0;
    seg.promoted_through = shard.begin - 1;
  }
  gs.id.store(0, std::memory_order_release);
  gs.x = 0;
  gs.promoted_bound = 0;
  gs.first_live_shard = 0;
  completed_through_ = p;
  completed_atomic_.store(p, std::memory_order_release);
  ++first_active_;
  --active_count_;
  active_atomic_.store(active_count_, std::memory_order_release);
}

ShardedScheduler::Snapshot ShardedScheduler::snapshot() {
  conc::MutexLock wl(window_mutex_);
  // Hold every shard lock for one consistent cut. Appliers take at most
  // one shard lock at a time and acquire no other lock while holding it,
  // so grabbing all of them in ascending order cannot deadlock.
  std::vector<std::unique_lock<conc::Mutex>> shard_locks;
  shard_locks.reserve(shard_count());
  for (std::size_t s = 0; s < shard_count(); ++s) {
    shard_locks.emplace_back(locks_.at(s));
  }
  Snapshot snap;
  snap.pmax = pmax_;
  snap.completed_through = completed_through_;
  for (std::size_t i = 0; i < active_count_; ++i) {
    const event::PhaseId p = first_active_ + i;
    const GlobalSlot& gs = global_slots_[slot_index(p)];
    snap.x.emplace_back(p, gs.x);
    for (const Shard& shard : shard_state_) {
      const ShardSeg& seg = shard.slots[slot_index(p)];
      if (!seg.allocated()) {
        continue;
      }
      for (std::uint32_t w = 0; w < shard.words; ++w) {
        std::uint64_t word = seg.partial_bits[w];
        while (word != 0) {
          const std::uint32_t v =
              ((shard.word_lo + w) << 6) +
              static_cast<std::uint32_t>(std::countr_zero(word));
          word &= word - 1;
          snap.partial.push_back(Snapshot::Pair{v, p});
        }
      }
    }
  }
  for (const Shard& shard : shard_state_) {
    for (std::uint32_t v = shard.begin; v <= shard.end; ++v) {
      const VertexSchedState& vs = shard.vertices[v - shard.begin];
      for (std::size_t i = vs.full_head; i < vs.full_phases.size(); ++i) {
        snap.full.push_back(Snapshot::Pair{v, vs.full_phases[i]});
      }
      if (vs.in_ready) {
        // Issued pairs remain in the paper's full ∩ ready until finished.
        snap.full.push_back(Snapshot::Pair{v, vs.ready_phase});
        snap.ready.push_back(Snapshot::Pair{v, vs.ready_phase});
      }
    }
  }
  const auto by_phase_vertex = [](const Snapshot::Pair& a,
                                  const Snapshot::Pair& b) {
    return a.phase != b.phase ? a.phase < b.phase : a.vertex < b.vertex;
  };
  std::sort(snap.partial.begin(), snap.partial.end(), by_phase_vertex);
  std::sort(snap.full.begin(), snap.full.end(), by_phase_vertex);
  std::sort(snap.ready.begin(), snap.ready.end(), by_phase_vertex);
  return snap;
}

}  // namespace df::core
