#include "core/scheduler.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace df::core {

Scheduler::Scheduler(std::vector<std::uint32_t> m)
    : m_(std::move(m)), n_(static_cast<std::uint32_t>(m_.size() - 1)) {
  DF_CHECK(!m_.empty(), "m vector must have at least m(0)");
  DF_CHECK(m_[n_] == n_, "m(N) != N — numbering is not satisfactory");
  vertices_.resize(n_ + 1);
}

Scheduler::PhaseState& Scheduler::phase_state(event::PhaseId p) {
  DF_CHECK(!phases_.empty(), "no active phases");
  const event::PhaseId first = phases_.front().id;
  DF_CHECK(p >= first && p < first + phases_.size(), "phase ", p,
           " is not active");
  return phases_[p - first];
}

const Scheduler::PhaseState* Scheduler::find_phase(event::PhaseId p) const {
  if (phases_.empty()) {
    return nullptr;
  }
  const event::PhaseId first = phases_.front().id;
  if (p < first || p >= first + phases_.size()) {
    return nullptr;
  }
  return &phases_[p - first];
}

std::uint32_t Scheduler::x(event::PhaseId p) const {
  if (p == 0 || p <= completed_through_) {
    return n_;  // x_0 = N by definition; retired phases are complete
  }
  const PhaseState* state = find_phase(p);
  return state == nullptr ? 0 : state->x;
}

std::vector<Scheduler::ReadyPair> Scheduler::start_phase(
    event::PhaseId p, std::vector<event::InputBundle> bundles) {
  // Listing 2, statements 11-19.
  DF_CHECK(p == pmax_ + 1, "phases must start in order: expected ",
           pmax_ + 1, ", got ", p);
  DF_CHECK(bundles.size() == m_[0], "need one bundle per source vertex");
  pmax_ = p;

  PhaseState state;
  state.id = p;
  state.x = 0;
  phases_.push_back(std::move(state));
  PhaseState& ps = phases_.back();

  // Source vertices are exactly internal indices 1..m(0); each receives its
  // external bundle plus the implicit phase signal, entering the full set
  // directly (x_p = 0 and 0 < v <= m(0) = m(x_p)).
  std::set<std::uint32_t> affected;
  for (std::uint32_t s = 1; s <= m_[0]; ++s) {
    VertexState& vs = vertices_[s];
    DF_CHECK(vs.full.find(p) == vs.full.end(), "duplicate phase start");
    vs.full.emplace(p, std::move(bundles[s - 1]));
    ps.pending.insert(s);
    affected.insert(s);
  }
  return collect_ready(affected);
}

std::vector<Scheduler::ReadyPair> Scheduler::finish_execution(
    std::uint32_t vertex, event::PhaseId p,
    std::vector<Delivery> deliveries) {
  // Listing 1, statements 4-31.
  DF_CHECK(vertex >= 1 && vertex <= n_, "vertex index out of range");
  VertexState& vs = vertices_[vertex];
  DF_CHECK(vs.in_ready && vs.ready_phase == p,
           "finish_execution for a pair that was not issued: vertex ",
           vertex, " phase ", p);
  // Statements 5-7: remove (v,p) from full/ready (the full entry was taken
  // when the pair was issued; here we clear the ready occupancy).
  vs.in_ready = false;

  // Statements 8-11: new messages put successors into the partial set.
  PhaseState& ps = phase_state(p);
  std::set<std::uint32_t> affected;
  for (Delivery& d : deliveries) {
    DF_CHECK(d.to_index > vertex,
             "messages must flow to higher-indexed vertices");
    // The recipient cannot already be full/ready/executing for p: that would
    // require all its predecessors (including `vertex`) to have finished p.
    DF_DCHECK(ps.pending.find(d.to_index) == ps.pending.end() ||
                  ps.partial.find(d.to_index) != ps.partial.end(),
              "delivery to a vertex already past partial in this phase");
    ps.partial[d.to_index].push_back(
        event::Message{d.to_port, std::move(d.value)});
    ps.pending.insert(d.to_index);
  }

  // (v,p) is finished: drop it from the pending index behind x_p.
  const std::size_t erased = ps.pending.erase(vertex);
  DF_CHECK(erased == 1, "finished vertex was not pending");

  // Statements 12-23: recompute the frontier for p and all later phases.
  update_x_from(p);
  // Statements 24-26: promote partial pairs within the new frontiers.
  promote_newly_full(p, affected);
  // Phases whose frontier reached N are complete; retire from the front.
  retire_completed();
  // Statements 27-30: issue newly ready pairs.
  affected.insert(vertex);  // vertex may have a later full phase queued
  return collect_ready(affected);
}

void Scheduler::update_x_from(event::PhaseId from) {
  if (phases_.empty()) {
    return;
  }
  const event::PhaseId first = phases_.front().id;
  DF_CHECK(from >= first, "updating a retired phase");
  for (std::size_t i = from - first; i < phases_.size(); ++i) {
    PhaseState& ps = phases_[i];
    // Statement 15/17: x_i = N if no pair with phase i remains, otherwise
    // min vertex still pending minus one.
    std::uint32_t candidate =
        ps.pending.empty() ? n_ : *ps.pending.begin() - 1;
    // Statements 19-21: never overtake the previous phase.
    const std::uint32_t previous =
        i == 0 ? x(ps.id - 1) : phases_[i - 1].x;
    candidate = std::min(candidate, previous);
    DF_CHECK(candidate >= ps.x, "x must be monotone within a phase");
    ps.x = candidate;
  }
}

void Scheduler::promote_newly_full(event::PhaseId from,
                                   std::set<std::uint32_t>& affected) {
  if (phases_.empty()) {
    return;
  }
  const event::PhaseId first = phases_.front().id;
  for (std::size_t i = from >= first ? from - first : 0; i < phases_.size();
       ++i) {
    PhaseState& ps = phases_[i];
    const std::uint32_t bound = m_[ps.x];
    // partial is ordered by vertex: the promotable pairs form a prefix.
    while (!ps.partial.empty() && ps.partial.begin()->first <= bound) {
      auto node = ps.partial.extract(ps.partial.begin());
      const std::uint32_t w = node.key();
      VertexState& vs = vertices_[w];
      DF_DCHECK(vs.full.find(ps.id) == vs.full.end(),
                "pair already in full");
      vs.full.emplace(ps.id, std::move(node.mapped()));
      affected.insert(w);
    }
  }
}

std::vector<Scheduler::ReadyPair> Scheduler::collect_ready(
    const std::set<std::uint32_t>& affected) {
  std::vector<ReadyPair> ready;
  for (const std::uint32_t v : affected) {
    VertexState& vs = vertices_[v];
    if (vs.in_ready || vs.full.empty()) {
      continue;  // at most one issued pair per vertex; phases in order
    }
    auto node = vs.full.extract(vs.full.begin());
    vs.in_ready = true;
    vs.ready_phase = node.key();
    ready.push_back(ReadyPair{v, node.key(), std::move(node.mapped())});
  }
  return ready;
}

void Scheduler::retire_completed() {
  while (!phases_.empty() && phases_.front().x == n_) {
    DF_CHECK(phases_.front().pending.empty(),
             "complete phase still has pending pairs");
    DF_CHECK(phases_.front().partial.empty(),
             "complete phase still has partial pairs");
    completed_through_ = phases_.front().id;
    phases_.pop_front();
  }
}

Scheduler::Snapshot Scheduler::snapshot() const {
  Snapshot snap;
  snap.pmax = pmax_;
  snap.completed_through = completed_through_;
  for (const PhaseState& ps : phases_) {
    snap.x.emplace_back(ps.id, ps.x);
    for (const auto& [vertex, bundle] : ps.partial) {
      (void)bundle;
      snap.partial.push_back(Snapshot::Pair{vertex, ps.id});
    }
  }
  for (std::uint32_t v = 1; v <= n_; ++v) {
    const VertexState& vs = vertices_[v];
    for (const auto& [phase, bundle] : vs.full) {
      (void)bundle;
      snap.full.push_back(Snapshot::Pair{v, phase});
    }
    if (vs.in_ready) {
      // Issued pairs remain in the paper's full ∩ ready until finished.
      snap.full.push_back(Snapshot::Pair{v, vs.ready_phase});
      snap.ready.push_back(Snapshot::Pair{v, vs.ready_phase});
    }
  }
  const auto by_phase_vertex = [](const Snapshot::Pair& a,
                                  const Snapshot::Pair& b) {
    return a.phase != b.phase ? a.phase < b.phase : a.vertex < b.vertex;
  };
  std::sort(snap.partial.begin(), snap.partial.end(), by_phase_vertex);
  std::sort(snap.full.begin(), snap.full.end(), by_phase_vertex);
  std::sort(snap.ready.begin(), snap.ready.end(), by_phase_vertex);
  return snap;
}

}  // namespace df::core
