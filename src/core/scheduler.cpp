#include "core/scheduler.hpp"

#include <algorithm>
#include <bit>

#include "core/checkpoint.hpp"
#include "support/check.hpp"
#include "support/state_archive.hpp"

namespace df::core {

Scheduler::Scheduler(std::vector<std::uint32_t> m,
                     std::uint32_t signal_sources)
    : m_(std::move(m)), n_(static_cast<std::uint32_t>(m_.size() - 1)) {
  DF_CHECK(!m_.empty(), "m vector must have at least m(0)");
  DF_CHECK(m_[n_] == n_, "m(N) != N — numbering is not satisfactory");
  signal_sources_ = signal_sources == kAllSources ? m_[0] : signal_sources;
  DF_CHECK(signal_sources_ <= m_[0],
           "signal sources must be a prefix of 1..m(0)");
  words_ = (n_ + 1 + 63) / 64;
  vertices_.resize(n_ + 1);
}

Scheduler::PhaseSlot& Scheduler::phase_slot(event::PhaseId p) {
  DF_CHECK(ring_count_ > 0, "no active phases");
  DF_CHECK(p >= first_active_ && p < first_active_ + ring_count_, "phase ", p,
           " is not active");
  return slot_at(p - first_active_);
}

const Scheduler::PhaseSlot* Scheduler::find_phase(event::PhaseId p) const {
  if (ring_count_ == 0 || p < first_active_ ||
      p >= first_active_ + ring_count_) {
    return nullptr;
  }
  return &slot_at(p - first_active_);
}

Scheduler::PhaseSlot& Scheduler::push_phase(event::PhaseId p) {
  if (ring_count_ == ring_.size()) {
    // Grow the ring, re-linearizing the active slots from the head. Slots
    // keep their preallocated arrays; this happens only until the window
    // reaches its steady-state depth.
    std::vector<PhaseSlot> grown(std::max<std::size_t>(4, ring_.size() * 2));
    for (std::size_t i = 0; i < ring_count_; ++i) {
      grown[i] = std::move(slot_at(i));
    }
    ring_ = std::move(grown);
    ring_head_ = 0;
  }
  if (ring_count_ == 0) {
    first_active_ = p;
  }
  PhaseSlot& slot = ring_[(ring_head_ + ring_count_) % ring_.size()];
  ++ring_count_;
  if (slot.pending_bits.size() != words_) {
    // First use of this slot: allocate its arrays. Reused slots were left
    // all-clear by retire_completed (their counts were checked to be zero).
    slot.pending_bits.assign(words_, 0);
    slot.partial_bits.assign(words_, 0);
    slot.bundle.assign(n_ + 1, kNoBundle);
  }
  slot.id = p;
  slot.x = 0;
  slot.pending_count = 0;
  slot.partial_count = 0;
  slot.min_pending_word = 0;
  slot.promoted_bound = 0;
  return slot;
}

void Scheduler::reserve_steady_state(std::size_t max_inflight_phases,
                                     std::size_t live_bundles,
                                     std::size_t bundle_capacity) {
  DF_CHECK(ring_count_ == 0 && pmax_ == 0,
           "reserve_steady_state must precede the first start_phase");
  if (max_inflight_phases > ring_.size()) {
    ring_.resize(max_inflight_phases);
    ring_head_ = 0;
    for (PhaseSlot& slot : ring_) {
      if (slot.pending_bits.size() != words_) {
        slot.pending_bits.assign(words_, 0);
        slot.partial_bits.assign(words_, 0);
        slot.bundle.assign(n_ + 1, kNoBundle);
      }
    }
  }
  for (std::uint32_t v = 1; v <= n_; ++v) {
    vertices_[v].full_phases.reserve(max_inflight_phases + 1);
  }
  // One transition can touch a vertex once per active phase (promotion
  // across the window), so (n+1)*window is the scratch buffer's hard
  // bound; cap the upfront reservation so huge graph*window products do
  // not pre-pay hundreds of megabytes for a bound rarely approached.
  affected_.reserve(std::min<std::size_t>(
      (n_ + 1) * std::max<std::size_t>(1, max_inflight_phases),
      (n_ + 1) + 65536));
  pool_.prewarm(live_bundles, bundle_capacity);
}

std::uint32_t Scheduler::x(event::PhaseId p) const {
  if (p == 0 || p <= completed_through_) {
    return n_;  // x_0 = N by definition; retired phases are complete
  }
  const PhaseSlot* slot = find_phase(p);
  return slot == nullptr ? 0 : slot->x;
}

void Scheduler::start_phase(event::PhaseId p,
                            std::span<event::InputBundle> bundles,
                            std::vector<ReadyPair>& out_ready) {
  start_phase(p, bundles, std::span<Delivery>{}, out_ready);
}

void Scheduler::start_phase(event::PhaseId p,
                            std::span<event::InputBundle> bundles,
                            std::span<Delivery> injected,
                            std::vector<ReadyPair>& out_ready) {
  // Listing 2, statements 11-19.
  DF_CHECK(p == pmax_ + 1, "phases must start in order: expected ", pmax_ + 1,
           ", got ", p);
  DF_CHECK(bundles.size() == signal_sources_,
           "need one bundle per signal-source vertex");
  pmax_ = p;
  PhaseSlot& slot = push_phase(p);

  // Signal-source vertices are a prefix 1..S of the index space (the whole
  // 1..m(0) for a full program); each receives its external bundle plus the
  // implicit phase signal, entering the full set directly (x_p = 0 and
  // 0 < v <= S <= m(0) = m(x_p)).
  for (std::uint32_t s = 1; s <= signal_sources_; ++s) {
    VertexState& vs = vertices_[s];
    DF_DCHECK(vs.full_empty() || vs.full_phases.back() < p,
              "duplicate phase start");
    slot.bundle[s] = pool_.adopt(std::move(bundles[s - 1]));
    bit_set(slot.pending_bits, s);
    ++slot.pending_count;
    vs.push_full(p);
    affected_.push_back(s);
  }

  // Remote deliveries enter partial exactly like apply_finish's delivery
  // loop — as if a virtual index-0 vertex finished before any local pair.
  for (Delivery& d : injected) {
    DF_CHECK(d.to_index > signal_sources_ && d.to_index <= n_,
             "injected delivery must target a non-source block vertex, got ",
             d.to_index);
    if (!bit_test(slot.partial_bits, d.to_index)) {
      slot.bundle[d.to_index] = pool_.acquire();
      bit_set(slot.partial_bits, d.to_index);
      ++slot.partial_count;
      bit_set(slot.pending_bits, d.to_index);
      ++slot.pending_count;
    }
    pool_.at(slot.bundle[d.to_index])
        .push_back(event::Message{d.to_port, std::move(d.value)});
  }

  if (!injected.empty() || signal_sources_ == 0) {
    // Block-scoped start (see the header): run the full Listing 1 tail now.
    // Injected vertices whose predecessors are all remote sit at or below
    // m(x_p) already and must be promoted and issued here (no local finish
    // may ever reference this phase), and a phase that started with nothing
    // pending retires on the spot. The pass is phase-p-local: p is the
    // newest phase, so no other slot is visited.
    update_x_from(p);
    promote_newly_full(p);
    retire_completed();
  }
  collect_ready(out_ready);
}

void Scheduler::apply_finish(std::uint32_t vertex, event::PhaseId p,
                             std::span<Delivery> deliveries,
                             event::InputBundle recycled) {
  // Listing 1, statements 4-11.
  DF_CHECK(vertex >= 1 && vertex <= n_, "vertex index out of range");
  VertexState& vs = vertices_[vertex];
  DF_CHECK(vs.in_ready && vs.ready_phase == p,
           "finish_execution for a pair that was not issued: vertex ", vertex,
           " phase ", p);
  // Statements 5-7: remove (v,p) from full/ready (the full entry was taken
  // when the pair was issued; here we clear the ready occupancy). The
  // executed bundle's buffer goes back to the pool.
  vs.in_ready = false;
  pool_.donate(std::move(recycled));

  // Statements 8-11: new messages put successors into the partial set.
  PhaseSlot& slot = phase_slot(p);
  for (Delivery& d : deliveries) {
    DF_CHECK(d.to_index > vertex,
             "messages must flow to higher-indexed vertices");
    if (!bit_test(slot.partial_bits, d.to_index)) {
      // The recipient cannot already be full/ready/executing for p: that
      // would require all its predecessors (including `vertex`) to have
      // finished p. For the same reason it cannot sit at or below the
      // promotion bound m(x_p).
      DF_DCHECK(!bit_test(slot.pending_bits, d.to_index),
                "delivery to a vertex already past partial in this phase");
      DF_DCHECK(d.to_index > slot.promoted_bound,
                "delivery below the promotion bound");
      slot.bundle[d.to_index] = pool_.acquire();
      bit_set(slot.partial_bits, d.to_index);
      ++slot.partial_count;
      bit_set(slot.pending_bits, d.to_index);
      ++slot.pending_count;
    }
    pool_.at(slot.bundle[d.to_index])
        .push_back(event::Message{d.to_port, std::move(d.value)});
  }

  // (v,p) is finished: drop it from the pending index behind x_p.
  DF_CHECK(bit_test(slot.pending_bits, vertex),
           "finished vertex was not pending");
  bit_clear(slot.pending_bits, vertex);
  --slot.pending_count;
  affected_.push_back(vertex);  // vertex may have a later full phase queued
}

void Scheduler::finish_execution(std::uint32_t vertex, event::PhaseId p,
                                 std::span<Delivery> deliveries,
                                 event::InputBundle recycled,
                                 std::vector<ReadyPair>& out_ready) {
  // Listing 1, statements 4-31.
  apply_finish(vertex, p, deliveries, std::move(recycled));
  // Statements 12-23: recompute the frontier for p and all later phases.
  update_x_from(p);
  // Statements 24-26: promote partial pairs within the new frontiers.
  promote_newly_full(p);
  // Phases whose frontier reached N are complete; retire from the front.
  retire_completed();
  // Statements 27-30: issue newly ready pairs.
  collect_ready(out_ready);
}

void Scheduler::finish_execution_batch(std::span<StagedFinish> batch,
                                       std::vector<ReadyPair>& out_ready) {
  if (batch.empty()) {
    return;
  }
  // Apply every pair's set updates first. Within a batch each vertex
  // appears at most once (a vertex has at most one issued pair, and no pair
  // is re-issued before collect_ready below), so applications commute; the
  // deferred frontier only under-approximates in between, which every
  // invariant tolerates (see apply_finish).
  event::PhaseId from = batch.front().phase;
  for (StagedFinish& staged : batch) {
    apply_finish(staged.vertex, staged.phase,
                 std::span<Delivery>(staged.deliveries),
                 std::move(staged.recycled));
    from = std::min(from, staged.phase);
  }
  // One frontier/promotion/retire/collect pass for the whole batch. None of
  // the staged phases can have retired before this point — each kept a
  // pending bit set until its apply above — so `from` is still active.
  update_x_from(from);
  promote_newly_full(from);
  retire_completed();
  collect_ready(out_ready);
}

std::uint32_t Scheduler::min_pending(PhaseSlot& slot) {
  std::uint32_t w = slot.min_pending_word;
  while (slot.pending_bits[w] == 0) {
    ++w;
  }
  slot.min_pending_word = w;
  return (w << 6) +
         static_cast<std::uint32_t>(std::countr_zero(slot.pending_bits[w]));
}

void Scheduler::update_x_from(event::PhaseId from) {
  if (ring_count_ == 0) {
    return;
  }
  DF_CHECK(from >= first_active_, "updating a retired phase");
  for (std::size_t i = from - first_active_; i < ring_count_; ++i) {
    PhaseSlot& slot = slot_at(i);
    // Statement 15/17: x_i = N if no pair with phase i remains, otherwise
    // min vertex still pending minus one.
    std::uint32_t candidate =
        slot.pending_count == 0 ? n_ : min_pending(slot) - 1;
    // Statements 19-21: never overtake the previous phase.
    const std::uint32_t previous =
        i == 0 ? x(slot.id - 1) : slot_at(i - 1).x;
    candidate = std::min(candidate, previous);
    DF_CHECK(candidate >= slot.x, "x must be monotone within a phase");
    slot.x = candidate;
  }
}

void Scheduler::promote_newly_full(event::PhaseId from) {
  if (ring_count_ == 0) {
    return;
  }
  const std::size_t start =
      from >= first_active_ ? static_cast<std::size_t>(from - first_active_)
                            : 0;
  for (std::size_t i = start; i < ring_count_; ++i) {
    PhaseSlot& slot = slot_at(i);
    const std::uint32_t bound = m_[slot.x];
    if (bound <= slot.promoted_bound) {
      continue;  // the promotion window only moves forward
    }
    if (slot.partial_count == 0) {
      slot.promoted_bound = bound;
      continue;
    }
    // Scan partial bits in [promoted_bound + 1, bound]. New partial entries
    // always land above the current bound (their predecessors are not all
    // finished), so every vertex is scanned at most once per phase.
    const std::uint32_t lo = slot.promoted_bound + 1;
    std::uint32_t w = lo >> 6;
    const std::uint32_t w_hi = bound >> 6;
    std::uint64_t word = slot.partial_bits[w] &
                         (~std::uint64_t{0} << (lo & 63));
    while (true) {
      if (w == w_hi) {
        const std::uint32_t top = bound & 63;
        if (top != 63) {
          word &= (std::uint64_t{1} << (top + 1)) - 1;
        }
      }
      while (word != 0) {
        const std::uint32_t v =
            (w << 6) + static_cast<std::uint32_t>(std::countr_zero(word));
        word &= word - 1;
        bit_clear(slot.partial_bits, v);
        --slot.partial_count;
        VertexState& vs = vertices_[v];
        // A pair can only become full for a phase later than any of the
        // vertex's existing full phases: v <= m(x_p) means all of v's
        // predecessors finished p, so no earlier-phase message can arrive.
        DF_DCHECK(vs.full_empty() || vs.full_phases.back() < slot.id,
                  "full phases must be issued in ascending order");
        vs.push_full(slot.id);
        affected_.push_back(v);
      }
      if (w == w_hi) {
        break;
      }
      ++w;
      word = slot.partial_bits[w];
    }
    slot.promoted_bound = bound;
  }
}

void Scheduler::collect_ready(std::vector<ReadyPair>& out_ready) {
  // Deterministic issue order (ascending vertex), matching the ordered-set
  // iteration of the reference implementation.
  std::sort(affected_.begin(), affected_.end());
  for (std::size_t i = 0; i < affected_.size(); ++i) {
    const std::uint32_t v = affected_[i];
    if (i > 0 && affected_[i - 1] == v) {
      continue;
    }
    VertexState& vs = vertices_[v];
    if (vs.in_ready || vs.full_empty()) {
      continue;  // at most one issued pair per vertex; phases in order
    }
    const event::PhaseId p = vs.full_front();
    ++vs.full_head;
    if (vs.full_empty()) {
      vs.full_phases.clear();  // keeps capacity
      vs.full_head = 0;
    }
    PhaseSlot& slot = phase_slot(p);
    const std::uint32_t idx = slot.bundle[v];
    DF_CHECK(idx != kNoBundle, "full pair has no bundle");
    slot.bundle[v] = kNoBundle;
    vs.in_ready = true;
    vs.ready_phase = p;
    out_ready.push_back(ReadyPair{v, p, pool_.take(idx)});
  }
  affected_.clear();
}

void Scheduler::retire_completed() {
  while (ring_count_ > 0 && ring_[ring_head_].x == n_) {
    PhaseSlot& slot = ring_[ring_head_];
    DF_CHECK(slot.pending_count == 0,
             "complete phase still has pending pairs");
    DF_CHECK(slot.partial_count == 0,
             "complete phase still has partial pairs");
    // pending_count == 0 implies every bundle was taken and both bitsets
    // are all-clear, so the slot is reusable as-is.
    completed_through_ = slot.id;
    ring_head_ = (ring_head_ + 1) % ring_.size();
    --ring_count_;
    ++first_active_;
  }
}

Scheduler::Snapshot Scheduler::snapshot() const {
  Snapshot snap;
  snap.pmax = pmax_;
  snap.completed_through = completed_through_;
  for (std::size_t i = 0; i < ring_count_; ++i) {
    const PhaseSlot& slot = slot_at(i);
    snap.x.emplace_back(slot.id, slot.x);
    for (std::uint32_t w = 0; w < words_; ++w) {
      std::uint64_t word = slot.partial_bits[w];
      while (word != 0) {
        const std::uint32_t v =
            (w << 6) + static_cast<std::uint32_t>(std::countr_zero(word));
        word &= word - 1;
        snap.partial.push_back(Snapshot::Pair{v, slot.id});
      }
    }
  }
  for (std::uint32_t v = 1; v <= n_; ++v) {
    const VertexState& vs = vertices_[v];
    for (std::size_t i = vs.full_head; i < vs.full_phases.size(); ++i) {
      snap.full.push_back(Snapshot::Pair{v, vs.full_phases[i]});
    }
    if (vs.in_ready) {
      // Issued pairs remain in the paper's full ∩ ready until finished.
      snap.full.push_back(Snapshot::Pair{v, vs.ready_phase});
      snap.ready.push_back(Snapshot::Pair{v, vs.ready_phase});
    }
  }
  const auto by_phase_vertex = [](const Snapshot::Pair& a,
                                  const Snapshot::Pair& b) {
    return a.phase != b.phase ? a.phase < b.phase : a.vertex < b.vertex;
  };
  std::sort(snap.partial.begin(), snap.partial.end(), by_phase_vertex);
  std::sort(snap.full.begin(), snap.full.end(), by_phase_vertex);
  std::sort(snap.ready.begin(), snap.ready.end(), by_phase_vertex);
  return snap;
}

namespace {

constexpr std::uint32_t kSchedulerImageMagic = 0x44465343u;  // "DFSC"
constexpr std::uint32_t kSchedulerImageVersion = 1;

std::uint32_t popcount_words(const std::vector<std::uint64_t>& bits) {
  std::uint32_t total = 0;
  for (std::uint64_t word : bits) {
    total += static_cast<std::uint32_t>(std::popcount(word));
  }
  return total;
}

}  // namespace

std::vector<std::uint8_t> Scheduler::snapshot_state() {
  auto ar = support::StateArchive::saver();
  std::uint32_t magic = kSchedulerImageMagic;
  std::uint32_t version = kSchedulerImageVersion;
  ar.u32(magic);
  ar.u32(version);
  ar.sequence(m_, [](support::StateArchive& a, std::uint32_t& v) { a.u32(v); });
  ar.u32(signal_sources_);
  ar.u64(pmax_);
  ar.u64(completed_through_);
  std::uint64_t active = ring_count_;
  ar.u64(active);
  for (std::size_t i = 0; i < ring_count_; ++i) {
    PhaseSlot& slot = slot_at(i);
    ar.u64(slot.id);
    ar.u32(slot.x);
    ar.u32(slot.pending_count);
    ar.u32(slot.partial_count);
    ar.u32(slot.promoted_bound);
    for (std::uint32_t w = 0; w < words_; ++w) ar.u64(slot.pending_bits[w]);
    for (std::uint32_t w = 0; w < words_; ++w) ar.u64(slot.partial_bits[w]);
    std::uint32_t live = 0;
    for (std::uint32_t v = 1; v <= n_; ++v) {
      if (slot.bundle[v] != kNoBundle) ++live;
    }
    ar.u32(live);
    for (std::uint32_t v = 1; v <= n_; ++v) {
      if (slot.bundle[v] == kNoBundle) continue;
      std::uint32_t vertex = v;
      ar.u32(vertex);
      persist_bundle(ar, pool_.at(slot.bundle[v]));
    }
  }
  for (std::uint32_t v = 1; v <= n_; ++v) {
    VertexState& vs = vertices_[v];
    std::uint64_t queued = vs.full_phases.size() - vs.full_head;
    ar.u64(queued);
    for (std::size_t i = vs.full_head; i < vs.full_phases.size(); ++i) {
      ar.u64(vs.full_phases[i]);
    }
    ar.boolean(vs.in_ready);
    ar.u64(vs.ready_phase);
  }
  return seal_image(std::move(ar).take());
}

void Scheduler::restore_state(const std::vector<std::uint8_t>& image) {
  DF_CHECK(ring_count_ == 0 && pmax_ == 0,
           "restore_state must be called on a fresh scheduler");
  auto ar = support::StateArchive::loader(open_image(image, "scheduler"));
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  ar.u32(magic);
  DF_CHECK(magic == kSchedulerImageMagic,
           "scheduler checkpoint: bad magic (not a DFSC image)");
  ar.u32(version);
  DF_CHECK(version == kSchedulerImageVersion,
           "scheduler checkpoint: unsupported version ", version);
  std::vector<std::uint32_t> m;
  ar.sequence(m, [](support::StateArchive& a, std::uint32_t& v) { a.u32(v); });
  DF_CHECK(m == m_,
           "scheduler checkpoint: m-vector mismatch (different program "
           "or block)");
  std::uint32_t sources = 0;
  ar.u32(sources);
  DF_CHECK(sources == signal_sources_,
           "scheduler checkpoint: signal-source prefix mismatch");
  ar.u64(pmax_);
  ar.u64(completed_through_);
  std::uint64_t active = 0;
  ar.u64(active);
  DF_CHECK(completed_through_ <= pmax_ &&
               active == pmax_ - completed_through_,
           "scheduler checkpoint: inconsistent phase window");
  for (std::uint64_t i = 0; i < active; ++i) {
    const event::PhaseId expected = completed_through_ + 1 + i;
    PhaseSlot& slot = push_phase(expected);
    std::uint64_t id = 0;
    ar.u64(id);
    DF_CHECK(id == expected, "scheduler checkpoint: phase ids not contiguous");
    ar.u32(slot.x);
    ar.u32(slot.pending_count);
    ar.u32(slot.partial_count);
    ar.u32(slot.promoted_bound);
    for (std::uint32_t w = 0; w < words_; ++w) ar.u64(slot.pending_bits[w]);
    for (std::uint32_t w = 0; w < words_; ++w) ar.u64(slot.partial_bits[w]);
    DF_CHECK(slot.x <= n_ && slot.promoted_bound <= n_,
             "scheduler checkpoint: cursor out of range");
    DF_CHECK(popcount_words(slot.pending_bits) == slot.pending_count &&
                 popcount_words(slot.partial_bits) == slot.partial_count,
             "scheduler checkpoint: set counts disagree with bitsets");
    // min_pending_word restarts at 0: the hint must only under-approximate
    // the true minimum word, and 0 always does.
    slot.min_pending_word = 0;
    std::uint32_t live = 0;
    ar.u32(live);
    for (std::uint32_t b = 0; b < live; ++b) {
      std::uint32_t vertex = 0;
      ar.u32(vertex);
      DF_CHECK(vertex >= 1 && vertex <= n_ &&
                   slot.bundle[vertex] == kNoBundle,
               "scheduler checkpoint: bad live-bundle vertex");
      DF_CHECK(bit_test(slot.pending_bits, vertex),
               "scheduler checkpoint: live bundle for a non-pending vertex");
      event::InputBundle bundle;
      persist_bundle(ar, bundle);
      slot.bundle[vertex] = pool_.adopt(std::move(bundle));
    }
  }
  for (std::uint32_t v = 1; v <= n_; ++v) {
    VertexState& vs = vertices_[v];
    ar.sequence(vs.full_phases,
                [](support::StateArchive& a, event::PhaseId& p) { a.u64(p); });
    vs.full_head = 0;
    for (std::size_t i = 0; i < vs.full_phases.size(); ++i) {
      const event::PhaseId p = vs.full_phases[i];
      DF_CHECK(p > completed_through_ && p <= pmax_ &&
                   (i == 0 || vs.full_phases[i - 1] < p),
               "scheduler checkpoint: full-phase FIFO out of range");
    }
    ar.boolean(vs.in_ready);
    ar.u64(vs.ready_phase);
    DF_CHECK(!vs.in_ready || (vs.ready_phase > completed_through_ &&
                              vs.ready_phase <= pmax_),
             "scheduler checkpoint: issued pair out of the active window");
  }
  ar.finish();
}

}  // namespace df::core
