// The parallel event-correlation engine (paper section 3.2).
//
// Structure mirrors the paper exactly:
//   * an arbitrary number of *computation processes* (worker threads), each
//     an infinite loop: dequeue a ready vertex-phase pair from the run
//     queue, execute it, lock, update the scheduler's sets, unlock
//     (Listing 1);
//   * an *environment* that starts phases by injecting source vertex-phase
//     pairs into the full set (Listing 2). Here the environment runs on the
//     caller's thread — run() drives it from a PhaseFeed, or the streaming
//     API (start / start_phase / finish) lets applications start phases as
//     real event batches arrive (event/phase.hpp assembles those);
//   * one global lock guards all scheduler state; module execution happens
//     outside the lock with the sealed input bundle from the queue item.
//
// Deviations from the listings, documented in DESIGN.md:
//   * termination: the paper's loops never exit; we close the run queue
//     once every started phase has completed, and workers exit on a drained
//     closed queue;
//   * backpressure: the paper's environment "sleeps for some amount of
//     time"; we bound the number of in-flight phases instead so memory use
//     is bounded at any event rate;
//   * staged deliveries: with several workers, an executed pair is not
//     applied to the sets under the lock by the worker that ran it.
//     Instead the worker appends a StagedFinish record to its own SPSC
//     staging ring and one drainer at a time (whoever wins the `draining_`
//     flag) applies whole batches with a single frontier/promotion/collect
//     pass, shrinking both the number of lock acquisitions and the work
//     done per acquisition (DESIGN.md, "Staged delivery rings").
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "concurrency/annotations.hpp"
#include "concurrency/blocking_queue.hpp"
#include "concurrency/sharded_counter.hpp"
#include "concurrency/spsc_ring.hpp"
#include "core/dispatch.hpp"
#include "core/executor.hpp"
#include "core/observer.hpp"
#include "core/program.hpp"
#include "core/scheduler.hpp"
#include "core/sharded_scheduler.hpp"
#include "core/sink_store.hpp"
#include "support/histogram.hpp"

namespace df::core {

struct EngineOptions {
  /// Computation threads (the paper's thread pool size). The environment
  /// runs on the calling thread, matching the paper's "always at least two
  /// threads contending for the data structures".
  std::size_t threads = 2;
  /// Maximum phases in flight before start_phase blocks; 0 = unbounded.
  std::size_t max_inflight_phases = 64;
  /// Optional set-membership observer (tracing); see core/observer.hpp.
  SchedulerObserver* observer = nullptr;
  /// When true, records a histogram of in-flight phase counts sampled at
  /// every pair completion (the Figure 1 pipelining measurement).
  bool sample_inflight = false;
  /// When true (default) and more than one worker runs, finished pairs are
  /// staged in per-worker SPSC rings and applied to the scheduler in
  /// batches by a single drainer; false forces the lock-per-pair path. An
  /// observer also forces the per-pair path (it needs a snapshot per
  /// transition).
  bool staged_deliveries = true;
  /// Per-worker staging-ring capacity; rounded up to a power of two. A
  /// full ring never blocks a worker — it falls back to applying that pair
  /// directly under the lock.
  std::size_t staging_ring_capacity = 256;
  /// Staged finishes accumulate until this many are pending before anyone
  /// volunteers to drain, so each drain amortizes its lock acquisition and
  /// frontier pass over a real batch. Liveness does not depend on the
  /// target: a worker always drains everything pending before it would
  /// block on an empty run queue. 0 picks a default from the thread count.
  /// In sharded mode the same target paces both the local apply flush and
  /// the collect volunteer threshold.
  std::size_t drain_batch_target = 0;
  /// Number of partition-aligned scheduler shards. 1 (default) keeps the
  /// flat scheduler with the PR 3 staged-ring drain — the exact legacy
  /// code paths, byte-for-byte. Values > 1 opt in to the sharded
  /// scheduler (core/sharded_scheduler.hpp): finished pairs are applied
  /// under per-shard locks (stage 1, parallel across disjoint graph
  /// regions) and one collector at a time composes the frontier and
  /// issues ready pairs (stage 2). Clamped to the vertex count. A
  /// per-transition observer forces the flat path (it needs a snapshot
  /// per transition). With max_inflight_phases == 0 the sharded
  /// scheduler's finite slot ring bounds the window at 64.
  std::size_t scheduler_shards = 1;

  /// Run-queue dispatch mode. kCentral (default) keeps the single blocking
  /// MPMC run queue — one mutex+condvar shared by every worker.
  /// kWorkStealing replaces it with per-worker bounded Chase–Lev deques:
  /// ready batches are distributed round-robin in chunks (the producing
  /// worker keeps its first chunk — cache-warm pairs stay local), idle
  /// workers steal from the top of other workers' deques, overflow spills
  /// to a shared injector, and an idle worker spins adaptively before
  /// parking on a per-worker parker that producers wake individually
  /// (DESIGN.md, "Work-stealing dispatch"). Central stays the default
  /// until the multicore crossover is recorded — the same opt-in playbook
  /// as scheduler_shards. Composes with both the flat (staged rings) and
  /// sharded scheduler paths; the observer and threads=1 configurations
  /// are unaffected by the default.
  enum class Dispatch { kCentral, kWorkStealing };
  Dispatch dispatch = Dispatch::kCentral;
  /// Stealing mode: per-worker deque capacity, rounded up to a power of
  /// two. A full deque never blocks or drops — the remainder of the batch
  /// spills to the mutex-protected global injector.
  std::size_t steal_deque_capacity = 256;
  /// Stealing mode: chunk size for distributing one ready batch over the
  /// worker deques. 0 (default) picks ceil(batch / threads), so one batch
  /// wakes at most min(batch, threads) workers — never more wakeups than
  /// items.
  std::size_t dispatch_chunk = 0;

  /// Restricts the engine to one contiguous block [begin, end] of the
  /// program's satisfactory numbering (the transport's two-level mode: a
  /// full worker pool inside every partition block). The engine still
  /// instantiates the complete ProgramInstance — module state and rng
  /// streams fork by *global* internal index, bit-identical to the
  /// sequential reference — but schedules only the block: its Scheduler /
  /// ShardedScheduler tables, bitsets and FIFOs are sized and indexed to
  /// local indices 1..B (B = end - begin + 1) via graph::block_local_m,
  /// and scheduler_shards sub-partition the *block*, not the program.
  ///
  /// Seam contracts:
  ///  * deliveries an executed pair addresses beyond `end` are handed to
  ///    `egress` (global index preserved) instead of entering the
  ///    scheduler — the transport routes them onto the wire;
  ///  * remote deliveries for a phase are injected through the
  ///    start_phase(events, remote) overload when the phase window opens
  ///    (the caller guarantees completeness — the watermark handshake);
  ///  * when `sinks` is non-null, workers record sink batches there
  ///    (shared across the block engines of one transport run) instead of
  ///    the engine's own store.
  /// begin > end describes an empty block (B = 0): every phase retires at
  /// start and the engine only paces watermarks.
  struct BlockScope {
    std::uint32_t begin = 1;
    std::uint32_t end = 0;
    std::function<void(Delivery&&, event::PhaseId)> egress;
    SinkStore* sinks = nullptr;
  };
  std::optional<BlockScope> block;

  /// Fired (outside every engine lock, possibly concurrently from several
  /// worker threads and the environment thread) each time
  /// completed_phases() advances, with the new completed-through value.
  /// Values may arrive out of order across threads; consumers needing
  /// monotonicity (e.g. the transport's watermark flush) must impose it
  /// themselves. The callback may block (it sends on channels); it must
  /// not call back into the engine.
  std::function<void(event::PhaseId)> on_phase_complete;
};

class Engine final : public Executor {
 public:
  Engine(const Program& program, EngineOptions options = {});
  ~Engine() override;

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Executor interface: drives the environment from `feed` for
  /// `num_phases` phases and blocks until all of them complete.
  void run(event::PhaseId num_phases, PhaseFeed* feed) override;

  // Streaming interface --------------------------------------------------
  /// Spawns the computation threads. Idempotent.
  void start();
  /// Starts the next phase carrying `events` (may be empty: pure phase
  /// signal). Blocks while max_inflight_phases are active. The rvalue
  /// overload moves the event payloads into the source bundles instead of
  /// copying them.
  void start_phase(const std::vector<event::ExternalEvent>& events);
  void start_phase(std::vector<event::ExternalEvent>&& events);
  /// Block-mode phase start (requires EngineOptions::block): `remote`
  /// carries the reassembled cross-boundary deliveries for this phase,
  /// addressed by *global* internal index inside the block; they are
  /// translated to local indices and injected as the phase's virtual
  /// index-0 inputs before any in-block pair of the phase executes (the
  /// watermark handshake makes the set complete at call time). The vector
  /// is consumed (payloads moved out).
  void start_phase(const std::vector<event::ExternalEvent>& events,
                   std::vector<Scheduler::Delivery>& remote);
  /// Blocks until every started phase has completed, then stops workers.
  /// If any module threw during execution, the first exception is rethrown
  /// here (the failed pair is treated as having produced no output, so the
  /// rest of the computation still drains deterministically).
  void finish();

  /// Phases fully completed so far (prefix 1..k).
  event::PhaseId completed_phases() const;

  // Checkpointing (crash-restart recovery; DESIGN.md "Crash-restart
  // recovery"). Flat-scheduler path only — the sharded scheduler
  // DF_CHECK-rejects.
  /// Blocks until every started phase has completed and every staged finish
  /// has been applied (workers drain their rings before blocking, so this
  /// needs no help from the caller). The engine stays running; this is the
  /// quiescent point snapshots are taken at.
  void quiesce();
  /// Serializes the block's full execution state into a self-validating
  /// "DFEG" image: the scheduler image (nested "DFSC" blob) plus, for every
  /// owned vertex, the module state (Module::persist_state), the rng stream,
  /// and the latest-value cache. Call only at a quiescent point (after
  /// quiesce(), with no concurrent start_phase) — module state is read
  /// without locks on the guarantee that no worker is executing.
  std::vector<std::uint8_t> snapshot_state();
  /// Rebuilds state from a snapshot_state image. Must be called after
  /// start() (reserve_steady_state precedes the first phase) and before any
  /// start_phase on this engine. Magic, version, checksum, block range, and
  /// scheduler geometry are all validated; failure throws
  /// support::check_error and leaves the engine unusable — discard it and
  /// retry with an older image.
  void restore_state(const std::vector<std::uint8_t>& image);

  const SinkStore& sinks() const override { return sinks_; }
  ExecStats stats() const override;

  /// In-flight phase distribution (only populated with sample_inflight).
  const support::CountHistogram& inflight_histogram() const {
    return inflight_;
  }

  const ProgramInstance& instance() const { return instance_; }

 private:
  void worker_main(std::size_t worker_index);
  /// Worker loop for sharded mode (scheduler_shards > 1): execute, batch
  /// finishes locally, apply under shard locks, volunteer to collect.
  void worker_main_sharded(std::size_t worker_index);
  /// Applies the worker's local batch to the sharded scheduler (stage 1)
  /// and publishes the count for collect pacing. Clears `local`.
  void flush_applies(std::vector<Scheduler::StagedFinish>& local);
  /// Stage 2 volunteer: run a collect whenever at least `threshold`
  /// applied finishes await one and nobody else holds the collecting
  /// flag. Same liveness/stranding discipline as maybe_drain: threshold 1
  /// callers (about to block) wait for the flag and mop up the residue;
  /// the post-release re-check covers applies that landed after the
  /// collector's pass. `worker` is the calling worker's dispatch lane
  /// (ready pairs a collect issues are enqueued on its behalf).
  void maybe_collect(std::size_t threshold, std::size_t worker);
  /// Applies one finished pair under the global lock — the paper's
  /// Listing 1 tail and the PR 1 hot path; still used when staging is off,
  /// when a staging ring overflows, and for per-transition observers.
  void apply_finish_locked(Scheduler::StagedFinish& staged,
                           std::vector<Scheduler::ReadyPair>& ready);
  /// Staged path: drain whatever is visible in the staging rings whenever
  /// at least `threshold` entries are pending and nobody else holds the
  /// drain flag. The post-release re-check closes the classic stranding
  /// window: a worker that staged an entry after the current drainer swept
  /// its ring and then lost the flag race is covered by the drainer's next
  /// staged_pending_ check. Threshold 1 = drain everything (the mandatory
  /// pre-block call); the batch target trades a little latency for one
  /// frontier pass per batch. `worker` is the calling worker's dispatch
  /// lane.
  void maybe_drain(std::size_t threshold, std::size_t worker);
  /// One drain pass: pops every visible staged finish (ring consumer side,
  /// exclusive via draining_), applies the whole batch to the scheduler
  /// under one short lock acquisition, then enqueues the issued pairs.
  /// Returns the number of entries applied. Caller holds draining_.
  std::size_t drain_staged(std::size_t worker);
  /// Hands every pair to the dispatch layer and clears `ready` so the
  /// caller can reuse the buffer. Central: one run-queue lock acquisition
  /// for the whole batch. Stealing: chunks go round-robin into worker
  /// lanes with one targeted unpark each, and the producing worker
  /// (`producer` — kEnvProducer for the environment thread) keeps its
  /// first chunk in its own deque.
  void enqueue_ready(std::vector<Scheduler::ReadyPair>& ready,
                     std::size_t producer);
  /// Shared tail of the start_phase overloads: `bundles` holds one
  /// pre-reserved bundle per signal source; `injected` carries block-mode
  /// remote deliveries already translated to local indices.
  void start_phase_bundles(std::vector<event::InputBundle>& bundles,
                           std::span<Scheduler::Delivery> injected = {});
  /// Sizes env_bundles_ and reserves per-source counts for `events`.
  void reserve_source_bundles(const std::vector<event::ExternalEvent>& events);
  /// Block mode: splits an executed pair's deliveries into in-block ones
  /// (translated global -> local in place, compacted to the vector front)
  /// and egress ones (handed to the BlockScope::egress hook with their
  /// global index). No-op pass-through when no block scope is set. Called
  /// from both worker loops outside any engine lock.
  void route_deliveries(std::vector<Scheduler::Delivery>& deliveries,
                        event::PhaseId phase);

  /// Scheduling geometry resolved from options before member construction:
  /// the m-vector the schedulers index by (global or block-local), how many
  /// leading local indices are environment-signalled sources, and the
  /// local<->global index translation.
  struct BlockPlan {
    std::vector<std::uint32_t> m;
    std::uint32_t signal_sources = Scheduler::kAllSources;
    std::uint32_t offset = 0;     // global == local + offset
    std::uint32_t block_end = 0;  // global index of the last block vertex
  };
  static BlockPlan plan_scope(const Program& program,
                              const EngineOptions& options);
  Engine(const Program& program, EngineOptions options, BlockPlan plan);

  ProgramInstance instance_;
  EngineOptions options_;
  /// The flat scheduler is passive: every call happens under mutex_ (the
  /// paper's single global lock), which the annotation now enforces.
  Scheduler scheduler_ DF_GUARDED_BY(mutex_);
  SinkStore sinks_;
  std::uint32_t offset_ = 0;     // block mode: global == local + offset_
  std::uint32_t block_end_ = 0;  // block mode: last owned global index
  SinkStore* sink_target_ = nullptr;  // where workers record (usually own)

  // Sharded mode (PR 4 tentpole; DESIGN.md "Sharded scheduler"). Non-null
  // iff scheduler_shards > 1 resolved to the sharded path; the flat
  // scheduler_ above then stays unused so the shards=1 configuration is
  // untouched. apply_dirty_ counts finishes applied under shard locks but
  // not yet covered by a collect; collecting_ serializes collectors the
  // way draining_ serializes drainers. collect_ready_ is owned by the
  // collecting_ holder.
  std::unique_ptr<ShardedScheduler> sharded_;
  std::size_t sharded_window_ = 0;  // backpressure bound == slot capacity
  std::atomic<std::size_t> apply_dirty_{0};
  std::atomic<bool> collecting_{false};
  std::vector<Scheduler::ReadyPair> collect_ready_;

  // Environment-thread scratch (start_phase is called by one thread only):
  // reused across phases so steady-state phase starts stay allocation-light.
  std::vector<event::InputBundle> env_bundles_;
  std::vector<std::uint32_t> env_indices_;
  std::vector<std::size_t> env_counts_;
  std::vector<Scheduler::ReadyPair> env_ready_;

  mutable conc::Mutex mutex_;  // the paper's single global lock
  conc::CondVar progress_cv_;
  conc::BlockingQueue<Scheduler::ReadyPair> run_queue_;
  /// Work-stealing dispatch (PR 9 tentpole; DESIGN.md "Work-stealing
  /// dispatch"). Non-null iff options_.dispatch == kWorkStealing, resolved
  /// in start(); run_queue_ then carries no traffic. Closed at exactly the
  /// two sites that close run_queue_ (finish() and the abandoning
  /// destructor), after the abandoning_ store — the same release/acquire
  /// teardown argument applies: a worker observes a rejected push only
  /// after an acquire of the dispatch's closed flag (or the inbox mutex),
  /// which the closer's preceding abandoning_ store is ordered before.
  std::unique_ptr<StealDispatch<Scheduler::ReadyPair>> steal_;
  /// Producer id for enqueue_ready calls from the environment thread (it
  /// owns no dispatch lane; every chunk it issues goes through inboxes).
  static constexpr std::size_t kEnvProducer =
      StealDispatch<Scheduler::ReadyPair>::kExternalProducer;
  std::vector<std::thread> workers_;
  bool started_ = false;
  bool finished_ = false;
  /// Set by the destructor when tearing down with work outstanding; lets
  /// workers drop ready pairs instead of treating a closed queue as a bug.
  /// Ordering: the destructor stores this *before* closing the run queue,
  /// and a worker reads it only after observing the closed queue, so the
  /// queue mutex's release/acquire edge makes the store visible — a late
  /// rejected push can never see abandoning_ == false (see ~Engine).
  std::atomic<bool> abandoning_{false};
  std::exception_ptr first_error_ DF_GUARDED_BY(mutex_);

  // Staged delivery rings (tentpole of PR 3; DESIGN.md "Staged delivery
  // rings"). Worker i is the only producer of staging_[i]; the consumer
  // side of every ring belongs to whoever holds draining_ (the flag
  // exchange is the acquire/release handoff SpscRing requires).
  // staged_pending_ counts entries staged but not yet applied; it is
  // incremented *before* the ring push so a drainer's pending check can
  // never miss an entry it might also fail to see in the ring (it spins
  // through the sub-nanosecond publication window instead of exiting).
  bool use_staging_ = false;  // resolved from options in start()
  std::size_t drain_batch_target_ = 1;  // resolved from options in start()
  std::vector<std::unique_ptr<conc::SpscRing<Scheduler::StagedFinish>>>
      staging_;
  std::atomic<std::size_t> staged_pending_{0};
  std::atomic<bool> draining_{false};
  // Drain-pass scratch, reused across drains; owned by the draining_
  // holder, so unsynchronized access is safe.
  std::vector<Scheduler::StagedFinish> drain_batch_;
  std::vector<Scheduler::ReadyPair> drain_ready_;

  // Statistics.
  conc::ShardedCounter executed_pairs_;
  conc::ShardedCounter messages_delivered_;
  conc::ShardedCounter sink_records_;
  conc::ShardedCounter compute_ns_;
  conc::ShardedCounter bookkeeping_ns_;
  std::uint64_t max_inflight_ DF_GUARDED_BY(mutex_) = 0;
  std::uint64_t inflight_samples_ DF_GUARDED_BY(mutex_) = 0;
  std::uint64_t inflight_sum_ DF_GUARDED_BY(mutex_) = 0;
  // Written under mutex_; inflight_histogram() hands out a const reference
  // for post-run inspection, so this stays outside the static annotation.
  support::CountHistogram inflight_{256};
  double wall_seconds_ = 0.0;
};

}  // namespace df::core
