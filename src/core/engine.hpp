// The parallel event-correlation engine (paper section 3.2).
//
// Structure mirrors the paper exactly:
//   * an arbitrary number of *computation processes* (worker threads), each
//     an infinite loop: dequeue a ready vertex-phase pair from the run
//     queue, execute it, lock, update the scheduler's sets, unlock
//     (Listing 1);
//   * an *environment* that starts phases by injecting source vertex-phase
//     pairs into the full set (Listing 2). Here the environment runs on the
//     caller's thread — run() drives it from a PhaseFeed, or the streaming
//     API (start / start_phase / finish) lets applications start phases as
//     real event batches arrive (event/phase.hpp assembles those);
//   * one global lock guards all scheduler state; module execution happens
//     outside the lock with the sealed input bundle from the queue item.
//
// Deviations from the listings, documented in DESIGN.md:
//   * termination: the paper's loops never exit; we close the run queue
//     once every started phase has completed, and workers exit on a drained
//     closed queue;
//   * backpressure: the paper's environment "sleeps for some amount of
//     time"; we bound the number of in-flight phases instead so memory use
//     is bounded at any event rate.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "concurrency/blocking_queue.hpp"
#include "concurrency/sharded_counter.hpp"
#include "core/executor.hpp"
#include "core/observer.hpp"
#include "core/program.hpp"
#include "core/scheduler.hpp"
#include "core/sink_store.hpp"
#include "support/histogram.hpp"

namespace df::core {

struct EngineOptions {
  /// Computation threads (the paper's thread pool size). The environment
  /// runs on the calling thread, matching the paper's "always at least two
  /// threads contending for the data structures".
  std::size_t threads = 2;
  /// Maximum phases in flight before start_phase blocks; 0 = unbounded.
  std::size_t max_inflight_phases = 64;
  /// Optional set-membership observer (tracing); see core/observer.hpp.
  SchedulerObserver* observer = nullptr;
  /// When true, records a histogram of in-flight phase counts sampled at
  /// every pair completion (the Figure 1 pipelining measurement).
  bool sample_inflight = false;
};

class Engine final : public Executor {
 public:
  Engine(const Program& program, EngineOptions options = {});
  ~Engine() override;

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Executor interface: drives the environment from `feed` for
  /// `num_phases` phases and blocks until all of them complete.
  void run(event::PhaseId num_phases, PhaseFeed* feed) override;

  // Streaming interface --------------------------------------------------
  /// Spawns the computation threads. Idempotent.
  void start();
  /// Starts the next phase carrying `events` (may be empty: pure phase
  /// signal). Blocks while max_inflight_phases are active. The rvalue
  /// overload moves the event payloads into the source bundles instead of
  /// copying them.
  void start_phase(const std::vector<event::ExternalEvent>& events);
  void start_phase(std::vector<event::ExternalEvent>&& events);
  /// Blocks until every started phase has completed, then stops workers.
  /// If any module threw during execution, the first exception is rethrown
  /// here (the failed pair is treated as having produced no output, so the
  /// rest of the computation still drains deterministically).
  void finish();

  /// Phases fully completed so far (prefix 1..k).
  event::PhaseId completed_phases() const;

  const SinkStore& sinks() const override { return sinks_; }
  ExecStats stats() const override;

  /// In-flight phase distribution (only populated with sample_inflight).
  const support::CountHistogram& inflight_histogram() const {
    return inflight_;
  }

  const ProgramInstance& instance() const { return instance_; }

 private:
  void worker_main();
  /// Moves every pair into the run queue under one lock acquisition and
  /// clears `ready` so the caller can reuse the buffer.
  void enqueue_ready(std::vector<Scheduler::ReadyPair>& ready);
  /// Shared tail of the two start_phase overloads: `bundles` holds one
  /// pre-reserved bundle per source vertex.
  void start_phase_bundles(std::vector<event::InputBundle>& bundles);
  /// Sizes env_bundles_ and reserves per-source counts for `events`.
  void reserve_source_bundles(const std::vector<event::ExternalEvent>& events);

  ProgramInstance instance_;
  EngineOptions options_;
  Scheduler scheduler_;
  SinkStore sinks_;

  // Environment-thread scratch (start_phase is called by one thread only):
  // reused across phases so steady-state phase starts stay allocation-light.
  std::vector<event::InputBundle> env_bundles_;
  std::vector<std::uint32_t> env_indices_;
  std::vector<std::size_t> env_counts_;
  std::vector<Scheduler::ReadyPair> env_ready_;

  mutable std::mutex mutex_;  // the paper's single global lock
  std::condition_variable progress_cv_;
  conc::BlockingQueue<Scheduler::ReadyPair> run_queue_;
  std::vector<std::thread> workers_;
  bool started_ = false;
  bool finished_ = false;
  /// Set by the destructor when tearing down with work outstanding; lets
  /// workers drop ready pairs instead of treating a closed queue as a bug.
  std::atomic<bool> abandoning_{false};
  std::exception_ptr first_error_;  // guarded by mutex_

  // Statistics.
  conc::ShardedCounter executed_pairs_;
  conc::ShardedCounter messages_delivered_;
  conc::ShardedCounter sink_records_;
  conc::ShardedCounter compute_ns_;
  conc::ShardedCounter bookkeeping_ns_;
  std::uint64_t max_inflight_ = 0;         // guarded by mutex_
  std::uint64_t inflight_samples_ = 0;     // guarded by mutex_
  std::uint64_t inflight_sum_ = 0;         // guarded by mutex_
  support::CountHistogram inflight_{256};  // guarded by mutex_
  double wall_seconds_ = 0.0;
};

}  // namespace df::core
