// Collection point for sink output.
//
// "Sink vertices are read by input/output units outside the data fusion
// system" (paper section 2). Every emission on a port with no downstream
// edge is recorded here, tagged with its phase. The store is the basis of
// the serializability checker: a parallel execution is correct iff its
// sorted sink records equal the sequential reference's.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "concurrency/annotations.hpp"
#include "event/phase.hpp"
#include "event/value.hpp"
#include "graph/dag.hpp"

namespace df::core {

struct SinkRecord {
  event::PhaseId phase = 0;
  graph::VertexId vertex = 0;  // original (dense) vertex id
  graph::Port port = 0;
  event::Value value;

  friend bool operator==(const SinkRecord&, const SinkRecord&) = default;
};

class SinkStore {
 public:
  /// Appends a batch of records produced by one vertex-phase execution.
  /// Thread-safe; the batch stays contiguous, preserving emission order.
  void record_batch(std::vector<SinkRecord> batch);

  std::size_t size() const;

  /// All records in canonical order: sorted by (phase, vertex, port) with
  /// per-execution emission order preserved (stable sort). Two serializable
  /// executions of the same program produce identical canonical vectors.
  std::vector<SinkRecord> canonical() const;

  /// Records for a single vertex in phase order.
  std::vector<SinkRecord> for_vertex(graph::VertexId vertex) const;

  void clear();

  /// Drops every record past the first `count`, restoring the store to the
  /// size it had at a checkpoint. Correct at quiesced checkpoints only: with
  /// no vertex mid-execution, positions [0, count) hold exactly the records
  /// of completed phases regardless of the interleaving that appended them,
  /// and re-execution after restore appends only later phases.
  void truncate(std::size_t count);

  /// Moves every record into `target` (batch append) and clears this store.
  /// Used by the transport to fold per-partition stores into the engine's
  /// canonical store after all partitions finish.
  void drain_into(SinkStore& target);

 private:
  mutable conc::Mutex mutex_;
  std::vector<SinkRecord> records_ DF_GUARDED_BY(mutex_);
};

/// Human-readable one-line rendering, for diagnostics and examples.
std::string to_string(const SinkRecord& record);

}  // namespace df::core
