// Work-stealing dispatch: the engine's opt-in replacement for the central
// blocking run queue (DESIGN.md, "Work-stealing dispatch").
//
// One Lane per worker:
//   * a bounded Chase–Lev WsDeque — the owner pushes/pops ready pairs at
//     the bottom (LIFO, cache-warm), thieves steal from the top;
//   * an inbox (a small mutex-protected Injector) — the cross-thread
//     half of "distribute ready batches round-robin into worker deques":
//     a Chase–Lev bottom is single-owner by construction, so a foreign
//     producer (the environment thread in start_phase, or the drainer
//     handing out a ready batch) cannot write another worker's deque
//     directly; it pushes the chunk into the target's inbox under one
//     lock acquisition and unparks exactly that worker. The owner moves
//     inbox chunks into its deque before stealing from anyone else, so
//     inbox traffic stays batch-granular and lane-local;
//   * a Parker — one-permit semaphore for the spin-then-park idle policy.
//
// Plus one shared global Injector: the overflow pool a full deque spills
// to, and the refill source of last resort before parking.
//
// Worker acquire order: own deque pop -> inbox refill -> steal sweep over
// the other lanes -> global injector -> (drain staged finishes via the
// caller's pre-block hook) -> adaptive spin -> park. See the header
// comments in concurrency/ws_deque.hpp and concurrency/parker.hpp for the
// memory-order and wakeup arguments; the no-lost-wakeup contract is:
//
//   every enqueued item lives in a structure whose responsible consumer
//   is either awake or has a parker permit banked.
//
//   * own-deque items: pushed by the owner while running, and a worker
//     never parks before its own deque is empty;
//   * inbox items: every inbox push is followed unconditionally by
//     unpark(target) — if the target was mid-park-decision the permit is
//     banked and its park() returns immediately for another sweep;
//   * injector items: the spilling worker itself sweeps the injector
//     before it can park, so the spiller is the guaranteed consumer; the
//     idle-mask unparks on spill (and the wake-another chain when a
//     refill leaves items behind) only add parallelism, they are not
//     load-bearing for liveness.
//
// Thread-safety annotations: the lock-free deque/parker/idle-mask
// protocols are beyond clang's lock-based analysis (documented there);
// the mutex-guarded pieces (Injector) are annotated. The TSan stress
// suite (ctest -L concurrency) is the checker for the lock-free parts.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "concurrency/parker.hpp"
#include "concurrency/ws_deque.hpp"
#include "support/check.hpp"

namespace df::core {

template <typename T>
class StealDispatch {
 public:
  /// Producer id used by threads that own no lane (the environment
  /// thread): every chunk they dispatch goes through inboxes.
  static constexpr std::size_t kExternalProducer =
      static_cast<std::size_t>(-1);

  struct Counters {
    std::uint64_t steals_ok = 0;     // successful steals from another lane
    std::uint64_t steals_empty = 0;  // steal sweeps that found nothing
    std::uint64_t parks = 0;         // times a worker actually slept
  };

  /// `chunk` is the batch-affine dispatch granule; 0 picks
  /// ceil(batch/workers) per push so a batch wakes at most
  /// min(batch, workers) workers. Deque capacity is rounded up to a
  /// power of two.
  StealDispatch(std::size_t workers, std::size_t deque_capacity,
                std::size_t chunk)
      : chunk_(chunk) {
    DF_CHECK(workers >= 1 && workers <= 64,
             "work-stealing dispatch supports 1..64 workers, got ", workers);
    std::size_t capacity = 2;
    while (capacity < deque_capacity) {
      capacity *= 2;
    }
    lanes_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) {
      lanes_.push_back(std::make_unique<Lane>(capacity));
    }
  }

  /// Distributes `batch` in chunks: the producing worker's first chunk is
  /// owner-pushed into its own deque (cache-warm pairs stay local, one
  /// release store per item, no lock); every other chunk goes to a
  /// round-robin lane's inbox under one lock acquisition, followed by a
  /// targeted unpark of exactly that lane. Elements are moved out;
  /// callers clear() and reuse the vector. Returns false once closed —
  /// like BlockingQueue::push_all, the caller treats that as "dropped,
  /// legal only while abandoning".
  bool push_batch(std::vector<T>& batch, std::size_t producer) {
    if (batch.empty()) {
      return true;
    }
    if (closed_.load(std::memory_order_acquire)) {
      return false;
    }
    const std::size_t workers = lanes_.size();
    const std::size_t chunk =
        chunk_ != 0 ? chunk_ : (batch.size() + workers - 1) / workers;
    std::size_t i = 0;
    if (producer < workers) {
      Lane& self = *lanes_[producer];
      const std::size_t own_end =
          chunk < batch.size() ? chunk : batch.size();
      while (i < own_end && self.deque.push(batch[i])) {
        ++i;
      }
      // A refused push means the deque is full: fall through and let the
      // remainder (this chunk's tail included) spill through the inbox /
      // injector machinery below.
    }
    bool ok = true;
    while (i < batch.size()) {
      const std::size_t end =
          i + chunk < batch.size() ? i + chunk : batch.size();
      Lane& target =
          *lanes_[rr_.fetch_add(1, std::memory_order_relaxed) % workers];
      if (target.inbox.push_batch(
              std::span<T>(batch).subspan(i, end - i))) {
        target.parker.unpark();
      } else {
        ok = false;  // closed mid-distribution (abandoning teardown)
      }
      i = end;
    }
    return ok;
  }

  /// Worker side: returns the next item to execute, or nullopt once the
  /// dispatch is closed and this worker's sweep finds nothing left.
  /// `pre_block` runs every time the worker is about to give up on a
  /// sweep — the engine drains its staged finishes there (the same
  /// "drain everything before you block" contract the central queue's
  /// pre-block hook honors), which may enqueue fresh work.
  template <typename PreBlock>
  std::optional<T> acquire(std::size_t worker, PreBlock&& pre_block) {
    Lane& lane = *lanes_[worker];
    for (;;) {
      if (std::optional<T> item = lane.deque.pop()) {
        return item;
      }
      if (std::optional<T> item = refill_from_inbox(lane)) {
        return item;
      }
      if (std::optional<T> item = steal_sweep(worker, lane)) {
        return item;
      }
      if (std::optional<T> item = refill_from_injector(lane)) {
        return item;
      }
      if (closed_.load(std::memory_order_acquire)) {
        // Closed and this worker's full sweep came up empty: exit. Other
        // lanes' leftovers (abandoning teardown only) are drained or
        // destroyed by their own owners — a worker never exits with items
        // in its own lane.
        return std::nullopt;
      }
      pre_block();
      // The drain may have fed our own lane (producer == this worker) or
      // the injector; re-sweep before spending any spin budget.
      if (anything_local(lane)) {
        continue;
      }
      if (spin_for_work(worker, lane)) {
        lane.spin.spin_succeeded();
        continue;
      }
      // Advertise idleness, then re-check, then park. The idle bit only
      // gates the *optional* spill-path wakeups (see file comment); the
      // re-check after setting it closes the obvious window, and inbox
      // pushes need no window at all (their permits are sticky).
      idle_.fetch_or(bit(worker), std::memory_order_seq_cst);
      if (closed_.load(std::memory_order_acquire) ||
          anything_visible(worker, lane)) {
        idle_.fetch_and(~bit(worker), std::memory_order_relaxed);
        continue;
      }
      lane.spin.spin_failed();
      lane.parks.fetch_add(1, std::memory_order_relaxed);
      lane.parker.park();
      idle_.fetch_and(~bit(worker), std::memory_order_relaxed);
    }
  }

  /// Closes the dispatch: future pushes are rejected, every worker is
  /// unparked and exits once its sweep runs dry. The caller orders any
  /// abandoning flag *before* this call; the closed_ release store (and
  /// the inbox mutexes) publish it to workers that observe a rejected
  /// push, mirroring BlockingQueue::close.
  void close() {
    closed_.store(true, std::memory_order_release);
    injector_.close();
    for (auto& lane : lanes_) {
      lane->inbox.close();
    }
    for (auto& lane : lanes_) {
      lane->parker.unpark();
    }
  }

  Counters counters() const {
    Counters total;
    for (const auto& lane : lanes_) {
      total.steals_ok += lane->steals_ok.load(std::memory_order_relaxed);
      total.steals_empty +=
          lane->steals_empty.load(std::memory_order_relaxed);
      total.parks += lane->parks.load(std::memory_order_relaxed);
    }
    return total;
  }

  std::size_t workers() const { return lanes_.size(); }

 private:
  struct Lane {
    explicit Lane(std::size_t capacity) : deque(capacity) {}

    conc::WsDeque<T> deque;
    conc::Injector<T> inbox;
    conc::Parker parker;
    conc::SpinBudget spin;           // owner-only
    std::vector<T> refill_scratch;   // owner-only, reused across refills
    std::size_t next_victim = 0;     // owner-only steal-sweep rotation
    // Relaxed counters: written by the owner, read by stats() snapshots.
    std::atomic<std::uint64_t> steals_ok{0};
    std::atomic<std::uint64_t> steals_empty{0};
    std::atomic<std::uint64_t> parks{0};
  };

  static std::uint64_t bit(std::size_t worker) {
    return std::uint64_t{1} << worker;
  }

  /// Moves one inbox chunk into the owner's deque; returns the first
  /// item. Overflow (a slow thief still vacating a slot) spills the
  /// remainder to the global injector, so nothing is ever dropped.
  std::optional<T> refill_from_inbox(Lane& lane) {
    std::vector<T>& scratch = lane.refill_scratch;
    scratch.clear();
    if (lane.inbox.try_pop_batch(scratch, lane.deque.capacity()) == 0) {
      return std::nullopt;
    }
    return take_first_stash_rest(lane, scratch);
  }

  /// Pulls a chunk from the global injector. If items remain behind,
  /// wakes one more idle worker so a deep backlog drains in parallel
  /// (wake-chaining; each woken worker wakes at most one more).
  std::optional<T> refill_from_injector(Lane& lane) {
    std::vector<T>& scratch = lane.refill_scratch;
    scratch.clear();
    const std::size_t chunk =
        chunk_ != 0 ? chunk_ : lane.deque.capacity() / 4 + 1;
    if (injector_.try_pop_batch(scratch, chunk) == 0) {
      return std::nullopt;
    }
    if (!injector_.empty()) {
      unpark_one_idle();
    }
    return take_first_stash_rest(lane, scratch);
  }

  std::optional<T> take_first_stash_rest(Lane& lane,
                                         std::vector<T>& scratch) {
    T first = std::move(scratch.front());
    std::size_t kept = 1;
    for (std::size_t i = 1; i < scratch.size(); ++i) {
      if (lane.deque.push(scratch[i])) {
        ++kept;
        continue;
      }
      // Deque full (possible only through seq lag or a tiny capacity):
      // spill the tail back to the injector in one batch. Rejection only
      // happens after close, where dropping is the abandoning contract.
      scratch.erase(scratch.begin(),
                    scratch.begin() + static_cast<std::ptrdiff_t>(kept));
      injector_.push_batch(std::span<T>(scratch));
      scratch.clear();
      // Parallelism-only wakeup (liveness never depends on it: this worker
      // sweeps the injector itself before it can park): let an idle worker
      // help with the spilled backlog.
      unpark_one_idle();
      return first;
    }
    scratch.clear();
    return first;
  }

  std::optional<T> steal_sweep(std::size_t worker, Lane& lane) {
    const std::size_t workers = lanes_.size();
    if (workers == 1) {
      return std::nullopt;
    }
    // One full rotation over the other lanes, resuming where the last
    // sweep left off so repeat thieves spread across victims.
    for (std::size_t probe = 0; probe + 1 < workers; ++probe) {
      lane.next_victim = (lane.next_victim + 1) % workers;
      if (lane.next_victim == worker) {
        lane.next_victim = (lane.next_victim + 1) % workers;
      }
      if (std::optional<T> item = lanes_[lane.next_victim]->deque.steal()) {
        lane.steals_ok.fetch_add(1, std::memory_order_relaxed);
        return item;
      }
    }
    lane.steals_empty.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }

  /// Cheap polling probe for the spin phase: no stealing, just emptiness
  /// checks, so a spinning worker does not bounce victims' cache lines
  /// with failed CASes.
  bool spin_for_work(std::size_t worker, Lane& lane) {
    const std::uint32_t budget = lane.spin.budget();
    for (std::uint32_t i = 0; i < budget; ++i) {
      if (anything_visible(worker, lane)) {
        return true;
      }
      conc::cpu_relax();
    }
    return false;
  }

  bool anything_local(const Lane& lane) const {
    return !lane.deque.empty() || !lane.inbox.empty() ||
           !injector_.empty();
  }

  bool anything_visible(std::size_t worker, const Lane& lane) const {
    if (anything_local(lane)) {
      return true;
    }
    for (std::size_t v = 0; v < lanes_.size(); ++v) {
      if (v != worker && !lanes_[v]->deque.empty()) {
        return true;
      }
    }
    return false;
  }

  void unpark_one_idle() {
    std::uint64_t idle = idle_.load(std::memory_order_seq_cst);
    while (idle != 0) {
      const std::size_t victim = static_cast<std::size_t>(
          std::countr_zero(idle));
      // Claim the bit so concurrent spillers fan out over distinct
      // sleepers instead of dogpiling one.
      if (idle_.compare_exchange_weak(idle, idle & ~bit(victim),
                                      std::memory_order_seq_cst,
                                      std::memory_order_seq_cst)) {
        lanes_[victim]->parker.unpark();
        return;
      }
    }
  }

  std::vector<std::unique_ptr<Lane>> lanes_;
  conc::Injector<T> injector_;
  std::size_t chunk_;
  std::atomic<std::size_t> rr_{0};
  std::atomic<std::uint64_t> idle_{0};
  std::atomic<bool> closed_{false};
};

}  // namespace df::core
