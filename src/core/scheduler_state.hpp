// State building blocks shared by the flat scheduler (core/scheduler.hpp)
// and the partition-aligned sharded scheduler (core/sharded_scheduler.hpp):
// the pooled InputBundle storage, the per-vertex full-phase FIFO, and the
// bitset helpers. Extracted verbatim from the PR 1 flat scheduler so both
// schedulers share one implementation of the allocation-free steady state
// (see DESIGN.md, "Flat scheduler state").
#pragma once

#include <cstdint>
#include <vector>

#include "event/message.hpp"
#include "event/phase.hpp"

namespace df::core {

/// Bundle-table sentinel: no pooled bundle assigned to this vertex.
inline constexpr std::uint32_t kNoBundle = 0xffffffffu;

inline bool bit_test(const std::vector<std::uint64_t>& bits,
                     std::uint32_t v) {
  return (bits[v >> 6] >> (v & 63)) & 1u;
}
inline void bit_set(std::vector<std::uint64_t>& bits, std::uint32_t v) {
  bits[v >> 6] |= std::uint64_t{1} << (v & 63);
}
inline void bit_clear(std::vector<std::uint64_t>& bits, std::uint32_t v) {
  bits[v >> 6] &= ~(std::uint64_t{1} << (v & 63));
}

/// Pooled InputBundle storage. Bundles are addressed by index; released
/// slots are reused, so after warm-up no transition allocates. Capacity
/// recirculates: issuing a pair moves the vector's buffer out into the
/// ReadyPair (leaving the slot hollow), and finish_execution donates the
/// executed bundle's buffer back. Hollow and warm (capacity-carrying)
/// free slots are tracked separately: acquire() prefers warm slots so a
/// donated buffer is never buried under hollow ones, which is what makes
/// steady-state transitions allocation-free once the pool has grown to
/// the peak concurrent bundle demand.
class BundlePool {
 public:
  /// Takes ownership of a caller-built bundle (phase-start sources).
  std::uint32_t adopt(event::InputBundle&& bundle) {
    const std::uint32_t idx = hollow_slot();
    store_[idx] = std::move(bundle);
    return idx;
  }
  /// An empty bundle for accumulating messages, reusing a donated buffer
  /// when one is available.
  std::uint32_t acquire() {
    if (!warm_.empty()) {
      const std::uint32_t idx = warm_.back();
      warm_.pop_back();
      return idx;
    }
    return hollow_slot();
  }
  event::InputBundle& at(std::uint32_t idx) { return store_[idx]; }
  /// Moves the bundle out and frees the (now hollow) slot in one step.
  event::InputBundle take(std::uint32_t idx) {
    event::InputBundle bundle = std::move(store_[idx]);
    store_[idx].clear();
    hollow_.push_back(idx);
    return bundle;
  }
  /// Creates `slots` extra slots whose buffers already hold capacity for
  /// `capacity` messages, so the first acquisitions do not allocate.
  void prewarm(std::size_t slots, std::size_t capacity) {
    store_.reserve(store_.size() + slots);
    warm_.reserve(store_.capacity());
    hollow_.reserve(store_.capacity());
    for (std::size_t i = 0; i < slots; ++i) {
      store_.emplace_back();
      store_.back().reserve(capacity);
      warm_.push_back(static_cast<std::uint32_t>(store_.size() - 1));
    }
  }

  /// Returns a spent bundle's buffer to the pool: a future acquire() gets
  /// its capacity instead of allocating. Donation is strictly an
  /// optimization and never grows the pool: it parks the buffer in an
  /// already-hollow slot, and only while warm slots are under half the
  /// store — acquires reopen that headroom every cycle, while workloads
  /// whose donations persistently outpace acquisitions (fan-in graphs
  /// with event-carrying sources) drop the surplus instead of hoarding
  /// slots forever. If the cap ever binds too tightly, the resulting
  /// acquire miss grows the store once and the cap rises with it.
  void donate(event::InputBundle&& bundle) {
    if (bundle.capacity() == 0 || hollow_.empty() ||
        warm_.size() >= store_.size() / 2) {
      return;  // nothing worth keeping, or no headroom: drop it
    }
    bundle.clear();
    const std::uint32_t idx = hollow_.back();
    hollow_.pop_back();
    store_[idx] = std::move(bundle);
    warm_.push_back(idx);
  }

  /// Total slots ever created; bounded by peak live-bundle demand (tests
  /// assert it stops growing at steady state).
  std::size_t slot_count() const { return store_.size(); }

 private:
  std::uint32_t hollow_slot() {
    if (!hollow_.empty()) {
      const std::uint32_t idx = hollow_.back();
      hollow_.pop_back();
      return idx;
    }
    store_.emplace_back();
    // Every slot can be on a free list at once (e.g. when the window
    // drains); sizing the lists with the store keeps even that case
    // allocation-free after the pool stops growing.
    warm_.reserve(store_.capacity());
    hollow_.reserve(store_.capacity());
    return static_cast<std::uint32_t>(store_.size() - 1);
  }

  std::vector<event::InputBundle> store_;
  std::vector<std::uint32_t> warm_;    // free slots carrying capacity
  std::vector<std::uint32_t> hollow_;  // free slots with no buffer
};

/// Per vertex: phases whose pairs are full but not yet issued, in
/// ascending order (a pair can only become full for phases later than any
/// already-full phase — see the promotion scans), stored as a flat queue
/// with a head offset; plus the at-most-one issued-but-unfinished pair.
struct VertexSchedState {
  std::vector<event::PhaseId> full_phases;
  std::uint32_t full_head = 0;
  bool in_ready = false;
  event::PhaseId ready_phase = 0;

  bool full_empty() const { return full_head == full_phases.size(); }
  event::PhaseId full_front() const { return full_phases[full_head]; }
  /// Appends a phase, first compacting the consumed prefix so the queue's
  /// footprint stays at the live count (bounded by the phase window)
  /// instead of growing with the phase index.
  void push_full(event::PhaseId p) {
    if (full_head > 0) {
      full_phases.erase(full_phases.begin(),
                        full_phases.begin() +
                            static_cast<std::ptrdiff_t>(full_head));
      full_head = 0;
    }
    full_phases.push_back(p);
  }
};

}  // namespace df::core
