// Scheduler transition observation hook.
//
// When installed, the engine invokes the observer under the global lock
// after every scheduler transition with a full set-membership snapshot.
// This is how the Figure 3 reproduction (bench_trace) and the definitional
// property tests watch partial/full/ready evolve; production runs leave the
// observer unset, adding zero cost.
#pragma once

#include <cstdint>

#include "core/scheduler.hpp"
#include "event/phase.hpp"

namespace df::core {

class SchedulerObserver {
 public:
  virtual ~SchedulerObserver() = default;

  enum class Transition { kPhaseStarted, kPairFinished };

  /// `vertex` is the internal index of the finished pair (0 for phase
  /// starts); `phase` the affected phase. The snapshot reflects the state
  /// *after* the transition. Called with the global scheduler lock held:
  /// implementations must not call back into the engine.
  virtual void on_transition(Transition transition, std::uint32_t vertex,
                             event::PhaseId phase,
                             const Scheduler::Snapshot& snapshot) = 0;
};

}  // namespace df::core
