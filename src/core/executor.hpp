// Common executor interface plus the shared vertex-execution helper.
//
// Three executors implement this interface: the paper's parallel engine
// (core::Engine), the sequential phase-at-a-time reference
// (baseline::SequentialExecutor), the barrier-synchronized parallel baseline
// (baseline::LockstepExecutor), and the non-Δ "obvious solution"
// (baseline::EagerExecutor). Benches and the serializability checker swap
// them freely over the same Program.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/delivery.hpp"
#include "core/program.hpp"
#include "core/sink_store.hpp"
#include "event/message.hpp"
#include "event/phase.hpp"

namespace df::core {

/// Supplies the external events for each phase as it starts. Phases are
/// requested in order 1, 2, 3, ...
class PhaseFeed {
 public:
  virtual ~PhaseFeed() = default;
  virtual std::vector<event::ExternalEvent> events_for(event::PhaseId p) = 0;
};

/// A feed with no external events: sources run purely off phase signals and
/// their own rng streams (the paper's simulation mode).
class NullFeed final : public PhaseFeed {
 public:
  std::vector<event::ExternalEvent> events_for(event::PhaseId) override {
    return {};
  }
};

/// Replays pre-assembled batches (index 0 holds phase 1's events).
class VectorFeed final : public PhaseFeed {
 public:
  explicit VectorFeed(std::vector<std::vector<event::ExternalEvent>> batches)
      : batches_(std::move(batches)) {}
  std::vector<event::ExternalEvent> events_for(event::PhaseId p) override {
    return p - 1 < batches_.size() ? batches_[p - 1]
                                   : std::vector<event::ExternalEvent>{};
  }

 private:
  std::vector<std::vector<event::ExternalEvent>> batches_;
};

/// Adapts a lambda.
class CallbackFeed final : public PhaseFeed {
 public:
  using Fn = std::function<std::vector<event::ExternalEvent>(event::PhaseId)>;
  explicit CallbackFeed(Fn fn) : fn_(std::move(fn)) {}
  std::vector<event::ExternalEvent> events_for(event::PhaseId p) override {
    return fn_(p);
  }

 private:
  Fn fn_;
};

/// Counters every executor reports. "Bookkeeping" covers scheduler/set
/// maintenance under the lock; "compute" covers module on_phase bodies.
struct ExecStats {
  std::uint64_t executed_pairs = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t sink_records = 0;
  std::uint64_t phases_completed = 0;
  std::uint64_t compute_ns = 0;
  std::uint64_t bookkeeping_ns = 0;
  std::uint64_t max_inflight_phases = 0;
  double mean_inflight_phases = 0.0;
  double wall_seconds = 0.0;
  // Work-stealing dispatch counters (core::Engine with dispatch =
  // kWorkStealing; all zero on the central path and other executors).
  std::uint64_t steals_ok = 0;     // pairs taken from another worker's deque
  std::uint64_t steals_empty = 0;  // full steal sweeps that found nothing
  std::uint64_t parks = 0;         // times a worker slept after spinning

  double pairs_per_second() const {
    return wall_seconds <= 0.0
               ? 0.0
               : static_cast<double>(executed_pairs) / wall_seconds;
  }
  double phases_per_second() const {
    return wall_seconds <= 0.0
               ? 0.0
               : static_cast<double>(phases_completed) / wall_seconds;
  }
};

class Executor {
 public:
  virtual ~Executor() = default;

  /// Runs phases 1..num_phases to completion. `feed` may be null (NullFeed
  /// semantics). Callable once per executor instance.
  virtual void run(event::PhaseId num_phases, PhaseFeed* feed) = 0;

  virtual const SinkStore& sinks() const = 0;
  virtual ExecStats stats() const = 0;
};

/// Result of executing one vertex-phase pair: messages to deliver downstream
/// (already split per route), sink records, and the raw port-level emissions
/// (used by the eager baseline to forward last outputs every phase).
struct ExecutionResult {
  /// (to_internal_index, to_port, value) triples, in emission order. The
  /// type is the scheduler's own delivery type (core::Delivery), so engine
  /// workers move the vector wholesale into a staged finish — no per-pair
  /// repack between "what execution produced" and "what the scheduler
  /// applies".
  using Delivery = core::Delivery;
  std::vector<Delivery> deliveries;
  std::vector<SinkRecord> sink_records;
  std::vector<event::Message> emissions;
};

/// Applies the input bundle to the vertex's latest-value table, runs the
/// module, and routes emissions. Shared by every executor so Δ-semantics are
/// identical everywhere. Not thread-safe per vertex (executors guarantee a
/// vertex executes one phase at a time).
ExecutionResult execute_vertex(ProgramInstance& instance, std::uint32_t index,
                               event::PhaseId phase,
                               const event::InputBundle& bundle);

}  // namespace df::core
