#include "core/program.hpp"

#include "support/check.hpp"

namespace df::core {

const std::vector<Route> ProgramInstance::kNoRoutes;

Program make_program(graph::Dag dag,
                     std::vector<model::ModuleFactory> factories,
                     std::uint64_t seed) {
  DF_CHECK(factories.size() == dag.vertex_count(),
           "factory count ", factories.size(), " != vertex count ",
           dag.vertex_count());
  for (std::size_t i = 0; i < factories.size(); ++i) {
    DF_CHECK(static_cast<bool>(factories[i]), "vertex '", dag.name(
                 static_cast<graph::VertexId>(i)), "' has no module factory");
  }
  Program program;
  program.numbering = graph::compute_satisfactory_numbering(dag);
  program.dag = std::move(dag);
  program.factories = std::move(factories);
  program.seed = seed;
  return program;
}

ProgramInstance::ProgramInstance(Program program)
    : program_(std::move(program)),
      n_(static_cast<std::uint32_t>(program_.dag.vertex_count())),
      m_(program_.numbering.m) {
  runtimes_.resize(n_ + 1);
  routes_.resize(n_ + 1);
  const support::Rng root(program_.seed);
  for (std::uint32_t index = 1; index <= n_; ++index) {
    const graph::VertexId orig = program_.numbering.vertex_at[index];
    VertexRuntime& rt = runtimes_[index];
    rt.module = program_.factories[orig]();
    DF_CHECK(rt.module != nullptr, "factory for vertex '",
             program_.dag.name(orig), "' returned null");
    rt.rng = root.fork(index);
    const std::size_t ports = program_.dag.in_port_count(orig);
    rt.latest.resize(ports);
    rt.has_latest.assign(ports, false);

    routes_[index].resize(program_.dag.out_port_count(orig));
    for (const graph::Edge& e : program_.dag.out_edges(orig)) {
      routes_[index][e.from_port].push_back(
          Route{program_.numbering.index_of[e.to], e.to_port});
    }
  }
}

VertexRuntime& ProgramInstance::runtime(std::uint32_t index) {
  DF_CHECK(index >= 1 && index <= n_, "internal index out of range");
  return runtimes_[index];
}

graph::VertexId ProgramInstance::original_id(std::uint32_t index) const {
  DF_CHECK(index >= 1 && index <= n_, "internal index out of range");
  return program_.numbering.vertex_at[index];
}

std::uint32_t ProgramInstance::internal_index(graph::VertexId vertex) const {
  DF_CHECK(vertex < n_, "vertex id out of range");
  return program_.numbering.index_of[vertex];
}

const std::string& ProgramInstance::name(std::uint32_t index) const {
  return program_.dag.name(original_id(index));
}

const std::vector<Route>& ProgramInstance::routes(
    std::uint32_t index, graph::Port out_port) const {
  DF_CHECK(index >= 1 && index <= n_, "internal index out of range");
  const auto& per_port = routes_[index];
  if (out_port >= per_port.size()) {
    return kNoRoutes;
  }
  return per_port[out_port];
}

std::size_t ProgramInstance::out_port_count(std::uint32_t index) const {
  DF_CHECK(index >= 1 && index <= n_, "internal index out of range");
  return routes_[index].size();
}

}  // namespace df::core
