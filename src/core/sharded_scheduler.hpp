// Partition-aligned sharded scheduler (DESIGN.md, "Sharded scheduler").
//
// The flat scheduler (core/scheduler.hpp) serializes every transition
// through one global lock. This variant splits the same state machine into
// shards aligned with contiguous blocks of the satisfactory numbering
// (graph::ShardMap): shard k owns the pending/partial bitsets, per-vertex
// full FIFOs, bundle-table segments and bundle pool for internal indices
// (bounds[k], bounds[k+1]], guarded by its own lock (conc::StripedMutexSet,
// stripe k). Because every edge goes to a higher index, all cross-shard
// message traffic flows from lower-numbered shards to higher-numbered ones
// — never backward — which is what makes the split sound:
//
//  * apply (stage 1, thread-safe): recording a finished pair touches only
//    the shards of the finishing vertex and of its delivery targets, one
//    shard lock at a time. Finishes in disjoint graph regions do not
//    contend at all. Within one finish, deliveries are inserted *before*
//    the finisher's pending bit is cleared (shards are swept highest to
//    lowest, and targets always sit in shards >= the finisher's), so a
//    concurrent collect can never advance the frontier past a vertex whose
//    message is still in flight.
//  * collect (stage 2, one collector at a time, concurrent with applies):
//    recomputes each active phase's frontier x = min(pending) - 1 by
//    composing shard-local min-pending cursors — the lowest shard that
//    still has pending pairs determines x, and a per-phase first-live-shard
//    cursor plus the monotone per-shard word cursors keep the scan O(1)
//    amortized. The new x is published through a single atomic
//    (conc::AtomicFrontier) per phase; promotion and ready collection then
//    visit only the shards the bound m(x) crossed, and ready pairs are
//    returned batch-wise for one run-queue push.
//
// Applies may interleave with a collect: they only clear pending bits and
// insert partial entries above the promotion bound, so a concurrently
// computed frontier under-approximates — exactly the tolerance the flat
// batched path (Scheduler::finish_execution_batch) already relies on.
// Single-threaded, apply_finish_batch + collect is equivalent to the flat
// scheduler's finish_execution_batch; the randomized sharded-vs-flat
// differential in tests/test_scheduler_differential.cpp pins that down by
// comparing Snapshots after every transition for shard counts 1..8.
//
// The phase window lives in a fixed ring of `capacity` slots addressed by
// p % capacity, so appliers map a phase to its slot without any global
// lock; the scheduler therefore bounds the number of in-flight phases at
// `capacity` (the engine sizes it from EngineOptions::max_inflight_phases).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "concurrency/striped_lock.hpp"
#include "core/delivery.hpp"
#include "core/scheduler.hpp"
#include "core/scheduler_state.hpp"
#include "graph/partition.hpp"

namespace df::core {

class ShardedScheduler {
 public:
  // Shared vocabulary with the flat scheduler so engine and tests can drive
  // either interchangeably.
  using ReadyPair = Scheduler::ReadyPair;
  using StagedFinish = Scheduler::StagedFinish;
  using Delivery = core::Delivery;
  using Snapshot = Scheduler::Snapshot;

  /// `m` is the numbering's m-vector (m[0..N]); `shards` must partition
  /// 1..N (graph::make_shard_map over a Partitioning from the same
  /// numbering). `capacity` bounds the number of concurrently active
  /// phases; start_phase fails if the window would exceed it.
  /// `signal_sources` has the flat scheduler's semantics: the prefix 1..S
  /// receiving the per-phase signal, defaulting to all of m(0)
  /// (Scheduler::kAllSources); block-local instances pass the block's true
  /// program-source count.
  ShardedScheduler(std::vector<std::uint32_t> m, graph::ShardMap shards,
                   std::size_t capacity,
                   std::uint32_t signal_sources = Scheduler::kAllSources);

  ShardedScheduler(const ShardedScheduler&) = delete;
  ShardedScheduler& operator=(const ShardedScheduler&) = delete;

  /// Environment side. Takes the window lock plus the source shards' locks;
  /// newly ready source pairs are appended to `out_ready` (not cleared).
  /// Safe to call concurrently with apply_finish_batch, but phases must be
  /// started by one thread in order (p == pmax() + 1).
  void start_phase(event::PhaseId p, std::span<event::InputBundle> bundles,
                   std::vector<ReadyPair>& out_ready);

  /// Block-scoped form (mirrors Scheduler's injected overload): remote
  /// deliveries enter partial under the target shards' locks before any
  /// local pair of the phase runs. When injection occurred or no signal
  /// sources exist, a full collect pass runs inline under the window lock
  /// (injection produces no applies, so the engine's apply-paced
  /// maybe_collect would otherwise never issue the injected pairs — and an
  /// empty phase must retire immediately). Returns true when
  /// completed_through() advanced during that inline collect.
  bool start_phase(event::PhaseId p, std::span<event::InputBundle> bundles,
                   std::span<Delivery> injected,
                   std::vector<ReadyPair>& out_ready);

  /// Stage 1 of the drain: records every staged finish's set updates
  /// (delivery insertions, pending-bit clears, bundle recycling) under the
  /// affected shard locks only — no window lock, no frontier work. Entries
  /// are moved from. Thread-safe: concurrent batches touching different
  /// shards proceed in parallel; per-shard effects are applied in batch
  /// order. Every staged pair must be outstanding (issued, not finished).
  void apply_finish_batch(std::span<StagedFinish> batch);

  /// Stage 2 of the drain: one frontier recomputation, promotion sweep,
  /// ready collection and retirement pass over the whole window. At most
  /// one collector may run at a time (the engine serializes via its
  /// collecting flag); applies may interleave freely. Appends newly ready
  /// pairs to `out_ready` (not cleared) in ascending vertex order. Returns
  /// true when completed_through() advanced.
  bool collect(std::vector<ReadyPair>& out_ready);

  // Thread-safe queries (atomic reads).
  event::PhaseId completed_through() const {
    return completed_atomic_.load(std::memory_order_acquire);
  }
  std::size_t active_phase_count() const {
    return active_atomic_.load(std::memory_order_acquire);
  }
  bool all_started_phases_complete() const {
    return active_phase_count() == 0;
  }

  /// Caller-side sequencing only (the environment thread is the sole
  /// starter of phases, so reading pmax between its own calls is safe).
  event::PhaseId pmax() const { return pmax_; }

  /// Published frontier for phase p: N for completed phases, the last value
  /// the collector published for active ones, 0 if never started. Exact
  /// only when the scheduler is quiescent (between collects with no applies
  /// in flight); concurrent use sees a safe under-approximation.
  std::uint32_t x(event::PhaseId p) const;

  std::uint32_t n() const { return n_; }
  /// Number of vertices receiving the per-phase signal (== m(0) unless a
  /// block-local signal-source prefix was configured).
  std::uint32_t source_count() const { return signal_sources_; }
  std::size_t shard_count() const { return shards_.shard_count(); }
  std::size_t capacity() const { return capacity_; }

  /// Total bundle-pool slots across shards; flat at steady state. Takes
  /// the shard locks.
  std::size_t bundle_pool_slots();

  /// Pre-sizes every per-shard structure (phase segments for all window
  /// slots, full FIFOs, pool prewarm split across shards) so steady-state
  /// transitions reach the allocation-free regime immediately. Call before
  /// the first start_phase.
  void reserve_steady_state(std::size_t live_bundles,
                            std::size_t bundle_capacity = 4);

  /// Set-membership snapshot identical in format to the flat scheduler's
  /// (so differential tests compare them directly). Takes the window lock
  /// and every shard lock; meant for quiescent checkpoints, not hot paths.
  Snapshot snapshot();

 private:
  /// A shard's segment of one phase slot: the shard-local slice of the
  /// flat scheduler's PhaseSlot. Bitset words cover the shard's global
  /// word range [word_lo, word_hi]; a boundary word shared with a
  /// neighbouring shard is duplicated, but each copy only ever holds bits
  /// for its own vertex range. Allocated lazily on first use and reset in
  /// place at retirement.
  struct ShardSeg {
    std::uint32_t pending_count = 0;
    std::uint32_t partial_count = 0;
    /// Word cursor for the shard-local min-pending scan, relative to
    /// word_lo. Only advanced while this shard is the lowest shard with
    /// pending pairs for the phase — the only regime in which insertions
    /// cannot land below it (see DESIGN.md).
    std::uint32_t min_pending_word = 0;
    /// Highest vertex of this shard already promotion-scanned for this
    /// phase (global index, init begin - 1). Monotone per phase.
    std::uint32_t promoted_through = 0;
    std::vector<std::uint64_t> pending_bits;
    std::vector<std::uint64_t> partial_bits;
    std::vector<std::uint32_t> bundle;  // [0..end-begin], kNoBundle absent

    bool allocated() const { return !bundle.empty(); }
  };

  /// Everything one shard owns. Guarded by locks_.at(shard index); plain
  /// aggregate so the vector of shards stays regular (the mutexes live in
  /// the striped set). This index-addressed association is a *dynamic*
  /// lock discipline clang's thread-safety analysis cannot express, so
  /// shard fields carry no DF_GUARDED_BY — TSan covers them (see
  /// concurrency/annotations.hpp conventions).
  struct Shard {
    std::uint32_t begin = 0;  // first owned internal index
    std::uint32_t end = 0;    // last owned internal index
    std::uint32_t word_lo = 0;
    std::uint32_t words = 0;
    std::vector<ShardSeg> slots;            // [capacity], by p % capacity
    std::vector<VertexSchedState> vertices;  // [0..end-begin]
    BundlePool pool;
    /// Vertices whose full set may have gained an issuable pair since the
    /// last ready collection (finished vertices and fresh promotions).
    std::vector<std::uint32_t> affected;
  };

  /// Global per-slot bookkeeping. id is written under the window lock and
  /// read lock-free by x(); the remaining fields belong to the collector
  /// (window lock held).
  struct GlobalSlot {
    std::atomic<event::PhaseId> id{0};  // 0 = free
    std::uint32_t x = 0;
    std::uint32_t promoted_bound = 0;
    std::uint32_t first_live_shard = 0;
  };

  std::size_t slot_index(event::PhaseId p) const { return p % capacity_; }
  Shard& shard_of_vertex(std::uint32_t v) {
    return shard_state_[shards_.shard_of[v]];
  }

  /// Allocates (or verifies) the shard's segment for a slot. Shard lock
  /// held by the caller.
  ShardSeg& ensure_seg(Shard& shard, std::size_t slot);

  static bool seg_test(const Shard& shard,
                       const std::vector<std::uint64_t>& bits,
                       std::uint32_t v) {
    return (bits[(v >> 6) - shard.word_lo] >> (v & 63)) & 1u;
  }
  static void seg_set(const Shard& shard, std::vector<std::uint64_t>& bits,
                      std::uint32_t v) {
    bits[(v >> 6) - shard.word_lo] |= std::uint64_t{1} << (v & 63);
  }
  static void seg_clear(const Shard& shard, std::vector<std::uint64_t>& bits,
                        std::uint32_t v) {
    bits[(v >> 6) - shard.word_lo] &= ~(std::uint64_t{1} << (v & 63));
  }

  /// Smallest pending vertex in the shard's segment; advances the relative
  /// word cursor. Caller holds the shard lock and has checked
  /// pending_count > 0; only valid while the shard is lowest-live.
  std::uint32_t seg_min_pending(const Shard& shard, ShardSeg& seg) const;

  /// Inserts one delivery into the target shard's segment (the flat
  /// scheduler's statements 8-11). Shard lock held.
  void deliver_locked(Shard& shard, std::size_t slot, Delivery& d);

  /// Moves partial pairs with vertex in [lo, hi] into full for phase p,
  /// appending promoted vertices to each shard's affected list. Window
  /// lock held; takes shard locks one at a time.
  void promote_range(event::PhaseId p, std::uint32_t lo, std::uint32_t hi)
      DF_REQUIRES(window_mutex_);

  /// Issues (v, min full phase) if v has no issued pair and a non-empty
  /// full set — the flat scheduler's collect_ready body for one vertex.
  /// Shard lock held.
  void issue_if_ready(Shard& shard, std::uint32_t v,
                      std::vector<ReadyPair>& out_ready);

  /// Issues every issuable affected pair of one shard in ascending vertex
  /// order. Shard lock held.
  void collect_shard_ready(std::size_t s, std::vector<ReadyPair>& out_ready);

  /// Retires the oldest active phase (x == N). Window lock held.
  void retire_front() DF_REQUIRES(window_mutex_);

  /// Body of collect() with the window lock already held (start_phase's
  /// inline collect shares it). Returns true when completed_through_
  /// advanced.
  bool collect_locked(std::vector<ReadyPair>& out_ready)
      DF_REQUIRES(window_mutex_);

  std::vector<std::uint32_t> m_;
  graph::ShardMap shards_;
  std::uint32_t n_;
  std::uint32_t signal_sources_;
  std::size_t capacity_;

  mutable conc::Mutex window_mutex_;
  conc::StripedMutexSet locks_;
  std::vector<Shard> shard_state_;
  std::vector<GlobalSlot> global_slots_;           // [capacity], never moved
  std::unique_ptr<conc::AtomicFrontier[]> x_pub_;  // [capacity]

  // Window state: plain fields under window_mutex_, with atomic mirrors
  // for the engine's lock-free backpressure/termination predicates. pmax_
  // stays outside the static annotation: pmax() reads it lock-free under
  // the documented single-starter sequencing (only the environment thread
  // starts phases, and it reads its own writes).
  event::PhaseId pmax_ = 0;
  event::PhaseId first_active_ DF_GUARDED_BY(window_mutex_) = 1;
  event::PhaseId completed_through_ DF_GUARDED_BY(window_mutex_) = 0;
  std::size_t active_count_ DF_GUARDED_BY(window_mutex_) = 0;
  std::atomic<event::PhaseId> completed_atomic_{0};
  std::atomic<std::size_t> active_atomic_{0};
};

}  // namespace df::core
