// Programs: a computation graph plus the module factories for its vertices.
//
// A Program is immutable and shareable; each executor builds its own
// ProgramInstance (fresh module state, topology remapped into the internal
// 1..N index space of the satisfactory numbering) so that parallel and
// sequential runs of the same Program are independent and comparable.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "event/message.hpp"
#include "event/phase.hpp"
#include "graph/dag.hpp"
#include "graph/numbering.hpp"
#include "model/module.hpp"
#include "support/rng.hpp"

namespace df::core {

struct Program {
  graph::Dag dag;
  graph::Numbering numbering;
  /// One factory per dense vertex id of `dag`.
  std::vector<model::ModuleFactory> factories;
  /// Root seed; each vertex's rng stream is forked from it by internal index.
  std::uint64_t seed = 0xdf5eedULL;
};

/// Validates the graph, computes a satisfactory numbering, and packages the
/// factories. DF_CHECKs that factory count matches vertex count.
Program make_program(graph::Dag dag,
                     std::vector<model::ModuleFactory> factories,
                     std::uint64_t seed = 0xdf5eedULL);

/// Per-vertex mutable execution state owned by one executor run.
struct VertexRuntime {
  std::unique_ptr<model::Module> module;
  /// Last value seen per input port (index == port); empty Value + false
  /// flag until the first message arrives.
  std::vector<event::Value> latest;
  std::vector<bool> has_latest;
  support::Rng rng{0};
};

/// One outgoing route of an internal vertex: deliver to (to_index, to_port).
struct Route {
  std::uint32_t to_index = 0;
  graph::Port to_port = 0;
};

/// A Program instantiated for one run: fresh modules, internal-index
/// topology, per-vertex rng streams. Internal indices run 1..n() and follow
/// the satisfactory numbering, so edges always go from lower to higher index
/// and sources are exactly the indices 1..m(0).
///
/// The instance stores its own copy of the Program, so executors may be
/// constructed from temporaries safely.
class ProgramInstance {
 public:
  explicit ProgramInstance(Program program);

  std::uint32_t n() const { return n_; }
  /// m(v) for v in 0..N (paper section 3.1.1).
  const std::vector<std::uint32_t>& m() const { return m_; }
  std::uint32_t source_count() const { return m_[0]; }
  bool is_source(std::uint32_t index) const { return index <= m_[0]; }

  VertexRuntime& runtime(std::uint32_t index);
  graph::VertexId original_id(std::uint32_t index) const;
  std::uint32_t internal_index(graph::VertexId vertex) const;
  const std::string& name(std::uint32_t index) const;

  /// Routes out of (index, out_port); empty means the port is a sink port
  /// (emissions are recorded, not delivered).
  const std::vector<Route>& routes(std::uint32_t index,
                                   graph::Port out_port) const;
  std::size_t out_port_count(std::uint32_t index) const;

  const Program& program() const { return program_; }

 private:
  Program program_;
  std::uint32_t n_;
  std::vector<std::uint32_t> m_;
  std::vector<VertexRuntime> runtimes_;           // [1..n], slot 0 unused
  std::vector<std::vector<std::vector<Route>>> routes_;  // [index][out_port]
  static const std::vector<Route> kNoRoutes;
};

}  // namespace df::core
