#include "core/checkpoint.hpp"

#include <utility>

#include "support/check.hpp"

namespace df::core {

void persist_value(support::StateArchive& ar, event::Value& value) {
  std::uint8_t tag = static_cast<std::uint8_t>(value.kind());
  ar.u8(tag);
  if (ar.saving()) {
    switch (value.kind()) {
      case event::Value::Kind::kEmpty:
        break;
      case event::Value::Kind::kBool: {
        bool b = value.as_bool();
        ar.boolean(b);
        break;
      }
      case event::Value::Kind::kInt: {
        std::int64_t x = value.as_int();
        ar.i64(x);
        break;
      }
      case event::Value::Kind::kDouble: {
        double x = value.as_double();
        ar.f64(x);
        break;
      }
      case event::Value::Kind::kString: {
        std::string s = value.as_string();
        ar.str(s);
        break;
      }
      case event::Value::Kind::kVector: {
        std::vector<double> xs = value.as_vector();
        ar.sequence(xs, [](support::StateArchive& a, double& x) { a.f64(x); });
        break;
      }
    }
    return;
  }
  switch (tag) {
    case 0:
      value = event::Value();
      break;
    case 1: {
      bool b = false;
      ar.boolean(b);
      value = event::Value(b);
      break;
    }
    case 2: {
      std::int64_t x = 0;
      ar.i64(x);
      value = event::Value(x);
      break;
    }
    case 3: {
      double x = 0.0;
      ar.f64(x);
      value = event::Value(x);
      break;
    }
    case 4: {
      std::string s;
      ar.str(s);
      value = event::Value(std::move(s));
      break;
    }
    case 5: {
      std::vector<double> xs;
      ar.sequence(xs, [](support::StateArchive& a, double& x) { a.f64(x); });
      value = event::Value(std::move(xs));
      break;
    }
    default:
      DF_CHECK(false, "checkpoint: unknown Value kind tag ",
               static_cast<unsigned>(tag));
  }
}

void persist_message(support::StateArchive& ar, event::Message& message) {
  ar.u16(message.port);
  persist_value(ar, message.value);
}

void persist_bundle(support::StateArchive& ar, event::InputBundle& bundle) {
  ar.sequence(bundle, [](support::StateArchive& a, event::Message& m) {
    persist_message(a, m);
  });
}

std::vector<std::uint8_t> seal_image(std::vector<std::uint8_t> body) {
  const std::uint64_t sum = support::fnv1a(body.data(), body.size());
  for (std::size_t i = 0; i < 8; ++i) {
    body.push_back(static_cast<std::uint8_t>(sum >> (8 * i)));
  }
  return body;
}

std::vector<std::uint8_t> open_image(const std::vector<std::uint8_t>& image,
                                     const char* what) {
  DF_CHECK(image.size() >= 8, what,
           " checkpoint: image truncated (missing checksum trailer)");
  const std::size_t body_size = image.size() - 8;
  std::uint64_t stored = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    stored |= static_cast<std::uint64_t>(image[body_size + i]) << (8 * i);
  }
  const std::uint64_t computed = support::fnv1a(image.data(), body_size);
  DF_CHECK(stored == computed, what,
           " checkpoint: checksum mismatch (torn or corrupt image)");
  return std::vector<std::uint8_t>(image.begin(),
                                   image.begin() +
                                       static_cast<std::ptrdiff_t>(body_size));
}

}  // namespace df::core
