// The one delivery type shared by executors and the scheduler.
//
// A Delivery is a message produced by executing a vertex-phase pair,
// addressed by the recipient's *internal* (satisfactory-numbering) index.
// Executors emit vectors of these and the scheduler consumes them verbatim:
// because both sides agree on the representation, a worker moves the
// executor's output straight into its staging ring and from there into the
// scheduler's bundles without per-message copies (see DESIGN.md, "Staged
// delivery rings").
#pragma once

#include <cstdint>

#include "event/value.hpp"
#include "graph/dag.hpp"

namespace df::core {

struct Delivery {
  std::uint32_t to_index = 0;  // internal index, always > the sender's
  graph::Port to_port = 0;
  event::Value value;
};

}  // namespace df::core
