#include "core/sink_store.hpp"

#include <algorithm>
#include <sstream>

#include "support/check.hpp"

namespace df::core {

void SinkStore::record_batch(std::vector<SinkRecord> batch) {
  if (batch.empty()) {
    return;
  }
  conc::MutexLock lock(mutex_);
  records_.insert(records_.end(), std::make_move_iterator(batch.begin()),
                  std::make_move_iterator(batch.end()));
}

std::size_t SinkStore::size() const {
  conc::MutexLock lock(mutex_);
  return records_.size();
}

std::vector<SinkRecord> SinkStore::canonical() const {
  std::vector<SinkRecord> out;
  {
    conc::MutexLock lock(mutex_);
    out = records_;
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const SinkRecord& a, const SinkRecord& b) {
                     if (a.phase != b.phase) {
                       return a.phase < b.phase;
                     }
                     if (a.vertex != b.vertex) {
                       return a.vertex < b.vertex;
                     }
                     return a.port < b.port;
                   });
  return out;
}

std::vector<SinkRecord> SinkStore::for_vertex(graph::VertexId vertex) const {
  std::vector<SinkRecord> out;
  for (const SinkRecord& r : canonical()) {
    if (r.vertex == vertex) {
      out.push_back(r);
    }
  }
  return out;
}

void SinkStore::clear() {
  conc::MutexLock lock(mutex_);
  records_.clear();
}

void SinkStore::truncate(std::size_t count) {
  conc::MutexLock lock(mutex_);
  DF_CHECK(count <= records_.size(),
           "SinkStore::truncate past the end: ", count, " > ",
           records_.size());
  records_.resize(count);
}

void SinkStore::drain_into(SinkStore& target) {
  std::vector<SinkRecord> moved;
  {
    conc::MutexLock lock(mutex_);
    moved = std::move(records_);
    records_.clear();
  }
  target.record_batch(std::move(moved));
}

std::string to_string(const SinkRecord& record) {
  std::ostringstream out;
  out << "phase " << record.phase << " vertex " << record.vertex << " port "
      << record.port << " = " << record.value.to_string();
  return out.str();
}

}  // namespace df::core
