// Checkpoint image helpers shared by the scheduler and engine snapshots.
//
// Crash-restart recovery (DESIGN.md "Crash-restart recovery") serializes a
// partition's execution state into self-validating byte images: a magic +
// version header up front and an FNV-1a checksum trailer sealed over the
// body. Torn, bit-flipped, or wrong-version images fail open_image /
// restore_state with a df::support::check_error instead of reading garbage;
// the caller's discipline is to discard the half-restored object and fall
// back to the previous intact checkpoint.
//
// Value/Message/InputBundle persistence lives here (not in event/) because
// the checkpoint encoding is a core-layer concern: the wire format in
// distrib/wire.hpp has its own, varint-based encoding with compat
// guarantees, while checkpoint images are consumed only by the build that
// wrote them.
#pragma once

#include <cstdint>
#include <vector>

#include "event/message.hpp"
#include "event/value.hpp"
#include "support/state_archive.hpp"

namespace df::core {

/// Bidirectional persistence of one Value. The Kind tag byte uses the
/// stable discriminants 0..5 from event::Value::Kind; unknown tags fail
/// loudly on load.
void persist_value(support::StateArchive& ar, event::Value& value);

/// One message: port + value.
void persist_message(support::StateArchive& ar, event::Message& message);

/// A whole input bundle (length-prefixed message sequence).
void persist_bundle(support::StateArchive& ar, event::InputBundle& bundle);

/// Appends the FNV-1a checksum trailer over `body` and returns the sealed
/// image.
std::vector<std::uint8_t> seal_image(std::vector<std::uint8_t> body);

/// Verifies and strips the checksum trailer. DF_CHECKs (throwing
/// support::check_error) on truncated images or checksum mismatch; `what`
/// names the image kind in the failure message.
std::vector<std::uint8_t> open_image(const std::vector<std::uint8_t>& image,
                                     const char* what);

}  // namespace df::core
