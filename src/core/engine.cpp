#include "core/engine.hpp"

#include <algorithm>
#include <bit>

#include "core/checkpoint.hpp"
#include "graph/partition.hpp"
#include "support/check.hpp"
#include "support/state_archive.hpp"
#include "support/stopwatch.hpp"

namespace df::core {

Engine::BlockPlan Engine::plan_scope(const Program& program,
                                     const EngineOptions& options) {
  BlockPlan plan;
  const std::uint32_t n = static_cast<std::uint32_t>(program.numbering.size());
  if (!options.block.has_value()) {
    plan.m = program.numbering.m;
    plan.signal_sources = Scheduler::kAllSources;
    plan.offset = 0;
    plan.block_end = n;
    return plan;
  }
  const EngineOptions::BlockScope& scope = *options.block;
  DF_CHECK(scope.egress != nullptr, "block-scoped engine needs an egress hook");
  if (scope.begin > scope.end) {
    // Empty block (a machine owning no vertices): zero vertices, zero
    // signal sources, so every phase retires at start and the engine only
    // paces phase windows / watermark forwarding.
    plan.m = {0};
    plan.signal_sources = 0;
    plan.offset = scope.begin == 0 ? 0 : scope.begin - 1;
    plan.block_end = plan.offset;
    return plan;
  }
  DF_CHECK(scope.begin >= 1 && scope.end <= n, "block [", scope.begin, ", ",
           scope.end, "] outside internal index range 1..", n);
  plan.m = graph::block_local_m(program.dag, program.numbering, scope.begin,
                                scope.end);
  // The block's environment-signalled sources are exactly the global
  // sources it owns: global indices [begin, min(end, m[0])], i.e. a local
  // prefix. m_loc[0] may be larger (vertices whose predecessors are all
  // remote become locally release-0) — those are fed by injected remote
  // deliveries, never by the environment.
  const std::uint32_t m0 = program.numbering.m[0];
  plan.signal_sources =
      scope.begin <= m0 ? std::min(scope.end, m0) - scope.begin + 1 : 0;
  plan.offset = scope.begin - 1;
  plan.block_end = scope.end;
  return plan;
}

Engine::Engine(const Program& program, EngineOptions options)
    : Engine(program, options, plan_scope(program, options)) {}

Engine::Engine(const Program& program, EngineOptions options, BlockPlan plan)
    : instance_(program),
      options_(std::move(options)),
      scheduler_(plan.m, plan.signal_sources),
      offset_(plan.offset),
      block_end_(plan.block_end) {
  sink_target_ = options_.block.has_value() && options_.block->sinks != nullptr
                     ? options_.block->sinks
                     : &sinks_;
  DF_CHECK(options_.threads >= 1, "engine needs at least one worker thread");
  DF_CHECK(options_.scheduler_shards >= 1,
           "engine needs at least one scheduler shard");
  // Sharded scheduler opt-in (see EngineOptions::scheduler_shards). An
  // observer needs one snapshot per transition, which only the flat
  // per-pair path provides. In block mode the shards sub-partition the
  // block's local index range, not the whole program.
  const std::size_t shards =
      std::min<std::size_t>(options_.scheduler_shards, scheduler_.n());
  if (shards > 1 && options_.observer == nullptr) {
    sharded_window_ = options_.max_inflight_phases == 0
                          ? 64
                          : options_.max_inflight_phases;
    sharded_ = std::make_unique<ShardedScheduler>(
        plan.m,
        graph::make_shard_map(graph::partition_balanced_range(
            static_cast<std::uint32_t>(scheduler_.n()), shards)),
        sharded_window_, plan.signal_sources);
  }
}

Engine::~Engine() {
  if (started_ && !finished_) {
    // Abandoned engine: stop workers without waiting for phase completion.
    // Workers may still try to enqueue newly ready pairs; the flag lets
    // them drop those instead of flagging the closed queue as a bug.
    //
    // Ordering argument (the teardown race this guards against): a worker
    // decides "the queue rejected my push" only inside push_all, under the
    // queue's mutex, after reading closed_ == true. close() sets closed_
    // under that same mutex, and this thread stores abandoning_ *before*
    // calling close(), so the mutex release/acquire edge publishes the
    // store to any worker that observes the rejection — the subsequent
    // abandoning_ check cannot read a stale false. The only other closer is
    // finish(), which runs after every started phase completed, when no
    // nonempty ready batch can exist anymore (an issued-but-unfinished pair
    // keeps its phase active, so finish() would still be waiting). Staged
    // finishes left in the rings are simply destroyed with the engine.
    abandoning_.store(true, std::memory_order_release);
    run_queue_.close();
    if (steal_ != nullptr) {
      // Same ordering contract as the central close: the abandoning_ store
      // above precedes the dispatch's closed/inbox-closed stores, so any
      // worker that observes a rejected push also observes abandoning_.
      // Ready pairs stranded in inboxes are destroyed with the engine,
      // like the staged finishes left in the rings.
      steal_->close();
    }
    for (auto& worker : workers_) {
      worker.join();
    }
  }
}

void Engine::start() {
  if (started_) {
    return;
  }
  started_ = true;
  if (options_.dispatch == EngineOptions::Dispatch::kWorkStealing) {
    // Work-stealing dispatch (PR 9): per-worker deques replace the central
    // run queue for both scheduler paths (flat staged rings and sharded).
    // Constructed before any worker exists, so workers only ever see a
    // fully-built lane array.
    steal_ = std::make_unique<StealDispatch<Scheduler::ReadyPair>>(
        options_.threads, options_.steal_deque_capacity,
        options_.dispatch_chunk);
  }
  if (sharded_ != nullptr) {
    // Sharded mode: per-shard locks replace the global-lock staging
    // protocol, so the flat scheduler and the staging rings stay unused.
    sharded_->reserve_steady_state(
        std::min<std::size_t>(2 * sharded_->n(), 65536));
    drain_batch_target_ =
        options_.drain_batch_target != 0
            ? options_.drain_batch_target
            : std::min<std::size_t>(16, 2 * options_.threads);
    workers_.reserve(options_.threads);
    for (std::size_t i = 0; i < options_.threads; ++i) {
      workers_.emplace_back([this, i] { worker_main_sharded(i); });
    }
    return;
  }
  // Warm the scheduler's flat structures to the run's expected footprint so
  // the locked bookkeeping path is allocation-free from the first phase
  // (unbounded windows get a representative depth; the structures still
  // grow organically past it).
  const std::size_t window = options_.max_inflight_phases == 0
                                 ? 64
                                 : options_.max_inflight_phases;
  {
    // No worker exists yet; taking the lock here is free and keeps the
    // scheduler_-under-mutex_ contract unconditional for the analysis.
    conc::MutexLock lock(mutex_);
    scheduler_.reserve_steady_state(
        std::min<std::size_t>(window, 64),
        std::min<std::size_t>(2 * scheduler_.n(), 65536));
  }
  // Staging pays off by amortizing lock traffic across workers; with a
  // single worker there is nothing to contend with, and a per-transition
  // observer needs the per-pair path for its snapshots.
  use_staging_ = options_.staged_deliveries && options_.threads > 1 &&
                 options_.observer == nullptr;
  // Default batch target: a couple of pairs per worker, capped so drain
  // latency stays small relative to the window's refill rate.
  drain_batch_target_ =
      options_.drain_batch_target != 0
          ? options_.drain_batch_target
          : std::min<std::size_t>(16, 2 * options_.threads);
  if (use_staging_) {
    const std::size_t capacity = std::bit_ceil(
        std::max<std::size_t>(2, options_.staging_ring_capacity));
    staging_.reserve(options_.threads);
    for (std::size_t i = 0; i < options_.threads; ++i) {
      staging_.push_back(
          std::make_unique<conc::SpscRing<Scheduler::StagedFinish>>(capacity));
    }
    drain_batch_.reserve(options_.threads * capacity);
  }
  workers_.reserve(options_.threads);
  for (std::size_t i = 0; i < options_.threads; ++i) {
    workers_.emplace_back([this, i] { worker_main(i); });
  }
}

void Engine::reserve_source_bundles(
    const std::vector<event::ExternalEvent>& events) {
  // Group the batch into per-source input bundles (Listing 2's "phase
  // signal" is implicit: every source gets a pair, with or without events).
  // Resolve indices once, then reserve exact per-source counts so each
  // bundle is built with at most one allocation.
  env_bundles_.clear();
  env_bundles_.resize(scheduler_.source_count());
  env_indices_.clear();
  for (const event::ExternalEvent& ev : events) {
    const std::uint32_t index = instance_.internal_index(ev.vertex);
    DF_CHECK(instance_.is_source(index),
             "external events may only target source vertices, got '",
             instance_.name(index), "'");
    // Block mode: the transport routes each event to the block owning its
    // target, so the global index must sit in this block's source prefix;
    // translate it to the scheduler's local indexing.
    DF_CHECK(index > offset_ && index - offset_ <= scheduler_.source_count(),
             "external event for '", instance_.name(index),
             "' (index ", index, ") is outside this block's source range");
    env_indices_.push_back(index - offset_);
  }
  env_counts_.assign(scheduler_.source_count(), 0);
  for (const std::uint32_t index : env_indices_) {
    ++env_counts_[index - 1];
  }
  for (std::size_t s = 0; s < env_counts_.size(); ++s) {
    if (env_counts_[s] != 0) {
      env_bundles_[s].reserve(env_counts_[s]);
    }
  }
}

void Engine::start_phase(const std::vector<event::ExternalEvent>& events) {
  DF_CHECK(started_ && !finished_, "start_phase outside start()/finish()");
  reserve_source_bundles(events);
  for (std::size_t i = 0; i < events.size(); ++i) {
    env_bundles_[env_indices_[i] - 1].push_back(
        event::Message{events[i].port, events[i].value});
  }
  start_phase_bundles(env_bundles_);
}

void Engine::start_phase(std::vector<event::ExternalEvent>&& events) {
  DF_CHECK(started_ && !finished_, "start_phase outside start()/finish()");
  reserve_source_bundles(events);
  for (std::size_t i = 0; i < events.size(); ++i) {
    env_bundles_[env_indices_[i] - 1].push_back(
        event::Message{events[i].port, std::move(events[i].value)});
  }
  start_phase_bundles(env_bundles_);
}

void Engine::start_phase(const std::vector<event::ExternalEvent>& events,
                         std::vector<Scheduler::Delivery>& remote) {
  DF_CHECK(started_ && !finished_, "start_phase outside start()/finish()");
  DF_CHECK(options_.block.has_value(),
           "remote-injection start_phase requires a block-scoped engine");
  reserve_source_bundles(events);
  for (std::size_t i = 0; i < events.size(); ++i) {
    env_bundles_[env_indices_[i] - 1].push_back(
        event::Message{events[i].port, events[i].value});
  }
  // Translate the reassembled cross-boundary deliveries to local indexing
  // up front; the scheduler overload below injects them before any pair of
  // the phase is issued, and additionally DF_CHECKs each target sits above
  // the signal-source prefix (remote senders are lower-numbered than every
  // in-block non-source, so a remote delivery can never target a source).
  for (Scheduler::Delivery& d : remote) {
    DF_CHECK(d.to_index > offset_ && d.to_index <= block_end_,
             "remote delivery for index ", d.to_index,
             " does not belong to block (", offset_, ", ", block_end_, "]");
    d.to_index -= offset_;
  }
  start_phase_bundles(env_bundles_, std::span<Scheduler::Delivery>(remote));
}

void Engine::start_phase_bundles(std::vector<event::InputBundle>& bundles,
                                 std::span<Scheduler::Delivery> injected) {
  env_ready_.clear();
  // Starting a phase can also *complete* it (block mode: an empty block,
  // or a phase whose in-block work is finished by the injected deliveries
  // alone — e.g. sink-only blocks with no local sources). Both scheduler
  // overloads then retire inside the start call, so this is a completion
  // site like the apply paths: notify under the lock, fire the completion
  // hook after releasing it.
  event::PhaseId completed_now = 0;
  if (sharded_ != nullptr) {
    {
      conc::UniqueLock lock(mutex_);
      // Backpressure: collectors notify progress_cv_ under mutex_ whenever
      // a retirement shrinks the window (active_phase_count is an atomic
      // updated before that notify, so the predicate cannot miss it). The
      // lambda reads no mutex_-guarded fields, so it is analysis-safe.
      progress_cv_.wait(lock, [this] {
        return sharded_->active_phase_count() < sharded_window_;
      });
      const event::PhaseId p = sharded_->pmax() + 1;
      if (sharded_->start_phase(p, std::span<event::InputBundle>(bundles),
                                injected, env_ready_)) {
        completed_now = sharded_->completed_through();
        progress_cv_.notify_all();
      }
      max_inflight_ = std::max<std::uint64_t>(
          max_inflight_, sharded_->active_phase_count());
    }
    // Feed the workers before the completion hook: the hook may block on a
    // channel send and must not starve the pool of the pairs just issued.
    enqueue_ready(env_ready_, kEnvProducer);
    if (completed_now != 0 && options_.on_phase_complete) {
      options_.on_phase_complete(completed_now);
    }
    return;
  }
  {
    conc::UniqueLock lock(mutex_);
    // Backpressure wait. Every transition that shrinks the window is a
    // phase retirement inside retire_completed(), which always advances
    // completed_through — and both apply paths (per-pair and batched
    // drain) notify progress_cv_ exactly when that happens, so this wait
    // cannot miss a shrink even with max_inflight_phases == 1. Written as
    // an explicit loop (not a wait-with-predicate lambda) because the
    // predicate reads the mutex_-guarded scheduler_.
    while (!(options_.max_inflight_phases == 0 ||
             scheduler_.active_phase_count() < options_.max_inflight_phases)) {
      progress_cv_.wait(lock);
    }
    const event::PhaseId p = scheduler_.pmax() + 1;
    const event::PhaseId completed_before = scheduler_.completed_through();
    scheduler_.start_phase(p, std::span<event::InputBundle>(bundles), injected,
                           env_ready_);
    if (scheduler_.completed_through() != completed_before) {
      completed_now = scheduler_.completed_through();
      progress_cv_.notify_all();
    }
    max_inflight_ = std::max<std::uint64_t>(max_inflight_,
                                            scheduler_.active_phase_count());
    if (options_.observer != nullptr) {
      options_.observer->on_transition(
          SchedulerObserver::Transition::kPhaseStarted, 0, p,
          scheduler_.snapshot());
    }
  }
  enqueue_ready(env_ready_, kEnvProducer);
  if (completed_now != 0 && options_.on_phase_complete) {
    options_.on_phase_complete(completed_now);
  }
}

void Engine::finish() {
  DF_CHECK(started_, "finish() before start()");
  if (finished_) {
    return;
  }
  {
    conc::UniqueLock lock(mutex_);
    // Explicit loop: the flat-path predicate reads the guarded scheduler_.
    while (!(sharded_ != nullptr ? sharded_->all_started_phases_complete()
                                 : scheduler_.all_started_phases_complete())) {
      progress_cv_.wait(lock);
    }
  }
  run_queue_.close();
  if (steal_ != nullptr) {
    // Every started phase has completed, so no ready pair exists anywhere
    // (an issued-but-unfinished pair keeps its phase active) and no worker
    // can be mid-push — closing cannot reject live work here.
    steal_->close();
  }
  for (auto& worker : workers_) {
    worker.join();
  }
  workers_.clear();
  finished_ = true;
  std::exception_ptr error;
  {
    conc::MutexLock lock(mutex_);
    error = first_error_;
  }
  if (error != nullptr) {
    std::rethrow_exception(error);
  }
}

void Engine::run(event::PhaseId num_phases, PhaseFeed* feed) {
  support::Stopwatch wall;
  NullFeed null_feed;
  PhaseFeed& source = feed != nullptr ? *feed : null_feed;
  start();
  for (event::PhaseId p = 1; p <= num_phases; ++p) {
    start_phase(source.events_for(p));
  }
  finish();
  wall_seconds_ = wall.elapsed_s();
}

namespace {

constexpr std::uint32_t kEngineImageMagic = 0x44464547u;  // "DFEG"
constexpr std::uint32_t kEngineImageVersion = 1;

}  // namespace

void Engine::quiesce() {
  DF_CHECK(started_ && !finished_, "quiesce outside start()/finish()");
  conc::UniqueLock lock(mutex_);
  // Explicit loop: the flat-path predicate reads the guarded scheduler_.
  // Workers apply everything staged before blocking on an empty dispatcher
  // (the pre-block hook), so completion of the last started phase is always
  // reached and notified without caller involvement.
  while (!(sharded_ != nullptr ? sharded_->all_started_phases_complete()
                               : scheduler_.all_started_phases_complete())) {
    progress_cv_.wait(lock);
  }
}

std::vector<std::uint8_t> Engine::snapshot_state() {
  DF_CHECK(sharded_ == nullptr,
           "snapshot_state supports the flat scheduler only");
  DF_CHECK(started_ && !finished_, "snapshot_state outside start()/finish()");
  auto ar = support::StateArchive::saver();
  std::uint32_t magic = kEngineImageMagic;
  std::uint32_t version = kEngineImageVersion;
  ar.u32(magic);
  ar.u32(version);
  std::vector<std::uint8_t> sched;
  {
    conc::MutexLock lock(mutex_);
    sched = scheduler_.snapshot_state();
  }
  ar.sequence(sched,
              [](support::StateArchive& a, std::uint8_t& b) { a.u8(b); });
  // Module/rng/latest state for every owned vertex, by global index. Read
  // without locks: the quiescent-point precondition guarantees no worker is
  // executing (an issued-but-unfinished pair would keep its phase active).
  std::uint32_t begin = offset_ + 1;
  std::uint32_t end = block_end_;
  ar.u32(begin);
  ar.u32(end);
  for (std::uint32_t v = begin; v <= end; ++v) {
    VertexRuntime& rt = instance_.runtime(v);
    rt.rng.persist(ar);
    ar.sequence(rt.latest, [](support::StateArchive& a, event::Value& value) {
      persist_value(a, value);
    });
    ar.bool_vector(rt.has_latest);
    rt.module->persist_state(ar);
  }
  return seal_image(std::move(ar).take());
}

void Engine::restore_state(const std::vector<std::uint8_t>& image) {
  DF_CHECK(sharded_ == nullptr,
           "restore_state supports the flat scheduler only");
  DF_CHECK(started_ && !finished_,
           "restore_state requires a started engine (before any phase)");
  auto ar = support::StateArchive::loader(open_image(image, "engine"));
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  ar.u32(magic);
  DF_CHECK(magic == kEngineImageMagic,
           "engine checkpoint: bad magic (not a DFEG image)");
  ar.u32(version);
  DF_CHECK(version == kEngineImageVersion,
           "engine checkpoint: unsupported version ", version);
  std::vector<std::uint8_t> sched;
  ar.sequence(sched,
              [](support::StateArchive& a, std::uint8_t& b) { a.u8(b); });
  {
    conc::MutexLock lock(mutex_);
    scheduler_.restore_state(sched);
  }
  std::uint32_t begin = 0;
  std::uint32_t end = 0;
  ar.u32(begin);
  ar.u32(end);
  DF_CHECK(begin == offset_ + 1 && end == block_end_,
           "engine checkpoint: block range mismatch");
  for (std::uint32_t v = begin; v <= end; ++v) {
    VertexRuntime& rt = instance_.runtime(v);
    rt.rng.persist(ar);
    ar.sequence(rt.latest, [](support::StateArchive& a, event::Value& value) {
      persist_value(a, value);
    });
    ar.bool_vector(rt.has_latest);
    DF_CHECK(rt.latest.size() == rt.has_latest.size(),
             "engine checkpoint: latest-value cache size mismatch");
    rt.module->persist_state(ar);
  }
  ar.finish();
}

event::PhaseId Engine::completed_phases() const {
  if (sharded_ != nullptr) {
    return sharded_->completed_through();
  }
  conc::MutexLock lock(mutex_);
  return scheduler_.completed_through();
}

void Engine::enqueue_ready(std::vector<Scheduler::ReadyPair>& ready,
                           std::size_t producer) {
  if (ready.empty()) {
    return;
  }
  // Central: one lock acquisition and a bounded number of wakeups for the
  // whole batch, instead of a push per pair. Stealing: the producing
  // worker keeps its first chunk in its own deque (no lock, cache-warm)
  // and the rest goes round-robin into other lanes, one targeted unpark
  // per chunk.
  const bool accepted = steal_ != nullptr
                            ? steal_->push_batch(ready, producer)
                            : run_queue_.push_all(ready);
  DF_CHECK(accepted || abandoning_.load(std::memory_order_acquire),
           "run queue closed while work was outstanding");
  ready.clear();
}

void Engine::apply_finish_locked(Scheduler::StagedFinish& staged,
                                 std::vector<Scheduler::ReadyPair>& ready) {
  event::PhaseId completed_now = 0;
  {
    conc::MutexLock lock(mutex_);
    const event::PhaseId completed_before = scheduler_.completed_through();
    scheduler_.finish_execution(
        staged.vertex, staged.phase,
        std::span<Scheduler::Delivery>(staged.deliveries),
        std::move(staged.recycled), ready);
    if (options_.sample_inflight) {
      const std::uint64_t active = scheduler_.active_phase_count();
      inflight_.add(active);
      inflight_sum_ += active;
      ++inflight_samples_;
    }
    if (options_.observer != nullptr) {
      options_.observer->on_transition(
          SchedulerObserver::Transition::kPairFinished, staged.vertex,
          staged.phase, scheduler_.snapshot());
    }
    if (scheduler_.completed_through() != completed_before) {
      // Phase retirement is the only transition that shrinks the in-flight
      // window (retire_completed always advances completed_through when it
      // drops a slot), so this one notify covers both waiters on
      // progress_cv_: finish() waiting for all phases and start_phase
      // waiting for window room — including the max_inflight_phases == 1
      // case, where every retirement must wake the environment.
      progress_cv_.notify_all();
      completed_now = scheduler_.completed_through();
    }
  }
  // Completion hook outside the lock: it may block (channel send), and it
  // must never be able to deadlock against engine-internal waiters.
  if (completed_now != 0 && options_.on_phase_complete) {
    options_.on_phase_complete(completed_now);
  }
}

std::size_t Engine::drain_staged(std::size_t worker) {
  // Ring consumption happens outside the global lock (we are the exclusive
  // consumer while holding draining_); only the batch application below
  // takes it, and the moved-from staged shells are destroyed after release.
  drain_batch_.clear();
  for (auto& ring : staging_) {
    // Winning the draining_ exchange was the consumer-role handoff; claim
    // the role before touching the rings (debug-only SPSC owner check).
    ring->adopt_consumer();
    ring->drain([this](Scheduler::StagedFinish&& staged) {
      drain_batch_.push_back(std::move(staged));
    });
  }
  if (drain_batch_.empty()) {
    return 0;
  }
  drain_ready_.clear();
  event::PhaseId completed_now = 0;
  {
    conc::MutexLock lock(mutex_);
    const event::PhaseId completed_before = scheduler_.completed_through();
    scheduler_.finish_execution_batch(
        std::span<Scheduler::StagedFinish>(drain_batch_), drain_ready_);
    if (options_.sample_inflight) {
      // One sample per drained pair, all taken at the post-batch state:
      // keeps the Figure 1 histogram weighted per completion.
      const std::uint64_t active = scheduler_.active_phase_count();
      for (std::size_t i = 0; i < drain_batch_.size(); ++i) {
        inflight_.add(active);
        inflight_sum_ += active;
      }
      inflight_samples_ += drain_batch_.size();
    }
    if (scheduler_.completed_through() != completed_before) {
      progress_cv_.notify_all();  // window shrank and/or finish() satisfied
      completed_now = scheduler_.completed_through();
    }
  }
  const std::size_t drained = drain_batch_.size();
  staged_pending_.fetch_sub(drained);
  enqueue_ready(drain_ready_, worker);
  // Completion hook after the pairs are enqueued, outside mutex_. We still
  // hold draining_ here, so a blocking hook stalls threshold-1 drain
  // volunteers in their yield loop — a bounded stall, not a deadlock: the
  // hook's channel send completes once the downstream machine drains its
  // ingress, which needs no progress from this engine (see DESIGN.md,
  // "Two-level parallelism").
  if (completed_now != 0 && options_.on_phase_complete) {
    options_.on_phase_complete(completed_now);
  }
  return drained;
}

void Engine::maybe_drain(std::size_t threshold, std::size_t worker) {
  for (;;) {
    if (staged_pending_.load() < threshold) {
      return;
    }
    if (draining_.exchange(true)) {
      // Someone else holds the drain. A lazy (batch-target) caller can
      // leave: the holder re-checks staged_pending_ after releasing, and
      // our increment is seq_cst-ordered before this failed exchange, so
      // entries at or above the shared target cannot be missed. A
      // must-drain caller (threshold 1, about to block on the run queue)
      // cannot rely on that — the holder's re-check uses the *batch*
      // target and may rightly leave a sub-target residue — so it waits
      // for the flag and drains the residue itself.
      if (threshold > 1) {
        return;
      }
      std::this_thread::yield();
      continue;
    }
    // We hold the drain. An entry counted in staged_pending_ may not be
    // ring-visible for a moment (the producer increments before pushing);
    // the outer loop simply tries again until the counter agrees.
    const std::size_t drained = drain_staged(worker);
    draining_.store(false);
    // Re-check after release: an entry staged after our ring sweep whose
    // owner lost the exchange above must not be stranded.
    if (drained == 0) {
      // Counted-but-invisible entry: give its producer a chance to finish
      // the push instead of spinning through a whole timeslice.
      std::this_thread::yield();
    }
  }
}

void Engine::route_deliveries(std::vector<Scheduler::Delivery>& deliveries,
                              event::PhaseId phase) {
  if (!options_.block.has_value()) {
    return;  // whole-program engine: every delivery is local, untranslated
  }
  // Split an executed pair's output at the block boundary: deliveries for
  // indices beyond the block leave through the egress hook with their
  // global index intact (the transport routes them by the partition cut);
  // in-block ones are translated to local indices and compacted to the
  // front so the vector feeds the scheduler unchanged. Runs on worker
  // threads outside every engine lock — the hook does its own locking.
  std::size_t keep = 0;
  for (std::size_t i = 0; i < deliveries.size(); ++i) {
    Scheduler::Delivery& d = deliveries[i];
    if (d.to_index > block_end_) {
      options_.block->egress(std::move(d), phase);
      continue;
    }
    d.to_index -= offset_;
    if (keep != i) {
      deliveries[keep] = std::move(d);
    }
    ++keep;
  }
  deliveries.resize(keep);
}

void Engine::worker_main(std::size_t worker_index) {
  // Listing 1: dequeue, execute outside the lock, then either stage the
  // finished pair for batched application (staged path) or update the sets
  // under the lock directly. The ready buffer is reused across iterations;
  // the executed pair's bundle is recycled into the scheduler's pool, so
  // the locked bookkeeping path allocates nothing at steady state.
  std::vector<Scheduler::ReadyPair> ready;
  conc::SpscRing<Scheduler::StagedFinish>* ring =
      use_staging_ ? staging_[worker_index].get() : nullptr;
  // Pre-block hook, shared by both dispatch modes: about to block (or
  // park), apply everything pending first (threshold 1), so no staged
  // finish — possibly the one that completes a phase or readies the only
  // runnable pair — waits on a batch that will never fill. This is what
  // makes the lazy batch target below safe. The drain may enqueue fresh
  // ready pairs; both dispatchers re-check for work after the hook.
  const auto pre_block = [this, ring, worker_index] {
    if (ring != nullptr) {
      maybe_drain(1, worker_index);
    }
  };
  for (;;) {
    std::optional<Scheduler::ReadyPair> item =
        steal_ != nullptr ? steal_->acquire(worker_index, pre_block)
                          : run_queue_.pop_with_preblock(pre_block);
    if (!item.has_value()) {
      break;  // closed and drained
    }
    support::Stopwatch compute_timer;
    ExecutionResult result;
    try {
      // The scheduler speaks block-local indices; the instance is always
      // the full program, so execution (module state, rng forks, routing)
      // happens at the global index — bit-identical to the sequential
      // reference. offset_ is 0 outside block mode.
      result = execute_vertex(instance_, item->vertex + offset_, item->phase,
                              item->bundle);
    } catch (...) {
      // Record the first failure and let the pair complete with no output,
      // so the remaining phases drain and finish() can rethrow cleanly.
      conc::MutexLock lock(mutex_);
      if (first_error_ == nullptr) {
        first_error_ = std::current_exception();
      }
      result = ExecutionResult{};
    }
    compute_ns_.add(compute_timer.elapsed_ns());

    if (!result.sink_records.empty()) {
      sink_records_.add(result.sink_records.size());
      sink_target_->record_batch(std::move(result.sink_records));
    }
    // Delivered-message accounting is pre-routing: cross-boundary messages
    // count here and are reclassified remote by the transport's stats fold.
    messages_delivered_.add(result.deliveries.size());

    support::Stopwatch bookkeeping_timer;
    route_deliveries(result.deliveries, item->phase);
    // Deliveries unification: the executor's output vector moves straight
    // into the staged record — no per-message repack.
    Scheduler::StagedFinish staged{item->vertex, item->phase,
                                   std::move(result.deliveries),
                                   std::move(item->bundle)};
    if (ring != nullptr) {
      // Count first, push second: a drainer that sees the count but not
      // yet the entry spins, whereas the reverse order could let a drain
      // consume an uncounted entry and underflow the counter.
      staged_pending_.fetch_add(1);
      if (ring->try_push(staged)) {
        maybe_drain(drain_batch_target_, worker_index);
      } else {
        // Ring full: roll the count back and apply this one directly.
        staged_pending_.fetch_sub(1);
        ready.clear();
        apply_finish_locked(staged, ready);
        enqueue_ready(ready, worker_index);
      }
    } else {
      ready.clear();
      apply_finish_locked(staged, ready);
      enqueue_ready(ready, worker_index);
    }
    bookkeeping_ns_.add(bookkeeping_timer.elapsed_ns());
    executed_pairs_.add(1);
  }
}

void Engine::flush_applies(std::vector<Scheduler::StagedFinish>& local) {
  if (local.empty()) {
    return;
  }
  sharded_->apply_finish_batch(std::span<Scheduler::StagedFinish>(local));
  const std::size_t applied = local.size();
  local.clear();
  // Count only after the apply completed: a collector that reads the
  // counter and then collects is guaranteed to cover every counted finish
  // (the shard locks order the apply before the collect's scan).
  apply_dirty_.fetch_add(applied);
}

void Engine::maybe_collect(std::size_t threshold,
                           std::size_t worker) {
  for (;;) {
    if (apply_dirty_.load() < threshold) {
      return;
    }
    if (collecting_.exchange(true)) {
      // Someone else is collecting. A lazy (batch-target) caller can
      // leave: the holder re-checks apply_dirty_ after releasing, and our
      // increment is ordered before this failed exchange. A must-collect
      // caller (threshold 1, about to block on the run queue) waits for
      // the flag and mops up the residue itself, exactly like
      // maybe_drain's threshold-1 discipline.
      if (threshold > 1) {
        return;
      }
      std::this_thread::yield();
      continue;
    }
    const std::size_t observed = apply_dirty_.load();
    collect_ready_.clear();
    const bool retired = sharded_->collect(collect_ready_);
    const event::PhaseId completed_now =
        retired ? sharded_->completed_through() : 0;
    if (options_.sample_inflight || retired) {
      conc::MutexLock lock(mutex_);
      if (options_.sample_inflight) {
        // One sample per covered finish, at the post-collect state (same
        // weighting as the staged drain path).
        const std::uint64_t active = sharded_->active_phase_count();
        for (std::size_t i = 0; i < observed; ++i) {
          inflight_.add(active);
          inflight_sum_ += active;
        }
        inflight_samples_ += observed;
      }
      if (retired) {
        // Retirement shrinks the window and may satisfy finish(); taking
        // mutex_ around the notify pairs with both waiters' predicate
        // checks so the wakeup cannot be lost.
        progress_cv_.notify_all();
      }
    }
    apply_dirty_.fetch_sub(observed);
    enqueue_ready(collect_ready_, worker);
    collecting_.store(false);
    // Completion hook after releasing collecting_, so a blocking hook
    // never stalls other collect volunteers. Concurrent collectors may
    // therefore fire out of order (the options_ doc warns consumers);
    // completed_through itself is monotone.
    if (completed_now != 0 && options_.on_phase_complete) {
      options_.on_phase_complete(completed_now);
    }
    // Loop: re-check for applies that landed after our scan whose owners
    // lost the exchange above.
  }
}

void Engine::worker_main_sharded(std::size_t worker_index) {
  // Sharded drain protocol (DESIGN.md, "Sharded scheduler"): execute
  // outside every lock, batch the finish records locally, apply them
  // under per-shard locks (stage 1 — parallel across disjoint graph
  // regions), and volunteer to collect (stage 2 — one collector at a
  // time composes the frontier and issues ready pairs). Before blocking
  // on an empty run queue a worker must flush its private batch and run a
  // threshold-1 collect, so no finish — possibly the one completing a
  // phase — waits on a batch that never fills.
  //
  // The execute/record section deliberately mirrors worker_main rather
  // than sharing a helper: the shards=1 configuration must keep the PR 3
  // flat code paths exactly as they are, so changes to the shared-looking
  // middle (error capture, sink recording, stats) must be made in both
  // loops knowingly.
  std::vector<Scheduler::StagedFinish> local;
  local.reserve(drain_batch_target_);
  // Pre-block hook (see worker_main): flush the private batch and run a
  // threshold-1 collect before the dispatcher may put this worker to
  // sleep; the collect can enqueue fresh ready pairs, which both
  // dispatchers re-check for after the hook.
  const auto pre_block = [this, &local, worker_index] {
    flush_applies(local);
    maybe_collect(1, worker_index);
  };
  for (;;) {
    std::optional<Scheduler::ReadyPair> item =
        steal_ != nullptr ? steal_->acquire(worker_index, pre_block)
                          : run_queue_.pop_with_preblock(pre_block);
    if (!item.has_value()) {
      break;  // closed and drained
    }
    support::Stopwatch compute_timer;
    ExecutionResult result;
    try {
      // Global-index execution against the local-index scheduler, exactly
      // as in worker_main above.
      result = execute_vertex(instance_, item->vertex + offset_, item->phase,
                              item->bundle);
    } catch (...) {
      conc::MutexLock lock(mutex_);
      if (first_error_ == nullptr) {
        first_error_ = std::current_exception();
      }
      result = ExecutionResult{};
    }
    compute_ns_.add(compute_timer.elapsed_ns());

    if (!result.sink_records.empty()) {
      sink_records_.add(result.sink_records.size());
      sink_target_->record_batch(std::move(result.sink_records));
    }
    messages_delivered_.add(result.deliveries.size());

    support::Stopwatch bookkeeping_timer;
    route_deliveries(result.deliveries, item->phase);
    local.push_back(Scheduler::StagedFinish{item->vertex, item->phase,
                                            std::move(result.deliveries),
                                            std::move(item->bundle)});
    if (local.size() >= drain_batch_target_) {
      flush_applies(local);
      maybe_collect(drain_batch_target_, worker_index);
    }
    bookkeeping_ns_.add(bookkeeping_timer.elapsed_ns());
    executed_pairs_.add(1);
  }
}

ExecStats Engine::stats() const {
  ExecStats stats;
  stats.executed_pairs = executed_pairs_.value();
  stats.messages_delivered = messages_delivered_.value();
  stats.sink_records = sink_records_.value();
  stats.compute_ns = compute_ns_.value();
  stats.bookkeeping_ns = bookkeeping_ns_.value();
  stats.wall_seconds = wall_seconds_;
  if (steal_ != nullptr) {
    const auto counters = steal_->counters();
    stats.steals_ok = counters.steals_ok;
    stats.steals_empty = counters.steals_empty;
    stats.parks = counters.parks;
  }
  {
    conc::MutexLock lock(mutex_);
    stats.phases_completed = sharded_ != nullptr
                                 ? sharded_->completed_through()
                                 : scheduler_.completed_through();
    stats.max_inflight_phases = max_inflight_;
    stats.mean_inflight_phases =
        inflight_samples_ == 0
            ? 0.0
            : static_cast<double>(inflight_sum_) /
                  static_cast<double>(inflight_samples_);
  }
  return stats;
}

}  // namespace df::core
