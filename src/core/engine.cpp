#include "core/engine.hpp"

#include <algorithm>

#include "support/check.hpp"
#include "support/stopwatch.hpp"

namespace df::core {

Engine::Engine(const Program& program, EngineOptions options)
    : instance_(program),
      options_(options),
      scheduler_(program.numbering.m) {
  DF_CHECK(options_.threads >= 1, "engine needs at least one worker thread");
}

Engine::~Engine() {
  if (started_ && !finished_) {
    // Abandoned engine: stop workers without waiting for phase completion.
    // Workers may still try to enqueue newly ready pairs; the flag lets
    // them drop those instead of flagging the closed queue as a bug.
    abandoning_.store(true, std::memory_order_release);
    run_queue_.close();
    for (auto& worker : workers_) {
      worker.join();
    }
  }
}

void Engine::start() {
  if (started_) {
    return;
  }
  started_ = true;
  // Warm the scheduler's flat structures to the run's expected footprint so
  // the locked bookkeeping path is allocation-free from the first phase
  // (unbounded windows get a representative depth; the structures still
  // grow organically past it).
  const std::size_t window = options_.max_inflight_phases == 0
                                 ? 64
                                 : options_.max_inflight_phases;
  scheduler_.reserve_steady_state(
      std::min<std::size_t>(window, 64),
      std::min<std::size_t>(2 * scheduler_.n(), 65536));
  workers_.reserve(options_.threads);
  for (std::size_t i = 0; i < options_.threads; ++i) {
    workers_.emplace_back([this] { worker_main(); });
  }
}

void Engine::reserve_source_bundles(
    const std::vector<event::ExternalEvent>& events) {
  // Group the batch into per-source input bundles (Listing 2's "phase
  // signal" is implicit: every source gets a pair, with or without events).
  // Resolve indices once, then reserve exact per-source counts so each
  // bundle is built with at most one allocation.
  env_bundles_.clear();
  env_bundles_.resize(scheduler_.source_count());
  env_indices_.clear();
  for (const event::ExternalEvent& ev : events) {
    const std::uint32_t index = instance_.internal_index(ev.vertex);
    DF_CHECK(instance_.is_source(index),
             "external events may only target source vertices, got '",
             instance_.name(index), "'");
    env_indices_.push_back(index);
  }
  env_counts_.assign(scheduler_.source_count(), 0);
  for (const std::uint32_t index : env_indices_) {
    ++env_counts_[index - 1];
  }
  for (std::size_t s = 0; s < env_counts_.size(); ++s) {
    if (env_counts_[s] != 0) {
      env_bundles_[s].reserve(env_counts_[s]);
    }
  }
}

void Engine::start_phase(const std::vector<event::ExternalEvent>& events) {
  DF_CHECK(started_ && !finished_, "start_phase outside start()/finish()");
  reserve_source_bundles(events);
  for (std::size_t i = 0; i < events.size(); ++i) {
    env_bundles_[env_indices_[i] - 1].push_back(
        event::Message{events[i].port, events[i].value});
  }
  start_phase_bundles(env_bundles_);
}

void Engine::start_phase(std::vector<event::ExternalEvent>&& events) {
  DF_CHECK(started_ && !finished_, "start_phase outside start()/finish()");
  reserve_source_bundles(events);
  for (std::size_t i = 0; i < events.size(); ++i) {
    env_bundles_[env_indices_[i] - 1].push_back(
        event::Message{events[i].port, std::move(events[i].value)});
  }
  start_phase_bundles(env_bundles_);
}

void Engine::start_phase_bundles(std::vector<event::InputBundle>& bundles) {
  env_ready_.clear();
  {
    std::unique_lock lock(mutex_);
    progress_cv_.wait(lock, [this] {
      return options_.max_inflight_phases == 0 ||
             scheduler_.active_phase_count() < options_.max_inflight_phases;
    });
    const event::PhaseId p = scheduler_.pmax() + 1;
    scheduler_.start_phase(p, std::span<event::InputBundle>(bundles),
                           env_ready_);
    max_inflight_ = std::max<std::uint64_t>(max_inflight_,
                                            scheduler_.active_phase_count());
    if (options_.observer != nullptr) {
      options_.observer->on_transition(
          SchedulerObserver::Transition::kPhaseStarted, 0, p,
          scheduler_.snapshot());
    }
  }
  enqueue_ready(env_ready_);
}

void Engine::finish() {
  DF_CHECK(started_, "finish() before start()");
  if (finished_) {
    return;
  }
  {
    std::unique_lock lock(mutex_);
    progress_cv_.wait(
        lock, [this] { return scheduler_.all_started_phases_complete(); });
  }
  run_queue_.close();
  for (auto& worker : workers_) {
    worker.join();
  }
  workers_.clear();
  finished_ = true;
  std::exception_ptr error;
  {
    std::lock_guard lock(mutex_);
    error = first_error_;
  }
  if (error != nullptr) {
    std::rethrow_exception(error);
  }
}

void Engine::run(event::PhaseId num_phases, PhaseFeed* feed) {
  support::Stopwatch wall;
  NullFeed null_feed;
  PhaseFeed& source = feed != nullptr ? *feed : null_feed;
  start();
  for (event::PhaseId p = 1; p <= num_phases; ++p) {
    start_phase(source.events_for(p));
  }
  finish();
  wall_seconds_ = wall.elapsed_s();
}

event::PhaseId Engine::completed_phases() const {
  std::lock_guard lock(mutex_);
  return scheduler_.completed_through();
}

void Engine::enqueue_ready(std::vector<Scheduler::ReadyPair>& ready) {
  if (ready.empty()) {
    return;
  }
  // One lock acquisition and one wakeup for the whole batch, instead of a
  // push per pair.
  const bool accepted = run_queue_.push_all(ready);
  DF_CHECK(accepted || abandoning_.load(std::memory_order_acquire),
           "run queue closed while work was outstanding");
  ready.clear();
}

void Engine::worker_main() {
  // Listing 1: dequeue, execute outside the lock, update sets under it.
  // The delivery and ready buffers are reused across iterations; the
  // executed pair's bundle is recycled into the scheduler's pool, so the
  // locked bookkeeping section allocates nothing at steady state.
  std::vector<Scheduler::Delivery> deliveries;
  std::vector<Scheduler::ReadyPair> ready;
  while (auto item = run_queue_.pop()) {
    support::Stopwatch compute_timer;
    ExecutionResult result;
    try {
      result =
          execute_vertex(instance_, item->vertex, item->phase, item->bundle);
    } catch (...) {
      // Record the first failure and let the pair complete with no output,
      // so the remaining phases drain and finish() can rethrow cleanly.
      std::lock_guard lock(mutex_);
      if (first_error_ == nullptr) {
        first_error_ = std::current_exception();
      }
      result = ExecutionResult{};
    }
    compute_ns_.add(compute_timer.elapsed_ns());

    if (!result.sink_records.empty()) {
      sink_records_.add(result.sink_records.size());
      sinks_.record_batch(std::move(result.sink_records));
    }

    deliveries.clear();
    deliveries.reserve(result.deliveries.size());
    for (ExecutionResult::Delivery& d : result.deliveries) {
      deliveries.push_back(
          Scheduler::Delivery{d.to_index, d.to_port, std::move(d.value)});
    }
    messages_delivered_.add(deliveries.size());

    support::Stopwatch bookkeeping_timer;
    ready.clear();
    {
      std::lock_guard lock(mutex_);
      const event::PhaseId completed_before = scheduler_.completed_through();
      scheduler_.finish_execution(item->vertex, item->phase,
                                  std::span<Scheduler::Delivery>(deliveries),
                                  std::move(item->bundle), ready);
      if (options_.sample_inflight) {
        const std::uint64_t active = scheduler_.active_phase_count();
        inflight_.add(active);
        inflight_sum_ += active;
        ++inflight_samples_;
      }
      if (options_.observer != nullptr) {
        options_.observer->on_transition(
            SchedulerObserver::Transition::kPairFinished, item->vertex,
            item->phase, scheduler_.snapshot());
      }
      if (scheduler_.completed_through() != completed_before) {
        // Phase retirement frees window space and may satisfy finish().
        progress_cv_.notify_all();
      }
    }
    enqueue_ready(ready);
    bookkeeping_ns_.add(bookkeeping_timer.elapsed_ns());
    executed_pairs_.add(1);
  }
}

ExecStats Engine::stats() const {
  ExecStats stats;
  stats.executed_pairs = executed_pairs_.value();
  stats.messages_delivered = messages_delivered_.value();
  stats.sink_records = sink_records_.value();
  stats.compute_ns = compute_ns_.value();
  stats.bookkeeping_ns = bookkeeping_ns_.value();
  stats.wall_seconds = wall_seconds_;
  {
    std::lock_guard lock(mutex_);
    stats.phases_completed = scheduler_.completed_through();
    stats.max_inflight_phases = max_inflight_;
    stats.mean_inflight_phases =
        inflight_samples_ == 0
            ? 0.0
            : static_cast<double>(inflight_sum_) /
                  static_cast<double>(inflight_samples_);
  }
  return stats;
}

}  // namespace df::core
