// Graph partitioning (paper section 6, future work).
//
// "We are investigating various ways of using networks of multiprocessor
// machines to improve performance and efficiency, including methods for
// partitioning the computation graph across multiple machines."
//
// Because a satisfactory numbering orders vertices so that all edges go
// from lower to higher index, cutting the index range into contiguous
// blocks yields partitions whose cross-traffic flows strictly forward —
// machine i never needs messages from machine j > i. This module provides
// two partitioners over that index space plus quality metrics; the
// distributed-simulation executor in src/distrib consumes them.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/dag.hpp"
#include "graph/numbering.hpp"

namespace df::graph {

/// A partitioning of internal indices 1..N into contiguous blocks.
/// Block k covers (bounds[k-1], bounds[k]]; bounds.front() == 0 and
/// bounds.back() == N.
struct Partitioning {
  std::vector<std::uint32_t> bounds;

  std::size_t block_count() const { return bounds.size() - 1; }
  /// Block index (0-based) owning internal index v.
  std::size_t block_of(std::uint32_t v) const;
  std::uint32_t block_begin(std::size_t k) const { return bounds[k] + 1; }
  std::uint32_t block_end(std::size_t k) const { return bounds[k + 1]; }
};

/// Splits 1..N into `blocks` contiguous ranges of near-equal vertex count.
Partitioning partition_balanced(const Numbering& numbering,
                                std::size_t blocks);

/// Count-based form of partition_balanced: splits 1..n (any contiguous
/// index range rebased to 1) into `blocks` near-equal ranges. Used for
/// block-local sub-partitions (a transport block's scheduler shards cover
/// local indices 1..B, which have no Numbering of their own).
Partitioning partition_balanced_range(std::uint32_t n, std::size_t blocks);

/// The m-vector of the numbering *restricted to* the block of global
/// internal indices [begin, end], in block-local indexing (local index
/// y == global index begin + y - 1; size end - begin + 2, i.e. m[0..B]).
///
/// The restriction drops every predecessor outside the block, so the local
/// release of local vertex y is r_loc(y) = max local index among in-block
/// predecessors (0 if none). Unlike the global release sequence, r_loc is
/// NOT non-decreasing (a vertex whose predecessors are all remote has
/// r_loc = 0 at any position), so m cannot be read off a histogram of
/// r_loc directly; instead the prefix maximum R_y = max(r_loc(1..y)) is
/// non-decreasing by construction and m_loc(x) = |{y : R_y <= x}| is a
/// valid satisfactory m: monotone, m_loc(x) >= x + 1 for x < B (since
/// r_loc(y) <= y - 1), and m_loc(B) = B. Promoting local vertex v when
/// v <= m_loc(x) is sound for block-scoped scheduling because all of v's
/// in-block predecessors are then finished and all of its remote
/// predecessors' messages were injected when the phase window opened (the
/// transport watermark handshake guarantees completeness at phase start).
/// An empty block (begin > end) yields {0}.
std::vector<std::uint32_t> block_local_m(const Dag& dag,
                                         const Numbering& numbering,
                                         std::uint32_t begin,
                                         std::uint32_t end);

/// Splits 1..N into `blocks` ranges of near-equal *weight*, where weight[v]
/// is the cost of the vertex at internal index v (index 0 unused).
Partitioning partition_weighted(const Numbering& numbering,
                                const std::vector<double>& weight,
                                std::size_t blocks);

/// Greedy cut refinement: starting from a balanced partitioning, slides
/// each boundary within +/- `slack` positions to the location that
/// minimizes the number of edges crossing it (keeping blocks non-empty).
Partitioning partition_min_cut(const Dag& dag, const Numbering& numbering,
                               std::size_t blocks, std::uint32_t slack = 8);

/// The one partition-cut validator every consumer of a cut shares (the
/// simulated distrib::ClusterExecutor and the real distrib::TransportEngine):
/// DF_CHECKs that `partitioning` has exactly `expected_blocks` blocks whose
/// bounds start at 0, end at `n`, and never decrease. Empty (degenerate)
/// blocks are legal — a machine that owns no vertices still participates in
/// watermark forwarding — but coverage gaps, overlaps, and out-of-range
/// bounds are not.
void validate_partition_cut(const Partitioning& partitioning, std::uint32_t n,
                            std::size_t expected_blocks);

/// A Partitioning flattened for O(1) vertex->shard lookup on hot paths.
/// The sharded scheduler (core/sharded_scheduler.hpp) aligns its state
/// segments and locks with these blocks: because the numbering sends every
/// edge to a higher index, all cross-shard message traffic flows from
/// lower-numbered shards to higher-numbered ones, never backward.
struct ShardMap {
  /// Same encoding as Partitioning::bounds: shard k covers
  /// (bounds[k], bounds[k+1]]; bounds.front() == 0, bounds.back() == N.
  std::vector<std::uint32_t> bounds;
  /// shard_of[v] for internal index v in 1..N (slot 0 unused).
  std::vector<std::uint32_t> shard_of;

  std::size_t shard_count() const { return bounds.size() - 1; }
  std::uint32_t vertex_count() const { return bounds.back(); }
  /// First / last internal index owned by shard k (inclusive).
  std::uint32_t begin(std::size_t k) const { return bounds[k] + 1; }
  std::uint32_t end(std::size_t k) const { return bounds[k + 1]; }
};

/// Materializes the lookup table for a partitioning.
ShardMap make_shard_map(const Partitioning& partitioning);

/// Quality metrics for a partitioning.
struct PartitionMetrics {
  std::size_t blocks = 0;
  /// Edges whose endpoints live in different blocks (network messages).
  std::size_t edge_cut = 0;
  /// Largest / smallest block size.
  std::uint32_t max_block = 0;
  std::uint32_t min_block = 0;
  /// max_block * blocks / N — 1.0 is perfectly balanced.
  double imbalance = 0.0;
};

PartitionMetrics evaluate_partitioning(const Dag& dag,
                                       const Numbering& numbering,
                                       const Partitioning& partitioning);

}  // namespace df::graph
