// Directed acyclic computation graphs (paper section 2).
//
// Vertices are computational modules; a directed edge carries messages from
// an output port of one vertex to an input port of another. Vertices without
// incoming edges are sources; vertices without outgoing edges are sinks.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace df::graph {

using VertexId = std::uint32_t;
using Port = std::uint16_t;

/// An edge from (from, from_port) to (to, to_port).
struct Edge {
  VertexId from = 0;
  Port from_port = 0;
  VertexId to = 0;
  Port to_port = 0;

  friend bool operator==(const Edge&, const Edge&) = default;
};

/// Mutable DAG under construction; acyclicity is validated on demand and by
/// the numbering pass. Vertex ids are dense, assigned in insertion order.
class Dag {
 public:
  /// Adds a vertex and returns its id. Names must be unique and non-empty.
  VertexId add_vertex(std::string name);

  /// Adds an edge. Each (to, to_port) may have at most one incoming edge —
  /// an input port has a single upstream writer; fan-in uses distinct ports.
  /// Fan-out from one output port to many consumers is allowed.
  void add_edge(VertexId from, Port from_port, VertexId to, Port to_port);

  std::size_t vertex_count() const { return names_.size(); }
  std::size_t edge_count() const { return edges_.size(); }

  const std::string& name(VertexId v) const;
  /// Looks up a vertex id by name; checks that the name exists.
  VertexId vertex(const std::string& name) const;
  bool has_vertex(const std::string& name) const;

  const std::vector<Edge>& edges() const { return edges_; }
  /// Incoming edges of v, ordered by to_port.
  const std::vector<Edge>& in_edges(VertexId v) const;
  /// Outgoing edges of v, in insertion order.
  const std::vector<Edge>& out_edges(VertexId v) const;

  std::size_t in_degree(VertexId v) const { return in_edges(v).size(); }
  std::size_t out_degree(VertexId v) const { return out_edges(v).size(); }
  bool is_source(VertexId v) const { return in_degree(v) == 0; }
  bool is_sink(VertexId v) const { return out_degree(v) == 0; }

  std::vector<VertexId> sources() const;
  std::vector<VertexId> sinks() const;

  /// Number of distinct input ports of v (== max to_port + 1, or 0).
  std::size_t in_port_count(VertexId v) const;
  /// Number of distinct output ports of v (== max from_port + 1, or 0).
  std::size_t out_port_count(VertexId v) const;

  /// True iff the graph has no directed cycle.
  bool is_acyclic() const;

  /// Throws via DF_CHECK if the graph is empty, cyclic, or malformed.
  void validate() const;

 private:
  std::vector<std::string> names_;
  std::map<std::string, VertexId> by_name_;
  std::vector<Edge> edges_;
  std::vector<std::vector<Edge>> in_edges_;
  std::vector<std::vector<Edge>> out_edges_;

  void check_vertex(VertexId v) const;
};

}  // namespace df::graph
