// Graphviz DOT export for computation graphs, optionally annotated with a
// numbering (index and m values) for debugging and documentation.
#pragma once

#include <string>

#include "graph/dag.hpp"
#include "graph/numbering.hpp"

namespace df::graph {

/// Renders the DAG in DOT format. Vertex labels are names.
std::string to_dot(const Dag& dag);

/// Renders the DAG with "name\n#index" labels from the numbering.
std::string to_dot(const Dag& dag, const Numbering& numbering);

}  // namespace df::graph
