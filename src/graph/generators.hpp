// Computation-graph generators for tests, examples and benchmarks,
// including the exact example graphs from the paper's figures.
#pragma once

#include <cstdint>

#include "graph/dag.hpp"
#include "support/rng.hpp"

namespace df::graph {

/// The 7-vertex graph of the paper's Figure 2, with vertex names "v1".."v7"
/// matching the *satisfactory* numbering of Figure 2(b): three sources
/// v1,v2,v3 and edges v2->v4, v3->v5, v5->v6, v4->v7, v6->v7.
/// Dense ids equal figure index minus one.
Dag paper_figure2();

/// The paper's *unsatisfactory* Figure 2(a) numbering of that same graph
/// (indices of the middle vertices transposed), as an index_of vector over
/// paper_figure2()'s dense ids. Topologically sorted, but S(2) = {1,2,3,5}.
std::vector<std::uint32_t> paper_figure2a_indices();

/// A 6-vertex graph shaped like the paper's Figure 3 trace example: two
/// sources (v1, v2) feeding a diamond into two sinks.
/// Edges: v1->v3, v2->v3, v2->v4, v3->v5, v4->v5, v4->v6.
Dag paper_figure3();

/// Linear pipeline: v1 -> v2 -> ... -> vN. Worst case for parallelism within
/// a phase, best case for cross-phase pipelining.
Dag chain(std::uint32_t length);

/// Diamond: one source fanning out to `width` middle vertices that all fan
/// into one sink.
Dag diamond(std::uint32_t width);

/// Layered DAG: `layers` layers of `width` vertices; every vertex in layer k
/// has `fan_in` predecessors in layer k-1 (clamped to width). Layer 0
/// vertices are sources.
Dag layered(std::uint32_t layers, std::uint32_t width, std::uint32_t fan_in,
            support::Rng& rng);

/// Complete binary in-tree (leaves are sources, root is the sink) of the
/// given depth; 2^depth - 1 vertices.
Dag binary_in_tree(std::uint32_t depth);

/// Complete binary out-tree (root is the source, leaves are sinks).
Dag binary_out_tree(std::uint32_t depth);

/// Random DAG over n vertices: edge (i, j), i < j in a random topological
/// order, present with probability `edge_probability`. Vertices left with no
/// inputs become sources. Input ports are assigned densely per vertex.
Dag random_dag(std::uint32_t n, double edge_probability, support::Rng& rng);

/// The 10-vertex layered graph used to illustrate Figure 1 (5 phases in
/// flight): four layers of sizes 3/3/3/1.
Dag figure1_style_graph(support::Rng& rng);

}  // namespace df::graph
