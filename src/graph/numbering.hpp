// Vertex numbering machinery (paper section 3.1.1).
//
// The algorithm requires vertex indices 1..N that are (a) topologically
// sorted and (b) "satisfactory": for every v, the set
//
//   S(v) = { w | every predecessor u of w has index u <= v }        (eqn 1)
//
// must be exactly the prefix {1, 2, ..., m(v)} where m(v) = |S(v)|. The
// function m then drives the scheduler: when all vertices indexed <= v have
// finished phase p, all vertices indexed <= m(v) have full information for
// phase p.
//
// Such a numbering always exists for any DAG. Define the *release index*
// r(w) of a vertex as the largest index among its predecessors (0 for a
// source); the prefix condition is equivalent to r being non-decreasing in
// index order. compute_satisfactory_numbering() builds one greedily: among
// vertices whose predecessors are all numbered, always number next the one
// with the smallest release index. A newly released vertex has release equal
// to the index just assigned, which is larger than every release already in
// the frontier, so the emitted release sequence is non-decreasing and the
// result is always satisfactory (verified by verify_numbering and by tests).
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "graph/dag.hpp"

namespace df::graph {

/// A 1-based numbering of a DAG plus the derived m function.
struct Numbering {
  /// index_of[v] in 1..N for each dense VertexId v.
  std::vector<std::uint32_t> index_of;
  /// vertex_at[i] for i in 1..N (element 0 is unused).
  std::vector<VertexId> vertex_at;
  /// m[v] for v in 0..N; m[0] is the number of source vertices.
  std::vector<std::uint32_t> m;

  std::uint32_t size() const {
    return static_cast<std::uint32_t>(index_of.size());
  }
};

/// Builds a satisfactory numbering for any DAG (greedy min-release).
/// Deterministic: ties break toward the smallest original vertex id.
Numbering compute_satisfactory_numbering(const Dag& dag);

/// Wraps an externally chosen numbering (e.g. the paper's Figure 2 examples)
/// given index_of; computes vertex_at and m. The numbering must be a
/// permutation of 1..N but need not be satisfactory.
Numbering make_numbering(const Dag& dag,
                         const std::vector<std::uint32_t>& index_of);

/// S(v) under a numbering: indices (1-based) of vertices all of whose
/// predecessors have index <= v. Direct evaluation of eqn (1) for testing.
std::set<std::uint32_t> compute_S(const Dag& dag, const Numbering& numbering,
                                  std::uint32_t v);

/// True iff the numbering is topologically sorted (every edge goes from a
/// lower index to a higher index).
bool is_topological(const Dag& dag, const Numbering& numbering);

/// True iff every S(v) is the prefix {1..|S(v)|} (the paper's additional
/// restriction).
bool is_satisfactory(const Dag& dag, const Numbering& numbering);

/// Checks the m-function properties the correctness argument relies on:
/// monotonicity (eqn 2), v < m(v) for v < N (eqn 3), and m(N) = N (eqn 4).
/// Throws via DF_CHECK on violation.
void verify_numbering(const Dag& dag, const Numbering& numbering);

/// Release index r(w): the largest index among w's predecessors, 0 for
/// sources. The prefix property is equivalent to r non-decreasing in index.
std::vector<std::uint32_t> release_indices(const Dag& dag,
                                           const Numbering& numbering);

}  // namespace df::graph
